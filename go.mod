module ctxback

go 1.22
