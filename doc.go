// Package ctxback is a from-scratch reproduction of "CTXBack: Enabling
// Low Latency GPU Context Switching via Context Flashback" (IPDPS 2021)
// as a Go library: a SIMT GPU simulator, the CTXBack compiler pass, five
// baseline preemption techniques, the paper's twelve benchmark kernels,
// and an evaluation harness that regenerates Table I and Figures 7-10.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for measured
// results next to the paper's.
package ctxback
