// Quickstart: assemble a small SIMT kernel, run the CTXBack pass on it,
// inspect the flashback-points it finds, then preempt the kernel
// mid-flight on the simulator and verify the resumed run is exact.
package main

import (
	"fmt"
	"log"

	"ctxback/internal/core"
	"ctxback/internal/isa"
	"ctxback/internal/liveness"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

const kernelSrc = `
.kernel saxpy
.vregs 10
.sregs 36
; s4 = x base, s5 = y base, s6 = iterations, s7 = alpha (f32 bits)
  v_laneid v0
  v_shl v1, v0, 2 !noovf
  v_add v2, v1, s4 !noovf
  v_add v3, v1, s5 !noovf
loop:
  v_gload v4, v2, 0
  v_gload v5, v3, 0
  v_mad_f32 v6, v4, s7, v5
  v_gstore v3, v6, 0
  v_add v2, v2, 256 !noovf
  v_add v3, v3, 256 !noovf
  s_sub s6, s6, 1
  s_cmp_gt s6, 0
  s_cbranch_scc1 loop
  s_endpgm
`

func main() {
	prog, err := isa.Assemble(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Compile-time: find flashback-points for every instruction.
	compiled, err := core.Compile(prog, core.FeatAll)
	if err != nil {
		log.Fatal(err)
	}
	live := liveness.Analyze(compiled.Graph)
	fmt.Println("CTXBack flashback-points for saxpy:")
	fmt.Printf("%4s %-32s %6s %10s %10s\n", "PC", "instruction", "Q", "LIVE B", "CTXBack B")
	for pc := 0; pc < prog.Len(); pc++ {
		plan := compiled.Plans[pc]
		fmt.Printf("%4d %-32s %6d %10d %10d\n",
			pc, prog.At(pc).String(), plan.Q, live.ContextBytes(pc), plan.ContextBytes)
	}

	// 2. Runtime: run the kernel, preempt it mid-loop, resume, verify.
	const (
		iters = 64
		xBase = 4096
	)
	n := isa.WarpSize * iters
	yBase := xBase + n*4
	alpha := float32(2.5)

	tech, err := preempt.NewCTXBack(prog)
	if err != nil {
		log.Fatal(err)
	}
	d, err := sim.NewDevice(sim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	d.AttachRuntime(tech)

	x := make([]uint32, n)
	y := make([]uint32, n)
	for i := range x {
		x[i] = isa.ImmF(float32(i)).Imm
		y[i] = isa.ImmF(float32(n - i)).Imm
	}
	if err := d.WriteWords(xBase, x); err != nil {
		log.Fatal(err)
	}
	if err := d.WriteWords(yBase, y); err != nil {
		log.Fatal(err)
	}
	_, err = d.Launch(sim.LaunchSpec{
		Prog: prog, NumBlocks: 1, WarpsPerBlock: 1,
		Setup: func(w *sim.Warp) {
			w.SRegs[4] = uint64(xBase)
			w.SRegs[5] = uint64(yBase)
			w.SRegs[6] = iters
			w.SRegs[7] = uint64(isa.ImmF(alpha).Imm)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Let it run half way, then preempt.
	if err := d.RunToCycle(10_001, 1<<30); err != nil {
		log.Fatal(err)
	}
	ep, err := d.Preempt(0, tech)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 1<<30); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npreempted at cycle %d: latency %d cycles, context %d bytes\n",
		ep.SignalCycle, ep.PreemptLatencyCycles(), ep.SavedBytes())
	if err := d.Resume(ep); err != nil {
		log.Fatal(err)
	}
	if err := d.Run(1 << 30); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed in %d cycles\n", ep.ResumeCycles())

	// Verify y = alpha*x + y.
	got, err := d.ReadWords(yBase, n)
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		want := isa.ImmF(alpha*float32(i) + float32(n-i)).Imm
		if got[i] != want {
			log.Fatalf("y[%d] = %#x, want %#x", i, got[i], want)
		}
	}
	fmt.Println("output verified: preempted run matches the uninterrupted computation")
}
