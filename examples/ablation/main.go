// Ablation: quantify each of CTXBack's three techniques (paper §III) on
// the Table-I kernels — strict flashback condition only, plus the
// relaxed condition (Algorithm 1), plus instruction reverting
// (Algorithm 2), plus on-chip scalar register backup.
package main

import (
	"fmt"
	"log"

	"ctxback/internal/core"
	"ctxback/internal/kernels"
	"ctxback/internal/liveness"
)

func main() {
	params := kernels.EvalParams()
	combos := []struct {
		label string
		feats core.Feature
	}{
		{"strict condition", 0},
		{"+relaxed (Alg. 1)", core.FeatRelaxed},
		{"+reverting (Alg. 2)", core.FeatRelaxed | core.FeatRevert},
		{"+OSRB (full CTXBack)", core.FeatAll},
	}

	all, err := kernels.All(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Mean per-instruction register context (bytes), by enabled technique")
	fmt.Printf("%-22s", "kernel")
	for _, c := range combos {
		fmt.Printf("%22s", c.label)
	}
	fmt.Printf("%10s\n", "LIVE")

	for _, wl := range all {
		fmt.Printf("%-22s", wl.Abbrev)
		var liveMean float64
		for _, combo := range combos {
			c, err := core.Compile(wl.Prog, combo.feats)
			if err != nil {
				log.Fatalf("%s/%s: %v", wl.Abbrev, combo.label, err)
			}
			var sum float64
			for pc := 0; pc < wl.Prog.Len(); pc++ {
				sum += float64(c.Plans[pc].ContextBytes)
			}
			fmt.Printf("%22.0f", sum/float64(wl.Prog.Len()))
			if combo.feats == 0 {
				live := liveness.Analyze(c.Graph)
				for pc := 0; pc < wl.Prog.Len(); pc++ {
					liveMean += float64(live.ContextBytes(pc))
				}
				liveMean /= float64(wl.Prog.Len())
			}
		}
		fmt.Printf("%10.0f\n", liveMean)
	}
	fmt.Println("\nEach column adds one of the paper's techniques; the strict condition")
	fmt.Println("alone rarely beats LIVE, while the three together find flashback-points")
	fmt.Println("whose contexts approach the per-block minima.")
}
