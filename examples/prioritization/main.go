// Prioritization: the paper's motivating scenario (§I). A batch job
// (K-Means, persistent-thread style) occupies the GPU when a
// latency-sensitive inference job (ReLU) arrives. For each preemption
// technique we measure what actually matters to the latency-sensitive
// job — how long it waits for an SM — and what it costs the batch job.
package main

import (
	"fmt"
	"log"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

var debug = false

func main() {
	cfg := sim.DefaultConfig()
	batchParams := kernels.Params{NumBlocks: 24, WarpsPerBlock: 2, ItersPerWarp: 160, Seed: 7}
	lsParams := kernels.Params{NumBlocks: 2, WarpsPerBlock: 2, ItersPerWarp: 4, Seed: 11, MemBase: 192 << 20}

	fmt.Println("Latency-sensitive job preempting a K-Means batch job")
	fmt.Printf("%-18s %14s %14s %14s %14s\n",
		"technique", "LS wait us", "LS total us", "resume us", "batch slowdown")

	// Reference: batch job runtime without any interference.
	baseBatch, err := runScenario(cfg, batchParams, lsParams, preempt.Kind(-1))
	if err != nil {
		log.Fatal(err)
	}

	for _, kind := range preempt.Kinds() {
		r, err := runScenario(cfg, batchParams, lsParams, kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14.2f %14.2f %14.2f %13.2f%%\n",
			kind, r.lsWaitUs, r.lsTotalUs, r.resumeUs,
			100*(r.batchUs-baseBatch.batchUs)/baseBatch.batchUs)
	}
}

type result struct {
	lsWaitUs  float64 // signal -> SM released
	lsTotalUs float64 // signal -> LS job finished
	resumeUs  float64
	batchUs   float64 // batch job completion time
}

// runScenario runs the batch job, optionally preempts SM 0 for the
// latency-sensitive job at one third of the batch runtime, and reports
// the timings. kind < 0 runs the batch job alone.
func runScenario(cfg sim.Config, batchParams, lsParams kernels.Params, kind preempt.Kind) (result, error) {
	batch, err := kernels.ByAbbrev("KM", batchParams)
	if err != nil {
		return result{}, err
	}
	d, err := sim.NewDevice(cfg)
	if err != nil {
		return result{}, err
	}

	var tech preempt.Technique
	if kind >= 0 {
		if tech, err = preempt.New(kind, batch.Prog); err != nil {
			return result{}, err
		}
		d.AttachRuntime(tech)
	}
	bl, err := batch.Launch(d)
	if err != nil {
		return result{}, err
	}
	if kind < 0 {
		if err := d.Run(1 << 40); err != nil {
			return result{}, err
		}
		if err := batch.Verify(d); err != nil {
			return result{}, fmt.Errorf("batch verify: %w", err)
		}
		return result{batchUs: d.Micros()}, nil
	}

	// Estimate a mid-run arrival point from a dry run.
	dry, err := sim.NewDevice(cfg)
	if err != nil {
		return result{}, err
	}
	batchDry, _ := kernels.ByAbbrev("KM", batchParams)
	if _, err := batchDry.Launch(dry); err != nil {
		return result{}, err
	}
	if err := dry.Run(1 << 40); err != nil {
		return result{}, err
	}
	arrival := dry.Now() / 3

	if err := d.RunToCycle(arrival, 1<<40); err != nil {
		return result{}, err
	}
	signal := d.Now()
	ep, err := d.Preempt(0, tech)
	if err != nil {
		return result{}, err
	}
	if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
		return result{}, err
	}
	d.AdvanceTo(ep.SignalCycle + ep.PreemptLatencyCycles())
	waitCycles := ep.PreemptLatencyCycles()

	// The latency-sensitive job takes over the freed SM.
	ls, err := kernels.ByAbbrev("RELU", lsParams)
	if err != nil {
		return result{}, err
	}
	// The LS buffers live at MemBase, well above the batch job's.
	if err := ls.Init(d); err != nil {
		return result{}, err
	}
	lsl, err := d.Launch(sim.LaunchSpec{
		Prog: ls.Prog, NumBlocks: ls.NumBlocks, WarpsPerBlock: ls.WarpsPerBlock,
		Setup: ls.WarpSetup, SMFilter: []int{0},
	})
	if err != nil {
		return result{}, err
	}
	if err := d.RunUntil(lsl.Done, 1<<40); err != nil {
		return result{}, err
	}
	lsDone := d.Now()
	if debug {
		fmt.Printf("  [%v] signal=%d allSaved=%d lat=%d lsDone=%d\n",
			kind, signal, ep.SignalCycle+ep.PreemptLatencyCycles(), ep.PreemptLatencyCycles(), lsDone)
	}

	// Give the SM back to the batch job.
	if err := d.Resume(ep); err != nil {
		return result{}, err
	}
	if err := d.RunUntil(func() bool { return ep.Finished() && bl.Done() }, 1<<40); err != nil {
		return result{}, err
	}
	if err := batch.Verify(d); err != nil {
		return result{}, fmt.Errorf("%v: batch output corrupted: %w", kind, err)
	}
	return result{
		lsWaitUs:  cfg.CyclesToMicros(waitCycles),
		lsTotalUs: cfg.CyclesToMicros(lsDone - signal),
		resumeUs:  cfg.CyclesToMicros(ep.ResumeCycles()),
		batchUs:   d.Micros(),
	}, nil
}
