// CKPT trade-off: the paper argues (§II-B, §V-C) that checkpoint-based
// mechanisms face an inherent tension — frequent checkpoints cost
// runtime, infrequent ones cost resume time — while CTXBack escapes the
// trade-off entirely. This example sweeps the checkpoint interval on the
// DOT kernel and prints both axes, with CTXBack as the reference row.
package main

import (
	"fmt"
	"log"

	"ctxback/internal/isa"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

var (
	cfg    = sim.DefaultConfig()
	params = kernels.Params{NumBlocks: 16, WarpsPerBlock: 2, ItersPerWarp: 96, Seed: 7}
)

func main() {
	clean, signal, err := cleanRun()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Checkpoint-interval sweep on DOT (resume time vs runtime overhead)")
	fmt.Printf("%-24s %14s %18s\n", "mechanism", "resume us", "runtime overhead")
	for _, interval := range []int{2, 4, 16, 64, 256} {
		interval := interval
		resumeUs, overhead, err := measure(signal, clean, func(p *isa.Program) (preempt.Technique, error) {
			return preempt.NewCKPT(p, interval)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CKPT interval %-10d %14.2f %17.2f%%\n", interval, resumeUs, overhead*100)
	}
	resumeUs, overhead, err := measure(signal, clean, func(p *isa.Program) (preempt.Technique, error) {
		return preempt.NewCTXBack(p)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %14.2f %17.2f%%\n", "CTXBack", resumeUs, overhead*100)
	fmt.Println("\nCTXBack sits in the corner the checkpoint sweep cannot reach:")
	fmt.Println("near-zero runtime overhead AND a short resume.")
}

// cleanRun measures the uninstrumented runtime and picks a mid-run
// preemption point.
func cleanRun() (cleanCycles, signal int64, err error) {
	wl, err := kernels.ByAbbrev("DOT", params)
	if err != nil {
		return 0, 0, err
	}
	d, err := sim.NewDevice(cfg)
	if err != nil {
		return 0, 0, err
	}
	if _, err := wl.Launch(d); err != nil {
		return 0, 0, err
	}
	if err := d.Run(1 << 40); err != nil {
		return 0, 0, err
	}
	if err := wl.Verify(d); err != nil {
		return 0, 0, err
	}
	return d.Now(), d.Now() / 2, nil
}

// measure runs the kernel under the technique's instrumentation,
// preempts at signal, resumes, and reports (resume us, runtime overhead).
func measure(signal, clean int64, mk func(*isa.Program) (preempt.Technique, error)) (float64, float64, error) {
	// Runtime overhead: instrumented full run, no preemption.
	wl, err := kernels.ByAbbrev("DOT", params)
	if err != nil {
		return 0, 0, err
	}
	tech, err := mk(wl.Prog)
	if err != nil {
		return 0, 0, err
	}
	d, err := sim.NewDevice(cfg)
	if err != nil {
		return 0, 0, err
	}
	d.AttachRuntime(tech)
	if _, err := wl.Launch(d); err != nil {
		return 0, 0, err
	}
	if err := d.Run(1 << 40); err != nil {
		return 0, 0, err
	}
	if err := wl.Verify(d); err != nil {
		return 0, 0, fmt.Errorf("instrumented run corrupted output: %w", err)
	}
	overhead := float64(d.Now()-clean) / float64(clean)

	// Resume time: preempt mid-run.
	wl2, err := kernels.ByAbbrev("DOT", params)
	if err != nil {
		return 0, 0, err
	}
	tech2, err := mk(wl2.Prog)
	if err != nil {
		return 0, 0, err
	}
	d2, err := sim.NewDevice(cfg)
	if err != nil {
		return 0, 0, err
	}
	d2.AttachRuntime(tech2)
	if _, err := wl2.Launch(d2); err != nil {
		return 0, 0, err
	}
	if err := d2.RunToCycle(signal, 1<<40); err != nil {
		return 0, 0, err
	}
	ep, err := d2.Preempt(0, tech2)
	if err != nil {
		return 0, 0, err
	}
	if err := d2.RunUntil(ep.Saved, 1<<40); err != nil {
		return 0, 0, err
	}
	if err := d2.Resume(ep); err != nil {
		return 0, 0, err
	}
	if err := d2.Run(1 << 40); err != nil {
		return 0, 0, err
	}
	if err := wl2.Verify(d2); err != nil {
		return 0, 0, fmt.Errorf("preempted run corrupted output: %w", err)
	}
	return cfg.CyclesToMicros(ep.ResumeCycles()), overhead, nil
}
