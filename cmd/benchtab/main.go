// Command benchtab regenerates the paper's evaluation artifacts on the
// simulator: Table I and Figures 7-10, the headline summary, and the
// ablation of CTXBack's three techniques.
//
// Usage:
//
//	benchtab [-quick] [-samples N] [-procs N] [-shards N] [-table1]
//	         [-fig7] [-fig8] [-fig9] [-fig10] [-ablation] [-summary]
//	         [-all] [-metrics]
//	benchtab -sched [-quick] [-procs N] [-shards N]
//	benchtab -chaos [-faults RATE] [-fault-seed N]
//
// -procs and -shards are orthogonal parallelism axes: -procs spreads
// independent preemption episodes across a worker pool, -shards splits
// each simulated device's SMs across goroutines (the epoch-parallel
// engine). Reported numbers are byte-identical at every combination;
// -shards 0 (auto) shards only when the episode pool is serial, since
// with -procs > 1 the pool already saturates the cores.
//
// -sched replays one seeded multi-tenant arrival trace under every
// technique on the preemptive scheduler (internal/sched) and prints the
// cross-technique turnaround comparison. cmd/schedsim exposes the trace
// knobs; here the canonical contended trace is fixed so runs are
// comparable. -sched output is additive and does not alter -all.
//
// -metrics appends the observability report after the requested
// experiments: the episode counters/latency histograms accumulated
// while measuring, plus the per-(kernel, technique) phase breakdown
// (drain/save/restore/replay). The breakdown reuses the memoized
// episode matrix, so with -all it costs no extra simulation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ctxback/internal/artifact"
	"ctxback/internal/harness"
	"ctxback/internal/preempt"
	"ctxback/internal/sched"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "small configuration (fast, less faithful)")
		samples    = flag.Int("samples", 0, "preemption sample points per kernel x technique")
		table1     = flag.Bool("table1", false, "regenerate Table I")
		fig7       = flag.Bool("fig7", false, "regenerate Fig 7 (context size)")
		fig8       = flag.Bool("fig8", false, "regenerate Fig 8 (preemption time)")
		fig9       = flag.Bool("fig9", false, "regenerate Fig 9 (resume time)")
		fig10      = flag.Bool("fig10", false, "regenerate Fig 10 (runtime overhead)")
		ablation   = flag.Bool("ablation", false, "CTXBack technique ablation")
		summary    = flag.Bool("summary", false, "headline numbers (implies figs 7-10)")
		qos        = flag.String("qos", "", "waiting-time distribution for one benchmark (e.g. -qos KM)")
		contention = flag.String("contention", "", "BASELINE switch time vs busy SMs for one benchmark (e.g. -contention KM)")
		all        = flag.Bool("all", false, "everything (fault-free evaluation; chaos stays opt-in)")
		procs      = flag.Int("procs", 0, "episode workers: 0 = GOMAXPROCS, 1 = serial (identical numbers either way)")
		shards     = flag.Int("shards", 0, "SM shards per simulated device: 0 = auto (shard only when -procs resolves serial; the episode pool otherwise saturates the cores), 1 = serial, n>1 = n goroutines; identical numbers either way")
		metrics    = flag.Bool("metrics", false, "append episode counters, latency histograms and the phase breakdown")
		schedCmp   = flag.Bool("sched", false, "multi-tenant preemptive-schedule comparison across every technique")
		chaos      = flag.Bool("chaos", false, "fault-injection robustness sweep across kernels x techniques")
		faultRate  = flag.Float64("faults", 0, "chaos fault rate in [0,1] (0 = sweep the default rates)")
		faultSeed  = flag.Uint64("fault-seed", 0, "chaos fault seed (0 = default)")
		cache      = flag.String("cache-dir", "", "persistent content-addressed artifact cache shared across runs and processes (empty = disabled)")
	)
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchtab: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *procs < 0 {
		usageErr("-procs must be >= 0, got %d", *procs)
	}
	if *shards < 0 {
		usageErr("-shards must be >= 0, got %d", *shards)
	}
	if math.IsNaN(*faultRate) || *faultRate < 0 || *faultRate > 1 {
		usageErr("-faults must be a rate in [0,1], got %v", *faultRate)
	}

	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	opts.Parallelism = *procs
	opts.Shards = *shards
	if *metrics {
		opts.Metrics = trace.NewRegistry()
	}
	if !(*table1 || *fig7 || *fig8 || *fig9 || *fig10 || *ablation || *summary || *qos != "" || *contention != "" || *chaos || *schedCmp) {
		*all = true
	}
	if *all {
		*table1, *fig7, *fig8, *fig9, *fig10, *ablation, *summary = true, true, true, true, true, true, true
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	if *cache != "" {
		st, err := artifact.Open(*cache)
		if err != nil {
			fail(err)
		}
		artifact.SetDefault(st)
	}

	// One Runner for every requested experiment: each kernel's golden
	// run is simulated once and shared by Table I and Figs 8-10.
	r := harness.NewRunner(opts)

	if *table1 {
		rows, err := r.TableI()
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderTableI(rows))
	}

	var f7, f8, f9, f10 *harness.Figure
	var err error
	if *fig7 || *summary {
		if f7, err = r.Fig7(); err != nil {
			fail(err)
		}
		if *fig7 {
			fmt.Println(harness.RenderFigure(f7))
		}
	}
	if *fig8 || *fig9 || *summary {
		if f8, f9, err = r.MeasureDynamic(); err != nil {
			fail(err)
		}
		if *fig8 {
			fmt.Println(harness.RenderFigure(f8))
		}
		if *fig9 {
			fmt.Println(harness.RenderFigure(f9))
		}
	}
	if *fig10 || *summary {
		if f10, err = r.Fig10(); err != nil {
			fail(err)
		}
		if *fig10 {
			fmt.Println(harness.RenderFigure(f10))
		}
	}
	if *ablation {
		rows, err := r.Ablation()
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderAblation(rows))
	}
	if *summary {
		fmt.Println(harness.RenderSummary(harness.Summarize(f7, f8, f9, f10)))
	}
	if *qos != "" {
		res, err := r.WaitDistribution(*qos, max(opts.Samples*3, 9))
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderQoS(res))
	}
	if *contention != "" {
		rows, err := harness.ContentionSweep(opts, *contention)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderContention(*contention, rows))
	}
	if *schedCmp {
		// The canonical contended trace: one SM so every arrival fights
		// for it, arrivals dense enough to force preemptions. On the full
		// device the slow context path keeps SM-flushing competitive for
		// these early preemptions (the Chimera trade-off); the quick
		// device shows CTXBack ahead of both BASELINE and SM-flushing.
		tc := sched.TraceConfig{Seed: 9, NumJobs: 8, NumTenants: 3, MeanGapCycles: 3_000}
		sc := sched.DefaultSchedConfig()
		sc.Dev.NumSMs = 1
		// Long enough that a flush-and-restart forfeits real progress.
		sc.Params.ItersPerWarp = 24
		sc.Metrics = opts.Metrics
		sc.Shards = *shards
		if *quick {
			sc.Dev = sim.TestConfig()
			sc.Dev.NumSMs = 1
			sc.Dev.GlobalMemBytes = 64 << 20
			sc.MaxCycles = 200_000_000
		}
		cmp, err := r.Schedule(tc, sc, preempt.ExtendedKinds())
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderSchedule(cmp))
	}
	if *metrics {
		rows, err := r.PhaseBreakdown(preempt.Kinds())
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderPhases(preempt.Kinds(), rows))
		fmt.Println(opts.Metrics.Render())
	}
	if *chaos {
		co := harness.DefaultChaosOptions()
		if *faultRate > 0 {
			co.Rates = []float64{*faultRate}
		}
		if *faultSeed != 0 {
			co.Seed = *faultSeed
		}
		rep, err := r.Chaos(co)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderChaos(rep))
		if rep.SilentWrong() > 0 || rep.Unrecoverable() > 0 {
			fail(fmt.Errorf("chaos: %d silent-wrong, %d unrecoverable episodes",
				rep.SilentWrong(), rep.Unrecoverable()))
		}
	}
}
