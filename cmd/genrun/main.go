// Command genrun drives the seeded SIMT program generator through the
// differential sweep: every seed's kernel runs uninterrupted and under
// forced mid-flight preemption by each technique, and the final device
// memory is byte-compared against the host-side golden interpreter.
// Sampled oracles ride along: scan-vs-readyqueue lockstep, epoch-
// parallel shards, resume integrity, snapshot round-trip, and a
// fault-injection chaos episode.
//
// Usage:
//
//	genrun [-start N] [-n N] [-procs N] [-kinds A,B,...] [-fracs F,F]
//	       [-shards-every N] [-scan-every N] [-integrity-every N]
//	       [-snapshot-every N] [-chaos-every N] [-chaos-rate R]
//	genrun -dump SEED
//
// The sweep is a deterministic function of (-start, -n) and the oracle
// options: the report is byte-identical at every -procs setting. A
// failing seed regenerates its exact kernel with -dump for triage.
// Exit status is nonzero if any seed fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ctxback/internal/artifact"
	"ctxback/internal/gen"
	"ctxback/internal/gen/sweep"
	"ctxback/internal/preempt"
)

func main() {
	var (
		start          = flag.Uint64("start", 0, "first seed")
		n              = flag.Uint64("n", 1000, "number of seeds")
		procs          = flag.Int("procs", 0, "sweep workers: 0 = one per technique count heuristic (8), 1 = serial; identical report either way")
		kindsFlag      = flag.String("kinds", "", "comma-separated technique names (default: all 8)")
		fracsFlag      = flag.String("fracs", "", "comma-separated signal fractions in (0,1) (default: 0.3,0.7)")
		shardsEvery    = flag.Int("shards-every", 4, "run the 2-shard oracle every Nth seed (0 = off)")
		scanEvery      = flag.Int("scan-every", 4, "run the reference-scheduler lockstep oracle every Nth seed (0 = off)")
		integrityEvery = flag.Int("integrity-every", 2, "attach the resume-integrity oracle every Nth seed (0 = off)")
		snapshotEvery  = flag.Int("snapshot-every", 8, "run the snapshot round-trip oracle every Nth seed (0 = off)")
		chaosEvery     = flag.Int("chaos-every", 4, "run the fault-injection chaos oracle every Nth seed (0 = off)")
		chaosRate      = flag.Float64("chaos-rate", 0.2, "chaos fault rate in (0,1]")
		dump           = flag.Int64("dump", -1, "disassemble one seed's kernel and exit")
		maxFail        = flag.Int("max-failures", 20, "failure lines printed before truncating")
		cache          = flag.String("cache-dir", "", "persistent content-addressed artifact cache shared across runs and processes (empty = disabled)")
	)
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "genrun: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if *dump >= 0 {
		p := gen.Generate(uint64(*dump))
		fmt.Printf("; seed %d: %d blocks x %d warps, %d top-level trips, idempotent=%v\n",
			p.Seed, p.NumBlocks, p.WarpsPerBlock, p.TopTrips, p.Idempotent)
		fmt.Print(p.Prog.Disassemble())
		return
	}
	if *n == 0 {
		usageErr("-n must be >= 1")
	}
	if *procs < 0 {
		usageErr("-procs must be >= 0, got %d", *procs)
	}
	for name, v := range map[string]int{
		"-shards-every": *shardsEvery, "-scan-every": *scanEvery,
		"-integrity-every": *integrityEvery, "-snapshot-every": *snapshotEvery,
		"-chaos-every": *chaosEvery,
	} {
		if v < 0 {
			usageErr("%s must be >= 0, got %d", name, v)
		}
	}
	if *chaosRate <= 0 || *chaosRate > 1 {
		usageErr("-chaos-rate must be in (0,1], got %g", *chaosRate)
	}
	if *cache != "" {
		st, err := artifact.Open(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genrun:", err)
			os.Exit(1)
		}
		artifact.SetDefault(st)
	}

	opt := sweep.DefaultOptions()
	opt.ShardsEvery, opt.ScanEvery = *shardsEvery, *scanEvery
	opt.IntegrityEvery, opt.SnapshotEvery = *integrityEvery, *snapshotEvery
	opt.ChaosEvery, opt.ChaosRate = *chaosEvery, *chaosRate
	if *kindsFlag != "" {
		kinds, err := parseKinds(*kindsFlag)
		if err != nil {
			usageErr("%v", err)
		}
		opt.Kinds = kinds
	}
	if *fracsFlag != "" {
		fracs, err := parseFracs(*fracsFlag)
		if err != nil {
			usageErr("%v", err)
		}
		opt.SignalFracs = fracs
	}

	workers := *procs
	if workers == 0 {
		workers = 8
	}
	rep := sweep.Run(*start, *n, workers, opt)
	fmt.Print(rep.Summary())
	if len(rep.Failures) > 0 {
		for i, f := range rep.Failures {
			if i >= *maxFail {
				fmt.Fprintf(os.Stderr, "... %d more failures\n", len(rep.Failures)-i)
				break
			}
			fmt.Fprintln(os.Stderr, f.String())
		}
		fmt.Fprintf(os.Stderr, "genrun: %d of %d seeds failed (regenerate one with -dump SEED)\n",
			rep.Seeds-rep.Passed, rep.Seeds)
		os.Exit(1)
	}
}

// parseKinds resolves comma-separated technique names against the
// extended technique set, case-insensitively.
func parseKinds(s string) ([]preempt.Kind, error) {
	byName := make(map[string]preempt.Kind)
	var known []string
	for _, k := range preempt.ExtendedKinds() {
		byName[strings.ToLower(k.String())] = k
		known = append(known, k.String())
	}
	sort.Strings(known)
	var kinds []preempt.Kind
	for _, part := range strings.Split(s, ",") {
		k, ok := byName[strings.ToLower(strings.TrimSpace(part))]
		if !ok {
			return nil, fmt.Errorf("unknown technique %q (known: %s)", part, strings.Join(known, ", "))
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func parseFracs(s string) ([]float64, error) {
	var fracs []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad signal fraction %q: %v", part, err)
		}
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("signal fraction %g outside (0,1)", f)
		}
		fracs = append(fracs, f)
	}
	return fracs, nil
}
