// Command tracecheck validates Chrome trace-event JSON files produced
// by gpusim -trace: known phase types, non-negative timestamps and
// durations, and cycle-monotone event order. Exit status 1 on the
// first invalid file, so CI can smoke-test the tracing pipeline:
//
//	gpusim -kernel VA -technique CTXBack -trace va.trace.json
//	tracecheck va.trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ctxback/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			bad = true
			continue
		}
		n, err := trace.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: %d events ok\n", path, n)
	}
	if bad {
		os.Exit(1)
	}
}
