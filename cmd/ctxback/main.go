// Command ctxback runs the CTXBack compiler pass on a kernel and reports
// the selected flashback-points, contexts, and dedicated routines.
//
// Usage:
//
//	ctxback -kernel KM                 # one of the Table-I benchmarks
//	ctxback -asm kernel.s              # or any assembly file
//	ctxback -kernel VA -pc 9           # dump the routines for one PC
//	ctxback -kernel VA -features relaxed,revert
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctxback/internal/core"
	"ctxback/internal/isa"
	"ctxback/internal/kernels"
	"ctxback/internal/liveness"
)

func main() {
	var (
		kernel   = flag.String("kernel", "", "Table-I benchmark abbreviation (AP, DC, DOT, GE, HS, KM, LRN, MM, MS, MV, RELU, VA)")
		asmFile  = flag.String("asm", "", "assembly file to compile instead of a benchmark")
		pc       = flag.Int("pc", -1, "dump the dedicated routines for this PC")
		features = flag.String("features", "relaxed,revert,osrb", "comma-separated CTXBack features")
		disasm   = flag.Bool("disasm", false, "print the kernel disassembly")
	)
	flag.Parse()

	prog, err := loadProgram(*kernel, *asmFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxback:", err)
		os.Exit(1)
	}
	feats, err := parseFeatures(*features)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxback:", err)
		os.Exit(1)
	}
	if *disasm {
		fmt.Println(prog.Disassemble())
	}

	c, err := core.Compile(prog, feats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxback:", err)
		os.Exit(1)
	}
	live := liveness.Analyze(c.Graph)

	if *pc >= 0 {
		dumpPC(c, *pc)
		return
	}

	fmt.Printf("kernel %s: %d instructions, features %s\n", prog.Name, prog.Len(), feats)
	fmt.Printf("%4s %6s %10s %10s %8s %8s  %s\n", "PC", "Q", "live B", "plan B", "re-exec", "reverts", "instruction")
	var sumLive, sumPlan float64
	for p := 0; p < prog.Len(); p++ {
		plan := c.Plans[p]
		lb := live.ContextBytes(p)
		sumLive += float64(lb)
		sumPlan += float64(plan.ContextBytes)
		fmt.Printf("%4d %6d %10d %10d %8d %8d  %s\n",
			p, plan.Q, lb, plan.ContextBytes, plan.ReExecCount,
			len(plan.PreemptReverts)+len(plan.ResumeReverts), prog.At(p).String())
	}
	fmt.Printf("\nmean context: LIVE %.0f B, CTXBack %.0f B (%.1f%% smaller)\n",
		sumLive/float64(prog.Len()), sumPlan/float64(prog.Len()), (1-sumPlan/sumLive)*100)
	fmt.Printf("routine sharing: %d unique preemption routines for %d instructions (%d B transferred vs %d B unshared)\n",
		c.UniqueRoutines, prog.Len(), c.SharedRoutineBytes, c.UnsharedRoutineBytes)
	if len(c.OSRB) > 0 {
		fmt.Printf("OSRB backups: %v (instrumented at %d block entries)\n", c.OSRB, len(c.BackupAt))
	}
}

func loadProgram(kernel, asmFile string) (*isa.Program, error) {
	switch {
	case kernel != "":
		wl, err := kernels.ByAbbrev(strings.ToUpper(kernel), kernels.TestParams())
		if err != nil {
			return nil, err
		}
		return wl.Prog, nil
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return isa.Assemble(string(src))
	}
	return nil, fmt.Errorf("need -kernel or -asm (benchmarks: %s)", benchmarkList())
}

func benchmarkList() string {
	all, _ := kernels.All(kernels.TestParams())
	var names []string
	for _, wl := range all {
		names = append(names, wl.Abbrev)
	}
	return strings.Join(names, ", ")
}

func parseFeatures(s string) (core.Feature, error) {
	var f core.Feature
	if s == "" || s == "none" {
		return 0, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "relaxed":
			f |= core.FeatRelaxed
		case "revert":
			f |= core.FeatRevert
		case "osrb":
			f |= core.FeatOSRB
		case "all":
			f |= core.FeatAll
		default:
			return 0, fmt.Errorf("unknown feature %q (relaxed, revert, osrb, all)", part)
		}
	}
	return f, nil
}

func dumpPC(c *core.Compiled, pc int) {
	if pc >= c.Prog.Len() {
		fmt.Fprintf(os.Stderr, "ctxback: pc %d out of range (kernel has %d instructions)\n", pc, c.Prog.Len())
		os.Exit(1)
	}
	plan := c.Plans[pc]
	fmt.Printf("pc %d: %s\n", pc, c.Prog.At(pc).String())
	fmt.Printf("flashback-point: pc %d (window of %d)\n", plan.Q, plan.WindowLen())
	fmt.Printf("context: %d bytes; %d instructions re-execute at resume\n\n", plan.ContextBytes, plan.ReExecCount)
	fmt.Println("dedicated preemption routine:")
	for _, in := range c.PreemptRoutines[pc] {
		fmt.Printf("    %s\n", in.String())
	}
	fmt.Println("dedicated resume routine:")
	for _, in := range c.ResumeRoutines[pc] {
		fmt.Printf("    %s\n", in.String())
	}
}
