// Command schedsim replays a seeded multi-tenant arrival trace on the
// deterministic preemptive scheduler (internal/sched) and compares
// preemption techniques on the identical trace.
//
// Usage:
//
//	schedsim [-seed N] [-jobs N] [-tenants N] [-gap CYCLES] [-prio N]
//	         [-sms N] [-iters N] [-kinds all|paper|K1,K2,...]
//	         [-quick] [-procs N] [-shards N] [-verify=false] [-metrics]
//	         [-events]
//
// The trace (who arrives when, with which kernel and priority) is a
// pure function of the flags, and each technique's run is a
// deterministic simulation, so two invocations with the same flags are
// byte-identical regardless of -procs and -shards. The two flags are
// orthogonal parallelism axes: -procs runs whole technique replays on
// separate workers, -shards splits each simulated device's SMs across
// goroutines (epoch-parallel engine, capped at -sms).
//
// -events appends each technique's scheduling decision log (arrivals,
// preemptions, parks, resumes, completions with cycle stamps).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctxback/internal/harness"
	"ctxback/internal/preempt"
	"ctxback/internal/sched"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

// parseKinds resolves a -kinds value: "all" (every technique including
// the SM-flushing and Chimera extensions), "paper" (the six evaluated
// in the paper), or a comma-separated list of technique names as
// printed in reports (case-insensitive).
func parseKinds(spec string) ([]preempt.Kind, error) {
	switch strings.ToLower(spec) {
	case "", "all":
		return preempt.ExtendedKinds(), nil
	case "paper":
		return preempt.Kinds(), nil
	}
	var kinds []preempt.Kind
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, k := range preempt.ExtendedKinds() {
			if strings.EqualFold(name, k.String()) {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, k := range preempt.ExtendedKinds() {
				known = append(known, k.String())
			}
			return nil, fmt.Errorf("unknown technique %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	return kinds, nil
}

func main() {
	var (
		seed    = flag.Int64("seed", 1, "arrival-trace seed")
		jobs    = flag.Int("jobs", 8, "number of kernel launches in the trace")
		tenants = flag.Int("tenants", 3, "number of tenants sharing the device")
		gap     = flag.Int64("gap", 3_000, "mean inter-arrival gap in cycles")
		prio    = flag.Int("prio", 3, "priorities are drawn from [0, prio]")
		sms     = flag.Int("sms", 1, "number of SMs (1 = maximum contention)")
		iters   = flag.Int("iters", 24, "per-warp loop iterations (kernel length)")
		kindsF  = flag.String("kinds", "all", "techniques: all, paper, or comma-separated names (e.g. BASELINE,CTXBack)")
		quick   = flag.Bool("quick", false, "small unit-test device model (fast, less faithful)")
		procs   = flag.Int("procs", 0, "technique-run workers: 0 = GOMAXPROCS, 1 = serial (identical output either way)")
		shards  = flag.Int("shards", 0, "SM shards inside each technique's device: 0/1 = serial, n>1 = n goroutines capped at -sms (identical output either way; -procs spreads whole technique runs, -shards splits one device)")
		verify  = flag.Bool("verify", true, "check every job's output against its CPU golden reference")
		metrics = flag.Bool("metrics", false, "append per-tenant counters and latency histograms")
		events  = flag.Bool("events", false, "append each technique's scheduling decision log")
	)
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "schedsim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
	if *jobs <= 0 || *tenants <= 0 || *gap <= 0 || *prio < 0 || *sms <= 0 || *iters <= 0 {
		usageErr("-jobs, -tenants, -gap, -sms and -iters must be positive; -prio must be >= 0")
	}
	if *procs < 0 {
		usageErr("-procs must be >= 0, got %d", *procs)
	}
	if *shards < 0 {
		usageErr("-shards must be >= 0, got %d", *shards)
	}
	kinds, err := parseKinds(*kindsF)
	if err != nil {
		usageErr("%v", err)
	}

	tc := sched.TraceConfig{
		Seed:          *seed,
		NumJobs:       *jobs,
		NumTenants:    *tenants,
		MaxPriority:   *prio,
		MeanGapCycles: *gap,
	}
	sc := sched.DefaultSchedConfig()
	if *quick {
		sc.Dev = sim.TestConfig()
		sc.Dev.GlobalMemBytes = 64 << 20
		sc.MaxCycles = 200_000_000
	}
	sc.Dev.NumSMs = *sms
	sc.Params.ItersPerWarp = *iters
	sc.Verify = *verify
	sc.Shards = *shards
	if *metrics {
		sc.Metrics = trace.NewRegistry()
	}

	o := harness.QuickOptions()
	o.Parallelism = *procs
	o.Shards = *shards
	r := harness.NewRunner(o)
	cmp, err := r.Schedule(tc, sc, kinds)
	if err != nil {
		fail(err)
	}
	fmt.Println(harness.RenderSchedule(cmp))
	if *events {
		for _, res := range cmp.Results {
			fmt.Printf("\n%s decision log:\n%s", res.Kind, res.EventLog())
		}
	}
	if *metrics {
		fmt.Println()
		fmt.Println(sc.Metrics.Render())
	}
}
