// Command schedsim replays a seeded multi-tenant arrival trace on the
// deterministic preemptive scheduler (internal/sched) and compares
// preemption techniques on the identical trace.
//
// Usage:
//
//	schedsim [-seed N] [-jobs N] [-tenants N] [-gap CYCLES] [-prio N]
//	         [-sms N] [-iters N] [-kinds all|paper|K1,K2,...]
//	         [-quick] [-procs N] [-shards N] [-verify=false] [-metrics]
//	         [-events]
//	         [-devices N] [-checkpoint-every N] [-kill-device ID@CYCLE]
//	         [-warm-pool N] [-statehash]
//
// The trace (who arrives when, with which kernel and priority) is a
// pure function of the flags, and each technique's run is a
// deterministic simulation, so two invocations with the same flags are
// byte-identical regardless of -procs and -shards. The two flags are
// orthogonal parallelism axes: -procs runs whole technique replays on
// separate workers, -shards splits each simulated device's SMs across
// goroutines (epoch-parallel engine, capped at -sms).
//
// -events appends each technique's scheduling decision log (arrivals,
// preemptions, parks, resumes, completions with cycle stamps).
//
// Any of -devices, -checkpoint-every, -kill-device, -warm-pool or
// -statehash switches to FLEET mode: the trace is partitioned across
// -devices simulated GPUs, every device is checkpointed whole
// (internal/snapshot) on the -checkpoint-every cadence, and
// -kill-device ID@CYCLE chaos-kills one device mid-run — its jobs
// restore from the last checkpoint (warm from the -warm-pool when one
// is configured) or re-admit to the survivors. -statehash appends the
// per-job slab-digest witness, which is byte-identical between a killed
// and an undisturbed run of the same trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ctxback/internal/harness"
	"ctxback/internal/preempt"
	"ctxback/internal/sched"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

// parseKinds resolves a -kinds value: "all" (every technique including
// the SM-flushing and Chimera extensions), "paper" (the six evaluated
// in the paper), or a comma-separated list of technique names as
// printed in reports (case-insensitive).
func parseKinds(spec string) ([]preempt.Kind, error) {
	switch strings.ToLower(spec) {
	case "", "all":
		return preempt.ExtendedKinds(), nil
	case "paper":
		return preempt.Kinds(), nil
	}
	var kinds []preempt.Kind
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, k := range preempt.ExtendedKinds() {
			if strings.EqualFold(name, k.String()) {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, k := range preempt.ExtendedKinds() {
				known = append(known, k.String())
			}
			return nil, fmt.Errorf("unknown technique %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	return kinds, nil
}

func main() {
	var (
		seed    = flag.Int64("seed", 1, "arrival-trace seed")
		jobs    = flag.Int("jobs", 8, "number of kernel launches in the trace")
		tenants = flag.Int("tenants", 3, "number of tenants sharing the device")
		gap     = flag.Int64("gap", 3_000, "mean inter-arrival gap in cycles")
		prio    = flag.Int("prio", 3, "priorities are drawn from [0, prio]")
		sms     = flag.Int("sms", 1, "number of SMs (1 = maximum contention)")
		iters   = flag.Int("iters", 24, "per-warp loop iterations (kernel length)")
		kindsF  = flag.String("kinds", "all", "techniques: all, paper, or comma-separated names (e.g. BASELINE,CTXBack)")
		quick   = flag.Bool("quick", false, "small unit-test device model (fast, less faithful)")
		procs   = flag.Int("procs", 0, "technique-run workers: 0 = GOMAXPROCS, 1 = serial (identical output either way)")
		shards  = flag.Int("shards", 0, "SM shards inside each technique's device: 0/1 = serial, n>1 = n goroutines capped at -sms (identical output either way; -procs spreads whole technique runs, -shards splits one device)")
		verify  = flag.Bool("verify", true, "check every job's output against its CPU golden reference")
		metrics = flag.Bool("metrics", false, "append per-tenant counters and latency histograms")
		events  = flag.Bool("events", false, "append each technique's scheduling decision log")

		devices   = flag.Int("devices", 0, "fleet mode: partition the trace across N devices (0 = single-device comparison)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "fleet mode: whole-device checkpoint cadence in cycles (0 = no checkpoints)")
		killSpec  = flag.String("kill-device", "", "fleet mode: chaos-kill device ID at CYCLE, as ID@CYCLE (e.g. 0@80000)")
		warmPool  = flag.Int("warm-pool", 0, "fleet mode: pre-built device shells kept warm for restores")
		statehash = flag.Bool("statehash", false, "fleet mode: append the per-job slab-digest state witness")
	)
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "schedsim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
	if *jobs <= 0 || *tenants <= 0 || *gap <= 0 || *prio < 0 || *sms <= 0 || *iters <= 0 {
		usageErr("-jobs, -tenants, -gap, -sms and -iters must be positive; -prio must be >= 0")
	}
	if *procs < 0 {
		usageErr("-procs must be >= 0, got %d", *procs)
	}
	if *shards < 0 {
		usageErr("-shards must be >= 0, got %d", *shards)
	}
	if *devices < 0 {
		usageErr("-devices must be >= 0, got %d", *devices)
	}
	if *ckptEvery < 0 {
		usageErr("-checkpoint-every must be >= 0, got %d", *ckptEvery)
	}
	if *warmPool < 0 {
		usageErr("-warm-pool must be >= 0, got %d", *warmPool)
	}
	fleet := *devices > 0 || *ckptEvery > 0 || *killSpec != "" || *warmPool > 0 || *statehash
	fo := sched.FailoverConfig{
		Devices:         *devices,
		CheckpointEvery: *ckptEvery,
		KillDevice:      -1,
		WarmPool:        *warmPool,
	}
	if fo.Devices == 0 {
		fo.Devices = 2
	}
	if *killSpec != "" {
		idS, cycS, ok := strings.Cut(*killSpec, "@")
		if !ok {
			usageErr("-kill-device wants ID@CYCLE, got %q", *killSpec)
		}
		id, err1 := strconv.Atoi(idS)
		cyc, err2 := strconv.ParseInt(cycS, 10, 64)
		if err1 != nil || err2 != nil {
			usageErr("-kill-device wants ID@CYCLE, got %q", *killSpec)
		}
		if id < 0 || id >= fo.Devices {
			usageErr("-kill-device id %d out of range (fleet has %d devices)", id, fo.Devices)
		}
		if cyc <= 0 {
			usageErr("-kill-device cycle must be positive, got %d", cyc)
		}
		fo.KillDevice, fo.KillCycle = id, cyc
	}
	kinds, err := parseKinds(*kindsF)
	if err != nil {
		usageErr("%v", err)
	}

	tc := sched.TraceConfig{
		Seed:          *seed,
		NumJobs:       *jobs,
		NumTenants:    *tenants,
		MaxPriority:   *prio,
		MeanGapCycles: *gap,
	}
	sc := sched.DefaultSchedConfig()
	if *quick {
		sc.Dev = sim.TestConfig()
		sc.Dev.GlobalMemBytes = 64 << 20
		sc.MaxCycles = 200_000_000
	}
	sc.Dev.NumSMs = *sms
	sc.Params.ItersPerWarp = *iters
	sc.Verify = *verify
	sc.Shards = *shards
	if *metrics {
		sc.Metrics = trace.NewRegistry()
	}

	if fleet {
		jobs, err := sched.GenTrace(tc)
		if err != nil {
			fail(err)
		}
		for i, k := range kinds {
			if i > 0 {
				fmt.Println()
			}
			fr, err := sched.RunFleet(sc, k, jobs, fo)
			if err != nil {
				fail(err)
			}
			fmt.Print(fr.Render())
			if *statehash {
				fmt.Print(fr.StateHash())
			}
		}
		if *metrics {
			fmt.Println()
			fmt.Println(sc.Metrics.Render())
		}
		return
	}

	o := harness.QuickOptions()
	o.Parallelism = *procs
	o.Shards = *shards
	r := harness.NewRunner(o)
	cmp, err := r.Schedule(tc, sc, kinds)
	if err != nil {
		fail(err)
	}
	fmt.Println(harness.RenderSchedule(cmp))
	if *events {
		for _, res := range cmp.Results {
			fmt.Printf("\n%s decision log:\n%s", res.Kind, res.EventLog())
		}
	}
	if *metrics {
		fmt.Println()
		fmt.Println(sc.Metrics.Render())
	}
}
