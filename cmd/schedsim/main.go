// Command schedsim replays a seeded multi-tenant arrival trace on the
// deterministic preemptive scheduler (internal/sched) and compares
// preemption techniques on the identical trace.
//
// Usage:
//
//	schedsim [-seed N] [-jobs N] [-tenants N] [-gap CYCLES] [-prio N]
//	         [-sms N] [-iters N] [-kinds all|paper|K1,K2,...]
//	         [-quick] [-procs N] [-shards N] [-verify=false] [-metrics]
//	         [-events] [-cache-dir DIR]
//	         [-devices N] [-checkpoint-every N] [-kill-device ID@CYCLE]
//	         [-warm-pool N] [-statehash]
//
// The trace (who arrives when, with which kernel and priority) is a
// pure function of the flags, and each technique's run is a
// deterministic simulation, so two invocations with the same flags are
// byte-identical regardless of -procs and -shards. The two flags are
// orthogonal parallelism axes: -procs runs whole technique replays on
// separate workers, -shards splits each simulated device's SMs across
// goroutines (epoch-parallel engine, capped at -sms).
//
// -events appends each technique's scheduling decision log (arrivals,
// preemptions, parks, resumes, completions with cycle stamps).
//
// Any of -devices, -checkpoint-every, -kill-device, -warm-pool or
// -statehash switches to FLEET mode: the trace is partitioned across
// -devices simulated GPUs, every device is checkpointed whole
// (internal/snapshot) on the -checkpoint-every cadence, and
// -kill-device ID@CYCLE chaos-kills one device mid-run — its jobs
// restore from the last checkpoint (warm from the -warm-pool when one
// is configured) or re-admit to the survivors. -statehash appends the
// per-job slab-digest witness, which is byte-identical between a killed
// and an undisturbed run of the same trace.
//
// -serve switches to SERVE mode: an open-loop arrival process
// (-duration, -rate, -process, -burst, -diurnal) flows through
// per-tenant token-bucket admission control (-admit, -queue) onto
// -devices simulated GPUs behind deterministic load-aware routing, with
// an online hypervisor (-hypervisor-every, -migrate-threshold)
// re-arbitrating per-tenant SM shares from measured demand and
// rebalancing devices through checkpoint/warm-restore migration. The
// report is each technique's per-tenant SLO table plus the serving
// decision log, byte-identical at every -procs and -shards setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ctxback/internal/artifact"
	"ctxback/internal/harness"
	"ctxback/internal/preempt"
	"ctxback/internal/sched"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

// parseKinds resolves a -kinds value: "all" (every technique including
// the SM-flushing and Chimera extensions), "paper" (the six evaluated
// in the paper), or a comma-separated list of technique names as
// printed in reports (case-insensitive).
func parseKinds(spec string) ([]preempt.Kind, error) {
	switch strings.ToLower(spec) {
	case "", "all":
		return preempt.ExtendedKinds(), nil
	case "paper":
		return preempt.Kinds(), nil
	}
	var kinds []preempt.Kind
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, k := range preempt.ExtendedKinds() {
			if strings.EqualFold(name, k.String()) {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, k := range preempt.ExtendedKinds() {
				known = append(known, k.String())
			}
			return nil, fmt.Errorf("unknown technique %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	return kinds, nil
}

// withSpool streams a decision log through a temp-file spool instead of
// accumulating it in memory: run receives the sink to stream into, and
// once it returns the spooled lines are copied to stdout — the same
// bytes the in-memory log would have rendered, in the same place.
func withSpool(run func(*trace.LineSink) error) error {
	f, err := os.CreateTemp("", "schedsim-log-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	sink := trace.NewLineSink(f)
	if err := run(sink); err != nil {
		return err
	}
	if err := sink.Flush(); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err = io.Copy(os.Stdout, f)
	return err
}

func main() {
	var (
		seed    = flag.Int64("seed", 1, "arrival-trace seed")
		jobs    = flag.Int("jobs", 8, "number of kernel launches in the trace")
		tenants = flag.Int("tenants", 3, "number of tenants sharing the device")
		gap     = flag.Int64("gap", 3_000, "mean inter-arrival gap in cycles")
		prio    = flag.Int("prio", 3, "priorities are drawn from [0, prio]")
		sms     = flag.Int("sms", 1, "number of SMs (1 = maximum contention)")
		iters   = flag.Int("iters", 24, "per-warp loop iterations (kernel length)")
		kindsF  = flag.String("kinds", "all", "techniques: all, paper, or comma-separated names (e.g. BASELINE,CTXBack)")
		quick   = flag.Bool("quick", false, "small unit-test device model (fast, less faithful)")
		procs   = flag.Int("procs", 0, "technique-run workers: 0 = GOMAXPROCS, 1 = serial (identical output either way)")
		shards  = flag.Int("shards", 0, "SM shards inside each technique's device: 0/1 = serial, n>1 = n goroutines capped at -sms (identical output either way; -procs spreads whole technique runs, -shards splits one device)")
		verify  = flag.Bool("verify", true, "check every job's output against its CPU golden reference")
		metrics = flag.Bool("metrics", false, "append per-tenant counters and latency histograms")
		events  = flag.Bool("events", false, "append each technique's scheduling decision log")
		cache   = flag.String("cache-dir", "", "persistent content-addressed artifact cache shared across runs and processes (empty = disabled)")

		serve       = flag.Bool("serve", false, "serve mode: open-loop traffic through admission control onto a load-balanced fleet with an online hypervisor")
		duration    = flag.Int64("duration", 0, "serve mode: generate arrivals for N cycles (0 = use -jobs as a fixed count)")
		rate        = flag.Float64("rate", 0, "serve mode: mean arrivals per 100k cycles (0 = derive from -gap)")
		process     = flag.String("process", "poisson", "serve mode: inter-arrival process, uniform or poisson")
		burst       = flag.Float64("burst", 0, "serve mode: fraction of tenants that arrive in bursts [0,1]")
		diurnal     = flag.Float64("diurnal", 0, "serve mode: sinusoidal arrival-rate modulation amplitude [0,1)")
		admitRate   = flag.Int("admit", 0, "serve mode: per-tenant admission budget in jobs per 100k cycles (0 = no admission control)")
		queue       = flag.Int("queue", 0, "serve mode: per-tenant defer-queue bound before shedding (0 = default 32)")
		admitEvery  = flag.Int64("admit-every", 0, "serve mode: admission/routing barrier cadence in cycles (0 = default 2000)")
		reportEvery = flag.Int64("report-every", 0, "serve mode: decision-log window-aggregate cadence in cycles (0 = hypervisor cadence, else 16x admit-every)")
		hyperEvery  = flag.Int64("hypervisor-every", 0, "serve mode: SM-share re-arbitration cadence in cycles (0 = hypervisor off)")
		migThresh   = flag.Int("migrate-threshold", 0, "serve mode: outstanding-job imbalance that triggers a migration (0 = default 8, negative = off)")

		devices   = flag.Int("devices", 0, "fleet mode: partition the trace across N devices (0 = single-device comparison)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "fleet mode: whole-device checkpoint cadence in cycles (0 = no checkpoints)")
		killSpec  = flag.String("kill-device", "", "fleet mode: chaos-kill device ID at CYCLE, as ID@CYCLE (e.g. 0@80000)")
		warmPool  = flag.Int("warm-pool", 0, "fleet mode: pre-built device shells kept warm for restores")
		statehash = flag.Bool("statehash", false, "fleet mode: append the per-job slab-digest state witness")
	)
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "schedsim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
	if (*jobs <= 0 && !(*serve && *duration > 0)) || *tenants <= 0 || *gap <= 0 || *prio < 0 || *sms <= 0 || *iters <= 0 {
		usageErr("-jobs, -tenants, -gap, -sms and -iters must be positive; -prio must be >= 0")
	}
	if *duration < 0 || *rate < 0 || *admitRate < 0 || *queue < 0 || *admitEvery < 0 || *hyperEvery < 0 || *reportEvery < 0 {
		usageErr("-duration, -rate, -admit, -queue, -admit-every, -report-every and -hypervisor-every must be >= 0")
	}
	if *burst < 0 || *burst > 1 {
		usageErr("-burst must be in [0,1], got %g", *burst)
	}
	if *diurnal < 0 || *diurnal >= 1 {
		usageErr("-diurnal must be in [0,1), got %g", *diurnal)
	}
	if *process != "uniform" && *process != "poisson" {
		usageErr("-process must be uniform or poisson, got %q", *process)
	}
	if *serve && (*killSpec != "" || *ckptEvery > 0 || *statehash) {
		usageErr("-serve is incompatible with -kill-device, -checkpoint-every and -statehash")
	}
	if *procs < 0 {
		usageErr("-procs must be >= 0, got %d", *procs)
	}
	if *shards < 0 {
		usageErr("-shards must be >= 0, got %d", *shards)
	}
	if *devices < 0 {
		usageErr("-devices must be >= 0, got %d", *devices)
	}
	if *ckptEvery < 0 {
		usageErr("-checkpoint-every must be >= 0, got %d", *ckptEvery)
	}
	if *warmPool < 0 {
		usageErr("-warm-pool must be >= 0, got %d", *warmPool)
	}
	fleet := !*serve && (*devices > 0 || *ckptEvery > 0 || *killSpec != "" || *warmPool > 0 || *statehash)
	fo := sched.FailoverConfig{
		Devices:         *devices,
		CheckpointEvery: *ckptEvery,
		KillDevice:      -1,
		WarmPool:        *warmPool,
	}
	if fo.Devices == 0 {
		fo.Devices = 2
	}
	if *killSpec != "" {
		idS, cycS, ok := strings.Cut(*killSpec, "@")
		if !ok {
			usageErr("-kill-device wants ID@CYCLE, got %q", *killSpec)
		}
		id, err1 := strconv.Atoi(idS)
		cyc, err2 := strconv.ParseInt(cycS, 10, 64)
		if err1 != nil || err2 != nil {
			usageErr("-kill-device wants ID@CYCLE, got %q", *killSpec)
		}
		if id < 0 || id >= fo.Devices {
			usageErr("-kill-device id %d out of range (fleet has %d devices)", id, fo.Devices)
		}
		if cyc <= 0 {
			usageErr("-kill-device cycle must be positive, got %d", cyc)
		}
		fo.KillDevice, fo.KillCycle = id, cyc
	}
	kinds, err := parseKinds(*kindsF)
	if err != nil {
		usageErr("%v", err)
	}
	if *cache != "" {
		st, err := artifact.Open(*cache)
		if err != nil {
			fail(err)
		}
		artifact.SetDefault(st)
	}

	tc := sched.TraceConfig{
		Seed:          *seed,
		NumJobs:       *jobs,
		NumTenants:    *tenants,
		MaxPriority:   *prio,
		MeanGapCycles: *gap,
	}
	sc := sched.DefaultSchedConfig()
	if *quick {
		sc.Dev = sim.TestConfig()
		sc.Dev.GlobalMemBytes = 64 << 20
		sc.MaxCycles = 200_000_000
	}
	sc.Dev.NumSMs = *sms
	sc.Params.ItersPerWarp = *iters
	sc.Verify = *verify
	sc.Shards = *shards
	if *metrics {
		sc.Metrics = trace.NewRegistry()
	}

	if *serve {
		tc.Process = *process
		tc.DurationCycles = *duration
		tc.BurstFraction = *burst
		tc.DiurnalAmplitude = *diurnal
		if *duration > 0 {
			tc.NumJobs = 0 // open loop: the duration bounds the trace
		}
		if *rate > 0 {
			g := int64(100_000 / *rate)
			if g < 1 {
				g = 1
			}
			tc.MeanGapCycles = g
		}
		jobsList, err := sched.GenTrace(tc)
		if err != nil {
			fail(err)
		}
		svc := sched.ServeConfig{
			Sched:       sc,
			Devices:     *devices,
			Workers:     *procs,
			AdmitEvery:  *admitEvery,
			ReportEvery: *reportEvery,
			WarmPool:    *warmPool,
			Admit:       sched.AdmitConfig{TokensPer100k: *admitRate, MaxQueue: *queue},
			Hypervisor:  sched.HypervisorConfig{Every: *hyperEvery, MigrateThreshold: *migThresh},
		}
		for i, k := range kinds {
			if i > 0 {
				fmt.Println()
			}
			// The decision log streams through a temp-file spool while the
			// run is live and replays after the tables, where EventLog used
			// to render the accumulated events.
			if err := withSpool(func(sink *trace.LineSink) error {
				svc.DecisionSink = sink
				res, err := sched.Serve(svc, k, jobsList)
				if err != nil {
					return err
				}
				fmt.Print(res.Render())
				fmt.Printf("%s decision log:\n", res.Kind)
				return nil
			}); err != nil {
				fail(err)
			}
		}
		if *metrics {
			fmt.Println()
			fmt.Println(sc.Metrics.Render())
		}
		return
	}

	if fleet {
		jobs, err := sched.GenTrace(tc)
		if err != nil {
			fail(err)
		}
		for i, k := range kinds {
			if i > 0 {
				fmt.Println()
			}
			// Render prints the decision log last, so replaying the spool
			// right after it keeps the bytes identical.
			var fr *sched.FleetResult
			if err := withSpool(func(sink *trace.LineSink) error {
				fo.DecisionSink = sink
				var err error
				fr, err = sched.RunFleet(sc, k, jobs, fo)
				if err != nil {
					return err
				}
				fmt.Print(fr.Render())
				return nil
			}); err != nil {
				fail(err)
			}
			if *statehash {
				fmt.Print(fr.StateHash())
			}
		}
		if *metrics {
			fmt.Println()
			fmt.Println(sc.Metrics.Render())
		}
		return
	}

	o := harness.QuickOptions()
	o.Parallelism = *procs
	o.Shards = *shards
	r := harness.NewRunner(o)
	cmp, err := r.Schedule(tc, sc, kinds)
	if err != nil {
		fail(err)
	}
	fmt.Println(harness.RenderSchedule(cmp))
	if *events {
		for _, res := range cmp.Results {
			fmt.Printf("\n%s decision log:\n%s", res.Kind, res.EventLog())
		}
	}
	if *metrics {
		fmt.Println()
		fmt.Println(sc.Metrics.Render())
	}
}
