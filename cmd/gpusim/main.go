// Command gpusim runs a Table-I benchmark on the GPU simulator, with an
// optional mid-run preemption under a chosen technique, and verifies the
// output against the CPU golden reference.
//
// Usage:
//
//	gpusim -kernel KM                         # plain run
//	gpusim -kernel KM -technique CTXBack -at 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

func main() {
	var (
		kernel  = flag.String("kernel", "VA", "benchmark abbreviation")
		techStr = flag.String("technique", "", "preemption technique (BASELINE, LIVE, CKPT, CS-Defer, CTXBack, CTXBack+CS-Defer)")
		at      = flag.Float64("at", 0.5, "preemption point as a fraction of the uninterrupted runtime")
		blocks  = flag.Int("blocks", 8, "thread blocks")
		warps   = flag.Int("warps", 2, "warps per block")
		iters   = flag.Int("iters", 16, "main-loop iterations per warp")
		trace   = flag.Int("trace", 0, "print the last N executed instructions of the preempted run")
		procs   = flag.Int("procs", 0, "cap GOMAXPROCS (0 = leave at the runtime default)")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}

	params := kernels.Params{NumBlocks: *blocks, WarpsPerBlock: *warps, ItersPerWarp: *iters, Seed: 7}
	factory := func() *kernels.Workload {
		wl, err := kernels.ByAbbrev(strings.ToUpper(*kernel), params)
		if err != nil {
			fail(err)
		}
		return wl
	}
	cfg := sim.DefaultConfig()

	// Golden run.
	wl := factory()
	golden := sim.MustNewDevice(cfg)
	if _, err := wl.Launch(golden); err != nil {
		fail(err)
	}
	if err := golden.Run(1 << 40); err != nil {
		fail(err)
	}
	if err := wl.Verify(golden); err != nil {
		fail(fmt.Errorf("golden run failed verification: %w", err))
	}
	fmt.Printf("%s: %d warps, %d instructions, %d cycles (%.1f us) — output verified\n",
		wl.FullName, wl.TotalWarps(), golden.Stats.KernelInstrs, golden.Now(), golden.Micros())

	if *techStr == "" {
		return
	}
	var kind preempt.Kind
	found := false
	for _, k := range preempt.Kinds() {
		if strings.EqualFold(k.String(), *techStr) {
			kind, found = k, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown technique %q", *techStr))
	}
	tech, err := preempt.New(kind, wl.Prog)
	if err != nil {
		fail(err)
	}

	wl2 := factory()
	d := sim.MustNewDevice(cfg)
	var tr *sim.Tracer
	if *trace > 0 {
		tr = d.EnableTrace(*trace)
	}
	d.AttachRuntime(tech)
	if _, err := wl2.Launch(d); err != nil {
		fail(err)
	}
	signal := int64(*at * float64(golden.Now()))
	if err := d.RunUntil(func() bool { return d.Now() >= signal }, 1<<40); err != nil {
		fail(err)
	}
	ep, err := d.Preempt(0, tech)
	if err != nil {
		fail(err)
	}
	if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
		fail(err)
	}
	fmt.Printf("preempted SM 0 at cycle %d with %v: %d warps, latency %d cycles (%.2f us), %d context bytes\n",
		signal, kind, len(ep.Victims), ep.PreemptLatencyCycles(),
		cfg.CyclesToMicros(ep.PreemptLatencyCycles()), ep.SavedBytes())
	if err := d.Resume(ep); err != nil {
		fail(err)
	}
	if err := d.RunUntil(ep.Finished, 1<<40); err != nil {
		fail(err)
	}
	fmt.Printf("resumed: %d cycles (%.2f us) until all warps regained progress\n",
		ep.ResumeCycles(), cfg.CyclesToMicros(ep.ResumeCycles()))
	if err := d.Run(1 << 40); err != nil {
		fail(err)
	}
	if err := wl2.Verify(d); err != nil {
		fail(fmt.Errorf("preempted run failed verification: %w", err))
	}
	fmt.Println("preempted run completed — output verified identical to golden reference")
	if tr != nil {
		fmt.Printf("\nlast %d executed instructions:\n%s", *trace, tr.Render())
	}
}
