// Command gpusim runs a Table-I benchmark on the GPU simulator, with an
// optional mid-run preemption under a chosen technique, and verifies the
// output against the CPU golden reference.
//
// Usage:
//
//	gpusim -kernel KM                         # plain run
//	gpusim -kernel KM -technique CTXBack -at 0.5
//	gpusim -kernel KM -technique CTXBack -trace km.trace.json
//	gpusim -kernel KM -technique CTXBack -faults 0.05 -fault-seed 1
//	gpusim -kernel KM -technique CTXBack -checkpoint
//
// With -checkpoint the parked episode is checkpointed with the WHOLE
// device (internal/snapshot), the original device is discarded, and the
// run finishes on a device restored from the snapshot bytes via the
// speculative path — the deferred validation settles after replay, and
// the output must still verify against the CPU reference.
//
// With -trace FILE the preempted run records structured episode, warp
// and memory-pipeline events and writes them as Chrome trace-event JSON:
// open the file in chrome://tracing or https://ui.perfetto.dev to see
// the preemption timeline (one process per SM, one thread per warp,
// timestamps in simulated cycles).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"

	"ctxback/internal/artifact"
	"ctxback/internal/faults"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/snapshot"
	"ctxback/internal/trace"
)

func main() {
	var (
		kernel    = flag.String("kernel", "VA", "benchmark abbreviation")
		techStr   = flag.String("technique", "", "preemption technique (BASELINE, LIVE, CKPT, CS-Defer, CTXBack, CTXBack+CS-Defer)")
		at        = flag.Float64("at", 0.5, "preemption point as a fraction of the uninterrupted runtime")
		blocks    = flag.Int("blocks", 8, "thread blocks")
		warps     = flag.Int("warps", 2, "warps per block")
		iters     = flag.Int("iters", 16, "main-loop iterations per warp")
		tracePath = flag.String("trace", "", "write the preempted run's episode timeline as Chrome trace-event JSON to this file (chrome://tracing)")
		tailN     = flag.Int("tail", 0, "print the last N executed instructions of the preempted run")
		procs     = flag.Int("procs", 0, "cap GOMAXPROCS (0 = leave at the runtime default)")
		shards    = flag.Int("shards", 0, "SM shards per device: 0 = auto (GOMAXPROCS, capped at the SM count), 1 = serial, n>1 = n goroutines; output is byte-identical at every setting (-tail tracing always runs serially)")
		faultRate = flag.Float64("faults", 0, "fault-injection rate in [0,1] for the preempted run (0 = off)")
		faultSeed = flag.Uint64("fault-seed", 1, "fault-injection seed")
		ckpt      = flag.Bool("checkpoint", false, "checkpoint the whole device at the parked episode and finish the run on a device restored from the snapshot bytes")
		cache     = flag.String("cache-dir", "", "persistent content-addressed artifact cache shared across runs and processes (empty = disabled)")
	)
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gpusim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *procs < 0 {
		usageErr("-procs must be >= 0, got %d", *procs)
	}
	if *shards < 0 {
		usageErr("-shards must be >= 0, got %d", *shards)
	}
	if math.IsNaN(*faultRate) || *faultRate < 0 || *faultRate > 1 {
		usageErr("-faults must be a rate in [0,1], got %v", *faultRate)
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
	if *cache != "" {
		st, err := artifact.Open(*cache)
		if err != nil {
			fail(err)
		}
		artifact.SetDefault(st)
	}

	params := kernels.Params{NumBlocks: *blocks, WarpsPerBlock: *warps, ItersPerWarp: *iters, Seed: 7}
	factory := func() *kernels.Workload {
		wl, err := kernels.ByAbbrev(strings.ToUpper(*kernel), params)
		if err != nil {
			fail(err)
		}
		return wl
	}
	cfg := sim.DefaultConfig()

	// Golden run.
	wl := factory()
	golden, err := sim.NewDevice(cfg)
	if err != nil {
		fail(err)
	}
	golden.SetShards(*shards)
	if _, err := wl.Launch(golden); err != nil {
		fail(err)
	}
	if err := golden.Run(1 << 40); err != nil {
		fail(err)
	}
	if err := wl.Verify(golden); err != nil {
		fail(fmt.Errorf("golden run failed verification: %w", err))
	}
	fmt.Printf("%s: %d warps, %d instructions, %d cycles (%.1f us) — output verified\n",
		wl.FullName, wl.TotalWarps(), golden.Stats.KernelInstrs, golden.Now(), golden.Micros())

	if *techStr == "" {
		return
	}
	var kind preempt.Kind
	found := false
	for _, k := range preempt.Kinds() {
		if strings.EqualFold(k.String(), *techStr) {
			kind, found = k, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown technique %q", *techStr))
	}
	if *ckpt && !preempt.Relocatable(kind) {
		fail(fmt.Errorf("%v episodes do not survive a snapshot trip (technique state is device-resident); pick a relocatable technique", kind))
	}
	if *ckpt && (*tracePath != "" || *tailN > 0) {
		usageErr("-checkpoint discards the original device; -trace and -tail cannot follow it")
	}

	signal := int64(*at * float64(golden.Now()))
	faultCfg := faults.Preset(*faultSeed, *faultRate)

	// Preempted run, possibly under fault injection. A detected fault
	// (transfer escalation or integrity violation) degrades gracefully:
	// the episode re-runs fault-free through the BASELINE technique.
	runErr := runPreempted(cfg, factory, kind, signal, *shards, *faultRate, faultCfg, *tailN, *tracePath, *ckpt)
	if runErr == nil {
		return
	}
	var xfer *sim.TransferFaultError
	var integ *sim.IntegrityError
	if !errors.As(runErr, &xfer) && !errors.As(runErr, &integ) {
		fail(runErr)
	}
	fmt.Printf("fault detected in-band: %v\n", runErr)
	fmt.Println("degrading: re-running the episode fault-free through BASELINE")
	if err := runPreempted(cfg, factory, preempt.Baseline, signal, *shards, 0, faults.Config{}, 0, "", false); err != nil {
		fail(fmt.Errorf("BASELINE fallback failed: %w", err))
	}
}

// runPreempted runs one preemption episode end to end and verifies the
// final output against the CPU reference. Lost preemption signals are
// re-raised (bounded); detected faults surface as the returned error.
// A non-empty tracePath attaches an event recorder to the device and
// writes the episode timeline as Chrome trace-event JSON after the run.
func runPreempted(cfg sim.Config, factory func() *kernels.Workload, kind preempt.Kind,
	signal int64, shards int, faultRate float64, faultCfg faults.Config, tail int,
	tracePath string, checkpoint bool) error {
	wl := factory()
	tech, err := preempt.New(kind, wl.Prog)
	if err != nil {
		return err
	}
	d, err := sim.NewDevice(cfg)
	if err != nil {
		return err
	}
	d.SetShards(shards)
	if faultRate > 0 {
		if err := d.InjectFaults(faultCfg); err != nil {
			return err
		}
	}
	var tr *sim.Tracer
	if tail > 0 {
		tr = d.EnableTrace(tail)
	}
	var rec *trace.Recorder
	if tracePath != "" {
		rec = trace.NewRecorder()
		d.AttachRecorder(rec)
	}
	d.AttachRuntime(tech)
	if _, err := wl.Launch(d); err != nil {
		return err
	}
	if err := d.RunToCycle(signal, 1<<40); err != nil {
		return err
	}
	var ep *sim.Episode
	for attempt := 0; ; attempt++ {
		ep, err = d.Preempt(0, tech)
		if err == nil {
			break
		}
		if errors.Is(err, sim.ErrSignalLost) && attempt < 8 {
			fmt.Printf("preemption signal lost (attempt %d), re-raising\n", attempt+1)
			continue
		}
		return err
	}
	if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
		return err
	}
	fmt.Printf("preempted SM 0 at cycle %d with %v: %d warps, latency %d cycles (%.2f us), %d context bytes\n",
		signal, kind, len(ep.Victims), ep.PreemptLatencyCycles(),
		cfg.CyclesToMicros(ep.PreemptLatencyCycles()), ep.SavedBytes())
	var validate func() error
	if checkpoint {
		wl2 := factory()
		_, enc := snapshot.Capture(d, 1)
		tech2, err := preempt.New(kind, wl2.Prog)
		if err != nil {
			return err
		}
		res, err := snapshot.Restore(nil, enc, enc, 1, tech2, wl2.Prog)
		if err != nil {
			return err
		}
		if len(res.Index.Episodes) != 1 {
			return fmt.Errorf("restored %d episodes, want 1", len(res.Index.Episodes))
		}
		path := "synchronous"
		if res.Outcome.Speculative {
			path = "speculative"
		}
		fmt.Printf("checkpointed whole device (%d bytes) and restored it onto a cold shell (%s path): setup %d + transfer %d cycles\n",
			len(enc), path, res.Outcome.SetupCycles, res.Outcome.TransferCycles)
		d, ep, wl, validate = res.Device, res.Index.Episodes[0], wl2, res.Validate
	}
	if err := d.Resume(ep); err != nil {
		return err
	}
	if err := d.RunUntil(ep.Finished, 1<<40); err != nil {
		return err
	}
	fmt.Printf("resumed: %d cycles (%.2f us) until all warps regained progress\n",
		ep.ResumeCycles(), cfg.CyclesToMicros(ep.ResumeCycles()))
	if err := d.Run(1 << 40); err != nil {
		return err
	}
	if validate != nil {
		if err := validate(); err != nil {
			return fmt.Errorf("speculative restore failed deferred validation: %w", err)
		}
		fmt.Println("speculative restore validated: deferred memory checksum matches")
	}
	if err := wl.Verify(d); err != nil {
		return fmt.Errorf("preempted run failed verification: %w", err)
	}
	fmt.Println("preempted run completed — output verified identical to golden reference")
	if faultRate > 0 {
		fs := d.FaultStats()
		fmt.Printf("faults injected: %d total (%d transient save, %d transient restore, %d stalls); episode absorbed %d retries\n",
			fs.Total(), fs.TransientSaveFaults, fs.TransientRestoreFaults, fs.Stalls,
			ep.Faults.TransientRetries)
	}
	if tr != nil {
		fmt.Printf("\nlast %d executed instructions:\n%s", tail, tr.Render())
	}
	if rec != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := trace.WriteChromeTrace(f, rec.Events()); err != nil {
			f.Close()
			return fmt.Errorf("trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("wrote %d trace events to %s (open in chrome://tracing)\n", rec.Len(), tracePath)
	}
	return nil
}
