#!/bin/sh
# Assemble EXPERIMENTS.md from the evaluation harness output.
# Usage: ./mk_experiments.sh  (expects eval_output.txt from
#        `go run ./cmd/benchtab -all -samples 3 > eval_output.txt`)
set -e
cat > EXPERIMENTS.md <<'HEADER'
# EXPERIMENTS — measured vs paper

Every table and figure of the paper's evaluation (§V), regenerated on the
simulator with `go run ./cmd/benchtab -all -samples 3` (full-device
occupancy, 3 preemption samples per kernel x technique spread over
15-85% of each kernel's runtime; every preempted run is executed to
completion and verified bit-exact against the CPU golden reference).

**Reading guide.** Absolute microseconds depend on one calibration knob —
the context-switch-path bandwidth, chosen so BASELINE full-SM switches
land in Table I's 75-330 µs band. Normalized comparisons are
measurements; MEAN columns are geometric means of the per-kernel ratios
(arithmetic only if a ratio is zero). The paper's claims live in the
*shape*: who wins, by roughly what factor, and where the trade-offs sit.

## Shape checklist (paper claim → measured here)

| Paper claim (§V) | Measured | Status |
|---|---|---|
| Traditional switching costs ~75-330 µs per SM (Table I) | 70-200 µs; KM/MM/MV (13 KB/warp) most expensive, VA (3 KB) cheapest, same band and similar rank | holds |
| Resume is shorter than preemption (latency hiding) | resume ≈ 0.75x of preempt across Table I | holds |
| LIVE removes dead registers: 37.8% context reduction | 69.4% | direction holds, larger (note 1) |
| CTXBack cuts context 61.0%, within 1.09x of the CKPT minimum | 87.2% cut, 0.99x of the minimum | holds, stronger (note 1) |
| CTXBack ≈ CS-Defer on context size (61.0% vs 62.1%) | 87.2% vs 86.2% | holds |
| CTXBack preemption time -63.1%; CS-Defer latency +34.8% over CTXBack | -84.0%; CS-Defer +4.5% geomean, up to +22% on the unrolled BLAS-style kernels (DC, MV, KM) | holds / direction holds, weaker (note 2) |
| CS-Defer resumes faster than CTXBack (no re-execution) | 0.163x vs 0.182x | holds |
| CKPT: near-zero preemption latency | 0.002x BASELINE | holds |
| CKPT: worst resume of the context-reducing techniques (3.18x BASELINE) | worst of the reduced-context techniques (0.281x vs CTXBack's 0.182x), but below BASELINE | direction holds, magnitude differs (note 3) |
| Runtime overhead: CKPT ~130%, CTXBack 0.41% (OSRB only) | CKPT 5.2% geomean (up to 43% on HS), CTXBack 0.6% — a 9x gap | direction holds, magnitudes smaller (note 3) |
| CTXBack+CS-Defer best or tied on every axis | tied-or-best on context, preemption and resume | holds |
| Routine sharing keeps transfer cost negligible (§IV-A) | e.g. KM: 445 instructions share 3 unique preemption routines (1.9 KB transferred vs 428 KB unshared) | holds (`cmd/ctxback -kernel KM`) |

Notes:

1. Our hand-written kernels recycle registers less aggressively than
   LLVM -O3 binaries, so dead-register elimination (LIVE) and the
   flashback minima are both deeper than on the paper's code. Every
   *ordering* between techniques — the content of Figs 7-9 — is
   preserved; distances to BASELINE are uniformly larger.
2. The gap between CS-Defer and CTXBack latency comes from memory stalls
   inside the deferral window. Our kernels' loads are cheaper relative
   to their context sizes than the paper's real-memory workloads, so the
   penalty concentrates in the deeply unrolled kernels instead of
   averaging +35%.
3. Both CKPT magnitudes scale with the wall-time of one checkpoint
   interval (16 executions of a basic block). The paper's
   persistent-thread blocks run far longer per visit than our synthetic
   loop bodies, which stretches their replay time (resume 3.18x) and
   checkpoint traffic (overhead 130%). The structure — CKPT trades a
   free preemption for the worst resume and the only nontrivial runtime
   overhead — is exactly reproduced, and `examples/ckpt_tradeoff` sweeps
   the interval to show the frontier CTXBack sits outside of.

## Raw regenerated output

```
HEADER
cat eval_output.txt >> EXPERIMENTS.md
cat >> EXPERIMENTS.md <<'FOOTER'
```

## The motivating scenario, end to end

`go run ./examples/prioritization` (K-Means batch job, ReLU inference job
arriving mid-run, Radeon-VII-like configuration) reproduces §I's story in
one table — measured on one representative run:

```
technique              LS wait us    LS total us      resume us batch slowdown
BASELINE                   116.22         117.83          86.55         42.40%
LIVE                        63.44          65.05          47.24         22.97%
CKPT                         0.01           1.15          20.75          4.80%
CS-Defer                     7.13           8.65           4.13          2.28%
CTXBack                      5.48           7.08           6.02          2.58%
CTXBack+CS-Defer             5.48           7.08           6.02          2.58%
```

The latency-sensitive job waits 116 µs behind a traditional context
switch and 5.5 µs behind CTXBack; CKPT's wait is lower still but it pays
3.4x CTXBack's resume and carries the standing checkpoint overhead.

## Switch-path contention

`go run ./cmd/benchtab -contention KM` preempts 1-4 SMs simultaneously
under BASELINE: the switches serialize through the shared switch path, so
the worst-case waiting time scales with the number of victims — the
§V-A contention effect, and another reason small contexts matter:

```
preempted SMs     fastest SM us    slowest SM us
------------------------------------------------
1                         77.56            77.56
2                        154.88           154.88
3                        232.20           232.21
4                        309.52           309.53
```

## Multi-tenant preemptive scheduling

`go run ./cmd/schedsim` replays a seeded multi-tenant arrival trace
(tenant, kernel, arrival cycle, priority) on a deterministic
priority-preemptive scheduler (`internal/sched`), once per technique on
the identical trace. Each job fills and is pinned to one SM, so a
higher-priority arrival can only run by preempting — the per-episode
switch latencies above become end-to-end queueing delay and turnaround.
The contended CI smoke trace (`make sched-smoke`; 8 jobs, 3 tenants, one
SM, quick device):

```
technique              makespan  preempts     p50-turn     p95-turn     p99-turn
BASELINE                 298800         2       187881       286434       286434
LIVE                     288284         2       179661       275918       275918
CKPT                     280186         2       172080       267820       267820
CS-Defer                 273904         2       168629       261538       261538
CTXBack                  274431         2       168671       262065       262065
CTXBack+CS-Defer         274431         2       168671       262065       262065
SM-flushing              277492         2       170273       265126       265126
Chimera+CTXBack          275471         2       168252       263105       263105
```

CTXBack's p95 turnaround beats both the liveness-blind BASELINE swap and
SM-flushing's restart (`TestCTXBackBeatsHeavyweightP95`); on the full
device with early-arriving bursts SM-flushing stays competitive — the
Chimera trade-off at scheduler scale (`go run ./cmd/benchtab -sched`).
Reports are byte-identical at every `-procs` setting and every job still
verifies against its CPU golden reference after the schedule drains.
Per-tenant queueing/turnaround histograms export via `-metrics`, the
scheduling decision log via `-events`. DESIGN.md §7 has the model.

## Reproducing

```sh
go run ./cmd/benchtab -all -samples 3     # everything above (~2 min serial)
go run ./cmd/benchtab -all -procs 8       # same numbers from 8 workers
go run ./cmd/benchtab -quick -all         # fast smoke version
go run ./cmd/benchtab -qos KM             # waiting-time tail distribution
go run ./cmd/benchtab -contention KM      # multi-SM switch serialization
go run ./cmd/schedsim -quick -seed 9      # multi-tenant schedule comparison
go test -bench=. -benchmem                # the same experiments as benchmarks
```

To see *where* each technique's latency goes, add `-metrics`: it appends
episode counters, fixed-bucket latency histograms, and a per-(kernel,
technique) drain/save/restore/replay phase table whose per-episode sums
reconcile exactly with the preempt/resume columns above (DESIGN.md §6).
For one episode's full timeline, `go run ./cmd/gpusim -kernel KM
-technique CTXBack -trace km.trace.json` writes Chrome trace-event JSON
(validate with `go run ./cmd/tracecheck km.trace.json`; view in
chrome://tracing). All of this is opt-in — with tracing off, this file's
raw output is byte-identical, which CI enforces (`make evalcheck`).

Episodes are distributed over a worker pool (`-procs`, default
`GOMAXPROCS`); the fold back into tables is order-fixed, so every
`-procs` value — including the serial `-procs 1` path — prints
byte-identical numbers (`internal/harness.TestParallelDeterminism`).

Every number above comes from runs whose final device memory was compared
word-for-word against an uninterrupted golden execution; a technique that
corrupted any output would fail the harness (and the test suite's
`TestGoldenEquivalenceAllKernelsAllTechniques`) before reaching this file.

## Robustness under fault injection (chaos)

All of the above runs fault-free. `go run ./cmd/benchtab -chaos` re-runs
one preempt/resume episode per (detection mode, fault rate, technique,
kernel) cell under the seed-driven injector (`internal/faults`): context
save/restore failures, bit flips in swapped-out contexts,
dropped/duplicated preemption signals, memory stalls. Each cell is
classified — `C` clean, `R` recovered in-episode (bounded retries,
signal redelivery), `F` detected and re-run through the BASELINE
fallback, `U` unrecoverable, `S!` silent wrong output. The acceptance
bar is structural, not statistical: **zero `S!` and zero `U` at any
seed** — every injected corruption is caught by the save-time checksum,
the resume-integrity oracle, or an execution trap before wrong output
can commit, and the BASELINE fallback always completes with golden
output. `-faults RATE` pins one rate, `-fault-seed N` reseeds;
identical seeds give identical reports at every `-procs` setting
(`TestChaosDeterministicAcrossWorkers`). Chaos is opt-in: `-all` never
enables it, so everything above is unaffected.

DESIGN.md §5 documents the fault model; `TestChaosNoSilentWrong` and
`FuzzFaultRecovery` (internal/preempt) enforce the same invariant in CI.
FOOTER
echo "wrote EXPERIMENTS.md"
