GO ?= go

.PHONY: all build test check bench bench-smoke eval trace-smoke evalcheck sched-smoke serve-smoke procs-diff shards-diff snap-diff gen-smoke cache-diff

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the PR gate: vet everything, run the packages that carry
# concurrency (the parallel harness, the simulator it drives, and the
# metrics registry they share) under the race detector, then smoke the
# tracing pipeline end to end.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/artifact/ ./internal/harness/ ./internal/sched/ ./internal/sim/ ./internal/snapshot/ ./internal/trace/ ./internal/gen/...
	$(MAKE) trace-smoke

# trace-smoke runs one preempted kernel with -trace and validates the
# emitted Chrome trace-event JSON (known phase types, cycle-monotone
# order) with tracecheck.
trace-smoke:
	$(GO) run ./cmd/gpusim -kernel VA -technique CTXBack -trace /tmp/ctxback-smoke.trace.json
	$(GO) run ./cmd/tracecheck /tmp/ctxback-smoke.trace.json

# sched-smoke replays a tiny contended multi-tenant trace under all
# eight techniques on the preemptive scheduler and diffs the full report
# (trace, per-technique stats, per-job tables) against the checked-in
# golden. Any nondeterminism or unintended stats change fails the diff.
# The second diff covers the fleet failover report: a two-device run
# with periodic whole-device checkpoints, a chaos kill, a warm restore
# (CTXBack) and the rerun fallback (CKPT), down to the decision log and
# the per-job slab-digest witness.
sched-smoke:
	$(GO) run ./cmd/schedsim -quick -seed 9 > /tmp/ctxback-sched-smoke.txt
	diff -u testdata/sched_smoke.golden /tmp/ctxback-sched-smoke.txt
	$(GO) run ./cmd/schedsim -quick -seed 9 -kinds CTXBack,CKPT -devices 2 -checkpoint-every 40000 -kill-device 0@80000 -warm-pool 1 -statehash > /tmp/ctxback-sched-failover.txt
	diff -u testdata/sched_failover.golden /tmp/ctxback-sched-failover.txt
	@echo "sched and failover reports byte-identical"

# serve-smoke is the long-running serving gate: a seeded open-loop
# bursty+diurnal trace (~167k arrivals over 40M cycles) drives four
# tenants through admission control, load-aware routing across two
# devices, and the online hypervisor (share re-arbitration plus one
# warm-pool rebalancing migration) to drain. The full decision log and
# SLO tables must be byte-identical to the checked-in golden, and —
# since cross-device decisions run serially at global barriers — also
# across worker and shard counts. The golden carries 3 "shares"
# re-arbitrations and 1 "migrate" warm restore.
SERVE_SMOKE_ARGS = -serve -quick -kinds CTXBack -iters 2 -sms 2 \
	-duration 40000000 -gap 400 -tenants 4 -burst 0.25 -diurnal 0.3 \
	-admit 150 -queue 12 -hypervisor-every 20000 -report-every 400000 \
	-migrate-threshold 3 -devices 2 -warm-pool 1 -seed 42
serve-smoke:
	$(GO) run ./cmd/schedsim $(SERVE_SMOKE_ARGS) -procs 1 -shards 1 > /tmp/ctxback-serve-p1s1.txt
	diff -u testdata/serve_smoke.golden /tmp/ctxback-serve-p1s1.txt
	$(GO) run ./cmd/schedsim $(SERVE_SMOKE_ARGS) -procs 4 -shards 2 > /tmp/ctxback-serve-p4s2.txt
	diff -u testdata/serve_smoke.golden /tmp/ctxback-serve-p4s2.txt
	@echo "serve decision log and SLO tables byte-identical across -procs/-shards"

# snap-diff guards failover determinism end to end: the per-job
# slab-digest state witness must be byte-identical between an
# undisturbed fleet run, a run whose device 0 is chaos-killed at cycle
# 80000 (restored from its last whole-device checkpoint), and the same
# kill restored from the warm context pool.
snap-diff:
	$(GO) run ./cmd/schedsim -quick -seed 9 -kinds CTXBack -devices 2 -checkpoint-every 40000 -statehash | grep '^job ' > /tmp/ctxback-snap-base.txt
	$(GO) run ./cmd/schedsim -quick -seed 9 -kinds CTXBack -devices 2 -checkpoint-every 40000 -kill-device 0@80000 -statehash | grep '^job ' > /tmp/ctxback-snap-kill.txt
	$(GO) run ./cmd/schedsim -quick -seed 9 -kinds CTXBack -devices 2 -checkpoint-every 40000 -kill-device 0@80000 -warm-pool 1 -statehash | grep '^job ' > /tmp/ctxback-snap-warm.txt
	diff -u /tmp/ctxback-snap-base.txt /tmp/ctxback-snap-kill.txt
	diff -u /tmp/ctxback-snap-kill.txt /tmp/ctxback-snap-warm.txt
	@echo "failover state witness byte-identical: undisturbed vs killed, cold vs warm"

# gen-smoke is the generated-corpus differential gate: 256 seeds from
# the seeded SIMT generator run uninterrupted and under forced
# mid-flight preemption by all 8 techniques, byte-compared against the
# host-side golden interpreter, with every sampled oracle enabled
# (scan-vs-readyqueue lockstep, 2-shard epoch engine, resume integrity,
# snapshot round-trip, fault-injection chaos). genrun exits nonzero on
# any divergence; the full ≥1000-seed sweep is `go run ./cmd/genrun`.
gen-smoke:
	$(GO) run ./cmd/genrun -n 256 -procs 8
	@echo "generated corpus differential sweep clean"

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/core/ ./internal/preempt/

# bench-smoke is the CI flavor of bench: one iteration per benchmark,
# no timing thresholds — it only proves every benchmark still compiles,
# runs, and reports allocations.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem ./internal/sim/ ./internal/core/ ./internal/preempt/

# procs-diff guards evaluation-engine determinism across parallelism:
# the quick sweep must emit byte-identical output at -procs 1 and
# -procs 4 (worker count may reorder episode execution, never results).
procs-diff:
	$(GO) run ./cmd/benchtab -quick -procs 1 > /tmp/ctxback-procs1.txt
	$(GO) run ./cmd/benchtab -quick -procs 4 > /tmp/ctxback-procs4.txt
	diff -u /tmp/ctxback-procs1.txt /tmp/ctxback-procs4.txt
	@echo "quick sweep byte-identical across -procs 1/4"

# shards-diff guards epoch-engine determinism across intra-device
# parallelism, mirroring procs-diff on the other axis: the quick sweep
# and the scheduler report must be byte-identical at -shards 1 and
# -shards 4 (sharding may interleave SM drains, never results). The
# sched golden is also checked under sharding, at -sms 2 as well since
# the default -sms 1 clamps every shard count to serial.
shards-diff:
	$(GO) run ./cmd/benchtab -quick -shards 1 > /tmp/ctxback-shards1.txt
	$(GO) run ./cmd/benchtab -quick -shards 4 > /tmp/ctxback-shards4.txt
	diff -u /tmp/ctxback-shards1.txt /tmp/ctxback-shards4.txt
	$(GO) run ./cmd/schedsim -quick -seed 9 -shards 4 > /tmp/ctxback-sched-shards.txt
	diff -u testdata/sched_smoke.golden /tmp/ctxback-sched-shards.txt
	$(GO) run ./cmd/schedsim -quick -seed 9 -sms 2 -shards 1 > /tmp/ctxback-sched-sms2-s1.txt
	$(GO) run ./cmd/schedsim -quick -seed 9 -sms 2 -shards 4 > /tmp/ctxback-sched-sms2-s4.txt
	diff -u /tmp/ctxback-sched-sms2-s1.txt /tmp/ctxback-sched-sms2-s4.txt
	@echo "quick sweep and sched reports byte-identical across -shards 1/4"

# cache-diff guards the artifact store's byte-identity contract: the
# quick evaluation sweep and the serve smoke must produce identical
# bytes with the cache disabled, cold (empty directory, computes and
# publishes) and warm (second run over the same directory, loads
# everything from disk). Any drift between the three means a cached
# artifact decodes to something the cold path would not have computed.
CACHE_DIR = /tmp/ctxback-cache-diff
cache-diff:
	rm -rf $(CACHE_DIR)
	$(GO) run ./cmd/benchtab -quick > /tmp/ctxback-cache-off.txt
	$(GO) run ./cmd/benchtab -quick -cache-dir $(CACHE_DIR) > /tmp/ctxback-cache-cold.txt
	$(GO) run ./cmd/benchtab -quick -cache-dir $(CACHE_DIR) > /tmp/ctxback-cache-warm.txt
	diff -u /tmp/ctxback-cache-off.txt /tmp/ctxback-cache-cold.txt
	diff -u /tmp/ctxback-cache-cold.txt /tmp/ctxback-cache-warm.txt
	$(GO) run ./cmd/schedsim $(SERVE_SMOKE_ARGS) -cache-dir $(CACHE_DIR) > /tmp/ctxback-cache-serve-cold.txt
	diff -u testdata/serve_smoke.golden /tmp/ctxback-cache-serve-cold.txt
	$(GO) run ./cmd/schedsim $(SERVE_SMOKE_ARGS) -cache-dir $(CACHE_DIR) > /tmp/ctxback-cache-serve-warm.txt
	diff -u testdata/serve_smoke.golden /tmp/ctxback-cache-serve-warm.txt
	@echo "eval sweep and serve golden byte-identical: cache disabled, cold and warm"

# Regenerate EXPERIMENTS.md from a full evaluation sweep.
eval:
	$(GO) run ./cmd/benchtab -all -samples 3 > eval_output.txt
	./mk_experiments.sh

# evalcheck guards the observability layer's zero-overhead contract:
# with tracing and metrics disabled (the default), a full evaluation
# sweep must reproduce eval_output.txt byte for byte.
evalcheck:
	$(GO) run ./cmd/benchtab -all -samples 3 > /tmp/ctxback-evalcheck.txt
	diff -u eval_output.txt /tmp/ctxback-evalcheck.txt
	@echo "eval output byte-identical"
