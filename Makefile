GO ?= go

.PHONY: all build test check bench eval

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the PR gate: vet everything, then run the packages that carry
# concurrency (the parallel harness and the simulator it drives) under
# the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/harness/ ./internal/sim/

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/core/ ./internal/preempt/

# Regenerate EXPERIMENTS.md from a full evaluation sweep.
eval:
	$(GO) run ./cmd/benchtab -all -samples 3 > eval_output.txt
	./mk_experiments.sh
