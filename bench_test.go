package ctxback

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§V). Each benchmark measures the corresponding experiment
// on the simulator and reports the reproduced quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every row
// the paper reports. cmd/benchtab prints the same data as full tables.

import (
	"fmt"
	"testing"

	"ctxback/internal/core"
	"ctxback/internal/harness"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

func benchOptions() harness.Options {
	o := harness.QuickOptions()
	o.Samples = 1
	return o
}

// BenchmarkTableI measures the BASELINE context-switch times per
// benchmark (Table I): preempt_us and resume_us metrics per kernel.
func BenchmarkTableI(b *testing.B) {
	o := benchOptions()
	for b.Loop() {
		rows, err := harness.TableI(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.PreemptUs, r.Abbrev+"_preempt_us")
		}
	}
}

// BenchmarkFig7ContextSize reports each technique's mean normalized
// context size (Fig 7).
func BenchmarkFig7ContextSize(b *testing.B) {
	o := benchOptions()
	for b.Loop() {
		fig, err := harness.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.SeriesBy {
			b.ReportMetric(s.Mean, metricName(s.Kind)+"_xBase")
		}
	}
}

// BenchmarkFig8PreemptTime reports each technique's mean normalized
// preemption time (Fig 8).
func BenchmarkFig8PreemptTime(b *testing.B) {
	o := benchOptions()
	for b.Loop() {
		fig, err := harness.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.SeriesBy {
			b.ReportMetric(s.Mean, metricName(s.Kind)+"_xBase")
		}
	}
}

// BenchmarkFig9ResumeTime reports each technique's mean normalized
// resume time (Fig 9).
func BenchmarkFig9ResumeTime(b *testing.B) {
	o := benchOptions()
	for b.Loop() {
		fig, err := harness.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.SeriesBy {
			b.ReportMetric(s.Mean, metricName(s.Kind)+"_xBase")
		}
	}
}

// BenchmarkFig10RuntimeOverhead reports CKPT's and CTXBack's runtime
// overhead (Fig 10).
func BenchmarkFig10RuntimeOverhead(b *testing.B) {
	o := benchOptions()
	for b.Loop() {
		fig, err := harness.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.SeriesBy {
			b.ReportMetric(s.Mean*100, metricName(s.Kind)+"_pct")
		}
	}
}

// BenchmarkAblation reports the mean context ratio for each CTXBack
// feature combination (the DESIGN.md ablation).
func BenchmarkAblation(b *testing.B) {
	o := benchOptions()
	for b.Loop() {
		rows, err := harness.Ablation(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanRatio, r.Label+"_xBase")
		}
	}
}

// BenchmarkCompile measures the CTXBack pass itself (compile-time cost
// per kernel instruction).
func BenchmarkCompile(b *testing.B) {
	all, err := kernels.All(kernels.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, wl := range all {
		wl := wl
		b.Run(wl.Abbrev, func(b *testing.B) {
			for b.Loop() {
				if _, err := core.Compile(wl.Prog, core.FeatAll); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(wl.Prog.Len()), "instrs")
		})
	}
}

// BenchmarkSimulator measures raw simulator throughput (simulated kernel
// instructions per second).
func BenchmarkSimulator(b *testing.B) {
	params := kernels.TestParams()
	params.ItersPerWarp = 32
	var totalInstrs int64
	for b.Loop() {
		wl, err := kernels.ByAbbrev("VA", params)
		if err != nil {
			b.Fatal(err)
		}
		d := mustDevice(sim.TestConfig())
		if _, err := wl.Launch(d); err != nil {
			b.Fatal(err)
		}
		if err := d.Run(1 << 40); err != nil {
			b.Fatal(err)
		}
		totalInstrs += d.Stats.KernelInstrs
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(totalInstrs)/secs, "sim_instrs/s")
	}
}

// BenchmarkPreemptEpisode measures one full preempt+resume episode per
// technique on a mid-sized kernel.
func BenchmarkPreemptEpisode(b *testing.B) {
	params := kernels.TestParams()
	params.ItersPerWarp = 24
	for _, kind := range preempt.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var lastPreempt, lastResume float64
			for b.Loop() {
				wl, err := kernels.ByAbbrev("KM", params)
				if err != nil {
					b.Fatal(err)
				}
				tech, err := preempt.New(kind, wl.Prog)
				if err != nil {
					b.Fatal(err)
				}
				d := mustDevice(sim.TestConfig())
				d.AttachRuntime(tech)
				if _, err := wl.Launch(d); err != nil {
					b.Fatal(err)
				}
				if err := d.RunToCycle(2001, 1<<40); err != nil {
					b.Fatal(err)
				}
				ep, err := d.Preempt(0, tech)
				if err != nil {
					b.Fatal(err)
				}
				if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
					b.Fatal(err)
				}
				if err := d.Resume(ep); err != nil {
					b.Fatal(err)
				}
				if err := d.RunUntil(ep.Finished, 1<<40); err != nil {
					b.Fatal(err)
				}
				cfg := d.Cfg
				lastPreempt = cfg.CyclesToMicros(ep.PreemptLatencyCycles())
				lastResume = cfg.CyclesToMicros(ep.ResumeCycles())
			}
			b.ReportMetric(lastPreempt, "preempt_us")
			b.ReportMetric(lastResume, "resume_us")
		})
	}
}

func metricName(k preempt.Kind) string {
	switch k {
	case preempt.Combined:
		return "Combined"
	case preempt.CSDefer:
		return "CSDefer"
	default:
		return fmt.Sprint(k)
	}
}
