package harness

import (
	"strings"
	"testing"

	"ctxback/internal/preempt"
)

func quick() Options {
	o := QuickOptions()
	o.Samples = 1
	return o
}

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	rows, err := TableI(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("Table I has %d rows, want 12", len(rows))
	}
	byAb := map[string]TableIRow{}
	for _, r := range rows {
		byAb[r.Abbrev] = r
		if r.PreemptUs <= 0 || r.ResumeUs <= 0 {
			t.Errorf("%s: non-positive times %v %v", r.Abbrev, r.PreemptUs, r.ResumeUs)
		}
		if r.VRegKB <= 0 {
			t.Errorf("%s: no vreg usage", r.Abbrev)
		}
	}
	// Rank shape from the paper: KM (13 KB) must cost more to switch
	// than VA (3 KB); HS's LDS makes it expensive despite few vregs.
	if byAb["KM"].PreemptUs <= byAb["VA"].PreemptUs {
		t.Errorf("KM preempt (%.1f) should exceed VA (%.1f)", byAb["KM"].PreemptUs, byAb["VA"].PreemptUs)
	}
	if byAb["HS"].PreemptUs <= byAb["RELU"].PreemptUs {
		t.Errorf("HS preempt (%.1f) should exceed RELU (%.1f)", byAb["HS"].PreemptUs, byAb["RELU"].PreemptUs)
	}
	out := RenderTableI(rows)
	if !strings.Contains(out, "K-Means") || !strings.Contains(out, "Paper P us") {
		t.Error("rendered table missing expected content")
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	mean := map[preempt.Kind]float64{}
	for _, s := range fig.SeriesBy {
		mean[s.Kind] = s.Mean
		for ab, v := range s.Values {
			if v <= 0 || v > 1.0001 {
				t.Errorf("%v/%s: normalized context %v outside (0,1]", s.Kind, ab, v)
			}
		}
	}
	// The paper's ordering: everything beats BASELINE; CTXBack is close
	// to the CKPT minimum; LIVE is the weakest reducer.
	if !(mean[preempt.Live] < 1) {
		t.Errorf("LIVE mean = %v, want < 1", mean[preempt.Live])
	}
	if !(mean[preempt.CTXBack] < mean[preempt.Live]) {
		t.Errorf("CTXBack (%v) must beat LIVE (%v)", mean[preempt.CTXBack], mean[preempt.Live])
	}
	if ratio := mean[preempt.CTXBack] / mean[preempt.Ckpt]; ratio > 1.5 {
		t.Errorf("CTXBack/minimum ratio = %.2f, paper reports 1.09", ratio)
	}
	if !(mean[preempt.Combined] <= mean[preempt.CTXBack]+1e-9) {
		t.Errorf("combined (%v) must not exceed CTXBack (%v)", mean[preempt.Combined], mean[preempt.CTXBack])
	}
	if s := RenderFigure(fig); !strings.Contains(s, "MEAN") {
		t.Error("rendered figure missing mean column")
	}
}

func TestFig8Fig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	o := quick()
	f8, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	get := func(f *Figure, k preempt.Kind) float64 {
		for _, s := range f.SeriesBy {
			if s.Kind == k {
				return s.Mean
			}
		}
		return -1
	}
	// Preemption latency: CTXBack < LIVE < BASELINE; CKPT near zero.
	if !(get(f8, preempt.CTXBack) < get(f8, preempt.Live)) {
		t.Errorf("Fig8: CTXBack (%v) must beat LIVE (%v)", get(f8, preempt.CTXBack), get(f8, preempt.Live))
	}
	if !(get(f8, preempt.Ckpt) < get(f8, preempt.CTXBack)) {
		t.Errorf("Fig8: CKPT drop (%v) should have the lowest latency", get(f8, preempt.Ckpt))
	}
	// Resume: CKPT is by far the worst (replay), per the paper.
	if !(get(f9, preempt.Ckpt) > get(f9, preempt.CTXBack)) {
		t.Errorf("Fig9: CKPT resume (%v) must exceed CTXBack (%v)", get(f9, preempt.Ckpt), get(f9, preempt.CTXBack))
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	fig, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	var ckpt, ctx float64
	for _, s := range fig.SeriesBy {
		switch s.Kind {
		case preempt.Ckpt:
			ckpt = s.Mean
		case preempt.CTXBack:
			ctx = s.Mean
		}
	}
	if ctx > 0.02 {
		t.Errorf("CTXBack runtime overhead %.3f, paper reports 0.41%%", ctx)
	}
	if ckpt < ctx {
		t.Errorf("CKPT overhead (%v) must exceed CTXBack's (%v)", ckpt, ctx)
	}
}

func TestAblationMonotone(t *testing.T) {
	rows, err := Ablation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ablation rows = %d, want 4", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanRatio > rows[i-1].MeanRatio+1e-9 {
			t.Errorf("adding %q increased the context ratio: %.4f -> %.4f",
				rows[i].Label, rows[i-1].MeanRatio, rows[i].MeanRatio)
		}
	}
	if s := RenderAblation(rows); !strings.Contains(s, "Reduction") {
		t.Error("rendered ablation missing header")
	}
}

func TestSummarizeAndRender(t *testing.T) {
	mk := func(vals map[preempt.Kind]float64) *Figure {
		f := &Figure{}
		for k, v := range vals {
			f.SeriesBy = append(f.SeriesBy, Series{Kind: k, Mean: v})
		}
		return f
	}
	f7 := mk(map[preempt.Kind]float64{preempt.Live: 0.62, preempt.CTXBack: 0.39, preempt.Ckpt: 0.36, preempt.CSDefer: 0.38, preempt.Combined: 0.38})
	f8 := mk(map[preempt.Kind]float64{preempt.CTXBack: 0.37, preempt.CSDefer: 0.50, preempt.Combined: 0.35})
	f9 := mk(map[preempt.Kind]float64{preempt.CTXBack: 0.50, preempt.CSDefer: 0.34, preempt.Ckpt: 3.18})
	f10 := mk(map[preempt.Kind]float64{preempt.CTXBack: 0.004, preempt.Ckpt: 1.30})
	s := Summarize(f7, f8, f9, f10)
	if s.ContextReductionCTXBack < 0.60 || s.ContextReductionCTXBack > 0.62 {
		t.Errorf("context reduction = %v", s.ContextReductionCTXBack)
	}
	if s.RatioToMinimum < 1.0 || s.RatioToMinimum > 1.2 {
		t.Errorf("ratio to minimum = %v", s.RatioToMinimum)
	}
	if s.CSDeferVsCTXBackLatency < 0.3 || s.CSDeferVsCTXBackLatency > 0.4 {
		t.Errorf("CS-Defer latency delta = %v", s.CSDeferVsCTXBackLatency)
	}
	out := RenderSummary(s)
	if !strings.Contains(out, "61.0%") || !strings.Contains(out, "paper") {
		t.Error("summary rendering missing paper references")
	}
}

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(1000, 3)
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0] < 100 || pts[2] > 900 || pts[0] >= pts[2] {
		t.Errorf("points poorly spread: %v", pts)
	}
	one := samplePoints(1000, 1)
	if one[0] != 500 {
		t.Errorf("single point = %v, want 500", one[0])
	}
}

func TestWaitDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	r, err := WaitDistribution(quick(), "VA", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if row.MaxUs < row.P95Us || row.P95Us < 0 {
			t.Errorf("%v: inconsistent distribution mean=%v p95=%v max=%v",
				row.Kind, row.MeanUs, row.P95Us, row.MaxUs)
		}
	}
	if s := RenderQoS(r); !strings.Contains(s, "p95") {
		t.Error("render missing p95 column")
	}
	if _, err := WaitDistribution(quick(), "NOPE", 2); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestContentionSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	rows, err := ContentionSweep(quick(), "VA")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].WorstUs < rows[i-1].WorstUs {
			t.Errorf("worst-case switch must grow with victims: %v then %v",
				rows[i-1].WorstUs, rows[i].WorstUs)
		}
	}
	if s := RenderContention("VA", rows); !strings.Contains(s, "slowest") {
		t.Error("render missing column")
	}
}
