package harness

import (
	"errors"
	"fmt"

	"ctxback/internal/cfg"
	"ctxback/internal/faults"
	"ctxback/internal/isa"
	"ctxback/internal/liveness"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

// Chaos is the robustness experiment: every technique's preemption
// episode is re-run under seed-driven fault injection (context-transfer
// failures, context corruption, lost/duplicated signals, pipeline
// stalls), and every episode must end in one of the benign outcomes —
// absorbed, detected-and-degraded, or skipped. An injected corruption
// that reaches the final output without any in-band detection is a
// silent-wrong episode, and the experiment exists to show there are
// zero of them.
//
// Detection is layered:
//
//   - mode "checksum": the per-warp save-time context checksum is
//     verified before any corrupted buffer is consumed at resume.
//   - mode "oracle": checksums are disabled and corruption must instead
//     be caught by the resume-integrity oracle, which diffs the resumed
//     warp's live-in registers, EXEC and LDS share against the
//     architectural snapshot captured at the preemption signal. Only
//     techniques that resume exactly at the signal point are swept in
//     this mode (BASELINE, LIVE, CTXBack) — re-executing or deferring
//     techniques resume elsewhere, where the snapshot cannot be diffed.
//   - mode "snapshot": the parked episode is whole-device checkpointed
//     (internal/snapshot) and the speculative restore copy is corrupted
//     — truncated, bit-flipped, or re-stamped with a stale epoch. The
//     section checksums, epoch check, deferred memory validation and
//     the resume-integrity oracle must between them catch every class;
//     recovery re-restores from the authoritative image in-episode.
//
// Degradation: a detected fault abandons the device and re-runs the
// whole episode through BASELINE — first with a salted fault seed (the
// fault environment persists; a different schedule is drawn), then
// fault-free. Only when both fallbacks fail is the episode
// unrecoverable.

// ChaosOutcome classifies one fault-injected episode.
type ChaosOutcome int

const (
	// ChaosClean: no injected fault touched the episode; output exact.
	ChaosClean ChaosOutcome = iota
	// ChaosRecovered: faults fired and were absorbed in-episode
	// (transfer retries, re-raised signals, absorbed duplicates).
	ChaosRecovered
	// ChaosFallback: a fault was detected in-band and the episode
	// completed through the BASELINE fallback with exact output.
	ChaosFallback
	// ChaosUnrecoverable: detection fired but every fallback failed.
	ChaosUnrecoverable
	// ChaosSilentWrong: the final output diverged from the reference
	// with no in-band detection. Must never happen.
	ChaosSilentWrong
	numChaosOutcomes
)

func (o ChaosOutcome) String() string {
	switch o {
	case ChaosClean:
		return "clean"
	case ChaosRecovered:
		return "recovered"
	case ChaosFallback:
		return "fallback"
	case ChaosUnrecoverable:
		return "UNRECOVERABLE"
	case ChaosSilentWrong:
		return "SILENT-WRONG"
	}
	return fmt.Sprintf("ChaosOutcome(%d)", int(o))
}

// code is the single-letter table cell for RenderChaos.
func (o ChaosOutcome) code() string {
	return [...]string{"C", "R", "F", "U", "S!"}[o]
}

// ChaosOptions configures the chaos sweep.
type ChaosOptions struct {
	// Seed is the root of every per-cell fault schedule; the full sweep
	// is reproducible from it.
	Seed uint64
	// Rates are the injected fault rates swept (applied to every fault
	// class via faults.Preset).
	Rates []float64
	// Kinds are the techniques swept in checksum mode.
	Kinds []preempt.Kind
	// OracleKinds are the techniques swept with checksums disabled,
	// relying on the resume-integrity oracle alone.
	OracleKinds []preempt.Kind
	// SnapshotKinds are the techniques swept in snapshot mode: the
	// parked episode is whole-device checkpointed, the speculative copy
	// corrupted (truncated, bit-flipped, stale epoch), and the job must
	// finish exactly on a restored device. Only relocatable techniques
	// (preempt.Relocatable) survive a snapshot trip.
	SnapshotKinds []preempt.Kind
	// SignalFrac places the preemption signal as a fraction of the
	// golden run.
	SignalFrac float64
	// MaxSignalAttempts bounds re-raising a dropped preemption signal
	// before escalating to the fallback path.
	MaxSignalAttempts int
	// FallbackSalt derives the fallback attempt's fault seed.
	FallbackSalt uint64
}

// DefaultChaosOptions is the sweep used for EXPERIMENTS.md.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{
		Seed:              1,
		Rates:             []float64{0.02, 0.2},
		Kinds:             preempt.Kinds(),
		OracleKinds:       []preempt.Kind{preempt.Baseline, preempt.Live, preempt.CTXBack},
		SnapshotKinds:     preempt.RelocatableKinds(),
		SignalFrac:        0.5,
		MaxSignalAttempts: 8,
		FallbackSalt:      0xFA11BACC,
	}
}

// ChaosCell is one (mode, rate, kernel, technique) episode of the sweep.
type ChaosCell struct {
	Mode    string // "checksum", "oracle" or "snapshot"
	Rate    float64
	Kernel  string
	Kind    preempt.Kind
	Outcome ChaosOutcome
	// Skipped: the sampled SM drained before the signal; nothing to
	// preempt (the uninterrupted remainder still verified).
	Skipped bool
	// Detected is the in-band detection that triggered degradation (or,
	// in snapshot mode, the in-episode recovery).
	Detected string
	// SnapFault is the injected snapshot-corruption class drawn in mode
	// "snapshot" ("" elsewhere).
	SnapFault string
	// Absorbed recovery work inside the (first) episode.
	Retries     int
	ReRaised    int
	DupAbsorbed int
	Corrupted   int
	// FallbackAttempts used before the episode completed (0 = none).
	FallbackAttempts int
}

// ChaosReport aggregates the sweep.
type ChaosReport struct {
	Opts    ChaosOptions
	Kernels []string
	Cells   []ChaosCell
	Counts  [numChaosOutcomes]int
	Skipped int
}

// SilentWrong returns the number of silent-wrong episodes (the headline
// robustness claim is that this is zero at any seed).
func (r *ChaosReport) SilentWrong() int { return r.Counts[ChaosSilentWrong] }

// Unrecoverable returns the number of episodes no fallback completed.
func (r *ChaosReport) Unrecoverable() int { return r.Counts[ChaosUnrecoverable] }

// chaosRun is the raw outcome of one episode attempt.
type chaosRun struct {
	detected                                  error // in-band detection, nil if none
	verifyErr                                 error // final output vs the CPU reference
	skipped                                   bool
	retries, reRaised, dupAbsorbed, corrupted int
}

// detectedFault reports whether err is an in-band fault detection (as
// opposed to an infrastructure failure that should abort the sweep).
// Execution faults count: corrupted state that steers a warp into an
// illegal access traps before wrong output commits.
func detectedFault(err error) bool {
	var xfer *sim.TransferFaultError
	var integ *sim.IntegrityError
	return errors.As(err, &xfer) || errors.As(err, &integ) ||
		errors.Is(err, sim.ErrSignalLost) || sim.IsExecutionFault(err)
}

// chaosChecker builds the resume-integrity oracle for one workload: at
// the moment a warp regains its logical progress at the exact signal
// position, its live-in registers, EXEC and (for single-warp blocks)
// LDS share must match the snapshot captured when the signal was
// observed. Warps resuming elsewhere (deferral targets) are skipped.
func chaosChecker(live *liveness.Info, warpsPerBlock int) func(w *sim.Warp) error {
	return func(w *sim.Warp) error {
		snap, rec := w.Snapshot(), w.Record()
		if snap == nil || rec == nil {
			return nil
		}
		if w.PC != rec.PCAtSignal || w.DynCount != rec.DynAtSignal {
			return nil
		}
		fail := func(format string, args ...any) error {
			return &sim.IntegrityError{WarpID: w.ID, Stage: "oracle",
				Detail: fmt.Sprintf(format, args...)}
		}
		if w.Exec != snap.Exec {
			return fail("EXEC %#x, snapshot %#x at pc %d", w.Exec, snap.Exec, w.PC)
		}
		for r := range live.LiveIn[rec.PCAtSignal] {
			switch r.Class {
			case isa.RegVector:
				for l, v := range w.VRegs[r.Index] {
					if v != snap.VRegs[r.Index][l] {
						return fail("v%d[%d] = %#x, snapshot %#x at pc %d", r.Index, l, v, snap.VRegs[r.Index][l], w.PC)
					}
				}
			case isa.RegScalar:
				if w.SRegs[r.Index] != snap.SRegs[r.Index] {
					return fail("s%d = %#x, snapshot %#x at pc %d", r.Index, w.SRegs[r.Index], snap.SRegs[r.Index], w.PC)
				}
			case isa.RegSpecial:
				switch r.Index {
				case isa.SpecVCC:
					if w.VCC != snap.VCC {
						return fail("VCC diverged at pc %d", w.PC)
					}
				case isa.SpecSCC:
					if w.SCC != snap.SCC {
						return fail("SCC diverged at pc %d", w.PC)
					}
				}
			}
		}
		if warpsPerBlock == 1 && len(snap.LDSShare) > 0 {
			share := w.LDS.Data[w.LDSShareLo>>2 : w.LDSShareHi>>2]
			for i, v := range share {
				if v != snap.LDSShare[i] {
					return fail("LDS[%d] = %#x, snapshot %#x", i, v, snap.LDSShare[i])
				}
			}
		}
		return nil
	}
}

// chaosEpisode runs one preempt/resume episode under fault injection
// and verifies the completed run. The returned error is infrastructure
// failure only; fault detections land in chaosRun.detected.
func (o *Options) chaosEpisode(p *prepared, kind preempt.Kind, signal int64,
	fcfg *faults.Config, checker func(*sim.Warp) error, maxSignalAttempts int) (chaosRun, error) {
	var run chaosRun
	tech, err := preempt.New(kind, p.wl.Prog)
	if err != nil {
		return run, fmt.Errorf("%s/%v: %w", p.wl.Abbrev, kind, err)
	}
	d, err := o.newDevice()
	if err != nil {
		return run, err
	}
	if fcfg != nil {
		if err := d.InjectFaults(*fcfg); err != nil {
			return run, err
		}
	}
	if checker != nil {
		d.SetResumeChecker(checker)
	}
	d.AttachRuntime(tech)
	if _, err := p.wl.Launch(d); err != nil {
		return run, err
	}
	if err := d.RunToCycle(signal, o.MaxCycles); err != nil {
		return run, err // pre-signal execution injects no detectable faults
	}

	finish := func() (chaosRun, error) {
		run.verifyErr = p.wl.Verify(d)
		return run, nil
	}
	var ep *sim.Episode
	for attempt := 0; ; attempt++ {
		ep, err = d.Preempt(0, tech)
		if err == nil {
			break
		}
		if errors.Is(err, sim.ErrSignalLost) {
			run.reRaised++
			if attempt+1 >= maxSignalAttempts {
				// Bounded redelivery exhausted: escalate to degradation.
				run.detected = err
				return run, nil
			}
			continue
		}
		if errors.Is(err, sim.ErrDrained) {
			// SM 0 drained before the signal landed: nothing to preempt;
			// the uninterrupted remainder must still verify.
			run.skipped = true
			if err := d.Run(o.MaxCycles); err != nil {
				return run, err
			}
			return finish()
		}
		// Anything else is a real preemption failure, not a drain.
		return run, err
	}
	step := func(runErr error) (done bool, fatal error) {
		if runErr == nil {
			return false, nil
		}
		if detectedFault(runErr) {
			run.detected = runErr
			return true, nil
		}
		return true, runErr
	}
	collect := func() {
		run.retries = ep.Faults.TransientRetries
		run.dupAbsorbed = ep.Faults.AbsorbedDupSignals
		run.corrupted = ep.Faults.CorruptedContexts
	}
	for _, phase := range []func() error{
		func() error { return d.RunUntil(ep.Saved, o.MaxCycles) },
		func() error { return d.Resume(ep) },
		func() error { return d.RunUntil(ep.Finished, o.MaxCycles) },
		func() error { return d.Run(o.MaxCycles) },
	} {
		if done, fatal := step(phase()); done {
			collect()
			return run, fatal
		}
	}
	collect()
	return finish()
}

// chaosCellSeed derives the deterministic fault seed of one sweep cell.
func chaosCellSeed(root uint64, mode, ri, ki, kj int) uint64 {
	return faults.DeriveSeed(root, uint64(mode), uint64(ri), uint64(ki), uint64(kj))
}

// runChaosCell classifies one cell end to end, including degradation.
func (r *Runner) runChaosCell(co ChaosOptions, p *prepared, cell *ChaosCell,
	fcfg faults.Config, checker func(*sim.Warp) error) error {
	signal := int64(co.SignalFrac * float64(p.goldenCycles))
	run, err := r.o.chaosEpisode(p, cell.Kind, signal, &fcfg, checker, co.MaxSignalAttempts)
	if err != nil {
		return err
	}
	cell.Retries, cell.ReRaised = run.retries, run.reRaised
	cell.DupAbsorbed, cell.Corrupted = run.dupAbsorbed, run.corrupted
	switch {
	case run.detected != nil:
		cell.Detected = run.detected.Error()
		// Degradation: the whole episode re-runs through BASELINE —
		// first under a salted fault schedule (the faulty environment
		// persists), then fault-free.
		salted := fcfg
		salted.Seed = faults.DeriveSeed(fcfg.Seed, co.FallbackSalt)
		for _, fb := range []*faults.Config{&salted, nil} {
			cell.FallbackAttempts++
			fbRun, err := r.o.chaosEpisode(p, preempt.Baseline, signal, fb, nil, co.MaxSignalAttempts)
			if err != nil {
				return err
			}
			if fbRun.detected == nil && fbRun.verifyErr == nil {
				cell.Outcome = ChaosFallback
				return nil
			}
		}
		cell.Outcome = ChaosUnrecoverable
	case run.skipped:
		cell.Skipped = true
		if run.verifyErr != nil {
			cell.Outcome = ChaosSilentWrong
		}
	case run.verifyErr != nil:
		cell.Outcome = ChaosSilentWrong
	case run.retries+run.reRaised+run.dupAbsorbed > 0:
		cell.Outcome = ChaosRecovered
	default:
		cell.Outcome = ChaosClean
	}
	return nil
}

// Chaos sweeps fault rates x techniques x kernels, in both detection
// modes, across the worker pool. Cell outcomes are independent
// deterministic simulations, so the report is identical at every
// Parallelism setting.
func (r *Runner) Chaos(co ChaosOptions) (*ChaosReport, error) {
	if co.SignalFrac <= 0 || co.SignalFrac >= 1 {
		co.SignalFrac = 0.5
	}
	if co.MaxSignalAttempts < 1 {
		co.MaxSignalAttempts = 8
	}
	if err := r.prepareAll(); err != nil {
		return nil, err
	}
	rep := &ChaosReport{Opts: co}
	for ki := range r.prep {
		rep.Kernels = append(rep.Kernels, r.prep[ki].p.wl.Abbrev)
	}

	// Enumerate cells: mode 0 = checksum detection over Kinds, mode 1 =
	// oracle-only detection (checksums disabled) over OracleKinds.
	type cellCfg struct {
		fcfg    faults.Config
		checker func(*sim.Warp) error
		ki      int
	}
	var cfgs []cellCfg
	oracles := make([]func(*sim.Warp) error, len(r.prep))
	for ki := range r.prep {
		g, err := cfg.Build(r.prep[ki].p.wl.Prog)
		if err != nil {
			return nil, err
		}
		oracles[ki] = chaosChecker(liveness.Analyze(g), r.o.Params.WarpsPerBlock)
	}
	for ri, rate := range co.Rates {
		for ki := range r.prep {
			for kj, kind := range co.Kinds {
				fc := faults.Preset(chaosCellSeed(co.Seed, 0, ri, ki, kj), rate)
				rep.Cells = append(rep.Cells, ChaosCell{Mode: "checksum", Rate: rate,
					Kernel: rep.Kernels[ki], Kind: kind})
				cfgs = append(cfgs, cellCfg{fcfg: fc, checker: oracles[ki], ki: ki})
			}
			for kj, kind := range co.OracleKinds {
				fc := faults.Config{
					Seed:            chaosCellSeed(co.Seed, 1, ri, ki, kj),
					CorruptRate:     rate,
					DisableChecksum: true,
				}
				rep.Cells = append(rep.Cells, ChaosCell{Mode: "oracle", Rate: rate,
					Kernel: rep.Kernels[ki], Kind: kind})
				cfgs = append(cfgs, cellCfg{fcfg: fc, checker: oracles[ki], ki: ki})
			}
			for kj, kind := range co.SnapshotKinds {
				fc := faults.Config{
					Seed:             chaosCellSeed(co.Seed, 2, ri, ki, kj),
					SnapTruncateRate: rate,
					SnapFlipRate:     rate,
					SnapStaleRate:    rate,
				}
				rep.Cells = append(rep.Cells, ChaosCell{Mode: "snapshot", Rate: rate,
					Kernel: rep.Kernels[ki], Kind: kind})
				cfgs = append(cfgs, cellCfg{fcfg: fc, checker: oracles[ki], ki: ki})
			}
		}
	}

	if err := r.runJobs(len(rep.Cells), func(i int) error {
		if rep.Cells[i].Mode == "snapshot" {
			return r.runSnapshotCell(co, r.prep[cfgs[i].ki].p, &rep.Cells[i], cfgs[i].fcfg, cfgs[i].checker)
		}
		return r.runChaosCell(co, r.prep[cfgs[i].ki].p, &rep.Cells[i], cfgs[i].fcfg, cfgs[i].checker)
	}); err != nil {
		return nil, err
	}
	for i := range rep.Cells {
		if rep.Cells[i].Skipped && rep.Cells[i].Outcome != ChaosSilentWrong {
			rep.Skipped++
			continue
		}
		rep.Counts[rep.Cells[i].Outcome]++
	}
	return rep, nil
}
