package harness

import (
	"fmt"
	"strings"

	"ctxback/internal/preempt"
	"ctxback/internal/sched"
)

// ScheduleComparison is one seeded arrival trace replayed under several
// preemption techniques. Results[i] corresponds to Kinds[i].
type ScheduleComparison struct {
	Trace   sched.TraceConfig
	Jobs    []sched.Job
	Kinds   []preempt.Kind
	Results []*sched.Result
}

// Schedule expands the trace config once and replays the identical
// arrival trace under every technique in kinds, fanning the independent
// runs across the Runner's worker pool. Each run is an isolated
// deterministic simulation on its own Device, so the comparison is
// bit-identical at every Parallelism setting.
func (r *Runner) Schedule(tc sched.TraceConfig, sc sched.Config, kinds []preempt.Kind) (*ScheduleComparison, error) {
	if len(kinds) == 0 {
		return nil, fmt.Errorf("harness: Schedule needs at least one technique")
	}
	jobs, err := sched.GenTrace(tc)
	if err != nil {
		return nil, err
	}
	cmp := &ScheduleComparison{Trace: tc, Jobs: jobs, Kinds: kinds,
		Results: make([]*sched.Result, len(kinds))}
	if err := r.runJobs(len(kinds), func(i int) error {
		res, err := sched.Run(sc, kinds[i], jobs)
		if err != nil {
			return fmt.Errorf("schedule under %v: %w", kinds[i], err)
		}
		cmp.Results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	return cmp, nil
}

// RenderSchedule formats the cross-technique comparison: the trace
// header, one summary row per technique, then each technique's
// per-tenant breakdown.
func RenderSchedule(cmp *ScheduleComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-tenant schedule: %d jobs, seed %d\n", len(cmp.Jobs), cmp.Trace.Seed)
	fmt.Fprintf(&b, "  %-4s %-6s %-7s %4s %10s\n", "job", "kernel", "tenant", "prio", "arrival")
	for _, j := range cmp.Jobs {
		fmt.Fprintf(&b, "  %-4d %-6s %-7d %4d %10d\n", j.ID, j.Kernel, j.Tenant, j.Priority, j.Arrival)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s %12s %9s %12s %12s %12s\n",
		"technique", "makespan", "preempts", "p50-turn", "p95-turn", "p99-turn")
	for i, k := range cmp.Kinds {
		res := cmp.Results[i]
		fmt.Fprintf(&b, "%-18s %12d %9d %12d %12d %12d\n",
			k, res.Makespan, res.TotalPreemptions, res.P50, res.P95, res.P99)
	}
	for _, res := range cmp.Results {
		b.WriteByte('\n')
		b.WriteString(res.Render())
	}
	return strings.TrimRight(b.String(), "\n")
}
