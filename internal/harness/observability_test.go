package harness

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

// vaFactory adapts the VA benchmark into a kernels.Factory for direct
// Options.prepare use in tests.
func vaFactory(p kernels.Params) (*kernels.Workload, error) {
	return kernels.ByAbbrev("VA", p)
}

func TestSamplePointsProperties(t *testing.T) {
	for _, golden := range []int64{1, 10, 1_000_000_000} {
		for _, n := range []int{1, 3, 5, 8} {
			pts := samplePoints(golden, n)
			if len(pts) < 1 || len(pts) > n {
				t.Fatalf("golden=%d n=%d: %d points", golden, n, len(pts))
			}
			for i, pt := range pts {
				if pt < 1 || pt > max(golden, 1) {
					t.Errorf("golden=%d n=%d: point %d out of [1,%d]", golden, n, pt, golden)
				}
				if i > 0 && pt <= pts[i-1] {
					t.Errorf("golden=%d n=%d: points not strictly increasing: %v", golden, n, pts)
				}
			}
		}
	}
	// A degenerate one-cycle golden run collapses every fraction to the
	// single legal signal cycle.
	if pts := samplePoints(1, 5); len(pts) != 1 || pts[0] != 1 {
		t.Errorf("golden=1: %v, want [1]", pts)
	}
	// Large golden runs must keep the historical point placement exactly
	// (the evaluation output is byte-compared against a golden file).
	if pts := samplePoints(1_000_000_000, 3); fmt.Sprint(pts) != "[150000000 500000000 850000000]" {
		t.Errorf("large-golden points moved: %v", pts)
	}
	if pts := samplePoints(1000, 1); pts[0] != 500 {
		t.Errorf("single point = %v, want 500", pts[0])
	}
}

func TestClassifyPreemptErr(t *testing.T) {
	if d, f := classifyPreemptErr(nil); d || f != nil {
		t.Errorf("nil: got (%v, %v)", d, f)
	}
	wrapped := fmt.Errorf("sim: SM 0: %w", sim.ErrDrained)
	if d, f := classifyPreemptErr(wrapped); !d || f != nil {
		t.Errorf("wrapped ErrDrained: got (%v, %v), want (true, nil)", d, f)
	}
	lost := fmt.Errorf("sim: SM 0: %w", sim.ErrSignalLost)
	if d, f := classifyPreemptErr(lost); d || !errors.Is(f, sim.ErrSignalLost) {
		t.Errorf("ErrSignalLost must propagate as a failure, got (%v, %v)", d, f)
	}
	other := errors.New("sim: SM 0 already has an active episode")
	if d, f := classifyPreemptErr(other); d || f != other {
		t.Errorf("generic error must pass through, got (%v, %v)", d, f)
	}
}

func TestFoldEpisodesSkipsAndErrors(t *testing.T) {
	st := func(p, r int64) EpisodeStats {
		return EpisodeStats{
			PreemptCycles: p, ResumeCycles: r,
			DrainCycles: p / 4, SaveCycles: p - p/4,
			RestoreCycles: r / 2, ReplayCycles: r - r/2,
		}
	}
	// ok=false entries (drained samples, collapsed sample slots) are
	// skipped, not averaged in as zeros.
	eps := []episodeResult{
		{st: st(100, 40), ok: true},
		{ok: false},
		{st: st(300, 80), ok: true},
	}
	avg, err := foldEpisodes("VA", preempt.Baseline, eps)
	if err != nil {
		t.Fatal(err)
	}
	if avg.PreemptCycles != 200 || avg.ResumeCycles != 60 {
		t.Errorf("avg = %+v, want preempt 200 resume 60", avg)
	}
	if avg.DrainCycles != (25+75)/2 || avg.SaveCycles != (75+225)/2 {
		t.Errorf("phase averages wrong: %+v", avg)
	}
	// An error anywhere surfaces, regardless of later entries.
	boom := errors.New("boom")
	if _, err := foldEpisodes("VA", preempt.Baseline, []episodeResult{
		{st: st(100, 40), ok: true}, {err: boom},
	}); !errors.Is(err, boom) {
		t.Errorf("fold swallowed the error: %v", err)
	}
	// All-skipped is a hard error, not a zero row.
	if _, err := foldEpisodes("VA", preempt.Baseline, []episodeResult{{ok: false}}); err == nil {
		t.Error("all-skipped fold must error")
	}
}

// TestMeasurePhaseReconciliation is the trace-reconciliation satellite:
// for every paper technique, each measured episode's phase fields sum
// EXACTLY to the two headline latencies.
func TestMeasurePhaseReconciliation(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	o := quick()
	p, err := o.prepare(vaFactory)
	if err != nil {
		t.Fatal(err)
	}
	pts := samplePoints(p.goldenCycles, 2)
	for _, kind := range preempt.Kinds() {
		for _, pt := range pts {
			st, ok, err := o.measure(p, kind, pt)
			if err != nil {
				t.Fatalf("%v@%d: %v", kind, pt, err)
			}
			if !ok {
				continue
			}
			if got := st.DrainCycles + st.SaveCycles; got != st.PreemptCycles {
				t.Errorf("%v@%d: drain+save = %d, want PreemptCycles = %d",
					kind, pt, got, st.PreemptCycles)
			}
			if got := st.RestoreCycles + st.ReplayCycles; got != st.ResumeCycles {
				t.Errorf("%v@%d: restore+replay = %d, want ResumeCycles = %d",
					kind, pt, got, st.ResumeCycles)
			}
			if st.DrainCycles < 0 || st.SaveCycles < 0 || st.RestoreCycles < 0 || st.ReplayCycles < 0 {
				t.Errorf("%v@%d: negative phase in %+v", kind, pt, st)
			}
		}
	}
}

func TestMeasureAvgPopulatesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	run := func() (*trace.Registry, EpisodeStats) {
		o := quick()
		o.Samples = 2
		o.Metrics = trace.NewRegistry()
		p, err := o.prepare(vaFactory)
		if err != nil {
			t.Fatal(err)
		}
		st, err := o.measureAvg(p, preempt.Baseline)
		if err != nil {
			t.Fatal(err)
		}
		return o.Metrics, st
	}
	m, st := run()
	measured := m.Counter("episodes.measured").Value()
	if measured == 0 {
		t.Fatal("no episodes counted")
	}
	h := m.Histogram("episode.preempt_cycles", trace.DefaultCycleBuckets)
	if h.Count() != measured {
		t.Errorf("histogram count %d != episodes measured %d", h.Count(), measured)
	}
	if st.PreemptCycles <= 0 {
		t.Errorf("no preemption latency measured: %+v", st)
	}
	// Determinism: an identical run renders the identical report.
	m2, _ := run()
	if m.Render() != m2.Render() {
		t.Error("metrics report not deterministic across identical runs")
	}
	if out := m.Render(); !strings.Contains(out, "episode.preempt_cycles") {
		t.Errorf("render missing histogram:\n%s", out)
	}
}

func TestPhaseBreakdownReusesMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	r := NewRunner(quick())
	kinds := preempt.Kinds()
	if _, _, err := r.MeasureDynamic(); err != nil {
		t.Fatal(err)
	}
	rows, err := r.PhaseBreakdown(kinds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, row := range rows {
		if len(row.Stats) != len(kinds) {
			t.Fatalf("%s: %d stats, want %d", row.Abbrev, len(row.Stats), len(kinds))
		}
		for kj, st := range row.Stats {
			// Averages reconcile to within integer-division rounding.
			if d := st.DrainCycles + st.SaveCycles - st.PreemptCycles; d < -1 || d > 1 {
				t.Errorf("%s/%v: drain+save off by %d from preempt", row.Abbrev, kinds[kj], d)
			}
			if d := st.RestoreCycles + st.ReplayCycles - st.ResumeCycles; d < -1 || d > 1 {
				t.Errorf("%s/%v: restore+replay off by %d from resume", row.Abbrev, kinds[kj], d)
			}
		}
	}
	// The breakdown over the same kinds must reuse the memoized matrix
	// (same backing array), not re-simulate the sweep.
	m1, err := r.measureMatrix(kinds)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.measureMatrix(kinds)
	if err != nil {
		t.Fatal(err)
	}
	if &m1[0] != &m2[0] {
		t.Error("matrix not memoized: repeated sweep re-simulated")
	}
	if out := RenderPhases(kinds, rows); !strings.Contains(out, "drain") || !strings.Contains(out, "CTXBack") {
		t.Errorf("render missing content:\n%s", out)
	}
}

// TestMeasureAvgStopsAtError pins the truncation fix: an episode error
// surfaces from the fold instead of being diluted by the zero-valued
// unattempted tail.
func TestMeasureAvgStopsAtError(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments are slow")
	}
	o := quick()
	o.Samples = 3
	p, err := o.prepare(vaFactory)
	if err != nil {
		t.Fatal(err)
	}
	// Starve the cycle budget after preparation: measure's first
	// RunUntil overruns it, so sample 0 errors and samples 1..2 are
	// never attempted.
	o.MaxCycles = 1
	if _, err := o.measureAvg(p, preempt.Baseline); err == nil {
		t.Error("budget overrun must surface from measureAvg")
	}
}
