package harness

import (
	"errors"
	"strings"
	"testing"

	"ctxback/internal/faults"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

func quickChaosOptions() ChaosOptions {
	co := DefaultChaosOptions()
	co.Rates = []float64{0.15}
	return co
}

// TestChaosNoSilentWrong is the tentpole acceptance check: a full sweep
// over every kernel and technique at a fixed seed must show every
// injected corruption detected or recovered — zero episodes where wrong
// output escapes without in-band detection, and zero episodes the
// BASELINE fallback cannot complete.
func TestChaosNoSilentWrong(t *testing.T) {
	r := NewRunner(QuickOptions())
	rep, err := r.Chaos(quickChaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.SilentWrong(); n != 0 {
		for _, c := range rep.Cells {
			if c.Outcome == ChaosSilentWrong {
				t.Errorf("silent wrong output: %s/%v mode=%s rate=%.2f", c.Kernel, c.Kind, c.Mode, c.Rate)
			}
		}
		t.Fatalf("%d silent-wrong episodes", n)
	}
	if n := rep.Unrecoverable(); n != 0 {
		t.Fatalf("%d unrecoverable episodes (BASELINE fallback must always complete)", n)
	}
	total := 0
	for _, n := range rep.Counts {
		total += n
	}
	if total == 0 {
		t.Fatal("sweep produced no classified episodes")
	}
	if rep.Counts[ChaosRecovered]+rep.Counts[ChaosFallback] == 0 {
		t.Error("no episode exercised recovery or fallback; raise the rate")
	}
	out := RenderChaos(rep)
	if !strings.Contains(out, "0 silent-wrong") {
		t.Errorf("render disagrees with counts:\n%s", out)
	}
}

// TestChaosDeterministicAcrossWorkers re-runs the same seed at worker
// counts 1 and 4: the classified report must be identical.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	co := quickChaosOptions()
	co.Rates = []float64{0.2}
	var reports []*ChaosReport
	for _, procs := range []int{1, 4} {
		o := QuickOptions()
		o.Parallelism = procs
		rep, err := NewRunner(o).Chaos(co)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	a, b := reports[0], reports[1]
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d differs:\n serial: %+v\nworkers: %+v", i, a.Cells[i], b.Cells[i])
		}
	}
}

// TestChaosForcedFallbackEndToEnd forces a CTXBack validation failure
// (context corruption at 100% rate, caught by the save-time checksum)
// and checks the degradation path end to end: the detection is an
// IntegrityError, the episode re-runs through BASELINE, and the final
// device memory matches the uninterrupted golden run exactly.
func TestChaosForcedFallbackEndToEnd(t *testing.T) {
	o := QuickOptions()
	wl, err := kernels.ByAbbrev("VA", o.Params)
	if err != nil {
		t.Fatal(err)
	}

	// Golden run for the byte-exact memory diff.
	golden, err := sim.NewDevice(o.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Launch(golden); err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(o.MaxCycles); err != nil {
		t.Fatal(err)
	}
	signal := golden.Now() / 2

	// CTXBack episode with every saved context corrupted.
	tech, err := preempt.NewCTXBack(wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sim.NewDevice(o.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InjectFaults(faults.Config{Seed: 42, CorruptRate: 1}); err != nil {
		t.Fatal(err)
	}
	d.AttachRuntime(tech)
	wl2, err := kernels.ByAbbrev("VA", o.Params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl2.Launch(d); err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(func() bool { return d.Now() >= signal }, o.MaxCycles); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, tech)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, o.MaxCycles); err != nil {
		t.Fatal(err)
	}
	resumeErr := d.Resume(ep)
	if resumeErr == nil {
		resumeErr = d.RunUntil(ep.Finished, o.MaxCycles)
	}
	var integ *sim.IntegrityError
	if !errors.As(resumeErr, &integ) {
		t.Fatalf("forced corruption not detected in-band (err = %v)", resumeErr)
	}

	// Degrade: abandon the device, re-run the episode through BASELINE
	// fault-free, and require byte-identical final memory.
	base, err := preempt.NewBaseline(wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := sim.NewDevice(o.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	fb.AttachRuntime(base)
	wl3, err := kernels.ByAbbrev("VA", o.Params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl3.Launch(fb); err != nil {
		t.Fatal(err)
	}
	if err := fb.RunUntil(func() bool { return fb.Now() >= signal }, o.MaxCycles); err != nil {
		t.Fatal(err)
	}
	ep2, err := fb.Preempt(0, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.RunUntil(ep2.Saved, o.MaxCycles); err != nil {
		t.Fatal(err)
	}
	if err := fb.Resume(ep2); err != nil {
		t.Fatal(err)
	}
	if err := fb.Run(o.MaxCycles); err != nil {
		t.Fatal(err)
	}
	if err := wl3.Verify(fb); err != nil {
		t.Fatalf("fallback output failed CPU verification: %v", err)
	}
	for i := range golden.Mem {
		if golden.Mem[i] != fb.Mem[i] {
			t.Fatalf("fallback mem[%d] = %d, golden %d", i, fb.Mem[i], golden.Mem[i])
		}
	}
}

// TestChaosSnapshotMode sweeps only the snapshot-corruption cells at a
// rate high enough that every fault class fires somewhere: zero
// silent-wrong, zero unrecoverable, and at least one cell recovered
// in-episode through the authoritative image.
func TestChaosSnapshotMode(t *testing.T) {
	co := DefaultChaosOptions()
	co.Rates = []float64{0.6}
	co.Kinds = nil
	co.OracleKinds = nil
	rep, err := NewRunner(QuickOptions()).Chaos(co)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Mode != "snapshot" {
			t.Fatalf("unexpected mode %q in snapshot-only sweep", c.Mode)
		}
		if c.Outcome == ChaosSilentWrong || c.Outcome == ChaosUnrecoverable {
			t.Errorf("%s/%v snapfault=%s: outcome %v (detected: %s)",
				c.Kernel, c.Kind, c.SnapFault, c.Outcome, c.Detected)
		}
		if c.SnapFault == "none" && !c.Skipped && c.Outcome != ChaosClean {
			t.Errorf("%s/%v: no fault drawn but outcome %v", c.Kernel, c.Kind, c.Outcome)
		}
		if c.SnapFault != "none" && c.SnapFault != "" && !c.Skipped && c.Outcome != ChaosRecovered {
			t.Errorf("%s/%v snapfault=%s: want recovered, got %v", c.Kernel, c.Kind, c.SnapFault, c.Outcome)
		}
	}
	if rep.Counts[ChaosRecovered] == 0 {
		t.Error("no snapshot fault recovered; raise the rate")
	}
	fired := map[string]bool{}
	for _, c := range rep.Cells {
		fired[c.SnapFault] = true
	}
	for _, class := range []string{"truncated", "bit-flip", "stale-epoch"} {
		if !fired[class] {
			t.Errorf("fault class %s never drawn across the sweep", class)
		}
	}
}
