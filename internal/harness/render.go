package harness

import (
	"fmt"
	"strings"

	"ctxback/internal/preempt"
)

// RenderTableI formats Table I next to the paper's values.
func RenderTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Benchmark Specification (measured BASELINE vs paper)\n")
	fmt.Fprintf(&b, "%-6s %-24s %8s %8s %8s %6s | %10s %10s | %10s %10s\n",
		"Abbrev", "Benchmark", "VReg KB", "SReg KB", "LDS KB", "Warps",
		"Preempt us", "Resume us", "Paper P us", "Paper R us")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 122))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-24s %8.2f %8.3f %8.2f %6d | %10.1f %10.1f | %10.1f %10.1f\n",
			r.Abbrev, r.Name, r.VRegKB, r.SRegKB, r.LDSKB, r.Warps,
			r.PreemptUs, r.ResumeUs, r.PaperPreemptUs, r.PaperResumeUs)
	}
	return b.String()
}

// RenderFigure formats one of Figures 7-10 as an aligned table with the
// benchmark columns the paper uses.
func RenderFigure(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", f.Title, f.Unit)
	fmt.Fprintf(&b, "%-18s", "")
	for _, ab := range f.Abbrevs {
		fmt.Fprintf(&b, "%7s", ab)
	}
	fmt.Fprintf(&b, "%8s\n", "MEAN")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 18+7*len(f.Abbrevs)+8))
	for _, s := range f.SeriesBy {
		fmt.Fprintf(&b, "%-18s", s.Label)
		for _, ab := range f.Abbrevs {
			fmt.Fprintf(&b, "%7.3f", s.Values[ab])
		}
		fmt.Fprintf(&b, "%8.3f\n", s.Mean)
	}
	return b.String()
}

// RenderAblation formats the ablation rows.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: CTXBack static context vs BASELINE by enabled technique\n")
	fmt.Fprintf(&b, "%-28s %14s %14s\n", "Features", "Mean ratio", "Reduction")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 58))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %14.3f %13.1f%%\n", r.Label, r.MeanRatio, (1-r.MeanRatio)*100)
	}
	return b.String()
}

// RenderChaos formats the fault-injection sweep: one block per
// (detection mode, fault rate), techniques as rows and kernels as
// columns, each cell a one-letter outcome code.
func RenderChaos(rep *ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: fault-injection sweep (seed %d)\n", rep.Opts.Seed)
	fmt.Fprintf(&b, "cells: C clean, R recovered in-episode, F detected -> BASELINE fallback,\n")
	fmt.Fprintf(&b, "       U unrecoverable, S! silent wrong output, - SM drained (skipped)\n")
	type block struct {
		mode string
		rate float64
	}
	var order []block
	cells := map[block]map[preempt.Kind]map[string]string{}
	kinds := map[block][]preempt.Kind{}
	for _, c := range rep.Cells {
		k := block{c.Mode, c.Rate}
		if cells[k] == nil {
			order = append(order, k)
			cells[k] = map[preempt.Kind]map[string]string{}
		}
		if cells[k][c.Kind] == nil {
			kinds[k] = append(kinds[k], c.Kind)
			cells[k][c.Kind] = map[string]string{}
		}
		code := c.Outcome.code()
		if c.Skipped && c.Outcome != ChaosSilentWrong {
			code = "-"
		}
		cells[k][c.Kind][c.Kernel] = code
	}
	for _, blk := range order {
		fmt.Fprintf(&b, "\nmode=%s rate=%.2f\n", blk.mode, blk.rate)
		fmt.Fprintf(&b, "%-18s", "")
		for _, ab := range rep.Kernels {
			fmt.Fprintf(&b, "%5s", ab)
		}
		fmt.Fprintf(&b, "\n%s\n", strings.Repeat("-", 18+5*len(rep.Kernels)))
		for _, kind := range kinds[blk] {
			fmt.Fprintf(&b, "%-18s", kind.String())
			for _, ab := range rep.Kernels {
				fmt.Fprintf(&b, "%5s", cells[blk][kind][ab])
			}
			fmt.Fprintln(&b)
		}
	}
	total := 0
	for _, n := range rep.Counts {
		total += n
	}
	fmt.Fprintf(&b, "\n%d episodes (+%d skipped): %d clean, %d recovered, %d fallback, %d unrecoverable, %d silent-wrong\n",
		total, rep.Skipped, rep.Counts[ChaosClean], rep.Counts[ChaosRecovered],
		rep.Counts[ChaosFallback], rep.Counts[ChaosUnrecoverable], rep.Counts[ChaosSilentWrong])
	return b.String()
}

// RenderSummary formats the headline numbers next to the paper's.
func RenderSummary(s Summary) string {
	var b strings.Builder
	row := func(what string, got float64, paper string) {
		fmt.Fprintf(&b, "%-52s %9.1f%%   paper: %s\n", what, got*100, paper)
	}
	fmt.Fprintf(&b, "Headline results (measured vs paper)\n")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 80))
	row("Context reduction, LIVE", s.ContextReductionLive, "37.8%")
	row("Context reduction, CTXBack", s.ContextReductionCTXBack, "61.0%")
	row("Context reduction, CS-Defer", s.ContextReductionCSDefer, "62.1%")
	row("Context reduction, CTXBack+CS-Defer", s.ContextReductionComb, "62.1%")
	fmt.Fprintf(&b, "%-52s %9.2fx   paper: 1.09x\n", "CTXBack context vs minimum (CKPT)", s.RatioToMinimum)
	row("Preemption-time reduction, CTXBack", s.PreemptReductionCTXBack, "63.1%")
	row("Preemption-time reduction, CTXBack+CS-Defer", s.PreemptReductionComb, "65.2%")
	row("CS-Defer preemption latency vs CTXBack (+)", s.CSDeferVsCTXBackLatency, "+34.8%")
	row("Resume-time reduction, CTXBack", s.ResumeReductionCTXBack, "50.0%")
	row("Resume-time reduction, CS-Defer", s.ResumeReductionCSDefer, "65.6%")
	fmt.Fprintf(&b, "%-52s %9.2fx   paper: 3.18x\n", "CKPT resume time vs BASELINE", s.CKPTResumeRatio)
	row("Runtime overhead, CTXBack (OSRB)", s.OverheadCTXBack, "0.41%")
	row("Runtime overhead, CKPT", s.OverheadCKPT, "130%")
	return b.String()
}
