package harness

import (
	"reflect"
	"testing"
)

// TestParallelDeterminism runs the full figure suite serially and on a
// 4-wide worker pool and asserts every reported number is bit-identical.
// This is the guarantee that lets -procs default to GOMAXPROCS without
// perturbing Table I or Figs 7-10.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite, twice")
	}
	run := func(par int) (rows []TableIRow, figs []*Figure) {
		o := QuickOptions()
		o.Parallelism = par
		r := NewRunner(o)
		rows, err := r.TableI()
		if err != nil {
			t.Fatalf("parallelism %d: TableI: %v", par, err)
		}
		f7, err := r.Fig7()
		if err != nil {
			t.Fatalf("parallelism %d: Fig7: %v", par, err)
		}
		f8, f9, err := r.MeasureDynamic()
		if err != nil {
			t.Fatalf("parallelism %d: MeasureDynamic: %v", par, err)
		}
		f10, err := r.Fig10()
		if err != nil {
			t.Fatalf("parallelism %d: Fig10: %v", par, err)
		}
		return rows, []*Figure{f7, f8, f9, f10}
	}

	serialRows, serialFigs := run(1)
	parRows, parFigs := run(4)

	if !reflect.DeepEqual(serialRows, parRows) {
		t.Errorf("Table I diverges between serial and parallel:\nserial:   %+v\nparallel: %+v", serialRows, parRows)
	}
	for i := range serialFigs {
		s, p := serialFigs[i], parFigs[i]
		if !reflect.DeepEqual(s.Abbrevs, p.Abbrevs) {
			t.Errorf("%s: abbrev order diverges: %v vs %v", s.Title, s.Abbrevs, p.Abbrevs)
		}
		if len(s.SeriesBy) != len(p.SeriesBy) {
			t.Fatalf("%s: series count diverges: %d vs %d", s.Title, len(s.SeriesBy), len(p.SeriesBy))
		}
		for j := range s.SeriesBy {
			ss, ps := s.SeriesBy[j], p.SeriesBy[j]
			if ss.Mean != ps.Mean {
				t.Errorf("%s/%s: mean diverges: %v vs %v", s.Title, ss.Label, ss.Mean, ps.Mean)
			}
			if !reflect.DeepEqual(ss.Values, ps.Values) {
				t.Errorf("%s/%s: values diverge:\nserial:   %v\nparallel: %v", s.Title, ss.Label, ss.Values, ps.Values)
			}
		}
	}
}

// TestRunnerSharesGoldenRuns checks the Runner memoizes prepare(): the
// second experiment on the same Runner must reuse the already-simulated
// golden runs rather than re-preparing every kernel.
func TestRunnerSharesGoldenRuns(t *testing.T) {
	o := QuickOptions()
	r := NewRunner(o)
	if err := r.prepareAll(); err != nil {
		t.Fatal(err)
	}
	before := make([]*prepared, len(r.prep))
	for i := range r.prep {
		before[i] = r.prep[i].p
	}
	if _, err := r.TableI(); err != nil {
		t.Fatal(err)
	}
	for i := range r.prep {
		if r.prep[i].p != before[i] {
			t.Errorf("kernel %d: prepared workload was rebuilt instead of reused", i)
		}
	}
}
