package harness

import (
	"fmt"
	"math"

	"ctxback/internal/core"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
)

// TableIRow is one benchmark's line of Table I.
type TableIRow struct {
	Abbrev, Name                  string
	VRegKB, SRegKB, LDSKB         float64
	PreemptUs, ResumeUs           float64 // measured, BASELINE
	PaperPreemptUs, PaperResumeUs float64
	Warps                         int // victims preempted per episode
}

// TableI runs the Table I experiment on a one-shot Runner.
func TableI(o Options) ([]TableIRow, error) { return NewRunner(o).TableI() }

// TableI measures the BASELINE context-switch times for every benchmark
// (paper Table I), fanning the episodes across the worker pool.
func (r *Runner) TableI() ([]TableIRow, error) {
	avg, err := r.measureMatrix([]preempt.Kind{preempt.Baseline})
	if err != nil {
		return nil, err
	}
	rows := make([]TableIRow, len(r.prep))
	for i := range r.prep {
		p := r.prep[i].p
		st := avg[i][0]
		prog := p.wl.Prog
		rows[i] = TableIRow{
			Abbrev:         p.wl.Abbrev,
			Name:           p.wl.FullName,
			VRegKB:         float64(prog.VRegContextBytes()) / 1024,
			SRegKB:         float64(prog.SRegContextBytes()) / 1024,
			LDSKB:          float64(prog.LDSBytes) / 1024,
			PreemptUs:      r.o.Cfg.CyclesToMicros(st.PreemptCycles),
			ResumeUs:       r.o.Cfg.CyclesToMicros(st.ResumeCycles),
			PaperPreemptUs: p.wl.PaperPreemptUs,
			PaperResumeUs:  p.wl.PaperResumeUs,
			Warps:          int(st.Victims),
		}
	}
	return rows, nil
}

// Series is one technique's normalized values across the benchmarks.
type Series struct {
	Kind   preempt.Kind
	Label  string
	Values map[string]float64 // abbrev -> value (normalized to BASELINE)
	Mean   float64
}

// Figure is a full multi-series chart (one of Figs 7-10).
type Figure struct {
	Title    string
	Unit     string
	Abbrevs  []string
	SeriesBy []Series
}

// geomeanOrMean is the geometric mean — the right average for the
// normalized ratios of Figs 7-9, where the arithmetic mean overweights
// the benchmarks a technique helps least. It falls back to the
// arithmetic mean when any value is non-positive (Fig 10's overhead
// fractions can legitimately be 0).
func geomeanOrMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range vals {
		if v <= 0 {
			sum := 0.0
			for _, v := range vals {
				sum += v
			}
			return sum / float64(len(vals))
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// Fig7 runs the context-size experiment on a one-shot Runner.
func Fig7(o Options) (*Figure, error) { return NewRunner(o).Fig7() }

// Fig7 computes the normalized context size per benchmark (static
// analysis, averaged over the instructions of the kernel, plus each
// warp's LDS share which every technique must swap). The CKPT series is
// the checkpoint size — the paper's dashed "minimum possible size".
// Kernels are analyzed in parallel; the per-kernel work is pure static
// analysis so no golden run is needed.
func (r *Runner) Fig7() (*Figure, error) {
	kinds := preempt.Kinds()
	reg := kernels.Registry()
	abbrevs := make([]string, len(reg))
	bytesPer := make([][]float64, len(reg)) // [kernel][kind] mean context bytes
	err := r.runJobs(len(reg), func(ki int) error {
		wl, err := reg[ki](r.o.Params)
		if err != nil {
			return err
		}
		abbrevs[ki] = wl.Abbrev
		ldsShare := 0
		if wl.Prog.LDSBytes > 0 {
			ldsShare = wl.Prog.LDSBytes / r.o.Params.WarpsPerBlock
		}
		row := make([]float64, len(kinds))
		for kj, k := range kinds {
			t, err := preempt.New(k, wl.Prog)
			if err != nil {
				return fmt.Errorf("%s/%v: %w", wl.Abbrev, k, err)
			}
			var sum float64
			for pc := 0; pc < wl.Prog.Len(); pc++ {
				sum += float64(t.StaticContextBytes(pc) + ldsShare)
			}
			row[kj] = sum / float64(wl.Prog.Len())
		}
		bytesPer[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{Title: "Fig 7: normalized context size", Unit: "x BASELINE", Abbrevs: abbrevs}
	baseIdx := 0
	for kj, k := range kinds {
		if k == preempt.Baseline {
			baseIdx = kj
		}
	}
	for kj, k := range kinds {
		s := Series{Kind: k, Label: k.String(), Values: make(map[string]float64)}
		var vals []float64
		for ki, ab := range abbrevs {
			v := bytesPer[ki][kj] / bytesPer[ki][baseIdx]
			s.Values[ab] = v
			vals = append(vals, v)
		}
		s.Mean = geomeanOrMean(vals)
		fig.SeriesBy = append(fig.SeriesBy, s)
	}
	return fig, nil
}

// MeasureDynamic runs the preemption experiments on a one-shot Runner.
func MeasureDynamic(o Options) (fig8, fig9 *Figure, err error) {
	return NewRunner(o).MeasureDynamic()
}

// MeasureDynamic runs the preemption experiments once and derives both
// Fig 8 (preemption time) and Fig 9 (resume time) from the same
// episodes. Every (kernel, technique, sample) episode runs on the
// worker pool; the fold back into figures is in registry order.
func (r *Runner) MeasureDynamic() (fig8, fig9 *Figure, err error) {
	kinds := preempt.Kinds()
	avg, err := r.measureMatrix(kinds)
	if err != nil {
		return nil, nil, err
	}
	fig8 = &Figure{Title: "Fig 8: normalized preemption time", Unit: "x BASELINE"}
	fig9 = &Figure{Title: "Fig 9: normalized resume time", Unit: "x BASELINE"}
	for i := range r.prep {
		ab := r.prep[i].p.wl.Abbrev
		fig8.Abbrevs = append(fig8.Abbrevs, ab)
		fig9.Abbrevs = append(fig9.Abbrevs, ab)
	}
	baseIdx := 0
	for kj, k := range kinds {
		if k == preempt.Baseline {
			baseIdx = kj
		}
	}
	fill := func(fig *Figure, get func(EpisodeStats) int64) {
		for kj, k := range kinds {
			s := Series{Kind: k, Label: k.String(), Values: make(map[string]float64)}
			var vals []float64
			for ki, ab := range fig.Abbrevs {
				v := float64(get(avg[ki][kj])) / float64(get(avg[ki][baseIdx]))
				s.Values[ab] = v
				vals = append(vals, v)
			}
			s.Mean = geomeanOrMean(vals)
			fig.SeriesBy = append(fig.SeriesBy, s)
		}
	}
	fill(fig8, func(st EpisodeStats) int64 { return st.PreemptCycles })
	fill(fig9, func(st EpisodeStats) int64 { return st.ResumeCycles })
	return fig8, fig9, nil
}

// Fig8 measures the normalized execution time of the preemption routines.
func Fig8(o Options) (*Figure, error) {
	f8, _, err := MeasureDynamic(o)
	return f8, err
}

// Fig9 measures the normalized execution time of the resume routines
// (restoration plus re-execution).
func Fig9(o Options) (*Figure, error) {
	_, f9, err := MeasureDynamic(o)
	return f9, err
}

// Fig10 runs the runtime-overhead experiment on a one-shot Runner.
func Fig10(o Options) (*Figure, error) { return NewRunner(o).Fig10() }

// Fig10 measures the runtime overhead of the two techniques that do work
// during normal execution: CKPT's checkpoint stores and CTXBack's OSRB
// copies. The clean and instrumented full runs of every kernel are
// independent simulations, so all of them go to the worker pool.
func (r *Runner) Fig10() (*Figure, error) {
	if err := r.prepareAll(); err != nil {
		return nil, err
	}
	kinds := []preempt.Kind{preempt.Ckpt, preempt.CTXBack}
	nk := len(r.prep)
	runs := 1 + len(kinds) // clean + one per instrumented kind
	cycles := make([]int64, nk*runs)
	err := r.runJobs(nk*runs, func(f int) error {
		ki, j := f/runs, f%runs
		p := r.prep[ki].p
		var c int64
		var err error
		if j == 0 {
			c, err = r.o.runtimeCycles(p, preempt.Baseline, false)
		} else {
			c, err = r.o.runtimeCycles(p, kinds[j-1], true)
		}
		cycles[f] = c
		return err
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{Title: "Fig 10: runtime overhead", Unit: "fraction of clean runtime"}
	for i := range r.prep {
		fig.Abbrevs = append(fig.Abbrevs, r.prep[i].p.wl.Abbrev)
	}
	for kj, k := range kinds {
		s := Series{Kind: k, Label: k.String(), Values: make(map[string]float64)}
		var vals []float64
		for ki, ab := range fig.Abbrevs {
			clean := cycles[ki*runs]
			with := cycles[ki*runs+1+kj]
			v := float64(with-clean) / float64(clean)
			s.Values[ab] = v
			vals = append(vals, v)
		}
		s.Mean = geomeanOrMean(vals)
		fig.SeriesBy = append(fig.SeriesBy, s)
	}
	return fig, nil
}

// AblationRow reports the static context reduction of one CTXBack
// feature combination.
type AblationRow struct {
	Feats     core.Feature
	Label     string
	MeanRatio float64 // mean normalized context vs BASELINE
}

// Ablation runs the feature-ablation study on a one-shot Runner.
func Ablation(o Options) ([]AblationRow, error) { return NewRunner(o).Ablation() }

// Ablation quantifies each of CTXBack's three techniques (DESIGN.md
// call-out): strict condition only, +relaxed, +reverting, +OSRB. Each
// (combo, kernel) compilation is an independent static analysis, so the
// full cross product goes to the worker pool.
func (r *Runner) Ablation() ([]AblationRow, error) {
	combos := []core.Feature{
		0,
		core.FeatRelaxed,
		core.FeatRelaxed | core.FeatRevert,
		core.FeatAll,
	}
	reg := kernels.Registry()
	nk := len(reg)
	ratios := make([]float64, len(combos)*nk)
	err := r.runJobs(len(ratios), func(f int) error {
		ci, ki := f/nk, f%nk
		feats := combos[ci]
		wl, err := reg[ki](r.o.Params)
		if err != nil {
			return err
		}
		c, err := core.Compile(wl.Prog, feats)
		if err != nil {
			return fmt.Errorf("%s/%v: %w", wl.Abbrev, feats, err)
		}
		base, err := preempt.New(preempt.Baseline, wl.Prog)
		if err != nil {
			return err
		}
		var sum, sumBase float64
		for pc := 0; pc < wl.Prog.Len(); pc++ {
			sum += float64(c.Plans[pc].ContextBytes)
			sumBase += float64(base.StaticContextBytes(pc))
		}
		ratios[f] = sum / sumBase
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(combos))
	for ci, feats := range combos {
		rows[ci] = AblationRow{
			Feats:     feats,
			Label:     feats.String(),
			MeanRatio: geomeanOrMean(ratios[ci*nk : (ci+1)*nk]),
		}
	}
	return rows, nil
}

// Summary aggregates the headline numbers the paper reports in the
// abstract and §V.
type Summary struct {
	ContextReductionCTXBack float64 // vs BASELINE (Fig 7 mean)
	ContextReductionLive    float64
	ContextReductionCSDefer float64
	ContextReductionComb    float64
	RatioToMinimum          float64 // CTXBack / CKPT checkpoint size
	PreemptReductionCTXBack float64 // Fig 8 mean
	PreemptReductionComb    float64
	CSDeferVsCTXBackLatency float64 // how much longer CS-Defer's latency is
	ResumeReductionCTXBack  float64 // Fig 9 mean
	ResumeReductionCSDefer  float64
	CKPTResumeRatio         float64 // CKPT resume vs BASELINE
	OverheadCTXBack         float64 // Fig 10 mean
	OverheadCKPT            float64
}

// Summarize derives the summary from already-computed figures.
func Summarize(fig7, fig8, fig9, fig10 *Figure) Summary {
	get := func(f *Figure, k preempt.Kind) float64 {
		for _, s := range f.SeriesBy {
			if s.Kind == k {
				return s.Mean
			}
		}
		return 0
	}
	s := Summary{
		ContextReductionCTXBack: 1 - get(fig7, preempt.CTXBack),
		ContextReductionLive:    1 - get(fig7, preempt.Live),
		ContextReductionCSDefer: 1 - get(fig7, preempt.CSDefer),
		ContextReductionComb:    1 - get(fig7, preempt.Combined),
		PreemptReductionCTXBack: 1 - get(fig8, preempt.CTXBack),
		PreemptReductionComb:    1 - get(fig8, preempt.Combined),
		ResumeReductionCTXBack:  1 - get(fig9, preempt.CTXBack),
		ResumeReductionCSDefer:  1 - get(fig9, preempt.CSDefer),
		CKPTResumeRatio:         get(fig9, preempt.Ckpt),
		OverheadCTXBack:         get(fig10, preempt.CTXBack),
		OverheadCKPT:            get(fig10, preempt.Ckpt),
	}
	if m := get(fig7, preempt.Ckpt); m > 0 {
		s.RatioToMinimum = get(fig7, preempt.CTXBack) / m
	}
	if c := get(fig8, preempt.CTXBack); c > 0 {
		s.CSDeferVsCTXBackLatency = get(fig8, preempt.CSDefer)/c - 1
	}
	return s
}
