package harness

import (
	"fmt"

	"ctxback/internal/core"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
)

// TableIRow is one benchmark's line of Table I.
type TableIRow struct {
	Abbrev, Name                  string
	VRegKB, SRegKB, LDSKB         float64
	PreemptUs, ResumeUs           float64 // measured, BASELINE
	PaperPreemptUs, PaperResumeUs float64
	Warps                         int // victims preempted per episode
}

// TableI measures the BASELINE context-switch times for every benchmark
// (paper Table I).
func TableI(o Options) ([]TableIRow, error) {
	var rows []TableIRow
	for _, f := range kernels.Registry() {
		p, err := o.prepare(f)
		if err != nil {
			return nil, err
		}
		st, err := o.measureAvg(p, preempt.Baseline)
		if err != nil {
			return nil, err
		}
		prog := p.wl.Prog
		rows = append(rows, TableIRow{
			Abbrev:         p.wl.Abbrev,
			Name:           p.wl.FullName,
			VRegKB:         float64(prog.VRegContextBytes()) / 1024,
			SRegKB:         float64(prog.SRegContextBytes()) / 1024,
			LDSKB:          float64(prog.LDSBytes) / 1024,
			PreemptUs:      o.Cfg.CyclesToMicros(st.PreemptCycles),
			ResumeUs:       o.Cfg.CyclesToMicros(st.ResumeCycles),
			PaperPreemptUs: p.wl.PaperPreemptUs,
			PaperResumeUs:  p.wl.PaperResumeUs,
			Warps:          st.Victims,
		})
	}
	return rows, nil
}

// Series is one technique's normalized values across the benchmarks.
type Series struct {
	Kind   preempt.Kind
	Label  string
	Values map[string]float64 // abbrev -> value (normalized to BASELINE)
	Mean   float64
}

// Figure is a full multi-series chart (one of Figs 7-10).
type Figure struct {
	Title    string
	Unit     string
	Abbrevs  []string
	SeriesBy []Series
}

func geomeanOrMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Fig7 computes the normalized context size per benchmark (static
// analysis, averaged over the instructions of the kernel, plus each
// warp's LDS share which every technique must swap). The CKPT series is
// the checkpoint size — the paper's dashed "minimum possible size".
func Fig7(o Options) (*Figure, error) {
	fig := &Figure{Title: "Fig 7: normalized context size", Unit: "x BASELINE"}
	perKind := make(map[preempt.Kind]map[string]float64)
	for _, k := range preempt.Kinds() {
		perKind[k] = make(map[string]float64)
	}
	for _, f := range kernels.Registry() {
		wl, err := f(o.Params)
		if err != nil {
			return nil, err
		}
		fig.Abbrevs = append(fig.Abbrevs, wl.Abbrev)
		ldsShare := 0
		if wl.Prog.LDSBytes > 0 {
			ldsShare = wl.Prog.LDSBytes / o.Params.WarpsPerBlock
		}
		techs := make(map[preempt.Kind]preempt.Technique)
		for _, k := range preempt.Kinds() {
			t, err := preempt.New(k, wl.Prog)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", wl.Abbrev, k, err)
			}
			techs[k] = t
		}
		for _, k := range preempt.Kinds() {
			var sum float64
			for pc := 0; pc < wl.Prog.Len(); pc++ {
				sum += float64(techs[k].StaticContextBytes(pc) + ldsShare)
			}
			perKind[k][wl.Abbrev] = sum / float64(wl.Prog.Len())
		}
	}
	for _, k := range preempt.Kinds() {
		s := Series{Kind: k, Label: k.String(), Values: make(map[string]float64)}
		var vals []float64
		for _, ab := range fig.Abbrevs {
			v := perKind[k][ab] / perKind[preempt.Baseline][ab]
			s.Values[ab] = v
			vals = append(vals, v)
		}
		s.Mean = geomeanOrMean(vals)
		fig.SeriesBy = append(fig.SeriesBy, s)
	}
	return fig, nil
}

// MeasureDynamic runs the preemption experiments once and derives both
// Fig 8 (preemption time) and Fig 9 (resume time) from the same
// episodes.
func MeasureDynamic(o Options) (fig8, fig9 *Figure, err error) {
	fig8 = &Figure{Title: "Fig 8: normalized preemption time", Unit: "x BASELINE"}
	fig9 = &Figure{Title: "Fig 9: normalized resume time", Unit: "x BASELINE"}
	pre := make(map[preempt.Kind]map[string]float64)
	res := make(map[preempt.Kind]map[string]float64)
	for _, k := range preempt.Kinds() {
		pre[k] = make(map[string]float64)
		res[k] = make(map[string]float64)
	}
	for _, f := range kernels.Registry() {
		p, err := o.prepare(f)
		if err != nil {
			return nil, nil, err
		}
		fig8.Abbrevs = append(fig8.Abbrevs, p.wl.Abbrev)
		fig9.Abbrevs = append(fig9.Abbrevs, p.wl.Abbrev)
		for _, k := range preempt.Kinds() {
			st, err := o.measureAvg(p, k)
			if err != nil {
				return nil, nil, err
			}
			pre[k][p.wl.Abbrev] = float64(st.PreemptCycles)
			res[k][p.wl.Abbrev] = float64(st.ResumeCycles)
		}
	}
	fill := func(fig *Figure, data map[preempt.Kind]map[string]float64) {
		for _, k := range preempt.Kinds() {
			s := Series{Kind: k, Label: k.String(), Values: make(map[string]float64)}
			var vals []float64
			for _, ab := range fig.Abbrevs {
				v := data[k][ab] / data[preempt.Baseline][ab]
				s.Values[ab] = v
				vals = append(vals, v)
			}
			s.Mean = geomeanOrMean(vals)
			fig.SeriesBy = append(fig.SeriesBy, s)
		}
	}
	fill(fig8, pre)
	fill(fig9, res)
	return fig8, fig9, nil
}

// Fig8 measures the normalized execution time of the preemption routines.
func Fig8(o Options) (*Figure, error) {
	f8, _, err := MeasureDynamic(o)
	return f8, err
}

// Fig9 measures the normalized execution time of the resume routines
// (restoration plus re-execution).
func Fig9(o Options) (*Figure, error) {
	_, f9, err := MeasureDynamic(o)
	return f9, err
}

// Fig10 measures the runtime overhead of the two techniques that do work
// during normal execution: CKPT's checkpoint stores and CTXBack's OSRB
// copies.
func Fig10(o Options) (*Figure, error) {
	fig := &Figure{Title: "Fig 10: runtime overhead", Unit: "fraction of clean runtime"}
	kinds := []preempt.Kind{preempt.Ckpt, preempt.CTXBack}
	perKind := make(map[preempt.Kind]map[string]float64)
	for _, k := range kinds {
		perKind[k] = make(map[string]float64)
	}
	for _, f := range kernels.Registry() {
		p, err := o.prepare(f)
		if err != nil {
			return nil, err
		}
		fig.Abbrevs = append(fig.Abbrevs, p.wl.Abbrev)
		clean, err := o.runtimeCycles(p, preempt.Baseline, false)
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			with, err := o.runtimeCycles(p, k, true)
			if err != nil {
				return nil, err
			}
			perKind[k][p.wl.Abbrev] = float64(with-clean) / float64(clean)
		}
	}
	for _, k := range kinds {
		s := Series{Kind: k, Label: k.String(), Values: make(map[string]float64)}
		var vals []float64
		for _, ab := range fig.Abbrevs {
			v := perKind[k][ab]
			s.Values[ab] = v
			vals = append(vals, v)
		}
		s.Mean = geomeanOrMean(vals)
		fig.SeriesBy = append(fig.SeriesBy, s)
	}
	return fig, nil
}

// AblationRow reports the static context reduction of one CTXBack
// feature combination.
type AblationRow struct {
	Feats     core.Feature
	Label     string
	MeanRatio float64 // mean normalized context vs BASELINE
}

// Ablation quantifies each of CTXBack's three techniques (DESIGN.md
// call-out): strict condition only, +relaxed, +reverting, +OSRB.
func Ablation(o Options) ([]AblationRow, error) {
	combos := []core.Feature{
		0,
		core.FeatRelaxed,
		core.FeatRelaxed | core.FeatRevert,
		core.FeatAll,
	}
	var rows []AblationRow
	for _, feats := range combos {
		var ratios []float64
		for _, f := range kernels.Registry() {
			wl, err := f(o.Params)
			if err != nil {
				return nil, err
			}
			c, err := core.Compile(wl.Prog, feats)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", wl.Abbrev, feats, err)
			}
			base, err := preempt.New(preempt.Baseline, wl.Prog)
			if err != nil {
				return nil, err
			}
			var sum, sumBase float64
			for pc := 0; pc < wl.Prog.Len(); pc++ {
				sum += float64(c.Plans[pc].ContextBytes)
				sumBase += float64(base.StaticContextBytes(pc))
			}
			ratios = append(ratios, sum/sumBase)
		}
		rows = append(rows, AblationRow{Feats: feats, Label: feats.String(), MeanRatio: geomeanOrMean(ratios)})
	}
	return rows, nil
}

// Summary aggregates the headline numbers the paper reports in the
// abstract and §V.
type Summary struct {
	ContextReductionCTXBack float64 // vs BASELINE (Fig 7 mean)
	ContextReductionLive    float64
	ContextReductionCSDefer float64
	ContextReductionComb    float64
	RatioToMinimum          float64 // CTXBack / CKPT checkpoint size
	PreemptReductionCTXBack float64 // Fig 8 mean
	PreemptReductionComb    float64
	CSDeferVsCTXBackLatency float64 // how much longer CS-Defer's latency is
	ResumeReductionCTXBack  float64 // Fig 9 mean
	ResumeReductionCSDefer  float64
	CKPTResumeRatio         float64 // CKPT resume vs BASELINE
	OverheadCTXBack         float64 // Fig 10 mean
	OverheadCKPT            float64
}

// Summarize derives the summary from already-computed figures.
func Summarize(fig7, fig8, fig9, fig10 *Figure) Summary {
	get := func(f *Figure, k preempt.Kind) float64 {
		for _, s := range f.SeriesBy {
			if s.Kind == k {
				return s.Mean
			}
		}
		return 0
	}
	s := Summary{
		ContextReductionCTXBack: 1 - get(fig7, preempt.CTXBack),
		ContextReductionLive:    1 - get(fig7, preempt.Live),
		ContextReductionCSDefer: 1 - get(fig7, preempt.CSDefer),
		ContextReductionComb:    1 - get(fig7, preempt.Combined),
		PreemptReductionCTXBack: 1 - get(fig8, preempt.CTXBack),
		PreemptReductionComb:    1 - get(fig8, preempt.Combined),
		ResumeReductionCTXBack:  1 - get(fig9, preempt.CTXBack),
		ResumeReductionCSDefer:  1 - get(fig9, preempt.CSDefer),
		CKPTResumeRatio:         get(fig9, preempt.Ckpt),
		OverheadCTXBack:         get(fig10, preempt.CTXBack),
		OverheadCKPT:            get(fig10, preempt.Ckpt),
	}
	if m := get(fig7, preempt.Ckpt); m > 0 {
		s.RatioToMinimum = get(fig7, preempt.CTXBack) / m
	}
	if c := get(fig8, preempt.CTXBack); c > 0 {
		s.CSDeferVsCTXBackLatency = get(fig8, preempt.CSDefer)/c - 1
	}
	return s
}
