package harness

import (
	"fmt"
	"sort"
	"strings"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
)

// QoSRow summarizes the waiting-time distribution one technique imposes
// on incoming latency-sensitive jobs for one kernel: the paper's §I
// motivation is that the *tail* of this distribution, not just the mean,
// determines whether QoS guarantees hold.
type QoSRow struct {
	Kind                 preempt.Kind
	MeanUs, P95Us, MaxUs float64
	ResumeMeanUs         float64
}

// QoSResult is the distribution study for one victim kernel.
type QoSResult struct {
	Abbrev  string
	Samples int
	Rows    []QoSRow
}

// WaitDistribution preempts the kernel at n points spread across its
// whole runtime and reports the preemption-latency distribution per
// technique. Unlike Fig 8 (means, normalized), this surfaces the tail.
func WaitDistribution(o Options, abbrev string, n int) (*QoSResult, error) {
	var factory kernels.Factory
	for _, f := range kernels.Registry() {
		wl, err := f(o.Params)
		if err != nil {
			return nil, err
		}
		if wl.Abbrev == abbrev {
			factory = f
			break
		}
	}
	if factory == nil {
		return nil, fmt.Errorf("harness: unknown benchmark %q", abbrev)
	}
	p, err := o.prepare(factory)
	if err != nil {
		return nil, err
	}
	res := &QoSResult{Abbrev: abbrev, Samples: n}
	for _, kind := range preempt.ExtendedKinds() {
		if _, err := preempt.New(kind, p.wl.Prog); err != nil {
			continue // e.g. SM-flushing on a non-idempotent kernel
		}
		var waits, resumes []float64
		for i := 0; i < n; i++ {
			frac := 0.05 + 0.9*float64(i)/float64(max(n-1, 1))
			st, ok, err := o.measure(p, kind, int64(frac*float64(p.goldenCycles)))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			waits = append(waits, o.Cfg.CyclesToMicros(st.PreemptCycles))
			resumes = append(resumes, o.Cfg.CyclesToMicros(st.ResumeCycles))
		}
		if len(waits) == 0 {
			continue
		}
		sort.Float64s(waits)
		row := QoSRow{
			Kind:         kind,
			MeanUs:       mean(waits),
			P95Us:        percentile(waits, 0.95),
			MaxUs:        waits[len(waits)-1],
			ResumeMeanUs: mean(resumes),
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// RenderQoS formats the distribution table.
func RenderQoS(r *QoSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Waiting-time distribution on %s (%d arrival points)\n", r.Abbrev, r.Samples)
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %14s\n", "technique", "mean us", "p95 us", "max us", "resume mean us")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 72))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %12.2f %12.2f %12.2f %14.2f\n",
			row.Kind, row.MeanUs, row.P95Us, row.MaxUs, row.ResumeMeanUs)
	}
	return b.String()
}
