package harness

import (
	"fmt"
	"sort"
	"strings"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
)

// QoSRow summarizes the waiting-time distribution one technique imposes
// on incoming latency-sensitive jobs for one kernel: the paper's §I
// motivation is that the *tail* of this distribution, not just the mean,
// determines whether QoS guarantees hold.
type QoSRow struct {
	Kind                 preempt.Kind
	MeanUs, P95Us, MaxUs float64
	ResumeMeanUs         float64
}

// QoSResult is the distribution study for one victim kernel.
type QoSResult struct {
	Abbrev  string
	Samples int
	Rows    []QoSRow
}

// WaitDistribution runs the distribution study on a one-shot Runner.
func WaitDistribution(o Options, abbrev string, n int) (*QoSResult, error) {
	return NewRunner(o).WaitDistribution(abbrev, n)
}

// WaitDistribution preempts the kernel at n points spread across its
// whole runtime and reports the preemption-latency distribution per
// technique. Unlike Fig 8 (means, normalized), this surfaces the tail.
// The (technique, arrival point) episodes all run on the worker pool;
// statistics fold in sample order so the reported distribution matches
// the serial path exactly.
func (r *Runner) WaitDistribution(abbrev string, n int) (*QoSResult, error) {
	ki := -1
	for i, f := range kernels.Registry() {
		wl, err := f(r.o.Params)
		if err != nil {
			return nil, err
		}
		if wl.Abbrev == abbrev {
			ki = i
			break
		}
	}
	if ki < 0 {
		return nil, fmt.Errorf("harness: unknown benchmark %q", abbrev)
	}
	p, err := r.preparedFor(ki)
	if err != nil {
		return nil, err
	}
	var kinds []preempt.Kind
	for _, kind := range preempt.ExtendedKinds() {
		if _, err := preempt.New(kind, p.wl.Prog); err != nil {
			continue // e.g. SM-flushing on a non-idempotent kernel
		}
		kinds = append(kinds, kind)
	}
	results := make([]episodeResult, len(kinds)*n)
	r.runJobs(len(results), func(f int) error {
		kj, i := f/n, f%n
		frac := 0.05 + 0.9*float64(i)/float64(max(n-1, 1))
		st, ok, err := r.o.measure(p, kinds[kj], int64(frac*float64(p.goldenCycles)))
		results[f] = episodeResult{st: st, ok: ok, err: err}
		return nil // errors surface below, in serial order
	})
	res := &QoSResult{Abbrev: abbrev, Samples: n}
	for kj, kind := range kinds {
		var waits, resumes []float64
		for i := 0; i < n; i++ {
			e := results[kj*n+i]
			if e.err != nil {
				return nil, e.err
			}
			if !e.ok {
				continue
			}
			waits = append(waits, r.o.Cfg.CyclesToMicros(e.st.PreemptCycles))
			resumes = append(resumes, r.o.Cfg.CyclesToMicros(e.st.ResumeCycles))
		}
		if len(waits) == 0 {
			continue
		}
		sort.Float64s(waits)
		res.Rows = append(res.Rows, QoSRow{
			Kind:         kind,
			MeanUs:       mean(waits),
			P95Us:        percentile(waits, 0.95),
			MaxUs:        waits[len(waits)-1],
			ResumeMeanUs: mean(resumes),
		})
	}
	return res, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// RenderQoS formats the distribution table.
func RenderQoS(r *QoSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Waiting-time distribution on %s (%d arrival points)\n", r.Abbrev, r.Samples)
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %14s\n", "technique", "mean us", "p95 us", "max us", "resume mean us")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 72))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %12.2f %12.2f %12.2f %14.2f\n",
			row.Kind, row.MeanUs, row.P95Us, row.MaxUs, row.ResumeMeanUs)
	}
	return b.String()
}
