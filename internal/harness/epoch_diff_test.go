package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

// epochRun is one device being driven in lockstep with its twin at a
// different shard count: the same workload, technique, and episode
// orchestration. Unlike the ready-queue diff (which traces every
// instruction), the sharded engine cannot carry a tracer — tracing
// forces the serial engine — so the runs are compared at every phase
// boundary on the full observable surface: clock, device stats, episode
// phase decomposition, memory image, and verified output.
type epochRun struct {
	wl     *kernels.Workload
	d      *sim.Device
	tech   preempt.Technique
	launch *sim.Launch
	ep     *sim.Episode
}

func newEpochRun(t *testing.T, cfg sim.Config, abbrev string, kind preempt.Kind, shards int) *epochRun {
	t.Helper()
	wl, err := kernels.ByAbbrev(abbrev, kernels.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	d, err := sim.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.SetShards(shards)
	tech, err := preempt.New(kind, wl.Prog)
	if err != nil {
		t.Skipf("technique unavailable: %v", err)
	}
	d.AttachRuntime(tech)
	launch, err := wl.Launch(d)
	if err != nil {
		t.Fatal(err)
	}
	return &epochRun{wl: wl, d: d, tech: tech, launch: launch}
}

// checkAligned asserts the two devices agree on every cheap observable
// at a phase boundary.
func checkAligned(t *testing.T, phase string, ser, shr *epochRun) {
	t.Helper()
	if a, b := ser.d.Now(), shr.d.Now(); a != b {
		t.Fatalf("%s: clocks diverged: serial=%d sharded=%d", phase, a, b)
	}
	if ser.d.Stats != shr.d.Stats {
		t.Fatalf("%s: device stats diverged:\n  serial:  %+v\n  sharded: %+v", phase, ser.d.Stats, shr.d.Stats)
	}
	if a, b := ser.launch.Done(), shr.launch.Done(); a != b {
		t.Fatalf("%s: launch completion diverged: serial=%v sharded=%v", phase, a, b)
	}
}

// TestShardedMatchesSerialEpisodes pins the epoch-parallel engine to the
// serial engine across the full evaluation matrix: every Table I kernel
// under every preemption technique runs a complete preemption episode
// (signal at a seeded-random cycle, save, resume, replay, completion) on
// two devices differing only in shard count, and the clock, device
// stats, episode phase split, preemption latency, saved bytes, final
// memory image, and verified output must match exactly at every phase
// boundary.
func TestShardedMatchesSerialEpisodes(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	cfg := sim.TestConfig()
	cfg.NumSMs = 4 // room for real multi-shard phases
	wls, err := kernels.All(kernels.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20260808))
	for _, wl := range wls {
		for _, kind := range preempt.ExtendedKinds() {
			signal := 1 + rng.Int63n(3000)
			t.Run(fmt.Sprintf("%s/%s", wl.Abbrev, kind), func(t *testing.T) {
				diffShardedEpisode(t, cfg, wl.Abbrev, kind, signal)
			})
		}
	}
}

func diffShardedEpisode(t *testing.T, cfg sim.Config, abbrev string, kind preempt.Kind, signal int64) {
	t.Helper()
	const maxCycles = 1 << 40
	ser := newEpochRun(t, cfg, abbrev, kind, 1)
	shr := newEpochRun(t, cfg, abbrev, kind, 4)

	// Phase 1: run to the preemption signal.
	for _, r := range []*epochRun{ser, shr} {
		if err := r.d.RunToCycle(signal, maxCycles); err != nil {
			t.Fatalf("to-signal (%d shards): %v", r.d.Shards(), err)
		}
	}
	checkAligned(t, "to-signal", ser, shr)

	if !ser.launch.Done() {
		// Phase 2: preempt SM 0 on both; the drained race must resolve
		// identically.
		epS, errS := ser.d.Preempt(0, ser.tech)
		epP, errP := shr.d.Preempt(0, shr.tech)
		if (errS == nil) != (errP == nil) ||
			(errS != nil && errors.Is(errS, sim.ErrDrained) != errors.Is(errP, sim.ErrDrained)) {
			t.Fatalf("Preempt outcome diverged: serial=%v sharded=%v", errS, errP)
		}
		if errS == nil {
			ser.ep, shr.ep = epS, epP
			if a, b := len(epS.Victims), len(epP.Victims); a != b {
				t.Fatalf("victim counts diverged: serial=%d sharded=%d", a, b)
			}
			for _, r := range []*epochRun{ser, shr} {
				if err := r.d.RunUntil(r.ep.Saved, maxCycles); err != nil {
					t.Fatalf("save (%d shards): %v", r.d.Shards(), err)
				}
			}
			checkAligned(t, "save", ser, shr)
			for _, r := range []*epochRun{ser, shr} {
				if err := r.d.Resume(r.ep); err != nil {
					t.Fatalf("Resume (%d shards): %v", r.d.Shards(), err)
				}
				if err := r.d.RunUntil(r.ep.Finished, maxCycles); err != nil {
					t.Fatalf("resume (%d shards): %v", r.d.Shards(), err)
				}
			}
			checkAligned(t, "resume", ser, shr)
			if a, b := epS.Phases(), epP.Phases(); a != b {
				t.Fatalf("episode phases diverged:\n  serial:  %+v\n  sharded: %+v", a, b)
			}
			if a, b := epS.PreemptLatencyCycles(), epP.PreemptLatencyCycles(); a != b {
				t.Fatalf("preempt latency diverged: serial=%d sharded=%d", a, b)
			}
			if a, b := epS.SavedBytes(), epP.SavedBytes(); a != b {
				t.Fatalf("saved bytes diverged: serial=%d sharded=%d", a, b)
			}
		}
	}

	// Phase 3: run to completion.
	for _, r := range []*epochRun{ser, shr} {
		if err := r.d.Run(maxCycles); err != nil {
			t.Fatalf("completion (%d shards): %v", r.d.Shards(), err)
		}
	}
	checkAligned(t, "completion", ser, shr)

	// Final state: identical memory image and verified output.
	for i := range ser.d.Mem {
		if ser.d.Mem[i] != shr.d.Mem[i] {
			t.Fatalf("device memory diverged at word %d: serial=%#x sharded=%#x", i, ser.d.Mem[i], shr.d.Mem[i])
		}
	}
	if err := ser.wl.Verify(ser.d); err != nil {
		t.Fatalf("serial output failed verification: %v", err)
	}
	if err := shr.wl.Verify(shr.d); err != nil {
		t.Fatalf("sharded output failed verification: %v", err)
	}
}
