package harness

import (
	"testing"

	"ctxback/internal/artifact"
)

// TestKeyInputsCoverage is the memoization-key audit: every Options
// field that can change a measured result must move the artifact key.
// A field missing here (or in keyInputs) would let two different runs
// collide on one cached matrix — the bug class this pins shut.
func TestKeyInputsCoverage(t *testing.T) {
	base := QuickOptions()
	hash := func(o Options) string {
		k := artifact.NewKey("audit")
		o.keyInputs(k)
		return k.Hash()
	}
	baseHash := hash(base)
	if hash(base) != baseHash {
		t.Fatal("keyInputs is not deterministic")
	}
	muts := []struct {
		name string
		mut  func(o *Options)
	}{
		{"Cfg.NumSMs", func(o *Options) { o.Cfg.NumSMs++ }},
		{"Cfg.MaxWarpsPerSM", func(o *Options) { o.Cfg.MaxWarpsPerSM++ }},
		{"Cfg.VRegFileBytes", func(o *Options) { o.Cfg.VRegFileBytes *= 2 }},
		{"Cfg.SRegFileBytes", func(o *Options) { o.Cfg.SRegFileBytes *= 2 }},
		{"Cfg.LDSBytesPerSM", func(o *Options) { o.Cfg.LDSBytesPerSM *= 2 }},
		{"Cfg.ClockGHz", func(o *Options) { o.Cfg.ClockGHz *= 2 }},
		{"Cfg.MemLatency", func(o *Options) { o.Cfg.MemLatency++ }},
		{"Cfg.MemBytesPerCycle", func(o *Options) { o.Cfg.MemBytesPerCycle *= 2 }},
		{"Cfg.CtxBytesPerCycle", func(o *Options) { o.Cfg.CtxBytesPerCycle *= 2 }},
		{"Cfg.CtxRestoreFactor", func(o *Options) { o.Cfg.CtxRestoreFactor *= 2 }},
		{"Cfg.LDSLatency", func(o *Options) { o.Cfg.LDSLatency++ }},
		{"Cfg.LDSBytesPerCycle", func(o *Options) { o.Cfg.LDSBytesPerCycle *= 2 }},
		{"Cfg.GlobalMemBytes", func(o *Options) { o.Cfg.GlobalMemBytes *= 2 }},
		{"Params.NumBlocks", func(o *Options) { o.Params.NumBlocks++ }},
		{"Params.WarpsPerBlock", func(o *Options) { o.Params.WarpsPerBlock++ }},
		{"Params.ItersPerWarp", func(o *Options) { o.Params.ItersPerWarp++ }},
		{"Params.Seed", func(o *Options) { o.Params.Seed++ }},
		{"Params.MemBase", func(o *Options) { o.Params.MemBase += 4096 }},
		{"FillDevice", func(o *Options) { o.FillDevice = !o.FillDevice }},
		{"Verify", func(o *Options) { o.Verify = !o.Verify }},
		{"MaxCycles", func(o *Options) { o.MaxCycles++ }},
	}
	seen := map[string]string{baseHash: "base"}
	for _, m := range muts {
		o := base
		m.mut(&o)
		h := hash(o)
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s does not change the key (collides with %s)", m.name, prev)
		}
		seen[h] = m.name
	}
}
