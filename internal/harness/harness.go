// Package harness drives the paper's evaluation (§V): it runs every
// Table-I workload under every preemption technique on the simulator and
// regenerates Table I and Figures 7-10, plus the aggregate statistics
// and the ablation study of CTXBack's three techniques.
package harness

import (
	"fmt"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

// Options configures an evaluation.
type Options struct {
	Cfg    sim.Config
	Params kernels.Params
	// Samples is the number of preemption points per kernel x technique,
	// spread uniformly over the kernel's execution.
	Samples int
	// FillDevice sizes each kernel's grid to occupy every SM fully (one
	// wave), like the paper's persistent-thread batch jobs.
	FillDevice bool
	// Verify re-runs every preempted execution to completion and checks
	// the output against the CPU golden reference.
	Verify    bool
	MaxCycles int64
	// Parallelism is the episode worker-pool width: 0 uses GOMAXPROCS,
	// 1 is the legacy serial path, n>1 forces n workers. Reported
	// numbers are identical at every setting; only wall-clock changes.
	Parallelism int
}

// DefaultOptions is the configuration used for EXPERIMENTS.md.
func DefaultOptions() Options {
	cfg := sim.DefaultConfig()
	return Options{
		Cfg:        cfg,
		Params:     kernels.EvalParams(),
		Samples:    5,
		FillDevice: true,
		Verify:     true,
		MaxCycles:  2_000_000_000,
	}
}

// QuickOptions is a reduced configuration for benchmarks and smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Samples = 2
	o.Verify = false
	p := kernels.TestParams()
	o.Params = p
	o.FillDevice = false
	o.Cfg = sim.TestConfig()
	return o
}

// prepared bundles a sized workload with its golden run length.
type prepared struct {
	wl           *kernels.Workload
	goldenCycles int64
}

// prepare sizes the workload grid (optionally filling the device) and
// measures the uninterrupted run.
func (o *Options) prepare(factory kernels.Factory) (*prepared, error) {
	wl, err := factory(o.Params)
	if err != nil {
		return nil, err
	}
	if o.FillDevice {
		d, err := sim.NewDevice(o.Cfg)
		if err != nil {
			return nil, err
		}
		occ, err := d.ComputeOccupancy(wl.Prog, o.Params.WarpsPerBlock)
		if err != nil {
			return nil, err
		}
		p := o.Params
		p.NumBlocks = occ.BlocksPerSM * o.Cfg.NumSMs
		wl, err = factory(p)
		if err != nil {
			return nil, err
		}
	}
	d, err := sim.NewDevice(o.Cfg)
	if err != nil {
		return nil, err
	}
	if _, err := wl.Launch(d); err != nil {
		return nil, fmt.Errorf("%s: %w", wl.Abbrev, err)
	}
	if err := d.Run(o.MaxCycles); err != nil {
		return nil, fmt.Errorf("%s golden: %w", wl.Abbrev, err)
	}
	if o.Verify {
		if err := wl.Verify(d); err != nil {
			return nil, fmt.Errorf("%s golden verify: %w", wl.Abbrev, err)
		}
	}
	return &prepared{wl: wl, goldenCycles: d.Now()}, nil
}

// EpisodeStats is one measured preemption episode.
type EpisodeStats struct {
	PreemptCycles int64
	ResumeCycles  int64
	SavedBytes    int64
	Victims       int
}

// measure preempts SM 0 at signalCycle under the technique, resumes
// immediately after the save completes, and (optionally) verifies the
// completed run. ok=false when the kernel drained before the signal.
func (o *Options) measure(p *prepared, kind preempt.Kind, signalCycle int64) (EpisodeStats, bool, error) {
	tech, err := preempt.New(kind, p.wl.Prog)
	if err != nil {
		return EpisodeStats{}, false, fmt.Errorf("%s/%v: %w", p.wl.Abbrev, kind, err)
	}
	d, err := sim.NewDevice(o.Cfg)
	if err != nil {
		return EpisodeStats{}, false, err
	}
	d.AttachRuntime(tech)
	launch, err := p.wl.Launch(d)
	if err != nil {
		return EpisodeStats{}, false, err
	}
	if err := d.RunUntil(func() bool { return d.Now() >= signalCycle }, o.MaxCycles); err != nil {
		return EpisodeStats{}, false, err
	}
	if launch.Done() {
		return EpisodeStats{}, false, nil
	}
	ep, err := d.Preempt(0, tech)
	if err != nil {
		return EpisodeStats{}, false, nil // SM 0 drained
	}
	if err := d.RunUntil(ep.Saved, o.MaxCycles); err != nil {
		return EpisodeStats{}, false, fmt.Errorf("%s/%v save: %w", p.wl.Abbrev, kind, err)
	}
	if err := d.Resume(ep); err != nil {
		return EpisodeStats{}, false, err
	}
	if err := d.RunUntil(ep.Finished, o.MaxCycles); err != nil {
		return EpisodeStats{}, false, fmt.Errorf("%s/%v resume: %w", p.wl.Abbrev, kind, err)
	}
	stats := EpisodeStats{
		PreemptCycles: ep.PreemptLatencyCycles(),
		ResumeCycles:  ep.ResumeCycles(),
		SavedBytes:    ep.SavedBytes(),
		Victims:       len(ep.Victims),
	}
	if o.Verify {
		if err := d.Run(o.MaxCycles); err != nil {
			return stats, true, fmt.Errorf("%s/%v completion: %w", p.wl.Abbrev, kind, err)
		}
		if err := p.wl.Verify(d); err != nil {
			return stats, true, fmt.Errorf("%s/%v output corrupted by preemption: %w", p.wl.Abbrev, kind, err)
		}
	}
	return stats, true, nil
}

// samplePoints spreads n signal cycles over (0.15, 0.85) of the golden
// run, avoiding the ramp-up and drain phases.
func samplePoints(golden int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	pts := make([]int64, n)
	lo, hi := 0.15, 0.85
	for i := range pts {
		f := lo
		if n > 1 {
			f = lo + (hi-lo)*float64(i)/float64(n-1)
		} else {
			f = 0.5
		}
		pts[i] = int64(f * float64(golden))
	}
	return pts
}

// measureAvg averages episode stats over the sample points (the serial
// path; the Runner's matrix fold shares foldEpisodes with it).
func (o *Options) measureAvg(p *prepared, kind preempt.Kind) (EpisodeStats, error) {
	pts := samplePoints(p.goldenCycles, o.Samples)
	eps := make([]episodeResult, len(pts))
	for i, pt := range pts {
		st, ok, err := o.measure(p, kind, pt)
		eps[i] = episodeResult{st: st, ok: ok, err: err}
		if err != nil {
			break
		}
	}
	return foldEpisodes(p.wl.Abbrev, kind, eps)
}

// runtimeCycles measures full-kernel execution with (or without) a
// technique's instrumentation attached — the Fig 10 runtime overhead.
func (o *Options) runtimeCycles(p *prepared, kind preempt.Kind, attach bool) (int64, error) {
	d, err := sim.NewDevice(o.Cfg)
	if err != nil {
		return 0, err
	}
	if attach {
		tech, err := preempt.New(kind, p.wl.Prog)
		if err != nil {
			return 0, err
		}
		d.AttachRuntime(tech)
	}
	if _, err := p.wl.Launch(d); err != nil {
		return 0, err
	}
	if err := d.Run(o.MaxCycles); err != nil {
		return 0, err
	}
	if o.Verify {
		if err := p.wl.Verify(d); err != nil {
			return 0, fmt.Errorf("%s/%v instrumented run corrupted output: %w", p.wl.Abbrev, kind, err)
		}
	}
	return d.Now(), nil
}
