// Package harness drives the paper's evaluation (§V): it runs every
// Table-I workload under every preemption technique on the simulator and
// regenerates Table I and Figures 7-10, plus the aggregate statistics
// and the ablation study of CTXBack's three techniques.
package harness

import (
	"errors"
	"fmt"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

// Options configures an evaluation.
type Options struct {
	Cfg    sim.Config
	Params kernels.Params
	// Samples is the number of preemption points per kernel x technique,
	// spread uniformly over the kernel's execution.
	Samples int
	// FillDevice sizes each kernel's grid to occupy every SM fully (one
	// wave), like the paper's persistent-thread batch jobs.
	FillDevice bool
	// Verify re-runs every preempted execution to completion and checks
	// the output against the CPU golden reference.
	Verify    bool
	MaxCycles int64
	// Parallelism is the episode worker-pool width: 0 uses GOMAXPROCS,
	// 1 is the legacy serial path, n>1 forces n workers. Reported
	// numbers are identical at every setting; only wall-clock changes.
	Parallelism int
	// Shards is the intra-device SM shard count handed to every device
	// the harness creates (sim.Device.SetShards). The two parallelism
	// axes multiply: Parallelism spreads independent episodes across
	// workers, Shards splits one device's SMs across goroutines. 0
	// (auto) resolves to intra-device sharding only when the episode
	// pool is serial — with Parallelism > 1 the pool already saturates
	// the cores, so auto picks 1 shard per device. Like Parallelism,
	// the setting never changes reported numbers, only wall-clock.
	Shards int
	// Metrics, when non-nil, receives evaluation counters and latency
	// histograms (episodes measured/drained, per-phase cycle
	// distributions). All updates are atomic, so the registry is shared
	// safely by the parallel worker pool.
	Metrics *trace.Registry
	// Logf, when non-nil, receives diagnostic messages (e.g. sample
	// points collapsing on short golden runs). nil is silent; reported
	// numbers never depend on it.
	Logf func(format string, args ...any)
}

// logf forwards to Options.Logf when set.
func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// newDevice builds a device with the resolved shard count applied.
func (o *Options) newDevice() (*sim.Device, error) {
	d, err := sim.NewDevice(o.Cfg)
	if err != nil {
		return nil, err
	}
	shards := o.Shards
	if shards == 0 && o.procs() > 1 {
		// Auto: the episode pool already occupies the cores; sharding
		// each device on top would only oversubscribe.
		shards = 1
	}
	d.SetShards(shards)
	return d, nil
}

// DefaultOptions is the configuration used for EXPERIMENTS.md.
func DefaultOptions() Options {
	cfg := sim.DefaultConfig()
	return Options{
		Cfg:        cfg,
		Params:     kernels.EvalParams(),
		Samples:    5,
		FillDevice: true,
		Verify:     true,
		MaxCycles:  2_000_000_000,
	}
}

// QuickOptions is a reduced configuration for benchmarks and smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Samples = 2
	o.Verify = false
	p := kernels.TestParams()
	o.Params = p
	o.FillDevice = false
	o.Cfg = sim.TestConfig()
	return o
}

// prepared bundles a sized workload with its golden run length.
type prepared struct {
	wl           *kernels.Workload
	goldenCycles int64
}

// prepareCold sizes the workload grid (optionally filling the device)
// and measures the uninterrupted run. It is the compute path behind
// prepare (see artifact.go), which serves the fill size and golden
// cycle count from the artifact store when one is configured.
func (o *Options) prepareCold(factory kernels.Factory) (*prepared, error) {
	wl, err := factory(o.Params)
	if err != nil {
		return nil, err
	}
	if o.FillDevice {
		d, err := o.newDevice()
		if err != nil {
			return nil, err
		}
		occ, err := d.ComputeOccupancy(wl.Prog, o.Params.WarpsPerBlock)
		if err != nil {
			return nil, err
		}
		p := o.Params
		p.NumBlocks = occ.BlocksPerSM * o.Cfg.NumSMs
		wl, err = factory(p)
		if err != nil {
			return nil, err
		}
	}
	d, err := o.newDevice()
	if err != nil {
		return nil, err
	}
	if _, err := wl.Launch(d); err != nil {
		return nil, fmt.Errorf("%s: %w", wl.Abbrev, err)
	}
	if err := d.Run(o.MaxCycles); err != nil {
		return nil, fmt.Errorf("%s golden: %w", wl.Abbrev, err)
	}
	if o.Verify {
		if err := wl.Verify(d); err != nil {
			return nil, fmt.Errorf("%s golden verify: %w", wl.Abbrev, err)
		}
	}
	return &prepared{wl: wl, goldenCycles: d.Now()}, nil
}

// EpisodeStats is one measured preemption episode. The four phase fields
// decompose the two headline latencies: for a single episode
// DrainCycles+SaveCycles == PreemptCycles and RestoreCycles+ReplayCycles
// == ResumeCycles exactly (sim.Episode.Phases reconciles by
// construction); averaged stats reconcile to within integer-division
// rounding per field.
type EpisodeStats struct {
	PreemptCycles int64
	ResumeCycles  int64
	SavedBytes    int64
	Victims       int64

	DrainCycles   int64 // signal → last victim entered its routine
	SaveCycles    int64 // → SM released
	RestoreCycles int64 // resume start → last context restored
	ReplayCycles  int64 // → logical progress regained
}

// classifyPreemptErr discriminates the benign drained outcome (the SM
// had no running warps left — an expected race between the signal and
// kernel completion) from real preemption failures, which must
// propagate. Non-drain errors pass through unchanged.
func classifyPreemptErr(err error) (drained bool, failure error) {
	if err == nil {
		return false, nil
	}
	if errors.Is(err, sim.ErrDrained) {
		return true, nil
	}
	return false, err
}

// measure preempts SM 0 at signalCycle under the technique, resumes
// immediately after the save completes, and (optionally) verifies the
// completed run. ok=false when the kernel drained before the signal.
func (o *Options) measure(p *prepared, kind preempt.Kind, signalCycle int64) (EpisodeStats, bool, error) {
	tech, err := preempt.New(kind, p.wl.Prog)
	if err != nil {
		return EpisodeStats{}, false, fmt.Errorf("%s/%v: %w", p.wl.Abbrev, kind, err)
	}
	d, err := o.newDevice()
	if err != nil {
		return EpisodeStats{}, false, err
	}
	d.AttachRuntime(tech)
	launch, err := p.wl.Launch(d)
	if err != nil {
		return EpisodeStats{}, false, err
	}
	if err := d.RunToCycle(signalCycle, o.MaxCycles); err != nil {
		return EpisodeStats{}, false, err
	}
	if launch.Done() {
		return EpisodeStats{}, false, nil
	}
	ep, err := d.Preempt(0, tech)
	if err != nil {
		drained, failure := classifyPreemptErr(err)
		if drained {
			if m := o.Metrics; m != nil {
				m.Counter("episodes.drained").Add(1)
			}
			return EpisodeStats{}, false, nil
		}
		return EpisodeStats{}, false, fmt.Errorf("%s/%v preempt: %w", p.wl.Abbrev, kind, failure)
	}
	if err := d.RunUntil(ep.Saved, o.MaxCycles); err != nil {
		return EpisodeStats{}, false, fmt.Errorf("%s/%v save: %w", p.wl.Abbrev, kind, err)
	}
	if err := d.Resume(ep); err != nil {
		return EpisodeStats{}, false, err
	}
	if err := d.RunUntil(ep.Finished, o.MaxCycles); err != nil {
		return EpisodeStats{}, false, fmt.Errorf("%s/%v resume: %w", p.wl.Abbrev, kind, err)
	}
	ph := ep.Phases()
	stats := EpisodeStats{
		PreemptCycles: ep.PreemptLatencyCycles(),
		ResumeCycles:  ep.ResumeCycles(),
		SavedBytes:    ep.SavedBytes(),
		Victims:       int64(len(ep.Victims)),
		DrainCycles:   ph.Drain,
		SaveCycles:    ph.Save,
		RestoreCycles: ph.Restore,
		ReplayCycles:  ph.Replay,
	}
	if m := o.Metrics; m != nil {
		m.Counter("episodes.measured").Add(1)
		m.Counter("episodes.saved_bytes").Add(stats.SavedBytes)
		b := trace.DefaultCycleBuckets
		m.Histogram("episode.preempt_cycles", b).Observe(stats.PreemptCycles)
		m.Histogram("episode.resume_cycles", b).Observe(stats.ResumeCycles)
		m.Histogram("episode.drain_cycles", b).Observe(ph.Drain)
		m.Histogram("episode.save_cycles", b).Observe(ph.Save)
		m.Histogram("episode.restore_cycles", b).Observe(ph.Restore)
		m.Histogram("episode.replay_cycles", b).Observe(ph.Replay)
	}
	if o.Verify {
		if err := d.Run(o.MaxCycles); err != nil {
			return stats, true, fmt.Errorf("%s/%v completion: %w", p.wl.Abbrev, kind, err)
		}
		if err := p.wl.Verify(d); err != nil {
			return stats, true, fmt.Errorf("%s/%v output corrupted by preemption: %w", p.wl.Abbrev, kind, err)
		}
	}
	return stats, true, nil
}

// samplePoints spreads n signal cycles over (0.15, 0.85) of the golden
// run, avoiding the ramp-up and drain phases. Points are clamped into
// [1, golden] (a zero-cycle signal would fire before any instruction
// issues) and de-duplicated: a short golden run collapses adjacent
// fractions onto the same cycle, so the result may hold fewer than n
// points — always at least one, strictly increasing, all distinct.
// Callers that want n samples should log the shortfall (see measureAvg
// and measureMatrix).
func samplePoints(golden int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	pts := make([]int64, 0, n)
	lo, hi := 0.15, 0.85
	for i := 0; i < n; i++ {
		f := 0.5
		if n > 1 {
			f = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		pt := min(max(int64(f*float64(golden)), 1), max(golden, 1))
		if len(pts) > 0 && pt <= pts[len(pts)-1] {
			continue
		}
		pts = append(pts, pt)
	}
	return pts
}

// measureAvg averages episode stats over the sample points (the serial
// path; the Runner's matrix fold shares foldEpisodes with it).
func (o *Options) measureAvg(p *prepared, kind preempt.Kind) (EpisodeStats, error) {
	pts := samplePoints(p.goldenCycles, o.Samples)
	if len(pts) < o.Samples {
		o.logf("%s/%v: golden run of %d cycles yields only %d distinct sample points (want %d)",
			p.wl.Abbrev, kind, p.goldenCycles, len(pts), o.Samples)
	}
	eps := make([]episodeResult, len(pts))
	for i, pt := range pts {
		st, ok, err := o.measure(p, kind, pt)
		eps[i] = episodeResult{st: st, ok: ok, err: err}
		if err != nil {
			// Truncate to the attempted prefix: the unattempted tail is
			// zero-valued and must not reach the fold.
			eps = eps[:i+1]
			break
		}
	}
	return foldEpisodes(p.wl.Abbrev, kind, eps)
}

// runtimeCycles measures full-kernel execution with (or without) a
// technique's instrumentation attached — the Fig 10 runtime overhead.
func (o *Options) runtimeCycles(p *prepared, kind preempt.Kind, attach bool) (int64, error) {
	d, err := o.newDevice()
	if err != nil {
		return 0, err
	}
	if attach {
		tech, err := preempt.New(kind, p.wl.Prog)
		if err != nil {
			return 0, err
		}
		d.AttachRuntime(tech)
	}
	if _, err := p.wl.Launch(d); err != nil {
		return 0, err
	}
	if err := d.Run(o.MaxCycles); err != nil {
		return 0, err
	}
	if o.Verify {
		if err := p.wl.Verify(d); err != nil {
			return 0, fmt.Errorf("%s/%v instrumented run corrupted output: %w", p.wl.Abbrev, kind, err)
		}
	}
	return d.Now(), nil
}
