package harness

import (
	"reflect"
	"strings"
	"testing"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sched"
	"ctxback/internal/sim"
)

// schedQuick mirrors the sched package's unit-test configuration: small
// kernels long enough to be preempted mid-flight, on the unit-test
// device with memory widened for per-job slabs.
func schedQuick() (sched.TraceConfig, sched.Config) {
	tc := sched.TraceConfig{Seed: 9, NumJobs: 6, NumTenants: 3, MeanGapCycles: 3_000}
	p := kernels.TestParams()
	p.ItersPerWarp = 24
	dev := sim.TestConfig()
	dev.GlobalMemBytes = 64 << 20
	sc := sched.Config{Dev: dev, Params: p, MaxCycles: 200_000_000, Verify: true}
	return tc, sc
}

func TestScheduleComparesKinds(t *testing.T) {
	tc, sc := schedQuick()
	r := NewRunner(quick())
	kinds := []preempt.Kind{preempt.Baseline, preempt.CTXBack}
	cmp, err := r.Schedule(tc, sc, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != len(kinds) {
		t.Fatalf("got %d results, want %d", len(cmp.Results), len(kinds))
	}
	for i, res := range cmp.Results {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
		if res.Kind != kinds[i] {
			t.Errorf("result %d kind = %v, want %v", i, res.Kind, kinds[i])
		}
		if len(res.Jobs) != len(cmp.Jobs) {
			t.Errorf("%v scheduled %d jobs, want %d", kinds[i], len(res.Jobs), len(cmp.Jobs))
		}
	}
	out := RenderSchedule(cmp)
	for _, want := range []string{"technique", "makespan", "p95-turn", kinds[0].String(), kinds[1].String()} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered comparison missing %q:\n%s", want, out)
		}
	}
	if _, err := r.Schedule(tc, sc, nil); err == nil {
		t.Error("Schedule with no kinds should error")
	}
}

// TestScheduleAcrossProcs pins the -procs guarantee for the scheduler
// path: the comparison is bit-identical at every Parallelism setting and
// across repeated runs.
func TestScheduleAcrossProcs(t *testing.T) {
	tc, sc := schedQuick()
	kinds := []preempt.Kind{preempt.Baseline, preempt.SMFlush, preempt.CTXBack}
	run := func(procs int) *ScheduleComparison {
		o := quick()
		o.Parallelism = procs
		cmp, err := NewRunner(o).Schedule(tc, sc, kinds)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		return cmp
	}
	serial := run(1)
	for _, procs := range []int{4, 1} {
		got := run(procs)
		if !reflect.DeepEqual(serial.Jobs, got.Jobs) {
			t.Fatalf("procs=%d: traces differ", procs)
		}
		for i := range kinds {
			a, b := serial.Results[i], got.Results[i]
			if !reflect.DeepEqual(a.Jobs, b.Jobs) || !reflect.DeepEqual(a.Tenants, b.Tenants) {
				t.Errorf("procs=%d: %v stats differ from serial run", procs, kinds[i])
			}
			if a.EventLog() != b.EventLog() {
				t.Errorf("procs=%d: %v event log differs from serial run", procs, kinds[i])
			}
		}
		if RenderSchedule(serial) != RenderSchedule(got) {
			t.Errorf("procs=%d: rendered comparison not byte-identical", procs)
		}
	}
}
