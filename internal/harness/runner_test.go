package harness

import (
	"strings"
	"sync"
	"testing"

	"ctxback/internal/preempt"
)

// TestRunJobsPanicBecomesError pins the worker-crash contract: a
// panicking job must surface as an error from runJobs — on the serial
// path and on the pool — never kill the process or leave a silently
// zero-valued slot behind.
func TestRunJobsPanicBecomesError(t *testing.T) {
	for _, procs := range []int{1, 4} {
		o := QuickOptions()
		o.Parallelism = procs
		r := NewRunner(o)
		err := r.runJobs(8, func(i int) error {
			if i == 5 {
				panic("episode exploded")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("procs=%d: panicking job returned nil error", procs)
		}
		if !strings.Contains(err.Error(), "job 5 panicked") || !strings.Contains(err.Error(), "episode exploded") {
			t.Errorf("procs=%d: error does not identify the panic: %v", procs, err)
		}
	}
}

// TestMeasureMatrixSingleFlight proves the cache-stampede fix: N
// concurrent callers that miss the matrix cache together must run
// exactly one simulation of the matrix, with every caller receiving the
// same result.
func TestMeasureMatrixSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full episode matrix")
	}
	o := QuickOptions()
	o.Samples = 1
	r := NewRunner(o)
	kinds := []preempt.Kind{preempt.Baseline}

	const callers = 8
	results := make([][][]EpisodeStats, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = r.measureMatrix(kinds)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", c, err)
		}
	}
	if got := r.matrixComputes.Load(); got != 1 {
		t.Errorf("matrix simulated %d times under concurrent callers, want 1", got)
	}
	for c := 1; c < callers; c++ {
		if &results[c][0] != &results[0][0] {
			t.Errorf("caller %d received a different matrix than caller 0", c)
		}
	}
	// A later call on the warm cache is also a hit.
	if _, err := r.measureMatrix(kinds); err != nil {
		t.Fatal(err)
	}
	if got := r.matrixComputes.Load(); got != 1 {
		t.Errorf("warm-cache call recomputed the matrix (computes=%d)", got)
	}
}

// TestFoldEpisodesRoundsHalfUp pins the averaging fix: truncating
// division biased every stat downward by up to one cycle/byte.
func TestFoldEpisodesRoundsHalfUp(t *testing.T) {
	eps := []episodeResult{
		{st: EpisodeStats{PreemptCycles: 1, ResumeCycles: 4, SavedBytes: 9, Victims: 3,
			DrainCycles: 1, SaveCycles: 0, RestoreCycles: 2, ReplayCycles: 2}, ok: true},
		{st: EpisodeStats{PreemptCycles: 2, ResumeCycles: 5, SavedBytes: 10, Victims: 4,
			DrainCycles: 2, SaveCycles: 0, RestoreCycles: 3, ReplayCycles: 2}, ok: true},
	}
	st, err := foldEpisodes("VA", preempt.Baseline, eps)
	if err != nil {
		t.Fatal(err)
	}
	// (1+2)/2 rounds to 2 (truncation gave 1); (4+5)/2 rounds to 5;
	// (9+10)/2 rounds to 10; victims (3+4)/2 rounds to 4.
	if st.PreemptCycles != 2 || st.ResumeCycles != 5 || st.SavedBytes != 10 || st.Victims != 4 {
		t.Errorf("fold = %+v, want round-half-up averages 2/5/10/4", st)
	}
	if st.DrainCycles != 2 || st.RestoreCycles != 3 || st.ReplayCycles != 2 {
		t.Errorf("phase fold = %+v, want 2/0/3/2", st)
	}
}

// TestFoldEpisodesExactAverage: rounding must not perturb exact means.
func TestFoldEpisodesExactAverage(t *testing.T) {
	eps := []episodeResult{
		{st: EpisodeStats{PreemptCycles: 10, Victims: 2}, ok: true},
		{st: EpisodeStats{PreemptCycles: 20, Victims: 2}, ok: true},
	}
	st, err := foldEpisodes("VA", preempt.Baseline, eps)
	if err != nil {
		t.Fatal(err)
	}
	if st.PreemptCycles != 15 || st.Victims != 2 {
		t.Errorf("fold = %+v, want exact 15/2", st)
	}
}
