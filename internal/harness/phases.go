package harness

import (
	"fmt"
	"strings"

	"ctxback/internal/preempt"
)

// PhaseRow is one kernel's per-technique phase decomposition: Stats[kj]
// is the sample-averaged episode under kinds[kj] as passed to
// PhaseBreakdown.
type PhaseRow struct {
	Abbrev string
	Stats  []EpisodeStats
}

// PhaseBreakdown measures (or reuses, via the matrix memoization) every
// (kernel, kind) episode average and returns it as per-kernel rows for
// the phase report. Called after MeasureDynamic on the same Runner with
// the same kinds, it costs nothing: the matrix is already cached.
func (r *Runner) PhaseBreakdown(kinds []preempt.Kind) ([]PhaseRow, error) {
	avg, err := r.measureMatrix(kinds)
	if err != nil {
		return nil, err
	}
	rows := make([]PhaseRow, len(r.prep))
	for ki := range r.prep {
		rows[ki] = PhaseRow{Abbrev: r.prep[ki].p.wl.Abbrev, Stats: avg[ki]}
	}
	return rows, nil
}

// RenderPhases formats the per-episode phase breakdown: one line per
// (kernel, technique) with the four phases and the two headline
// latencies they decompose. Per single episode the sums reconcile
// exactly; these lines are sample averages, so each pair reconciles to
// within integer-division rounding.
func RenderPhases(kinds []preempt.Kind, rows []PhaseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Episode phase breakdown (cycles, averaged over sample points)\n")
	fmt.Fprintf(&b, "%-6s %-18s %9s %9s %9s %9s | %9s %9s\n",
		"Kernel", "Technique", "drain", "save", "restore", "replay", "preempt", "resume")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 88))
	for _, row := range rows {
		for kj, k := range kinds {
			st := row.Stats[kj]
			fmt.Fprintf(&b, "%-6s %-18s %9d %9d %9d %9d | %9d %9d\n",
				row.Abbrev, k.String(), st.DrainCycles, st.SaveCycles,
				st.RestoreCycles, st.ReplayCycles, st.PreemptCycles, st.ResumeCycles)
		}
	}
	return b.String()
}
