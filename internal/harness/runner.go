package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
)

// Runner is the parallel evaluation engine behind the experiments. It
// owns two responsibilities the plain Options functions cannot:
//
//   - Golden-run memoization: prepare() (grid sizing + uninterrupted
//     golden simulation) is computed once per registry kernel and shared
//     read-only by every experiment on the same Runner, so an -all sweep
//     no longer re-simulates each golden run per figure.
//
//   - Episode scheduling: every (kernel, technique, sample) episode is
//     an independent deterministic simulation on its own Device, so the
//     Runner fans them out to a worker pool and folds the results back
//     in the exact order the serial path used. Sums over int64 cycle
//     counts are order-independent, and per-cell folds walk samples in
//     index order, so reported numbers are bit-identical to Parallelism
//     1 (covered by TestParallelDeterminism).
//
// Workloads are safe to share across concurrent Devices: factories
// capture their inputs and golden outputs at construction, and
// Init/WarpSetup/Verify only read them while writing per-episode device
// state. Technique compilation behind preempt.New is memoized per
// program with sync.Map (see internal/preempt/cache.go).
type Runner struct {
	o    Options
	prep []prepEntry // one slot per kernels.Registry() index

	// Matrix memoization: measureMatrix results keyed by the kind list's
	// string form. Episodes are deterministic, so a repeated sweep (e.g.
	// Table I followed by the phase breakdown over the same kinds) reuses
	// the measured matrix instead of re-simulating every episode. Each key
	// is computed exactly once (single-flight): concurrent callers that
	// miss together block on the same entry's sync.Once instead of
	// simulating the full matrix in parallel. Errors are memoized too —
	// episodes are deterministic, so a retry would fail identically.
	mmu    sync.Mutex
	mcache map[string]*matrixEntry

	// matrixComputes counts actual matrix simulations (not cache hits);
	// the single-flight test asserts one compute per key. Atomic because
	// distinct keys may compute concurrently.
	matrixComputes atomic.Int64
}

// matrixEntry is one single-flight matrix computation.
type matrixEntry struct {
	once sync.Once
	avg  [][]EpisodeStats
	err  error
}

type prepEntry struct {
	once sync.Once
	p    *prepared
	err  error
}

// NewRunner builds a Runner over the full kernel registry.
func NewRunner(o Options) *Runner {
	return &Runner{
		o:      o,
		prep:   make([]prepEntry, len(kernels.Registry())),
		mcache: make(map[string]*matrixEntry),
	}
}

// Options returns the configuration the Runner was built with.
func (r *Runner) Options() Options { return r.o }

// procs resolves Options.Parallelism: 0 means GOMAXPROCS, 1 is the
// legacy serial path, n>1 is an explicit worker count.
func (o *Options) procs() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// preparedFor returns the memoized prepared workload for registry index
// i. Concurrent callers block on the same sync.Once, so each golden run
// is simulated exactly once per Runner.
func (r *Runner) preparedFor(i int) (*prepared, error) {
	e := &r.prep[i]
	e.once.Do(func() {
		e.p, e.err = r.o.prepare(kernels.Registry()[i])
	})
	return e.p, e.err
}

// safeJob runs job(i) converting a panic into an error: a crashing
// episode must surface as a failure, never fold into results as a
// zero-valued sample (and a panic on a pool goroutine must not kill the
// process before the fold can notice).
func safeJob(job func(i int) error, i int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("harness: job %d panicked: %v\n%s", i, p, debug.Stack())
		}
	}()
	return job(i)
}

// runJobs executes jobs 0..n-1 across the worker pool and returns the
// first error in job-index order (not completion order), so failures are
// as deterministic as the results. With one worker it degenerates to the
// legacy in-order loop. Panics inside jobs are converted to errors.
func (r *Runner) runJobs(n int, job func(i int) error) error {
	procs := r.o.procs()
	if procs > n {
		procs = n
	}
	if procs <= 1 {
		for i := 0; i < n; i++ {
			if err := safeJob(job, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = safeJob(job, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prepareAll forces every registry kernel's prepared workload, in
// parallel. Experiments call this as their first phase so the episode
// phase never blocks a worker on a golden run.
func (r *Runner) prepareAll() error {
	return r.runJobs(len(r.prep), func(i int) error {
		_, err := r.preparedFor(i)
		return err
	})
}

// episodeResult is one measured (kernel, technique, sample) episode.
type episodeResult struct {
	st  EpisodeStats
	ok  bool
	err error
}

// divRound divides non-negative sum by n rounding half up. Truncating
// division biased every averaged stat downward by up to one cycle/byte;
// rounding keeps the average within half a unit of the true mean.
func divRound(sum, n int64) int64 { return (sum + n/2) / n }

// foldEpisodes averages the episodes that hit a running SM, walking them
// in sample order. Both the serial measureAvg path and the parallel
// matrix fold go through here, so the two paths cannot diverge.
func foldEpisodes(abbrev string, kind preempt.Kind, eps []episodeResult) (EpisodeStats, error) {
	var sum EpisodeStats
	var count int64
	for _, e := range eps {
		if e.err != nil {
			return EpisodeStats{}, e.err
		}
		if !e.ok {
			continue
		}
		sum.PreemptCycles += e.st.PreemptCycles
		sum.ResumeCycles += e.st.ResumeCycles
		sum.SavedBytes += e.st.SavedBytes
		sum.Victims += e.st.Victims
		sum.DrainCycles += e.st.DrainCycles
		sum.SaveCycles += e.st.SaveCycles
		sum.RestoreCycles += e.st.RestoreCycles
		sum.ReplayCycles += e.st.ReplayCycles
		count++
	}
	if count == 0 {
		return EpisodeStats{}, fmt.Errorf("%s/%v: no sample point hit a running SM", abbrev, kind)
	}
	sum.PreemptCycles = divRound(sum.PreemptCycles, count)
	sum.ResumeCycles = divRound(sum.ResumeCycles, count)
	sum.SavedBytes = divRound(sum.SavedBytes, count)
	sum.Victims = divRound(sum.Victims, count)
	sum.DrainCycles = divRound(sum.DrainCycles, count)
	sum.SaveCycles = divRound(sum.SaveCycles, count)
	sum.RestoreCycles = divRound(sum.RestoreCycles, count)
	sum.ReplayCycles = divRound(sum.ReplayCycles, count)
	return sum, nil
}

// measureMatrix measures every (registry kernel, kind, sample) episode
// across the worker pool and folds each cell to its sample average.
// avg[ki][kj] corresponds to Registry()[ki] under kinds[kj]. Episode
// errors are reported in the serial path's order: cells in (kernel,
// kind) order, samples in index order within a cell.
func (r *Runner) measureMatrix(kinds []preempt.Kind) ([][]EpisodeStats, error) {
	key := fmt.Sprint(kinds)
	r.mmu.Lock()
	e, ok := r.mcache[key]
	if !ok {
		e = &matrixEntry{}
		r.mcache[key] = e
	}
	r.mmu.Unlock()
	e.once.Do(func() {
		e.avg, e.err = r.matrixFor(kinds)
	})
	return e.avg, e.err
}

// computeMatrix simulates the full (kernel, kind, sample) episode matrix.
// Only measureMatrix calls it, under the per-key single-flight entry.
func (r *Runner) computeMatrix(kinds []preempt.Kind) (avg [][]EpisodeStats, err error) {
	if err := r.prepareAll(); err != nil {
		return nil, err
	}
	nk := len(r.prep)
	nt := len(kinds)
	ns := r.o.Samples
	if ns < 1 {
		ns = 1 // samplePoints clamps the same way
	}
	// Sample points are fixed per kernel; compute (and log shortfalls)
	// once here rather than per job. A short golden run can yield fewer
	// than ns distinct points — the missing slots stay zero-valued
	// (ok=false) and the fold skips them.
	ptsByKernel := make([][]int64, nk)
	for ki := range ptsByKernel {
		p := r.prep[ki].p
		ptsByKernel[ki] = samplePoints(p.goldenCycles, r.o.Samples)
		if got := len(ptsByKernel[ki]); got < ns {
			r.o.logf("%s: golden run of %d cycles yields only %d distinct sample points (want %d)",
				p.wl.Abbrev, p.goldenCycles, got, ns)
		}
	}
	results := make([]episodeResult, nk*nt*ns)
	// Episode errors are stashed in results and surface via foldEpisodes
	// in the serial path's order — but runJobs' own error (a panicking
	// worker) must not be discarded: a crashed job left its slot
	// zero-valued and the fold would silently average it as a miss.
	if err := r.runJobs(len(results), func(f int) error {
		ki := f / (nt * ns)
		kj := (f / ns) % nt
		si := f % ns
		pts := ptsByKernel[ki]
		if si >= len(pts) {
			return nil // collapsed sample point; the fold skips this slot
		}
		st, ok, err := r.o.measure(r.prep[ki].p, kinds[kj], pts[si])
		results[f] = episodeResult{st: st, ok: ok, err: err}
		return nil
	}); err != nil {
		return nil, err
	}
	avg = make([][]EpisodeStats, nk)
	for ki := 0; ki < nk; ki++ {
		avg[ki] = make([]EpisodeStats, nt)
		for kj := 0; kj < nt; kj++ {
			cell := results[(ki*nt+kj)*ns : (ki*nt+kj+1)*ns]
			st, err := foldEpisodes(r.prep[ki].p.wl.Abbrev, kinds[kj], cell)
			if err != nil {
				return nil, err
			}
			avg[ki][kj] = st
		}
	}
	return avg, nil
}
