package harness

import (
	"fmt"
	"strings"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

// ContentionRow is one point of the switch-engine contention sweep: the
// slowest per-SM switch when n SMs are preempted at the same instant.
type ContentionRow struct {
	PreemptedSMs int
	WorstUs      float64 // worst per-SM preemption latency
	BestUs       float64
}

// ContentionSweep quantifies how context switches contend for the shared
// switch path (§V-A observes switch time "is affected by the bandwidth
// usage of other thread blocks"): preempting several SMs simultaneously
// — as a high-priority multi-block kernel would — serializes their
// context traffic, so the worst-case waiting time grows with the number
// of victims. CTXBack's smaller contexts shrink both ends of the range.
func ContentionSweep(o Options, abbrev string) ([]ContentionRow, error) {
	var rows []ContentionRow
	for n := 1; n <= o.Cfg.NumSMs; n++ {
		row, err := contentionPoint(o, abbrev, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func contentionPoint(o Options, abbrev string, preemptSMs int) (ContentionRow, error) {
	params := o.Params
	params.NumBlocks = 4 * o.Cfg.NumSMs
	wl, err := kernels.ByAbbrev(abbrev, params)
	if err != nil {
		return ContentionRow{}, err
	}
	tech, err := preempt.New(preempt.Baseline, wl.Prog)
	if err != nil {
		return ContentionRow{}, err
	}
	d, err := o.newDevice()
	if err != nil {
		return ContentionRow{}, err
	}
	d.AttachRuntime(tech)
	if _, err := wl.Launch(d); err != nil {
		return ContentionRow{}, err
	}
	if err := d.RunToCycle(2001, o.MaxCycles); err != nil {
		return ContentionRow{}, err
	}
	var eps []*sim.Episode
	for sm := 0; sm < preemptSMs; sm++ {
		ep, err := d.Preempt(sm, tech)
		if err != nil {
			return ContentionRow{}, err
		}
		eps = append(eps, ep)
	}
	allSaved := func() bool {
		for _, ep := range eps {
			if !ep.Saved() {
				return false
			}
		}
		return true
	}
	if err := d.RunUntil(allSaved, o.MaxCycles); err != nil {
		return ContentionRow{}, err
	}
	row := ContentionRow{PreemptedSMs: preemptSMs, BestUs: 1e18}
	for _, ep := range eps {
		us := o.Cfg.CyclesToMicros(ep.PreemptLatencyCycles())
		if us > row.WorstUs {
			row.WorstUs = us
		}
		if us < row.BestUs {
			row.BestUs = us
		}
	}
	// Resume and drain so the run ends clean (also exercises multi-SM
	// resume through the shared path).
	for _, ep := range eps {
		if err := d.Resume(ep); err != nil {
			return ContentionRow{}, err
		}
	}
	if err := d.RunUntil(func() bool {
		for _, ep := range eps {
			if !ep.Finished() {
				return false
			}
		}
		return true
	}, o.MaxCycles); err != nil {
		return ContentionRow{}, err
	}
	return row, nil
}

// RenderContention formats the sweep.
func RenderContention(abbrev string, rows []ContentionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Switch-path contention: simultaneous BASELINE preemptions of %s\n", abbrev)
	fmt.Fprintf(&b, "%-14s %16s %16s\n", "preempted SMs", "fastest SM us", "slowest SM us")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 48))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %16.2f %16.2f\n", r.PreemptedSMs, r.BestUs, r.WorstUs)
	}
	return b.String()
}
