package harness

import (
	"fmt"

	"ctxback/internal/artifact"
	"ctxback/internal/isa"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
)

// Artifact-store integration: with a process-wide store configured
// (-cache-dir on the CLIs), the two expensive per-process memoizations —
// prepared workloads (occupancy fill + full golden run) and the episode
// matrix — are also content-addressed on disk and shared across
// processes. Without a store every path below is byte-for-byte the
// pre-store one.

// Artifact kinds written by this package.
const (
	kindPrepared = "harness/prepared"
	kindMatrix   = "harness/matrix"
)

// keyInputs folds every Options field that can change a measured result
// into k: the full device model, the workload scale, and the run limits.
// Parallelism and Shards are excluded by design — the procs-diff and
// shards-diff gates prove results are independent of both — as are the
// observability hooks (Metrics, Logf), whose zero-overhead contract the
// evalcheck gate pins. The key-coverage regression test walks every
// included field.
func (o *Options) keyInputs(k *artifact.Key) {
	c := o.Cfg
	k.Int("sms", c.NumSMs).
		Int("maxwarps", c.MaxWarpsPerSM).
		Int("vregfile", c.VRegFileBytes).
		Int("sregfile", c.SRegFileBytes).
		Int("ldsper", c.LDSBytesPerSM).
		F64("clock", c.ClockGHz).
		Int("memlat", c.MemLatency).
		F64("membw", c.MemBytesPerCycle).
		F64("ctxbw", c.CtxBytesPerCycle).
		F64("ctxrestore", c.CtxRestoreFactor).
		Int("ldslat", c.LDSLatency).
		F64("ldsbw", c.LDSBytesPerCycle).
		Int("gmem", c.GlobalMemBytes)
	p := o.Params
	k.Int("blocks", p.NumBlocks).
		Int("warps", p.WarpsPerBlock).
		Int("iters", p.ItersPerWarp).
		I64("seed", p.Seed).
		Int("membase", p.MemBase)
	k.Bool("fill", o.FillDevice).
		Bool("verify", o.Verify).
		I64("maxcycles", o.MaxCycles)
}

// prepare sizes the workload grid and measures the uninterrupted run,
// loading the fill size and golden cycle count from the artifact store
// when possible — a warm hit skips the occupancy probe and the full
// golden simulation, leaving only the cheap host-side construction.
func (o *Options) prepare(factory kernels.Factory) (*prepared, error) {
	st := artifact.Default()
	if st == nil {
		return o.prepareCold(factory)
	}
	base, err := factory(o.Params)
	if err != nil {
		return nil, err
	}
	k := artifact.NewKey(kindPrepared).Bytes("prog", isa.EncodeProgram(base.Prog))
	o.keyInputs(k)
	v, err := st.Do(k,
		func(payload []byte) (any, error) {
			r := artifact.NewReader(payload)
			blocks := r.Int()
			golden := r.I64()
			if err := r.Close(); err != nil {
				return nil, err
			}
			p := o.Params
			p.NumBlocks = blocks
			wl, err := factory(p)
			if err != nil {
				return nil, err
			}
			return &prepared{wl: wl, goldenCycles: golden}, nil
		},
		func() (any, []byte, error) {
			pr, err := o.prepareCold(factory)
			if err != nil {
				return nil, nil, err
			}
			w := artifact.NewWriter()
			w.Int(pr.wl.NumBlocks)
			w.I64(pr.goldenCycles)
			return pr, w.Data(), nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*prepared), nil
}

// matrixFor runs measureMatrix's compute through the artifact store:
// the full (kernel, kind, sample) episode matrix is keyed by every
// prepared program's canonical bytes plus the options above, so a warm
// sweep deserializes its folded stats instead of re-simulating every
// episode.
func (r *Runner) matrixFor(kinds []preempt.Kind) ([][]EpisodeStats, error) {
	st := artifact.Default()
	if st == nil {
		r.matrixComputes.Add(1)
		return r.computeMatrix(kinds)
	}
	// The key covers the prepared programs; preparing is itself
	// store-backed and cheap when warm.
	if err := r.prepareAll(); err != nil {
		return nil, err
	}
	k := artifact.NewKey(kindMatrix)
	r.o.keyInputs(k)
	k.Int("samples", r.o.Samples)
	k.Int("nkinds", len(kinds))
	for _, kd := range kinds {
		k.Int("kind", int(kd))
	}
	for i := range r.prep {
		k.Bytes("prog", isa.EncodeProgram(r.prep[i].p.wl.Prog))
	}
	nk, nt := len(r.prep), len(kinds)
	v, err := st.Do(k,
		func(payload []byte) (any, error) { return decodeMatrix(payload, nk, nt) },
		func() (any, []byte, error) {
			r.matrixComputes.Add(1)
			avg, err := r.computeMatrix(kinds)
			if err != nil {
				return nil, nil, err
			}
			return avg, encodeMatrix(avg), nil
		})
	if err != nil {
		return nil, err
	}
	return v.([][]EpisodeStats), nil
}

func encodeMatrix(avg [][]EpisodeStats) []byte {
	w := artifact.NewWriter()
	w.Int(len(avg))
	for _, row := range avg {
		w.Int(len(row))
		for _, st := range row {
			w.I64(st.PreemptCycles)
			w.I64(st.ResumeCycles)
			w.I64(st.SavedBytes)
			w.I64(st.Victims)
			w.I64(st.DrainCycles)
			w.I64(st.SaveCycles)
			w.I64(st.RestoreCycles)
			w.I64(st.ReplayCycles)
		}
	}
	return w.Data()
}

func decodeMatrix(payload []byte, nk, nt int) ([][]EpisodeStats, error) {
	r := artifact.NewReader(payload)
	rows := r.Len()
	if rows != nk {
		return nil, fmt.Errorf("harness: decode matrix: %d rows (want %d)", rows, nk)
	}
	avg := make([][]EpisodeStats, rows)
	for i := range avg {
		cols := r.Len()
		if cols != nt {
			return nil, fmt.Errorf("harness: decode matrix: row %d has %d cells (want %d)", i, cols, nt)
		}
		avg[i] = make([]EpisodeStats, cols)
		for j := range avg[i] {
			st := &avg[i][j]
			st.PreemptCycles = r.I64()
			st.ResumeCycles = r.I64()
			st.SavedBytes = r.I64()
			st.Victims = r.I64()
			st.DrainCycles = r.I64()
			st.SaveCycles = r.I64()
			st.RestoreCycles = r.I64()
			st.ReplayCycles = r.I64()
		}
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return avg, nil
}
