package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

// diffRun is one device being driven in lockstep with its twin under the
// other scheduler: the same workload, technique, and orchestration, with
// a one-slot trace ring capturing each executed instruction.
type diffRun struct {
	wl     *kernels.Workload
	d      *sim.Device
	tr     *sim.Tracer
	tech   preempt.Technique
	launch *sim.Launch
	ep     *sim.Episode
}

func newDiffRun(t *testing.T, cfg sim.Config, abbrev string, kind preempt.Kind, scan bool) *diffRun {
	t.Helper()
	wl, err := kernels.ByAbbrev(abbrev, kernels.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	d, err := sim.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scan {
		d.UseReferenceScheduler()
	}
	tech, err := preempt.New(kind, wl.Prog)
	if err != nil {
		t.Skipf("technique unavailable: %v", err)
	}
	d.AttachRuntime(tech)
	tr := d.EnableTrace(1)
	launch, err := wl.Launch(d)
	if err != nil {
		t.Fatal(err)
	}
	return &diffRun{wl: wl, d: d, tr: tr, tech: tech, launch: launch}
}

func (r *diffRun) lastEvent() sim.TraceEvent {
	evs := r.tr.Events()
	if len(evs) == 0 {
		return sim.TraceEvent{}
	}
	return evs[len(evs)-1]
}

// lockstep steps both devices together until stop reports true on both,
// comparing every single issued instruction (cycle, SM, warp, mode, PC,
// disassembly), the clock, and the instruction count. Any divergence —
// including one device stopping, erroring, or stalling before the
// other — fails the test.
func lockstep(t *testing.T, q, s *diffRun, phase string, stop func(r *diffRun) bool) {
	t.Helper()
	const maxSteps = 5_000_000
	for step := 0; ; step++ {
		if step > maxSteps {
			t.Fatalf("%s: no convergence after %d steps", phase, maxSteps)
		}
		stopQ, stopS := stop(q), stop(s)
		if stopQ != stopS {
			t.Fatalf("%s: stop condition diverged at step %d: queue=%v scan=%v (cycles %d vs %d)",
				phase, step, stopQ, stopS, q.d.Now(), s.d.Now())
		}
		if stopQ {
			return
		}
		progQ, errQ := q.d.Step()
		progS, errS := s.d.Step()
		switch {
		case (errQ == nil) != (errS == nil):
			t.Fatalf("%s: error diverged at step %d: queue=%v scan=%v", phase, step, errQ, errS)
		case errQ != nil:
			if errQ.Error() != errS.Error() {
				t.Fatalf("%s: error text diverged at step %d:\n  queue: %v\n  scan:  %v", phase, step, errQ, errS)
			}
			t.Fatalf("%s: both schedulers errored (in lockstep, but unexpectedly): %v", phase, errQ)
		case progQ != progS:
			t.Fatalf("%s: progress diverged at step %d: queue=%v scan=%v", phase, step, progQ, progS)
		case !progQ:
			t.Fatalf("%s: both schedulers stalled before the stop condition at step %d (cycle %d)",
				phase, step, q.d.Now())
		}
		if evQ, evS := q.lastEvent(), s.lastEvent(); evQ != evS {
			t.Fatalf("%s: issued instruction diverged at step %d:\n  queue: %+v\n  scan:  %+v",
				phase, step, evQ, evS)
		}
		if q.d.Now() != s.d.Now() {
			t.Fatalf("%s: clocks diverged at step %d: queue=%d scan=%d", phase, step, q.d.Now(), s.d.Now())
		}
		if qi, si := q.d.Stats.Instructions, s.d.Stats.Instructions; qi != si {
			t.Fatalf("%s: instruction counts diverged at step %d: queue=%d scan=%d", phase, step, qi, si)
		}
	}
}

// TestReadyQueueMatchesScan pins the event-driven ready-queue scheduler
// to the retained linear-scan reference instruction-by-instruction:
// every Table I kernel under every preemption technique runs a full
// preemption episode (signal at a seeded-random cycle, save, resume,
// replay, completion) on two lockstepped devices, and every issued
// instruction, clock value, episode phase split, and the final
// architectural state must match exactly.
func TestReadyQueueMatchesScan(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	cfg := sim.TestConfig()
	wls, err := kernels.All(kernels.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20260805))
	for _, wl := range wls {
		for _, kind := range preempt.ExtendedKinds() {
			signal := 1 + rng.Int63n(3000)
			t.Run(fmt.Sprintf("%s/%s", wl.Abbrev, kind), func(t *testing.T) {
				diffEpisode(t, cfg, wl.Abbrev, kind, signal)
			})
		}
	}
}

func diffEpisode(t *testing.T, cfg sim.Config, abbrev string, kind preempt.Kind, signal int64) {
	t.Helper()
	q := newDiffRun(t, cfg, abbrev, kind, false)
	s := newDiffRun(t, cfg, abbrev, kind, true)

	// Phase 1: run to the preemption signal.
	lockstep(t, q, s, "to-signal", func(r *diffRun) bool {
		return r.d.Now() >= signal || r.launch.Done()
	})

	if doneQ, doneS := q.launch.Done(), s.launch.Done(); doneQ != doneS {
		t.Fatalf("launch completion diverged at signal: queue=%v scan=%v", doneQ, doneS)
	} else if !doneQ {
		// Phase 2: preempt SM 0 on both; the drained race must resolve
		// identically.
		epQ, errQ := q.d.Preempt(0, q.tech)
		epS, errS := s.d.Preempt(0, s.tech)
		if (errQ == nil) != (errS == nil) ||
			(errQ != nil && errors.Is(errQ, sim.ErrDrained) != errors.Is(errS, sim.ErrDrained)) {
			t.Fatalf("Preempt outcome diverged: queue=%v scan=%v", errQ, errS)
		}
		if errQ == nil {
			q.ep, s.ep = epQ, epS
			if lq, ls := len(epQ.Victims), len(epS.Victims); lq != ls {
				t.Fatalf("victim counts diverged: queue=%d scan=%d", lq, ls)
			}
			lockstep(t, q, s, "save", func(r *diffRun) bool { return r.ep.Saved() })
			if errQ, errS := q.d.Resume(epQ), s.d.Resume(epS); (errQ == nil) != (errS == nil) {
				t.Fatalf("Resume outcome diverged: queue=%v scan=%v", errQ, errS)
			} else if errQ != nil {
				t.Fatalf("Resume failed on both: %v", errQ)
			}
			lockstep(t, q, s, "resume", func(r *diffRun) bool { return r.ep.Finished() })
			phQ, phS := epQ.Phases(), epS.Phases()
			if phQ != phS {
				t.Fatalf("episode phases diverged:\n  queue: %+v\n  scan:  %+v", phQ, phS)
			}
			if a, b := epQ.PreemptLatencyCycles(), epS.PreemptLatencyCycles(); a != b {
				t.Fatalf("preempt latency diverged: queue=%d scan=%d", a, b)
			}
			if a, b := epQ.SavedBytes(), epS.SavedBytes(); a != b {
				t.Fatalf("saved bytes diverged: queue=%d scan=%d", a, b)
			}
		}
	}

	// Phase 3: run to completion.
	lockstep(t, q, s, "completion", func(r *diffRun) bool { return r.launch.Done() })

	// Final state: identical counters, memory image, and verified output.
	if q.d.Stats != s.d.Stats {
		t.Fatalf("final device stats diverged:\n  queue: %+v\n  scan:  %+v", q.d.Stats, s.d.Stats)
	}
	for i := range q.d.Mem {
		if q.d.Mem[i] != s.d.Mem[i] {
			t.Fatalf("device memory diverged at word %d: queue=%#x scan=%#x", i, q.d.Mem[i], s.d.Mem[i])
		}
	}
	if err := q.wl.Verify(q.d); err != nil {
		t.Fatalf("queue-scheduled output failed verification: %v", err)
	}
	if err := s.wl.Verify(s.d); err != nil {
		t.Fatalf("scan-scheduled output failed verification: %v", err)
	}
}
