package harness

import (
	"errors"
	"fmt"

	"ctxback/internal/faults"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/snapshot"
)

// Snapshot-corruption chaos (mode "snapshot"): a parked preemption
// episode is checkpointed with the whole device, the checkpoint's
// SPECULATIVE copy is corrupted per the injector's draw (truncation,
// bit flip, stale epoch), and the job must still finish with exact
// output on a restored device. Detection is layered like the live-fault
// modes:
//
//   - truncations, stale epochs and most bit flips fail the speculative
//     decode's section checksums up front; the restore falls back to
//     the authoritative synchronous image in-episode.
//   - a bit flip inside the bulk memory section (whose checksum the
//     speculative path defers) restores successfully and is only caught
//     AFTER replay — by the deferred checksum, the resume-integrity
//     oracle, or an execution trap — forcing a synchronous re-restore.
//
// Only when the authoritative image itself cannot be restored does the
// episode degrade through the BASELINE re-run ladder. Silent-wrong
// remains the outcome that must never occur.

// chaosSnapEpoch is the epoch every mode-"snapshot" checkpoint carries;
// a stale-epoch fault re-encodes the speculative copy at epoch-1.
const chaosSnapEpoch = 2

// corruptSpec derives the corrupted speculative copy for one drawn
// snapshot fault. The authoritative image is never touched — snapshot
// faults model loss on the speculative streaming path, so every class
// is recoverable by design; the sweep proves the recovery actually
// engages.
func corruptSpec(sf faults.SnapFault, raw uint64, snap *snapshot.Snapshot, enc []byte) []byte {
	switch sf {
	case faults.SnapTruncate:
		return enc[:raw%uint64(len(enc))]
	case faults.SnapFlip:
		bad := append([]byte(nil), enc...)
		bit := raw % uint64(8*len(bad))
		bad[bit/8] ^= 1 << (bit % 8)
		return bad
	case faults.SnapStale:
		stale := *snap
		stale.Epoch = chaosSnapEpoch - 1
		return snapshot.Encode(&stale)
	}
	return enc
}

// snapDetected extends detectedFault with the budget guard: replaying
// against corrupted memory could in principle wander past the cycle
// budget, which the sweep must classify as detection, not abort on.
func snapDetected(err error) bool {
	var be *sim.BudgetError
	return detectedFault(err) || errors.As(err, &be)
}

// replayRestored finishes the restored episode: resume the single
// parked episode under the oracle, run the device dry, then settle the
// deferred validation. The first return is in-band detection (nil if
// the replay is trustworthy), the second an infrastructure failure.
func (r *Runner) replayRestored(res *snapshot.Restored, checker func(*sim.Warp) error) (error, error) {
	d := res.Device
	d.SetResumeChecker(checker)
	if len(res.Index.Episodes) != 1 {
		return nil, fmt.Errorf("snapshot chaos: restored %d episodes, want 1", len(res.Index.Episodes))
	}
	ep := res.Index.Episodes[0]
	for _, phase := range []func() error{
		func() error { return d.Resume(ep) },
		func() error { return d.RunUntil(ep.Finished, r.o.MaxCycles) },
		func() error { return d.Run(r.o.MaxCycles) },
	} {
		if err := phase(); err != nil {
			if snapDetected(err) {
				return err, nil
			}
			return nil, err
		}
	}
	if err := res.Validate(); err != nil {
		return err, nil
	}
	return nil, nil
}

// runSnapshotCell classifies one snapshot-corruption cell end to end.
func (r *Runner) runSnapshotCell(co ChaosOptions, p *prepared, cell *ChaosCell,
	fcfg faults.Config, checker func(*sim.Warp) error) error {
	signal := int64(co.SignalFrac * float64(p.goldenCycles))
	tech, err := preempt.New(cell.Kind, p.wl.Prog)
	if err != nil {
		return fmt.Errorf("%s/%v: %w", p.wl.Abbrev, cell.Kind, err)
	}
	d, err := r.o.newDevice()
	if err != nil {
		return err
	}
	d.AttachRuntime(tech)
	if _, err := p.wl.Launch(d); err != nil {
		return err
	}
	if err := d.RunToCycle(signal, r.o.MaxCycles); err != nil {
		return err
	}
	ep, err := d.Preempt(0, tech)
	if errors.Is(err, sim.ErrDrained) {
		// Nothing to checkpoint mid-episode; the uninterrupted remainder
		// must still verify.
		cell.Skipped = true
		if err := d.Run(r.o.MaxCycles); err != nil {
			return err
		}
		if p.wl.Verify(d) != nil {
			cell.Outcome = ChaosSilentWrong
		}
		return nil
	}
	if err != nil {
		return err
	}
	if err := d.RunUntil(ep.Saved, r.o.MaxCycles); err != nil {
		return err
	}

	snap, enc := snapshot.Capture(d, chaosSnapEpoch)
	inj, err := faults.NewInjector(fcfg)
	if err != nil {
		return err
	}
	sf, raw := inj.SnapshotFault(0)
	cell.SnapFault = sf.String()
	spec := corruptSpec(sf, raw, snap, enc)

	restoreOnce := func(specData []byte) (*snapshot.Restored, error) {
		t2, err := preempt.New(cell.Kind, p.wl.Prog)
		if err != nil {
			return nil, err
		}
		return snapshot.Restore(nil, specData, enc, chaosSnapEpoch, t2, p.wl.Prog)
	}

	var (
		detected  error // unrecoverable in-episode: degrade to BASELINE
		recovered bool  // a snapshot fault was absorbed in-episode
		final     *snapshot.Restored
	)
	res, err := restoreOnce(spec)
	if err != nil {
		detected = err // even the authoritative image failed
	} else {
		if res.Outcome.SyncFallback {
			recovered = true
			cell.Detected = res.Outcome.SpecError
		}
		det, infra := r.replayRestored(res, checker)
		if infra != nil {
			return infra
		}
		if det == nil {
			final = res
		} else {
			// The corruption slipped past the speculative decode and was
			// caught after replay: discard the suspect device and restore
			// synchronously from the authoritative image.
			recovered = true
			cell.Detected = det.Error()
			res2, err2 := restoreOnce(nil)
			if err2 != nil {
				detected = err2
			} else if det2, infra2 := r.replayRestored(res2, checker); infra2 != nil {
				return infra2
			} else if det2 != nil {
				detected = det2
			} else {
				final = res2
			}
		}
	}

	if detected != nil {
		cell.Detected = detected.Error()
		salted := fcfg
		salted.Seed = faults.DeriveSeed(fcfg.Seed, co.FallbackSalt)
		for _, fb := range []*faults.Config{&salted, nil} {
			cell.FallbackAttempts++
			fbRun, err := r.o.chaosEpisode(p, preempt.Baseline, signal, fb, nil, co.MaxSignalAttempts)
			if err != nil {
				return err
			}
			if fbRun.detected == nil && fbRun.verifyErr == nil {
				cell.Outcome = ChaosFallback
				return nil
			}
		}
		cell.Outcome = ChaosUnrecoverable
		return nil
	}
	switch {
	case p.wl.Verify(final.Device) != nil:
		cell.Outcome = ChaosSilentWrong
	case recovered:
		cell.Outcome = ChaosRecovered
	default:
		cell.Outcome = ChaosClean
	}
	return nil
}
