package isa

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Binary program encoding. The paper's runtime transfers kernel code and
// the dedicated preemption routines to device memory (§IV-A); this fixed
// 40-byte-per-instruction format is the concrete representation the
// simulator's host side uses for that transfer, and what the routine
// size/sharing statistics are computed from.
//
// Layout (little endian):
//
//	header:  magic "CTXB" | version u16 | nameLen u16 | name bytes |
//	         numVRegs u32 | numSRegs u32 | ldsBytes u32 | nInstr u32
//	instr:   op u16 | flags u8 | memSpace i8 |
//	         dst u32 | imm0 i32 | target i32 |
//	         3 x (kind u8, pad u8[3], payload u32)
const (
	encMagic       = "CTXB"
	encVersion     = 1
	InstrWordBytes = 40
)

const (
	flagNoOverflow = 1 << 0
)

func encodeReg(r Reg) uint32 { return uint32(r.Class)<<16 | uint32(r.Index) }

func decodeReg(v uint32) Reg {
	return Reg{Class: RegClass(v >> 16), Index: uint16(v & 0xFFFF)}
}

// EncodeProgram serializes p.
func EncodeProgram(p *Program) []byte {
	var b []byte
	b = append(b, encMagic...)
	b = binary.LittleEndian.AppendUint16(b, encVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Name)))
	b = append(b, p.Name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(p.NumVRegs))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.NumSRegs))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.LDSBytes))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Instrs)))
	for i := range p.Instrs {
		b = appendInstr(b, &p.Instrs[i])
	}
	return b
}

// EncodeRoutine serializes a bare instruction sequence (a dedicated
// preemption or resume routine). Used for transfer-size accounting.
func EncodeRoutine(instrs []Instruction) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(instrs)))
	for i := range instrs {
		b = appendInstr(b, &instrs[i])
	}
	return b
}

func appendInstr(b []byte, in *Instruction) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(in.Op))
	var flags uint8
	if in.NoOverflow {
		flags |= flagNoOverflow
	}
	b = append(b, flags, uint8(in.MemSpace))
	b = binary.LittleEndian.AppendUint32(b, encodeReg(in.Dst))
	b = binary.LittleEndian.AppendUint32(b, uint32(in.Imm0))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(in.Target)))
	for s := 0; s < MaxSrcs; s++ {
		b = append(b, uint8(in.Srcs[s].Kind), 0, 0, 0)
		payload := in.Srcs[s].Imm
		if in.Srcs[s].Kind == OperandReg {
			payload = encodeReg(in.Srcs[s].Reg)
		}
		b = binary.LittleEndian.AppendUint32(b, payload)
	}
	return b
}

// DecodeProgram parses an EncodeProgram buffer.
func DecodeProgram(data []byte) (*Program, error) {
	r := &reader{data: data}
	if magic := string(r.bytes(4)); magic != encMagic {
		return nil, fmt.Errorf("isa: bad magic %q", magic)
	}
	if v := r.u16(); v != encVersion {
		return nil, fmt.Errorf("isa: unsupported version %d", v)
	}
	nameLen := int(r.u16())
	name := string(r.bytes(nameLen))
	p := &Program{
		Name:     name,
		NumVRegs: int(r.u32()),
		NumSRegs: int(r.u32()),
		LDSBytes: int(r.u32()),
		Labels:   map[string]int{},
	}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("isa: implausible instruction count %d", n)
	}
	p.Instrs = make([]Instruction, n)
	for i := 0; i < n; i++ {
		if err := readInstr(r, &p.Instrs[i]); err != nil {
			return nil, fmt.Errorf("isa: instr %d: %w", i, err)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: decoded program invalid: %w", err)
	}
	return p, nil
}

func readInstr(r *reader, in *Instruction) error {
	op := Op(r.u16())
	if op == OpInvalid || op >= opCount {
		return fmt.Errorf("bad opcode %d", op)
	}
	in.Op = op
	flags := r.u8()
	in.NoOverflow = flags&flagNoOverflow != 0
	in.MemSpace = int16(int8(r.u8()))
	in.Dst = decodeReg(r.u32())
	in.Imm0 = int32(r.u32())
	in.Target = int(int32(r.u32()))
	for s := 0; s < MaxSrcs; s++ {
		kind := OperandKind(r.u8())
		r.bytes(3)
		payload := r.u32()
		switch kind {
		case OperandNone:
			in.Srcs[s] = Operand{}
		case OperandReg:
			in.Srcs[s] = Operand{Kind: OperandReg, Reg: decodeReg(payload)}
		case OperandImm:
			in.Srcs[s] = Operand{Kind: OperandImm, Imm: payload}
		default:
			return fmt.Errorf("bad operand kind %d", kind)
		}
	}
	return r.err
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = fmt.Errorf("isa: truncated at offset %d", r.off)
		}
		return make([]byte, n)
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8   { return r.bytes(1)[0] }
func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.bytes(2)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }

// DecodeRoutine parses an EncodeRoutine buffer back into a bare
// instruction sequence. Inverse of EncodeRoutine: device snapshots use
// the pair to round-trip the routine stream of a warp captured mid
// preemption or resume.
func DecodeRoutine(data []byte) ([]Instruction, error) {
	r := &reader{data: data}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("isa: implausible routine length %d", n)
	}
	instrs := make([]Instruction, n)
	for i := 0; i < n; i++ {
		if err := readInstr(r, &instrs[i]); err != nil {
			return nil, fmt.Errorf("isa: routine instr %d: %w", i, err)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("isa: %d trailing bytes after routine", len(data)-r.off)
	}
	return instrs, nil
}

// RoutineBytes returns the device-memory footprint of a routine when
// transferred (paper §IV-A's storage-cost accounting).
func RoutineBytes(instrs []Instruction) int { return 4 + len(instrs)*InstrWordBytes }

// FormatRoutine renders a routine for human inspection.
func FormatRoutine(instrs []Instruction) string {
	var b strings.Builder
	for i := range instrs {
		fmt.Fprintf(&b, "%4d:  %s\n", i, instrs[i].String())
	}
	return b.String()
}
