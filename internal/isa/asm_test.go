package isa

import (
	"math"
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	src := `
.kernel demo
.vregs 8
.sregs 16
.lds 256

  s_mov s0, 4          ; counter
loop:
  v_add v1, v1, s0
  v_gload v2, v3, 16
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  s_endpgm
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || p.NumVRegs != 8 || p.NumSRegs != 16 || p.LDSBytes != 256 {
		t.Errorf("header: %+v", p)
	}
	if p.Len() != 7 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Instrs[2].Op != VGLoad || p.Instrs[2].Imm0 != 16 {
		t.Errorf("gload = %s", p.Instrs[2].String())
	}
	if p.Instrs[5].Target != 1 {
		t.Errorf("branch target = %d, want 1", p.Instrs[5].Target)
	}
}

func TestAssembleFloatAndHexImmediates(t *testing.T) {
	src := `
.kernel imms
.vregs 4
.sregs 16
  v_mov v0, 1.5f
  v_mov v1, 0x10
  s_endpgm
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Instrs[0].Srcs[0].Imm; got != math.Float32bits(1.5) {
		t.Errorf("float imm = %#x", got)
	}
	if got := int32(p.Instrs[1].Srcs[0].Imm); got != 16 {
		t.Errorf("hex imm = %d", got)
	}
}

func TestAssembleSpecialRegsAndNoOvf(t *testing.T) {
	src := `
.kernel spec
.vregs 4
.sregs 16
  v_shl v0, v0, 2 !noovf
  s_getexec s1
  s_setexec s1
  s_endpgm
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Instrs[0].NoOverflow {
		t.Error("!noovf not parsed")
	}
	if p.Instrs[1].Op != SGetExec || p.Instrs[1].Dst != S(1) {
		t.Errorf("getexec = %s", p.Instrs[1].String())
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", ".vregs 1\n frobnicate v0\n s_endpgm", "unknown mnemonic"},
		{"unknown directive", ".bogus 3\n s_endpgm", "unknown directive"},
		{"bad register", ".vregs 1\n v_mov q7, 1\n s_endpgm", "bad"},
		{"missing operand", ".vregs 1\n v_add v0\n s_endpgm", "missing operand"},
		{"undefined label", ".vregs 1\n s_branch nowhere\n s_endpgm", "undefined label"},
		{"extra operand", ".vregs 1\n s_endpgm v0, v1", "extra operand"},
		{"duplicate label", "x:\nx:\n s_endpgm", "duplicate label"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestAssembleNumericPCPrefixIgnored(t *testing.T) {
	src := `
.kernel pcs
.vregs 2
.sregs 16
   0:  v_mov v0, 1
   1:  s_endpgm
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestAssembleAbsoluteTarget(t *testing.T) {
	src := ".vregs 1\n s_branch @1\n s_endpgm"
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Target != 1 {
		t.Errorf("target = %d", p.Instrs[0].Target)
	}
}
