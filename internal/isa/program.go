package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Program is an assembled kernel: a flat instruction sequence plus the
// static resource declaration the hardware allocator needs.
type Program struct {
	Name string
	// Instrs is the instruction stream; an instruction's index is its PC.
	Instrs []Instruction
	// NumVRegs / NumSRegs are the architectural register counts actually
	// used by the kernel (before allocation alignment).
	NumVRegs int
	NumSRegs int
	// LDSBytes is the shared-memory footprint per thread block.
	LDSBytes int
	// Labels maps label names to PCs (kept for disassembly/debugging).
	Labels map[string]int
}

// Allocation granularities on the modeled hardware (paper §V: AMD Radeon
// VII allocates vector registers in groups of 4 and scalar registers in
// groups of 16).
const (
	VRegAllocGranule = 4
	SRegAllocGranule = 16
)

func alignUp(n, g int) int {
	if n <= 0 {
		return 0
	}
	return (n + g - 1) / g * g
}

// AllocatedVRegs returns the vector registers actually reserved per warp
// (used count rounded up to the allocation granule).
func (p *Program) AllocatedVRegs() int { return alignUp(p.NumVRegs, VRegAllocGranule) }

// AllocatedSRegs returns the scalar registers actually reserved per warp.
func (p *Program) AllocatedSRegs() int { return alignUp(p.NumSRegs, SRegAllocGranule) }

// VRegContextBytes is the per-warp vector-register context, including
// alignment padding — what a liveness-blind context switch must move.
func (p *Program) VRegContextBytes() int { return p.AllocatedVRegs() * 4 * WarpSize }

// SRegContextBytes is the per-warp scalar-register context.
func (p *Program) SRegContextBytes() int { return p.AllocatedSRegs() * 4 }

// At returns the instruction at pc.
func (p *Program) At(pc int) *Instruction { return &p.Instrs[pc] }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// Validate performs static checks: operand classes match opcode
// expectations, register indices are within declared bounds, branch
// targets are in range, and the program ends in a terminator.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	for pc := range p.Instrs {
		if err := p.validateInstr(pc); err != nil {
			return err
		}
	}
	last := &p.Instrs[len(p.Instrs)-1]
	if !last.IsTerminator() {
		return fmt.Errorf("program %q: last instruction %q is not a terminator", p.Name, last)
	}
	return nil
}

func (p *Program) validateInstr(pc int) error {
	in := &p.Instrs[pc]
	info := in.Op.Info()
	fail := func(format string, args ...any) error {
		return fmt.Errorf("program %q pc %d (%s): %s", p.Name, pc, in, fmt.Sprintf(format, args...))
	}
	if in.Op == OpInvalid || info.Name == "" {
		return fail("invalid opcode")
	}
	if info.HasDst {
		if !in.Dst.Valid() {
			return fail("missing destination")
		}
		if info.DstVec && in.Dst.Class != RegVector {
			return fail("destination must be a vector register")
		}
		if !info.DstVec && in.Dst.Class == RegVector && in.Op != CtxLoadSpec {
			return fail("destination must be scalar")
		}
	} else if in.Dst.Valid() {
		return fail("unexpected destination")
	}
	for i := 0; i < info.NumSrc; i++ {
		if in.Srcs[i].Kind == OperandNone {
			return fail("missing source %d", i)
		}
	}
	for i := info.NumSrc; i < MaxSrcs; i++ {
		if in.Srcs[i].Kind != OperandNone {
			return fail("extra source %d", i)
		}
	}
	if err := p.checkRegBounds(in); err != nil {
		return fail("%v", err)
	}
	if info.HasTgt && in.Op != CtxSavePC && in.Op != CtxResume {
		if in.Target < 0 || in.Target >= len(p.Instrs) {
			return fail("branch target %d out of range", in.Target)
		}
	}
	// Scalar ALU may not read vector registers (vector values reach the
	// scalar file only via v_readlane).
	if info.Class == ClassScalarALU {
		for _, s := range in.SrcOperands() {
			if s.IsReg() && s.Reg.Class == RegVector && in.Op != VReadLane {
				return fail("scalar op reads vector register %s", s.Reg)
			}
		}
	}
	if in.Op == VReadLane || in.Op == VWriteLane {
		if in.Imm0 < 0 || in.Imm0 >= WarpSize {
			return fail("lane %d out of range", in.Imm0)
		}
	}
	return nil
}

func (p *Program) checkRegBounds(in *Instruction) error {
	check := func(r Reg) error {
		switch r.Class {
		case RegScalar:
			if int(r.Index) >= p.NumSRegs {
				return fmt.Errorf("scalar register %s exceeds declared count %d", r, p.NumSRegs)
			}
		case RegVector:
			if int(r.Index) >= p.NumVRegs {
				return fmt.Errorf("vector register %s exceeds declared count %d", r, p.NumVRegs)
			}
		case RegSpecial:
			if r.Index > SpecSCC {
				return fmt.Errorf("unknown special register %s", r)
			}
		}
		return nil
	}
	if in.Dst.Valid() {
		if err := check(in.Dst); err != nil {
			return err
		}
	}
	for _, s := range in.SrcOperands() {
		if s.IsReg() {
			if err := check(s.Reg); err != nil {
				return err
			}
		}
	}
	return nil
}

// Disassemble renders the whole program with PCs and labels.
func (p *Program) Disassemble() string {
	labelAt := make(map[int][]string)
	for name, pc := range p.Labels {
		labelAt[pc] = append(labelAt[pc], name)
	}
	// Co-located labels must list in a stable order: the listing is a
	// triage artifact (sweep reports, regression minimization) and the
	// same program has to disassemble to the same bytes every time.
	for _, names := range labelAt {
		sort.Strings(names)
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n.vregs %d\n.sregs %d\n.lds %d\n", p.Name, p.NumVRegs, p.NumSRegs, p.LDSBytes)
	for pc := range p.Instrs {
		for _, l := range labelAt[pc] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%4d:  %s\n", pc, p.Instrs[pc].String())
	}
	return b.String()
}

// Clone returns a deep copy (instruction slice and labels are fresh).
func (p *Program) Clone() *Program {
	c := &Program{
		Name:     p.Name,
		Instrs:   make([]Instruction, len(p.Instrs)),
		NumVRegs: p.NumVRegs,
		NumSRegs: p.NumSRegs,
		LDSBytes: p.LDSBytes,
		Labels:   make(map[string]int, len(p.Labels)),
	}
	copy(c.Instrs, p.Instrs)
	for k, v := range p.Labels {
		c.Labels[k] = v
	}
	return c
}
