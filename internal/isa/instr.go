package isa

import (
	"fmt"
	"math"
	"strings"
)

// OperandKind distinguishes source-operand forms.
type OperandKind uint8

const (
	OperandNone OperandKind = iota
	OperandReg
	OperandImm
)

// Operand is a source operand: a register or a 32-bit immediate.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  uint32
}

// R wraps a register as an operand.
func R(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm wraps a signed integer immediate.
func Imm(v int) Operand { return Operand{Kind: OperandImm, Imm: uint32(int32(v))} }

// ImmU wraps a raw 32-bit immediate.
func ImmU(v uint32) Operand { return Operand{Kind: OperandImm, Imm: v} }

// ImmF wraps a float32 immediate (stored as its bit pattern).
func ImmF(v float32) Operand { return Operand{Kind: OperandImm, Imm: math.Float32bits(v)} }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Kind == OperandReg }

// IsImm reports whether the operand is an immediate.
func (o Operand) IsImm() bool { return o.Kind == OperandImm }

func (o Operand) String() string {
	switch o.Kind {
	case OperandReg:
		return o.Reg.String()
	case OperandImm:
		return fmt.Sprintf("%d", int32(o.Imm))
	}
	return "_"
}

// MaxSrcs is the maximum number of explicit source operands.
const MaxSrcs = 3

// Instruction is one decoded instruction. Instructions are immutable once
// placed in a Program; analyses reference them by index (PC).
type Instruction struct {
	Op   Op
	Dst  Reg              // explicit destination (RegNone if absent)
	Srcs [MaxSrcs]Operand // explicit sources (Info().NumSrc valid entries)
	Imm0 int32            // memory offset / lane index / ctx slot
	// Target is the absolute instruction index for branches, the resume
	// PC for CtxSavePC/CtxResume.
	Target int
	// NoOverflow asserts the result never discarded significant bits, so
	// shift-class instructions may be reverted (set by kernel authors on
	// address arithmetic).
	NoOverflow bool
	// MemSpace tags memory instructions with the buffer (kernel argument)
	// they address. Accesses to different spaces never alias; MemSpace 0
	// (untagged) conservatively aliases everything. Drives the
	// idempotent-region analysis in internal/cfg.
	MemSpace int16
	Comment  string
}

// MayAlias reports whether two memory instructions can touch the same
// location, judged by their declared memory spaces. LDS and global
// accesses never alias each other regardless of tags.
func MayAlias(a, b *Instruction) bool {
	aLDS := a.Op.Info().Class == ClassLDSMem
	bLDS := b.Op.Info().Class == ClassLDSMem
	if aLDS != bLDS {
		return false
	}
	if a.MemSpace == 0 || b.MemSpace == 0 {
		return true
	}
	return a.MemSpace == b.MemSpace
}

// NumSrcs returns the count of meaningful source operands.
func (in *Instruction) NumSrcs() int { return in.Op.Info().NumSrc }

// SrcOperands returns the meaningful source operands.
func (in *Instruction) SrcOperands() []Operand {
	return in.Srcs[:in.NumSrcs()]
}

// Uses appends every register this instruction reads (explicit sources
// plus implicit EXEC/VCC/SCC reads) to dst and returns it.
func (in *Instruction) Uses(dst []Reg) []Reg {
	info := in.Op.Info()
	for i := 0; i < info.NumSrc; i++ {
		if in.Srcs[i].IsReg() {
			dst = append(dst, in.Srcs[i].Reg)
		}
	}
	if info.ReadsExec {
		dst = append(dst, Exec)
	}
	if info.ReadsVCC {
		dst = append(dst, VCC)
	}
	if info.ReadsSCC {
		dst = append(dst, SCC)
	}
	// VWriteLane overwrites a single lane, so the previous value of the
	// destination vector register is also an input.
	if in.Op == VWriteLane && in.Dst.Valid() {
		dst = append(dst, in.Dst)
	}
	return dst
}

// Defs appends every register this instruction writes (explicit
// destination plus implicit EXEC/VCC/SCC writes) to dst and returns it.
func (in *Instruction) Defs(dst []Reg) []Reg {
	info := in.Op.Info()
	if info.HasDst && in.Dst.Valid() {
		dst = append(dst, in.Dst)
	}
	if info.WritesExec {
		dst = append(dst, Exec)
	}
	if info.WritesVCC {
		dst = append(dst, VCC)
	}
	if info.WritesSCC {
		dst = append(dst, SCC)
	}
	return dst
}

// UseSet returns the use registers as a fresh set.
func (in *Instruction) UseSet() RegSet {
	s := make(RegSet, 4)
	for _, r := range in.Uses(nil) {
		s.Add(r)
	}
	return s
}

// DefSet returns the def registers as a fresh set.
func (in *Instruction) DefSet() RegSet {
	s := make(RegSet, 2)
	for _, r := range in.Defs(nil) {
		s.Add(r)
	}
	return s
}

// IsBranch reports whether the instruction may transfer control.
func (in *Instruction) IsBranch() bool { return in.Op.Info().Class == ClassBranch }

// IsUnconditionalBranch reports an always-taken branch.
func (in *Instruction) IsUnconditionalBranch() bool { return in.Op == SBranch }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instruction) IsTerminator() bool {
	return in.IsBranch() || in.Op == SEndpgm || in.Op == CtxExit || in.Op == CtxResume
}

// HasSideEffects reports whether the instruction writes memory or
// synchronizes, i.e. cannot be speculatively re-executed in isolation.
func (in *Instruction) HasSideEffects() bool {
	switch in.Op.Info().Class {
	case ClassAtomic, ClassSync:
		return in.Op != SNop
	}
	switch in.Op {
	case SGStore, VGStore, VLStore, CtxSaveV, CtxSaveS, CtxSaveSpec, CtxSaveLDS, CtxSavePC:
		return true
	}
	return false
}

// SharedOperandPositions returns which source positions hold the same
// register as the destination (the r_share form of paper §III-C),
// restricted to positions the opcode can actually revert through.
func (in *Instruction) SharedOperandPositions() []int {
	info := in.Op.Info()
	if !info.HasDst || !in.Dst.Valid() || info.Inverse == OpInvalid {
		return nil
	}
	var out []int
	if info.SelfOperand0 && info.NumSrc >= 1 && in.Srcs[0].IsReg() && in.Srcs[0].Reg == in.Dst {
		out = append(out, 0)
	}
	if info.SelfOperand1 && info.NumSrc >= 2 && in.Srcs[1].IsReg() && in.Srcs[1].Reg == in.Dst {
		out = append(out, 1)
	}
	return out
}

// Revertible reports whether executing the returned instruction recovers
// the destination register's previous value, assuming all of the returned
// instruction's operands hold correct values. The recovered register is
// always in.Dst. Returns ok=false when the instruction is not of a
// revertible form.
//
// Forms handled (writing r' for the post-value of the shared register r):
//
//	r' = r + x    ->  r = r' - x     (also x + r)
//	r' = r - x    ->  r = r' + x
//	r' = x - r    ->  r = x - r'
//	r' = r ^ x    ->  r = r' ^ x     (also x ^ r)
//	r' = ^r       ->  r = ^r'
//	r' = r << x   ->  r = r' >> x    (NoOverflow only)
func (in *Instruction) Revertible() (rev Instruction, ok bool) {
	info := in.Op.Info()
	if info.Inverse == OpInvalid || (info.NeedsNoOvf && !in.NoOverflow) {
		return Instruction{}, false
	}
	positions := in.SharedOperandPositions()
	if len(positions) == 0 {
		return Instruction{}, false
	}
	pos := positions[0]
	r := in.Dst
	switch {
	case info.NumSrc == 1:
		// r' = op(r): self-inverse unary (NOT).
		rev = Instruction{Op: info.Inverse, Dst: r, Srcs: [MaxSrcs]Operand{R(r)}}
	case pos == 0:
		// r' = op(r, x) -> r = inv(r', x).
		rev = Instruction{Op: info.Inverse, Dst: r, Srcs: [MaxSrcs]Operand{R(r), in.Srcs[1]}}
	default:
		// pos == 1: r' = op(x, r).
		switch in.Op {
		case VAdd, SAdd, VXor, SXor:
			// Commutative: same as pos 0.
			rev = Instruction{Op: info.Inverse, Dst: r, Srcs: [MaxSrcs]Operand{R(r), in.Srcs[0]}}
		case VSub, SSub:
			// r' = x - r -> r = x - r'.
			rev = Instruction{Op: in.Op, Dst: r, Srcs: [MaxSrcs]Operand{in.Srcs[0], R(r)}}
		default:
			return Instruction{}, false
		}
	}
	rev.NoOverflow = in.NoOverflow
	rev.Comment = "revert"
	return rev, true
}

// RevertExtraOperands returns the registers (besides the shared register
// itself) that the reverting instruction of in reads. ok mirrors
// Revertible.
func (in *Instruction) RevertExtraOperands() (regs []Reg, ok bool) {
	rev, ok := in.Revertible()
	if !ok {
		return nil, false
	}
	for _, s := range rev.SrcOperands() {
		if s.IsReg() && s.Reg != in.Dst {
			regs = append(regs, s.Reg)
		}
	}
	return regs, true
}

// String renders the instruction in assembler syntax (without labels).
func (in *Instruction) String() string {
	info := in.Op.Info()
	var b strings.Builder
	b.WriteString(info.Name)
	sep := " "
	if info.HasDst && in.Dst.Valid() {
		b.WriteString(sep)
		b.WriteString(in.Dst.String())
		sep = ", "
	}
	for _, s := range in.SrcOperands() {
		b.WriteString(sep)
		b.WriteString(s.String())
		sep = ", "
	}
	if info.HasImm {
		b.WriteString(sep)
		fmt.Fprintf(&b, "%d", in.Imm0)
		sep = ", "
	}
	if info.HasTgt {
		b.WriteString(sep)
		fmt.Fprintf(&b, "@%d", in.Target)
	}
	if in.NoOverflow {
		b.WriteString(" !noovf")
	}
	if in.Comment != "" {
		b.WriteString(" ; ")
		b.WriteString(in.Comment)
	}
	return b.String()
}
