package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly dialect produced by
// Program.Disassemble (labels may be symbolic) and returns the program.
//
// Grammar (line oriented; ';' or '#' starts a comment):
//
//	.kernel NAME        — program name
//	.vregs N  .sregs N  .lds N
//	LABEL:              — bind a label
//	MNEMONIC operands   — operands comma separated: v3, s1, exec, vcc,
//	                      scc, integer (0x.. ok), 1.5f (float32 bits),
//	                      LABEL or @PC for branch targets.
//	A trailing !noovf flags the instruction NoOverflow.
func Assemble(src string) (*Program, error) {
	b := &asmState{
		prog: Program{Labels: make(map[string]int)},
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := b.line(raw); err != nil {
			return nil, fmt.Errorf("asm line %d: %w", lineNo+1, err)
		}
	}
	for _, f := range b.fixups {
		pc, ok := b.prog.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		b.prog.Instrs[f.pc].Target = pc
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return &b.prog, nil
}

type asmState struct {
	prog   Program
	fixups []fixup
}

func (a *asmState) line(raw string) error {
	line := raw
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	// "NNN:" PC prefixes from Disassemble and "label:" bindings.
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		head := strings.TrimSpace(line[:i])
		if strings.ContainsAny(head, " \t,") {
			return fmt.Errorf("malformed label %q", head)
		}
		if _, err := strconv.Atoi(head); err != nil {
			if _, dup := a.prog.Labels[head]; dup {
				return fmt.Errorf("duplicate label %q", head)
			}
			a.prog.Labels[head] = len(a.prog.Instrs)
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	return a.instr(line)
}

func (a *asmState) directive(line string) error {
	fields := strings.Fields(line)
	key := fields[0]
	arg := ""
	if len(fields) > 1 {
		arg = fields[1]
	}
	num := func() (int, error) {
		n, err := strconv.Atoi(arg)
		if err != nil {
			return 0, fmt.Errorf("%s needs an integer argument, got %q", key, arg)
		}
		return n, nil
	}
	var err error
	switch key {
	case ".kernel":
		a.prog.Name = arg
	case ".vregs":
		a.prog.NumVRegs, err = num()
	case ".sregs":
		a.prog.NumSRegs, err = num()
	case ".lds":
		a.prog.LDSBytes, err = num()
	default:
		return fmt.Errorf("unknown directive %q", key)
	}
	return err
}

func (a *asmState) instr(line string) error {
	noOvf := false
	if i := strings.Index(line, "!noovf"); i >= 0 {
		noOvf = true
		line = strings.TrimSpace(line[:i] + line[i+len("!noovf"):])
	}
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, ok := OpByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	info := op.Info()
	in := Instruction{Op: op, NoOverflow: noOvf}

	var toks []string
	if rest != "" {
		for _, t := range strings.Split(rest, ",") {
			toks = append(toks, strings.TrimSpace(t))
		}
	}
	i := 0
	take := func() (string, error) {
		if i >= len(toks) {
			return "", fmt.Errorf("%s: missing operand %d", mnemonic, i)
		}
		t := toks[i]
		i++
		return t, nil
	}
	if info.HasDst {
		t, err := take()
		if err != nil {
			return err
		}
		r, err := parseReg(t)
		if err != nil {
			return err
		}
		in.Dst = r
	}
	for s := 0; s < info.NumSrc; s++ {
		t, err := take()
		if err != nil {
			return err
		}
		o, err := parseOperand(t)
		if err != nil {
			return err
		}
		in.Srcs[s] = o
	}
	if info.HasImm && i < len(toks) {
		t, _ := take()
		v, err := parseInt(t)
		if err != nil {
			return fmt.Errorf("%s: bad immediate %q: %v", mnemonic, t, err)
		}
		in.Imm0 = int32(v)
	}
	if info.HasTgt {
		t, err := take()
		if err != nil {
			return err
		}
		if strings.HasPrefix(t, "@") {
			v, err := parseInt(t[1:])
			if err != nil {
				return fmt.Errorf("%s: bad target %q: %v", mnemonic, t, err)
			}
			in.Target = int(v)
		} else {
			a.fixups = append(a.fixups, fixup{pc: len(a.prog.Instrs), label: t})
		}
	}
	if i != len(toks) {
		return fmt.Errorf("%s: %d extra operand(s)", mnemonic, len(toks)-i)
	}
	a.prog.Instrs = append(a.prog.Instrs, in)
	return nil
}

func parseReg(t string) (Reg, error) {
	switch t {
	case "exec":
		return Exec, nil
	case "vcc":
		return VCC, nil
	case "scc":
		return SCC, nil
	}
	if len(t) >= 2 && (t[0] == 'v' || t[0] == 's') {
		if n, err := strconv.Atoi(t[1:]); err == nil && n >= 0 {
			if t[0] == 'v' {
				return V(n), nil
			}
			return S(n), nil
		}
	}
	return Reg{}, fmt.Errorf("bad register %q", t)
}

func parseOperand(t string) (Operand, error) {
	if r, err := parseReg(t); err == nil {
		return R(r), nil
	}
	if strings.HasSuffix(t, "f") {
		if f, err := strconv.ParseFloat(t[:len(t)-1], 32); err == nil {
			return ImmF(float32(f)), nil
		}
	}
	v, err := parseInt(t)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", t)
	}
	return Imm(int(v)), nil
}

func parseInt(t string) (int64, error) {
	return strconv.ParseInt(t, 0, 64)
}
