package isa

import (
	"strings"
	"testing"
)

func testProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("t", 8, 16, 0)
	b.I(SMov, R(S(0)), Imm(10))
	b.Label("loop")
	b.I(VAdd, R(V(0)), R(V(0)), Imm(1))
	b.I(SSub, R(S(0)), R(S(0)), Imm(1))
	b.I(SCmpGt, R(S(0)), Imm(0))
	b.Branch(SCBranchSCC1, "loop")
	b.I(SEndpgm)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderResolvesLabels(t *testing.T) {
	p := testProgram(t)
	if p.Len() != 6 {
		t.Fatalf("len = %d", p.Len())
	}
	br := p.At(4)
	if br.Op != SCBranchSCC1 || br.Target != 1 {
		t.Errorf("branch = %s, want target 1", br)
	}
	if p.Labels["loop"] != 1 {
		t.Errorf("label loop at %d", p.Labels["loop"])
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad", 4, 16, 0)
	b.Branch(SBranch, "nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("want undefined-label error, got %v", err)
	}

	b2 := NewBuilder("bad2", 4, 16, 0)
	b2.I(VAdd, R(V(0))) // missing sources
	b2.I(SEndpgm)
	if _, err := b2.Build(); err == nil {
		t.Error("want missing-source error")
	}

	b3 := NewBuilder("bad3", 4, 16, 0)
	b3.Label("x")
	b3.Label("x")
	b3.I(SEndpgm)
	if _, err := b3.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("want duplicate-label error, got %v", err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want string
	}{
		{
			"empty", Program{Name: "e"}, "empty",
		},
		{
			"no terminator",
			Program{Name: "nt", NumVRegs: 4, NumSRegs: 16, Instrs: []Instruction{
				{Op: VMov, Dst: V(0), Srcs: [MaxSrcs]Operand{Imm(1)}},
			}},
			"not a terminator",
		},
		{
			"vreg out of bounds",
			Program{Name: "ob", NumVRegs: 2, NumSRegs: 16, Instrs: []Instruction{
				{Op: VMov, Dst: V(5), Srcs: [MaxSrcs]Operand{Imm(1)}},
				{Op: SEndpgm},
			}},
			"exceeds declared",
		},
		{
			"branch target out of range",
			Program{Name: "bt", NumVRegs: 2, NumSRegs: 16, Instrs: []Instruction{
				{Op: SBranch, Target: 99},
				{Op: SEndpgm},
			}},
			"out of range",
		},
		{
			"scalar op reading vector",
			Program{Name: "sv", NumVRegs: 2, NumSRegs: 16, Instrs: []Instruction{
				{Op: SAdd, Dst: S(0), Srcs: [MaxSrcs]Operand{R(V(0)), Imm(1)}},
				{Op: SEndpgm},
			}},
			"reads vector",
		},
		{
			"vector dst on scalar op",
			Program{Name: "vd", NumVRegs: 2, NumSRegs: 16, Instrs: []Instruction{
				{Op: SMov, Dst: V(0), Srcs: [MaxSrcs]Operand{Imm(1)}},
				{Op: SEndpgm},
			}},
			"must be scalar",
		},
		{
			"lane out of range",
			Program{Name: "lr", NumVRegs: 2, NumSRegs: 16, Instrs: []Instruction{
				{Op: VReadLane, Dst: S(0), Srcs: [MaxSrcs]Operand{R(V(0))}, Imm0: 64},
				{Op: SEndpgm},
			}},
			"lane",
		},
	}
	for _, c := range cases {
		err := c.prog.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestAllocationAlignment(t *testing.T) {
	p := &Program{NumVRegs: 42, NumSRegs: 36}
	if got := p.AllocatedVRegs(); got != 44 {
		t.Errorf("AllocatedVRegs = %d, want 44 (granule 4)", got)
	}
	if got := p.AllocatedSRegs(); got != 48 {
		t.Errorf("AllocatedSRegs = %d, want 48 (granule 16)", got)
	}
	if got := p.VRegContextBytes(); got != 44*4*WarpSize {
		t.Errorf("VRegContextBytes = %d", got)
	}
	if got := p.SRegContextBytes(); got != 48*4 {
		t.Errorf("SRegContextBytes = %d", got)
	}
	zero := &Program{}
	if zero.AllocatedVRegs() != 0 || zero.AllocatedSRegs() != 0 {
		t.Error("zero program must allocate nothing")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := testProgram(t)
	c := p.Clone()
	c.Instrs[0].Op = SNop
	c.Labels["loop"] = 99
	if p.Instrs[0].Op != SMov || p.Labels["loop"] != 1 {
		t.Error("Clone shares state with original")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := testProgram(t)
	text := p.Disassemble()
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if p2.Len() != p.Len() || p2.Name != p.Name || p2.NumVRegs != p.NumVRegs {
		t.Fatalf("round trip mismatch: %d vs %d instrs", p2.Len(), p.Len())
	}
	for pc := range p.Instrs {
		if p.Instrs[pc].Op != p2.Instrs[pc].Op || p.Instrs[pc].Target != p2.Instrs[pc].Target {
			t.Errorf("pc %d: %s vs %s", pc, p.Instrs[pc].String(), p2.Instrs[pc].String())
		}
	}
}

// TestDisassembleStable pins the listing's determinism when several
// labels share a PC: the map iteration order must not leak into the
// output (the listing is a triage artifact — same program, same bytes).
func TestDisassembleStable(t *testing.T) {
	p, err := Assemble(`
.kernel stable
.vregs 2
.sregs 8
alpha:
zeta:
beta:
  v_mov v0, 1
  s_endpgm
`)
	if err != nil {
		t.Fatal(err)
	}
	first := p.Disassemble()
	for i := 0; i < 32; i++ {
		if got := p.Disassemble(); got != first {
			t.Fatalf("iteration %d: listing changed:\n%s\nvs\n%s", i, got, first)
		}
	}
}
