package isa

// mustProg finalizes a statically constructed test program;
// construction failure is a test bug, so it panics.
func mustProg(b *Builder) *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
