package isa

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := testProgram(t)
	data := EncodeProgram(p)
	q, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.NumVRegs != p.NumVRegs || q.NumSRegs != p.NumSRegs || q.LDSBytes != p.LDSBytes {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("instr count %d vs %d", len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], q.Instrs[i]
		a.Comment, b.Comment = "", "" // comments are not serialized
		if a != b {
			t.Errorf("instr %d: %s vs %s", i, a.String(), b.String())
		}
	}
}

func TestEncodeDecodeRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for it := 0; it < 50; it++ {
		b := NewBuilder("rnd", 8, 16, 0)
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0:
				b.I(VAdd, R(V(rng.Intn(8))), R(V(rng.Intn(8))), Imm(rng.Intn(1000)-500))
			case 1:
				b.NoOvf(VShl, R(V(rng.Intn(8))), R(V(rng.Intn(8))), Imm(rng.Intn(8)))
			case 2:
				b.I(VGLoad, R(V(rng.Intn(8))), R(V(rng.Intn(8))), Imm(rng.Intn(64)*4)).Space(rng.Intn(3) + 1)
			case 3:
				b.I(SMov, R(S(rng.Intn(16))), ImmF(rng.Float32()))
			case 4:
				b.I(VMadF, R(V(rng.Intn(8))), R(V(rng.Intn(8))), R(V(rng.Intn(8))), R(V(rng.Intn(8))))
			}
		}
		b.I(SEndpgm)
		p := mustProg(b)
		q, err := DecodeProgram(EncodeProgram(p))
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		for i := range p.Instrs {
			if p.Instrs[i] != q.Instrs[i] {
				t.Fatalf("iter %d instr %d mismatch", it, i)
			}
		}
		// Re-encoding the decode must be byte-identical (canonical form).
		if !bytes.Equal(EncodeProgram(p), EncodeProgram(q)) {
			t.Fatalf("iter %d: re-encode differs", it)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := testProgram(t)
	good := EncodeProgram(p)

	if _, err := DecodeProgram(good[:8]); err == nil {
		t.Error("truncated buffer must fail")
	}
	bad := append([]byte(nil), good...)
	copy(bad, "XXXX")
	if _, err := DecodeProgram(bad); err == nil {
		t.Error("bad magic must fail")
	}
	bad2 := append([]byte(nil), good...)
	bad2[4] = 0xFF // version
	if _, err := DecodeProgram(bad2); err == nil {
		t.Error("bad version must fail")
	}
	// Corrupt an opcode beyond the table: decoded program must be
	// rejected rather than executed.
	bad3 := append([]byte(nil), good...)
	hdr := 4 + 2 + 2 + len(p.Name) + 16
	bad3[hdr] = 0xFF
	bad3[hdr+1] = 0xFF
	if _, err := DecodeProgram(bad3); err == nil {
		t.Error("bad opcode must fail")
	}
}

func TestRoutineEncoding(t *testing.T) {
	instrs := []Instruction{
		{Op: CtxSaveV, Srcs: [MaxSrcs]Operand{R(V(3))}, Imm0: 2},
		{Op: CtxSavePC, Target: 17},
		{Op: CtxExit},
	}
	if got, want := RoutineBytes(instrs), 4+3*InstrWordBytes; got != want {
		t.Errorf("RoutineBytes = %d, want %d", got, want)
	}
	data := EncodeRoutine(instrs)
	if len(data) != RoutineBytes(instrs) {
		t.Errorf("encoded %d bytes, accounting says %d", len(data), RoutineBytes(instrs))
	}
	if s := FormatRoutine(instrs); !bytes.Contains([]byte(s), []byte("ctx_save_v")) {
		t.Errorf("FormatRoutine output: %q", s)
	}
}
