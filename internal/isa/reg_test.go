package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{S(0), "s0"},
		{S(35), "s35"},
		{V(7), "v7"},
		{Exec, "exec"},
		{VCC, "vcc"},
		{SCC, "scc"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegContextBytes(t *testing.T) {
	if got := V(0).ContextBytes(); got != 4*WarpSize {
		t.Errorf("vector reg context = %d, want %d", got, 4*WarpSize)
	}
	if got := S(0).ContextBytes(); got != 4 {
		t.Errorf("scalar reg context = %d, want 4", got)
	}
	if got := Exec.ContextBytes(); got != 8 {
		t.Errorf("exec context = %d, want 8", got)
	}
	if got := SCC.ContextBytes(); got != 4 {
		t.Errorf("scc context = %d, want 4", got)
	}
}

func TestRegClassPredicates(t *testing.T) {
	if !V(1).IsVector() || V(1).IsScalar() {
		t.Error("V(1) class predicates wrong")
	}
	if !S(1).IsScalar() || S(1).IsVector() {
		t.Error("S(1) class predicates wrong")
	}
	var zero Reg
	if zero.Valid() {
		t.Error("zero Reg must be invalid")
	}
	if !Exec.Valid() {
		t.Error("Exec must be valid")
	}
}

func TestRegSetBasics(t *testing.T) {
	s := NewRegSet(V(1), S(2), V(1))
	if len(s) != 2 {
		t.Fatalf("set size = %d, want 2 (dup collapsed)", len(s))
	}
	if !s.Has(V(1)) || !s.Has(S(2)) || s.Has(V(2)) {
		t.Error("membership wrong")
	}
	s.Remove(V(1))
	if s.Has(V(1)) {
		t.Error("Remove failed")
	}
	s.Add(Exec)
	if !s.Has(Exec) {
		t.Error("Add failed")
	}
}

func TestRegSetCloneIndependence(t *testing.T) {
	s := NewRegSet(V(1), V(2))
	c := s.Clone()
	c.Add(V(3))
	if s.Has(V(3)) {
		t.Error("Clone is not independent")
	}
	if !s.Equal(NewRegSet(V(1), V(2))) {
		t.Error("original mutated")
	}
}

func TestRegSetOps(t *testing.T) {
	a := NewRegSet(V(1), V(2), S(0))
	b := NewRegSet(V(2), S(3))
	a.AddAll(b)
	want := NewRegSet(V(1), V(2), S(0), S(3))
	if !a.Equal(want) {
		t.Errorf("AddAll: got %v want %v", a.Sorted(), want.Sorted())
	}
	a.RemoveAll(b)
	if !a.Equal(NewRegSet(V(1), S(0))) {
		t.Errorf("RemoveAll: got %v", a.Sorted())
	}
	if !a.Intersects(NewRegSet(S(0))) {
		t.Error("Intersects false negative")
	}
	if a.Intersects(NewRegSet(S(9), V(9))) {
		t.Error("Intersects false positive")
	}
}

func TestRegSetContextBytes(t *testing.T) {
	s := NewRegSet(V(0), V(1), S(0), Exec)
	want := 2*4*WarpSize + 4 + 8
	if got := s.ContextBytes(); got != want {
		t.Errorf("ContextBytes = %d, want %d", got, want)
	}
}

func TestRegSetSortedDeterministic(t *testing.T) {
	s := NewRegSet(V(5), V(1), S(9), S(2), Exec)
	a := s.Sorted()
	b := s.Sorted()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sorted not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if !regLess(a[i-1], a[i]) {
			t.Fatalf("Sorted out of order at %d: %v", i, a)
		}
	}
}

// Property: set semantics match a reference map implementation under a
// random sequence of add/remove operations.
func TestRegSetQuickSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		s := make(RegSet)
		ref := map[Reg]bool{}
		for _, o := range ops {
			r := V(int(o % 8))
			if o%3 == 0 {
				r = S(int(o % 8))
			}
			if o%2 == 0 {
				s.Add(r)
				ref[r] = true
			} else {
				s.Remove(r)
				delete(ref, r)
			}
		}
		if len(s) != len(ref) {
			return false
		}
		for r := range ref {
			if !s.Has(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: union is commutative w.r.t. membership.
func TestRegSetQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		mk := func(idx []uint8) RegSet {
			s := make(RegSet)
			for _, i := range idx {
				s.Add(V(int(i % 16)))
			}
			return s
		}
		a1, b1 := mk(xs), mk(ys)
		a2, b2 := mk(ys), mk(xs)
		a1.AddAll(b1)
		a2.AddAll(b2)
		return a1.Equal(a2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
