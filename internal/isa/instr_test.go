package isa

import (
	"strings"
	"testing"
)

func TestOpInfoComplete(t *testing.T) {
	for op := Op(1); op < opCount; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("op %d has no name", op)
		}
		if info.IssueCycles <= 0 {
			t.Errorf("%s has non-positive issue cycles", op)
		}
		back, ok := OpByName(info.Name)
		if !ok || back != op {
			t.Errorf("OpByName(%q) = %v,%v; want %v", info.Name, back, ok, op)
		}
	}
}

func TestUsesDefsExplicit(t *testing.T) {
	in := Instruction{Op: VAdd, Dst: V(3), Srcs: [MaxSrcs]Operand{R(V(1)), R(S(2))}}
	uses := NewRegSet(in.Uses(nil)...)
	if !uses.Equal(NewRegSet(V(1), S(2), Exec)) {
		t.Errorf("uses = %v", uses.Sorted())
	}
	defs := NewRegSet(in.Defs(nil)...)
	if !defs.Equal(NewRegSet(V(3))) {
		t.Errorf("defs = %v", defs.Sorted())
	}
}

func TestUsesDefsImplicit(t *testing.T) {
	cmp := Instruction{Op: VCmpLtI, Srcs: [MaxSrcs]Operand{R(V(0)), Imm(5)}}
	if !NewRegSet(cmp.Defs(nil)...).Has(VCC) {
		t.Error("v_cmp must define VCC")
	}
	br := Instruction{Op: SCBranchSCC1, Target: 0}
	if !NewRegSet(br.Uses(nil)...).Has(SCC) {
		t.Error("s_cbranch_scc1 must use SCC")
	}
	sx := Instruction{Op: SAndSaveExecVCC, Dst: S(0)}
	u := NewRegSet(sx.Uses(nil)...)
	d := NewRegSet(sx.Defs(nil)...)
	if !u.Has(Exec) || !u.Has(VCC) {
		t.Errorf("saveexec uses = %v", u.Sorted())
	}
	if !d.Has(Exec) || !d.Has(S(0)) {
		t.Errorf("saveexec defs = %v", d.Sorted())
	}
	cnd := Instruction{Op: VCndMask, Dst: V(0), Srcs: [MaxSrcs]Operand{R(V(1)), R(V(2))}}
	if !NewRegSet(cnd.Uses(nil)...).Has(VCC) {
		t.Error("v_cndmask must use VCC")
	}
}

func TestVWriteLaneReadsDst(t *testing.T) {
	in := Instruction{Op: VWriteLane, Dst: V(4), Srcs: [MaxSrcs]Operand{R(S(1))}, Imm0: 3}
	u := NewRegSet(in.Uses(nil)...)
	if !u.Has(V(4)) || !u.Has(S(1)) {
		t.Errorf("v_writelane uses = %v; must include dst vector reg (partial write)", u.Sorted())
	}
}

func TestTerminators(t *testing.T) {
	for _, op := range []Op{SBranch, SCBranchSCC1, SCBranchExecZ, SEndpgm, CtxExit, CtxResume} {
		in := Instruction{Op: op}
		if !in.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	for _, op := range []Op{VAdd, SBarrier, VGStore} {
		in := Instruction{Op: op}
		if in.IsTerminator() {
			t.Errorf("%s should not be a terminator", op)
		}
	}
}

func TestHasSideEffects(t *testing.T) {
	yes := []Op{VGStore, VLStore, SGStore, VGAtomicAdd, SBarrier, SEndpgm, CtxSaveV}
	no := []Op{VAdd, VGLoad, SGLoad, VLLoad, SNop, SMov}
	for _, op := range yes {
		if !(&Instruction{Op: op}).HasSideEffects() {
			t.Errorf("%s should have side effects", op)
		}
	}
	for _, op := range no {
		if (&Instruction{Op: op}).HasSideEffects() {
			t.Errorf("%s should not have side effects", op)
		}
	}
}

func TestRevertibleAdd(t *testing.T) {
	// r3 = r3 + 7  ->  r3 = r3 - 7
	in := Instruction{Op: VAdd, Dst: V(3), Srcs: [MaxSrcs]Operand{R(V(3)), Imm(7)}}
	rev, ok := in.Revertible()
	if !ok {
		t.Fatal("VAdd with shared dst/src0 must be revertible")
	}
	if rev.Op != VSub || rev.Dst != V(3) || rev.Srcs[0].Reg != V(3) || int32(rev.Srcs[1].Imm) != 7 {
		t.Errorf("bad revert: %s", rev.String())
	}
}

func TestRevertibleAddCommutedPosition(t *testing.T) {
	// r3 = 7 + r3  ->  r3 = r3 - 7
	in := Instruction{Op: VAdd, Dst: V(3), Srcs: [MaxSrcs]Operand{Imm(7), R(V(3))}}
	rev, ok := in.Revertible()
	if !ok {
		t.Fatal("commuted VAdd must be revertible")
	}
	if rev.Op != VSub || int32(rev.Srcs[1].Imm) != 7 {
		t.Errorf("bad revert: %s", rev.String())
	}
}

func TestRevertibleSubBothPositions(t *testing.T) {
	// r0 = r0 - r1 -> r0 = r0 + r1
	a := Instruction{Op: VSub, Dst: V(0), Srcs: [MaxSrcs]Operand{R(V(0)), R(V(1))}}
	rev, ok := a.Revertible()
	if !ok || rev.Op != VAdd {
		t.Fatalf("sub pos0 revert: ok=%v %s", ok, rev.String())
	}
	// r0 = r1 - r0 -> r0 = r1 - r0'
	bi := Instruction{Op: VSub, Dst: V(0), Srcs: [MaxSrcs]Operand{R(V(1)), R(V(0))}}
	rev, ok = bi.Revertible()
	if !ok || rev.Op != VSub || rev.Srcs[0].Reg != V(1) || rev.Srcs[1].Reg != V(0) {
		t.Fatalf("sub pos1 revert: ok=%v %s", ok, rev.String())
	}
}

func TestRevertibleXorSelfInverse(t *testing.T) {
	in := Instruction{Op: SXor, Dst: S(2), Srcs: [MaxSrcs]Operand{R(S(2)), R(S(5))}}
	rev, ok := in.Revertible()
	if !ok || rev.Op != SXor {
		t.Fatalf("xor revert: ok=%v %s", ok, rev.String())
	}
}

func TestShlRevertibleOnlyWithNoOverflow(t *testing.T) {
	in := Instruction{Op: VShl, Dst: V(1), Srcs: [MaxSrcs]Operand{R(V(1)), Imm(2)}}
	if _, ok := in.Revertible(); ok {
		t.Error("VShl without NoOverflow must not be revertible")
	}
	in.NoOverflow = true
	rev, ok := in.Revertible()
	if !ok || rev.Op != VShr {
		t.Fatalf("VShl !noovf revert: ok=%v %s", ok, rev.String())
	}
}

func TestNotRevertibleCases(t *testing.T) {
	cases := []Instruction{
		// dst not an operand
		{Op: VAdd, Dst: V(3), Srcs: [MaxSrcs]Operand{R(V(1)), R(V(2))}},
		// irreversible op
		{Op: VMul, Dst: V(3), Srcs: [MaxSrcs]Operand{R(V(3)), Imm(3)}},
		// float (rounding)
		{Op: VAddF, Dst: V(3), Srcs: [MaxSrcs]Operand{R(V(3)), ImmF(1.5)}},
		// shr loses bits even from src0
		{Op: VShr, Dst: V(3), Srcs: [MaxSrcs]Operand{R(V(3)), Imm(1)}},
	}
	for _, in := range cases {
		if _, ok := in.Revertible(); ok {
			t.Errorf("%s must not be revertible", in.String())
		}
	}
}

func TestRevertExtraOperands(t *testing.T) {
	in := Instruction{Op: VAdd, Dst: V(0), Srcs: [MaxSrcs]Operand{R(V(0)), R(V(7))}}
	regs, ok := in.RevertExtraOperands()
	if !ok || len(regs) != 1 || regs[0] != V(7) {
		t.Fatalf("extra operands = %v, ok=%v", regs, ok)
	}
	imm := Instruction{Op: VAdd, Dst: V(0), Srcs: [MaxSrcs]Operand{R(V(0)), Imm(4)}}
	regs, ok = imm.RevertExtraOperands()
	if !ok || len(regs) != 0 {
		t.Fatalf("imm extra operands = %v, ok=%v", regs, ok)
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{Op: VGLoad, Dst: V(4), Srcs: [MaxSrcs]Operand{R(V(2))}, Imm0: 16}
	s := in.String()
	if !strings.Contains(s, "v_gload") || !strings.Contains(s, "v4") || !strings.Contains(s, "16") {
		t.Errorf("String() = %q", s)
	}
	br := Instruction{Op: SBranch, Target: 12}
	if !strings.Contains(br.String(), "@12") {
		t.Errorf("branch String() = %q", br.String())
	}
}
