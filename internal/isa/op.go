package isa

import "fmt"

// Op is an opcode.
type Op uint16

// OpClass groups opcodes by execution resource and analysis behaviour.
type OpClass uint8

const (
	ClassInvalid OpClass = iota
	ClassScalarALU
	ClassVectorALU
	ClassBranch
	ClassScalarMem // scalar loads/stores to global memory
	ClassVectorMem // per-lane loads/stores to global memory
	ClassLDSMem    // per-lane loads/stores to shared memory (LDS)
	ClassAtomic    // read-modify-write global memory
	ClassSync      // barrier / nop / endpgm
	ClassContext   // context save/restore (generated routines only)
)

// Opcodes. Scalar ops read/write 64-bit per-warp registers; vector ops
// operate per lane under the EXEC mask. Integer ops use 32-bit wrapping
// arithmetic on the low 32 bits of scalar registers and full 32-bit lanes
// of vector registers. F-suffixed ops are IEEE-754 binary32.
const (
	OpInvalid Op = iota

	// Scalar ALU: dst(s), src0, [src1]; srcs are scalar regs or immediates.
	SMov
	SAdd
	SSub
	SMul
	SAnd
	SOr
	SXor
	SNot
	SShl
	SShr
	SMin
	SMax

	// Scalar compare: src0, src1 -> SCC.
	SCmpEq
	SCmpNe
	SCmpLt
	SCmpGt
	SCmpLe
	SCmpGe

	// EXEC manipulation.
	SSetExec        // exec = src0 (scalar reg or imm)
	SGetExec        // dst(s) = exec
	SAndSaveExecVCC // dst(s) = exec; exec &= vcc
	SOrExec         // exec |= src0
	SGetVCC         // dst(s) = vcc
	SSetVCC         // vcc = src0

	// Control flow. Target is held in Instruction.Target.
	SBranch
	SCBranchSCC1
	SCBranchSCC0
	SCBranchExecZ
	SCBranchExecNZ
	SBarrier
	SEndpgm
	SNop

	// Vector ALU (integer): dst(v), srcs are vector/scalar regs or imms.
	VMov
	VAdd
	VSub
	VMul
	VMad // dst = src0*src1 + src2
	VAnd
	VOr
	VXor
	VNot
	VShl
	VShr
	VMin
	VMax
	VLaneID // dst = lane index (0..WarpSize-1)

	// Vector ALU (float32).
	VAddF
	VSubF
	VMulF
	VMadF
	VMinF
	VMaxF
	VRcpF
	VSqrtF
	VAbsF
	VFloorF
	VCvtI2F
	VCvtF2I

	// Vector compare: src0, src1 -> VCC (per-lane, under EXEC).
	VCmpEqI
	VCmpLtI
	VCmpGtI
	VCmpLtF
	VCmpGtF
	VCmpLeF

	// Per-lane select: dst = vcc[lane] ? src1 : src0.
	VCndMask

	// Cross-file moves.
	VReadLane  // dst(s) = src0(v)[src1 imm lane]
	VWriteLane // dst(v)[src1 imm lane] = src0(s)

	// Memory. Addresses are byte addresses, 4-aligned.
	SGLoad  // dst(s) = mem32[src0(s) + imm]
	SGStore // mem32[src0(s) + imm] = src1(s)
	VGLoad  // dst(v)[l] = mem32[src0(v)[l] + imm]
	VGStore // mem32[src0(v)[l] + imm] = src1(v)[l]
	VGAtomicAdd
	VLLoad  // LDS: dst(v)[l] = lds32[src0(v)[l] + imm]
	VLStore // LDS: lds32[src0(v)[l] + imm] = src1(v)[l]

	// Context save/restore. Only generated preemption/resume routines use
	// these; Imm0 of the instruction is the context-buffer slot offset.
	CtxSaveV    // save src0(v) (WarpSize*4 bytes)
	CtxLoadV    // load dst(v)
	CtxSaveS    // save src0(s) (4 bytes)
	CtxLoadS    // load dst(s)
	CtxSaveSpec // save src0(special)
	CtxLoadSpec // load dst(special)
	CtxSaveLDS  // save Imm0 bytes of LDS (warp's block share)
	CtxLoadLDS
	CtxSavePC // save resume PC (Target) — terminates a preemption routine
	CtxExit   // release the warp slot (end of preemption routine)
	CtxResume // jump back to Target (end of resume routine)

	opCount
)

// OpInfo describes the static properties of an opcode.
type OpInfo struct {
	Name    string
	Class   OpClass
	NumSrc  int
	HasDst  bool
	DstVec  bool // dst is a vector register (else scalar/special)
	HasTgt  bool // uses Instruction.Target (branch / resume)
	HasImm  bool // uses Instruction.Imm0 (memory offset / lane / slot)
	Commut  bool // src0 and src1 are interchangeable
	IsFloat bool

	// Implicit register effects beyond explicit operands.
	ReadsExec  bool
	WritesExec bool
	ReadsVCC   bool
	WritesVCC  bool
	ReadsSCC   bool
	WritesSCC  bool

	// IssueCycles is the cost charged by the timing model for occupying
	// the issue/ALU pipeline (memory latency is modeled separately).
	IssueCycles int

	// Inverse is the opcode that reverts this instruction when it has the
	// r' = op(r, x) form (OpInvalid when irreversible). Shift inverses
	// additionally require Instruction.NoOverflow.
	Inverse      Op
	NeedsNoOvf   bool // inverse valid only with NoOverflow flag
	SelfOperand0 bool // reversible when dst == src0
	SelfOperand1 bool // reversible when dst == src1
}

var opInfos [opCount]OpInfo

func reg(op Op, info OpInfo) {
	if opInfos[op].Name != "" {
		panic("isa: duplicate opcode registration " + info.Name)
	}
	opInfos[op] = info
}

func init() {
	salu := func(op Op, name string, nsrc int, commut bool) {
		reg(op, OpInfo{Name: name, Class: ClassScalarALU, NumSrc: nsrc, HasDst: true, Commut: commut, IssueCycles: 1})
	}
	salu(SMov, "s_mov", 1, false)
	salu(SAdd, "s_add", 2, true)
	salu(SSub, "s_sub", 2, false)
	salu(SMul, "s_mul", 2, true)
	salu(SAnd, "s_and", 2, true)
	salu(SOr, "s_or", 2, true)
	salu(SXor, "s_xor", 2, true)
	salu(SNot, "s_not", 1, false)
	salu(SShl, "s_shl", 2, false)
	salu(SShr, "s_shr", 2, false)
	salu(SMin, "s_min", 2, true)
	salu(SMax, "s_max", 2, true)

	scmp := func(op Op, name string) {
		reg(op, OpInfo{Name: name, Class: ClassScalarALU, NumSrc: 2, WritesSCC: true, IssueCycles: 1})
	}
	scmp(SCmpEq, "s_cmp_eq")
	scmp(SCmpNe, "s_cmp_ne")
	scmp(SCmpLt, "s_cmp_lt")
	scmp(SCmpGt, "s_cmp_gt")
	scmp(SCmpLe, "s_cmp_le")
	scmp(SCmpGe, "s_cmp_ge")

	reg(SSetExec, OpInfo{Name: "s_setexec", Class: ClassScalarALU, NumSrc: 1, WritesExec: true, IssueCycles: 1})
	reg(SGetExec, OpInfo{Name: "s_getexec", Class: ClassScalarALU, HasDst: true, ReadsExec: true, IssueCycles: 1})
	reg(SAndSaveExecVCC, OpInfo{Name: "s_and_saveexec_vcc", Class: ClassScalarALU, HasDst: true, ReadsExec: true, WritesExec: true, ReadsVCC: true, IssueCycles: 1})
	reg(SOrExec, OpInfo{Name: "s_or_exec", Class: ClassScalarALU, NumSrc: 1, ReadsExec: true, WritesExec: true, IssueCycles: 1})
	reg(SGetVCC, OpInfo{Name: "s_getvcc", Class: ClassScalarALU, HasDst: true, ReadsVCC: true, IssueCycles: 1})
	reg(SSetVCC, OpInfo{Name: "s_setvcc", Class: ClassScalarALU, NumSrc: 1, WritesVCC: true, IssueCycles: 1})

	reg(SBranch, OpInfo{Name: "s_branch", Class: ClassBranch, HasTgt: true, IssueCycles: 1})
	reg(SCBranchSCC1, OpInfo{Name: "s_cbranch_scc1", Class: ClassBranch, HasTgt: true, ReadsSCC: true, IssueCycles: 1})
	reg(SCBranchSCC0, OpInfo{Name: "s_cbranch_scc0", Class: ClassBranch, HasTgt: true, ReadsSCC: true, IssueCycles: 1})
	reg(SCBranchExecZ, OpInfo{Name: "s_cbranch_execz", Class: ClassBranch, HasTgt: true, ReadsExec: true, IssueCycles: 1})
	reg(SCBranchExecNZ, OpInfo{Name: "s_cbranch_execnz", Class: ClassBranch, HasTgt: true, ReadsExec: true, IssueCycles: 1})
	reg(SBarrier, OpInfo{Name: "s_barrier", Class: ClassSync, IssueCycles: 1})
	reg(SEndpgm, OpInfo{Name: "s_endpgm", Class: ClassSync, IssueCycles: 1})
	reg(SNop, OpInfo{Name: "s_nop", Class: ClassSync, IssueCycles: 1})

	valu := func(op Op, name string, nsrc int, commut, isFloat bool, cycles int) {
		reg(op, OpInfo{Name: name, Class: ClassVectorALU, NumSrc: nsrc, HasDst: true, DstVec: true, Commut: commut, IsFloat: isFloat, ReadsExec: true, IssueCycles: cycles})
	}
	valu(VMov, "v_mov", 1, false, false, 1)
	valu(VAdd, "v_add", 2, true, false, 1)
	valu(VSub, "v_sub", 2, false, false, 1)
	valu(VMul, "v_mul", 2, true, false, 4)
	valu(VMad, "v_mad", 3, false, false, 4)
	valu(VAnd, "v_and", 2, true, false, 1)
	valu(VOr, "v_or", 2, true, false, 1)
	valu(VXor, "v_xor", 2, true, false, 1)
	valu(VNot, "v_not", 1, false, false, 1)
	valu(VShl, "v_shl", 2, false, false, 1)
	valu(VShr, "v_shr", 2, false, false, 1)
	valu(VMin, "v_min", 2, true, false, 1)
	valu(VMax, "v_max", 2, true, false, 1)
	valu(VLaneID, "v_laneid", 0, false, false, 1)

	valu(VAddF, "v_add_f32", 2, true, true, 1)
	valu(VSubF, "v_sub_f32", 2, false, true, 1)
	valu(VMulF, "v_mul_f32", 2, true, true, 1)
	valu(VMadF, "v_mad_f32", 3, false, true, 1)
	valu(VMinF, "v_min_f32", 2, true, true, 1)
	valu(VMaxF, "v_max_f32", 2, true, true, 1)
	valu(VRcpF, "v_rcp_f32", 1, false, true, 4)
	valu(VSqrtF, "v_sqrt_f32", 1, false, true, 4)
	valu(VAbsF, "v_abs_f32", 1, false, true, 1)
	valu(VFloorF, "v_floor_f32", 1, false, true, 1)
	valu(VCvtI2F, "v_cvt_i2f", 1, false, true, 1)
	valu(VCvtF2I, "v_cvt_f2i", 1, false, true, 1)

	vcmp := func(op Op, name string, isFloat bool) {
		reg(op, OpInfo{Name: name, Class: ClassVectorALU, NumSrc: 2, ReadsExec: true, WritesVCC: true, IsFloat: isFloat, IssueCycles: 1})
	}
	vcmp(VCmpEqI, "v_cmp_eq_i32", false)
	vcmp(VCmpLtI, "v_cmp_lt_i32", false)
	vcmp(VCmpGtI, "v_cmp_gt_i32", false)
	vcmp(VCmpLtF, "v_cmp_lt_f32", true)
	vcmp(VCmpGtF, "v_cmp_gt_f32", true)
	vcmp(VCmpLeF, "v_cmp_le_f32", true)

	reg(VCndMask, OpInfo{Name: "v_cndmask", Class: ClassVectorALU, NumSrc: 2, HasDst: true, DstVec: true, ReadsExec: true, ReadsVCC: true, IssueCycles: 1})
	reg(VReadLane, OpInfo{Name: "v_readlane", Class: ClassVectorALU, NumSrc: 1, HasDst: true, HasImm: true, IssueCycles: 1})
	reg(VWriteLane, OpInfo{Name: "v_writelane", Class: ClassVectorALU, NumSrc: 1, HasDst: true, DstVec: true, HasImm: true, IssueCycles: 1})

	reg(SGLoad, OpInfo{Name: "s_gload", Class: ClassScalarMem, NumSrc: 1, HasDst: true, HasImm: true, IssueCycles: 4})
	reg(SGStore, OpInfo{Name: "s_gstore", Class: ClassScalarMem, NumSrc: 2, HasImm: true, IssueCycles: 4})
	reg(VGLoad, OpInfo{Name: "v_gload", Class: ClassVectorMem, NumSrc: 1, HasDst: true, DstVec: true, HasImm: true, ReadsExec: true, IssueCycles: 4})
	reg(VGStore, OpInfo{Name: "v_gstore", Class: ClassVectorMem, NumSrc: 2, HasImm: true, ReadsExec: true, IssueCycles: 4})
	reg(VGAtomicAdd, OpInfo{Name: "v_gatomic_add", Class: ClassAtomic, NumSrc: 2, HasImm: true, ReadsExec: true, IssueCycles: 8})
	reg(VLLoad, OpInfo{Name: "v_lload", Class: ClassLDSMem, NumSrc: 1, HasDst: true, DstVec: true, HasImm: true, ReadsExec: true, IssueCycles: 2})
	reg(VLStore, OpInfo{Name: "v_lstore", Class: ClassLDSMem, NumSrc: 2, HasImm: true, ReadsExec: true, IssueCycles: 2})

	reg(CtxSaveV, OpInfo{Name: "ctx_save_v", Class: ClassContext, NumSrc: 1, HasImm: true, IssueCycles: 4})
	reg(CtxLoadV, OpInfo{Name: "ctx_load_v", Class: ClassContext, HasDst: true, DstVec: true, HasImm: true, IssueCycles: 4})
	reg(CtxSaveS, OpInfo{Name: "ctx_save_s", Class: ClassContext, NumSrc: 1, HasImm: true, IssueCycles: 4})
	reg(CtxLoadS, OpInfo{Name: "ctx_load_s", Class: ClassContext, HasDst: true, HasImm: true, IssueCycles: 4})
	reg(CtxSaveSpec, OpInfo{Name: "ctx_save_spec", Class: ClassContext, NumSrc: 1, HasImm: true, IssueCycles: 4})
	reg(CtxLoadSpec, OpInfo{Name: "ctx_load_spec", Class: ClassContext, HasDst: true, HasImm: true, IssueCycles: 4})
	reg(CtxSaveLDS, OpInfo{Name: "ctx_save_lds", Class: ClassContext, HasImm: true, IssueCycles: 4})
	reg(CtxLoadLDS, OpInfo{Name: "ctx_load_lds", Class: ClassContext, HasImm: true, IssueCycles: 4})
	reg(CtxSavePC, OpInfo{Name: "ctx_save_pc", Class: ClassContext, HasTgt: true, IssueCycles: 4})
	reg(CtxExit, OpInfo{Name: "ctx_exit", Class: ClassContext, IssueCycles: 1})
	reg(CtxResume, OpInfo{Name: "ctx_resume", Class: ClassContext, HasTgt: true, IssueCycles: 1})

	// Reversibility (paper §III-C): r' = op(r, x) can be reverted when op
	// has an inverse. Integer add/sub/xor/not always; shifts only when the
	// producer flagged the instruction NoOverflow (address arithmetic).
	// Float ops are never reversible (rounding).
	setInv := func(op, inv Op, ovf, p0, p1 bool) {
		opInfos[op].Inverse = inv
		opInfos[op].NeedsNoOvf = ovf
		opInfos[op].SelfOperand0 = p0
		opInfos[op].SelfOperand1 = p1
	}
	setInv(VAdd, VSub, false, true, true)
	setInv(VSub, VAdd, false, true, true)
	setInv(VXor, VXor, false, true, true)
	setInv(VNot, VNot, false, true, false)
	setInv(VShl, VShr, true, true, false)
	setInv(SAdd, SSub, false, true, true)
	setInv(SSub, SAdd, false, true, true)
	setInv(SXor, SXor, false, true, true)
	setInv(SNot, SNot, false, true, false)
	setInv(SShl, SShr, true, true, false)

	for op := Op(1); op < opCount; op++ {
		if opInfos[op].Name == "" {
			panic(fmt.Sprintf("isa: opcode %d missing registration", op))
		}
	}
	buildNameIndex()
}

// Info returns the static description of op.
func (op Op) Info() *OpInfo {
	if op == OpInvalid || op >= opCount {
		return &opInfos[OpInvalid]
	}
	return &opInfos[op]
}

// String returns the mnemonic.
func (op Op) String() string {
	info := op.Info()
	if info.Name == "" {
		return fmt.Sprintf("op(%d)", uint16(op))
	}
	return info.Name
}

var opByName map[string]Op

func buildNameIndex() {
	opByName = make(map[string]Op, opCount)
	for op := Op(1); op < opCount; op++ {
		opByName[opInfos[op].Name] = op
	}
}

// OpByName resolves a mnemonic; ok is false for unknown names.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// IsMemory reports whether the op goes through the device/LDS memory
// pipeline in the timing model.
func (op Op) IsMemory() bool {
	switch op.Info().Class {
	case ClassScalarMem, ClassVectorMem, ClassLDSMem, ClassAtomic, ClassContext:
		return op != CtxExit && op != CtxResume
	}
	return false
}

// IsGlobalMemory reports whether the op touches device (global) memory.
func (op Op) IsGlobalMemory() bool {
	switch op.Info().Class {
	case ClassScalarMem, ClassVectorMem, ClassAtomic:
		return true
	case ClassContext:
		return op != CtxExit && op != CtxResume
	}
	return false
}
