// Package isa defines a compact SIMT instruction set modeled on GCN-style
// GPU assembly: per-warp scalar registers, per-lane vector registers, an
// EXEC mask, LDS (shared memory), and global device memory. It is the
// common representation consumed by the compiler analyses in
// internal/cfg, internal/liveness and internal/core, and executed by the
// simulator in internal/sim.
package isa

import "fmt"

// WarpSize is the number of lanes per warp (GCN wavefront size).
const WarpSize = 64

// RegClass distinguishes the register files.
type RegClass uint8

const (
	// RegNone marks an absent register (zero value).
	RegNone RegClass = iota
	// RegScalar is a per-warp scalar register (4 bytes of architectural
	// context per warp; held as 64 bits in the simulator).
	RegScalar
	// RegVector is a per-lane vector register (WarpSize x 4 bytes of
	// context per warp).
	RegVector
	// RegSpecial is one of the architectural special registers (EXEC,
	// VCC, SCC).
	RegSpecial
)

func (c RegClass) String() string {
	switch c {
	case RegNone:
		return "none"
	case RegScalar:
		return "scalar"
	case RegVector:
		return "vector"
	case RegSpecial:
		return "special"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// Special register indices (Class == RegSpecial).
const (
	SpecExec = 0 // 64-bit execution mask
	SpecVCC  = 1 // 64-bit vector condition code
	SpecSCC  = 2 // 1-bit scalar condition code
)

// Reg identifies one architectural register.
type Reg struct {
	Class RegClass
	Index uint16
}

// Convenience constructors.

// S returns the scalar register s<i>.
func S(i int) Reg { return Reg{Class: RegScalar, Index: uint16(i)} }

// V returns the vector register v<i>.
func V(i int) Reg { return Reg{Class: RegVector, Index: uint16(i)} }

// Special registers.
var (
	Exec = Reg{Class: RegSpecial, Index: SpecExec}
	VCC  = Reg{Class: RegSpecial, Index: SpecVCC}
	SCC  = Reg{Class: RegSpecial, Index: SpecSCC}
)

// Valid reports whether r names a register (is not the zero Reg).
func (r Reg) Valid() bool { return r.Class != RegNone }

// IsVector reports whether r is a vector register.
func (r Reg) IsVector() bool { return r.Class == RegVector }

// IsScalar reports whether r is a scalar register.
func (r Reg) IsScalar() bool { return r.Class == RegScalar }

// ContextBytes is the number of bytes of per-warp context this register
// contributes when saved to device memory. Scalar registers are
// architecturally 4 bytes; vector registers hold 4 bytes per lane; the
// 64-bit specials (EXEC, VCC) cost 8 and SCC costs 4.
func (r Reg) ContextBytes() int {
	switch r.Class {
	case RegScalar:
		return 4
	case RegVector:
		return 4 * WarpSize
	case RegSpecial:
		if r.Index == SpecSCC {
			return 4
		}
		return 8
	}
	return 0
}

func (r Reg) String() string {
	switch r.Class {
	case RegScalar:
		return fmt.Sprintf("s%d", r.Index)
	case RegVector:
		return fmt.Sprintf("v%d", r.Index)
	case RegSpecial:
		switch r.Index {
		case SpecExec:
			return "exec"
		case SpecVCC:
			return "vcc"
		case SpecSCC:
			return "scc"
		}
		return fmt.Sprintf("spec%d", r.Index)
	}
	return "r?"
}

// RegSet is a set of registers. The zero value is an empty, usable set.
type RegSet map[Reg]struct{}

// NewRegSet returns a set containing the given registers.
func NewRegSet(regs ...Reg) RegSet {
	s := make(RegSet, len(regs))
	for _, r := range regs {
		s.Add(r)
	}
	return s
}

// Add inserts r.
func (s RegSet) Add(r Reg) { s[r] = struct{}{} }

// Remove deletes r.
func (s RegSet) Remove(r Reg) { delete(s, r) }

// Has reports membership.
func (s RegSet) Has(r Reg) bool {
	_, ok := s[r]
	return ok
}

// AddAll inserts every register of o.
func (s RegSet) AddAll(o RegSet) {
	for r := range o {
		s[r] = struct{}{}
	}
}

// RemoveAll deletes every register of o.
func (s RegSet) RemoveAll(o RegSet) {
	for r := range o {
		delete(s, r)
	}
}

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet {
	c := make(RegSet, len(s))
	for r := range s {
		c[r] = struct{}{}
	}
	return c
}

// Equal reports whether s and o contain the same registers.
func (s RegSet) Equal(o RegSet) bool {
	if len(s) != len(o) {
		return false
	}
	for r := range s {
		if !o.Has(r) {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share any register.
func (s RegSet) Intersects(o RegSet) bool {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	for r := range small {
		if big.Has(r) {
			return true
		}
	}
	return false
}

// ContextBytes sums the context cost of every member.
func (s RegSet) ContextBytes() int {
	total := 0
	for r := range s {
		total += r.ContextBytes()
	}
	return total
}

// Sorted returns the members in a deterministic order (class, then index).
func (s RegSet) Sorted() []Reg {
	out := make([]Reg, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sortRegs(out)
	return out
}

func sortRegs(regs []Reg) {
	// Insertion sort: sets are small and this avoids importing sort for a
	// custom comparator in hot analysis paths.
	for i := 1; i < len(regs); i++ {
		for j := i; j > 0 && regLess(regs[j], regs[j-1]); j-- {
			regs[j], regs[j-1] = regs[j-1], regs[j]
		}
	}
}

func regLess(a, b Reg) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Index < b.Index
}
