package isa

import "fmt"

// Builder assembles a Program incrementally with symbolic labels. All
// errors are deferred to Build so kernels read as straight-line code.
type Builder struct {
	prog    Program
	pending []fixup // branches awaiting label resolution
	errs    []error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder starts a program with the given name and resource
// declaration.
func NewBuilder(name string, numVRegs, numSRegs, ldsBytes int) *Builder {
	return &Builder{prog: Program{
		Name:     name,
		NumVRegs: numVRegs,
		NumSRegs: numSRegs,
		LDSBytes: ldsBytes,
		Labels:   make(map[string]int),
	}}
}

// PC returns the index the next emitted instruction will get.
func (b *Builder) PC() int { return len(b.prog.Instrs) }

// Label binds name to the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.prog.Labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.prog.Labels[name] = b.PC()
}

// Emit appends a fully formed instruction.
func (b *Builder) Emit(in Instruction) *Builder {
	b.prog.Instrs = append(b.prog.Instrs, in)
	return b
}

// I emits op with a destination (if the opcode has one) followed by its
// sources. Registers may be passed as Reg (auto-wrapped) via R().
func (b *Builder) I(op Op, ops ...Operand) *Builder {
	info := op.Info()
	in := Instruction{Op: op}
	i := 0
	if info.HasDst {
		if len(ops) == 0 || !ops[0].IsReg() {
			b.errs = append(b.errs, fmt.Errorf("pc %d: %s needs a destination register", b.PC(), op))
			return b.Emit(in)
		}
		in.Dst = ops[0].Reg
		i = 1
	}
	for s := 0; s < info.NumSrc; s++ {
		if i >= len(ops) {
			b.errs = append(b.errs, fmt.Errorf("pc %d: %s missing source %d", b.PC(), op, s))
			return b.Emit(in)
		}
		in.Srcs[s] = ops[i]
		i++
	}
	if info.HasImm {
		if i < len(ops) && ops[i].IsImm() {
			in.Imm0 = int32(ops[i].Imm)
			i++
		}
	}
	if i != len(ops) {
		b.errs = append(b.errs, fmt.Errorf("pc %d: %s has %d extra operand(s)", b.PC(), op, len(ops)-i))
	}
	return b.Emit(in)
}

// NoOvf emits like I but flags the instruction NoOverflow, making
// shift-class instructions revertible (use on address arithmetic).
func (b *Builder) NoOvf(op Op, ops ...Operand) *Builder {
	b.I(op, ops...)
	b.prog.Instrs[len(b.prog.Instrs)-1].NoOverflow = true
	return b
}

// Space tags the most recently emitted instruction with a memory space
// (buffer id >= 1) for alias analysis.
func (b *Builder) Space(id int) *Builder {
	if n := len(b.prog.Instrs); n > 0 {
		b.prog.Instrs[n-1].MemSpace = int16(id)
	}
	return b
}

// Comment attaches a comment to the most recently emitted instruction.
func (b *Builder) Comment(c string) *Builder {
	if n := len(b.prog.Instrs); n > 0 {
		b.prog.Instrs[n-1].Comment = c
	}
	return b
}

// Branch emits a control-flow op targeting label (resolved at Build).
func (b *Builder) Branch(op Op, label string) *Builder {
	if !op.Info().HasTgt {
		b.errs = append(b.errs, fmt.Errorf("pc %d: %s takes no branch target", b.PC(), op))
	}
	b.pending = append(b.pending, fixup{pc: b.PC(), label: label})
	return b.Emit(Instruction{Op: op})
}

// Build resolves labels, validates, and returns the finished program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.pending {
		pc, ok := b.prog.Labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("pc %d: undefined label %q", f.pc, f.label))
			continue
		}
		b.prog.Instrs[f.pc].Target = pc
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("program %q: %d build error(s), first: %w", b.prog.Name, len(b.errs), b.errs[0])
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return &b.prog, nil
}
