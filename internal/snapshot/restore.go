package snapshot

import (
	"fmt"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

// Outcome records which restore path ran and what it cost. The cycle
// split feeds the phase table: SetupCycles is the restore-cold share
// (zero when a warm shell absorbed it), TransferCycles the
// image-transfer share both paths pay.
type Outcome struct {
	// Warm: the device came from the warm pool (construction skipped).
	Warm bool
	// Speculative: the speculative decode was used; Validate must be
	// called after replay to confirm the deferred memory checksum.
	Speculative bool
	// SyncFallback: speculation was attempted and abandoned; SpecError
	// says why.
	SyncFallback bool
	SpecError    string

	SetupCycles    int64
	TransferCycles int64
}

// RestoreCycles is the total modeled restore cost.
func (o Outcome) RestoreCycles() int64 { return o.SetupCycles + o.TransferCycles }

// Restored is a successfully revived device.
type Restored struct {
	Device   *sim.Device
	Index    *sim.StateIndex
	Snapshot *Snapshot
	Outcome  Outcome
	// Validate performs whatever verification the chosen path deferred
	// (the memory-section checksum under speculation; a no-op after a
	// synchronous restore). Callers run it after replay; a non-nil
	// error means the replayed state is suspect and the caller must
	// re-restore synchronously or degrade — never keep the result.
	Validate func() error
}

// Restore revives a device from snapshot bytes, preferring the
// speculative path and falling back to a fully-verified synchronous
// decode. specData is the stream the speculative path reads (the chaos
// harness hands it the corrupted copy); syncData is the authoritative
// image. A nil specData skips speculation. pool may be nil: every
// restore is then cold, building its shell from the snapshot's own
// config. Restore never advances the restored device's clock — the
// caller charges Outcome cycles wherever its cost model wants them.
//
// On error the snapshot could not be revived at all (both paths
// failed); the caller's remaining move is the BASELINE degradation:
// rerun the job from scratch.
func Restore(pool *Pool, specData, syncData []byte, wantEpoch uint64, rt sim.Runtime, progs ...*isa.Program) (*Restored, error) {
	var specErr error
	if specData != nil {
		res, err := attempt(pool, specData, wantEpoch, rt, progs, true)
		if err == nil {
			return res, nil
		}
		specErr = err
	}

	res, err := attempt(pool, syncData, wantEpoch, rt, progs, false)
	if err != nil {
		if specErr != nil {
			return nil, fmt.Errorf("snapshot: speculative restore failed (%v); synchronous restore failed: %w", specErr, err)
		}
		return nil, fmt.Errorf("snapshot: synchronous restore failed: %w", err)
	}
	if specErr != nil {
		res.Outcome.SyncFallback = true
		res.Outcome.SpecError = specErr.Error()
	}
	return res, nil
}

func attempt(pool *Pool, data []byte, wantEpoch uint64, rt sim.Runtime, progs []*isa.Program, speculative bool) (*Restored, error) {
	var (
		snap     *Snapshot
		validate func() error
		err      error
	)
	if speculative {
		snap, validate, err = DecodeSpeculative(data)
	} else {
		snap, err = Decode(data)
		validate = func() error { return nil }
	}
	if err != nil {
		return nil, err
	}
	if err := snap.VerifyEpoch(wantEpoch); err != nil {
		return nil, err
	}

	var (
		shell *sim.Device
		warm  bool
	)
	if pool != nil {
		shell, warm, err = pool.Get()
		if err != nil {
			return nil, err
		}
	} else {
		shell, err = sim.NewDevice(snap.State.Cfg)
		if err != nil {
			return nil, err
		}
		if snap.State.Shards > 1 {
			shell.SetShards(snap.State.Shards)
		}
	}
	idx, err := shell.ImportState(snap.State, rt, progs)
	if err != nil {
		// The shell may be partially mutated; it is dropped, not pooled.
		return nil, err
	}
	out := Outcome{
		Warm:           warm,
		Speculative:    speculative,
		TransferCycles: TransferCycles(snap.State.Cfg, len(data)),
	}
	if !warm {
		out.SetupCycles = ColdSetupCycles(snap.State.Cfg)
	}
	return &Restored{
		Device:   shell,
		Index:    idx,
		Snapshot: snap,
		Outcome:  out,
		Validate: validate,
	}, nil
}

// Programs decodes the snapshot's embedded program images back into
// live programs, for callers that do not hold the original *Program
// values (a failover target on another host would not). The returned
// programs byte-match the snapshot's fingerprints by construction, so
// ImportState accepts them — but note they are NEW pointer identities:
// technique state keyed by program pointer (sched's muxRuntime) must be
// re-registered against them.
func (s *Snapshot) Programs() ([]*isa.Program, error) {
	progs := make([]*isa.Program, len(s.State.Progs))
	for i, enc := range s.State.Progs {
		p, err := isa.DecodeProgram(enc)
		if err != nil {
			return nil, fmt.Errorf("snapshot: program %d: %w", i, err)
		}
		progs[i] = p
	}
	return progs, nil
}
