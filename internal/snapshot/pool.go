package snapshot

import (
	"fmt"

	"ctxback/internal/sim"
)

// ctxCreateCyclesPerSlot models the per-warp-slot share of device
// context construction (allocator metadata, register-file zeroing, LDS
// carving). It is the simulator analogue of the ~1s CUDA context
// creation CRIU-style restores pay when they cannot reuse a pre-warmed
// context: cold restores charge it, warm-pool restores skip it.
const ctxCreateCyclesPerSlot = 200

// ColdSetupCycles is the construction cost a restore pays when no warm
// shell is available, as a deterministic function of the device model.
func ColdSetupCycles(cfg sim.Config) int64 {
	return int64(cfg.NumSMs) * int64(cfg.MaxWarpsPerSM) * ctxCreateCyclesPerSlot
}

// TransferCycles is the cycles needed to move an encoded snapshot onto
// the device over the context save/restore path (the same bandwidth
// the per-warp techniques pay, so snapshot restores and context
// flashbacks are directly comparable).
func TransferCycles(cfg sim.Config, encodedBytes int) int64 {
	if cfg.CtxBytesPerCycle <= 0 {
		return 0
	}
	c := float64(encodedBytes) / cfg.CtxBytesPerCycle
	n := int64(c)
	if float64(n) < c {
		n++
	}
	return n
}

// Pool keeps pre-initialized device shells so a restore can skip the
// construction cost. All shells share one Config and shard width; Get
// falls back to constructing a cold shell when the pool is dry, and
// reports which path it took so the harness can split the restore
// phase into restore-warm vs restore-cold.
type Pool struct {
	cfg    sim.Config
	shards int
	shells []*sim.Device
}

// NewPool validates cfg and pre-builds n shells at the given shard
// width (0 and 1 both mean serial).
func NewPool(cfg sim.Config, shards, n int) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards == 0 {
		shards = 1
	}
	if n < 0 {
		return nil, fmt.Errorf("snapshot: pool size %d < 0", n)
	}
	p := &Pool{cfg: cfg, shards: shards}
	for i := 0; i < n; i++ {
		if err := p.Refill(1); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Config returns the pool's device model.
func (p *Pool) Config() sim.Config { return p.cfg }

// Warm returns the number of shells currently ready.
func (p *Pool) Warm() int { return len(p.shells) }

// Refill pre-builds n more shells (the background warming a production
// pool does between failovers).
func (p *Pool) Refill(n int) error {
	for i := 0; i < n; i++ {
		d, err := p.build()
		if err != nil {
			return err
		}
		p.shells = append(p.shells, d)
	}
	return nil
}

func (p *Pool) build() (*sim.Device, error) {
	d, err := sim.NewDevice(p.cfg)
	if err != nil {
		return nil, err
	}
	if p.shards > 1 {
		d.SetShards(p.shards)
	}
	return d, nil
}

// Get pops a warm shell, or builds a cold one when the pool is dry.
// warm reports which happened; a cold restore additionally charges
// ColdSetupCycles.
func (p *Pool) Get() (d *sim.Device, warm bool, err error) {
	if n := len(p.shells); n > 0 {
		d = p.shells[n-1]
		p.shells = p.shells[:n-1]
		return d, true, nil
	}
	d, err = p.build()
	return d, false, err
}
