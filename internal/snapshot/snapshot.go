// Package snapshot serializes whole-device simulator state into a
// deterministic, byte-stable, checksummed wire format and restores it —
// synchronously or speculatively — onto warm pre-initialized device
// shells. It is the paper's context-flashback idea scaled from one warp
// to a whole device: checkpointing, migration, and fault-failover become
// ordinary scheduler moves (see internal/sched's failover driver).
//
// Wire format (little endian):
//
//	header:   magic "CSNP" | version u16 | epoch u64
//	section:  id u16 | payloadLen u32 | payload | fnv1a64(payload) u64
//
// Sections appear exactly once, in fixed order, with the bulk memory
// image last: meta, programs, launches, SMs, episodes, memory. A
// speculative decode (DecodeSpeculative) verifies everything except the
// trailing memory checksum and hands back a deferred validator — the
// PhoenixOS-style restore starts replaying against the live-in set
// while the bulk section is, in effect, still streaming in; the
// validator (plus the sim resume-integrity oracle) decides afterward
// whether the speculation was sound.
//
// Every encoded collection is emitted from slice order or explicitly
// sorted keys (SavedContext register slots), and the decoder rejects
// non-canonical inputs (unsorted slot keys, non-0/1 booleans,
// non-canonical routine encodings, trailing bytes), so encode → decode
// → encode is byte-identical — enforced by TestRepeatEncode and
// FuzzSnapshotRoundTrip.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

const (
	magic   = "CSNP"
	version = 1
)

// Section ids, in required stream order.
const (
	secMeta uint16 = 1 + iota
	secProgs
	secLaunches
	secSMs
	secEpisodes
	secMem
)

var secNames = map[uint16]string{
	secMeta: "meta", secProgs: "programs", secLaunches: "launches",
	secSMs: "sms", secEpisodes: "episodes", secMem: "memory",
}

// Snapshot pairs a device state with the checkpoint epoch that produced
// it. Epochs order checkpoints of the same job; restore validates the
// epoch against the expected one so a stale image can never silently
// revive an older version of the job.
type Snapshot struct {
	Epoch uint64
	State *sim.DeviceState
}

// VerifyEpoch returns a StaleError unless the snapshot carries epoch
// want.
func (s *Snapshot) VerifyEpoch(want uint64) error {
	if s.Epoch != want {
		return &StaleError{Want: want, Got: s.Epoch}
	}
	return nil
}

// TruncatedError: the buffer ended before the structure did.
type TruncatedError struct {
	Section string // "" when the header itself is short
	Offset  int
}

func (e *TruncatedError) Error() string {
	if e.Section == "" {
		return fmt.Sprintf("snapshot: truncated header at offset %d", e.Offset)
	}
	return fmt.Sprintf("snapshot: truncated in section %s at offset %d", e.Section, e.Offset)
}

// CorruptError: a checksum mismatch or a non-canonical encoding.
type CorruptError struct {
	Section string
	Detail  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: corrupt section %s: %s", e.Section, e.Detail)
}

// StaleError: the snapshot is from a different checkpoint epoch than
// the restore expected.
type StaleError struct {
	Want, Got uint64
}

func (e *StaleError) Error() string {
	return fmt.Sprintf("snapshot: stale epoch %d, want %d", e.Got, e.Want)
}

// fnv1a64 is the section checksum (same construction as the sim context
// checksums).
func fnv1a64(data []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// ---- writer ----

type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)     { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16)   { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)   { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)   { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i32(v int)      { w.u32(uint32(int32(v))) }
func (w *wbuf) i64(v int64)    { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *wbuf) str(s string)   { w.u32(uint32(len(s))); w.b = append(w.b, s...) }
func (w *wbuf) blob(b []byte)  { w.u32(uint32(len(b))); w.b = append(w.b, b...) }
func (w *wbuf) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *wbuf) u32s(s []uint32) {
	w.u32(uint32(len(s)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 4*len(s))...)
	for i, v := range s {
		binary.LittleEndian.PutUint32(w.b[off+4*i:], v)
	}
}

func (w *wbuf) u64s(s []uint64) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.u64(v)
	}
}

func (w *wbuf) i64s(s []int64) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.i64(v)
	}
}

func (w *wbuf) ints(s []int) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.i32(v)
	}
}

// ---- reader ----

// rbuf reads one section payload with a sticky error. Decoding enforces
// canonical form: any deviation that would re-encode differently is a
// CorruptError, so Decode∘Encode is the identity on valid buffers and
// Encode∘Decode is the identity on accepted ones.
type rbuf struct {
	data []byte
	off  int
	sec  string
	err  error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = &CorruptError{Section: r.sec, Detail: fmt.Sprintf(format, args...)}
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = &TruncatedError{Section: r.sec, Offset: r.off}
		return nil
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *rbuf) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *rbuf) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *rbuf) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *rbuf) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *rbuf) i32() int         { return int(int32(r.u32())) }
func (r *rbuf) i64() int64       { return int64(r.u64()) }
func (r *rbuf) f64() float64     { return math.Float64frombits(r.u64()) }
func (r *rbuf) str() string      { return string(r.take(int(r.u32()))) }
func (r *rbuf) blob() []byte     { return append([]byte(nil), r.take(int(r.u32()))...) }
func (r *rbuf) boolean() bool {
	switch v := r.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("boolean byte %d", v)
		return false
	}
}

// count reads a collection length and bounds it by the bytes remaining
// (elem is the minimum encoded size of one element), so a hostile
// length can never drive a huge allocation.
func (r *rbuf) count(elem int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n*elem > len(r.data)-r.off {
		r.err = &TruncatedError{Section: r.sec, Offset: r.off}
		return 0
	}
	return n
}

func (r *rbuf) u32s() []uint32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	raw := r.take(4 * n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return out
}

func (r *rbuf) u64s() []uint64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

func (r *rbuf) i64s() []int64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

func (r *rbuf) ints() []int {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

// ---- per-type encoders/decoders ----

func putConfig(w *wbuf, c sim.Config) {
	w.i64(int64(c.NumSMs))
	w.i64(int64(c.MaxWarpsPerSM))
	w.i64(int64(c.VRegFileBytes))
	w.i64(int64(c.SRegFileBytes))
	w.i64(int64(c.LDSBytesPerSM))
	w.f64(c.ClockGHz)
	w.i64(int64(c.MemLatency))
	w.f64(c.MemBytesPerCycle)
	w.f64(c.CtxBytesPerCycle)
	w.f64(c.CtxRestoreFactor)
	w.i64(int64(c.LDSLatency))
	w.f64(c.LDSBytesPerCycle)
	w.i64(int64(c.GlobalMemBytes))
}

func getConfig(r *rbuf) sim.Config {
	return sim.Config{
		NumSMs:           int(r.i64()),
		MaxWarpsPerSM:    int(r.i64()),
		VRegFileBytes:    int(r.i64()),
		SRegFileBytes:    int(r.i64()),
		LDSBytesPerSM:    int(r.i64()),
		ClockGHz:         r.f64(),
		MemLatency:       int(r.i64()),
		MemBytesPerCycle: r.f64(),
		CtxBytesPerCycle: r.f64(),
		CtxRestoreFactor: r.f64(),
		LDSLatency:       int(r.i64()),
		LDSBytesPerCycle: r.f64(),
		GlobalMemBytes:   int(r.i64()),
	}
}

// putCtx encodes a SavedContext with all three slot maps in ascending
// key order — the one place the state tree holds maps, and the reason
// the repeat-encode test exists.
func putCtx(w *wbuf, c *sim.SavedContext) {
	if c == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	vkeys := make([]int32, 0, len(c.VSlots))
	for k := range c.VSlots {
		vkeys = append(vkeys, k)
	}
	sort.Slice(vkeys, func(i, j int) bool { return vkeys[i] < vkeys[j] })
	w.u32(uint32(len(vkeys)))
	for _, k := range vkeys {
		w.i32(int(k))
		w.u32s(c.VSlots[k])
	}
	putU64Map(w, c.SSlots)
	putU64Map(w, c.Specs)
	w.u32s(c.LDS)
	w.i32(c.PC)
	w.i64(c.DynCount)
	w.i32(c.Barriers)
}

func putU64Map(w *wbuf, m map[int32]uint64) {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.i32(int(k))
		w.u64(m[k])
	}
}

func getCtx(r *rbuf) *sim.SavedContext {
	if !r.boolean() {
		return nil
	}
	c := sim.NewSavedContext()
	n := r.count(8)
	prev := int64(math.MinInt64)
	for i := 0; i < n; i++ {
		k := int32(r.u32())
		if int64(k) <= prev {
			r.fail("vreg slot keys not strictly ascending")
			return nil
		}
		prev = int64(k)
		c.VSlots[k] = r.u32s()
	}
	c.SSlots = getU64Map(r)
	c.Specs = getU64Map(r)
	c.LDS = r.u32s()
	c.PC = r.i32()
	c.DynCount = r.i64()
	c.Barriers = r.i32()
	return c
}

func getU64Map(r *rbuf) map[int32]uint64 {
	m := make(map[int32]uint64)
	n := r.count(12)
	prev := int64(math.MinInt64)
	for i := 0; i < n; i++ {
		k := int32(r.u32())
		if int64(k) <= prev {
			r.fail("scalar slot keys not strictly ascending")
			return m
		}
		prev = int64(k)
		m[k] = r.u64()
	}
	return m
}

func putArch(w *wbuf, s *sim.ArchSnapshot) {
	if s == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	w.i32(s.PC)
	w.i64(s.DynCount)
	w.u64(s.Exec)
	w.u64(s.VCC)
	w.boolean(s.SCC)
	w.u64s(s.SRegs)
	w.u32s(s.LDSShare)
	w.u32(uint32(len(s.VRegs)))
	for _, row := range s.VRegs {
		w.u32s(row)
	}
}

func getArch(r *rbuf) *sim.ArchSnapshot {
	if !r.boolean() {
		return nil
	}
	s := &sim.ArchSnapshot{
		PC:       r.i32(),
		DynCount: r.i64(),
		Exec:     r.u64(),
		VCC:      r.u64(),
		SCC:      r.boolean(),
		SRegs:    r.u64s(),
		LDSShare: r.u32s(),
	}
	n := r.count(4)
	if n > 0 {
		s.VRegs = make([][]uint32, n)
		for i := range s.VRegs {
			s.VRegs[i] = r.u32s()
		}
	}
	return s
}

func putRec(w *wbuf, rec *sim.PreemptRecord) {
	if rec == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	w.i64(rec.SignalCycle)
	w.i64(rec.EnterCycle)
	w.i64(rec.RestoreDone)
	w.i64(rec.SavedCycle)
	w.i64(rec.ResumeStart)
	w.i64(rec.ResumeComplete)
	w.i64(rec.DynAtSignal)
	w.i32(rec.PCAtSignal)
	w.i64(rec.SavedBytes)
	w.i64(rec.RestoredBytes)
	w.u64(rec.SavedChecksum)
	w.boolean(rec.HasChecksum)
}

func getRec(r *rbuf) *sim.PreemptRecord {
	if !r.boolean() {
		return nil
	}
	return &sim.PreemptRecord{
		SignalCycle:    r.i64(),
		EnterCycle:     r.i64(),
		RestoreDone:    r.i64(),
		SavedCycle:     r.i64(),
		ResumeStart:    r.i64(),
		ResumeComplete: r.i64(),
		DynAtSignal:    r.i64(),
		PCAtSignal:     r.i32(),
		SavedBytes:     r.i64(),
		RestoredBytes:  r.i64(),
		SavedChecksum:  r.u64(),
		HasChecksum:    r.boolean(),
	}
}

// putRoutine encodes a warp's active routine stream via the canonical
// isa routine encoding.
func putRoutine(w *wbuf, instrs []isa.Instruction) {
	if len(instrs) == 0 {
		w.blob(nil)
		return
	}
	w.blob(isa.EncodeRoutine(instrs))
}

func getRoutine(r *rbuf) []isa.Instruction {
	raw := r.blob()
	if r.err != nil || len(raw) == 0 {
		return nil
	}
	instrs, err := isa.DecodeRoutine(raw)
	if err != nil {
		r.fail("routine: %v", err)
		return nil
	}
	// Reject non-canonical instruction bytes (e.g. nonzero operand
	// padding): they would re-encode differently.
	if canon := isa.EncodeRoutine(instrs); string(canon) != string(raw) {
		r.fail("non-canonical routine encoding")
		return nil
	}
	if len(instrs) == 0 {
		r.fail("empty routine with non-empty encoding")
		return nil
	}
	return instrs
}

func putRefs(w *wbuf, refs []sim.WarpRef) {
	w.u32(uint32(len(refs)))
	for _, ref := range refs {
		w.i32(ref.Launch)
		w.i32(ref.Warp)
	}
}

func getRefs(r *rbuf) []sim.WarpRef {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]sim.WarpRef, n)
	for i := range out {
		out[i] = sim.WarpRef{Launch: r.i32(), Warp: r.i32()}
	}
	return out
}

func putNames(w *wbuf, n trace.PhaseNames) {
	w.str(n.Drain)
	w.str(n.Save)
	w.str(n.Restore)
	w.str(n.Replay)
}

func getNames(r *rbuf) trace.PhaseNames {
	return trace.PhaseNames{Drain: r.str(), Save: r.str(), Restore: r.str(), Replay: r.str()}
}

// ---- sections ----

func putMeta(w *wbuf, st *sim.DeviceState) {
	putConfig(w, st.Cfg)
	w.i64(int64(st.Shards))
	w.i64(st.Now)
	w.i64(st.MemFree)
	w.i64(st.CtxFree)
	w.i64(st.Stats.Instructions)
	w.i64(st.Stats.KernelInstrs)
	w.i64(st.Stats.RoutineInstrs)
	w.i64(st.Stats.HookInstrs)
	w.i64(st.Stats.GlobalBytes)
	w.i64(st.Stats.LDSBytes)
	w.i64(st.Stats.Cycles)
}

func getMeta(r *rbuf, st *sim.DeviceState) {
	st.Cfg = getConfig(r)
	st.Shards = int(r.i64())
	st.Now = r.i64()
	st.MemFree = r.i64()
	st.CtxFree = r.i64()
	st.Stats = sim.DeviceStats{
		Instructions:  r.i64(),
		KernelInstrs:  r.i64(),
		RoutineInstrs: r.i64(),
		HookInstrs:    r.i64(),
		GlobalBytes:   r.i64(),
		LDSBytes:      r.i64(),
		Cycles:        r.i64(),
	}
}

func putLaunches(w *wbuf, st *sim.DeviceState) {
	w.u32(uint32(len(st.Launches)))
	for li := range st.Launches {
		ls := &st.Launches[li]
		w.i32(ls.Prog)
		w.i32(ls.NumBlocks)
		w.i32(ls.WarpsPerBlock)
		w.ints(ls.SMFilter)
		w.i32(ls.NextBlock)
		w.i32(ls.DoneWarps)
		w.u32(uint32(len(ls.Blocks)))
		for bi := range ls.Blocks {
			bs := &ls.Blocks[bi]
			w.u32s(bs.LDS)
			w.i32(bs.SM)
			w.i32(bs.Done)
		}
		w.u32(uint32(len(ls.Warps)))
		for wi := range ls.Warps {
			ws := &ls.Warps[wi]
			w.i32(ws.SM)
			w.i32(ws.LDSShareLo)
			w.i32(ws.LDSShareHi)
			w.i32(ws.PC)
			w.u32s(ws.VRegs)
			w.u64s(ws.SRegs)
			w.u64(ws.Exec)
			w.u64(ws.VCC)
			w.boolean(ws.SCC)
			w.u8(uint8(ws.State))
			w.i64(ws.ReadyAt)
			w.i64s(ws.RegReadyV)
			w.i64s(ws.RegReadyS)
			for _, v := range ws.RegReadySpec {
				w.i64(v)
			}
			w.i64(ws.DynCount)
			w.i32(ws.BarrierCount)
			w.boolean(ws.BarrierWait)
			w.u8(uint8(ws.Mode))
			putRoutine(w, ws.Routine)
			w.i32(ws.RoutinePC)
			w.u8(uint8(ws.SavedMode))
			w.i32(ws.HookDepth)
			putCtx(w, ws.HookSavedCtx)
			w.boolean(ws.SkipHookOnce)
			putCtx(w, ws.Ctx)
			putRec(w, ws.Rec)
			w.i32(ws.Episode)
			putArch(w, ws.Snapshot)
			w.i32(ws.CtxRetries)
			w.i64(ws.LastStoreDone)
			w.i64(ws.LastIssued)
			w.i64(ws.QSeq)
		}
	}
}

func getLaunches(r *rbuf, st *sim.DeviceState) {
	nl := r.count(24)
	for li := 0; li < nl; li++ {
		ls := sim.LaunchState{
			Prog:          r.i32(),
			NumBlocks:     r.i32(),
			WarpsPerBlock: r.i32(),
			SMFilter:      r.ints(),
			NextBlock:     r.i32(),
			DoneWarps:     r.i32(),
		}
		nb := r.count(12)
		for bi := 0; bi < nb; bi++ {
			ls.Blocks = append(ls.Blocks, sim.BlockState{
				LDS:  r.u32s(),
				SM:   r.i32(),
				Done: r.i32(),
			})
		}
		nw := r.count(64)
		for wi := 0; wi < nw; wi++ {
			ws := sim.WarpSlotState{
				SM:         r.i32(),
				LDSShareLo: r.i32(),
				LDSShareHi: r.i32(),
				PC:         r.i32(),
				VRegs:      r.u32s(),
				SRegs:      r.u64s(),
				Exec:       r.u64(),
				VCC:        r.u64(),
				SCC:        r.boolean(),
				State:      sim.WarpState(r.u8()),
				ReadyAt:    r.i64(),
				RegReadyV:  r.i64s(),
				RegReadyS:  r.i64s(),
			}
			for i := range ws.RegReadySpec {
				ws.RegReadySpec[i] = r.i64()
			}
			ws.DynCount = r.i64()
			ws.BarrierCount = r.i32()
			ws.BarrierWait = r.boolean()
			ws.Mode = sim.ExecMode(r.u8())
			ws.Routine = getRoutine(r)
			ws.RoutinePC = r.i32()
			ws.SavedMode = sim.ExecMode(r.u8())
			ws.HookDepth = r.i32()
			ws.HookSavedCtx = getCtx(r)
			ws.SkipHookOnce = r.boolean()
			ws.Ctx = getCtx(r)
			ws.Rec = getRec(r)
			ws.Episode = r.i32()
			ws.Snapshot = getArch(r)
			ws.CtxRetries = r.i32()
			ws.LastStoreDone = r.i64()
			ws.LastIssued = r.i64()
			ws.QSeq = r.i64()
			ls.Warps = append(ls.Warps, ws)
			if r.err != nil {
				return
			}
		}
		st.Launches = append(st.Launches, ls)
		if r.err != nil {
			return
		}
	}
}

func putSMs(w *wbuf, st *sim.DeviceState) {
	w.u32(uint32(len(st.SMs)))
	for si := range st.SMs {
		ss := &st.SMs[si]
		w.i64(ss.IssueFree)
		w.i64(ss.LDSFree)
		w.i64(ss.SeqGen)
		w.boolean(ss.Offline)
		w.i32(ss.Episode)
		putRefs(w, ss.Resident)
	}
}

func getSMs(r *rbuf, st *sim.DeviceState) {
	n := r.count(33)
	for i := 0; i < n; i++ {
		st.SMs = append(st.SMs, sim.SMState{
			IssueFree: r.i64(),
			LDSFree:   r.i64(),
			SeqGen:    r.i64(),
			Offline:   r.boolean(),
			Episode:   r.i32(),
			Resident:  getRefs(r),
		})
		if r.err != nil {
			return
		}
	}
}

func putEpisodes(w *wbuf, st *sim.DeviceState) {
	w.u32(uint32(len(st.Episodes)))
	for ei := range st.Episodes {
		es := &st.Episodes[ei]
		w.i32(es.SM)
		w.boolean(es.Pending)
		w.ints(es.Frozen)
		putRefs(w, es.Victims)
		w.i64(es.SignalCycle)
		w.i64(es.AllSavedCycle)
		w.i64(es.ResumeStart)
		w.i64(es.AllResumed)
		w.i32(es.Faults.TransientRetries)
		w.i32(es.Faults.CorruptedContexts)
		w.i32(es.Faults.ChecksumMismatches)
		w.i32(es.Faults.AbsorbedDupSignals)
		w.i32(es.EnteredCount)
		w.i32(es.SavedCount)
		w.i32(es.ResumedCount)
		w.i64(es.EnterLast)
		w.i64(es.RestoreLast)
		w.str(es.Tech)
		putNames(w, es.Names)
	}
}

func getEpisodes(r *rbuf, st *sim.DeviceState) {
	n := r.count(80)
	for i := 0; i < n; i++ {
		es := sim.EpisodeState{
			SM:      r.i32(),
			Pending: r.boolean(),
			Frozen:  r.ints(),
			Victims: getRefs(r),
		}
		es.SignalCycle = r.i64()
		es.AllSavedCycle = r.i64()
		es.ResumeStart = r.i64()
		es.AllResumed = r.i64()
		es.Faults = sim.EpisodeFaults{
			TransientRetries:   r.i32(),
			CorruptedContexts:  r.i32(),
			ChecksumMismatches: r.i32(),
			AbsorbedDupSignals: r.i32(),
		}
		es.EnteredCount = r.i32()
		es.SavedCount = r.i32()
		es.ResumedCount = r.i32()
		es.EnterLast = r.i64()
		es.RestoreLast = r.i64()
		es.Tech = r.str()
		es.Names = getNames(r)
		st.Episodes = append(st.Episodes, es)
		if r.err != nil {
			return
		}
	}
}

func putMem(w *wbuf, st *sim.DeviceState) {
	w.u32s(st.Mem)
}

func getMem(r *rbuf, st *sim.DeviceState) {
	st.Mem = r.u32s()
}

// ---- top level ----

// Encode serializes snap. The output is byte-stable: equal snapshots
// encode to equal bytes regardless of map layout or encode count.
func Encode(snap *Snapshot) []byte {
	st := snap.State
	w := &wbuf{b: make([]byte, 0, 4*len(st.Mem)+64<<10)}
	w.b = append(w.b, magic...)
	w.u16(version)
	w.u64(snap.Epoch)

	emit := func(id uint16, put func(*wbuf, *sim.DeviceState)) {
		var pw wbuf
		put(&pw, st)
		w.u16(id)
		w.u32(uint32(len(pw.b)))
		w.b = append(w.b, pw.b...)
		w.u64(fnv1a64(pw.b))
	}
	emit(secMeta, putMeta)
	emit(secProgs, func(w *wbuf, st *sim.DeviceState) {
		w.u32(uint32(len(st.Progs)))
		for _, p := range st.Progs {
			w.blob(p)
		}
	})
	emit(secLaunches, putLaunches)
	emit(secSMs, putSMs)
	emit(secEpisodes, putEpisodes)
	emit(secMem, putMem)
	return w.b
}

// Decode parses and fully verifies an Encode buffer: magic, version,
// every section present once in order, every checksum, canonical form,
// no trailing bytes. It does NOT run sim-level invariant checks — the
// caller (or ImportState) does that on the returned state.
func Decode(data []byte) (*Snapshot, error) {
	snap, _, err := decode(data, false)
	return snap, err
}

// DecodeSpeculative parses data like Decode but defers the trailing
// memory-section checksum: the returned validate function performs that
// comparison when called. A restore can therefore begin replaying
// against the fully-verified control state while the bulk memory image
// is still, logically, in flight — the PhoenixOS speculation — and run
// validate (plus the resume-integrity oracle) afterward to decide
// whether to keep the result or fall back to a synchronous restore.
func DecodeSpeculative(data []byte) (*Snapshot, func() error, error) {
	return decode(data, true)
}

func decode(data []byte, speculative bool) (*Snapshot, func() error, error) {
	hdr := &rbuf{data: data, sec: ""}
	if m := string(hdr.take(4)); hdr.err == nil && m != magic {
		return nil, nil, &CorruptError{Section: "header", Detail: fmt.Sprintf("bad magic %q", m)}
	}
	if v := hdr.u16(); hdr.err == nil && v != version {
		return nil, nil, &CorruptError{Section: "header", Detail: fmt.Sprintf("unsupported version %d", v)}
	}
	epoch := hdr.u64()
	if hdr.err != nil {
		return nil, nil, hdr.err
	}

	st := &sim.DeviceState{}
	validate := func() error { return nil }
	off := hdr.off
	order := []struct {
		id  uint16
		get func(*rbuf, *sim.DeviceState)
	}{
		{secMeta, getMeta},
		{secProgs, func(r *rbuf, st *sim.DeviceState) {
			n := r.count(4)
			for i := 0; i < n; i++ {
				st.Progs = append(st.Progs, r.blob())
			}
		}},
		{secLaunches, getLaunches},
		{secSMs, getSMs},
		{secEpisodes, getEpisodes},
		{secMem, getMem},
	}
	for _, sec := range order {
		name := secNames[sec.id]
		fr := &rbuf{data: data, off: off, sec: name}
		id := fr.u16()
		plen := int(fr.u32())
		payload := fr.take(plen)
		sum := fr.u64()
		if fr.err != nil {
			return nil, nil, fr.err
		}
		if id != sec.id {
			return nil, nil, &CorruptError{Section: name, Detail: fmt.Sprintf("section id %d out of order (want %d)", id, sec.id)}
		}
		if sec.id == secMem && speculative {
			// Defer the bulk checksum; everything structural still runs.
			memPayload, memSum := payload, sum
			validate = func() error {
				if fnv1a64(memPayload) != memSum {
					return &CorruptError{Section: name, Detail: "deferred checksum mismatch"}
				}
				return nil
			}
		} else if fnv1a64(payload) != sum {
			return nil, nil, &CorruptError{Section: name, Detail: "checksum mismatch"}
		}
		pr := &rbuf{data: payload, sec: name}
		sec.get(pr, st)
		if pr.err != nil {
			return nil, nil, pr.err
		}
		if pr.off != len(payload) {
			return nil, nil, &CorruptError{Section: name, Detail: fmt.Sprintf("%d trailing bytes", len(payload)-pr.off)}
		}
		off = fr.off
	}
	if off != len(data) {
		return nil, nil, &CorruptError{Section: "trailer", Detail: fmt.Sprintf("%d trailing bytes after last section", len(data)-off)}
	}
	return &Snapshot{Epoch: epoch, State: st}, validate, nil
}

// Capture is the checkpoint entry point: exports dev's state and wraps
// it with epoch.
func Capture(dev *sim.Device, epoch uint64) (*Snapshot, []byte) {
	st, _ := dev.ExportState()
	snap := &Snapshot{Epoch: epoch, State: st}
	return snap, Encode(snap)
}
