package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
)

const maxCycles = 500_000_000

func mustDevice(t testing.TB, cfg sim.Config) *sim.Device {
	t.Helper()
	d, err := sim.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustWorkload(t testing.TB, abbrev string) *kernels.Workload {
	t.Helper()
	wl, err := kernels.ByAbbrev(abbrev, kernels.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// goldenCycles runs wl undisturbed and returns its completion cycle and
// final memory.
func goldenCycles(t testing.TB, wl *kernels.Workload) (int64, []uint32) {
	t.Helper()
	d := mustDevice(t, sim.TestConfig())
	if _, err := wl.Launch(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	return d.Now(), append([]uint32(nil), d.Mem...)
}

// parked drives wl under kind to a fully-saved (parked) episode on
// SM 0, signalled halfway through the golden run.
func parked(t testing.TB, kind preempt.Kind, wl *kernels.Workload) (*sim.Device, *sim.Episode, preempt.Technique) {
	t.Helper()
	cycles, _ := goldenCycles(t, wl)
	tech, err := preempt.New(kind, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	d := mustDevice(t, sim.TestConfig())
	d.AttachRuntime(tech)
	if _, err := wl.Launch(d); err != nil {
		t.Fatal(err)
	}
	if err := d.RunToCycle(cycles/2, maxCycles); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, tech)
	if err != nil {
		t.Fatalf("%v/%s: preempt at half-run should find victims: %v", kind, wl.Abbrev, err)
	}
	if err := d.RunUntil(ep.Saved, maxCycles); err != nil {
		t.Fatal(err)
	}
	return d, ep, tech
}

// finishRestored resumes the snapshot's episode on a restored device
// and drains it.
func finishRestored(t testing.TB, res *Restored) {
	t.Helper()
	if len(res.Index.Episodes) != 1 {
		t.Fatalf("restored %d episodes, want 1", len(res.Index.Episodes))
	}
	if err := res.Device.Resume(res.Index.Episodes[0]); err != nil {
		t.Fatal(err)
	}
	if err := res.Device.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatEncodeByteStable is the satellite-1 guard: encoding the
// same state twice, and re-encoding a decoded state, must be
// byte-identical — any map-iteration order leaking into the stream
// breaks this immediately (SavedContext slot maps are the hot spot, so
// the parked episode below carries full context buffers).
func TestRepeatEncodeByteStable(t *testing.T) {
	for _, abbrev := range []string{"VA", "MS", "DOT"} {
		d, _, _ := parked(t, preempt.Baseline, mustWorkload(t, abbrev))
		snap, enc := Capture(d, 7)
		for i := 0; i < 3; i++ {
			if again := Encode(snap); !bytes.Equal(enc, again) {
				t.Fatalf("%s: encode %d differs from first encode", abbrev, i+2)
			}
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", abbrev, err)
		}
		if dec.Epoch != 7 {
			t.Fatalf("%s: epoch %d, want 7", abbrev, dec.Epoch)
		}
		if again := Encode(dec); !bytes.Equal(enc, again) {
			t.Fatalf("%s: encode∘decode∘encode differs", abbrev)
		}
		if err := dec.State.CheckInvariants(); err != nil {
			t.Fatalf("%s: decoded state: %v", abbrev, err)
		}
	}
}

// TestRestoreRoundTripTechniques: for every relocatable technique, a
// parked episode checkpoints, restores onto a fresh shell under a NEW
// technique instance, resumes there, and finishes with output identical
// to the undisturbed run — the device-level flashback analogue of the
// per-warp golden-equivalence property.
func TestRestoreRoundTripTechniques(t *testing.T) {
	for _, kind := range preempt.RelocatableKinds() {
		for _, abbrev := range []string{"VA", "MS"} {
			wl := mustWorkload(t, abbrev)
			_, golden := goldenCycles(t, wl)
			d, _, _ := parked(t, kind, wl)
			_, enc := Capture(d, 1)

			tech2, err := preempt.New(kind, wl.Prog)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Restore(nil, nil, enc, 1, tech2, wl.Prog)
			if err != nil {
				t.Fatalf("%v/%s: restore: %v", kind, abbrev, err)
			}
			finishRestored(t, res)
			if err := res.Validate(); err != nil {
				t.Fatalf("%v/%s: validate: %v", kind, abbrev, err)
			}
			if err := wl.Verify(res.Device); err != nil {
				t.Fatalf("%v/%s: verify after restore: %v", kind, abbrev, err)
			}
			if !bytes.Equal(memBytes(res.Device.Mem), memBytes(golden)) {
				t.Fatalf("%v/%s: restored memory differs from undisturbed run", kind, abbrev)
			}
		}
	}
}

func memBytes(mem []uint32) []byte {
	out := make([]byte, 0, len(mem)*4)
	for _, w := range mem {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

// TestSnapshotMidSave covers the mid-episode edge: the checkpoint lands
// while victims are still executing their preemption routines, and the
// restored device completes the save, resumes, and verifies.
func TestSnapshotMidSave(t *testing.T) {
	wl := mustWorkload(t, "MS")
	cycles, _ := goldenCycles(t, wl)
	tech, err := preempt.New(preempt.CTXBack, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	d := mustDevice(t, sim.TestConfig())
	d.AttachRuntime(tech)
	if _, err := wl.Launch(d); err != nil {
		t.Fatal(err)
	}
	if err := d.RunToCycle(cycles/2, maxCycles); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Preempt(0, tech); err != nil {
		t.Fatal(err)
	}
	// A handful of cycles into the save: warps sit mid preemption
	// routine (ModePreemptRoutine) with partial context buffers.
	if err := d.RunToCycle(d.Now()+40, maxCycles); err != nil {
		t.Fatal(err)
	}
	_, enc := Capture(d, 3)

	tech2, err := preempt.New(preempt.CTXBack, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Restore(nil, enc, enc, 3, tech2, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	ep := res.Index.Episodes[0]
	rd := res.Device
	if err := rd.RunUntil(ep.Saved, maxCycles); err != nil {
		t.Fatal(err)
	}
	if err := rd.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := rd.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := wl.Verify(rd); err != nil {
		t.Fatalf("verify after mid-save restore: %v", err)
	}
}

// TestSpeculativeRestoreFlow exercises the PhoenixOS speculation state
// machine end to end: a bit flip in the bulk memory section passes the
// speculative structural decode, replay runs, and the deferred
// validator is what catches the corruption — after which the sync path
// with the authoritative bytes recovers the job.
func TestSpeculativeRestoreFlow(t *testing.T) {
	wl := mustWorkload(t, "VA")
	d, _, _ := parked(t, preempt.Baseline, wl)
	_, enc := Capture(d, 5)

	// Flip one bit inside the memory payload (the last section; its
	// payload starts 14 bytes after the section tail begins... locate it
	// robustly by flipping a byte near the end, inside the payload,
	// before the trailing checksum).
	corrupt := append([]byte(nil), enc...)
	corrupt[len(corrupt)-16] ^= 0x10

	if _, err := Decode(corrupt); err == nil {
		t.Fatal("full decode accepted a corrupt memory section")
	}

	tech, err := preempt.New(preempt.Baseline, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Restore(nil, corrupt, enc, 5, tech, wl.Prog)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !res.Outcome.Speculative {
		t.Fatal("corrupt memory section should still restore speculatively")
	}
	finishRestored(t, res)
	if err := res.Validate(); err == nil {
		t.Fatal("deferred validator missed the memory corruption")
	}

	// The caller's mandated next move: synchronous restore from the
	// authoritative image. It must verify clean.
	tech2, err := preempt.New(preempt.Baseline, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Restore(nil, nil, enc, 5, tech2, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome.Speculative || res2.Outcome.SyncFallback {
		t.Fatalf("sync-only restore misreported outcome %+v", res2.Outcome)
	}
	finishRestored(t, res2)
	if err := wl.Verify(res2.Device); err != nil {
		t.Fatalf("verify after sync recovery: %v", err)
	}
}

// TestRestoreFallbacks pins the fallback ladder for each snapshot fault
// class: truncation and staleness kill the speculative path outright
// and the sync path recovers; corrupting both images leaves nothing to
// restore and the caller degrades to a from-scratch rerun.
func TestRestoreFallbacks(t *testing.T) {
	wl := mustWorkload(t, "VA")
	d, _, _ := parked(t, preempt.Live, wl)
	snap, enc := Capture(d, 9)

	newTech := func() preempt.Technique {
		tech, err := preempt.New(preempt.Live, wl.Prog)
		if err != nil {
			t.Fatal(err)
		}
		return tech
	}

	t.Run("truncated", func(t *testing.T) {
		res, err := Restore(nil, enc[:len(enc)/3], enc, 9, newTech(), wl.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Outcome.SyncFallback || res.Outcome.SpecError == "" {
			t.Fatalf("outcome %+v, want sync fallback with recorded error", res.Outcome)
		}
		finishRestored(t, res)
		if err := wl.Verify(res.Device); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("stale-epoch", func(t *testing.T) {
		stale := Encode(&Snapshot{Epoch: 8, State: snap.State})
		res, err := Restore(nil, stale, enc, 9, newTech(), wl.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Outcome.SyncFallback || !strings.Contains(res.Outcome.SpecError, "stale") {
			t.Fatalf("outcome %+v, want stale-epoch fallback", res.Outcome)
		}
		finishRestored(t, res)
		if err := wl.Verify(res.Device); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("both-corrupt", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[30] ^= 0x40 // control section: both decode paths must reject
		if _, err := Restore(nil, bad, bad, 9, newTech(), wl.Prog); err == nil {
			t.Fatal("restore accepted a doubly-corrupt snapshot")
		}
	})
}

// TestWarmPoolEquivalence: warm and cold restores differ only in the
// reported cost split, never in simulation outcome — the warm-pool
// on/off byte-diff the Makefile snap-diff target automates.
func TestWarmPoolEquivalence(t *testing.T) {
	wl := mustWorkload(t, "MS")
	d, _, _ := parked(t, preempt.CTXBack, wl)
	_, enc := Capture(d, 2)

	run := func(pool *Pool) (*Restored, []uint32) {
		tech, err := preempt.New(preempt.CTXBack, wl.Prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Restore(pool, enc, enc, 2, tech, wl.Prog)
		if err != nil {
			t.Fatal(err)
		}
		finishRestored(t, res)
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		return res, append([]uint32(nil), res.Device.Mem...)
	}

	pool, err := NewPool(sim.TestConfig(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Warm() != 2 {
		t.Fatalf("pool warm = %d, want 2", pool.Warm())
	}
	warmRes, warmMem := run(pool)
	if pool.Warm() != 1 {
		t.Fatalf("pool warm = %d after one Get, want 1", pool.Warm())
	}
	coldRes, coldMem := run(nil)

	if !warmRes.Outcome.Warm || coldRes.Outcome.Warm {
		t.Fatalf("warm flags: warm=%v cold=%v", warmRes.Outcome.Warm, coldRes.Outcome.Warm)
	}
	if warmRes.Outcome.SetupCycles != 0 {
		t.Fatalf("warm restore charged %d setup cycles", warmRes.Outcome.SetupCycles)
	}
	if coldRes.Outcome.SetupCycles != ColdSetupCycles(sim.TestConfig()) {
		t.Fatalf("cold restore charged %d setup cycles, want %d",
			coldRes.Outcome.SetupCycles, ColdSetupCycles(sim.TestConfig()))
	}
	if warmRes.Outcome.TransferCycles != coldRes.Outcome.TransferCycles {
		t.Fatal("transfer cycles differ between warm and cold")
	}
	if !bytes.Equal(memBytes(warmMem), memBytes(coldMem)) {
		t.Fatal("warm and cold restores produced different memory")
	}
	if warmRes.Device.Now() != coldRes.Device.Now() || warmRes.Device.Stats != coldRes.Device.Stats {
		t.Fatal("warm and cold restores diverged in clock or stats")
	}
}

// TestRestorePoolMismatch: a pool built for a different device model or
// shard width must refuse the import cleanly on both paths.
func TestRestorePoolMismatch(t *testing.T) {
	wl := mustWorkload(t, "VA")
	d, _, _ := parked(t, preempt.Baseline, wl)
	_, enc := Capture(d, 1)
	tech, err := preempt.New(preempt.Baseline, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}

	big, err := NewPool(sim.DefaultConfig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(big, enc, enc, 1, tech, wl.Prog); err == nil ||
		!strings.Contains(err.Error(), "config mismatch") {
		t.Fatalf("config-mismatch restore: %v", err)
	}

	sharded, err := NewPool(sim.TestConfig(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(sharded, enc, enc, 1, tech, wl.Prog); err == nil ||
		!strings.Contains(err.Error(), "shard width mismatch") {
		t.Fatalf("shard-mismatch restore: %v", err)
	}
}

// TestSnapshotPrograms: the embedded program images decode back into
// importable programs (the cross-host restore path).
func TestSnapshotPrograms(t *testing.T) {
	wl := mustWorkload(t, "VA")
	d, _, _ := parked(t, preempt.Baseline, wl)
	snap, enc := Capture(d, 4)
	progs, err := snap.Programs()
	if err != nil {
		t.Fatal(err)
	}
	tech, err := preempt.New(preempt.Baseline, wl.Prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Restore(nil, nil, enc, 4, tech, progs...)
	if err != nil {
		t.Fatalf("restore with decoded programs: %v", err)
	}
	finishRestored(t, res)
	if err := wl.Verify(res.Device); err != nil {
		t.Fatal(err)
	}
}
