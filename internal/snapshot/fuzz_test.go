package snapshot

import (
	"bytes"
	"testing"

	"ctxback/internal/gen"
	"ctxback/internal/preempt"
)

// FuzzSnapshotRoundTrip is the satellite-3 fuzz target: any buffer the
// decoder accepts must re-encode byte-identically (the canonical-form
// property every downstream checksum and diff depends on), survive
// CheckInvariants without panicking, and decode identically a second
// time. Seeds cover an empty state, a mid-run checkpoint, and a parked
// episode with full context buffers.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte("CSNP"))
	{
		wl := mustWorkload(f, "VA")
		d, _, _ := parked(f, preempt.Baseline, wl)
		_, enc := Capture(d, 1)
		f.Add(enc)
		trunc := enc[:len(enc)/2]
		f.Add(trunc)
		flip := append([]byte(nil), enc...)
		flip[len(flip)/2] ^= 0x20
		f.Add(flip)
	}
	{
		wl := mustWorkload(f, "MS")
		d, _, _ := parked(f, preempt.CTXBack, wl)
		_, enc := Capture(d, 99)
		f.Add(enc)
	}
	// Generated-corpus seeds: captures of parked generated programs
	// reach section shapes the hand-written kernels don't (LDS shares
	// under divergence, atomics in flight, deep loop contexts). The
	// generator seeds are ones whose kernels historically exposed
	// technique bugs, so their parked states are the gnarliest known.
	for _, genSeed := range []uint64{2, 6, 19} {
		wl := gen.Generate(genSeed).Workload()
		d, _, _ := parked(f, preempt.CTXBack, wl)
		_, enc := Capture(d, 7)
		f.Add(enc)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			// Rejected input: the speculative decoder may accept it (it
			// skips only the memory checksum) but must never panic.
			if s, validate, specErr := DecodeSpeculative(data); specErr == nil {
				_ = s.State.CheckInvariants()
				_ = validate()
			}
			return
		}
		again := Encode(snap)
		if !bytes.Equal(data, again) {
			t.Fatalf("decode∘encode not identity: %d bytes in, %d out", len(data), len(again))
		}
		// Accepted states must be safe to interrogate (never panic);
		// invariant failures are fine — ImportState refuses those.
		_ = snap.State.CheckInvariants()
		snap2, err := Decode(data)
		if err != nil {
			t.Fatalf("second decode of accepted input failed: %v", err)
		}
		if !bytes.Equal(Encode(snap2), again) {
			t.Fatal("decode is not deterministic")
		}
	})
}
