package sched

import (
	"fmt"
	"strings"

	"ctxback/internal/preempt"
)

// The serving hypervisor re-arbitrates per-tenant SM shares from
// measured demand on a fixed cadence and rebalances devices by
// migrating checkpointed jobs through the warm snapshot pool. Both
// moves run serially at global barriers on merged fleet state, so every
// decision lands in the log byte-identically at any worker count.

// HypervisorConfig configures the online re-arbitration loop.
type HypervisorConfig struct {
	// Every is the re-arbitration cadence in cycles (rounded up to the
	// admission window). 0 disables the hypervisor: no quotas, no
	// migrations.
	Every int64
	// MigrateThreshold triggers a rebalancing migration when the most
	// loaded device's outstanding jobs exceed the least loaded's by at
	// least this many. 0 defaults to 8; negative disables migration.
	MigrateThreshold int
	// StarveWindows is how many consecutive zero-share re-arbitrations a
	// tenant with demand endures before the hypervisor forcibly grants
	// it one SM. 0 defaults to 2.
	StarveWindows int
}

func (h *HypervisorConfig) enabled() bool { return h.Every > 0 }

func (h *HypervisorConfig) defaults() {
	if h.MigrateThreshold == 0 {
		h.MigrateThreshold = 8
	}
	if h.StarveWindows <= 0 {
		h.StarveWindows = 2
	}
}

// hypervisor is the serve loop's arbitration state.
type hypervisor struct {
	cfg    HypervisorConfig
	shares []int // fleet-wide SMs granted per tenant at the last pass
	starve []int // consecutive zero-share passes with pending demand

	rearbs       int
	migrations   int
	starveBoosts int
	epoch        uint64
}

func newHypervisor(cfg HypervisorConfig, tenants int) *hypervisor {
	cfg.defaults()
	return &hypervisor{cfg: cfg,
		shares: make([]int, tenants),
		starve: make([]int, tenants),
	}
}

// rearbitrate recomputes fleet-wide tenant SM shares proportional to
// demand (largest-remainder apportionment, ties to the lower tenant
// id), applies a starvation floor, and writes per-device quotas. demand
// counts a tenant's runnable appetite: deferred + admitted-incomplete
// jobs. Returns true when the share vector changed.
func (h *hypervisor) rearbitrate(sv *server, now int64) bool {
	h.rearbs++
	tenants := len(h.shares)
	demand := make([]int64, tenants)
	var total int64
	for t := 0; t < tenants; t++ {
		d := int64(sv.admit.tenantBacklog(t))
		for _, dev := range sv.devices {
			if dev.retired {
				continue
			}
			d += int64(dev.incomplete[t])
		}
		demand[t] = d
		total += d
	}

	alive := 0
	for _, dev := range sv.devices {
		if !dev.retired {
			alive++
		}
	}
	totalSMs := alive * sv.cfg.Sched.Dev.NumSMs

	next := make([]int, tenants)
	if total > 0 && totalSMs > 0 {
		// Largest-remainder apportionment of totalSMs over demand.
		granted := 0
		rem := make([]int64, tenants)
		for t := 0; t < tenants; t++ {
			g := int64(totalSMs) * demand[t]
			next[t] = int(g / total)
			rem[t] = g % total
			granted += next[t]
		}
		for granted < totalSMs {
			best := -1
			for t := 0; t < tenants; t++ {
				if demand[t] == 0 {
					continue
				}
				if best < 0 || rem[t] > rem[best] {
					best = t
				}
			}
			if best < 0 {
				break
			}
			next[best]++
			rem[best] = -1
			granted++
		}
		// Starvation floor: a tenant with demand shut out for
		// StarveWindows straight passes takes one SM from the fattest
		// share.
		for t := 0; t < tenants; t++ {
			if demand[t] == 0 || next[t] > 0 {
				continue
			}
			if h.starve[t] < h.cfg.StarveWindows {
				continue
			}
			donor := -1
			for u := 0; u < tenants; u++ {
				if next[u] > 1 && (donor < 0 || next[u] > next[donor]) {
					donor = u
				}
			}
			if donor < 0 {
				continue
			}
			next[donor]--
			next[t]++
			h.starveBoosts++
			sv.log(now, "starve-boost", t, -1,
				fmt.Sprintf("+1 SM from t%d after %d dry passes", donor, h.starve[t]))
		}
	}
	for t := 0; t < tenants; t++ {
		if demand[t] > 0 && next[t] == 0 {
			h.starve[t]++
		} else {
			h.starve[t] = 0
		}
	}

	changed := false
	for t := range next {
		if next[t] != h.shares[t] {
			changed = true
			break
		}
	}
	h.shares = next

	// Per-device quota: an even ceiling split of each tenant's share.
	// The quota is a cap, not a reservation — ceilings may oversubscribe
	// a device, which keeps the schedule work-conserving.
	for _, dev := range sv.devices {
		if dev.retired {
			continue
		}
		q := make(map[int]int, tenants)
		for t := 0; t < tenants; t++ {
			if next[t] > 0 {
				q[t] = (next[t] + alive - 1) / alive
			}
		}
		dev.s.quota = q
	}

	if changed {
		var b strings.Builder
		for t, s := range next {
			if t > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "t%d=%d", t, s)
		}
		sv.log(now, "shares", -1, -1, b.String())
	}
	return changed
}

// maybeMigrate performs at most one rebalancing move per pass: the most
// loaded device is checkpointed, its in-flight jobs restore onto a warm
// shell (a fresh device id), and its not-yet-launched backlog re-enters
// the admission queues to be re-routed by load. The donor retires. The
// restored device is excluded from routing until the modeled restore
// latency (setup + transfer) has elapsed.
func (h *hypervisor) maybeMigrate(sv *server, now int64) error {
	if h.cfg.MigrateThreshold < 0 || !preempt.Relocatable(sv.kind) {
		return nil
	}
	var donor, lightest *serveDevice
	alive := 0
	for _, dev := range sv.devices {
		if dev.retired {
			continue
		}
		alive++
		if donor == nil || dev.outstanding() > donor.outstanding() {
			donor = dev
		}
		if lightest == nil || dev.outstanding() < lightest.outstanding() {
			lightest = dev
		}
	}
	if alive < 2 || donor == nil ||
		donor.outstanding()-lightest.outstanding() < h.cfg.MigrateThreshold {
		return nil
	}
	// The move only helps if the donor has unlaunched work to
	// redistribute (launched jobs carry with the checkpoint).
	requeueable := 0
	for _, rj := range donor.s.jobs {
		if rj.launch == nil && rj.complete == 0 {
			requeueable++
		}
	}
	if requeueable == 0 {
		return nil
	}

	h.epoch++
	c, err := donor.s.checkpoint(h.epoch)
	if err != nil {
		return fmt.Errorf("sched: migration checkpoint of device %d: %w", donor.id, err)
	}
	rs, res, err := restoreFrom(c, donor.s.cfg, sv.kind, donor.s.jobs, sv.pool)
	if err != nil {
		return fmt.Errorf("sched: migration restore of device %d: %w", donor.id, err)
	}
	if err := res.Validate(); err != nil {
		return fmt.Errorf("sched: migrated device %d failed validation: %w", donor.id, err)
	}
	rs.quota = donor.s.quota

	nd := &serveDevice{
		id:           len(sv.devices),
		s:            rs,
		slabFree:     append([]bool(nil), donor.slabFree...),
		slabOf:       make(map[int]int, len(donor.slabOf)),
		incomplete:   append([]int(nil), donor.incomplete...),
		blockedUntil: now + res.Outcome.RestoreCycles(),
	}
	for id, slab := range donor.slabOf {
		nd.slabOf[id] = slab
	}
	sv.hookDevice(nd)

	// Jobs without a checkpointed launch re-enter admission: free their
	// slabs on the new device and queue them token-paid at their
	// original arrival order.
	requeued := 0
	for i, jm := range c.meta.jobs {
		if jm.launchIdx >= 0 || jm.complete != 0 {
			// Launched jobs carry with the image; completed jobs were
			// pruned from it and owe nothing.
			continue
		}
		rj := donor.s.jobs[i]
		nd.freeSlab(rj.job.ID)
		nd.incomplete[rj.job.Tenant]--
		sv.admit.requeue(rj.job)
		requeued++
	}

	donor.retired = true
	sv.devices = append(sv.devices, nd)
	h.migrations++
	warm := "cold"
	if res.Outcome.Warm {
		warm = "warm"
	}
	sv.log(now, "migrate", -1, nd.id,
		fmt.Sprintf("from dev%d: carry=%d requeue=%d %s setup=%d transfer=%d",
			donor.id, len(rs.jobs), requeued, warm,
			res.Outcome.SetupCycles, res.Outcome.TransferCycles))
	if sv.pool != nil {
		// Top the warm pool back up so the next migration can also land
		// on a prepared shell; a refill failure only means a cold shell
		// later, not a lost move.
		_ = sv.pool.Refill(1)
	}
	return nil
}
