package sched

import (
	"fmt"
	"sort"
	"strings"

	"ctxback/internal/preempt"
	"ctxback/internal/trace"
)

// JobStats is one job's measured schedule outcome.
type JobStats struct {
	Job
	Start    int64 // first placement cycle
	Complete int64
	// Preemptions counts how many times the job was swapped out.
	Preemptions int
}

// QueueCycles is the time from arrival until the job first ran.
func (j JobStats) QueueCycles() int64 { return j.Start - j.Arrival }

// TurnaroundCycles is the time from arrival until completion.
func (j JobStats) TurnaroundCycles() int64 { return j.Complete - j.Arrival }

// TenantStats aggregates one tenant's jobs.
type TenantStats struct {
	Tenant      int
	Jobs        int
	Preemptions int64
	// MeanQueueCycles is the average queueing delay (round-half-up).
	MeanQueueCycles int64
	// P50/P95/P99 are exact nearest-rank turnaround percentiles over the
	// tenant's jobs.
	P50, P95, P99 int64
}

// Result is the outcome of one scheduled run.
type Result struct {
	Kind preempt.Kind
	Jobs []JobStats // arrival order
	// Tenants is indexed densely by the tenant ids present, ascending.
	Tenants []TenantStats
	// Makespan is the cycle the last job completed.
	Makespan         int64
	TotalPreemptions int64
	// P50/P95/P99 are overall turnaround percentiles.
	P50, P95, P99 int64
	// Events is the deterministic decision log.
	Events []Event
}

// percentile returns the exact nearest-rank q-percentile of sorted
// samples (q in [0,1]). The rank comes from trace.NearestRank, which
// computes ceil(q*n) exactly; the float ceiling used before drifted one
// rank high at the (q, n) pairs where q*n is an integer but the float
// product rounds above it — 0.99 at n=100 reported the maximum instead
// of the 99th rank, inflating every affected tail percentile.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[trace.NearestRank(int64(len(sorted)), q)-1]
}

func divRound(sum, n int64) int64 { return (sum + n/2) / n }

// result folds the scheduler's per-job state into a Result and exports
// it to the configured metrics registry.
func (s *scheduler) result() (*Result, error) {
	res := &Result{Kind: s.kind, Events: s.events}
	var all []int64
	for _, j := range s.jobs {
		st := JobStats{Job: j.job, Start: j.start, Complete: j.complete, Preemptions: j.preemptions}
		res.Jobs = append(res.Jobs, st)
		res.TotalPreemptions += int64(j.preemptions)
		if j.complete > res.Makespan {
			res.Makespan = j.complete
		}
		all = append(all, st.TurnaroundCycles())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50, res.P95, res.P99 = percentile(all, 0.50), percentile(all, 0.95), percentile(all, 0.99)
	res.Tenants = tenantStats(res.Jobs)
	s.export(res)
	return res, nil
}

// tenantStats aggregates per-tenant statistics over a run's jobs,
// indexed densely by the tenant ids present, ascending. Shared by the
// single-device result and the fleet failover result.
func tenantStats(jobs []JobStats) []TenantStats {
	byTenant := map[int][]JobStats{}
	for _, j := range jobs {
		byTenant[j.Tenant] = append(byTenant[j.Tenant], j)
	}
	tenants := make([]int, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)
	out := make([]TenantStats, 0, len(tenants))
	for _, t := range tenants {
		js := byTenant[t]
		ts := TenantStats{Tenant: t, Jobs: len(js)}
		var queueSum int64
		turns := make([]int64, 0, len(js))
		for _, j := range js {
			ts.Preemptions += int64(j.Preemptions)
			queueSum += j.QueueCycles()
			turns = append(turns, j.TurnaroundCycles())
		}
		ts.MeanQueueCycles = divRound(queueSum, int64(len(js)))
		sort.Slice(turns, func(i, j int) bool { return turns[i] < turns[j] })
		ts.P50, ts.P95, ts.P99 = percentile(turns, 0.50), percentile(turns, 0.95), percentile(turns, 0.99)
		out = append(out, ts)
	}
	return out
}

// export publishes the run's statistics into the metrics registry.
// Counter and histogram names carry the tenant id, not the technique:
// one registry per run keeps techniques comparable side by side.
func (s *scheduler) export(res *Result) {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter("sched.jobs").Add(int64(len(res.Jobs)))
	m.Counter("sched.preemptions").Add(res.TotalPreemptions)
	turnAll := m.Histogram("sched.turnaround_cycles", trace.DefaultCycleBuckets)
	for _, j := range res.Jobs {
		turnAll.Observe(j.TurnaroundCycles())
		tn := fmt.Sprintf("sched.tenant%d.", j.Tenant)
		m.Counter(tn + "preemptions").Add(int64(j.Preemptions))
		m.Histogram(tn+"turnaround_cycles", trace.DefaultCycleBuckets).Observe(j.TurnaroundCycles())
		m.Histogram(tn+"queueing_cycles", trace.DefaultCycleBuckets).Observe(j.QueueCycles())
	}
}

// Render formats the result as a fixed-width report: the technique
// headline, per-tenant aggregates, then the per-job table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: makespan=%d cycles, preemptions=%d, turnaround p50/p95/p99 = %d/%d/%d\n",
		r.Kind, r.Makespan, r.TotalPreemptions, r.P50, r.P95, r.P99)
	fmt.Fprintf(&b, "  %-8s %5s %11s %11s %12s %12s %12s\n",
		"tenant", "jobs", "preempts", "mean-queue", "p50-turn", "p95-turn", "p99-turn")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  %-8d %5d %11d %11d %12d %12d %12d\n",
			t.Tenant, t.Jobs, t.Preemptions, t.MeanQueueCycles, t.P50, t.P95, t.P99)
	}
	fmt.Fprintf(&b, "  %-4s %-6s %-7s %4s %10s %10s %10s %10s %9s\n",
		"job", "kernel", "tenant", "prio", "arrival", "start", "complete", "turnaround", "preempts")
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "  %-4d %-6s %-7d %4d %10d %10d %10d %10d %9d\n",
			j.ID, j.Kernel, j.Tenant, j.Priority, j.Arrival, j.Start, j.Complete,
			j.TurnaroundCycles(), j.Preemptions)
	}
	return b.String()
}

// EventLog renders the decision log, one event per line.
func (r *Result) EventLog() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
