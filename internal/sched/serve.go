package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"ctxback/internal/isa"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/snapshot"
	"ctxback/internal/trace"
)

// Serve mode grows the scheduler into a long-running multi-device
// serving system: an open-loop arrival trace flows through admission
// control (admit.go) onto a fleet of devices behind deterministic
// load-aware routing, while the hypervisor (hypervisor.go) re-arbitrates
// per-tenant SM shares and rebalances devices through checkpoint +
// warm-pool restore. Devices advance independently between global
// admission barriers — the parallel axis — and every cross-device
// decision runs serially at a barrier on state merged in device-id
// order, so the decision log and SLO tables are byte-identical at every
// worker and shard count.

// ServeConfig configures a serving run.
type ServeConfig struct {
	// Sched carries the device model, kernel scale, verify and metrics
	// settings. SlabBytes must divide the usable device memory into the
	// per-device slab pool (0 picks SlabsPerDevice even slabs).
	Sched Config
	// Devices is the initial fleet size (migration retires and adds
	// device ids, keeping the alive count constant). Default 2.
	Devices int
	// Workers caps how many devices advance concurrently between
	// barriers; 0/1 is serial. Output is identical at every setting.
	Workers int
	// AdmitEvery is the admission/routing barrier cadence in cycles.
	// Default 2000.
	AdmitEvery int64
	// SlabsPerDevice bounds each device's outstanding jobs (a job holds
	// one memory slab from admission to completion). Default 8 — the
	// slab pool divides device memory, and filled-SM workloads overflow
	// slabs much under a few megabytes.
	SlabsPerDevice int
	// WarmPool pre-builds this many warm device shells for migration
	// restores. 0 restores cold.
	WarmPool int
	// ReportEvery is the decision-log aggregate cadence; 0 defaults to
	// Hypervisor.Every, else 16 admission windows.
	ReportEvery int64

	// DecisionSink, when non-nil, receives each decision-log line
	// (rendered with ServeEvent.String) the moment it is emitted,
	// instead of the run accumulating events in memory. With a sink set,
	// ServeResult.Events stays empty; callers that need the log after
	// the tables (the schedsim golden does) spool the sink to a file and
	// replay it. The caller flushes the sink.
	DecisionSink *trace.LineSink

	Admit      AdmitConfig
	Hypervisor HypervisorConfig
}

// ServeEvent is one line of the serving decision log.
type ServeEvent struct {
	Cycle  int64
	What   string // window, shed, shares, starve-boost, migrate
	Tenant int    // -1 when fleet-scoped
	Device int    // -1 when not device-bound
	Detail string
}

func (e ServeEvent) String() string {
	return fmt.Sprintf("%10d %-13s t=%-3d dev=%-3d %s", e.Cycle, e.What, e.Tenant, e.Device, e.Detail)
}

// TenantSLO is one tenant's service-level summary.
type TenantSLO struct {
	Tenant    int
	Arrived   int
	Admitted  int
	Shed      int
	Completed int
	// ShedPerMille is Shed*1000/Arrived (0 when nothing arrived).
	ShedPerMille int64
	Preemptions  int64
	// MeanQueueCycles averages arrival -> first placement over completed
	// jobs (admission deferral included).
	MeanQueueCycles int64
	// P50/P95/P99 are exact nearest-rank turnaround percentiles over
	// completed jobs.
	P50, P95, P99 int64
}

// ServeResult is a serving run's deterministic outcome.
type ServeResult struct {
	Kind     preempt.Kind
	Duration int64 // final barrier cycle
	Makespan int64 // last completion cycle

	Arrived, Admitted, Shed, Completed int
	TotalPreemptions                   int64
	Rearbitrations, Migrations         int
	StarveBoosts                       int

	P50, P95, P99 int64
	Tenants       []TenantSLO

	// PreemptionJain and ThroughputJain are Jain fairness indices over
	// per-tenant preemptions-per-completed-job and completed counts.
	PreemptionJain, ThroughputJain float64

	Events []ServeEvent
}

// serveDevice wraps one scheduler with the serving layer's host-side
// state: the slab pool bounding its outstanding jobs, per-tenant
// admitted-incomplete counts, and the routing block after a migration
// restore.
type serveDevice struct {
	id      int
	s       *scheduler
	retired bool
	done    bool

	slabFree   []bool      // index -> free
	slabOf     map[int]int // jobID -> slab index
	incomplete []int       // per tenant, admitted minus completed

	blockedUntil int64 // routing exclusion after a migration restore

	// completion buffer, filled inside the device's window advance
	// (goroutine-local), drained at the barrier in device-id order.
	completedWin []*runJob
	verifyErr    error
}

func (d *serveDevice) outstanding() int { return len(d.s.jobs) - d.s.nDone }

func (d *serveDevice) freeSlabs() int {
	n := 0
	for _, f := range d.slabFree {
		if f {
			n++
		}
	}
	return n
}

// allocSlab takes the lowest free slab index.
func (d *serveDevice) allocSlab(jobID int) (int, bool) {
	for i, f := range d.slabFree {
		if f {
			d.slabFree[i] = false
			d.slabOf[jobID] = i
			return i, true
		}
	}
	return 0, false
}

func (d *serveDevice) freeSlab(jobID int) {
	if i, ok := d.slabOf[jobID]; ok {
		d.slabFree[i] = true
		delete(d.slabOf, jobID)
	}
}

// server is the serving run's whole state.
type server struct {
	cfg     ServeConfig
	kind    preempt.Kind
	tenants int

	devices []*serveDevice
	admit   *admitter
	hyper   *hypervisor
	pool    *snapshot.Pool

	blocks map[string]int // abbrev -> occupancy-filled NumBlocks

	// wlCache reuses the immutable part of an admission — the built
	// workload with its host inputs, golden outputs and program — per
	// (kernel, slab). See prepared() for why reuse is sound.
	wlCache map[wlKey]*kernels.Workload

	trace   []Job // (arrival, ID) order
	nextArr int

	events []ServeEvent

	// per-tenant accounting
	arrived     []int
	completed   []int
	preemptions []int64
	queueSum    []int64
	turnarounds [][]int64

	makespan int64
	duration int64
}

func (sv *server) log(cycle int64, what string, tenant, device int, detail string) {
	e := ServeEvent{Cycle: cycle, What: what, Tenant: tenant, Device: device, Detail: detail}
	if sv.cfg.DecisionSink != nil {
		// Streaming mode: render through the same formatter the
		// in-memory path uses and hand the line off; nothing accumulates.
		sv.cfg.DecisionSink.WriteLine(e.String())
		return
	}
	sv.events = append(sv.events, e)
}

// hookDevice wires a device's completion observer: copy the outcome
// host-side, verify while the slab is still intact, release the slab.
// Runs inside the device's window advance — it must touch only this
// device's state.
func (sv *server) hookDevice(dev *serveDevice) {
	verify := sv.cfg.Sched.Verify
	dev.s.onComplete = func(rj *runJob) {
		if verify && dev.verifyErr == nil {
			if err := rj.wl.Verify(dev.s.d); err != nil {
				dev.verifyErr = fmt.Errorf("job %d (%s, tenant %d) on device %d: output corrupt: %w",
					rj.job.ID, rj.job.Kernel, rj.job.Tenant, dev.id, err)
			}
		}
		dev.freeSlab(rj.job.ID)
		dev.incomplete[rj.job.Tenant]--
		dev.completedWin = append(dev.completedWin, rj)
	}
}

// newBareScheduler builds a scheduler with an empty admission list: the
// serving layer admits jobs one at a time as the front door releases
// them.
func newBareScheduler(cfg Config, kind preempt.Kind) (*scheduler, error) {
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	if cfg.SlabBytes <= 0 {
		return nil, errors.New("sched: bare scheduler needs explicit SlabBytes")
	}
	d, err := sim.NewDevice(cfg.Dev)
	if err != nil {
		return nil, err
	}
	if cfg.Shards != 0 {
		d.SetShards(cfg.Shards)
	}
	s := &scheduler{cfg: cfg, d: d, mux: newMux(kind), kind: kind,
		progSeen: make(map[*isa.Program]bool)}
	d.AttachRuntime(s.mux)
	for i := 0; i < cfg.Dev.NumSMs; i++ {
		s.slots = append(s.slots, &smSlot{id: i, state: smIdle})
	}
	return s, nil
}

// admitPrepared inserts a job with an already-built workload at cycle
// at. A fresh technique instance replaces any previous registration for
// the program: slab exclusivity guarantees the previous same-program
// job has completed, and per-job techniques keep warp-keyed state (CKPT
// visit counts, saved contexts) from leaking across jobs whose warp ids
// collide.
func (s *scheduler) admitPrepared(j Job, wl *kernels.Workload, at int64) error {
	tech, err := preempt.New(s.kind, wl.Prog)
	if err != nil {
		return fmt.Errorf("sched: admitting job %d under %v: %w", j.ID, s.kind, err)
	}
	s.mux.add(wl.Prog, tech)
	rj := &runJob{job: j, wl: wl, sm: -1, admitAt: at}
	pos := s.nextArr
	for pos < len(s.jobs) &&
		(s.jobs[pos].admitAt < at || (s.jobs[pos].admitAt == at && s.jobs[pos].job.ID < j.ID)) {
		pos++
	}
	s.jobs = append(s.jobs, nil)
	copy(s.jobs[pos+1:], s.jobs[pos:])
	s.jobs[pos] = rj
	return nil
}

// wlKey identifies one immutable occupancy-filled workload: the kernel
// and the slab whose base address is baked into its launch closures.
type wlKey struct {
	abbrev string
	slab   int
}

// prepared returns the occupancy-filled workload for (kernel, slab),
// built once and reused across admissions. Reuse is sound because a
// Workload is immutable after construction: the program, host inputs and
// golden outputs are fixed, and Init/WarpSetup/Verify only read them
// while writing per-episode device state. Per-launch technique state
// (CTXBack flashback metadata, CKPT warp-keyed visit counts) lives in
// the technique, which admitPrepared still builds fresh per admission.
// Same-key reuse cannot overlap on one device — the slab allocator hands
// each (device, slab) to one job at a time — and sharing one program
// pointer across devices is already the norm under failover restore.
func (sv *server) prepared(abbrev string, slab int) (*kernels.Workload, error) {
	wk := wlKey{abbrev: abbrev, slab: slab}
	if wl, ok := sv.wlCache[wk]; ok {
		return wl, nil
	}
	p := sv.cfg.Sched.Params
	p.MemBase = slabBase + slab*sv.cfg.Sched.SlabBytes
	blocks, ok := sv.blocks[abbrev]
	if !ok {
		probe, err := kernels.ByAbbrev(abbrev, p)
		if err != nil {
			return nil, err
		}
		var dev *serveDevice
		for _, d := range sv.devices {
			if !d.retired {
				dev = d
				break
			}
		}
		occ, err := dev.s.d.ComputeOccupancy(probe.Prog, p.WarpsPerBlock)
		if err != nil {
			return nil, fmt.Errorf("sched: occupancy for %s: %w", abbrev, err)
		}
		blocks = occ.BlocksPerSM
		sv.blocks[abbrev] = blocks
	}
	p.NumBlocks = blocks
	wl, err := kernels.ByAbbrev(abbrev, p)
	if err != nil {
		return nil, err
	}
	sv.wlCache[wk] = wl
	return wl, nil
}

// route picks the admission destination: the least-loaded alive device
// with a free slab that is past any migration restore latency. Ties go
// to the lower device id. Returns nil when the fleet is at capacity.
func (sv *server) route(now int64) *serveDevice {
	var best *serveDevice
	for _, dev := range sv.devices {
		if dev.retired || dev.blockedUntil > now || dev.freeSlabs() == 0 {
			continue
		}
		if best == nil || dev.outstanding() < best.outstanding() {
			best = dev
		}
	}
	return best
}

// placeJob routes and admits one job at barrier now. The admission
// drain verified capacity, so a routing failure is an internal error.
func (sv *server) placeJob(j Job, now int64) error {
	dev := sv.route(now)
	if dev == nil {
		return fmt.Errorf("sched: admitted job %d with no routable device", j.ID)
	}
	slab, ok := dev.allocSlab(j.ID)
	if !ok {
		return fmt.Errorf("sched: device %d routed without a free slab", dev.id)
	}
	wl, err := sv.prepared(j.Kernel, slab)
	if err != nil {
		dev.freeSlab(j.ID)
		return err
	}
	if err := dev.s.admitPrepared(j, wl, now); err != nil {
		dev.freeSlab(j.ID)
		return err
	}
	dev.incomplete[j.Tenant]++
	dev.done = false
	return nil
}

// Serve runs the serving loop to completion and folds the SLO tables.
func Serve(cfg ServeConfig, kind preempt.Kind, jobs []Job) (*ServeResult, error) {
	sv, err := newServer(cfg, kind, jobs)
	if err != nil {
		return nil, err
	}
	if err := sv.run(); err != nil {
		return nil, err
	}
	return sv.result(), nil
}

func newServer(cfg ServeConfig, kind preempt.Kind, jobs []Job) (*server, error) {
	if len(jobs) == 0 {
		return nil, errors.New("sched: empty trace")
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 2
	}
	if cfg.AdmitEvery <= 0 {
		cfg.AdmitEvery = 2000
	}
	if cfg.SlabsPerDevice <= 0 {
		cfg.SlabsPerDevice = 8
	}
	if cfg.Sched.MaxCycles <= 0 {
		cfg.Sched.MaxCycles = 2_000_000_000
	}
	if cfg.Sched.SlabBytes <= 0 {
		cfg.Sched.SlabBytes = (cfg.Sched.Dev.GlobalMemBytes - slabBase) / cfg.SlabsPerDevice
		cfg.Sched.SlabBytes -= cfg.Sched.SlabBytes % 4096
	}
	if cfg.Sched.SlabBytes <= 0 {
		return nil, errors.New("sched: device memory too small for the slab pool")
	}
	if slabBase+cfg.SlabsPerDevice*cfg.Sched.SlabBytes > cfg.Sched.Dev.GlobalMemBytes {
		return nil, fmt.Errorf("sched: %d slabs of %d bytes exceed device memory (%d)",
			cfg.SlabsPerDevice, cfg.Sched.SlabBytes, cfg.Sched.Dev.GlobalMemBytes)
	}
	if cfg.ReportEvery <= 0 {
		if cfg.Hypervisor.Every > 0 {
			cfg.ReportEvery = cfg.Hypervisor.Every
		} else {
			cfg.ReportEvery = 16 * cfg.AdmitEvery
		}
	}

	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})
	tenants := 0
	for _, j := range ordered {
		if j.Tenant >= tenants {
			tenants = j.Tenant + 1
		}
	}

	sv := &server{cfg: cfg, kind: kind, tenants: tenants, trace: ordered,
		blocks:  make(map[string]int),
		wlCache: make(map[wlKey]*kernels.Workload),
		admit:   newAdmitter(cfg.Admit, tenants),
	}
	if cfg.Hypervisor.enabled() {
		sv.hyper = newHypervisor(cfg.Hypervisor, tenants)
	}
	sv.arrived = make([]int, tenants)
	sv.completed = make([]int, tenants)
	sv.preemptions = make([]int64, tenants)
	sv.queueSum = make([]int64, tenants)
	sv.turnarounds = make([][]int64, tenants)

	for di := 0; di < cfg.Devices; di++ {
		s, err := newBareScheduler(cfg.Sched, kind)
		if err != nil {
			return nil, fmt.Errorf("sched: device %d: %w", di, err)
		}
		dev := &serveDevice{id: di, s: s,
			slabFree:   make([]bool, cfg.SlabsPerDevice),
			slabOf:     make(map[int]int),
			incomplete: make([]int, tenants),
			done:       true,
		}
		for i := range dev.slabFree {
			dev.slabFree[i] = true
		}
		sv.hookDevice(dev)
		sv.devices = append(sv.devices, dev)
	}

	if cfg.WarmPool > 0 {
		shards := cfg.Sched.Shards
		if shards == 0 {
			shards = 1
		}
		pool, err := snapshot.NewPool(cfg.Sched.Dev, shards, cfg.WarmPool)
		if err != nil {
			return nil, err
		}
		sv.pool = pool
	}
	return sv, nil
}

// advance drives every alive unfinished device to the barrier, up to
// Workers at a time. Devices share no mutable state during a window, so
// the only cross-device order dependence is the merge, which run()
// performs in device-id order.
func (sv *server) advance(T int64) error {
	type res struct {
		done bool
		err  error
	}
	var todo []*serveDevice
	for _, dev := range sv.devices {
		if !dev.retired && !dev.done {
			todo = append(todo, dev)
		}
	}
	results := make([]res, len(todo))
	workers := sv.cfg.Workers
	if workers <= 1 || len(todo) <= 1 {
		for i, dev := range todo {
			d, err := dev.s.runTo(T)
			results[i] = res{d, err}
		}
	} else {
		if workers > len(todo) {
			workers = len(todo)
		}
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					d, err := todo[i].s.runTo(T)
					results[i] = res{d, err}
				}
			}()
		}
		for i := range todo {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, dev := range todo {
		if results[i].err != nil {
			return fmt.Errorf("sched: device %d: %w", dev.id, results[i].err)
		}
		dev.done = results[i].done
	}
	return nil
}

// mergeCompletions folds every device's window completions into the
// tenant accounting, in device-id order.
func (sv *server) mergeCompletions() error {
	for _, dev := range sv.devices {
		if dev.verifyErr != nil {
			return fmt.Errorf("sched: %w", dev.verifyErr)
		}
		for _, rj := range dev.completedWin {
			t := rj.job.Tenant
			sv.completed[t]++
			sv.preemptions[t] += int64(rj.preemptions)
			sv.queueSum[t] += rj.start - rj.job.Arrival
			sv.turnarounds[t] = append(sv.turnarounds[t], rj.complete-rj.job.Arrival)
			if rj.complete > sv.makespan {
				sv.makespan = rj.complete
			}
		}
		// Retire the finished launches from the device so its state —
		// and with it any migration checkpoint — stays bounded by the
		// outstanding window, not the lifetime job count. Without this a
		// late migration's restore transfer grows linearly with every
		// job ever served.
		for _, rj := range dev.completedWin {
			if rj.launch == nil {
				continue
			}
			if err := dev.s.d.RemoveLaunch(rj.launch); err != nil {
				return fmt.Errorf("sched: pruning job %d: %w", rj.job.ID, err)
			}
			rj.launch = nil
		}
		dev.completedWin = dev.completedWin[:0]
	}
	return nil
}

// run is the barrier loop.
func (sv *server) run() error {
	var (
		T          int64
		nextReport = sv.cfg.ReportEvery
		nextHyper  = int64(math.MaxInt64)
		lastProg   = -1
		stall      int
	)
	if sv.hyper != nil {
		nextHyper = sv.cfg.Hypervisor.Every
	}
	for {
		T += sv.cfg.AdmitEvery

		if err := sv.advance(T); err != nil {
			return err
		}
		if err := sv.mergeCompletions(); err != nil {
			return err
		}

		// Pull arrivals up to the barrier into the front door.
		for sv.nextArr < len(sv.trace) && sv.trace[sv.nextArr].Arrival <= T {
			j := sv.trace[sv.nextArr]
			sv.nextArr++
			sv.arrived[j.Tenant]++
			sv.admit.enqueue(j)
		}

		// Admission + routing, in global arrival order.
		if err := sv.admit.drain(T,
			func() bool { return sv.route(T) != nil },
			func(j Job) error { return sv.placeJob(j, T) },
		); err != nil {
			return err
		}

		// Hypervisor pass: rebalance first so fresh quotas land on the
		// post-migration fleet.
		if T >= nextHyper {
			if err := sv.hyper.maybeMigrate(sv, T); err != nil {
				return err
			}
			sv.hyper.rearbitrate(sv, T)
			for nextHyper <= T {
				nextHyper += sv.cfg.Hypervisor.Every
			}
		}

		if T >= nextReport {
			admitted, shed := sv.admit.flushWindow()
			for t, n := range shed {
				if n > 0 {
					sv.log(T, "shed", t, -1,
						fmt.Sprintf("n=%d queue=%d", n, sv.admit.tenantBacklog(t)))
				}
			}
			done := 0
			for _, c := range sv.completed {
				done += c
			}
			sv.log(T, "window", -1, -1,
				fmt.Sprintf("admitted=%d backlog=%d done=%d", admitted, sv.admit.backlog(), done))
			for nextReport <= T {
				nextReport += sv.cfg.ReportEvery
			}
		}

		// Termination: trace drained, nothing deferred, every device idle.
		if sv.nextArr == len(sv.trace) && sv.admit.backlog() == 0 {
			alldone := true
			for _, dev := range sv.devices {
				if !dev.retired && !dev.done {
					alldone = false
					break
				}
			}
			if alldone {
				sv.finalReport(T)
				return nil
			}
		}

		// Watchdog: the loop must make progress — completions, arrivals
		// or admissions — or something is quota-wedged beyond what the
		// hypervisor can fix.
		prog := sv.nextArr
		for _, c := range sv.completed {
			prog += c
		}
		for _, a := range sv.admit.admitted {
			prog += a
		}
		for _, s := range sv.admit.shed {
			prog += s
		}
		if prog == lastProg {
			// A device still inside its migration restore latency is a
			// scheduled future event, not a stall: fast-forward the
			// barrier clock to the unblock and keep going.
			if next := sv.nextUnblock(T); next > T {
				if sv.nextArr < len(sv.trace) && sv.trace[sv.nextArr].Arrival < next {
					next = sv.trace[sv.nextArr].Arrival
				}
				if next-sv.cfg.AdmitEvery > T {
					T = next - sv.cfg.AdmitEvery
				}
				stall = 0
				continue
			}
			stall++
			if stall > 10_000 {
				var b strings.Builder
				for _, dev := range sv.devices {
					fmt.Fprintf(&b, " dev%d{retired=%v done=%v out=%d slabs=%d blocked=%d clock=%d}",
						dev.id, dev.retired, dev.done, dev.outstanding(), dev.freeSlabs(),
						dev.blockedUntil, dev.s.d.Now())
				}
				return fmt.Errorf("sched: serve made no progress for %d windows at cycle %d: backlog=%d%s",
					stall, T, sv.admit.backlog(), b.String())
			}
		} else {
			stall = 0
			lastProg = prog
		}
		if T > sv.cfg.Sched.MaxCycles {
			return fmt.Errorf("sched: serve exceeded MaxCycles (%d) with %d jobs outstanding",
				sv.cfg.Sched.MaxCycles, sv.admit.backlog())
		}
	}
}

// nextUnblock returns the earliest future cycle at which a
// restore-blocked alive device becomes routable, or 0 when none is
// blocked past now.
func (sv *server) nextUnblock(now int64) int64 {
	var next int64
	for _, dev := range sv.devices {
		if dev.retired || dev.blockedUntil <= now {
			continue
		}
		if next == 0 || dev.blockedUntil < next {
			next = dev.blockedUntil
		}
	}
	return next
}

// finalReport emits the closing window aggregate so the log always ends
// at the final barrier.
func (sv *server) finalReport(T int64) {
	admitted, shed := sv.admit.flushWindow()
	for t, n := range shed {
		if n > 0 {
			sv.log(T, "shed", t, -1, fmt.Sprintf("n=%d queue=%d", n, sv.admit.tenantBacklog(t)))
		}
	}
	done := 0
	for _, c := range sv.completed {
		done += c
	}
	sv.log(T, "window", -1, -1,
		fmt.Sprintf("admitted=%d backlog=%d done=%d final", admitted, sv.admit.backlog(), done))
	sv.duration = T
}

// jain computes the Jain fairness index (sum x)^2 / (n * sum x^2) over
// the non-degenerate entries; 1.0 for an empty or all-zero vector.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func (sv *server) result() *ServeResult {
	r := &ServeResult{Kind: sv.kind, Duration: sv.duration, Makespan: sv.makespan,
		Events: sv.events}
	var all []int64
	px := make([]float64, sv.tenants)
	tx := make([]float64, sv.tenants)
	for t := 0; t < sv.tenants; t++ {
		turns := append([]int64(nil), sv.turnarounds[t]...)
		sort.Slice(turns, func(i, j int) bool { return turns[i] < turns[j] })
		all = append(all, turns...)
		slo := TenantSLO{Tenant: t,
			Arrived:     sv.arrived[t],
			Admitted:    sv.admit.admitted[t],
			Shed:        sv.admit.shed[t],
			Completed:   sv.completed[t],
			Preemptions: sv.preemptions[t],
		}
		if slo.Arrived > 0 {
			slo.ShedPerMille = int64(slo.Shed) * 1000 / int64(slo.Arrived)
		}
		if slo.Completed > 0 {
			slo.MeanQueueCycles = divRound(sv.queueSum[t], int64(slo.Completed))
			slo.P50 = percentile(turns, 0.50)
			slo.P95 = percentile(turns, 0.95)
			slo.P99 = percentile(turns, 0.99)
			px[t] = float64(slo.Preemptions) / float64(slo.Completed)
		}
		tx[t] = float64(slo.Completed)
		r.Arrived += slo.Arrived
		r.Admitted += slo.Admitted
		r.Shed += slo.Shed
		r.Completed += slo.Completed
		r.TotalPreemptions += slo.Preemptions
		r.Tenants = append(r.Tenants, slo)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	r.P50, r.P95, r.P99 = percentile(all, 0.50), percentile(all, 0.95), percentile(all, 0.99)
	r.PreemptionJain = jain(px)
	r.ThroughputJain = jain(tx)
	if sv.hyper != nil {
		r.Rearbitrations = sv.hyper.rearbs
		r.Migrations = sv.hyper.migrations
		r.StarveBoosts = sv.hyper.starveBoosts
	}
	sv.exportMetrics(r)
	return r
}

// exportMetrics publishes serve counters and latency histograms.
func (sv *server) exportMetrics(r *ServeResult) {
	m := sv.cfg.Sched.Metrics
	if m == nil {
		return
	}
	m.Counter("serve.arrived").Add(int64(r.Arrived))
	m.Counter("serve.admitted").Add(int64(r.Admitted))
	m.Counter("serve.shed").Add(int64(r.Shed))
	m.Counter("serve.completed").Add(int64(r.Completed))
	m.Counter("serve.preemptions").Add(r.TotalPreemptions)
	m.Counter("serve.migrations").Add(int64(r.Migrations))
	m.Counter("serve.rearbitrations").Add(int64(r.Rearbitrations))
	h := m.Histogram("serve.turnaround_cycles", trace.DefaultCycleBuckets)
	for t := range sv.turnarounds {
		for _, v := range sv.turnarounds[t] {
			h.Observe(v)
		}
	}
}

// Render formats the serving report: fleet headline, hypervisor
// counters, the per-tenant SLO table and the fairness indices.
func (r *ServeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s serve: duration=%d makespan=%d arrived=%d admitted=%d shed=%d completed=%d preemptions=%d\n",
		r.Kind, r.Duration, r.Makespan, r.Arrived, r.Admitted, r.Shed, r.Completed, r.TotalPreemptions)
	fmt.Fprintf(&b, "  turnaround p50/p95/p99 = %d/%d/%d cycles\n", r.P50, r.P95, r.P99)
	fmt.Fprintf(&b, "  hypervisor: rearbitrations=%d migrations=%d starve-boosts=%d\n",
		r.Rearbitrations, r.Migrations, r.StarveBoosts)
	fmt.Fprintf(&b, "  %-8s %7s %7s %6s %6s %7s %9s %11s %11s %11s %11s\n",
		"tenant", "arrive", "admit", "shed", "shed‰", "done", "preempts", "mean-queue", "p50-turn", "p95-turn", "p99-turn")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  %-8d %7d %7d %6d %6d %7d %9d %11d %11d %11d %11d\n",
			t.Tenant, t.Arrived, t.Admitted, t.Shed, t.ShedPerMille, t.Completed,
			t.Preemptions, t.MeanQueueCycles, t.P50, t.P95, t.P99)
	}
	fmt.Fprintf(&b, "  fairness: preemption-jain=%.4f throughput-jain=%.4f\n",
		r.PreemptionJain, r.ThroughputJain)
	return b.String()
}

// EventLog renders the serving decision log, one event per line.
func (r *ServeResult) EventLog() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
