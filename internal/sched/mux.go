package sched

import (
	"ctxback/internal/isa"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

// muxRuntime dispatches the device-wide sim.Runtime hooks to per-job
// technique instances by the warp's program. The simulator attaches ONE
// runtime per device, but a scheduled run multiplexes many kernels —
// each with its own compiled technique (per-run state like CKPT
// snapshots must stay per job) — over that single attachment point.
type muxRuntime struct {
	kind  preempt.Kind
	techs map[*isa.Program]preempt.Technique
	// first is the first-registered technique: the deterministic
	// representative for whole-run queries like PhaseNames (map
	// iteration order would pick a random one).
	first preempt.Technique
}

func newMux(kind preempt.Kind) *muxRuntime {
	return &muxRuntime{kind: kind, techs: make(map[*isa.Program]preempt.Technique)}
}

func (m *muxRuntime) add(prog *isa.Program, t preempt.Technique) {
	if m.first == nil {
		m.first = t
	}
	m.techs[prog] = t
}

func (m *muxRuntime) Name() string { return m.kind.String() }

func (m *muxRuntime) PreemptRoutine(w *sim.Warp) []isa.Instruction {
	return m.techs[w.Prog].PreemptRoutine(w)
}

func (m *muxRuntime) ResumeRoutine(w *sim.Warp) ([]isa.Instruction, *sim.SavedContext) {
	return m.techs[w.Prog].ResumeRoutine(w)
}

func (m *muxRuntime) Hook(w *sim.Warp, pc int) ([]isa.Instruction, *sim.SavedContext) {
	t, ok := m.techs[w.Prog]
	if !ok {
		return nil, nil
	}
	return t.Hook(w, pc)
}

// HookAt (sim.HookPredicate) forwards to the warp's own technique so
// the epoch engine sees through the multiplexer: unknown programs never
// hook, techniques without a predicate conservatively always might.
func (m *muxRuntime) HookAt(w *sim.Warp, pc int) bool {
	t, ok := m.techs[w.Prog]
	if !ok {
		return false
	}
	if hp, ok := t.(sim.HookPredicate); ok {
		return hp.HookAt(w, pc)
	}
	return true
}

// PhaseNames forwards the technique-flavored phase labels. One Kind
// drives the whole run, so every registered technique agrees; the
// first-registered one answers for all (deterministically — ranging
// over the techs map would consult an arbitrary instance).
func (m *muxRuntime) PhaseNames() trace.PhaseNames {
	if pn, ok := m.first.(sim.PhaseNamer); ok {
		return pn.PhaseNames()
	}
	return trace.DefaultPhaseNames()
}
