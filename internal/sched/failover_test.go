package sched

import (
	"reflect"
	"strings"
	"testing"

	"ctxback/internal/preempt"
)

func fleetTrace(t *testing.T, seed int64, jobs int) []Job {
	t.Helper()
	tr, err := GenTrace(TraceConfig{Seed: seed, NumJobs: jobs, NumTenants: 3, MeanGapCycles: 3_000})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runFleet(t *testing.T, kind preempt.Kind, jobs []Job, fo FailoverConfig) *FleetResult {
	t.Helper()
	fr, err := RunFleet(testSchedConfig(), kind, jobs, fo)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Jobs) != len(jobs) {
		t.Fatalf("fleet finished %d jobs, want %d", len(fr.Jobs), len(jobs))
	}
	return fr
}

// TestFleetUndisturbedMatchesSingle sanity-checks the fleet plumbing:
// with no kill, every job completes, digests are populated, and repeats
// are bit-identical.
func TestFleetUndisturbedMatchesSingle(t *testing.T) {
	jobs := fleetTrace(t, 31, 6)
	fo := FailoverConfig{Devices: 2, CheckpointEvery: 50_000, KillDevice: -1}
	a := runFleet(t, preempt.CTXBack, jobs, fo)
	b := runFleet(t, preempt.CTXBack, jobs, fo)
	if a.StateHash() != b.StateHash() {
		t.Fatalf("state hashes differ between identical runs:\n--- a\n%s--- b\n%s", a.StateHash(), b.StateHash())
	}
	if a.Render() != b.Render() {
		t.Fatal("rendered fleet reports differ between identical runs")
	}
	if a.Checkpoints == 0 {
		t.Fatal("no checkpoints taken on a 50k cadence")
	}
	for _, j := range a.Jobs {
		if j.Digest == 0 {
			t.Errorf("job %d has empty slab digest", j.ID)
		}
		if j.Complete <= j.Arrival {
			t.Errorf("job %d complete %d <= arrival %d", j.ID, j.Complete, j.Arrival)
		}
	}
}

// TestFleetCrashAtEveryBoundary is the equivalence test the issue asks
// for: kill a device at EVERY checkpoint boundary (and between two of
// them) and require the failover run's final memory and verify state —
// the per-job slab digests, with Verify on throughout — to be
// byte-identical to the undisturbed run's.
func TestFleetCrashAtEveryBoundary(t *testing.T) {
	jobs := fleetTrace(t, 31, 6)
	const every = 40_000
	base := runFleet(t, preempt.CTXBack, jobs, FailoverConfig{
		Devices: 2, CheckpointEvery: every, KillDevice: -1})
	want := base.StateHash()

	var boundaries []int64
	for c := int64(every); c <= base.Makespan; c += every {
		boundaries = append(boundaries, c)
	}
	if len(boundaries) < 2 {
		t.Fatalf("makespan %d yields %d boundaries; need >= 2 for the sweep", base.Makespan, len(boundaries))
	}
	// Also crash between boundaries: mid-window kills roll back to the
	// previous checkpoint instead of resuming at the crash instant.
	boundaries = append(boundaries, boundaries[0]+every/2)

	for _, kill := range boundaries {
		for kd := 0; kd < 2; kd++ {
			fr := runFleet(t, preempt.CTXBack, jobs, FailoverConfig{
				Devices: 2, CheckpointEvery: every, KillDevice: kd, KillCycle: kill})
			if got := fr.StateHash(); got != want {
				t.Fatalf("kill dev %d @ %d: final state diverged from undisturbed run:\n--- got\n%s--- want\n%s",
					kd, kill, got, want)
			}
			var killed, recovered bool
			for _, e := range fr.Decisions {
				switch e.What {
				case "kill":
					killed = true
				case "restore-warm", "restore-cold", "rerun", "readmit":
					recovered = true
				}
			}
			if !killed {
				t.Fatalf("kill dev %d @ %d: decision log has no kill event", kd, kill)
			}
			if !recovered && killDeviceHadWork(base, kd) {
				t.Fatalf("kill dev %d @ %d: no recovery decision logged:\n%s", kd, kill, fr.Render())
			}
		}
	}
}

// killDeviceHadWork reports whether the undisturbed run placed any job
// on device kd (a kill of an empty device needs no recovery moves).
func killDeviceHadWork(base *FleetResult, kd int) bool {
	for _, j := range base.Jobs {
		if j.Device == kd {
			return true
		}
	}
	return false
}

// TestFleetWarmVsColdRestore pins the warm-pool split: a warm restore
// skips the cold construction cycles but is otherwise byte-identical to
// a cold one.
func TestFleetWarmVsColdRestore(t *testing.T) {
	jobs := fleetTrace(t, 47, 6)
	fo := FailoverConfig{Devices: 2, CheckpointEvery: 40_000, KillDevice: 0, KillCycle: 80_000}
	cold := runFleet(t, preempt.CTXBack, jobs, fo)
	fo.WarmPool = 1
	warm := runFleet(t, preempt.CTXBack, jobs, fo)

	if cold.Restore == nil || warm.Restore == nil {
		t.Skip("kill landed after device 0 finished; no restore to compare")
	}
	if cold.Restore.Warm {
		t.Error("pool-less restore reported warm")
	}
	if !warm.Restore.Warm {
		t.Error("pooled restore reported cold")
	}
	if cold.Restore.SetupCycles == 0 {
		t.Error("cold restore charged no setup cycles")
	}
	if warm.Restore.SetupCycles != 0 {
		t.Errorf("warm restore charged %d setup cycles, want 0", warm.Restore.SetupCycles)
	}
	if cold.Restore.TransferCycles != warm.Restore.TransferCycles {
		t.Errorf("transfer cycles differ warm vs cold: %d vs %d",
			warm.Restore.TransferCycles, cold.Restore.TransferCycles)
	}
	if warm.StateHash() != cold.StateHash() {
		t.Fatalf("warm and cold restores diverged:\n--- warm\n%s--- cold\n%s",
			warm.StateHash(), cold.StateHash())
	}
	if !reflect.DeepEqual(warm.Jobs, cold.Jobs) {
		t.Fatal("per-job stats differ between warm and cold restore")
	}
}

// TestFleetRerunPath covers the non-relocatable fallback: CKPT episodes
// do not survive a snapshot trip, so the kill must trigger a
// deterministic re-run, and the final state must still match the
// undisturbed run.
func TestFleetRerunPath(t *testing.T) {
	jobs := fleetTrace(t, 31, 6)
	base := runFleet(t, preempt.Ckpt, jobs, FailoverConfig{
		Devices: 2, CheckpointEvery: 40_000, KillDevice: -1})
	fr := runFleet(t, preempt.Ckpt, jobs, FailoverConfig{
		Devices: 2, CheckpointEvery: 40_000, KillDevice: 0, KillCycle: 80_000})
	if got, want := fr.StateHash(), base.StateHash(); got != want {
		t.Fatalf("rerun failover diverged from undisturbed run:\n--- got\n%s--- want\n%s", got, want)
	}
	if fr.Restore != nil {
		t.Error("non-relocatable kind restored from a checkpoint")
	}
	if killDeviceHadWork(base, 0) && !strings.Contains(fr.Render(), "rerun") {
		t.Fatalf("decision log has no rerun event:\n%s", fr.Render())
	}
}

// TestFleetNoCheckpointFallsBackToRerun kills a device before any
// checkpoint exists: even a relocatable technique has nothing to restore
// and must re-run.
func TestFleetNoCheckpointFallsBackToRerun(t *testing.T) {
	jobs := fleetTrace(t, 31, 6)
	base := runFleet(t, preempt.CTXBack, jobs, FailoverConfig{
		Devices: 2, KillDevice: -1})
	fr := runFleet(t, preempt.CTXBack, jobs, FailoverConfig{
		Devices: 2, KillDevice: 0, KillCycle: 10_000})
	if got, want := fr.StateHash(), base.StateHash(); got != want {
		t.Fatalf("checkpoint-less failover diverged:\n--- got\n%s--- want\n%s", got, want)
	}
	if fr.Restore != nil {
		t.Error("restore reported without any checkpoint")
	}
	if fr.Checkpoints != 0 {
		t.Errorf("checkpointing disabled but %d checkpoints taken", fr.Checkpoints)
	}
}

// TestFleetDeterministicAcrossShards: the failover run must be
// byte-identical whether the devices step serially or epoch-parallel.
func TestFleetDeterministicAcrossShards(t *testing.T) {
	jobs := fleetTrace(t, 31, 6)
	fo := FailoverConfig{Devices: 2, CheckpointEvery: 40_000, KillDevice: 0, KillCycle: 80_000}
	serialCfg := testSchedConfig()
	shardCfg := testSchedConfig()
	shardCfg.Shards = 2
	serial, err := RunFleet(serialCfg, preempt.CTXBack, jobs, fo)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunFleet(shardCfg, preempt.CTXBack, jobs, fo)
	if err != nil {
		t.Fatal(err)
	}
	if serial.StateHash() != sharded.StateHash() {
		t.Fatalf("state hash differs across shards:\n--- serial\n%s--- sharded\n%s",
			serial.StateHash(), sharded.StateHash())
	}
	if serial.Render() != sharded.Render() {
		t.Fatal("fleet report differs across shards")
	}
}

// TestFleetConfigValidation covers the flag-level error paths.
func TestFleetConfigValidation(t *testing.T) {
	jobs := fleetTrace(t, 31, 4)
	cases := []FailoverConfig{
		{Devices: 2, KillDevice: 2, KillCycle: 1000},  // kill id out of range
		{Devices: 2, KillDevice: 0},                   // kill cycle unset
		{Devices: 2, KillDevice: 0, KillCycle: -5},    // negative kill cycle
		{Devices: 2, CheckpointEvery: -1, KillDevice: -1}, // negative cadence
	}
	for i, fo := range cases {
		if _, err := RunFleet(testSchedConfig(), preempt.CTXBack, jobs, fo); err == nil {
			t.Errorf("case %d: invalid failover config accepted", i)
		}
	}
	if _, err := RunFleet(testSchedConfig(), preempt.CTXBack, nil,
		FailoverConfig{Devices: 2, KillDevice: -1}); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestLeastLoadedReadmit pins the load-aware readmission pick: orphans
// go to the device with the fewest outstanding jobs, ties to the lower
// id, and each pick sees the previous one's load.
func TestLeastLoadedReadmit(t *testing.T) {
	mk := func(total, done int) *scheduler {
		s := &scheduler{nDone: done}
		for i := 0; i < total; i++ {
			s.jobs = append(s.jobs, &runJob{})
		}
		return s
	}
	scheds := []*scheduler{mk(5, 0), mk(3, 3), mk(4, 2)}
	targets := []int{0, 1, 2}
	if got := leastLoaded(scheds, targets); got != 1 {
		t.Fatalf("leastLoaded = %d, want 1 (zero outstanding)", got)
	}
	// Simulate the readmit: device 1 takes the orphan, then ties device 2
	// at 2 outstanding... no — device 1 now has 1, still lightest.
	scheds[1].jobs = append(scheds[1].jobs, &runJob{})
	if got := leastLoaded(scheds, targets); got != 1 {
		t.Fatalf("after one readmit leastLoaded = %d, want 1", got)
	}
	scheds[1].jobs = append(scheds[1].jobs, &runJob{})
	// Device 1 and 2 both at 2 outstanding: the tie goes to the lower id.
	if got := leastLoaded(scheds, targets); got != 1 {
		t.Fatalf("tie leastLoaded = %d, want 1 (lower id)", got)
	}
	// Restrict targets: only 0 and 2 survive.
	if got := leastLoaded(scheds, []int{0, 2}); got != 2 {
		t.Fatalf("restricted leastLoaded = %d, want 2", got)
	}
}
