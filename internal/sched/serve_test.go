package sched

import (
	"strings"
	"testing"

	"ctxback/internal/preempt"
)

func serveTestConfig(shards, workers int) ServeConfig {
	sc := testSchedConfig()
	sc.Shards = shards
	return ServeConfig{
		Sched:          sc,
		Devices:        2,
		Workers:        workers,
		AdmitEvery:     500,
		SlabsPerDevice: 6,
		ReportEvery:    4000,
		Admit:          AdmitConfig{TokensPer100k: 400, Burst: 4, MaxQueue: 8},
		Hypervisor:     HypervisorConfig{Every: 2000, MigrateThreshold: 4},
	}
}

func serveTestTrace(t *testing.T) []Job {
	t.Helper()
	jobs, err := GenTrace(TraceConfig{
		Seed: 11, NumJobs: 60, NumTenants: 3, MeanGapCycles: 150,
		Process: "poisson", BurstFraction: 0.34, BurstLen: 5,
	})
	if err != nil {
		t.Fatalf("GenTrace: %v", err)
	}
	return jobs
}

func runServe(t *testing.T, cfg ServeConfig) *ServeResult {
	t.Helper()
	res, err := Serve(cfg, preempt.CTXBack, serveTestTrace(t))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return res
}

// TestServeSmall runs a complete serving loop and checks the basic
// conservation laws of the front door.
func TestServeSmall(t *testing.T) {
	res := runServe(t, serveTestConfig(1, 1))
	if res.Arrived == 0 || res.Completed == 0 {
		t.Fatalf("no work flowed: %+v", res)
	}
	if res.Admitted+res.Shed != res.Arrived {
		t.Fatalf("admitted(%d)+shed(%d) != arrived(%d)", res.Admitted, res.Shed, res.Arrived)
	}
	if res.Completed != res.Admitted {
		t.Fatalf("completed(%d) != admitted(%d): jobs lost", res.Completed, res.Admitted)
	}
	for _, slo := range res.Tenants {
		if slo.Completed > 0 && (slo.P50 <= 0 || slo.P99 < slo.P50) {
			t.Fatalf("tenant %d: bad percentiles %+v", slo.Tenant, slo)
		}
	}
	if res.Rearbitrations == 0 {
		t.Fatalf("hypervisor never re-arbitrated")
	}
}

// TestServeDeterministic pins byte-identical output across repeat runs,
// worker counts and shard counts — the serving layer's core guarantee.
func TestServeDeterministic(t *testing.T) {
	base := runServe(t, serveTestConfig(1, 1))
	ref := base.Render() + base.EventLog()
	for _, tc := range []struct {
		name            string
		shards, workers int
	}{
		{"repeat", 1, 1},
		{"workers4", 1, 4},
		{"shards2", 2, 1},
		{"shards2workers4", 2, 4},
	} {
		got := runServe(t, serveTestConfig(tc.shards, tc.workers))
		if s := got.Render() + got.EventLog(); s != ref {
			t.Errorf("%s: output diverged from the serial single-shard run\n--- ref\n%s\n--- got\n%s", tc.name, ref, s)
		}
	}
}

// TestServeMigration forces an imbalanced fleet and checks the
// hypervisor rebalances through a checkpoint/restore migration.
func TestServeMigration(t *testing.T) {
	cfg := serveTestConfig(1, 1)
	cfg.Hypervisor.MigrateThreshold = 2
	cfg.WarmPool = 1
	res := runServe(t, cfg)
	if res.Migrations == 0 {
		t.Fatalf("no migration despite threshold 2; events:\n%s", res.EventLog())
	}
	if !strings.Contains(res.EventLog(), "migrate") {
		t.Fatalf("migration missing from decision log:\n%s", res.EventLog())
	}
	if res.Completed != res.Admitted {
		t.Fatalf("completed(%d) != admitted(%d) after migration", res.Completed, res.Admitted)
	}
}

// TestServeShed pins that a tight front door sheds rather than queues
// without bound, and that shed jobs appear in the log.
func TestServeShed(t *testing.T) {
	cfg := serveTestConfig(1, 1)
	cfg.Admit = AdmitConfig{TokensPer100k: 50, Burst: 1, MaxQueue: 2}
	res := runServe(t, cfg)
	if res.Shed == 0 {
		t.Fatalf("tight admission shed nothing: %+v", res)
	}
	if !strings.Contains(res.EventLog(), "shed") {
		t.Fatalf("shed decisions missing from log:\n%s", res.EventLog())
	}
	if res.Admitted+res.Shed != res.Arrived {
		t.Fatalf("conservation broken: %+v", res)
	}
}

// TestServeNoAdmission runs with admission control off: nothing sheds.
func TestServeNoAdmission(t *testing.T) {
	cfg := serveTestConfig(1, 1)
	cfg.Admit = AdmitConfig{}
	cfg.Hypervisor = HypervisorConfig{}
	res := runServe(t, cfg)
	if res.Shed != 0 {
		t.Fatalf("admission off but %d jobs shed", res.Shed)
	}
	if res.Completed != res.Arrived {
		t.Fatalf("completed(%d) != arrived(%d)", res.Completed, res.Arrived)
	}
	if res.Rearbitrations != 0 || res.Migrations != 0 {
		t.Fatalf("hypervisor off but acted: %+v", res)
	}
}

// TestServeQuotaProgress wedges one tenant behind a 1-SM quota and
// checks the loop still terminates (quota stalls must not deadlock).
func TestServeQuotaProgress(t *testing.T) {
	cfg := serveTestConfig(1, 1)
	cfg.Hypervisor = HypervisorConfig{Every: 1000, MigrateThreshold: -1, StarveWindows: 1}
	res := runServe(t, cfg)
	if res.Completed != res.Admitted {
		t.Fatalf("quota run lost jobs: completed=%d admitted=%d", res.Completed, res.Admitted)
	}
}

// TestServeLightKernelChurn is the regression run for two bugs only a
// high-churn serve loop exposed. With 2-iteration kernels a block's
// warps retire at slightly different times, so barrier-cadence
// preemptions regularly catch a block with one warp Done:
//
//  1. the LDS poison then wiped the Done peer's un-saved share of the
//     block's shared data (MV's x vector), corrupting resumed warps —
//     fixed by coverOrphanLDSShares widening the victims' coverage;
//  2. Done warps of partially-finished blocks keep their slots until
//     the block completes, so an SM can carry residue from several
//     parked tenants and the best parked victim may not physically fit
//     — fixed by bestResumable probing sim.CanResume before resuming.
//
// Verify is on: every completed job's output is checked on the device.
func TestServeLightKernelChurn(t *testing.T) {
	sc := testSchedConfig()
	sc.Params.ItersPerWarp = 2
	sc.Dev.NumSMs = 2
	jobs, err := GenTrace(TraceConfig{
		Seed: 7, NumTenants: 4, MeanGapCycles: 1666, MaxPriority: 3,
		Process: "poisson", BurstFraction: 0.25, DiurnalAmplitude: 0.3,
		DurationCycles: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Serve(ServeConfig{Sched: sc, Devices: 2, Workers: 1, AdmitEvery: 2000},
		preempt.CTXBack, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Arrived {
		t.Fatalf("completed(%d) != arrived(%d)", res.Completed, res.Arrived)
	}
	if res.TotalPreemptions == 0 {
		t.Fatalf("no preemptions: the churn regression needs mid-kernel preempts")
	}
}
