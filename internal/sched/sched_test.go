package sched

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

func TestDefaultKernelPool(t *testing.T) {
	pool, err := DefaultKernelPool()
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) == 0 {
		t.Fatal("default kernel pool is empty")
	}
	if len(pool) >= len(kernels.Registry()) {
		t.Logf("pool = %v (every kernel SM-flush compatible?)", pool)
	}
	// Every pool kernel must compile under every extended technique — the
	// whole point of the filter.
	for _, ab := range pool {
		wl, err := kernels.ByAbbrev(ab, kernels.TestParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range preempt.ExtendedKinds() {
			if _, err := preempt.New(k, wl.Prog); err != nil {
				t.Errorf("pool kernel %s fails under %v: %v", ab, k, err)
			}
		}
	}
	again, err := DefaultKernelPool()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pool, again) {
		t.Error("pool not stable across calls")
	}
}

func TestGenTraceDeterministic(t *testing.T) {
	tc := TraceConfig{Seed: 11, NumJobs: 12, NumTenants: 4}
	a, err := GenTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenTrace(tc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, _ := GenTrace(TraceConfig{Seed: 12, NumJobs: 12, NumTenants: 4})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	for i, j := range a {
		if j.ID != i || j.Tenant < 0 || j.Tenant >= 4 || j.Priority < 0 {
			t.Fatalf("bad job %+v", j)
		}
		if i > 0 && j.Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals not monotonic: %d after %d", j.Arrival, a[i-1].Arrival)
		}
	}
}

// testSchedConfig is a small, fast configuration on the unit-test device
// model.
func testSchedConfig() Config {
	p := kernels.TestParams()
	p.ItersPerWarp = 24 // long enough that preemptions land mid-kernel
	dev := sim.TestConfig()
	// Filled-SM grids write megabytes of buffers per job; the unit-test
	// device's 1 MB memory cannot slab several tenants.
	dev.GlobalMemBytes = 64 << 20
	return Config{
		Dev:       dev,
		Params:    p,
		MaxCycles: 200_000_000,
		Verify:    true,
	}
}

func testTrace(t *testing.T, seed int64, jobs int) []Job {
	t.Helper()
	tr, err := GenTrace(TraceConfig{Seed: seed, NumJobs: jobs, NumTenants: 3, MeanGapCycles: 3_000})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestScheduleRunsAndVerifies(t *testing.T) {
	jobs := testTrace(t, 7, 6)
	m := trace.NewRegistry()
	cfg := testSchedConfig()
	cfg.Metrics = m
	res, err := Run(cfg, preempt.CTXBack, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(jobs) {
		t.Fatalf("got %d job stats, want %d", len(res.Jobs), len(jobs))
	}
	for _, j := range res.Jobs {
		if j.Start < j.Arrival {
			t.Errorf("job %d started at %d before arrival %d", j.ID, j.Start, j.Arrival)
		}
		if j.Complete <= j.Start {
			t.Errorf("job %d complete %d <= start %d", j.ID, j.Complete, j.Start)
		}
	}
	if res.Makespan == 0 {
		t.Error("zero makespan")
	}
	if got := m.Counter("sched.jobs").Value(); got != int64(len(jobs)) {
		t.Errorf("sched.jobs counter = %d, want %d", got, len(jobs))
	}
	if m.Histogram("sched.turnaround_cycles", nil).Count() != int64(len(jobs)) {
		t.Error("turnaround histogram not populated")
	}
	rendered := m.Render()
	if !strings.Contains(rendered, "sched.tenant") {
		t.Errorf("metrics missing per-tenant series:\n%s", rendered)
	}
}

// TestScheduleDeterministicRepeats pins the core promise: the same trace
// under the same technique yields bit-identical stats AND an identical
// decision log, run after run.
func TestScheduleDeterministicRepeats(t *testing.T) {
	jobs := testTrace(t, 21, 6)
	run := func() *Result {
		res, err := Run(testSchedConfig(), preempt.CTXBack, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.EventLog() != b.EventLog() {
		t.Fatalf("event logs differ between identical runs:\n--- a\n%s--- b\n%s", a.EventLog(), b.EventLog())
	}
	if !reflect.DeepEqual(a.Jobs, b.Jobs) || !reflect.DeepEqual(a.Tenants, b.Tenants) {
		t.Fatal("stats differ between identical runs")
	}
	if a.Render() != b.Render() {
		t.Fatal("rendered reports differ between identical runs")
	}
}

// TestPriorityPreemption crafts a two-job trace on a one-SM device: a
// low-priority job is running when a high-priority job arrives, so the
// scheduler must preempt it, run the newcomer, then resume the victim.
func TestPriorityPreemption(t *testing.T) {
	cfg := testSchedConfig()
	cfg.Dev.NumSMs = 1
	pool, err := DefaultKernelPool()
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{ID: 0, Tenant: 0, Kernel: pool[0], Arrival: 0, Priority: 0},
		{ID: 1, Tenant: 1, Kernel: pool[1%len(pool)], Arrival: 2_000, Priority: 5},
	}
	res, err := Run(cfg, preempt.CTXBack, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Preemptions != 1 {
		t.Fatalf("low-priority job preempted %d times, want 1\n%s", res.Jobs[0].Preemptions, res.EventLog())
	}
	if res.Jobs[1].Preemptions != 0 {
		t.Fatalf("high-priority job preempted %d times, want 0", res.Jobs[1].Preemptions)
	}
	// The victim resumed and finished after the high-priority job.
	if res.Jobs[0].Complete <= res.Jobs[1].Complete {
		t.Errorf("victim (complete %d) should finish after its preemptor (complete %d)",
			res.Jobs[0].Complete, res.Jobs[1].Complete)
	}
	log := res.EventLog()
	for _, want := range []string{"preempt", "park", "resume", "complete"} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q:\n%s", want, log)
		}
	}
}

// TestCTXBackBeatsHeavyweightP95 is the paper's claim at scheduler
// level: on a contended trace, CTXBack's cheap context switches show up
// as lower p95 turnaround than the liveness-blind BASELINE swap and
// than SM-flushing's full re-execution.
func TestCTXBackBeatsHeavyweightP95(t *testing.T) {
	cfg := testSchedConfig()
	cfg.Dev.NumSMs = 1 // maximum contention: every arrival fights for one SM
	jobs := testTrace(t, 9, 8)
	p95 := map[preempt.Kind]int64{}
	for _, k := range []preempt.Kind{preempt.Baseline, preempt.SMFlush, preempt.CTXBack} {
		res, err := Run(cfg, k, jobs)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.TotalPreemptions == 0 {
			t.Fatalf("%v: trace not contended (no preemptions); pick a different seed", k)
		}
		p95[k] = res.P95
	}
	if p95[preempt.CTXBack] >= p95[preempt.Baseline] {
		t.Errorf("CTXBack p95 %d not below BASELINE p95 %d", p95[preempt.CTXBack], p95[preempt.Baseline])
	}
	if p95[preempt.CTXBack] >= p95[preempt.SMFlush] {
		t.Errorf("CTXBack p95 %d not below SM-flushing p95 %d", p95[preempt.CTXBack], p95[preempt.SMFlush])
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := []int64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want int64
	}{{0.5, 20}, {0.75, 30}, {0.95, 40}, {0.99, 40}, {1, 40}, {0.01, 10}}
	for _, c := range cases {
		if got := percentile(s, c.q); got != c.want {
			t.Errorf("percentile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// TestPercentileExactRank pins percentile against the exact nearest
// rank at the (q, n) shapes SLO tables report: over 1..100, p99 is the
// 99th value and p7 the 7th — the old float ceiling inflated both.
func TestPercentileExactRank(t *testing.T) {
	s := make([]int64, 100)
	for i := range s {
		s[i] = int64(i + 1)
	}
	cases := []struct {
		q    float64
		want int64
	}{{0.07, 7}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}}
	for _, c := range cases {
		if got := percentile(s, c.q); got != c.want {
			t.Errorf("percentile(%v) over 1..100 = %d, want %d", c.q, got, c.want)
		}
	}
}

// TestGenTraceValidation checks the config validation added with the
// process knobs: oversized gaps must error instead of panicking inside
// rand.Int63n, and malformed knobs are rejected.
func TestGenTraceValidation(t *testing.T) {
	bad := []TraceConfig{
		{Seed: 1, NumJobs: 4, MeanGapCycles: math.MaxInt64/2 + 7},
		{Seed: 1, NumJobs: 4, Process: "pareto"},
		{Seed: 1, NumJobs: 4, DiurnalAmplitude: 1.5},
		{Seed: 1, NumJobs: 4, DiurnalAmplitude: -0.1},
		{Seed: 1, NumJobs: 4, BurstFraction: 1.2},
		{Seed: 1, NumJobs: -2},
	}
	for i, tc := range bad {
		if _, err := GenTrace(tc); err == nil {
			t.Errorf("config %d: expected error, got none", i)
		}
	}
	// The largest legal gap must draw without panicking.
	if _, err := GenTrace(TraceConfig{Seed: 1, NumJobs: 2, MeanGapCycles: math.MaxInt64/2 - 1}); err != nil {
		t.Errorf("max legal MeanGapCycles rejected: %v", err)
	}
}

// TestGenTraceUniformCompat checks that the zero-valued knobs leave the
// historical uniform draw sequence untouched: "" and "uniform" produce
// identical traces.
func TestGenTraceUniformCompat(t *testing.T) {
	base := TraceConfig{Seed: 11, NumJobs: 12, NumTenants: 4}
	a, err := GenTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Process = "uniform"
	b, err := GenTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("explicit uniform process changed the trace")
	}
}

// TestGenTracePoissonOpenLoop generates an open-loop poisson trace
// bounded by a horizon and checks shape: monotone arrivals inside the
// horizon, roughly duration/gap jobs, deterministic across calls.
func TestGenTracePoissonOpenLoop(t *testing.T) {
	tc := TraceConfig{Seed: 5, NumTenants: 4, MeanGapCycles: 1000,
		Process: "poisson", DurationCycles: 1_000_000}
	a, err := GenTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenTrace(tc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("poisson trace not deterministic")
	}
	if len(a) < 500 || len(a) > 2000 {
		t.Fatalf("open-loop trace has %d jobs; want about duration/gap = 1000", len(a))
	}
	for i, j := range a {
		if j.Arrival > tc.DurationCycles {
			t.Fatalf("job %d arrives at %d, past the %d horizon", i, j.Arrival, tc.DurationCycles)
		}
		if i > 0 && j.Arrival < a[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
}

// TestGenTraceBursts marks half the tenants bursty and checks the
// bursty tenants' arrivals cluster much tighter than the smooth ones.
func TestGenTraceBursts(t *testing.T) {
	tc := TraceConfig{Seed: 9, NumJobs: 400, NumTenants: 4, MeanGapCycles: 10_000,
		Process: "poisson", BurstFraction: 0.5, BurstLen: 6}
	jobs, err := GenTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	// Tenants 0,1 are bursty. Median gap between a bursty tenant's
	// consecutive jobs should be far below the smooth tenants'.
	gaps := func(tenant ...int) []int64 {
		want := map[int]bool{}
		for _, tn := range tenant {
			want[tn] = true
		}
		var last int64 = -1
		var out []int64
		for _, j := range jobs {
			if !want[j.Tenant] {
				continue
			}
			if last >= 0 {
				out = append(out, j.Arrival-last)
			}
			last = j.Arrival
		}
		sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
		return out
	}
	bg, sg := gaps(0, 1), gaps(2, 3)
	if len(bg) < 20 || len(sg) < 20 {
		t.Fatalf("too few gaps to compare: bursty=%d smooth=%d", len(bg), len(sg))
	}
	bmed, smed := bg[len(bg)/2], sg[len(sg)/2]
	if bmed*4 > smed {
		t.Errorf("bursty median gap %d not well below smooth median %d", bmed, smed)
	}
}

// TestGenTraceDiurnal modulates the rate with a full-period sinusoid
// and checks the peak half-period holds measurably more arrivals.
func TestGenTraceDiurnal(t *testing.T) {
	tc := TraceConfig{Seed: 3, NumTenants: 2, MeanGapCycles: 1000,
		Process: "poisson", DurationCycles: 2_000_000,
		DiurnalAmplitude: 0.8, DiurnalPeriod: 2_000_000}
	jobs, err := GenTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	var peak, trough int
	for _, j := range jobs {
		if j.Arrival < tc.DurationCycles/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak < trough*2 {
		t.Errorf("diurnal peak half has %d arrivals vs trough %d; want a clear skew", peak, trough)
	}
}
