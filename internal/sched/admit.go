package sched

// Admission control for serve mode: a per-tenant token bucket in front
// of a bounded defer queue. Every decision — shed, defer, admit — is a
// pure function of the global barrier clock and the merged fleet state,
// so the admission log is byte-identical at every worker and shard
// count.

// AdmitConfig configures the serving front door.
type AdmitConfig struct {
	// TokensPer100k is each tenant's sustained admission budget in jobs
	// per 100_000 cycles. 0 disables admission control: every arrival is
	// admitted as fleet capacity allows and nothing is shed.
	TokensPer100k int
	// Burst is the token bucket capacity in jobs; a tenant idle long
	// enough may admit this many back to back. 0 defaults to
	// max(1, TokensPer100k).
	Burst int
	// MaxQueue bounds each tenant's defer queue; an arrival finding the
	// queue full is shed. 0 defaults to 32.
	MaxQueue int
}

func (a *AdmitConfig) enabled() bool { return a.TokensPer100k > 0 }

func (a *AdmitConfig) defaults() {
	if a.Burst <= 0 {
		a.Burst = a.TokensPer100k
		if a.Burst < 1 {
			a.Burst = 1
		}
	}
	if a.MaxQueue <= 0 {
		a.MaxQueue = 32
	}
}

// tokenScale is the integer sub-token unit: a bucket holds
// tokens*tokenScale and accrues elapsedCycles*rate per refill, so any
// window cadence refills exactly without float drift.
const tokenScale = 100_000

type tokenBucket struct {
	level int64 // sub-token units
	last  int64 // cycle of the last refill
}

func (b *tokenBucket) refill(now int64, cfg AdmitConfig) {
	b.level += (now - b.last) * int64(cfg.TokensPer100k)
	if lim := int64(cfg.Burst) * tokenScale; b.level > lim {
		b.level = lim
	}
	b.last = now
}

func (b *tokenBucket) take() bool {
	if b.level < tokenScale {
		return false
	}
	b.level -= tokenScale
	return true
}

// pendJob is one deferred arrival. paid marks a job whose admission
// token was already spent (a migration re-queue must not pay twice).
type pendJob struct {
	job  Job
	paid bool
}

// admitter is the serving front door's state: one bucket and one
// bounded FIFO per tenant, plus per-window aggregates for the decision
// log.
type admitter struct {
	cfg     AdmitConfig
	queues  [][]pendJob
	buckets []tokenBucket

	// window aggregates, flushed into the decision log at report
	// boundaries.
	winAdmitted int
	winShed     []int

	// totals for the SLO table.
	admitted []int
	shed     []int
}

func newAdmitter(cfg AdmitConfig, tenants int) *admitter {
	cfg.defaults()
	a := &admitter{cfg: cfg,
		queues:   make([][]pendJob, tenants),
		buckets:  make([]tokenBucket, tenants),
		winShed:  make([]int, tenants),
		admitted: make([]int, tenants),
		shed:     make([]int, tenants),
	}
	for t := range a.buckets {
		a.buckets[t].level = int64(cfg.Burst) * tokenScale
	}
	return a
}

// enqueue accepts one arrival into its tenant's defer queue, shedding
// it when admission control is on and the queue is full. Returns true
// if the job was kept.
func (a *admitter) enqueue(j Job) bool {
	t := j.Tenant
	if a.cfg.enabled() && len(a.queues[t]) >= a.cfg.MaxQueue {
		a.shed[t]++
		a.winShed[t]++
		return false
	}
	a.queues[t] = append(a.queues[t], pendJob{job: j})
	return true
}

// requeue re-inserts a migration re-queue at its (arrival, ID) position
// so the drain order stays the global arrival order. The job's token is
// already paid and a full queue cannot shed it — it was admitted once.
func (a *admitter) requeue(j Job) {
	t := j.Tenant
	q := a.queues[t]
	pos := 0
	for pos < len(q) &&
		(q[pos].job.Arrival < j.Arrival || (q[pos].job.Arrival == j.Arrival && q[pos].job.ID < j.ID)) {
		pos++
	}
	q = append(q, pendJob{})
	copy(q[pos+1:], q[pos:])
	q[pos] = pendJob{job: j, paid: true}
	a.queues[t] = q
}

// backlog is the total deferred job count.
func (a *admitter) backlog() int {
	n := 0
	for _, q := range a.queues {
		n += len(q)
	}
	return n
}

// tenantBacklog is one tenant's deferred job count.
func (a *admitter) tenantBacklog(t int) int { return len(a.queues[t]) }

// drain admits deferred jobs in global (arrival, ID) order until tokens
// or fleet capacity run out. route must return a destination with a
// free slab or nil; admit must place the job and cannot refuse. Called
// only at barriers, single-threaded.
func (a *admitter) drain(now int64, route func() bool, admit func(Job) error) error {
	if a.cfg.enabled() {
		for t := range a.buckets {
			a.buckets[t].refill(now, a.cfg)
		}
	}
	blocked := make([]bool, len(a.queues))
	for {
		best := -1
		for t, q := range a.queues {
			if len(q) == 0 || blocked[t] {
				continue
			}
			if best < 0 ||
				q[0].job.Arrival < a.queues[best][0].job.Arrival ||
				(q[0].job.Arrival == a.queues[best][0].job.Arrival && q[0].job.ID < a.queues[best][0].job.ID) {
				best = t
			}
		}
		if best < 0 {
			return nil
		}
		if !route() {
			// No device has a free slab: fleet capacity, not policy,
			// stops admission this window.
			return nil
		}
		head := a.queues[best][0]
		if a.cfg.enabled() && !head.paid && !a.buckets[best].take() {
			blocked[best] = true
			continue
		}
		a.queues[best] = a.queues[best][1:]
		if err := admit(head.job); err != nil {
			return err
		}
		// Migration re-queues (paid) were counted at first admission;
		// counting them again would break admitted+shed == arrived.
		if !head.paid {
			a.admitted[best]++
			a.winAdmitted++
		}
	}
}

// flushWindow drains the per-window aggregates, returning the admitted
// count and per-tenant shed counts since the last flush.
func (a *admitter) flushWindow() (admitted int, shed []int) {
	admitted = a.winAdmitted
	a.winAdmitted = 0
	shed = append([]int(nil), a.winShed...)
	for t := range a.winShed {
		a.winShed[t] = 0
	}
	return admitted, shed
}
