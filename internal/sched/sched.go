// Package sched implements a deterministic multi-tenant preemptive GPU
// scheduler on top of the simulator: N tenants submit Table-I kernel
// launches over time, the scheduler multiplexes them across the device's
// SMs, and higher-priority arrivals preempt lower-priority running jobs
// through the sim's Episode machinery using any preempt.Kind. Because
// every decision is a pure function of the seeded arrival trace and the
// simulator's deterministic clock, the same trace replayed under two
// techniques differs only by the techniques' context-switch costs —
// which is exactly the comparison the paper's motivation (§I, §II-B:
// multi-tenant GPU sharing needs low-latency preemption) calls for.
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ctxback/internal/isa"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/trace"
)

// Job is one tenant's kernel-launch request.
type Job struct {
	ID       int
	Tenant   int
	Kernel   string // Table-I abbreviation
	Arrival  int64  // cycle the request reaches the scheduler
	Priority int    // higher preempts lower
}

// TraceConfig seeds the deterministic arrival-trace generator.
type TraceConfig struct {
	Seed       int64
	NumJobs    int
	NumTenants int
	// MaxPriority bounds the priority draw: priorities are uniform in
	// [0, MaxPriority].
	MaxPriority int
	// MeanGapCycles is the mean inter-arrival gap.
	MeanGapCycles int64
	// Kernels is the abbreviation pool jobs draw from. Empty uses
	// DefaultKernelPool (the Table-I kernels every extended technique,
	// including SM-flushing, can compile).
	Kernels []string

	// Process selects the inter-arrival process. "" and "uniform" draw
	// gaps uniform in [0, 2*MeanGapCycles] — byte-compatible with traces
	// generated before the knob existed. "poisson" draws exponential
	// gaps, the memoryless open-loop arrivals a serving system sees.
	Process string
	// DurationCycles, when > 0, ends the trace at the first arrival past
	// the horizon. With NumJobs > 0 both bounds apply; with NumJobs == 0
	// the horizon is the sole bound (open-loop generation).
	DurationCycles int64
	// DiurnalAmplitude in [0, 1) modulates the arrival rate sinusoidally:
	// the instantaneous rate is the base rate times
	// 1 + A*sin(2*pi*t/DiurnalPeriod), so peaks arrive A times faster
	// than the mean and troughs A times slower.
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period in cycles; 0 defaults to
	// 256*MeanGapCycles.
	DiurnalPeriod int64
	// BurstFraction in [0, 1] marks the lowest ceil(frac*NumTenants)
	// tenant ids as bursty: each of their arrivals expands into a run of
	// closely spaced jobs (mean run length BurstLen, intra-run gaps
	// around MeanGapCycles/8).
	BurstFraction float64
	// BurstLen is the mean burst run length for bursty tenants; 0
	// defaults to 4 when BurstFraction > 0.
	BurstLen int
}

// maxTraceJobs caps open-loop generation so a mis-scaled rate/duration
// pair fails loudly instead of allocating without bound.
const maxTraceJobs = 5_000_000

// validate applies defaults and rejects configurations whose draws
// would overflow or never terminate.
func (tc *TraceConfig) validate() error {
	if tc.NumJobs < 0 {
		return fmt.Errorf("sched: NumJobs %d is negative", tc.NumJobs)
	}
	if tc.NumJobs == 0 && tc.DurationCycles <= 0 {
		tc.NumJobs = 8
	}
	if tc.NumTenants <= 0 {
		tc.NumTenants = 3
	}
	if tc.MaxPriority <= 0 {
		tc.MaxPriority = 3
	}
	if tc.MeanGapCycles <= 0 {
		tc.MeanGapCycles = 20_000
	}
	// The uniform draw is Int63n(2*mean+1): beyond half the int64 range
	// the bound wraps negative and Int63n panics.
	if tc.MeanGapCycles > math.MaxInt64/2-1 {
		return fmt.Errorf("sched: MeanGapCycles %d overflows the uniform gap draw (max %d)",
			tc.MeanGapCycles, int64(math.MaxInt64/2-1))
	}
	switch tc.Process {
	case "", "uniform", "poisson":
	default:
		return fmt.Errorf("sched: unknown arrival process %q (want uniform or poisson)", tc.Process)
	}
	if tc.DiurnalAmplitude < 0 || tc.DiurnalAmplitude >= 1 {
		return fmt.Errorf("sched: DiurnalAmplitude %v outside [0, 1)", tc.DiurnalAmplitude)
	}
	if tc.DiurnalAmplitude > 0 && tc.DiurnalPeriod <= 0 {
		tc.DiurnalPeriod = 256 * tc.MeanGapCycles
	}
	if tc.BurstFraction < 0 || tc.BurstFraction > 1 {
		return fmt.Errorf("sched: BurstFraction %v outside [0, 1]", tc.BurstFraction)
	}
	if tc.BurstFraction > 0 && tc.BurstLen <= 0 {
		tc.BurstLen = 4
	}
	return nil
}

// GenTrace expands the config into a concrete arrival trace. The same
// config always yields the same trace (single seeded source, fixed draw
// order: gap, tenant, kernel, priority per job). With the process,
// diurnal and burst knobs at their zero values the draw sequence is
// byte-identical to the original uniform generator.
func GenTrace(tc TraceConfig) ([]Job, error) {
	if err := tc.validate(); err != nil {
		return nil, err
	}
	pool := tc.Kernels
	if len(pool) == 0 {
		var err error
		pool, err = DefaultKernelPool()
		if err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	burstyTenants := int(math.Ceil(tc.BurstFraction * float64(tc.NumTenants)))
	var jobs []Job
	var arrival int64
	burstLeft, burstTenant := 0, 0
	for {
		if tc.NumJobs > 0 && len(jobs) >= tc.NumJobs {
			break
		}
		if len(jobs) >= maxTraceJobs {
			return nil, fmt.Errorf("sched: trace exceeds %d jobs before the %d-cycle horizon; raise the gap or shrink the duration",
				maxTraceJobs, tc.DurationCycles)
		}
		var tenant int
		if burstLeft > 0 {
			intra := tc.MeanGapCycles / 8
			if intra < 1 {
				intra = 1
			}
			arrival += 1 + rng.Int63n(intra)
			tenant = burstTenant
			burstLeft--
		} else {
			arrival += drawGap(rng, tc, arrival)
			tenant = rng.Intn(tc.NumTenants)
			if tenant < burstyTenants {
				// This arrival heads a run; the rest follow at intra-burst
				// gaps. Mean extra length BurstLen-1 keeps the run mean at
				// BurstLen.
				burstLeft = rng.Intn(2*tc.BurstLen - 1)
				burstTenant = tenant
			}
		}
		if tc.DurationCycles > 0 && arrival > tc.DurationCycles {
			break
		}
		jobs = append(jobs, Job{
			ID:       len(jobs),
			Tenant:   tenant,
			Kernel:   pool[rng.Intn(len(pool))],
			Arrival:  arrival,
			Priority: rng.Intn(tc.MaxPriority + 1),
		})
	}
	return jobs, nil
}

// drawGap draws one inter-arrival gap at trace time t under the
// configured process and diurnal modulation.
func drawGap(rng *rand.Rand, tc TraceConfig, t int64) int64 {
	m := tc.MeanGapCycles
	if tc.DiurnalAmplitude > 0 {
		rate := 1 + tc.DiurnalAmplitude*math.Sin(2*math.Pi*float64(t)/float64(tc.DiurnalPeriod))
		m = int64(float64(m) / rate)
		switch {
		case m < 1:
			m = 1
		case m > math.MaxInt64/2-1:
			m = math.MaxInt64/2 - 1
		}
	}
	if tc.Process == "poisson" {
		g := rng.ExpFloat64() * float64(m)
		if g >= math.MaxInt64/4 {
			g = math.MaxInt64 / 4
		}
		return int64(g)
	}
	// Uniform in [0, 2*mean]. With no diurnal modulation this stays the
	// historical Int63n(2*MeanGapCycles+1) draw on the untouched int64,
	// byte-compatible with pre-knob traces.
	return rng.Int63n(2*m + 1)
}

var (
	poolMu   sync.Mutex
	poolList []string
	poolDone bool
)

// DefaultKernelPool returns the Table-I kernels whose programs every
// extended technique can compile. SM-flushing refuses non-idempotent
// kernels, so a trace meant to compare all eight techniques must draw
// from this subset; the filter is computed once, in registry order.
// Only success is memoized — a transient construction failure is
// reported to the caller and retried on the next call rather than
// pinning every future trace to an empty pool.
func DefaultKernelPool() ([]string, error) {
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolDone {
		return append([]string(nil), poolList...), nil
	}
	wls, err := kernels.All(kernels.TestParams())
	if err != nil {
		return nil, fmt.Errorf("sched: default kernel pool: %w", err)
	}
	var list []string
	for _, wl := range wls {
		ok := true
		for _, k := range preempt.ExtendedKinds() {
			if _, err := preempt.New(k, wl.Prog); err != nil {
				ok = false
				break
			}
		}
		if ok {
			list = append(list, wl.Abbrev)
		}
	}
	if len(list) == 0 {
		return nil, errors.New("sched: default kernel pool is empty")
	}
	poolList, poolDone = list, true
	return append([]string(nil), poolList...), nil
}

// Config configures one scheduled run.
type Config struct {
	Dev    sim.Config
	Params kernels.Params
	// SlabBytes is the per-job device-memory slab; job i's buffers live
	// at 4096 + i*SlabBytes so tenants never alias. 0 picks a default
	// sized to the device memory and job count.
	SlabBytes int
	MaxCycles int64
	// Verify checks every job's output against its CPU golden reference
	// after the schedule drains.
	Verify bool
	// Metrics, when non-nil, receives per-tenant counters and latency
	// histograms after the run.
	Metrics *trace.Registry
	// Shards is the intra-device SM shard count (sim.Device.SetShards):
	// 0/1 run the device serially, n>1 shards its SMs across n
	// goroutines. Schedule outputs — decision log, per-tenant stats,
	// golden verification — are byte-identical at every setting.
	Shards int
}

// DefaultSchedConfig is the configuration cmd/schedsim and the harness
// comparison start from.
func DefaultSchedConfig() Config {
	return Config{
		Dev:       sim.DefaultConfig(),
		Params:    kernels.TestParams(),
		MaxCycles: 2_000_000_000,
		Verify:    true,
	}
}

// Event is one entry of the run's decision log. The log is part of the
// deterministic output: two runs of the same trace and technique must
// produce identical logs.
type Event struct {
	Cycle int64
	What  string // arrive, start, preempt, park, resume, resumed, complete
	Job   int
	SM    int // -1 when not SM-bound (arrive)
}

func (e Event) String() string {
	return fmt.Sprintf("%10d %-8s job=%d sm=%d", e.Cycle, e.What, e.Job, e.SM)
}

// smState is the scheduler's per-SM state machine.
type smState int

const (
	smIdle     smState = iota
	smRunning          // cur is executing
	smSaving           // victim's episode is draining/saving; cur is the incoming job
	smResuming         // cur's parked episode is restoring/replaying
)

// runJob is a Job's runtime state across the schedule.
type runJob struct {
	job    Job
	wl     *kernels.Workload
	launch *sim.Launch
	sm     int

	// admitAt is the cycle the scheduler first considers the job: the
	// trace arrival normally, the failover instant for a job re-admitted
	// to a surviving device after its original device was killed.
	// Queueing and turnaround statistics always measure from the
	// original Job.Arrival.
	admitAt int64

	started  bool
	start    int64 // first placement cycle
	complete int64

	preemptions int
	episode     *sim.Episode // parked episode while suspended
}

type smSlot struct {
	id     int
	state  smState
	cur    *runJob   // Running/Resuming: the active job; Saving: the incoming job
	victim *runJob   // Saving: the job being swapped out
	parked []*runJob // suspended jobs awaiting resume on this SM
}

type scheduler struct {
	cfg  Config
	d    *sim.Device
	mux  *muxRuntime
	kind preempt.Kind

	jobs    []*runJob // admission order
	slots   []*smSlot
	waiting []*runJob
	nextArr int

	// progOrder lists the distinct programs in first-launch order —
	// exactly the order sim.ExportState serializes them, so a checkpoint
	// of this device restores against progOrder positionally.
	progOrder []*isa.Program
	progSeen  map[*isa.Program]bool

	// onComplete, when set, observes every job completion on this
	// scheduler's device (the fleet layer copies results host-side at
	// this point, so a later device kill cannot lose delivered output).
	onComplete func(*runJob)

	// quota, when non-nil, caps each tenant's concurrently held SMs on
	// this device (the serving hypervisor's share re-arbitration writes
	// it at window boundaries). Tenants absent from the map hold 0, so a
	// populated map must cover every admissible tenant.
	quota map[int]int

	events []Event
	nDone  int
}

// Run executes the arrival trace under one preemption technique and
// returns the per-job and per-tenant statistics. The run is a single
// deterministic simulation: no goroutines, no map-order dependence, no
// wall-clock input.
func Run(cfg Config, kind preempt.Kind, jobs []Job) (*Result, error) {
	s, err := newScheduler(cfg, kind, jobs, nil)
	if err != nil {
		return nil, err
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result()
}

const slabBase = 4096

// slabIndex resolves a job's memory-slab index: its position in this
// scheduler's admission order by default, or the fleet-wide index from
// slabOf — a fleet assigns every job a GLOBAL slab index so a job keeps
// the same device addresses wherever failover re-admits it (kernel
// output depends on MemBase, so a stable slab is what makes the
// failover run's final memory byte-comparable to the undisturbed run).
func slabIndex(slabOf map[int]int, jobID, pos int) int {
	if slabOf == nil {
		return pos
	}
	return slabOf[jobID]
}

func newScheduler(cfg Config, kind preempt.Kind, jobs []Job, slabOf map[int]int) (*scheduler, error) {
	if len(jobs) == 0 {
		return nil, errors.New("sched: empty trace")
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	if cfg.SlabBytes <= 0 {
		cfg.SlabBytes = (cfg.Dev.GlobalMemBytes - slabBase) / len(jobs)
		cfg.SlabBytes -= cfg.SlabBytes % 4096
	}
	maxIdx := 0
	for i, j := range jobs {
		if idx := slabIndex(slabOf, j.ID, i); idx > maxIdx {
			maxIdx = idx
		}
	}
	if slabBase+(maxIdx+1)*cfg.SlabBytes > cfg.Dev.GlobalMemBytes {
		return nil, fmt.Errorf("sched: slab index %d x %d-byte slabs exceed device memory (%d bytes)",
			maxIdx, cfg.SlabBytes, cfg.Dev.GlobalMemBytes)
	}
	d, err := sim.NewDevice(cfg.Dev)
	if err != nil {
		return nil, err
	}
	if cfg.Shards != 0 {
		d.SetShards(cfg.Shards)
	}
	s := &scheduler{cfg: cfg, d: d, mux: newMux(kind), kind: kind,
		progSeen: make(map[*isa.Program]bool)}
	// Jobs are admitted in (arrival, ID) order; ties resolve by ID so
	// simultaneous arrivals admit deterministically.
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})
	for i, j := range ordered {
		p := cfg.Params
		p.MemBase = slabBase + slabIndex(slabOf, j.ID, i)*cfg.SlabBytes
		wl, err := kernels.ByAbbrev(j.Kernel, p)
		if err != nil {
			return nil, fmt.Errorf("sched: job %d: %w", j.ID, err)
		}
		// Each job fills every warp slot of its SM (the paper's
		// persistent-kernel batch model): preemption is the ONLY way a
		// newcomer gets on, and a parked job's pending blocks can never
		// race its own resume.
		occ, err := d.ComputeOccupancy(wl.Prog, p.WarpsPerBlock)
		if err != nil {
			return nil, fmt.Errorf("sched: job %d (%s): %w", j.ID, j.Kernel, err)
		}
		p.NumBlocks = occ.BlocksPerSM
		wl, err = kernels.ByAbbrev(j.Kernel, p)
		if err != nil {
			return nil, fmt.Errorf("sched: job %d: %w", j.ID, err)
		}
		tech, err := preempt.New(kind, wl.Prog)
		if err != nil {
			return nil, fmt.Errorf("sched: job %d (%s) under %v: %w", j.ID, j.Kernel, kind, err)
		}
		s.mux.add(wl.Prog, tech)
		s.jobs = append(s.jobs, &runJob{job: j, wl: wl, sm: -1, admitAt: j.Arrival})
	}
	d.AttachRuntime(s.mux)
	for i := 0; i < cfg.Dev.NumSMs; i++ {
		s.slots = append(s.slots, &smSlot{id: i, state: smIdle})
	}
	return s, nil
}

func (s *scheduler) log(cycle int64, what string, job, sm int) {
	s.events = append(s.events, Event{Cycle: cycle, What: what, Job: job, SM: sm})
}

// run drives the whole schedule to completion and verifies it.
func (s *scheduler) run() error {
	done, err := s.runTo(math.MaxInt64)
	if err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("sched: run paused at cycle %d with %d/%d jobs complete",
			s.d.Now(), s.nDone, len(s.jobs))
	}
	return s.verify()
}

// runTo drives the event loop — admit arrivals, poll episode/launch
// transitions, assign freed SMs, then step the simulator to the next
// event (or fast-forward an idle device to the next arrival) — until
// every job completes (true) or the clock reaches stop (false), the
// fleet's checkpoint/kill boundary. The pause is a plain observation
// point: warps may be mid-flight, mid-save or parked, exactly what a
// whole-device snapshot must capture. At stop=MaxInt64 the pause terms
// never fire and the loop is the original whole-run loop, byte for
// byte — the sched-smoke golden pins that.
func (s *scheduler) runTo(stop int64) (bool, error) {
	cond := s.eventReady
	if stop != math.MaxInt64 {
		cond = func() bool { return s.d.Now() >= stop || s.eventReady() }
	}
	for {
		for {
			changed, err := s.admitArrivals()
			if err != nil {
				return false, err
			}
			if c, err := s.pollTransitions(); err != nil {
				return false, err
			} else if c {
				changed = true
			}
			if c, err := s.assignIdle(); err != nil {
				return false, err
			} else if c {
				changed = true
			}
			if !changed {
				break
			}
		}
		if s.nDone == len(s.jobs) {
			return true, nil
		}
		if s.d.Now() >= stop {
			return false, nil
		}
		// eventReady is a boundary condition except for its arrival
		// term, whose earliest firing cycle is known exactly — passing
		// it (clamped to the pause cycle) as the time bound keeps the
		// epoch engine byte-identical to the serial one (the
		// arrival-crossing step commits serially).
		nextArrival := int64(math.MaxInt64)
		if s.nextArr < len(s.jobs) {
			nextArrival = s.jobs[s.nextArr].admitAt
		}
		bound := nextArrival
		if stop < bound {
			bound = stop
		}
		if err := s.d.RunUntilBounded(cond, bound, s.cfg.MaxCycles); err != nil {
			return false, err
		}
		if s.eventReady() {
			continue
		}
		if s.d.Now() >= stop {
			return false, nil
		}
		// The device cannot make progress and no transition is ready:
		// everything is either parked or not yet arrived.
		if s.nextArr < len(s.jobs) {
			adv := s.jobs[s.nextArr].admitAt
			if stop < adv {
				adv = stop
			}
			s.d.AdvanceTo(adv)
			continue
		}
		// A quota-stalled device is not deadlocked: every queued or
		// parked job belongs to a tenant at its SM cap, and only a
		// completion elsewhere in the window or the hypervisor's next
		// re-arbitration can free it. Pause at the window boundary and
		// report "not done" instead of erroring.
		if s.quotaStalled(stop) {
			s.d.AdvanceTo(stop)
			return false, nil
		}
		// The ready queue's O(1) head peek distinguishes a truly empty
		// device from an indexed issue that never became runnable (which
		// would indicate a scheduler bug, not a workload deadlock).
		if next, ok := s.d.NextIssueTime(); ok {
			return false, fmt.Errorf("sched: deadlock at cycle %d: %d/%d jobs complete, next indexed issue at cycle %d never ran",
				s.d.Now(), s.nDone, len(s.jobs), next)
		}
		return false, fmt.Errorf("sched: deadlock at cycle %d: %d/%d jobs complete, nothing runnable (no pending issue indexed)",
			s.d.Now(), s.nDone, len(s.jobs))
	}
}

// quotaStalled reports whether the only thing keeping this device from
// progressing is the tenant quota map: there is pending work (waiting
// or parked) but every candidate's tenant is at its cap. Only
// meaningful at a finite pause boundary — a whole-run drive to
// MaxInt64 must surface the stall as the deadlock it would be.
func (s *scheduler) quotaStalled(stop int64) bool {
	if s.quota == nil || stop == math.MaxInt64 {
		return false
	}
	pending := len(s.waiting) > 0
	for _, sl := range s.slots {
		if len(sl.parked) > 0 {
			pending = true
		}
	}
	return pending
}

func (s *scheduler) eventReady() bool {
	if s.nextArr < len(s.jobs) && s.d.Now() >= s.jobs[s.nextArr].admitAt {
		return true
	}
	for _, sl := range s.slots {
		switch sl.state {
		case smSaving:
			if sl.victim.episode.Saved() {
				return true
			}
		case smResuming:
			if sl.cur.episode.Finished() {
				return true
			}
		case smRunning:
			if sl.cur.launch.Done() {
				return true
			}
		}
	}
	return false
}

// tenantActive counts the SMs tenant t currently holds or is acquiring
// on this device: a Running/Resuming slot's active job and a Saving
// slot's incoming job (the outgoing victim is releasing, not holding).
func (s *scheduler) tenantActive(t int) int {
	n := 0
	for _, sl := range s.slots {
		if sl.state != smIdle && sl.cur != nil && sl.cur.job.Tenant == t {
			n++
		}
	}
	return n
}

// underQuota reports whether tenant t may take one more SM here.
func (s *scheduler) underQuota(t int) bool {
	return s.quota == nil || s.tenantActive(t) < s.quota[t]
}

// admitArrivals admits every job whose admission cycle has passed:
// place on an idle SM, else preempt the lowest-priority strictly-lower
// running job, else queue. A tenant at its SM quota queues regardless —
// completions and the next re-arbitration free it.
func (s *scheduler) admitArrivals() (bool, error) {
	changed := false
	for s.nextArr < len(s.jobs) && s.jobs[s.nextArr].admitAt <= s.d.Now() {
		j := s.jobs[s.nextArr]
		s.nextArr++
		changed = true
		s.log(j.admitAt, "arrive", j.job.ID, -1)
		if !s.underQuota(j.job.Tenant) {
			s.waiting = append(s.waiting, j)
			continue
		}
		if sl := s.pickIdle(j); sl != nil {
			if err := s.place(j, sl); err != nil {
				return false, err
			}
			continue
		}
		if sl := s.pickVictim(j); sl != nil {
			if err := s.preemptFor(j, sl); err != nil {
				return false, err
			}
			continue
		}
		s.waiting = append(s.waiting, j)
	}
	return changed, nil
}

// pickIdle returns the lowest-numbered idle SM with physical headroom
// for at least one of j's blocks, or nil. An idle SM can still be
// crowded by done-warp residue of parked tenants; placing a grid that
// lands zero blocks would wedge the slot (nothing resident, no event).
func (s *scheduler) pickIdle(j *runJob) *smSlot {
	for _, sl := range s.slots {
		if sl.state == smIdle && s.d.CanHostBlock(sl.id, j.wl.Prog, j.wl.WarpsPerBlock) {
			return sl
		}
	}
	return nil
}

// pickVictim returns the Running slot whose job has the lowest priority
// strictly below j's (ties: latest arrival — preempt the newest work —
// then lowest SM id), or nil when no running job may be displaced. A
// slot that even after saving its victim could not host one of j's
// blocks is not a candidate: the displacement would evict a job without
// getting the newcomer resident.
func (s *scheduler) pickVictim(j *runJob) *smSlot {
	var best *smSlot
	for _, sl := range s.slots {
		if sl.state != smRunning || sl.cur.job.Priority >= j.job.Priority {
			continue
		}
		if !s.d.CanDisplace(sl.id, sl.cur.launch, j.wl.Prog, j.wl.WarpsPerBlock) {
			continue
		}
		if best == nil {
			best = sl
			continue
		}
		b, c := best.cur.job, sl.cur.job
		if c.Priority < b.Priority || (c.Priority == b.Priority && c.Arrival > b.Arrival) {
			best = sl
		}
	}
	return best
}

// place launches j pinned to slot sl (which must be idle). Blocks land
// immediately: the SM has every slot free.
func (s *scheduler) place(j *runJob, sl *smSlot) error {
	if err := s.launch(j, sl.id); err != nil {
		return err
	}
	sl.state = smRunning
	sl.cur = j
	if !j.started {
		j.started = true
		j.start = s.d.Now()
	}
	s.log(s.d.Now(), "start", j.job.ID, sl.id)
	return nil
}

// preemptFor raises a preemption episode against sl's running job and
// launches j pinned to the SM; j's blocks place the moment the victim's
// last context store lands (the sim's save-complete redispatch). A
// drained victim (all warps already retired) is not an error — the SM
// is about to free, so j just queues.
func (s *scheduler) preemptFor(j *runJob, sl *smSlot) error {
	ep, err := s.d.Preempt(sl.id, s.mux)
	if errors.Is(err, sim.ErrDrained) {
		s.waiting = append(s.waiting, j)
		return nil
	}
	if err != nil {
		return fmt.Errorf("sched: preempting job %d for job %d: %w", sl.cur.job.ID, j.job.ID, err)
	}
	// The episode must have swept exactly the victim job's warps: a
	// foreign victim means another launch had live warps on the SM, and
	// resuming that episode through this job would restore state the
	// scheduler attributes to someone else. Fail loudly — a silent mixed
	// episode wedges the slot forever.
	own := make(map[*sim.Warp]bool, len(sl.cur.launch.Warps))
	for _, w := range sl.cur.launch.Warps {
		own[w] = true
	}
	for _, vw := range ep.Victims {
		if !own[vw] {
			return fmt.Errorf("sched: preempting job %d on SM %d swept warp %d of a different launch (%s)",
				sl.cur.job.ID, sl.id, vw.ID, vw.Prog.Name)
		}
	}
	v := sl.cur
	v.episode = ep
	v.preemptions++
	s.log(s.d.Now(), "preempt", v.job.ID, sl.id)
	sl.state = smSaving
	sl.victim = v
	sl.cur = j
	return s.launch(j, sl.id)
}

func (s *scheduler) launch(j *runJob, sm int) error {
	if j.launch != nil {
		return fmt.Errorf("sched: job %d launched twice", j.job.ID)
	}
	if j.wl.Init != nil {
		if err := j.wl.Init(s.d); err != nil {
			return fmt.Errorf("sched: job %d init: %w", j.job.ID, err)
		}
	}
	l, err := s.d.Launch(sim.LaunchSpec{
		Prog:          j.wl.Prog,
		NumBlocks:     j.wl.NumBlocks,
		WarpsPerBlock: j.wl.WarpsPerBlock,
		Setup:         j.wl.WarpSetup,
		SMFilter:      []int{sm},
	})
	if err != nil {
		return fmt.Errorf("sched: job %d launch: %w", j.job.ID, err)
	}
	j.launch = l
	j.sm = sm
	if !s.progSeen[j.wl.Prog] {
		s.progSeen[j.wl.Prog] = true
		s.progOrder = append(s.progOrder, j.wl.Prog)
	}
	return nil
}

// pollTransitions advances the per-SM state machines on episode and
// launch boundaries.
func (s *scheduler) pollTransitions() (bool, error) {
	changed := false
	for _, sl := range s.slots {
		switch sl.state {
		case smSaving:
			if !sl.victim.episode.Saved() {
				continue
			}
			v := sl.victim
			sl.victim = nil
			sl.parked = append(sl.parked, v)
			s.log(v.episode.AllSavedCycle, "park", v.job.ID, sl.id)
			sl.state = smRunning
			inc := sl.cur
			if !inc.started {
				inc.started = true
				// The SM is physically free at the last context store,
				// which is where the incoming blocks were placed.
				inc.start = v.episode.AllSavedCycle
			}
			s.log(inc.start, "start", inc.job.ID, sl.id)
			changed = true
		case smResuming:
			if !sl.cur.episode.Finished() {
				continue
			}
			s.log(sl.cur.episode.AllResumed, "resumed", sl.cur.job.ID, sl.id)
			sl.cur.episode = nil
			sl.state = smRunning
			changed = true
		case smRunning:
			if !sl.cur.launch.Done() {
				continue
			}
			j := sl.cur
			j.complete = launchEnd(j.launch)
			s.log(j.complete, "complete", j.job.ID, sl.id)
			sl.cur = nil
			sl.state = smIdle
			s.nDone++
			if s.onComplete != nil {
				s.onComplete(j)
			}
			changed = true
		}
	}
	return changed, nil
}

// launchEnd is the cycle the launch's last warp fully retired
// (including outstanding stores) — deterministic, unlike the event
// loop's observation cycle.
func launchEnd(l *sim.Launch) int64 {
	var end int64
	for _, w := range l.Warps {
		if w.ReadyAt > end {
			end = w.ReadyAt
		}
	}
	return end
}

// assignIdle hands each idle SM its next job: the highest-priority
// candidate among the global waiting queue and the SM's own parked
// victims (ties: earlier arrival, then lower job ID; a parked job wins
// a full tie — it has already paid a context switch).
func (s *scheduler) assignIdle() (bool, error) {
	changed := false
	for _, sl := range s.slots {
		if sl.state != smIdle {
			continue
		}
		wi := s.bestStartable(sl, s.waiting)
		pi := s.bestResumable(sl.parked)
		if wi < 0 && pi < 0 {
			continue
		}
		usePark := pi >= 0 && (wi < 0 || !jobLess(s.waiting[wi].job, sl.parked[pi].job))
		if usePark {
			v := sl.parked[pi]
			sl.parked = append(sl.parked[:pi], sl.parked[pi+1:]...)
			if err := s.d.Resume(v.episode); err != nil {
				return false, fmt.Errorf("sched: resuming job %d: %w", v.job.ID, err)
			}
			sl.state = smResuming
			sl.cur = v
			s.log(v.episode.ResumeStart, "resume", v.job.ID, sl.id)
		} else {
			if err := s.place(s.waiting[wi], sl); err != nil {
				return false, err
			}
			s.waiting = append(s.waiting[:wi], s.waiting[wi+1:]...)
		}
		changed = true
	}
	return changed, nil
}

// jobLess orders jobs for dispatch: higher priority first, then earlier
// arrival, then lower ID.
func jobLess(a, b Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// bestIndex returns the index of the best job under jobLess, or -1.
func bestIndex(js []*runJob) int {
	best := -1
	for i, j := range js {
		if best < 0 || jobLess(j.job, js[best].job) {
			best = i
		}
	}
	return best
}

// bestEligible is bestIndex restricted to jobs whose tenant is under
// its SM quota; with no quota map it is exactly bestIndex.
// bestResumable is bestEligible restricted to parked victims whose SM
// has physical headroom to take them back right now. Retired warps of a
// partially-finished block keep their slots until the whole block
// completes, so an SM can carry residue from several parked tenants;
// the most recently parked victim always fits (its launch fit alongside
// all of today's residue), so skipping unresumable ones cannot deadlock.
func (s *scheduler) bestResumable(parked []*runJob) int {
	best := -1
	for i, j := range parked {
		if !s.d.CanResume(j.episode) {
			continue
		}
		if s.quota != nil && !s.underQuota(j.job.Tenant) {
			continue
		}
		if best < 0 || jobLess(j.job, parked[best].job) {
			best = i
		}
	}
	return best
}

func (s *scheduler) bestEligible(js []*runJob) int {
	if s.quota == nil {
		return bestIndex(js)
	}
	best := -1
	for i, j := range js {
		if !s.underQuota(j.job.Tenant) {
			continue
		}
		if best < 0 || jobLess(j.job, js[best].job) {
			best = i
		}
	}
	return best
}

// bestStartable is bestEligible restricted to jobs slot sl can
// physically host right now (see pickIdle for why a zero-block
// placement must never happen).
func (s *scheduler) bestStartable(sl *smSlot, js []*runJob) int {
	best := -1
	for i, j := range js {
		if !s.d.CanHostBlock(sl.id, j.wl.Prog, j.wl.WarpsPerBlock) {
			continue
		}
		if s.quota != nil && !s.underQuota(j.job.Tenant) {
			continue
		}
		if best < 0 || jobLess(j.job, js[best].job) {
			best = i
		}
	}
	return best
}

func (s *scheduler) verify() error {
	if !s.cfg.Verify {
		return nil
	}
	for _, j := range s.jobs {
		if err := j.wl.Verify(s.d); err != nil {
			return fmt.Errorf("sched: job %d (%s, tenant %d) output corrupt after scheduling: %w",
				j.job.ID, j.job.Kernel, j.job.Tenant, err)
		}
	}
	return nil
}
