package sched

import (
	"math"
	"testing"

	"ctxback/internal/preempt"
)

// TestPauseWindowEquivalence: driving the scheduler in small runTo
// windows must be byte-identical to one uninterrupted run.
func TestPauseWindowEquivalence(t *testing.T) {
	jobs, err := GenTrace(TraceConfig{Seed: 7, NumJobs: 30, NumTenants: 4, MeanGapCycles: 1500})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSchedConfig()
	cfg.Dev.NumSMs = 2
	cfg.Dev.GlobalMemBytes = 256 << 20

	one, err := newScheduler(cfg, preempt.CTXBack, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := one.run(); err != nil {
		t.Fatal(err)
	}

	win, err := newScheduler(cfg, preempt.CTXBack, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var stop int64
	for {
		stop += 2000
		done, err := win.runTo(stop)
		if err != nil {
			t.Fatalf("windowed runTo at %d: %v", stop, err)
		}
		if done {
			break
		}
		if stop > 500_000_000 {
			t.Fatal("windowed run never finished")
		}
	}
	if err := win.verify(); err != nil {
		t.Fatalf("windowed run verify: %v", err)
	}
	_ = math.MaxInt64
}
