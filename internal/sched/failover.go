package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ctxback/internal/isa"
	"ctxback/internal/kernels"
	"ctxback/internal/preempt"
	"ctxback/internal/sim"
	"ctxback/internal/snapshot"
	"ctxback/internal/trace"
)

// Fleet failover: RunFleet partitions one arrival trace across several
// devices, checkpoints every device on a fixed cadence with
// internal/snapshot, and survives a chaos-injected device kill. The
// recovery moves are first-class scheduler decisions:
//
//   - jobs with no device state at the kill are re-admitted round-robin
//     to the surviving devices ("readmit");
//   - jobs with device state restore from the dead device's last
//     whole-device checkpoint onto a replacement shell — warm from the
//     context pool when one is configured ("restore-warm"), built cold
//     otherwise ("restore-cold") — and the replacement replays the dead
//     device's schedule cycle-exactly from the checkpoint;
//   - under techniques whose episodes do not survive a snapshot trip
//     (!preempt.Relocatable), or when no checkpoint exists yet, the dead
//     device's launched jobs deterministically re-run from scratch
//     ("rerun").
//
// Every job's kernel writes only its own fleet-global memory slab, and
// a job keeps that slab wherever it lands, so the final per-job slab
// bytes are a pure function of (kernel, params, MemBase) — independent
// of which device ran the job or when. That is the failover determinism
// argument: the killed run's final memory and verify state is
// byte-identical to the undisturbed run's, which the
// crash-at-every-boundary equivalence test checks digest by digest.
//
// Completed output is copied host-side the moment a job completes (the
// onComplete hook), mirroring real schedulers' result read-back — a
// kill can never lose output that was already delivered.

// FailoverConfig configures a fleet run.
type FailoverConfig struct {
	// Devices is the fleet width; the trace is partitioned round-robin
	// in (arrival, ID) order.
	Devices int
	// CheckpointEvery is the whole-device checkpoint cadence in cycles
	// (0 disables checkpointing; a kill then forces the rerun path).
	CheckpointEvery int64
	// KillDevice/KillCycle inject the device kill (-1 disables it).
	KillDevice int
	KillCycle  int64
	// WarmPool keeps this many pre-built device shells warm so a
	// restore skips construction (snapshot.ColdSetupCycles); 0 restores
	// cold.
	WarmPool int

	// DecisionSink, when non-nil, streams each decision-log line
	// (rendered with FleetEvent.String) as it is emitted instead of
	// accumulating FleetResult.Decisions; Render then omits the log and
	// the caller replays the sink after it. The caller flushes the sink.
	DecisionSink *trace.LineSink
}

// decide records one fleet decision: streamed to the sink when set,
// accumulated on the result otherwise. Both paths render through
// FleetEvent.String, so the emitted bytes are identical.
func (fo *FailoverConfig) decide(fr *FleetResult, e FleetEvent) {
	if fo.DecisionSink != nil {
		fo.DecisionSink.WriteLine(e.String())
		return
	}
	fr.Decisions = append(fr.Decisions, e)
}

// FleetEvent is one entry of the fleet-level decision log.
type FleetEvent struct {
	Cycle  int64
	What   string // checkpoint, kill, restore-warm, restore-cold, rerun, readmit
	Device int
	Job    int // -1 for device-scoped events
	Detail string
}

func (e FleetEvent) String() string {
	s := fmt.Sprintf("%10d %-12s dev=%d", e.Cycle, e.What, e.Device)
	if e.Job >= 0 {
		s += fmt.Sprintf(" job=%d", e.Job)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// FleetJobStats is one job's outcome across the fleet.
type FleetJobStats struct {
	JobStats
	// Device is the device the job's completion was observed on (a
	// replacement device gets the next free fleet id).
	Device int
	// Digest is the FNV-1a hash of the job's memory slab at completion,
	// the byte-comparable final-state witness.
	Digest uint64
}

// FleetResult is the outcome of one fleet run.
type FleetResult struct {
	Kind    preempt.Kind
	Jobs    []FleetJobStats // (arrival, ID) order
	Tenants []TenantStats
	// Makespan is the latest completion cycle anywhere in the fleet
	// (re-run recovery work is stamped relative to the kill instant).
	Makespan         int64
	TotalPreemptions int64
	Decisions        []FleetEvent
	// Checkpoints counts whole-device checkpoints taken.
	Checkpoints int
	// Restore reports the replacement restore's path and cost when the
	// failover restored from a checkpoint (nil otherwise).
	Restore *snapshot.Outcome
}

// fnv1a64 hashes b (FNV-1a, 64-bit).
func fnv1a64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// slabDigest hashes one job's slab words on device d.
func slabDigest(d *sim.Device, memBase, slabBytes int) uint64 {
	words := d.Mem[memBase/4 : (memBase+slabBytes)/4]
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	return fnv1a64(buf)
}

// ckpt is one device's checkpoint: the encoded snapshot plus the
// scheduler metadata needed to resume the schedule from it.
type ckpt struct {
	epoch uint64
	cycle int64
	enc   []byte
	progs []*isa.Program // first-launch order = DeviceState.Progs order
	meta  schedMeta
}

type schedMeta struct {
	nDone int
	jobs  []jobMeta // parallel to scheduler.jobs
	slots []slotMeta
}

type jobMeta struct {
	started         bool
	start, complete int64
	preemptions     int
	sm              int
	launchIdx       int // index into the export's Launches, -1 none
	episodeIdx      int // index into the export's Episodes, -1 none
}

type slotMeta struct {
	state       smState
	cur, victim int // indices into scheduler.jobs, -1 none
	parked      []int
}

// checkpoint exports the device and records where every job's launch
// and episode landed in the export, so a restore can re-link them.
func (s *scheduler) checkpoint(epoch uint64) (*ckpt, error) {
	st, idx := s.d.ExportState()
	enc := snapshot.Encode(&snapshot.Snapshot{Epoch: epoch, State: st})
	lidx := make(map[*sim.Launch]int, len(idx.Launches))
	for i, l := range idx.Launches {
		lidx[l] = i
	}
	eidx := make(map[*sim.Episode]int, len(idx.Episodes))
	for i, e := range idx.Episodes {
		eidx[e] = i
	}
	// The program list must mirror the export's first-seen-in-launch
	// order exactly: ImportState resolves embedded programs positionally.
	// Deriving it from the export (not progOrder) also keeps it correct
	// when completed launches have been pruned from the device.
	var progs []*isa.Program
	seenProg := make(map[*isa.Program]bool)
	for _, l := range idx.Launches {
		if !seenProg[l.Spec.Prog] {
			seenProg[l.Spec.Prog] = true
			progs = append(progs, l.Spec.Prog)
		}
	}
	c := &ckpt{epoch: epoch, cycle: s.d.Now(), enc: enc, progs: progs}
	c.meta.nDone = s.nDone
	jobPos := make(map[*runJob]int, len(s.jobs))
	for i, j := range s.jobs {
		jobPos[j] = i
		jm := jobMeta{started: j.started, start: j.start, complete: j.complete,
			preemptions: j.preemptions, sm: j.sm, launchIdx: -1, episodeIdx: -1}
		if j.launch != nil {
			li, ok := lidx[j.launch]
			if !ok {
				return nil, fmt.Errorf("sched: job %d launch missing from device export", j.job.ID)
			}
			jm.launchIdx = li
		}
		if j.episode != nil {
			ei, ok := eidx[j.episode]
			if !ok {
				return nil, fmt.Errorf("sched: job %d episode missing from device export", j.job.ID)
			}
			jm.episodeIdx = ei
		}
		c.meta.jobs = append(c.meta.jobs, jm)
	}
	for _, sl := range s.slots {
		sm := slotMeta{state: sl.state, cur: -1, victim: -1}
		if sl.cur != nil {
			sm.cur = jobPos[sl.cur]
		}
		if sl.victim != nil {
			sm.victim = jobPos[sl.victim]
		}
		for _, p := range sl.parked {
			sm.parked = append(sm.parked, jobPos[p])
		}
		c.meta.slots = append(c.meta.slots, sm)
	}
	return c, nil
}

// restoreFrom revives the checkpoint as a replacement scheduler: fresh
// technique instances drive the restored device (only relocatable kinds
// may take this path), and the schedule resumes restricted to the jobs
// that had a launch at the checkpoint — the rest re-admit elsewhere.
// The restore goes through the speculative path against the same
// authoritative image, so Validate is a cheap post-replay certainty
// check the fleet runs before trusting the replacement's output.
func restoreFrom(c *ckpt, cfg Config, kind preempt.Kind, orig []*runJob,
	pool *snapshot.Pool) (*scheduler, *snapshot.Restored, error) {
	if len(orig) != len(c.meta.jobs) {
		return nil, nil, fmt.Errorf("sched: checkpoint covers %d jobs, scheduler has %d",
			len(c.meta.jobs), len(orig))
	}
	mux := newMux(kind)
	for _, p := range c.progs {
		t, err := preempt.New(kind, p)
		if err != nil {
			return nil, nil, fmt.Errorf("sched: rebuilding %v for restore: %w", kind, err)
		}
		mux.add(p, t)
	}
	res, err := snapshot.Restore(pool, c.enc, c.enc, c.epoch, mux, c.progs...)
	if err != nil {
		return nil, nil, err
	}
	s := &scheduler{cfg: cfg, d: res.Device, mux: mux, kind: kind,
		progSeen: make(map[*isa.Program]bool),
		progOrder: append([]*isa.Program(nil), c.progs...)}
	for _, p := range c.progs {
		s.progSeen[p] = true
	}
	kept := make(map[int]*runJob, len(orig))
	nDone := 0
	for i, jm := range c.meta.jobs {
		if jm.launchIdx < 0 {
			// Unlaunched (the caller re-admits it) or completed and
			// pruned from the image (it owes nothing): either way the
			// restored scheduler does not carry it.
			continue
		}
		if jm.complete != 0 {
			nDone++
		}
		o := orig[i]
		rj := &runJob{job: o.job, wl: o.wl, admitAt: o.admitAt, sm: jm.sm,
			started: jm.started, start: jm.start, complete: jm.complete,
			preemptions: jm.preemptions,
			launch:      res.Index.Launches[jm.launchIdx]}
		if jm.episodeIdx >= 0 {
			rj.episode = res.Index.Episodes[jm.episodeIdx]
		}
		kept[i] = rj
		s.jobs = append(s.jobs, rj)
	}
	s.nextArr = len(s.jobs)
	s.nDone = nDone
	for i, sm := range c.meta.slots {
		sl := &smSlot{id: i, state: sm.state}
		link := func(pos int) (*runJob, error) {
			rj := kept[pos]
			if rj == nil {
				return nil, fmt.Errorf("sched: slot %d references job without checkpoint launch", i)
			}
			return rj, nil
		}
		if sm.cur >= 0 {
			if sl.cur, err = link(sm.cur); err != nil {
				return nil, nil, err
			}
		}
		if sm.victim >= 0 {
			if sl.victim, err = link(sm.victim); err != nil {
				return nil, nil, err
			}
		}
		for _, pi := range sm.parked {
			p, err := link(pi)
			if err != nil {
				return nil, nil, err
			}
			sl.parked = append(sl.parked, p)
		}
		s.slots = append(s.slots, sl)
	}
	return s, res, nil
}

// admitJob inserts a failover re-admission: the job keeps its identity,
// priority and fleet-global memory slab, but first competes for this
// scheduler's device at cycle at (the failover instant).
func (s *scheduler) admitJob(j Job, memBase int, at int64) error {
	p := s.cfg.Params
	p.MemBase = memBase
	wl, err := kernels.ByAbbrev(j.Kernel, p)
	if err != nil {
		return fmt.Errorf("sched: readmitting job %d: %w", j.ID, err)
	}
	occ, err := s.d.ComputeOccupancy(wl.Prog, p.WarpsPerBlock)
	if err != nil {
		return fmt.Errorf("sched: readmitting job %d (%s): %w", j.ID, j.Kernel, err)
	}
	p.NumBlocks = occ.BlocksPerSM
	wl, err = kernels.ByAbbrev(j.Kernel, p)
	if err != nil {
		return fmt.Errorf("sched: readmitting job %d: %w", j.ID, err)
	}
	tech, err := preempt.New(s.kind, wl.Prog)
	if err != nil {
		return fmt.Errorf("sched: readmitting job %d under %v: %w", j.ID, s.kind, err)
	}
	s.mux.add(wl.Prog, tech)
	rj := &runJob{job: j, wl: wl, sm: -1, admitAt: at}
	// Insert into the pending tail keeping (admitAt, ID) order so the
	// admission loop stays deterministic.
	pos := s.nextArr
	for pos < len(s.jobs) &&
		(s.jobs[pos].admitAt < at || (s.jobs[pos].admitAt == at && s.jobs[pos].job.ID < j.ID)) {
		pos++
	}
	s.jobs = append(s.jobs, nil)
	copy(s.jobs[pos+1:], s.jobs[pos:])
	s.jobs[pos] = rj
	return nil
}

// jobRecord is the host-side copy of one completed job's outcome.
type jobRecord struct {
	device    int
	digest    uint64
	verifyErr error
	seen      bool
}

// RunFleet replays the arrival trace across a fleet of devices with
// periodic whole-device checkpoints and an optional injected device
// kill, and returns per-job and per-tenant statistics plus the failover
// decision log. The run is deterministic: devices advance in id order
// between globally-ordered boundaries, and every recovery decision is a
// pure function of checkpoint metadata.
func RunFleet(cfg Config, kind preempt.Kind, jobs []Job, fo FailoverConfig) (*FleetResult, error) {
	if fo.Devices <= 0 {
		fo.Devices = 2
	}
	if len(jobs) == 0 {
		return nil, errors.New("sched: empty trace")
	}
	if fo.KillDevice >= fo.Devices {
		return nil, fmt.Errorf("sched: kill device %d out of range (fleet has %d)", fo.KillDevice, fo.Devices)
	}
	if fo.KillDevice >= 0 && fo.KillCycle <= 0 {
		return nil, errors.New("sched: kill cycle must be positive")
	}
	if fo.CheckpointEvery < 0 {
		return nil, errors.New("sched: checkpoint cadence must be >= 0")
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	if cfg.SlabBytes <= 0 {
		cfg.SlabBytes = (cfg.Dev.GlobalMemBytes - slabBase) / len(jobs)
		cfg.SlabBytes -= cfg.SlabBytes % 4096
	}

	// Global (arrival, ID) order fixes every job's slab for the whole
	// fleet's lifetime and the round-robin partition.
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})
	slabOf := make(map[int]int, len(ordered))
	for i, j := range ordered {
		slabOf[j.ID] = i
	}
	parts := make([][]Job, fo.Devices)
	for i, j := range ordered {
		parts[i%fo.Devices] = append(parts[i%fo.Devices], j)
	}

	fr := &FleetResult{Kind: kind}
	records := make(map[int]*jobRecord, len(ordered))
	scheds := make([]*scheduler, fo.Devices)
	done := make([]bool, fo.Devices)
	offsets := make([]int64, fo.Devices)
	ckpts := make([]*ckpt, fo.Devices)

	// hook wires the host-side result copy-back into a scheduler.
	hook := func(s *scheduler, dev int) {
		s.onComplete = func(rj *runJob) {
			rec := &jobRecord{device: dev, seen: true}
			rec.digest = slabDigest(s.d, slabBase+slabOf[rj.job.ID]*cfg.SlabBytes, cfg.SlabBytes)
			if cfg.Verify {
				rec.verifyErr = rj.wl.Verify(s.d)
			}
			records[rj.job.ID] = rec
		}
	}
	for di := range parts {
		if len(parts[di]) == 0 {
			done[di] = true
			continue
		}
		s, err := newScheduler(cfg, kind, parts[di], slabOf)
		if err != nil {
			return nil, fmt.Errorf("sched: device %d: %w", di, err)
		}
		hook(s, di)
		scheds[di] = s
	}

	var pool *snapshot.Pool
	if fo.WarmPool > 0 {
		shards := cfg.Shards
		if shards == 0 {
			shards = 1
		}
		var err error
		pool, err = snapshot.NewPool(cfg.Dev, shards, fo.WarmPool)
		if err != nil {
			return nil, err
		}
	}

	nextCkpt := int64(math.MaxInt64)
	if fo.CheckpointEvery > 0 {
		nextCkpt = fo.CheckpointEvery
	}
	killAt := int64(math.MaxInt64)
	if fo.KillDevice >= 0 {
		killAt = fo.KillCycle
	}
	var epoch uint64

	allDone := func() bool {
		for di := range scheds {
			if scheds[di] != nil && !done[di] {
				return false
			}
		}
		return true
	}

	for {
		stop := nextCkpt
		if killAt < stop {
			stop = killAt
		}
		for di := 0; di < len(scheds); di++ {
			if scheds[di] == nil || done[di] {
				continue
			}
			d, err := scheds[di].runTo(stop)
			if err != nil {
				return nil, fmt.Errorf("sched: device %d: %w", di, err)
			}
			done[di] = d
		}
		if stop == math.MaxInt64 {
			break
		}
		if stop == nextCkpt {
			epoch++
			for di := 0; di < len(scheds); di++ {
				if scheds[di] == nil || done[di] {
					continue
				}
				c, err := scheds[di].checkpoint(epoch)
				if err != nil {
					return nil, fmt.Errorf("sched: device %d: %w", di, err)
				}
				ckpts[di] = c
				fr.Checkpoints++
				fo.decide(fr, FleetEvent{Cycle: stop, What: "checkpoint",
					Device: di, Job: -1, Detail: fmt.Sprintf("epoch %d, %d bytes", epoch, len(c.enc))})
				if cfg.Metrics != nil {
					cfg.Metrics.Counter("snap.checkpoints").Add(1)
					cfg.Metrics.Counter("snap.checkpoint_bytes").Add(int64(len(c.enc)))
				}
			}
			nextCkpt += fo.CheckpointEvery
		}
		if stop == killAt {
			killAt = math.MaxInt64
			var err error
			scheds, done, offsets, ckpts, err = failover(fr, cfg, kind, fo, pool,
				scheds, done, offsets, ckpts, slabOf, hook)
			if err != nil {
				return nil, err
			}
		}
		if killAt == math.MaxInt64 && allDone() {
			break
		}
	}

	return assembleFleet(fr, cfg, scheds, offsets, records, ordered)
}

// failover performs the kill-time recovery and returns the grown fleet
// slices.
func failover(fr *FleetResult, cfg Config, kind preempt.Kind, fo FailoverConfig,
	pool *snapshot.Pool, scheds []*scheduler, done []bool, offsets []int64,
	ckpts []*ckpt, slabOf map[int]int,
	hook func(*scheduler, int)) ([]*scheduler, []bool, []int64, []*ckpt, error) {

	kd := fo.KillDevice
	kill := fo.KillCycle
	ks := scheds[kd]
	fo.decide(fr, FleetEvent{Cycle: kill, What: "kill", Device: kd, Job: -1,
		Detail: fmt.Sprintf("device state lost at cycle %d", kill)})
	done[kd] = true
	if ks == nil {
		return scheds, done, offsets, ckpts, nil
	}
	scheds[kd] = nil // the dead device never runs again

	var survivors []int
	for di := 0; di < len(scheds); di++ {
		if di != kd && scheds[di] != nil {
			survivors = append(survivors, di)
		}
	}

	c := ckpts[kd]
	useRestore := preempt.Relocatable(kind) && c != nil
	var carry, readmit []*runJob
	if useRestore {
		// Checkpoint-time classification: post-checkpoint progress on
		// the dead device is rolled back wholesale.
		for i, j := range ks.jobs {
			if i < len(c.meta.jobs) && c.meta.jobs[i].launchIdx >= 0 {
				carry = append(carry, j)
			} else {
				readmit = append(readmit, j)
			}
		}
	} else {
		// No usable checkpoint: every job with device state re-runs.
		for _, j := range ks.jobs {
			if j.launch != nil {
				carry = append(carry, j)
			} else {
				readmit = append(readmit, j)
			}
		}
		if len(survivors) == 0 {
			// Nowhere to re-admit: the rerun replays the whole partition.
			carry = append(carry, readmit...)
			sort.SliceStable(carry, func(i, j int) bool {
				if carry[i].job.Arrival != carry[j].job.Arrival {
					return carry[i].job.Arrival < carry[j].job.Arrival
				}
				return carry[i].job.ID < carry[j].job.ID
			})
			readmit = nil
		}
	}

	newID := -1
	if len(carry) > 0 {
		if useRestore {
			rs, res, err := restoreFrom(c, cfg, kind, ks.jobs, pool)
			if err != nil {
				return nil, nil, nil, nil, fmt.Errorf("sched: restoring device %d checkpoint: %w", kd, err)
			}
			newID = len(scheds)
			hook(rs, newID)
			scheds = append(scheds, rs)
			done = append(done, false)
			offsets = append(offsets, 0) // resumes the checkpoint timeline
			ckpts = append(ckpts, nil)
			what := "restore-cold"
			if res.Outcome.Warm {
				what = "restore-warm"
			}
			fr.Restore = &res.Outcome
			fo.decide(fr, FleetEvent{Cycle: kill, What: what, Device: newID, Job: -1,
				Detail: fmt.Sprintf("epoch %d from cycle %d: %d jobs, setup %d + transfer %d cycles",
					c.epoch, c.cycle, len(carry), res.Outcome.SetupCycles, res.Outcome.TransferCycles)})
			if cfg.Metrics != nil {
				cfg.Metrics.Counter("snap.restore_"+map[bool]string{true: "warm", false: "cold"}[res.Outcome.Warm]).Add(1)
			}
			// Settle the speculative restore's deferred validation now:
			// the image is authoritative, so this must pass — a failure
			// is an infrastructure error, never silent.
			if err := res.Validate(); err != nil {
				return nil, nil, nil, nil, fmt.Errorf("sched: restored device %d failed validation: %w", kd, err)
			}
		} else {
			var rerun []Job
			for _, rj := range carry {
				rerun = append(rerun, rj.job)
			}
			rs, err := newScheduler(cfg, kind, rerun, slabOf)
			if err != nil {
				return nil, nil, nil, nil, fmt.Errorf("sched: rerunning device %d jobs: %w", kd, err)
			}
			newID = len(scheds)
			hook(rs, newID)
			scheds = append(scheds, rs)
			done = append(done, false)
			offsets = append(offsets, kill) // recovery work starts at the kill
			ckpts = append(ckpts, nil)
			fo.decide(fr, FleetEvent{Cycle: kill, What: "rerun", Device: newID, Job: -1,
				Detail: fmt.Sprintf("%d jobs replay from scratch (no restorable checkpoint under %v)", len(carry), kind)})
			if cfg.Metrics != nil {
				cfg.Metrics.Counter("snap.reruns").Add(1)
			}
		}
	}

	targets := survivors
	if len(targets) == 0 && newID >= 0 {
		targets = []int{newID}
	}
	// Orphans route to the least-loaded target (fewest outstanding jobs,
	// ties to the lower device id); each readmit updates the load the
	// next one sees.
	if len(readmit) > 0 && len(targets) == 0 {
		return nil, nil, nil, nil, errors.New("sched: no device left to re-admit jobs onto")
	}
	for _, rj := range readmit {
		tgt := leastLoaded(scheds, targets)
		at := kill - offsets[tgt]
		if at < 0 {
			at = 0
		}
		if err := scheds[tgt].admitJob(rj.job, slabBase+slabOf[rj.job.ID]*cfg.SlabBytes, at); err != nil {
			return nil, nil, nil, nil, err
		}
		done[tgt] = false
		fo.decide(fr, FleetEvent{Cycle: kill, What: "readmit", Device: tgt,
			Job: rj.job.ID, Detail: fmt.Sprintf("from dead device %d", kd)})
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("snap.readmits").Add(1)
		}
	}
	return scheds, done, offsets, ckpts, nil
}

// leastLoaded picks the readmission target deterministically: the
// device with the fewest outstanding (admitted, not yet complete) jobs;
// ties resolve to the lower device id.
func leastLoaded(scheds []*scheduler, targets []int) int {
	tgt := targets[0]
	for _, cand := range targets[1:] {
		co := len(scheds[cand].jobs) - scheds[cand].nDone
		to := len(scheds[tgt].jobs) - scheds[tgt].nDone
		if co < to || (co == to && cand < tgt) {
			tgt = cand
		}
	}
	return tgt
}

// assembleFleet folds every surviving scheduler's job state and the
// host-side completion records into the result.
func assembleFleet(fr *FleetResult, cfg Config, scheds []*scheduler,
	offsets []int64, records map[int]*jobRecord, ordered []Job) (*FleetResult, error) {
	for di, s := range scheds {
		if s == nil {
			continue
		}
		off := offsets[di]
		for _, rj := range s.jobs {
			rec := records[rj.job.ID]
			if rec == nil || !rec.seen {
				return nil, fmt.Errorf("sched: job %d never completed anywhere in the fleet", rj.job.ID)
			}
			if cfg.Verify && rec.verifyErr != nil {
				return nil, fmt.Errorf("sched: job %d (%s, tenant %d) output corrupt after failover: %w",
					rj.job.ID, rj.job.Kernel, rj.job.Tenant, rec.verifyErr)
			}
			st := JobStats{Job: rj.job, Start: rj.start + off, Complete: rj.complete + off,
				Preemptions: rj.preemptions}
			fr.Jobs = append(fr.Jobs, FleetJobStats{JobStats: st, Device: rec.device, Digest: rec.digest})
			fr.TotalPreemptions += int64(rj.preemptions)
			if st.Complete > fr.Makespan {
				fr.Makespan = st.Complete
			}
		}
	}
	if len(fr.Jobs) != len(ordered) {
		return nil, fmt.Errorf("sched: fleet finished %d of %d jobs", len(fr.Jobs), len(ordered))
	}
	sort.SliceStable(fr.Jobs, func(i, j int) bool {
		if fr.Jobs[i].Arrival != fr.Jobs[j].Arrival {
			return fr.Jobs[i].Arrival < fr.Jobs[j].Arrival
		}
		return fr.Jobs[i].ID < fr.Jobs[j].ID
	})
	var plain []JobStats
	for _, j := range fr.Jobs {
		plain = append(plain, j.JobStats)
	}
	fr.Tenants = tenantStats(plain)
	if cfg.Metrics != nil {
		exportFleetMetrics(cfg.Metrics, fr)
	}
	return fr, nil
}

func exportFleetMetrics(m *trace.Registry, fr *FleetResult) {
	m.Counter("fleet.jobs").Add(int64(len(fr.Jobs)))
	m.Counter("fleet.preemptions").Add(fr.TotalPreemptions)
	h := m.Histogram("fleet.turnaround_cycles", trace.DefaultCycleBuckets)
	for _, j := range fr.Jobs {
		h.Observe(j.TurnaroundCycles())
	}
}

// Render formats the fleet result: headline, per-tenant aggregates, the
// per-job table (with landing device), then the failover decision log.
func (r *FleetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s fleet: makespan=%d cycles, preemptions=%d, checkpoints=%d\n",
		r.Kind, r.Makespan, r.TotalPreemptions, r.Checkpoints)
	if r.Restore != nil {
		kind := "cold"
		if r.Restore.Warm {
			kind = "warm"
		}
		path := "synchronous"
		if r.Restore.Speculative {
			path = "speculative"
		}
		fmt.Fprintf(&b, "  failover restore: %s shell, %s path, setup=%d transfer=%d cycles\n",
			kind, path, r.Restore.SetupCycles, r.Restore.TransferCycles)
	}
	fmt.Fprintf(&b, "  %-8s %5s %11s %11s %12s %12s %12s\n",
		"tenant", "jobs", "preempts", "mean-queue", "p50-turn", "p95-turn", "p99-turn")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  %-8d %5d %11d %11d %12d %12d %12d\n",
			t.Tenant, t.Jobs, t.Preemptions, t.MeanQueueCycles, t.P50, t.P95, t.P99)
	}
	fmt.Fprintf(&b, "  %-4s %-6s %-7s %4s %4s %10s %10s %10s %9s\n",
		"job", "kernel", "tenant", "prio", "dev", "arrival", "complete", "turnaround", "preempts")
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "  %-4d %-6s %-7d %4d %4d %10d %10d %10d %9d\n",
			j.ID, j.Kernel, j.Tenant, j.Priority, j.Device, j.Arrival, j.Complete,
			j.TurnaroundCycles(), j.Preemptions)
	}
	for _, e := range r.Decisions {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// StateHash renders the schedule-independent final-state witness: one
// line per job with its slab digest and verified flag, in (arrival, ID)
// order. Two fleet runs of the same trace — disturbed or not — must
// render identical StateHash output.
func (r *FleetResult) StateHash() string {
	var b strings.Builder
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "job %3d %-6s slab %016x\n", j.ID, j.Kernel, j.Digest)
	}
	return b.String()
}
