package cfg

import "ctxback/internal/isa"

// mustGraph builds the CFG of a test-verified static program;
// construction failure is a test bug, so it panics.
func mustGraph(p *isa.Program) *Graph {
	g, err := Build(p)
	if err != nil {
		panic(err)
	}
	return g
}

// mustProg finalizes a statically constructed test program.
func mustProg(b *isa.Builder) *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
