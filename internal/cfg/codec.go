package cfg

import (
	"fmt"
	"sort"

	"ctxback/internal/artifact"
	"ctxback/internal/isa"
)

// Binary codec for Graph, used by the artifact store. The encoding is
// canonical: fields in fixed order, successor lists in build order, so
// encode∘decode∘encode is byte-identical.
//
// Only Blocks (starts + successor lists) and regionStart are written.
// blockOf and Preds are derived views and are rebuilt on decode; the
// program itself travels separately (it is the artifact's key).

// EncodeGraph appends g's canonical encoding to w.
func EncodeGraph(g *Graph, w *artifact.Writer) {
	w.Int(len(g.Blocks))
	for i := range g.Blocks {
		b := &g.Blocks[i]
		w.Int(b.Start)
		w.Int(b.End)
		w.Int(len(b.Succs))
		for _, s := range b.Succs {
			w.Int(s)
		}
	}
	w.Int(len(g.regionStart))
	for _, q := range g.regionStart {
		w.Int(q)
	}
}

// DecodeGraph reads a Graph for prog from r, rebuilding the derived
// blockOf and Preds views and validating block structure against the
// program's length.
func DecodeGraph(prog *isa.Program, r *artifact.Reader) (*Graph, error) {
	n := prog.Len()
	g := &Graph{Prog: prog}
	nb := r.Len()
	if nb == 0 {
		return nil, fmt.Errorf("cfg: decode: empty block list")
	}
	g.Blocks = make([]Block, nb)
	for i := 0; i < nb; i++ {
		b := &g.Blocks[i]
		b.ID = i
		b.Start = r.Int()
		b.End = r.Int()
		ns := r.Len()
		b.Succs = make([]int, ns)
		for j := range b.Succs {
			b.Succs[j] = r.Int()
		}
	}
	nr := r.Len()
	g.regionStart = make([]int, nr)
	for i := range g.regionStart {
		g.regionStart[i] = r.Int()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Structural validation: blocks must tile [0, n) in order, edges and
	// region starts must be in range.
	want := 0
	for i := range g.Blocks {
		b := &g.Blocks[i]
		if b.Start != want || b.End <= b.Start || b.End > n {
			return nil, fmt.Errorf("cfg: decode: block %d spans [%d,%d) (want start %d, len %d)", i, b.Start, b.End, want, n)
		}
		want = b.End
		for _, s := range b.Succs {
			if s < 0 || s >= nb {
				return nil, fmt.Errorf("cfg: decode: block %d successor %d out of range", i, s)
			}
		}
	}
	if want != n {
		return nil, fmt.Errorf("cfg: decode: blocks cover %d of %d instructions", want, n)
	}
	if len(g.regionStart) != n+1 {
		return nil, fmt.Errorf("cfg: decode: %d region starts for %d instructions", len(g.regionStart), n)
	}
	for pc, q := range g.regionStart {
		if q < 0 || q > n || (pc < n && q > pc) {
			return nil, fmt.Errorf("cfg: decode: regionStart[%d] = %d out of range", pc, q)
		}
	}
	g.blockOf = make([]int, n)
	for i := range g.Blocks {
		for pc := g.Blocks[i].Start; pc < g.Blocks[i].End; pc++ {
			g.blockOf[pc] = i
		}
	}
	for i := range g.Blocks {
		for _, s := range g.Blocks[i].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, i)
		}
	}
	for i := range g.Blocks {
		sort.Ints(g.Blocks[i].Preds)
	}
	return g, nil
}
