// Package cfg builds control-flow structure over isa.Programs: basic
// blocks, the control-flow graph, loop headers, and the idempotent-region
// analysis that bounds how far back a flashback point may be placed
// (paper §III-E).
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"ctxback/internal/isa"
)

// Block is a maximal straight-line instruction sequence [Start, End).
type Block struct {
	ID    int
	Start int // PC of first instruction
	End   int // PC one past the last instruction
	Succs []int
	Preds []int
}

// Len returns the instruction count of the block.
func (b *Block) Len() int { return b.End - b.Start }

// Graph is the control-flow graph of one program.
type Graph struct {
	Prog   *isa.Program
	Blocks []Block
	// blockOf maps each PC to the index of its containing block.
	blockOf []int
	// regionStart[pc] is the smallest PC q such that every instruction in
	// [q, pc) may be safely re-executed: all of [q, pc) lies in pc's basic
	// block and contains no idempotence hazard (atomic, barrier, endpgm,
	// or a may-aliasing load-then-store pair).
	regionStart []int
}

// Build constructs the CFG and region analysis for p.
func Build(p *isa.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("cfg: %w", err)
	}
	g := &Graph{Prog: p}
	g.splitBlocks()
	g.linkEdges()
	g.computeRegions()
	return g, nil
}

func (g *Graph) splitBlocks() {
	p := g.Prog
	n := p.Len()
	leader := make([]bool, n)
	leader[0] = true
	for pc := 0; pc < n; pc++ {
		in := p.At(pc)
		if in.IsBranch() {
			if in.Target < n {
				leader[in.Target] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		} else if in.Op == isa.SEndpgm && pc+1 < n {
			leader[pc+1] = true
		}
	}
	g.blockOf = make([]int, n)
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			id := len(g.Blocks)
			g.Blocks = append(g.Blocks, Block{ID: id, Start: start, End: pc})
			for i := start; i < pc; i++ {
				g.blockOf[i] = id
			}
			start = pc
		}
	}
}

func (g *Graph) linkEdges() {
	p := g.Prog
	addEdge := func(from, toPC int) {
		to := g.blockOf[toPC]
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := p.At(b.End - 1)
		switch {
		case last.Op == isa.SEndpgm || last.Op == isa.CtxExit:
			// no successors
		case last.IsUnconditionalBranch():
			addEdge(i, last.Target)
		case last.IsBranch():
			addEdge(i, last.Target)
			if b.End < p.Len() {
				addEdge(i, b.End)
			}
		default:
			if b.End < p.Len() {
				addEdge(i, b.End)
			}
		}
	}
	for i := range g.Blocks {
		sort.Ints(g.Blocks[i].Succs)
		sort.Ints(g.Blocks[i].Preds)
	}
}

// computeRegions derives regionStart per PC. Within each block we scan
// forward tracking the last hazard. Hazards that forbid re-executing the
// instruction at hazard PC h force regionStart = h+1 for all later PCs:
//   - atomics, barriers, endpgm (ordering / visible-once effects);
//   - a store that may alias an earlier load in the current region
//     (read-modify-write: replaying the load would observe the new value).
func (g *Graph) computeRegions() {
	p := g.Prog
	g.regionStart = make([]int, p.Len()+1)
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		start := b.Start
		// lastLoads holds the PCs of loads seen since `start`.
		var lastLoads []int
		for pc := b.Start; pc <= b.End; pc++ {
			g.regionStart[pc] = start
			if pc == b.End {
				break
			}
			in := p.At(pc)
			cls := in.Op.Info().Class
			switch {
			case cls == isa.ClassAtomic || in.Op == isa.SBarrier || in.Op == isa.SEndpgm:
				start = pc + 1
				lastLoads = lastLoads[:0]
			case in.Op == isa.VGStore || in.Op == isa.SGStore || in.Op == isa.VLStore:
				for _, l := range lastLoads {
					if l >= start && isa.MayAlias(p.At(l), in) {
						if l+1 > start {
							start = l + 1
						}
					}
				}
			case in.Op == isa.VGLoad || in.Op == isa.SGLoad || in.Op == isa.VLLoad:
				lastLoads = append(lastLoads, pc)
			}
		}
	}
	if p.Len() > 0 {
		g.regionStart[p.Len()] = g.regionStart[p.Len()-1]
	}
}

// BlockOf returns the block containing pc.
func (g *Graph) BlockOf(pc int) *Block { return &g.Blocks[g.blockOf[pc]] }

// FlashbackHead returns the earliest PC that may serve as a flashback
// point for a preemption arriving at pc: the window [head, pc) must stay
// inside pc's basic block and inside its idempotent region.
func (g *Graph) FlashbackHead(pc int) int {
	if pc >= g.Prog.Len() {
		pc = g.Prog.Len() - 1
	}
	head := g.BlockOf(pc).Start
	if rs := g.regionStart[pc]; rs > head {
		head = rs
	}
	return head
}

// LoopHeaders returns the set of block IDs that are targets of back
// edges (a conservative DFS-based loop-header detection).
func (g *Graph) LoopHeaders() map[int]bool {
	headers := make(map[int]bool)
	state := make([]int, len(g.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var dfs func(int)
	dfs = func(b int) {
		state[b] = 1
		for _, s := range g.Blocks[b].Succs {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				headers[s] = true
			}
		}
		state[b] = 2
	}
	if len(g.Blocks) > 0 {
		dfs(0)
	}
	return headers
}

// String renders a compact description for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for i := range g.Blocks {
		b := &g.Blocks[i]
		fmt.Fprintf(&sb, "B%d [%d,%d) -> %v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return sb.String()
}
