package cfg

import (
	"testing"

	"ctxback/internal/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleBlock(t *testing.T) {
	p := mustAsm(t, `
.kernel s
.vregs 4
.sregs 16
  v_mov v0, 1
  v_add v1, v0, 2
  s_endpgm
`)
	g := mustGraph(p)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	b := g.Blocks[0]
	if b.Start != 0 || b.End != 3 || len(b.Succs) != 0 {
		t.Errorf("block = %+v", b)
	}
}

func TestLoopCFG(t *testing.T) {
	p := mustAsm(t, `
.kernel loop
.vregs 4
.sregs 16
  s_mov s0, 8
loop:
  v_add v0, v0, 1
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  s_endpgm
`)
	g := mustGraph(p)
	// Blocks: [0,1) preheader, [1,5) loop body, [5,6) exit.
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3\n%s", len(g.Blocks), g.String())
	}
	body := g.BlockOf(2)
	if body.Start != 1 || body.End != 5 {
		t.Errorf("body block = %+v", body)
	}
	// Body has two successors: itself and the exit block.
	if len(body.Succs) != 2 {
		t.Errorf("body succs = %v", body.Succs)
	}
	headers := g.LoopHeaders()
	if !headers[body.ID] {
		t.Errorf("loop header not detected: %v", headers)
	}
	if headers[0] || headers[g.BlockOf(5).ID] {
		t.Errorf("spurious loop headers: %v", headers)
	}
}

func TestDiamondCFG(t *testing.T) {
	p := mustAsm(t, `
.kernel diamond
.vregs 4
.sregs 16
  s_cmp_eq s0, 0
  s_cbranch_scc1 else
  v_mov v0, 1
  s_branch join
else:
  v_mov v0, 2
join:
  v_add v1, v0, 1
  s_endpgm
`)
	g := mustGraph(p)
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", len(g.Blocks), g.String())
	}
	entry := g.BlockOf(0)
	if len(entry.Succs) != 2 {
		t.Errorf("entry succs = %v", entry.Succs)
	}
	join := g.BlockOf(p.Labels["join"])
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %v", join.Preds)
	}
	if len(g.LoopHeaders()) != 0 {
		t.Error("diamond has no loops")
	}
}

func TestFlashbackHeadBlockBound(t *testing.T) {
	p := mustAsm(t, `
.kernel fb
.vregs 4
.sregs 16
  v_mov v0, 1
target:
  v_add v0, v0, 1
  v_add v1, v0, 2
  s_branch target
`)
	g := mustGraph(p)
	// pc 2 is in the block starting at `target` (pc 1): window cannot
	// cross the block boundary backwards.
	if h := g.FlashbackHead(2); h != 1 {
		t.Errorf("FlashbackHead(2) = %d, want 1", h)
	}
	if h := g.FlashbackHead(0); h != 0 {
		t.Errorf("FlashbackHead(0) = %d, want 0", h)
	}
}

func TestRegionBrokenByAtomic(t *testing.T) {
	p := mustAsm(t, `
.kernel atom
.vregs 4
.sregs 16
  v_mov v0, 1
  v_gatomic_add v1, v0, 0
  v_add v2, v0, 1
  v_add v3, v2, 1
  s_endpgm
`)
	g := mustGraph(p)
	// PCs after the atomic (pc 1) may not flash back across it.
	if h := g.FlashbackHead(3); h != 2 {
		t.Errorf("FlashbackHead(3) = %d, want 2 (atomic at 1)", h)
	}
	if h := g.FlashbackHead(1); h != 0 {
		t.Errorf("FlashbackHead(1) = %d, want 0 (window [0,1) has no hazard)", h)
	}
}

func TestRegionBrokenByBarrier(t *testing.T) {
	p := mustAsm(t, `
.kernel bar
.vregs 4
.sregs 16
.lds 64
  v_lstore v0, v1, 0
  s_barrier
  v_lload v2, v0, 0
  v_add v3, v2, 1
  s_endpgm
`)
	g := mustGraph(p)
	if h := g.FlashbackHead(3); h != 2 {
		t.Errorf("FlashbackHead(3) = %d, want 2 (barrier at 1)", h)
	}
}

func TestRegionLoadThenAliasingStore(t *testing.T) {
	// Read-modify-write on the same space: replaying the load after the
	// store would read the new value, so the window must start after the
	// load.
	p := mustAsm(t, `
.kernel rmw
.vregs 4
.sregs 16
  v_gload v1, v0, 0
  v_add v1, v1, 1
  v_gstore v0, v1, 0
  v_add v2, v1, 1
  s_endpgm
`)
	g := mustGraph(p)
	if h := g.FlashbackHead(3); h != 1 {
		t.Errorf("FlashbackHead(3) = %d, want 1 (load at 0 then aliasing store at 2)", h)
	}
	// Before the store there is no hazard.
	if h := g.FlashbackHead(2); h != 0 {
		t.Errorf("FlashbackHead(2) = %d, want 0", h)
	}
}

func TestRegionDisjointSpacesDoNotAlias(t *testing.T) {
	// Load from space 1, store to space 2: no hazard, whole block is one
	// region.
	b := isa.NewBuilder("spaces", 4, 16, 0)
	b.I(isa.VGLoad, isa.R(isa.V(1)), isa.R(isa.V(0)), isa.Imm(0)).Space(1)
	b.I(isa.VAdd, isa.R(isa.V(1)), isa.R(isa.V(1)), isa.Imm(1))
	b.I(isa.VGStore, isa.R(isa.V(0)), isa.R(isa.V(1)), isa.Imm(0)).Space(2)
	b.I(isa.VAdd, isa.R(isa.V(2)), isa.R(isa.V(1)), isa.Imm(1))
	b.I(isa.SEndpgm)
	g := mustGraph(mustProg(b))
	if h := g.FlashbackHead(3); h != 0 {
		t.Errorf("FlashbackHead(3) = %d, want 0 (disjoint spaces)", h)
	}
}

func TestRegionLDSAndGlobalNeverAlias(t *testing.T) {
	p := mustAsm(t, `
.kernel mixmem
.vregs 4
.sregs 16
.lds 64
  v_gload v1, v0, 0
  v_lstore v0, v1, 0
  v_add v2, v1, 1
  s_endpgm
`)
	g := mustGraph(p)
	if h := g.FlashbackHead(2); h != 0 {
		t.Errorf("FlashbackHead(2) = %d, want 0 (LDS store vs global load)", h)
	}
}

func TestBuildRejectsInvalidProgram(t *testing.T) {
	p := &isa.Program{Name: "bad"}
	if _, err := Build(p); err == nil {
		t.Error("Build must reject invalid programs")
	}
}
