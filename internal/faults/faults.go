// Package faults is a deterministic, seed-driven fault-injection engine
// for the simulator. It decides — reproducibly, from a single seed —
// whether a given fault site fires on a given occurrence: context
// save/restore stores fail transiently or permanently, saved context
// buffers take bit flips while swapped out, preemption signals are
// dropped or duplicated, and memory transactions stall.
//
// The package is a pure decision engine: it knows nothing about the
// simulator (internal/sim imports it, not the other way around). Every
// decision is keyed by (seed, site, entity id, per-entity occurrence
// counter), so the same seed yields the same fault schedule regardless
// of how episodes are interleaved across devices.
package faults

import (
	"fmt"
	"math"
)

// Class classifies a save/restore transfer fault.
type Class uint8

const (
	// None: the transfer succeeded.
	None Class = iota
	// Transient: the transfer failed but a retry may succeed.
	Transient
	// Permanent: the transfer fails on every retry (hard fault).
	Permanent
)

func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Site identifies an injection point. Decision streams are independent
// per site, so enabling one fault class never perturbs another's
// schedule.
type Site uint8

const (
	SiteCtxSave Site = iota
	SiteCtxRestore
	SiteCorrupt
	SiteSignalDrop
	SiteSignalDup
	SiteStall
	numSites
)

// Config selects fault rates and the recovery policy bounds. All rates
// are probabilities in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives every decision stream. Two runs with equal Config see
	// the identical fault schedule.
	Seed uint64

	// CtxSaveFailRate / CtxRestoreFailRate are the per-transfer failure
	// probabilities of context save stores and restore loads.
	CtxSaveFailRate    float64
	CtxRestoreFailRate float64
	// PermanentFrac is the fraction of transfer failures that are
	// permanent (retry cannot succeed); the rest are transient.
	PermanentFrac float64

	// CorruptRate is the per-warp probability that the saved context
	// buffer takes a bit flip while the warp is swapped out. Corruption
	// targets register and LDS slots (the data a checksum protects),
	// never the PC/progress words.
	CorruptRate float64

	// SignalDropRate is the probability a preemption signal is lost in
	// delivery; SignalDupRate the probability it is delivered twice.
	SignalDropRate float64
	SignalDupRate  float64

	// StallRate stalls a device-memory transaction for StallCycles extra
	// cycles before it starts.
	StallRate   float64
	StallCycles int

	// MaxRetries bounds the retry-with-backoff recovery of transient
	// transfer faults; after MaxRetries failed retries the fault
	// escalates to a structured error. BackoffCycles is the per-attempt
	// backoff added to the warp's ready time (linear backoff).
	MaxRetries    int
	BackoffCycles int

	// DisableChecksum turns off save-time context checksums (normally on
	// whenever faults are enabled), exposing buffer corruption to the
	// downstream resume-integrity oracle instead. Used by detection
	// ablations.
	DisableChecksum bool
}

// Validate rejects rates outside [0, 1], NaNs, and negative bounds.
func (c *Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"CtxSaveFailRate", c.CtxSaveFailRate},
		{"CtxRestoreFailRate", c.CtxRestoreFailRate},
		{"PermanentFrac", c.PermanentFrac},
		{"CorruptRate", c.CorruptRate},
		{"SignalDropRate", c.SignalDropRate},
		{"SignalDupRate", c.SignalDupRate},
		{"StallRate", c.StallRate},
	}
	for _, r := range rates {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s = %v, want a probability in [0, 1]", r.name, r.v)
		}
	}
	if c.StallCycles < 0 {
		return fmt.Errorf("faults: StallCycles = %d, want >= 0", c.StallCycles)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("faults: MaxRetries = %d, want >= 0", c.MaxRetries)
	}
	if c.BackoffCycles < 0 {
		return fmt.Errorf("faults: BackoffCycles = %d, want >= 0", c.BackoffCycles)
	}
	return nil
}

// Enabled reports whether any fault site can fire.
func (c Config) Enabled() bool {
	return c.CtxSaveFailRate > 0 || c.CtxRestoreFailRate > 0 || c.CorruptRate > 0 ||
		c.SignalDropRate > 0 || c.SignalDupRate > 0 || c.StallRate > 0
}

// Preset returns a Config exercising every fault site at rate, with the
// default recovery policy (3 retries, linear 8-cycle backoff, a quarter
// of transfer faults permanent).
func Preset(seed uint64, rate float64) Config {
	return Config{
		Seed:               seed,
		CtxSaveFailRate:    rate,
		CtxRestoreFailRate: rate,
		PermanentFrac:      0.25,
		CorruptRate:        rate,
		SignalDropRate:     rate,
		SignalDupRate:      rate,
		StallRate:          rate,
		StallCycles:        40,
		MaxRetries:         3,
		BackoffCycles:      8,
	}
}

// Stats counts every fault the injector has fired, by site and class.
type Stats struct {
	TransientSaveFaults    int
	PermanentSaveFaults    int
	TransientRestoreFaults int
	PermanentRestoreFaults int
	CorruptedContexts      int
	DroppedSignals         int
	DupSignals             int
	Stalls                 int
}

// Total is the number of faults injected across all sites.
func (s Stats) Total() int {
	return s.TransientSaveFaults + s.PermanentSaveFaults +
		s.TransientRestoreFaults + s.PermanentRestoreFaults +
		s.CorruptedContexts + s.DroppedSignals + s.DupSignals + s.Stalls
}

// Injector draws fault decisions from per-(site, id) streams. It is not
// safe for concurrent use: attach one injector per device (devices are
// single-threaded; parallel episodes each own a device).
type Injector struct {
	cfg   Config
	seq   map[uint64]uint64 // per-(site, id) occurrence counters
	txSeq uint64            // device-memory transaction counter (stall site)
	stats Stats
}

// NewInjector validates cfg and builds an injector over it.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, seq: make(map[uint64]uint64)}, nil
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the counts of faults injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed folds parts into base, producing an independent stream
// seed. Sweeps use it to give every (kernel, technique, rate, attempt)
// cell its own reproducible fault schedule.
func DeriveSeed(base uint64, parts ...uint64) uint64 {
	s := splitmix64(base)
	for _, p := range parts {
		s = splitmix64(s ^ splitmix64(p))
	}
	return s
}

// draw returns the next raw 64-bit value of the (site, id) stream.
func (in *Injector) draw(site Site, id uint64) uint64 {
	key := splitmix64(in.cfg.Seed ^ splitmix64(uint64(site)<<56^id))
	n := in.seq[key]
	in.seq[key] = n + 1
	return splitmix64(key ^ splitmix64(n))
}

// chance converts a raw draw to a uniform [0, 1) float and compares it
// to rate.
func chance(raw uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(raw>>11)/(1<<53) < rate
}

// CtxTransferFault decides whether warp warpID's next context save
// (save=true) or restore (save=false) transfer faults, and how.
func (in *Injector) CtxTransferFault(warpID int, save bool) Class {
	rate := in.cfg.CtxRestoreFailRate
	site := SiteCtxRestore
	if save {
		rate, site = in.cfg.CtxSaveFailRate, SiteCtxSave
	}
	raw := in.draw(site, uint64(warpID))
	if !chance(raw, rate) {
		return None
	}
	// An independent bit of the same draw picks the class, so the
	// permanent/transient split does not perturb the fire schedule.
	cls := Transient
	if chance(splitmix64(raw), in.cfg.PermanentFrac) {
		cls = Permanent
	}
	switch {
	case save && cls == Transient:
		in.stats.TransientSaveFaults++
	case save:
		in.stats.PermanentSaveFaults++
	case cls == Transient:
		in.stats.TransientRestoreFaults++
	default:
		in.stats.PermanentRestoreFaults++
	}
	return cls
}

// CorruptContext decides whether warp warpID's swapped-out context is
// corrupted, returning a non-zero XOR mask for the flipped bits.
func (in *Injector) CorruptContext(warpID int) (mask uint32, ok bool) {
	raw := in.draw(SiteCorrupt, uint64(warpID))
	if !chance(raw, in.cfg.CorruptRate) {
		return 0, false
	}
	in.stats.CorruptedContexts++
	m := uint32(splitmix64(raw))
	if m == 0 {
		m = 1
	}
	return m, true
}

// DropSignal decides whether a preemption signal raised on SM smID is
// lost in delivery.
func (in *Injector) DropSignal(smID int) bool {
	if chance(in.draw(SiteSignalDrop, uint64(smID)), in.cfg.SignalDropRate) {
		in.stats.DroppedSignals++
		return true
	}
	return false
}

// DupSignal decides whether a delivered preemption signal arrives a
// second time on SM smID.
func (in *Injector) DupSignal(smID int) bool {
	if chance(in.draw(SiteSignalDup, uint64(smID)), in.cfg.SignalDupRate) {
		in.stats.DupSignals++
		return true
	}
	return false
}

// Stall decides whether the next device-memory transaction stalls,
// returning the extra cycles (0: no stall).
func (in *Injector) Stall() int64 {
	if in.cfg.StallRate <= 0 {
		return 0
	}
	// The transaction index is itself the occurrence counter, so the
	// stall stream needs no per-key map entry.
	tx := in.txSeq
	in.txSeq++
	raw := splitmix64(in.cfg.Seed ^ splitmix64(uint64(SiteStall)<<56^tx))
	if chance(raw, in.cfg.StallRate) {
		in.stats.Stalls++
		return int64(in.cfg.StallCycles)
	}
	return 0
}

// ChecksumEnabled reports whether save-time context checksums are on.
func (in *Injector) ChecksumEnabled() bool { return !in.cfg.DisableChecksum }
