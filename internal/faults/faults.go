// Package faults is a deterministic, seed-driven fault-injection engine
// for the simulator. It decides — reproducibly, from a single seed —
// whether a given fault site fires on a given occurrence: context
// save/restore stores fail transiently or permanently, saved context
// buffers take bit flips while swapped out, preemption signals are
// dropped or duplicated, and memory transactions stall.
//
// The package is a pure decision engine: it knows nothing about the
// simulator (internal/sim imports it, not the other way around). Every
// decision is keyed by (seed, site, entity id, per-entity occurrence
// counter), so the same seed yields the same fault schedule regardless
// of how episodes are interleaved across devices.
package faults

import (
	"fmt"
	"math"
)

// Class classifies a save/restore transfer fault.
type Class uint8

const (
	// None: the transfer succeeded.
	None Class = iota
	// Transient: the transfer failed but a retry may succeed.
	Transient
	// Permanent: the transfer fails on every retry (hard fault).
	Permanent
)

func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Site identifies an injection point. Decision streams are independent
// per site, so enabling one fault class never perturbs another's
// schedule.
type Site uint8

const (
	SiteCtxSave Site = iota
	SiteCtxRestore
	SiteCorrupt
	SiteSignalDrop
	SiteSignalDup
	SiteStall
	// Snapshot-image faults: corruption of an encoded whole-device
	// checkpoint between capture and restore (internal/snapshot).
	SiteSnapTruncate
	SiteSnapFlip
	SiteSnapStale
	numSites
)

// Config selects fault rates and the recovery policy bounds. All rates
// are probabilities in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives every decision stream. Two runs with equal Config see
	// the identical fault schedule.
	Seed uint64

	// CtxSaveFailRate / CtxRestoreFailRate are the per-transfer failure
	// probabilities of context save stores and restore loads.
	CtxSaveFailRate    float64
	CtxRestoreFailRate float64
	// PermanentFrac is the fraction of transfer failures that are
	// permanent (retry cannot succeed); the rest are transient.
	PermanentFrac float64

	// CorruptRate is the per-warp probability that the saved context
	// buffer takes a bit flip while the warp is swapped out. Corruption
	// targets register and LDS slots (the data a checksum protects),
	// never the PC/progress words.
	CorruptRate float64

	// SignalDropRate is the probability a preemption signal is lost in
	// delivery; SignalDupRate the probability it is delivered twice.
	SignalDropRate float64
	SignalDupRate  float64

	// StallRate stalls a device-memory transaction for StallCycles extra
	// cycles before it starts.
	StallRate   float64
	StallCycles int

	// SnapTruncateRate / SnapFlipRate / SnapStaleRate are the per-restore
	// probabilities that the snapshot stream a speculative restore reads
	// is cut short, takes a bit flip, or is a stale image from an earlier
	// checkpoint epoch. They corrupt only the speculative copy — the
	// authoritative image a synchronous re-restore reads is separate —
	// so every snapshot fault is detectable and recoverable by design;
	// the chaos sweep's job is to show the detection actually fires.
	SnapTruncateRate float64
	SnapFlipRate     float64
	SnapStaleRate    float64

	// MaxRetries bounds the retry-with-backoff recovery of transient
	// transfer faults; after MaxRetries failed retries the fault
	// escalates to a structured error. BackoffCycles is the per-attempt
	// backoff added to the warp's ready time (linear backoff).
	MaxRetries    int
	BackoffCycles int

	// DisableChecksum turns off save-time context checksums (normally on
	// whenever faults are enabled), exposing buffer corruption to the
	// downstream resume-integrity oracle instead. Used by detection
	// ablations.
	DisableChecksum bool
}

// Validate rejects rates outside [0, 1], NaNs, and negative bounds.
func (c *Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"CtxSaveFailRate", c.CtxSaveFailRate},
		{"CtxRestoreFailRate", c.CtxRestoreFailRate},
		{"PermanentFrac", c.PermanentFrac},
		{"CorruptRate", c.CorruptRate},
		{"SignalDropRate", c.SignalDropRate},
		{"SignalDupRate", c.SignalDupRate},
		{"StallRate", c.StallRate},
		{"SnapTruncateRate", c.SnapTruncateRate},
		{"SnapFlipRate", c.SnapFlipRate},
		{"SnapStaleRate", c.SnapStaleRate},
	}
	for _, r := range rates {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s = %v, want a probability in [0, 1]", r.name, r.v)
		}
	}
	if c.StallCycles < 0 {
		return fmt.Errorf("faults: StallCycles = %d, want >= 0", c.StallCycles)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("faults: MaxRetries = %d, want >= 0", c.MaxRetries)
	}
	if c.BackoffCycles < 0 {
		return fmt.Errorf("faults: BackoffCycles = %d, want >= 0", c.BackoffCycles)
	}
	return nil
}

// Enabled reports whether any fault site can fire.
func (c Config) Enabled() bool {
	return c.CtxSaveFailRate > 0 || c.CtxRestoreFailRate > 0 || c.CorruptRate > 0 ||
		c.SignalDropRate > 0 || c.SignalDupRate > 0 || c.StallRate > 0 ||
		c.SnapEnabled()
}

// SnapEnabled reports whether any snapshot-image fault site can fire.
func (c Config) SnapEnabled() bool {
	return c.SnapTruncateRate > 0 || c.SnapFlipRate > 0 || c.SnapStaleRate > 0
}

// Preset returns a Config exercising every fault site at rate, with the
// default recovery policy (3 retries, linear 8-cycle backoff, a quarter
// of transfer faults permanent).
func Preset(seed uint64, rate float64) Config {
	return Config{
		Seed:               seed,
		CtxSaveFailRate:    rate,
		CtxRestoreFailRate: rate,
		PermanentFrac:      0.25,
		CorruptRate:        rate,
		SignalDropRate:     rate,
		SignalDupRate:      rate,
		StallRate:          rate,
		StallCycles:        40,
		SnapTruncateRate:   rate,
		SnapFlipRate:       rate,
		SnapStaleRate:      rate,
		MaxRetries:         3,
		BackoffCycles:      8,
	}
}

// Stats counts every fault the injector has fired, by site and class.
type Stats struct {
	TransientSaveFaults    int
	PermanentSaveFaults    int
	TransientRestoreFaults int
	PermanentRestoreFaults int
	CorruptedContexts      int
	DroppedSignals         int
	DupSignals             int
	Stalls                 int
	TruncatedSnapshots     int
	FlippedSnapshots       int
	StaleSnapshots         int
}

// Total is the number of faults injected across all sites.
func (s Stats) Total() int {
	return s.TransientSaveFaults + s.PermanentSaveFaults +
		s.TransientRestoreFaults + s.PermanentRestoreFaults +
		s.CorruptedContexts + s.DroppedSignals + s.DupSignals + s.Stalls +
		s.TruncatedSnapshots + s.FlippedSnapshots + s.StaleSnapshots
}

// Injector draws fault decisions from per-(site, id) streams. It is not
// safe for concurrent use: attach one injector per device (devices are
// single-threaded; parallel episodes each own a device).
type Injector struct {
	cfg   Config
	seq   map[uint64]uint64 // per-(site, id) occurrence counters
	txSeq uint64            // device-memory transaction counter (stall site)
	stats Stats
}

// NewInjector validates cfg and builds an injector over it.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, seq: make(map[uint64]uint64)}, nil
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the counts of faults injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed folds parts into base, producing an independent stream
// seed. Sweeps use it to give every (kernel, technique, rate, attempt)
// cell its own reproducible fault schedule.
func DeriveSeed(base uint64, parts ...uint64) uint64 {
	s := splitmix64(base)
	for _, p := range parts {
		s = splitmix64(s ^ splitmix64(p))
	}
	return s
}

// draw returns the next raw 64-bit value of the (site, id) stream.
func (in *Injector) draw(site Site, id uint64) uint64 {
	key := splitmix64(in.cfg.Seed ^ splitmix64(uint64(site)<<56^id))
	n := in.seq[key]
	in.seq[key] = n + 1
	return splitmix64(key ^ splitmix64(n))
}

// chance converts a raw draw to a uniform [0, 1) float and compares it
// to rate.
func chance(raw uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(raw>>11)/(1<<53) < rate
}

// CtxTransferFault decides whether warp warpID's next context save
// (save=true) or restore (save=false) transfer faults, and how.
func (in *Injector) CtxTransferFault(warpID int, save bool) Class {
	rate := in.cfg.CtxRestoreFailRate
	site := SiteCtxRestore
	if save {
		rate, site = in.cfg.CtxSaveFailRate, SiteCtxSave
	}
	raw := in.draw(site, uint64(warpID))
	if !chance(raw, rate) {
		return None
	}
	// An independent bit of the same draw picks the class, so the
	// permanent/transient split does not perturb the fire schedule.
	cls := Transient
	if chance(splitmix64(raw), in.cfg.PermanentFrac) {
		cls = Permanent
	}
	switch {
	case save && cls == Transient:
		in.stats.TransientSaveFaults++
	case save:
		in.stats.PermanentSaveFaults++
	case cls == Transient:
		in.stats.TransientRestoreFaults++
	default:
		in.stats.PermanentRestoreFaults++
	}
	return cls
}

// CorruptContext decides whether warp warpID's swapped-out context is
// corrupted, returning a non-zero XOR mask for the flipped bits.
func (in *Injector) CorruptContext(warpID int) (mask uint32, ok bool) {
	raw := in.draw(SiteCorrupt, uint64(warpID))
	if !chance(raw, in.cfg.CorruptRate) {
		return 0, false
	}
	in.stats.CorruptedContexts++
	m := uint32(splitmix64(raw))
	if m == 0 {
		m = 1
	}
	return m, true
}

// DropSignal decides whether a preemption signal raised on SM smID is
// lost in delivery.
func (in *Injector) DropSignal(smID int) bool {
	if chance(in.draw(SiteSignalDrop, uint64(smID)), in.cfg.SignalDropRate) {
		in.stats.DroppedSignals++
		return true
	}
	return false
}

// DupSignal decides whether a delivered preemption signal arrives a
// second time on SM smID.
func (in *Injector) DupSignal(smID int) bool {
	if chance(in.draw(SiteSignalDup, uint64(smID)), in.cfg.SignalDupRate) {
		in.stats.DupSignals++
		return true
	}
	return false
}

// Stall decides whether the next device-memory transaction stalls,
// returning the extra cycles (0: no stall).
func (in *Injector) Stall() int64 {
	if in.cfg.StallRate <= 0 {
		return 0
	}
	// The transaction index is itself the occurrence counter, so the
	// stall stream needs no per-key map entry.
	tx := in.txSeq
	in.txSeq++
	raw := splitmix64(in.cfg.Seed ^ splitmix64(uint64(SiteStall)<<56^tx))
	if chance(raw, in.cfg.StallRate) {
		in.stats.Stalls++
		return int64(in.cfg.StallCycles)
	}
	return 0
}

// ChecksumEnabled reports whether save-time context checksums are on.
func (in *Injector) ChecksumEnabled() bool { return !in.cfg.DisableChecksum }

// SnapFault classifies an injected snapshot-image fault.
type SnapFault uint8

const (
	// SnapNone: the snapshot stream arrives intact.
	SnapNone SnapFault = iota
	// SnapTruncate: the stream is cut short mid-section.
	SnapTruncate
	// SnapFlip: one bit of the stream is flipped.
	SnapFlip
	// SnapStale: the stream carries an image from an earlier checkpoint
	// epoch than the restore expects.
	SnapStale
)

func (f SnapFault) String() string {
	switch f {
	case SnapNone:
		return "none"
	case SnapTruncate:
		return "truncated"
	case SnapFlip:
		return "bit-flip"
	case SnapStale:
		return "stale-epoch"
	}
	return fmt.Sprintf("SnapFault(%d)", uint8(f))
}

// SnapshotFault decides whether restore attempt snapID's speculative
// stream is corrupted, and how. The three sites draw independently
// (enabling one never perturbs another's schedule); when several fire
// on the same attempt the most structurally destructive wins
// (truncate > flip > stale). The returned raw value is the winning
// site's draw — callers derive deterministic corruption offsets from
// it so the whole chaos schedule replays from the seed.
func (in *Injector) SnapshotFault(snapID int) (SnapFault, uint64) {
	id := uint64(snapID)
	if raw := in.draw(SiteSnapTruncate, id); chance(raw, in.cfg.SnapTruncateRate) {
		in.stats.TruncatedSnapshots++
		return SnapTruncate, raw
	}
	if raw := in.draw(SiteSnapFlip, id); chance(raw, in.cfg.SnapFlipRate) {
		in.stats.FlippedSnapshots++
		return SnapFlip, raw
	}
	if raw := in.draw(SiteSnapStale, id); chance(raw, in.cfg.SnapStaleRate) {
		in.stats.StaleSnapshots++
		return SnapStale, raw
	}
	return SnapNone, 0
}
