package faults

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Preset(1, 0.1)
	if err := good.Validate(); err != nil {
		t.Fatalf("Preset config rejected: %v", err)
	}
	bad := []Config{
		{CtxSaveFailRate: -0.1},
		{CtxRestoreFailRate: 1.5},
		{CorruptRate: math.NaN()},
		{SignalDropRate: math.Inf(1)},
		{PermanentFrac: 2},
		{StallCycles: -1},
		{MaxRetries: -1},
		{BackoffCycles: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := NewInjector(c); err == nil {
			t.Errorf("NewInjector accepted bad config %d", i)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(Config{CorruptRate: 0.5}).Enabled() {
		t.Error("corrupting config reports disabled")
	}
	if !Preset(1, 0.01).Enabled() {
		t.Error("preset reports disabled")
	}
}

// drain runs a fixed decision schedule against an injector and records
// every outcome.
func drain(in *Injector) []int {
	var out []int
	for w := 0; w < 8; w++ {
		for i := 0; i < 50; i++ {
			out = append(out, int(in.CtxTransferFault(w, true)))
			out = append(out, int(in.CtxTransferFault(w, false)))
		}
		if m, ok := in.CorruptContext(w); ok {
			out = append(out, int(m))
		}
	}
	for sm := 0; sm < 4; sm++ {
		for i := 0; i < 20; i++ {
			if in.DropSignal(sm) {
				out = append(out, -1)
			}
			if in.DupSignal(sm) {
				out = append(out, -2)
			}
		}
	}
	for i := 0; i < 200; i++ {
		out = append(out, int(in.Stall()))
	}
	return out
}

func TestDeterministicFromSeed(t *testing.T) {
	cfg := Preset(12345, 0.1)
	a, _ := NewInjector(cfg)
	b, _ := NewInjector(cfg)
	ra, rb := drain(a), drain(b)
	if len(ra) != len(rb) {
		t.Fatalf("schedules differ in length: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("schedules diverge at decision %d: %d vs %d", i, ra[i], rb[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("rate 0.1 schedule injected nothing")
	}

	// A different seed must produce a different schedule.
	other, _ := NewInjector(Preset(54321, 0.1))
	ro := drain(other)
	same := len(ro) == len(ra)
	if same {
		for i := range ra {
			if ra[i] != ro[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	in, err := NewInjector(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	drain(in)
	if total := in.Stats().Total(); total != 0 {
		t.Fatalf("zero-rate injector fired %d faults", total)
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 3, CorruptRate: 1})
	for w := 0; w < 16; w++ {
		if m, ok := in.CorruptContext(w); !ok || m == 0 {
			t.Fatalf("warp %d: rate-1 corruption did not fire (mask %#x ok=%v)", w, m, ok)
		}
	}
}

func TestPermanentFracSplit(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 9, CtxSaveFailRate: 1, PermanentFrac: 0.5})
	for w := 0; w < 64; w++ {
		in.CtxTransferFault(w, true)
	}
	st := in.Stats()
	if st.TransientSaveFaults == 0 || st.PermanentSaveFaults == 0 {
		t.Fatalf("PermanentFrac 0.5 produced a one-sided split: %+v", st)
	}
	if st.TransientSaveFaults+st.PermanentSaveFaults != 64 {
		t.Fatalf("rate-1 transfer faults missed: %+v", st)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for k := uint64(0); k < 8; k++ {
		for r := uint64(0); r < 4; r++ {
			s := DeriveSeed(11, k, r)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at (%d,%d)", k, r)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(11, 1, 2) != DeriveSeed(11, 1, 2) {
		t.Fatal("DeriveSeed is not a pure function")
	}
}

// TestSnapshotFaultDeterminism: the snapshot fault schedule replays
// exactly from the seed, fires every class at high rates, and stays
// silent at zero — and its draws never perturb the other sites'
// streams (independent per-site keys).
func TestSnapshotFaultDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, SnapTruncateRate: 0.3, SnapFlipRate: 0.3, SnapStaleRate: 0.3}
	if !cfg.Enabled() || !cfg.SnapEnabled() {
		t.Fatal("snapshot-only config should report enabled")
	}
	seen := map[SnapFault]int{}
	var first []SnapFault
	for run := 0; run < 2; run++ {
		in, err := NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			f, raw := in.SnapshotFault(i)
			if f != SnapNone && raw == 0 {
				t.Fatal("fired fault with zero raw draw")
			}
			if run == 0 {
				first = append(first, f)
				seen[f]++
			} else if first[i] != f {
				t.Fatalf("run 2 snapshot %d drew %v, run 1 drew %v", i, f, first[i])
			}
		}
		st := in.Stats()
		if st.TruncatedSnapshots+st.FlippedSnapshots+st.StaleSnapshots != st.Total() {
			t.Fatal("snapshot fault stats not counted in Total")
		}
	}
	for _, f := range []SnapFault{SnapTruncate, SnapFlip, SnapStale} {
		if seen[f] == 0 {
			t.Errorf("fault class %v never fired at rate 0.3 over 200 draws", f)
		}
	}

	quiet, err := NewInjector(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if f, _ := quiet.SnapshotFault(i); f != SnapNone {
			t.Fatal("zero rates fired a snapshot fault")
		}
	}

	// Independence: enabling snapshot faults must not change the context
	// transfer schedule drawn from the same seed.
	a, _ := NewInjector(Config{Seed: 7, CtxSaveFailRate: 0.5})
	b, _ := NewInjector(Config{Seed: 7, CtxSaveFailRate: 0.5, SnapFlipRate: 1})
	for i := 0; i < 100; i++ {
		b.SnapshotFault(i)
		if a.CtxTransferFault(i%4, true) != b.CtxTransferFault(i%4, true) {
			t.Fatalf("snapshot draws perturbed the ctx-save stream at %d", i)
		}
	}
}
