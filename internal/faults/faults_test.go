package faults

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Preset(1, 0.1)
	if err := good.Validate(); err != nil {
		t.Fatalf("Preset config rejected: %v", err)
	}
	bad := []Config{
		{CtxSaveFailRate: -0.1},
		{CtxRestoreFailRate: 1.5},
		{CorruptRate: math.NaN()},
		{SignalDropRate: math.Inf(1)},
		{PermanentFrac: 2},
		{StallCycles: -1},
		{MaxRetries: -1},
		{BackoffCycles: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := NewInjector(c); err == nil {
			t.Errorf("NewInjector accepted bad config %d", i)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(Config{CorruptRate: 0.5}).Enabled() {
		t.Error("corrupting config reports disabled")
	}
	if !Preset(1, 0.01).Enabled() {
		t.Error("preset reports disabled")
	}
}

// drain runs a fixed decision schedule against an injector and records
// every outcome.
func drain(in *Injector) []int {
	var out []int
	for w := 0; w < 8; w++ {
		for i := 0; i < 50; i++ {
			out = append(out, int(in.CtxTransferFault(w, true)))
			out = append(out, int(in.CtxTransferFault(w, false)))
		}
		if m, ok := in.CorruptContext(w); ok {
			out = append(out, int(m))
		}
	}
	for sm := 0; sm < 4; sm++ {
		for i := 0; i < 20; i++ {
			if in.DropSignal(sm) {
				out = append(out, -1)
			}
			if in.DupSignal(sm) {
				out = append(out, -2)
			}
		}
	}
	for i := 0; i < 200; i++ {
		out = append(out, int(in.Stall()))
	}
	return out
}

func TestDeterministicFromSeed(t *testing.T) {
	cfg := Preset(12345, 0.1)
	a, _ := NewInjector(cfg)
	b, _ := NewInjector(cfg)
	ra, rb := drain(a), drain(b)
	if len(ra) != len(rb) {
		t.Fatalf("schedules differ in length: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("schedules diverge at decision %d: %d vs %d", i, ra[i], rb[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("rate 0.1 schedule injected nothing")
	}

	// A different seed must produce a different schedule.
	other, _ := NewInjector(Preset(54321, 0.1))
	ro := drain(other)
	same := len(ro) == len(ra)
	if same {
		for i := range ra {
			if ra[i] != ro[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	in, err := NewInjector(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	drain(in)
	if total := in.Stats().Total(); total != 0 {
		t.Fatalf("zero-rate injector fired %d faults", total)
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 3, CorruptRate: 1})
	for w := 0; w < 16; w++ {
		if m, ok := in.CorruptContext(w); !ok || m == 0 {
			t.Fatalf("warp %d: rate-1 corruption did not fire (mask %#x ok=%v)", w, m, ok)
		}
	}
}

func TestPermanentFracSplit(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 9, CtxSaveFailRate: 1, PermanentFrac: 0.5})
	for w := 0; w < 64; w++ {
		in.CtxTransferFault(w, true)
	}
	st := in.Stats()
	if st.TransientSaveFaults == 0 || st.PermanentSaveFaults == 0 {
		t.Fatalf("PermanentFrac 0.5 produced a one-sided split: %+v", st)
	}
	if st.TransientSaveFaults+st.PermanentSaveFaults != 64 {
		t.Fatalf("rate-1 transfer faults missed: %+v", st)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for k := uint64(0); k < 8; k++ {
		for r := uint64(0); r < 4; r++ {
			s := DeriveSeed(11, k, r)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at (%d,%d)", k, r)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(11, 1, 2) != DeriveSeed(11, 1, 2) {
		t.Fatal("DeriveSeed is not a pure function")
	}
}
