package sim

import (
	"errors"
	"strings"
	"testing"
)

// Edge cases of the episode state machine: signals raised twice, resume
// ordering violations, barrier-entangled victims, and episodes that
// outlive their launch's other warps.

func TestDoublePreemptWhileSaving(t *testing.T) {
	d := mustNewDevice(TestConfig())
	launchSum(t, d, 300, 2)
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	// Signal raised again while the first episode is mid-save.
	if _, err := d.Preempt(0, naiveRuntime{}); err == nil {
		t.Error("second signal during save must error")
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	// And again after all contexts saved but before resume.
	if _, err := d.Preempt(0, naiveRuntime{}); err == nil {
		t.Error("second signal on a saved-but-unresumed SM must error")
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	checkSum(t, d, 300, 2)
}

func TestResumeBeforeAllSaved(t *testing.T) {
	d := mustNewDevice(TestConfig())
	launchSum(t, d, 300, 2)
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	// Immediately: no victim has even entered its routine.
	if err := d.Resume(ep); err == nil {
		t.Fatal("resume with zero contexts saved must error")
	} else if !strings.Contains(err.Error(), "before all contexts saved") {
		t.Errorf("unexpected error: %v", err)
	}
	// Partially saved: run until the first victim exits, not all.
	if err := d.RunUntil(func() bool { return ep.savedCount > 0 && !ep.Saved() }, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if ep.savedCount > 0 && !ep.Saved() {
		if err := d.Resume(ep); err == nil {
			t.Error("resume with partial contexts saved must error")
		}
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	// A second resume of the same episode must be rejected.
	if err := d.Resume(ep); err == nil {
		t.Error("double resume must error")
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	checkSum(t, d, 300, 2)
}

func TestPreemptWithVictimsParkedAtBarrier(t *testing.T) {
	// Two blocks of two warps each on SM 0 (TestConfig allows 8 warps/SM
	// and fills SM 0 first). Within each block, warp 0 races to the
	// barrier and parks; warp 1 spins first. The signal therefore finds
	// half the victims in barrier wait — they must be rewound onto the
	// barrier instruction, saved, and re-arrive at it after resume.
	prog := mustAsm(t, `
.kernel barpark
.vregs 4
.sregs 16
.lds 512
  s_cmp_eq s0, 1
  s_cbranch_scc0 fast
  s_mov s1, 400
spin:
  s_sub s1, s1, 1
  s_cmp_gt s1, 0
  s_cbranch_scc1 spin
fast:
  v_mov v0, s0
  v_shl v1, v0, 2 !noovf
  v_mov v2, 42
  v_lstore v1, v2, 0
  s_barrier
  v_lload v3, v1, 0
  s_shl s2, s3, 2
  v_mov v0, s2
  v_gstore v0, v3, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	if _, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 2, WarpsPerBlock: 2, SMFilter: []int{0},
		Setup: func(w *Warp) {
			w.SRegs[0] = uint64(w.WarpInBlk)
			w.SRegs[3] = uint64(w.ID)
		}}); err != nil {
		t.Fatal(err)
	}
	// Let the fast warps reach and park at the barrier.
	if err := d.RunUntil(func() bool { return d.Now() > 80 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	parked := 0
	for _, w := range d.SMs[0].Warps {
		if w.barrierWait {
			parked++
		}
	}
	if parked == 0 {
		t.Fatal("test setup: no warp parked at the barrier before the signal")
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	// Barrier-parked victims must have been rewound to the barrier
	// instruction so their routine saves a re-arriving context.
	for _, w := range ep.Victims {
		if w.barrierWait {
			t.Errorf("victim %d still flagged barrierWait after the signal", w.ID)
		}
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !ep.Finished() {
		t.Fatal("episode never finished")
	}
	for wid := 0; wid < 4; wid++ {
		if got := d.Mem[wid]; got != 42 {
			t.Errorf("mem[%d] = %d, want 42", wid, got)
		}
	}
}

func TestPreemptAfterAllWarpsDone(t *testing.T) {
	d := mustNewDevice(TestConfig())
	l := launchSum(t, d, 50, 2)
	if err := d.RunUntil(l.Done, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Preempt(0, naiveRuntime{}); err == nil {
		t.Error("preempting an SM whose warps all finished must error")
	} else if !errors.Is(err, ErrDrained) {
		t.Errorf("drained SM must return ErrDrained, got: %v", err)
	}
}

func TestResumeAfterRestOfLaunchFinished(t *testing.T) {
	// Preempt SM 0 mid-run, then let every warp on the other SMs run to
	// completion before resuming: the episode must still resume its
	// victims and the launch must drain to a correct output.
	const loops, warps = 300, 4 // 2 SMs in TestConfig -> 2 warps each
	d := mustNewDevice(TestConfig())
	l := launchSum(t, d, loops, warps)
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	// Drain the rest of the launch: only the preempted victims remain.
	rest := func() bool { return l.doneWarps == warps-len(ep.Victims) }
	if err := d.RunUntil(rest, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if l.Done() {
		t.Fatal("launch reported done with victims still preempted")
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(l.Done, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !ep.Finished() {
		t.Fatal("episode never finished")
	}
	checkSum(t, d, loops, warps)
}
