package sim

import (
	"math"
	"sync"

	"ctxback/internal/isa"
)

// Epoch-parallel execution engine.
//
// The serial engine (Device.step) commits one instruction at a time in
// the total order (effective issue time, lastIssued, SM id, qseq). That
// order is what every observable is defined against — clocks, stats,
// episode phase boundaries, memory contents, golden outputs — so any
// parallel engine must reproduce it byte-for-byte. The key fact that
// makes intra-device parallelism possible anyway: most pops are *local*
// to their SM. An ALU, branch, LDS, nop, or barrier pop reads and
// writes only its own warp and SM state (registers, PC, issueFree,
// ldsFree, block-private LDS, same-SM barrier groups) — never the
// shared clock, the memory bus, or another SM. Two local pops on
// different SMs therefore commute: committing them in either order
// produces identical device state, because the serial commit of one
// reads nothing the other writes.
//
// The engine exploits this by alternating two regimes:
//
//   - Boundary steps. Any pop that touches shared state — global
//     memory or atomics (memFree/ctxFree arbitration, Stats.GlobalBytes
//     accumulation order), context-path traffic, routine/hook streams,
//     preemption entry, endpgm (launch retirement + dispatch) — is
//     committed by the ordinary serial d.step, one at a time, in
//     exactly the serial total order. Shared-resource arbitration is
//     thus trivially identical to the serial engine's.
//
//   - Parallel phases. When the queue head is a local pop strictly
//     below the epoch horizon (below), the SMs are partitioned
//     round-robin across shard goroutines and each shard drains its
//     SMs' local pops independently up to the horizon. Within one SM
//     the drain follows the SM's own candidate order — which is the
//     serial order restricted to that SM — and across SMs the commits
//     interleave arbitrarily, which is safe precisely because every
//     drained pop is local. The merge then restores the global
//     invariants: d.now becomes the max committed issue time (the
//     serial engine's clock is the running max of committed keys, and
//     max is order-independent), shard-private stats sum into
//     Device.Stats (sums commute), and the device heap is rebuilt from
//     the SMs' refreshed candidates.
//
// The epoch horizon H is what keeps cond-observable and cross-SM
// events out of phases. A phase may only drain pops with key < H, where
// H lower-bounds the issue time of every pop that could either (a) be
// non-local, reintroducing shared state, or (b) flip a RunUntil
// boundary condition or inject work onto another SM. smInjectBound
// derives the per-SM bound from the ready queue (plus barrier-parked
// warps, which can rejoin mid-phase): routine/hook-mode warps bound at
// their effective issue time; replaying warps (checkpoint re-execution)
// at effTime + remaining instructions to their signal point; kernel
// warps at effTime + (static CFG distance to the nearest s_endpgm).
// The endpgm bound applies while undispatched blocks exist (an endpgm
// frees a slot and injects warps onto an arbitrary SM) and, regardless
// of dispatch state, whenever the run condition could observe a single
// launch completing while other work continues (the scheduler watches
// per-job completions this way). Only a completion-blind condition —
// nil, or Device.Run's all-launches-done form, which first holds after
// the globally final pop — lets fully-dispatched kernel warps run
// unbounded. Plain global-memory pops do NOT bound H — they stay serial
// (non-local), but local pops on other SMs commute with them, so they
// cap nothing.
//
// Determinism: every value the simulation can observe is a function of
// the committed pop *set* and the per-pop state transitions, never of
// the goroutine interleaving. Phases commit exactly the set of local
// pops with key < min(H, timeBound) — a set fixed by the device state
// at phase entry — and each pop's effects are confined to its own SM.
// The only cross-shard writes are the per-shard accumulators, merged by
// commutative folds (max for the clock, sums for stats/migrations, the
// minimum step key for errors). The heap rebuild produces an array
// layout that may depend on shard count, but pops consult only the
// unique minimum of a strict total order, so layout is unobservable.
// Hence shards=N output == shards=1 output, bit for bit; the lockstep
// differential tests in internal/harness pin this across every kernel
// and technique, through full preemption episodes.

// HookPredicate is an optional interface a Runtime may implement to
// declare, conservatively, where its Hook may fire or mutate technique
// state. HookAt must return true whenever Hook(w, pc) could return
// instrumentation OR have any side effect; it must itself be pure and
// safe to call concurrently with other HookAt calls (technique state is
// only mutated by Hook itself, which the engine always serializes).
// Runtimes without it are still correct — every kernel pop is then
// treated as a potential hook site and committed serially, which simply
// forfeits the parallel speedup while instrumentation is attached.
type HookPredicate interface {
	HookAt(w *Warp, pc int) bool
}

// epochShard accumulates one shard's phase results. Padded so adjacent
// shards' hot counters never share a cache line.
type epochShard struct {
	stats      DeviceStats
	migrations int64
	maxKey     int64 // largest committed issue time (MinInt64: none)
	err        error
	errKey     popKey
	_          [64]byte
}

// popKey is a position in the serial total order.
type popKey struct {
	t    int64
	last int64
	sm   int
	qseq int64
}

func keyLess(a, b popKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.last != b.last {
		return a.last < b.last
	}
	if a.sm != b.sm {
		return a.sm < b.sm
	}
	return a.qseq < b.qseq
}

// localStep reports whether popping w (the head candidate of sm) is
// local: its commit reads and writes nothing outside sm and w's block.
// Everything else — routine/hook streams, preemption entry, replay
// completion, global memory, atomics, context ops, endpgm — goes
// through the serial boundary path.
func (d *Device) localStep(sm *SM, w *Warp) bool {
	if sm.episode != nil && sm.episode.pending {
		return false // next kernel issue enters the preemption routine
	}
	if w.Mode != ModeKernel {
		return false
	}
	if replaying(w) {
		return false // replaying: any pop may flip resume completion
	}
	if d.rt != nil && !w.skipHookOnce {
		// A hook might inject a routine stream or mutate technique
		// state; without a predicate, assume every site might.
		if d.hookPred == nil || d.hookPred.HookAt(w, w.PC) {
			return false
		}
	}
	in := w.currentInstr()
	if in == nil {
		return false // dry stream: let the serial path surface the error
	}
	switch in.Op.Info().Class {
	case isa.ClassScalarALU, isa.ClassVectorALU, isa.ClassBranch, isa.ClassLDSMem:
		return true
	case isa.ClassSync:
		// Barriers only touch the block's warps, all resident on this
		// SM; endpgm retires the launch and may dispatch fresh blocks
		// anywhere, so it is always a boundary event.
		return in.Op != isa.SEndpgm
	}
	return false
}

// replaying reports whether w is between resume start and regaining its
// logical progress: its pops may flip Episode.Finished.
func replaying(w *Warp) bool {
	rec := w.preemptRec
	return rec != nil && rec.ResumeStart > 0 && rec.ResumeComplete == 0
}

// replayGap returns a lower bound on the number of further pops a
// replaying w needs before the flip pop itself — 0 means the very next
// pop may complete the replay.
func replayGap(w *Warp) int64 {
	if gap := w.preemptRec.DynAtSignal - w.DynCount - 1; gap > 0 {
		return gap
	}
	return 0
}

// distUnreachable marks PCs from which no s_endpgm is reachable in the
// static CFG: a warp there can never retire, hence never inject.
const distUnreachable = math.MaxInt32

// distToEnd returns a static lower bound on the number of instructions
// a kernel-mode warp at pc must still issue before it can retire
// s_endpgm (0 at the endpgm itself). Derived once per program by a
// reverse-CFG BFS and cached; dynamic paths (loops, barrier waits) are
// only ever longer than the static shortest path, so the bound is safe.
func (d *Device) distToEnd(p *isa.Program, pc int) int64 {
	dists, ok := d.distCache[p]
	if !ok {
		dists = computeDistToEnd(p)
		if d.distCache == nil {
			d.distCache = make(map[*isa.Program][]int32)
		}
		d.distCache[p] = dists
	}
	if pc < 0 || pc >= len(dists) {
		return 0 // dry/invalid stream: force the tightest bound
	}
	return int64(dists[pc])
}

// computeDistToEnd runs the reverse-CFG BFS. Successors: unconditional
// branches go to Target; conditional branches to Target or fall
// through; everything else falls through. All edges have weight 1
// (instructions issued), so BFS order is distance order.
func computeDistToEnd(p *isa.Program) []int32 {
	n := p.Len()
	dists := make([]int32, n)
	for i := range dists {
		dists[i] = distUnreachable
	}
	// Predecessor lists from the successor relation.
	preds := make([][]int32, n)
	addEdge := func(from, to int) {
		if to >= 0 && to < n {
			preds[to] = append(preds[to], int32(from))
		}
	}
	var queue []int32
	for pc := 0; pc < n; pc++ {
		in := p.At(pc)
		if in.Op == isa.SEndpgm {
			dists[pc] = 0
			queue = append(queue, int32(pc))
			continue
		}
		if in.Op.Info().Class == isa.ClassBranch {
			addEdge(pc, in.Target)
			if !in.IsUnconditionalBranch() {
				addEdge(pc, pc+1)
			}
			continue
		}
		addEdge(pc, pc+1)
	}
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		nd := dists[pc] + 1
		for _, pred := range preds[pc] {
			if dists[pred] > nd {
				dists[pred] = nd
				queue = append(queue, pred)
			}
		}
	}
	return dists
}

// smInjectBound lower-bounds the issue time of the earliest pop on sm
// that could inject work onto another SM, flip a boundary condition, or
// otherwise require serial commit ordering relative to *other SMs'*
// local pops. Phases must stop strictly below the min of these bounds.
func (d *Device) smInjectBound(sm *SM, fenceEndpgm bool) int64 {
	if sm.episode != nil && sm.episode.pending {
		// The SM's very next kernel issue enters the preemption
		// routine; nothing on this SM may drain in parallel.
		return sm.candT
	}
	bound := int64(math.MaxInt64)
	consider := func(w *Warp, eff int64) {
		var v int64
		switch {
		case w.Mode != ModeKernel:
			// Routine/hook pops touch the context path, episode
			// counters, or technique state from the first instruction.
			v = eff
		case replaying(w):
			// A replaying warp flips Episode.Finished when its k-th
			// further kernel pop reaches the signal point; each own pop
			// advances the port by >= 1 cycle. Gap 0 — the very next pop
			// may flip — bounds at the warp's own issue time.
			v = eff + replayGap(w)
		case d.blocksPending > 0 || fenceEndpgm:
			// While blocks await dispatch, an endpgm frees a slot and
			// injects warps onto an arbitrary SM at its commit time. And
			// whenever the run condition could observe a single launch
			// completing (fenceEndpgm), the endpgm itself is the stopping
			// point: no local pop anywhere may outrun it.
			dist := d.distToEnd(w.Prog, w.PC)
			if dist == distUnreachable {
				return
			}
			v = eff + dist
		default:
			// Fully dispatched under a completion-blind condition: this
			// warp's endpgm only decrements doneWarps, and the
			// whole-device completion flip needs no bound — when the
			// last endpgm commits there are no pops left anywhere to
			// mis-drain past it.
			return
		}
		if v < bound {
			bound = v
		}
	}
	for w := sm.stalledHead; w != nil; w = w.qnext {
		consider(w, max(sm.issueFree, w.candTime))
	}
	for _, w := range sm.future.ws {
		consider(w, max(sm.issueFree, w.candTime))
	}
	// Barrier-parked warps sit outside the ready queue but rejoin it the
	// moment a same-SM pop releases their barrier — which cannot happen
	// before the SM's current candidate commits, plus one cycle for the
	// released warp's own first issue.
	if sm.candW != nil {
		for _, w := range sm.Warps {
			if w.State == WarpAtBarrier {
				consider(w, sm.candT+1)
			}
		}
	}
	return bound
}

// horizon returns the epoch horizon: phases may only drain local pops
// with key strictly below it.
func (d *Device) horizon(fenceEndpgm bool) int64 {
	h := int64(math.MaxInt64)
	for _, sm := range d.SMs {
		if v := d.smInjectBound(sm, fenceEndpgm); v < h {
			h = v
		}
	}
	return h
}

// runEpochs is the sharded RunUntilBounded body. cond, timeBound and
// limit have RunUntilBounded's semantics; the serial total order is
// reproduced exactly (see the package comment above).
//
// On error the returned error is the one the serial engine would have
// returned (the failing pop with the smallest step key), but — unlike
// the serial engine — shards may already have committed local pops with
// larger keys. Device state after an error is not intended for further
// stepping either way.
func (d *Device) runEpochs(cond func() bool, timeBound, limit int64, fenceEndpgm bool) error {
	for {
		if cond != nil && cond() {
			return nil
		}
		if d.qerr != nil {
			return d.qerr
		}
		head := d.rq.sms[0]
		if head.candW == nil {
			return nil
		}
		if head.candT > limit {
			return &BudgetError{Now: d.now, Next: head.candT, Limit: limit}
		}
		stop := d.horizon(fenceEndpgm)
		if timeBound < stop {
			stop = timeBound
		}
		if head.candT >= stop || !d.localStep(head, head.candW) {
			// Boundary step: commit the head serially. This is also how
			// the clock crosses timeBound — the crossing pop commits
			// alone, so cond sees the clock exactly where the serial
			// engine would have stopped it.
			if _, err := d.step(limit); err != nil {
				return err
			}
			continue
		}
		if err := d.phase(stop, limit); err != nil {
			return err
		}
	}
}

// phase drains every SM's run of local pops with key < stop (and <=
// limit) across the configured shards, then merges.
func (d *Device) phase(stop, limit int64) error {
	n := d.shards
	if n > len(d.SMs) {
		n = len(d.SMs)
	}
	if len(d.epochShards) < n {
		d.epochShards = make([]epochShard, n)
	}
	shards := d.epochShards[:n]
	for i := range shards {
		shards[i] = epochShard{maxKey: math.MinInt64}
	}
	// SM k belongs to shard k mod n; its issue path accumulates into
	// that shard's private stats for the duration of the phase.
	for _, sm := range d.SMs {
		sm.stats = &shards[sm.ID%n].stats
	}
	d.inPhase = true
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			d.runShard(&shards[si], si, n, stop, limit)
		}(i)
	}
	d.runShard(&shards[0], 0, n, stop, limit)
	wg.Wait()
	d.inPhase = false

	// Merge: commutative folds only, so the result is independent of
	// how the shards interleaved.
	var firstErr error
	var firstKey popKey
	for _, sm := range d.SMs {
		sm.stats = &d.Stats
	}
	for i := range shards {
		sh := &shards[i]
		d.Stats.Instructions += sh.stats.Instructions
		d.Stats.KernelInstrs += sh.stats.KernelInstrs
		d.Stats.RoutineInstrs += sh.stats.RoutineInstrs
		d.Stats.HookInstrs += sh.stats.HookInstrs
		d.Stats.GlobalBytes += sh.stats.GlobalBytes
		d.Stats.LDSBytes += sh.stats.LDSBytes
		d.migrations += sh.migrations
		if sh.maxKey > d.now {
			d.now = sh.maxKey
		}
		if sh.err != nil && (firstErr == nil || keyLess(sh.errKey, firstKey)) {
			firstErr, firstKey = sh.err, sh.errKey
		}
	}
	d.Stats.Cycles = d.now
	d.rq.rebuild()
	return firstErr
}

// runShard drains the shard's SMs (round-robin partition by SM id).
func (d *Device) runShard(sh *epochShard, idx, n int, stop, limit int64) {
	for smi := idx; smi < len(d.SMs); smi += n {
		d.drainSM(sh, d.SMs[smi], stop, limit)
		if sh.err != nil {
			return
		}
	}
}

// drainSM commits sm's run of local pops with key < stop. Within one SM
// the candidate order is exactly the serial order restricted to the SM,
// so each commit replays the serial step body: dequeue, issue, migrate
// port-caught future warps, re-enqueue the issuer. Only the shared
// pieces differ — stats land in the shard accumulator (sm.stats was
// repointed by phase), the clock is folded at the merge via maxKey, and
// the device heap is left alone until the merge rebuild.
func (d *Device) drainSM(sh *epochShard, sm *SM, stop, limit int64) {
	for {
		w, t := sm.candW, sm.candT
		if w == nil || t >= stop || t > limit || !d.localStep(sm, w) {
			return
		}
		key := popKey{t: t, last: w.lastIssued, sm: sm.ID, qseq: w.qseq}
		sm.dequeue(w)
		if err := sm.issue(w, t); err != nil {
			sh.err, sh.errKey = err, key
			return
		}
		sm.issueAdvancedLocal(sh)
		if w.State == WarpReady {
			d.enqueueReady(w)
		}
		if t > sh.maxKey {
			sh.maxKey = t
		}
		if sm.phaseErr != nil {
			// A same-SM re-enqueue (barrier release or the issuer
			// itself) found a dry stream; surface it at this pop's key,
			// where the serial engine's next Step would have found it.
			sh.err, sh.errKey = sm.phaseErr, key
			sm.phaseErr = nil
			return
		}
	}
}
