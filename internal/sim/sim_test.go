package sim

import (
	"math"
	"testing"

	"ctxback/internal/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runSimple launches prog as a single block of one warp and runs to
// completion.
func runSimple(t *testing.T, prog *isa.Program, setup func(w *Warp)) *Device {
	t.Helper()
	d := mustNewDevice(TestConfig())
	if _, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1, Setup: setup}); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestScalarALUSemantics(t *testing.T) {
	prog := mustAsm(t, `
.kernel salu
.vregs 4
.sregs 16
  s_mov s0, 10
  s_add s1, s0, 5
  s_sub s2, s1, 3
  s_mul s3, s2, 4
  s_and s4, s3, 0xF
  s_or  s5, s4, 0x30
  s_xor s6, s5, 0xFF
  s_shl s7, s0, 2
  s_shr s8, s7, 1
  s_min s9, s0, s1
  s_max s10, s0, s1
  s_not s11, 0
  v_mov v0, s6
  v_gstore v1, v0, 0
  s_endpgm
`)
	var warp *Warp
	d := runSimple(t, prog, func(w *Warp) {
		warp = w
		for l := 0; l < isa.WarpSize; l++ {
			w.VRegs[1][l] = uint32(l * 4) // store addresses
		}
	})
	want := map[int]uint64{
		1: 15, 2: 12, 3: 48, 4: 0, 5: 0x30, 6: 0x30 ^ 0xFF,
		7: 40, 8: 20, 9: 10, 10: 15, 11: ^uint64(0),
	}
	for idx, v := range want {
		if warp.SRegs[idx] != v {
			t.Errorf("s%d = %d, want %d", idx, warp.SRegs[idx], v)
		}
	}
	if d.Mem[0] != uint32(0x30^0xFF) {
		t.Errorf("mem[0] = %d", d.Mem[0])
	}
}

func TestVectorALUAndLaneID(t *testing.T) {
	prog := mustAsm(t, `
.kernel valu
.vregs 8
.sregs 16
  v_laneid v0
  v_shl v1, v0, 2 !noovf
  v_add v2, v1, 100
  v_mad v3, v0, v0, v2
  v_gstore v4, v3, 0
  s_endpgm
`)
	d := runSimple(t, prog, func(w *Warp) {
		for l := 0; l < isa.WarpSize; l++ {
			w.VRegs[4][l] = uint32(l * 4)
		}
	})
	for l := 0; l < isa.WarpSize; l++ {
		want := uint32(l*l + l*4 + 100)
		if d.Mem[l] != want {
			t.Fatalf("lane %d: mem = %d, want %d", l, d.Mem[l], want)
		}
	}
}

func TestFloatSemantics(t *testing.T) {
	prog := mustAsm(t, `
.kernel flt
.vregs 8
.sregs 16
  v_mov v0, 2.0f
  v_mov v1, 3.0f
  v_mul_f32 v2, v0, v1
  v_mad_f32 v3, v2, v0, v1
  v_rcp_f32 v4, v0
  v_sqrt_f32 v5, v3
  v_gstore v6, v5, 0
  s_endpgm
`)
	d := runSimple(t, prog, func(w *Warp) {
		for l := 0; l < isa.WarpSize; l++ {
			w.VRegs[6][l] = uint32(l * 4)
		}
	})
	got := math.Float32frombits(d.Mem[0])
	want := float32(math.Sqrt(15)) // 2*3*2+3
	if got != want {
		t.Errorf("sqrt result = %v, want %v", got, want)
	}
}

func TestExecMaskPredication(t *testing.T) {
	// Lanes with laneid < 4 add 1000; others keep original value.
	prog := mustAsm(t, `
.kernel pred
.vregs 8
.sregs 16
  v_laneid v0
  v_mov v1, 7
  v_cmp_lt_i32 v0, 4
  s_and_saveexec_vcc s2
  v_add v1, v1, 1000
  s_setexec s2
  v_gstore v2, v1, 0
  s_endpgm
`)
	d := runSimple(t, prog, func(w *Warp) {
		for l := 0; l < isa.WarpSize; l++ {
			w.VRegs[2][l] = uint32(l * 4)
		}
	})
	for l := 0; l < isa.WarpSize; l++ {
		want := uint32(7)
		if l < 4 {
			want = 1007
		}
		if d.Mem[l] != want {
			t.Fatalf("lane %d = %d, want %d", l, d.Mem[l], want)
		}
	}
}

func TestLoopExecution(t *testing.T) {
	// Sum 1..10 per lane.
	prog := mustAsm(t, `
.kernel loop
.vregs 4
.sregs 16
  s_mov s0, 10
  v_mov v0, 0
loop:
  v_add v0, v0, s0
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_gstore v1, v0, 0
  s_endpgm
`)
	d := runSimple(t, prog, func(w *Warp) {
		for l := 0; l < isa.WarpSize; l++ {
			w.VRegs[1][l] = uint32(l * 4)
		}
	})
	if d.Mem[0] != 55 {
		t.Errorf("sum = %d, want 55", d.Mem[0])
	}
}

func TestGlobalLoadStoreRoundTrip(t *testing.T) {
	prog := mustAsm(t, `
.kernel mem
.vregs 4
.sregs 16
  s_gload s1, s0, 0
  v_gload v1, v0, 0
  v_add v1, v1, s1
  v_gstore v2, v1, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	d.Mem[0] = 5 // scalar arg at addr 0
	for l := 0; l < isa.WarpSize; l++ {
		d.Mem[1+l] = uint32(l * 10)
	}
	_, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1, Setup: func(w *Warp) {
		w.SRegs[0] = 0
		for l := 0; l < isa.WarpSize; l++ {
			w.VRegs[0][l] = uint32(4 + l*4)    // input
			w.VRegs[2][l] = uint32(1024 + l*4) // output
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < isa.WarpSize; l++ {
		if got := d.Mem[256+l]; got != uint32(l*10+5) {
			t.Fatalf("lane %d: got %d, want %d", l, got, l*10+5)
		}
	}
}

func TestLDSAndBarrier(t *testing.T) {
	// Two warps: each writes its warp id to LDS, barrier, then each reads
	// the other's value.
	prog := mustAsm(t, `
.kernel lds
.vregs 8
.sregs 16
.lds 512
  s_shl s1, s0, 2
  v_mov v0, s1
  v_mov v1, s0
  v_lstore v0, v1, 0
  s_barrier
  s_xor s2, s0, 1
  s_shl s3, s2, 2
  v_mov v2, s3
  v_lload v3, v2, 0
  s_shl s4, s0, 2
  v_mov v4, s4
  v_gstore v4, v3, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	_, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 2, Setup: func(w *Warp) {
		w.SRegs[0] = uint64(w.WarpInBlk)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if d.Mem[0] != 1 || d.Mem[1] != 0 {
		t.Errorf("cross-warp LDS exchange: mem[0]=%d mem[1]=%d, want 1 0", d.Mem[0], d.Mem[1])
	}
}

func TestAtomicAdd(t *testing.T) {
	prog := mustAsm(t, `
.kernel atom
.vregs 4
.sregs 16
  v_mov v0, 0
  v_mov v1, 1
  v_gatomic_add v0, v1, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	_, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// 2 warps x 64 lanes each add 1 to mem[0].
	if d.Mem[0] != 2*isa.WarpSize {
		t.Errorf("atomic sum = %d, want %d", d.Mem[0], 2*isa.WarpSize)
	}
}

func TestMemoryFaultDetected(t *testing.T) {
	prog := mustAsm(t, `
.kernel fault
.vregs 4
.sregs 16
  v_mov v0, 0x7FFFFFF0
  v_gload v1, v0, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	if _, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err == nil {
		t.Fatal("out-of-range access must fault")
	}
}

func TestOccupancyLimits(t *testing.T) {
	d := mustNewDevice(TestConfig())
	small := &isa.Program{Name: "small", NumVRegs: 8, NumSRegs: 16,
		Instrs: []isa.Instruction{{Op: isa.SEndpgm}}}
	occ, err := d.ComputeOccupancy(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if occ.WarpsPerSM != d.Cfg.MaxWarpsPerSM {
		t.Errorf("small kernel warps/SM = %d, want slot limit %d", occ.WarpsPerSM, d.Cfg.MaxWarpsPerSM)
	}
	// 128 vregs * 256B = 32 KB per warp -> 8 warps in a 256 KB file.
	big := &isa.Program{Name: "big", NumVRegs: 128, NumSRegs: 16,
		Instrs: []isa.Instruction{{Op: isa.SEndpgm}}}
	occ, err = d.ComputeOccupancy(big, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := d.Cfg.VRegFileBytes / (128 * 4 * isa.WarpSize); occ.WarpsPerSM != min(want, d.Cfg.MaxWarpsPerSM) {
		t.Errorf("big kernel warps/SM = %d (limited by %s)", occ.WarpsPerSM, occ.LimitedBy)
	}
	// LDS-bound kernel.
	ldsy := &isa.Program{Name: "ldsy", NumVRegs: 4, NumSRegs: 16, LDSBytes: 32 << 10,
		Instrs: []isa.Instruction{{Op: isa.SEndpgm}}}
	occ, err = d.ComputeOccupancy(ldsy, 2)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 2 || occ.LimitedBy != "LDS" {
		t.Errorf("lds occupancy = %+v", occ)
	}
	// Does not fit at all.
	huge := &isa.Program{Name: "huge", NumVRegs: 4, NumSRegs: 16, LDSBytes: 128 << 10,
		Instrs: []isa.Instruction{{Op: isa.SEndpgm}}}
	if _, err := d.ComputeOccupancy(huge, 1); err == nil {
		t.Error("oversized kernel must not fit")
	}
}

func TestMultiBlockDispatchWaves(t *testing.T) {
	// More blocks than fit at once: the dispatcher must run them in
	// waves. Each warp stores 1 to its own slot.
	prog := mustAsm(t, `
.kernel waves
.vregs 4
.sregs 16
  s_shl s1, s0, 2
  v_mov v0, s1
  v_mov v1, 1
  v_gstore v0, v1, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	numBlocks := d.Cfg.NumSMs*d.Cfg.MaxWarpsPerSM + 5 // forces >1 wave
	_, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: numBlocks, WarpsPerBlock: 1, Setup: func(w *Warp) {
		w.SRegs[0] = uint64(w.ID)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < numBlocks; i++ {
		if d.Mem[i] != 1 {
			t.Fatalf("block %d never ran", i)
		}
	}
}

func TestTimingMemoryLatency(t *testing.T) {
	// A dependent load chain must cost at least MemLatency per load.
	prog := mustAsm(t, `
.kernel lat
.vregs 4
.sregs 16
  v_gload v0, v1, 0
  v_gload v0, v0, 0
  v_gload v0, v0, 0
  v_gstore v1, v0, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	_, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if d.Now() < 3*int64(d.Cfg.MemLatency) {
		t.Errorf("cycles = %d, want >= %d (3 dependent loads)", d.Now(), 3*d.Cfg.MemLatency)
	}
}

func TestTimingLatencyHiding(t *testing.T) {
	// Many independent warps issuing loads should overlap latency: total
	// time should be far less than warps * latency.
	prog := mustAsm(t, `
.kernel hide
.vregs 4
.sregs 16
  v_gload v0, v1, 0
  v_add v0, v0, 1
  v_gstore v1, v0, 0
  s_endpgm
`)
	run := func(warps int) int64 {
		d := mustNewDevice(TestConfig())
		_, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: warps, WarpsPerBlock: 1, Setup: func(w *Warp) {
			for l := 0; l < isa.WarpSize; l++ {
				w.VRegs[1][l] = uint32((w.ID*isa.WarpSize + l) * 4)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return d.Now()
	}
	one := run(1)
	eight := run(8)
	if eight > one*4 {
		t.Errorf("8 warps took %d cycles vs %d for 1: latency hiding broken", eight, one)
	}
}

func TestStatsAccounting(t *testing.T) {
	prog := mustAsm(t, `
.kernel stats
.vregs 4
.sregs 16
  v_mov v0, 1
  v_gstore v1, v0, 0
  s_endpgm
`)
	d := runSimple(t, prog, nil)
	if d.Stats.KernelInstrs != 3 {
		t.Errorf("kernel instrs = %d, want 3", d.Stats.KernelInstrs)
	}
	if d.Stats.GlobalBytes < int64(isa.WarpSize*4) {
		t.Errorf("global bytes = %d", d.Stats.GlobalBytes)
	}
}
