package sim

import (
	"errors"
	"fmt"
	"sort"

	"ctxback/internal/faults"
)

// ErrSignalLost marks a preemption signal dropped by fault injection
// before any SM observed it. Callers recover by re-raising the signal.
var ErrSignalLost = errors.New("sim: preemption signal lost in delivery")

// TransferFaultError is the structured escalation of a context
// save/restore fault: either permanent, or transient with the bounded
// retries exhausted. The device must be discarded after receiving one;
// callers degrade by re-running the episode through a safe technique.
type TransferFaultError struct {
	WarpID    int
	SM        int
	Save      bool // true: preemption-save store, false: resume-restore load
	Permanent bool
	Attempts  int // issue attempts, including the first
}

func (e *TransferFaultError) Error() string {
	dir, cls := "restore", "transient"
	if e.Save {
		dir = "save"
	}
	if e.Permanent {
		cls = "permanent"
	}
	return fmt.Sprintf("sim: %s context-%s fault on warp %d (SM %d) after %d attempt(s)",
		cls, dir, e.WarpID, e.SM, e.Attempts)
}

// IntegrityError reports detected context corruption: a checksum
// mismatch at resume, or a resume-integrity oracle divergence. The
// device must be discarded; callers degrade to a safe technique.
type IntegrityError struct {
	WarpID int
	Stage  string // "checksum" or "oracle"
	Detail string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("sim: resume integrity violation on warp %d (%s): %s", e.WarpID, e.Stage, e.Detail)
}

// IsExecutionFault reports whether err is a simulation execution fault
// (bad address, misalignment, invalid instruction). Under fault
// injection these traps double as an in-band detector: corrupted state
// that steers a warp into an illegal access is caught by the device
// before wrong output can commit, exactly like a GPU memory-protection
// fault.
func IsExecutionFault(err error) bool {
	var fe *faultError
	return errors.As(err, &fe)
}

// InjectFaults attaches a fault injector built from cfg to the device.
// Must be called before any episode; a nil-rate config still installs
// the injector (enabling checksums and snapshots). With no injector
// attached the fault paths cost nothing.
func (d *Device) InjectFaults(cfg faults.Config) error {
	inj, err := faults.NewInjector(cfg)
	if err != nil {
		return err
	}
	d.faults = inj
	return nil
}

// FaultStats returns the injected-fault counters (zero value when no
// injector is attached).
func (d *Device) FaultStats() faults.Stats {
	if d.faults == nil {
		return faults.Stats{}
	}
	return d.faults.Stats()
}

// SetResumeChecker installs a resume-integrity oracle: fn runs the
// moment a resumed warp regains its logical progress (ResumeComplete).
// A non-nil error aborts the simulation with that error; the harness
// installs checkers that diff the warp's architectural state against
// the snapshot captured when the preemption signal was observed.
// Installing a checker also enables signal-time snapshots.
func (d *Device) SetResumeChecker(fn func(w *Warp) error) { d.resumeChecker = fn }

// ArchSnapshot is a warp's architectural state captured when it
// observed a preemption signal — the reference the resume-integrity
// oracle diffs against. For techniques that resume exactly at the
// signal point this equals the uninterrupted golden run's state there.
type ArchSnapshot struct {
	PC       int
	DynCount int64
	VRegs    [][]uint32
	SRegs    []uint64
	Exec     uint64
	VCC      uint64
	SCC      bool
	LDSShare []uint32
}

// Snapshot returns the warp's signal-time architectural snapshot (nil
// unless faults or a resume checker were enabled before preemption).
func (w *Warp) Snapshot() *ArchSnapshot { return w.snapshot }

// snapshotArch deep-copies the warp's architectural state.
func (w *Warp) snapshotArch() *ArchSnapshot {
	s := &ArchSnapshot{
		PC:       w.PC,
		DynCount: w.DynCount,
		Exec:     w.Exec,
		VCC:      w.VCC,
		SCC:      w.SCC,
		SRegs:    append([]uint64(nil), w.SRegs...),
		VRegs:    make([][]uint32, len(w.VRegs)),
	}
	backing := make([]uint32, len(w.VRegs)*len(w.VRegs[0]))
	for i, vr := range w.VRegs {
		dst := backing[i*len(vr) : (i+1)*len(vr)]
		copy(dst, vr)
		s.VRegs[i] = dst
	}
	if w.LDSShareHi > w.LDSShareLo {
		s.LDSShare = append([]uint32(nil), w.LDS.Data[w.LDSShareLo>>2:w.LDSShareHi>>2]...)
	}
	return s
}

// Checksum folds every slot of the context buffer — registers, LDS
// share, and progress words — in deterministic (sorted-key) order with
// an FNV-1a fold. Computed at save time and verified at resume to
// detect corruption of the swapped-out context.
func (c *SavedContext) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	for _, k := range sortedVKeys(c.VSlots) {
		word(uint64(uint32(k)) | 1<<40)
		for _, v := range c.VSlots[k] {
			word(uint64(v))
		}
	}
	for _, k := range sortedUKeys(c.SSlots) {
		word(uint64(uint32(k)) | 2<<40)
		word(c.SSlots[k])
	}
	for _, k := range sortedUKeys(c.Specs) {
		word(uint64(uint32(k)) | 3<<40)
		word(c.Specs[k])
	}
	word(uint64(len(c.LDS)) | 4<<40)
	for _, v := range c.LDS {
		word(uint64(v))
	}
	word(uint64(c.PC))
	word(uint64(c.DynCount))
	word(uint64(c.Barriers))
	return h
}

func sortedVKeys(m map[int32][]uint32) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys32(keys)
	return keys
}

func sortedUKeys(m map[int32]uint64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys32(keys)
	return keys
}

// corruptContext flips mask's bits in the first register or LDS slot of
// the buffer (deterministic target: lowest-keyed vector slot, else
// scalar, else special, else first LDS word). The PC/progress words are
// never touched: corruption models data bit flips, and a warp silently
// resuming at a wrong PC would evade the architectural oracle.
func corruptContext(ctx *SavedContext, mask uint32) {
	if len(ctx.VSlots) > 0 {
		k := sortedVKeys(ctx.VSlots)[0]
		ctx.VSlots[k][0] ^= mask
		return
	}
	if len(ctx.SSlots) > 0 {
		k := sortedUKeys(ctx.SSlots)[0]
		ctx.SSlots[k] ^= uint64(mask)
		return
	}
	if len(ctx.Specs) > 0 {
		k := sortedUKeys(ctx.Specs)[0]
		ctx.Specs[k] ^= uint64(mask)
		return
	}
	if len(ctx.LDS) > 0 {
		ctx.LDS[0] ^= mask
	}
}

// EpisodeFaults surfaces what an episode survived, as structured
// counters (paper-level robustness reporting; zero when no injector is
// attached).
type EpisodeFaults struct {
	// TransientRetries counts context-transfer retries that eventually
	// succeeded within the bounded-retry policy.
	TransientRetries int
	// CorruptedContexts counts victims whose swapped-out context buffer
	// took an injected bit flip.
	CorruptedContexts int
	// ChecksumMismatches counts corruptions the save-time checksum
	// caught at resume (the episode then aborts with IntegrityError).
	ChecksumMismatches int
	// AbsorbedDupSignals counts duplicate preemption-signal deliveries
	// rejected by the active-episode guard.
	AbsorbedDupSignals int
}

// checkResume runs the installed resume-integrity oracle for w, if any.
func (d *Device) checkResume(w *Warp) error {
	if d.resumeChecker == nil || w.snapshot == nil {
		return nil
	}
	return d.resumeChecker(w)
}

// sortKeys32 sorts int32 keys ascending (helper for deterministic
// iteration over context slots).
func sortKeys32(keys []int32) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}
