package sim

import (
	"fmt"

	"ctxback/internal/faults"
	"ctxback/internal/isa"
)

// SM is one streaming multiprocessor: warp slots, an issue port, and a
// private LDS pipeline.
type SM struct {
	ID  int
	Dev *Device

	Warps []*Warp // resident warps (any state)

	issueFree int64 // next cycle the issue port is free
	ldsFree   int64 // next cycle the LDS pipeline is free

	// Ready-queue state (see readyq.go): the SM's ready warps split into
	// the port-gated stalled list (round-robin sorted, O(1) at both hot
	// ends) and the hazard-gated future heap. candW/candT/candLast cache
	// the SM's best candidate and its device-heap key; rqIdx is the SM's
	// position in the device-level heap; seqGen hands out scan-position
	// tie-break sequence numbers as warps are appended to Warps.
	stalledHead *Warp
	stalledTail *Warp
	future      warpHeap
	candW       *Warp
	candT       int64
	candLast    int64
	rqIdx       int
	seqGen      int64

	// offline marks an SM being preempted: the dispatcher must not place
	// new victim blocks on it until the episode resolves.
	offline bool

	episode *Episode // active preemption episode, if any

	// stats is where this SM's issue path accumulates device counters.
	// It normally points at Device.Stats; during an epoch-parallel phase
	// (see epoch.go) it points at the owning shard's private accumulator
	// so concurrent shards never write the same counters. The sums are
	// folded back at the phase merge, so totals are interleaving-free.
	stats *DeviceStats

	// Issue-path operand scratch. Per-SM (not per-Device) so epoch
	// shards draining different SMs never share a buffer; sized up
	// front so the hot path never allocates.
	hazardScratch []isa.Reg
	defsScratch   []isa.Reg

	// phaseErr holds a scheduling error discovered by enqueueReady
	// while this SM drains inside an epoch phase (the parallel
	// counterpart of Device.qerr, which shards must not write). The
	// phase merge folds it into the run's first-in-issue-order error.
	phaseErr error
}

// hazardRegs collects the registers whose in-flight values gate issue of
// in (RAW via uses, WAW via defs) into the SM-owned scratch slice.
func (sm *SM) hazardRegs(in *isa.Instruction) []isa.Reg {
	sm.hazardScratch = sm.hazardScratch[:0]
	sm.hazardScratch = in.Uses(sm.hazardScratch)
	sm.hazardScratch = in.Defs(sm.hazardScratch)
	return sm.hazardScratch
}

// defRegs collects in's defined registers into the SM-owned scratch
// slice — the issue path runs once per simulated instruction and must
// not allocate.
func (sm *SM) defRegs(in *isa.Instruction) []isa.Reg {
	sm.defsScratch = sm.defsScratch[:0]
	sm.defsScratch = in.Defs(sm.defsScratch)
	return sm.defsScratch
}

func (sm *SM) residentWarps() int {
	n := 0
	for _, w := range sm.Warps {
		if w.State != WarpPreempted {
			n++
		}
	}
	return n
}

func (sm *SM) blocksOf(l *Launch) int {
	seen := map[int]bool{}
	for _, w := range sm.Warps {
		if w.launch == l && w.State != WarpPreempted {
			seen[w.BlockID] = true
		}
	}
	return len(seen)
}

// accessLDS pushes bytes through the SM-private LDS pipeline.
func (sm *SM) accessLDS(start int64, bytes int) int64 {
	txStart := max(start, sm.ldsFree)
	dur := int64(float64(bytes)/sm.Dev.Cfg.LDSBytesPerCycle) + 1
	sm.ldsFree = txStart + dur
	sm.stats.LDSBytes += int64(bytes)
	return txStart + dur + int64(sm.Dev.Cfg.LDSLatency)
}

// issue executes warp w's next instruction at cycle t and applies timing.
func (sm *SM) issue(w *Warp, t int64) error {
	d := sm.Dev

	// Instrumentation hooks fire before kernel instructions — and before
	// the preemption signal is honored: injected instrumentation precedes
	// the instruction in program order, so a warp about to take a forced
	// checkpoint (e.g. right after a barrier) completes it first. This
	// keeps checkpoint cuts consistent with cross-warp LDS state.
	if w.Mode == ModeKernel && d.rt != nil && !w.skipHookOnce {
		if instrs, buf := d.rt.Hook(w, w.PC); len(instrs) > 0 {
			w.skipHookOnce = true
			w.hookSavedCtx = w.ctx
			w.ctx = buf
			w.enterHook(instrs)
		}
	}

	// Preemption signals are processed before executing each kernel
	// instruction (paper §III). The signal binds the warps resident at
	// signal time: a warp dispatched onto the SM later (the newcomer the
	// SM is vacated for) is not a victim and must not enter the routine.
	if sm.episode != nil && sm.episode.pending && w.Mode == ModeKernel && !w.barrierWait &&
		sm.episode.isVictim(w) {
		sm.beginPreempt(w, t)
	}

	in := w.currentInstr()
	if in == nil {
		return fmt.Errorf("sim: warp %d has no instruction to issue", w.ID)
	}
	eff, err := d.execute(w, in)
	if err != nil {
		return err
	}

	sm.stats.Instructions++
	if tr := d.tracer; tr != nil && (tr.Filter == nil || tr.Filter(w)) {
		tr.record(TraceEvent{Cycle: t, SM: sm.ID, WarpID: w.ID, Mode: w.Mode, PC: w.PC, Text: in.String()})
	}
	switch w.Mode {
	case ModeKernel:
		sm.stats.KernelInstrs++
	case ModeHook:
		sm.stats.HookInstrs++
	default:
		sm.stats.RoutineInstrs++
	}

	// Timing.
	info := in.Op.Info()
	w.lastIssued = t
	w.candValid = false
	sm.issueFree = t + 1
	w.ReadyAt = t + 1
	done := t + int64(info.IssueCycles)
	switch {
	case eff.memBytes > 0:
		// Context traffic takes the slow switch path only inside real
		// preemption/resume routines; checkpoint stores injected as
		// instrumentation (ModeHook) are ordinary kernel stores on the
		// fast bus.
		ctxPath := info.Class == isa.ClassContext && w.Mode != ModeHook
		complete := d.accessGlobal(t+int64(info.IssueCycles), eff.memBytes, ctxPath, info.HasDst)
		if info.HasDst && in.Dst.Valid() {
			w.setRegReady(in.Dst, complete)
		} else {
			w.lastStoreDone = max(w.lastStoreDone, complete)
		}
		if info.Class == isa.ClassContext && w.preemptRec != nil {
			switch w.Mode {
			case ModePreemptRoutine:
				w.preemptRec.SavedBytes += int64(eff.memBytes)
			case ModeResumeRoutine:
				w.preemptRec.RestoredBytes += int64(eff.memBytes)
			}
		}
		done = complete
		// Fault injection on context-transfer stores/loads. Context ops
		// are idempotent (slot rewrites), so a transient fault retries
		// the same routine instruction after a backoff — the traffic
		// above was charged (the transfer happened and failed); the
		// retry re-charges on its next issue. Permanent faults and
		// exhausted retries escalate to a structured error.
		if d.faults != nil && ctxPath {
			save := w.Mode == ModePreemptRoutine
			switch d.faults.CtxTransferFault(w.ID, save) {
			case faults.Transient:
				if w.ctxRetries < d.faults.Config().MaxRetries {
					w.ctxRetries++
					if ep := sm.episode; ep != nil {
						ep.Faults.TransientRetries++
					}
					backoff := int64(d.faults.Config().BackoffCycles) * int64(w.ctxRetries)
					w.ReadyAt = done + backoff
					// Leave the stream position unchanged: the same
					// instruction re-issues after the backoff.
					return nil
				}
				return &TransferFaultError{WarpID: w.ID, SM: sm.ID, Save: save,
					Permanent: false, Attempts: w.ctxRetries + 1}
			case faults.Permanent:
				return &TransferFaultError{WarpID: w.ID, SM: sm.ID, Save: save,
					Permanent: true, Attempts: w.ctxRetries + 1}
			}
			w.ctxRetries = 0
		}
	case eff.ldsBytes > 0:
		complete := sm.accessLDS(t+int64(info.IssueCycles), eff.ldsBytes)
		if info.HasDst && in.Dst.Valid() {
			w.setRegReady(in.Dst, complete)
		} else {
			w.lastStoreDone = max(w.lastStoreDone, complete)
		}
		done = complete
	default:
		if info.HasDst && in.Dst.Valid() {
			w.setRegReady(in.Dst, done)
		}
		for _, r := range sm.defRegs(in) {
			if r != in.Dst {
				w.setRegReady(r, done)
			}
		}
	}

	// Advance the stream.
	switch w.Mode {
	case ModeKernel:
		w.DynCount++
		w.skipHookOnce = false
		if eff.nextPC >= 0 {
			w.PC = eff.nextPC
		} else {
			w.PC++
		}
	default:
		w.routinePC++
		if w.Mode == ModeHook && w.routinePC >= len(w.routine) {
			// Hook finished: restore the underlying stream.
			w.Mode = w.savedMode
			w.ctx = w.hookSavedCtx
			w.hookSavedCtx = nil
			w.hookDepth--
		}
	}

	// State transitions.
	switch {
	case eff.endpgm:
		w.State = WarpDone
		w.ReadyAt = max(done, w.lastStoreDone)
		w.launch.doneWarps++
		sm.onBlockMaybeFinished(w)
		d.dispatch(w.launch)
	case eff.barrier:
		sm.arriveBarrier(w, max(t+1, w.lastStoreDone))
	case eff.ctxExit:
		saved := max(done, w.lastStoreDone)
		w.State = WarpPreempted
		w.ReadyAt = saved
		if rec := w.preemptRec; rec != nil {
			rec.SavedCycle = saved
		}
		w.episode.onWarpSaved(w, saved)
	case eff.ctxResume:
		w.Mode = ModeKernel
		w.PC = eff.resumePC
		w.DynCount = w.ctx.DynCount
		w.BarrierCount = w.ctx.Barriers
		w.ctx = nil
		// The state is only restored once every outstanding restore load
		// has landed.
		restored := max(done, w.lastStoreDone, w.regReady.maxAll())
		if rec := w.preemptRec; rec != nil {
			rec.RestoreDone = restored
			w.episode.onWarpRestored(w, restored)
		}
		if rec := w.preemptRec; rec != nil && rec.ResumeComplete == 0 && w.DynCount >= rec.DynAtSignal {
			rec.ResumeComplete = restored
			w.episode.onWarpResumed(w, rec.ResumeComplete)
			if err := d.checkResume(w); err != nil {
				return err
			}
		}
	}

	// Progress-based resume completion (checkpoint re-execution).
	if w.Mode == ModeKernel {
		if rec := w.preemptRec; rec != nil && rec.ResumeComplete == 0 && rec.ResumeStart > 0 && w.DynCount >= rec.DynAtSignal {
			rec.ResumeComplete = max(done, w.lastStoreDone)
			w.episode.onWarpResumed(w, rec.ResumeComplete)
			if err := d.checkResume(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// arriveBarrier registers w at its next barrier and releases the block
// when every live peer has arrived or is already logically past it.
func (sm *SM) arriveBarrier(w *Warp, t int64) {
	w.barrierWait = true
	w.State = WarpAtBarrier
	w.ReadyAt = t
	sm.checkBarrier(w, t)
}

func (sm *SM) checkBarrier(w *Warp, t int64) {
	target := w.BarrierCount + 1
	var waiters []*Warp
	for _, peer := range blockPeers(w) {
		switch {
		case peer.State == WarpDone:
			// Finished warps no longer participate.
		case peer.BarrierCount >= target:
			// Already past this instance.
		case peer.barrierWait && peer.BarrierCount+1 == target:
			waiters = append(waiters, peer)
		default:
			return // someone still on the way
		}
	}
	release := t
	for _, peer := range waiters {
		if peer.ReadyAt > release {
			release = peer.ReadyAt
		}
	}
	for _, peer := range waiters {
		peer.barrierWait = false
		peer.State = WarpReady
		peer.BarrierCount = target
		peer.ReadyAt = release + 1
		sm.Dev.enqueueReady(peer)
	}
}

func blockPeers(w *Warp) []*Warp {
	return w.launch.blocks[w.BlockID].warps
}

// onBlockMaybeFinished frees block bookkeeping when its last warp ends,
// and re-checks barriers (a finishing warp may unblock waiters).
func (sm *SM) onBlockMaybeFinished(w *Warp) {
	bi := w.launch.blocks[w.BlockID]
	bi.done++
	for _, peer := range bi.warps {
		if peer.barrierWait {
			sm.checkBarrier(peer, peer.ReadyAt)
			break
		}
	}
	if bi.done == len(bi.warps) {
		sm.removeBlockWarps(bi)
	}
}

func (sm *SM) removeBlockWarps(bi *blockInfo) {
	kept := sm.Warps[:0]
	for _, w := range sm.Warps {
		if w.BlockID == bi.id && w.launch.blocks[bi.id] == bi {
			continue
		}
		kept = append(kept, w)
	}
	sm.Warps = kept
}
