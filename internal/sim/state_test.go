package sim

import (
	"reflect"
	"strings"
	"testing"

	"ctxback/internal/isa"
)

// stateObservables is the cross-restore comparison set: the clock and
// every DeviceStats counter. Device.migrations is deliberately absent —
// it is ready-queue cost accounting, reset by a restore (the queue is
// rebuilt), and feeds no simulation result.
type stateObservables struct {
	Now   int64
	Stats DeviceStats
}

func observeState(d *Device) stateObservables {
	return stateObservables{Now: d.now, Stats: d.Stats}
}

// cloneViaState round-trips d through ExportState/ImportState onto a
// fresh device and returns the imported device plus its state index.
// It also checks the contract pieces that every round trip must honor:
// repeat-export determinism and observable preservation.
func cloneViaState(t *testing.T, d *Device, rt Runtime, progs []*isa.Program) (*Device, *StateIndex) {
	t.Helper()
	st, _ := d.ExportState()
	st2, _ := d.ExportState()
	if !reflect.DeepEqual(st, st2) {
		t.Fatal("two exports of the same device differ")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("exported state fails invariants: %v", err)
	}
	fresh := mustNewDevice(d.Cfg)
	idx, err := fresh.ImportState(st, rt, progs)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if got, want := observeState(fresh), observeState(d); got != want {
		t.Fatalf("import perturbed observables: %+v, want %+v", got, want)
	}
	return fresh, idx
}

// stateEpisodeRun drives the oversubscribed barrier workload through a
// full preemption episode, optionally swapping the device for an
// export/import clone at the named cut point. Cuts cover every
// mid-flight shape the snapshot layer must survive: a pending signal
// with barrier-parked victims just released, warps inside their
// preemption routines, a parked (fully saved) episode, and warps inside
// their resume routines.
func stateEpisodeRun(t *testing.T, cut string) ([]stateObservables, Phases, *Device) {
	t.Helper()
	const signal = 1337
	d := oversubscribedDevice(t, 40)
	prog := d.launches[0].Spec.Prog
	progs := []*isa.Program{prog}
	rt := naiveRuntime{}

	var obs []stateObservables
	var ep *Episode
	maybeClone := func(at string) {
		if cut != at {
			return
		}
		clone, idx := cloneViaState(t, d, rt, progs)
		d = clone
		if ep != nil {
			if len(idx.Episodes) == 0 {
				t.Fatalf("cut %q: episode lost in round trip", at)
			}
			ep = idx.Episodes[0]
		}
	}

	if err := d.RunToCycle(signal, 1<<40); err != nil {
		t.Fatalf("to-signal: %v", err)
	}
	maybeClone("at-signal")
	obs = append(obs, observeState(d))

	var err error
	ep, err = d.Preempt(0, rt)
	if err != nil {
		t.Fatalf("preempt: %v", err)
	}
	maybeClone("pending")
	// Step partway into the save so some victims sit mid preemption
	// routine at the cut.
	if err := d.RunToCycle(d.now+60, 1<<40); err != nil {
		t.Fatalf("mid-save run: %v", err)
	}
	maybeClone("mid-save")
	if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
		t.Fatalf("save: %v", err)
	}
	maybeClone("parked")
	obs = append(obs, observeState(d))

	if err := d.Resume(ep); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := d.RunToCycle(d.now+60, 1<<40); err != nil {
		t.Fatalf("mid-resume run: %v", err)
	}
	maybeClone("mid-resume")
	if err := d.RunUntil(ep.Finished, 1<<40); err != nil {
		t.Fatalf("replay: %v", err)
	}
	obs = append(obs, observeState(d))

	if err := d.Run(1 << 40); err != nil {
		t.Fatalf("drain: %v", err)
	}
	obs = append(obs, observeState(d))
	return obs, ep.Phases(), d
}

// TestStateRoundTripCycleExact proves a restored device continues
// cycle-exactly: runs cut at every episode shape produce the same
// boundary observables, phase decomposition, and final memory as the
// undisturbed run.
func TestStateRoundTripCycleExact(t *testing.T) {
	wantObs, wantPhases, wantDev := stateEpisodeRun(t, "none")
	for _, cut := range []string{"at-signal", "pending", "mid-save", "parked", "mid-resume"} {
		gotObs, gotPhases, gotDev := stateEpisodeRun(t, cut)
		for i := range wantObs {
			if gotObs[i] != wantObs[i] {
				t.Errorf("cut=%s stage %d: %+v, want %+v", cut, i, gotObs[i], wantObs[i])
			}
		}
		if gotPhases != wantPhases {
			t.Errorf("cut=%s phases = %+v, want %+v", cut, gotPhases, wantPhases)
		}
		for i := range wantDev.Mem {
			if gotDev.Mem[i] != wantDev.Mem[i] {
				t.Fatalf("cut=%s: Mem[%d] = %#x, want %#x", cut, i, gotDev.Mem[i], wantDev.Mem[i])
			}
		}
	}
}

// TestStateRoundTripBarrierParked pins the barrier-parked-victim shape
// explicitly: the cut lands while a pending episode holds victims that
// were rewound off a barrier, and the restored run still converges.
func TestStateRoundTripBarrierParked(t *testing.T) {
	d := oversubscribedDevice(t, 40)
	prog := d.launches[0].Spec.Prog
	// Let fast warps park at the first barrier.
	if err := d.RunToCycle(400, 1<<40); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	clone, idx := cloneViaState(t, d, naiveRuntime{}, []*isa.Program{prog})
	ep2 := idx.Episodes[0]
	if len(ep2.Victims) != len(ep.Victims) {
		t.Fatalf("victims lost: %d vs %d", len(ep2.Victims), len(ep.Victims))
	}
	finish := func(d *Device, ep *Episode) *Device {
		if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
			t.Fatal(err)
		}
		if err := d.Resume(ep); err != nil {
			t.Fatal(err)
		}
		if err := d.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := finish(d, ep), finish(clone, ep2)
	if observeState(a) != observeState(b) {
		t.Fatalf("observables diverged: %+v vs %+v", observeState(a), observeState(b))
	}
	for i := range a.Mem {
		if a.Mem[i] != b.Mem[i] {
			t.Fatalf("Mem[%d] diverged", i)
		}
	}
}

// TestExportIsDeepCopy: running the source device to completion must not
// mutate a previously exported state.
func TestExportIsDeepCopy(t *testing.T) {
	d := oversubscribedDevice(t, 10)
	if err := d.RunToCycle(500, 1<<40); err != nil {
		t.Fatal(err)
	}
	st, _ := d.ExportState()
	snap, _ := d.ExportState()
	if err := d.Run(1 << 40); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, snap) {
		t.Fatal("running the source device mutated an exported state")
	}
}

// TestImportRejects exercises every clean-refusal path: non-fresh
// targets, config and shard-width mismatches, wrong programs, and
// invariant-violating states. Each must error without panicking.
func TestImportRejects(t *testing.T) {
	d := oversubscribedDevice(t, 10)
	if err := d.RunToCycle(300, 1<<40); err != nil {
		t.Fatal(err)
	}
	st, _ := d.ExportState()
	prog := d.launches[0].Spec.Prog
	progs := []*isa.Program{prog}

	expectErr := func(name string, target *Device, st *DeviceState, progs []*isa.Program, frag string) {
		t.Helper()
		_, err := target.ImportState(st, naiveRuntime{}, progs)
		if err == nil {
			t.Fatalf("%s: import unexpectedly succeeded", name)
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("%s: error %q does not mention %q", name, err, frag)
		}
	}

	// Non-fresh target: the source device itself.
	expectErr("non-fresh", d, st, progs, "fresh device")

	// Config mismatch (the -sms case): fewer SMs than the snapshot.
	small := DefaultConfig()
	small.NumSMs = 2
	small.GlobalMemBytes = 1 << 20
	expectErr("config-mismatch", mustNewDevice(small), st, progs, "config mismatch")

	// Shard-width mismatch (the -shards case).
	sharded := mustNewDevice(d.Cfg)
	sharded.SetShards(2)
	expectErr("shards-mismatch", sharded, st, progs, "shard width mismatch")

	// Wrong program for the fingerprint.
	other := sumKernel(t)
	expectErr("prog-mismatch", mustNewDevice(d.Cfg), st, []*isa.Program{other}, "fingerprint")

	// Wrong program count.
	expectErr("prog-count", mustNewDevice(d.Cfg), st, nil, "programs")

	// Invariant violation: tampered done counter.
	bad, _ := d.ExportState()
	bad.Launches[0].DoneWarps++
	expectErr("invariants", mustNewDevice(d.Cfg), bad, progs, "state invalid")

	// A valid import still works after all the refusals above (they
	// never corrupted shared state).
	if _, err := mustNewDevice(d.Cfg).ImportState(st, naiveRuntime{}, progs); err != nil {
		t.Fatalf("valid import failed after refusals: %v", err)
	}
}

// TestStateRoundTripSharded: a snapshot taken from a sharded device
// imports onto a shell at the same width and finishes byte-identically
// to the serial undisturbed run (shard count is a pure perf knob).
func TestStateRoundTripSharded(t *testing.T) {
	_, _, want := stateEpisodeRun(t, "none")

	d := oversubscribedDevice(t, 40)
	d.SetShards(2)
	prog := d.launches[0].Spec.Prog
	if err := d.RunToCycle(1337, 1<<40); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
		t.Fatal(err)
	}
	st, _ := d.ExportState()
	shell := mustNewDevice(d.Cfg)
	shell.SetShards(2)
	idx, err := shell.ImportState(st, naiveRuntime{}, []*isa.Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	if err := shell.Resume(idx.Episodes[0]); err != nil {
		t.Fatal(err)
	}
	if err := shell.Run(1 << 40); err != nil {
		t.Fatal(err)
	}
	for i := range want.Mem {
		if shell.Mem[i] != want.Mem[i] {
			t.Fatalf("Mem[%d] = %#x, want %#x", i, shell.Mem[i], want.Mem[i])
		}
	}
	if shell.Stats != want.Stats {
		t.Fatalf("stats = %+v, want %+v", shell.Stats, want.Stats)
	}
}
