package sim

import (
	"testing"

	"ctxback/internal/isa"
)

// naiveRuntime is a minimal liveness-blind technique used to validate the
// preemption engine itself: save every register, EXEC/VCC/SCC and the LDS
// share; restore all of it and jump back.
type naiveRuntime struct{}

func (naiveRuntime) Name() string { return "naive" }

func (naiveRuntime) PreemptRoutine(w *Warp) []isa.Instruction {
	var r []isa.Instruction
	for i := 0; i < w.Prog.NumVRegs; i++ {
		r = append(r, isa.Instruction{Op: isa.CtxSaveV, Srcs: [isa.MaxSrcs]isa.Operand{isa.R(isa.V(i))}, Imm0: int32(i)})
	}
	for i := 0; i < w.Prog.NumSRegs; i++ {
		r = append(r, isa.Instruction{Op: isa.CtxSaveS, Srcs: [isa.MaxSrcs]isa.Operand{isa.R(isa.S(i))}, Imm0: int32(i)})
	}
	for _, sp := range []isa.Reg{isa.Exec, isa.VCC, isa.SCC} {
		r = append(r, isa.Instruction{Op: isa.CtxSaveSpec, Srcs: [isa.MaxSrcs]isa.Operand{isa.R(sp)}, Imm0: int32(sp.Index)})
	}
	if w.Prog.LDSBytes > 0 {
		r = append(r, isa.Instruction{Op: isa.CtxSaveLDS})
	}
	r = append(r,
		isa.Instruction{Op: isa.CtxSavePC, Target: w.PC},
		isa.Instruction{Op: isa.CtxExit},
	)
	return r
}

func (naiveRuntime) ResumeRoutine(w *Warp) ([]isa.Instruction, *SavedContext) {
	var r []isa.Instruction
	for i := 0; i < w.Prog.NumVRegs; i++ {
		r = append(r, isa.Instruction{Op: isa.CtxLoadV, Dst: isa.V(i), Imm0: int32(i)})
	}
	for i := 0; i < w.Prog.NumSRegs; i++ {
		r = append(r, isa.Instruction{Op: isa.CtxLoadS, Dst: isa.S(i), Imm0: int32(i)})
	}
	for _, sp := range []isa.Reg{isa.Exec, isa.VCC, isa.SCC} {
		r = append(r, isa.Instruction{Op: isa.CtxLoadSpec, Dst: sp, Imm0: int32(sp.Index)})
	}
	if w.Prog.LDSBytes > 0 {
		r = append(r, isa.Instruction{Op: isa.CtxLoadLDS})
	}
	r = append(r, isa.Instruction{Op: isa.CtxResume, Target: w.ctx.PC})
	return r, nil
}

func (naiveRuntime) Hook(w *Warp, pc int) ([]isa.Instruction, *SavedContext) { return nil, nil }

// HookAt declares the hook inert so the epoch engine keeps draining
// local pops while the runtime is attached — the sharded episode tests
// then exercise parallel phases through preemption, not just around it.
func (naiveRuntime) HookAt(w *Warp, pc int) bool { return false }

// sumKernel computes, per lane: out[gid] = sum_{i=1..n} i + lane, looping
// n times so there is plenty of execution to preempt in the middle of.
func sumKernel(t *testing.T) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(`
.kernel sum
.vregs 6
.sregs 16
  ; s0 = loop count, s1 = out base (bytes), s2 = flat warp id
  v_laneid v0
  v_mov v1, 0
  s_mov s3, s1
loop:
  v_add v1, v1, s0
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_add v1, v1, v0
  s_shl s4, s2, 8      ; warp id * 64 lanes * 4 bytes
  s_add s4, s4, s3
  v_shl v2, v0, 2 !noovf
  v_add v2, v2, s4
  v_gstore v2, v1, 0
  s_endpgm
`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func launchSum(t *testing.T, d *Device, loops, numWarps int) *Launch {
	t.Helper()
	l, err := d.Launch(LaunchSpec{
		Prog: sumKernel(t), NumBlocks: numWarps, WarpsPerBlock: 1,
		Setup: func(w *Warp) {
			w.SRegs[0] = uint64(loops)
			w.SRegs[1] = 4096
			w.SRegs[2] = uint64(w.ID)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func checkSum(t *testing.T, d *Device, loops, numWarps int) {
	t.Helper()
	want := uint32(loops * (loops + 1) / 2)
	for wid := 0; wid < numWarps; wid++ {
		for l := 0; l < isa.WarpSize; l++ {
			got := d.Mem[1024+wid*isa.WarpSize+l]
			if got != want+uint32(l) {
				t.Fatalf("warp %d lane %d: got %d, want %d", wid, l, got, want+uint32(l))
			}
		}
	}
}

func TestPreemptResumeRoundTrip(t *testing.T) {
	const loops, warps = 400, 4
	d := mustNewDevice(TestConfig())
	launchSum(t, d, loops, warps)

	// Run partway, then preempt SM 0.
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if !ep.Saved() {
		t.Fatal("episode never saved")
	}
	if ep.PreemptLatencyCycles() <= 0 {
		t.Errorf("preempt latency = %d", ep.PreemptLatencyCycles())
	}
	if ep.SavedBytes() == 0 {
		t.Error("no context bytes saved")
	}

	// Victim warps must hold their PCs mid-kernel.
	for _, v := range ep.Victims {
		if v.State != WarpPreempted {
			t.Errorf("victim %d state = %v", v.ID, v.State)
		}
		if v.preemptRec.PCAtSignal <= 0 {
			t.Errorf("victim %d preempted at pc %d", v.ID, v.preemptRec.PCAtSignal)
		}
	}

	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !ep.Finished() {
		t.Fatal("episode never finished resuming")
	}
	if ep.ResumeCycles() <= 0 {
		t.Errorf("resume cycles = %d", ep.ResumeCycles())
	}
	checkSum(t, d, loops, warps)
}

func TestPreemptMatchesGoldenRun(t *testing.T) {
	const loops, warps = 300, 2
	// Golden: uninterrupted run.
	golden := mustNewDevice(TestConfig())
	launchSum(t, golden, loops, warps)
	if err := golden.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// Preempted run.
	d := mustNewDevice(TestConfig())
	launchSum(t, d, loops, warps)
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	for i := range golden.Mem {
		if golden.Mem[i] != d.Mem[i] {
			t.Fatalf("mem[%d]: golden %d vs preempted %d", i, golden.Mem[i], d.Mem[i])
		}
	}
}

func TestPreemptDuringBarrierWait(t *testing.T) {
	// Warp 0 reaches the barrier quickly; warp 1 loops first. Preempt
	// while warp 0 waits: both must save, resume and complete.
	prog := mustAsm(t, `
.kernel barwait
.vregs 4
.sregs 16
.lds 512
  s_cmp_eq s0, 1
  s_cbranch_scc0 fast
  s_mov s1, 200
spin:
  s_sub s1, s1, 1
  s_cmp_gt s1, 0
  s_cbranch_scc1 spin
fast:
  v_mov v0, s0
  v_shl v1, v0, 2 !noovf
  v_mov v2, 42
  v_lstore v1, v2, 0
  s_barrier
  v_lload v3, v1, 0
  s_shl s2, s0, 2
  v_mov v0, s2
  v_gstore v0, v3, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	_, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 2, Setup: func(w *Warp) {
		w.SRegs[0] = uint64(w.WarpInBlk)
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Let warp 0 arrive at the barrier.
	if err := d.RunUntil(func() bool { return d.Now() > 60 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if d.Mem[0] != 42 || d.Mem[1] != 42 {
		t.Errorf("mem = %d,%d want 42,42", d.Mem[0], d.Mem[1])
	}
}

func TestPreemptErrors(t *testing.T) {
	d := mustNewDevice(TestConfig())
	if _, err := d.Preempt(99, naiveRuntime{}); err == nil {
		t.Error("bad SM id must error")
	}
	if _, err := d.Preempt(0, naiveRuntime{}); err == nil {
		t.Error("preempting an idle SM must error")
	}
	launchSum(t, d, 50, 2)
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err == nil {
		t.Error("resume before saved must error")
	}
	if _, err := d.Preempt(0, naiveRuntime{}); err == nil {
		t.Error("double preempt must error")
	}
}

func TestPreemptFreesSMForOtherKernel(t *testing.T) {
	const loops, warps = 400, 2
	d := mustNewDevice(TestConfig())
	launchSum(t, d, loops, warps)
	if err := d.RunUntil(func() bool { return d.Now() > 300 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	// Launch a latency-sensitive kernel pinned to the freed SM.
	ls := mustAsm(t, `
.kernel ls
.vregs 4
.sregs 16
  v_mov v0, 7
  v_gstore v1, v0, 0
  s_endpgm
`)
	lsl, err := d.Launch(LaunchSpec{Prog: ls, NumBlocks: 1, WarpsPerBlock: 1, SMFilter: []int{0},
		Setup: func(w *Warp) {
			for l := 0; l < isa.WarpSize; l++ {
				w.VRegs[1][l] = uint32(l * 4)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(lsl.Done, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if !lsl.Done() {
		t.Fatal("latency-sensitive kernel never ran on the freed SM")
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	checkSum(t, d, loops, warps)
	if d.Mem[0] != 7 {
		t.Errorf("ls kernel output = %d", d.Mem[0])
	}
}
