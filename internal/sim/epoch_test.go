package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ctxback/internal/isa"
)

// observables is everything a run exposes; two runs that agree here (and
// on memory, compared separately) are byte-identical for every consumer.
type observables struct {
	Now        int64
	Stats      DeviceStats
	Migrations int64
}

func observe(d *Device) observables {
	return observables{Now: d.now, Stats: d.Stats, Migrations: d.migrations}
}

// barrierLoopProgram is a barrier-heavy kernel: two block-wide barriers
// per loop iteration, with LDS traffic crossing each. It maximizes
// park/release churn at epoch boundaries.
func barrierLoopProgram(tb testing.TB) *isa.Program {
	tb.Helper()
	p, err := isa.Assemble(`
.kernel barrloop
.vregs 8
.sregs 16
.lds 512
  ; s0 = loop count, s1 = out base (bytes)
  v_laneid v0
  v_mov v1, 0
  v_shl v2, v0, 2 !noovf
loop:
  v_add v1, v1, s0
  v_and v1, v1, 0xFFFF
  v_lstore v2, v1, 0
  s_barrier
  v_lload v3, v2, 0
  v_add v1, v1, v3
  s_barrier
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_add v2, v2, s1
  v_gstore v2, v1, 0
  s_endpgm
`)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// runOccupancy drives the full-occupancy two-tenant bench workload to
// completion at the given shard count and returns the observables plus
// the final device (for memory comparison).
func runOccupancy(t *testing.T, shards int) (observables, *Device) {
	t.Helper()
	d := benchOccupancyDevice(t, benchLoopProgram(t))
	d.SetShards(shards)
	if err := d.Run(1 << 40); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return observe(d), d
}

// TestShardedMatchesSerialOccupancy pins the epoch engine to the serial
// engine on the benchmark workload at every shard width.
func TestShardedMatchesSerialOccupancy(t *testing.T) {
	want, wantDev := runOccupancy(t, 1)
	if want.Stats.Instructions == 0 || want.Stats.LDSBytes == 0 {
		t.Fatalf("degenerate serial run: %+v", want)
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got, gotDev := runOccupancy(t, shards)
		if got != want {
			t.Errorf("shards=%d observables = %+v, want %+v", shards, got, want)
		}
		for i := range wantDev.Mem {
			if gotDev.Mem[i] != wantDev.Mem[i] {
				t.Fatalf("shards=%d: Mem[%d] = %#x, want %#x", shards, i, gotDev.Mem[i], wantDev.Mem[i])
			}
		}
	}
}

// oversubscribedDevice launches more barrier-kernel blocks than fit, so
// blocksPending stays non-zero deep into the run and every endpgm
// triggers a dispatch — the regime where the horizon must bound static
// distances to program end.
func oversubscribedDevice(tb testing.TB, loops uint64) *Device {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.GlobalMemBytes = 1 << 20
	d := mustNewDevice(cfg)
	prog := barrierLoopProgram(tb)
	_, err := d.Launch(LaunchSpec{
		Prog: prog, NumBlocks: 3 * cfg.NumSMs, WarpsPerBlock: 4,
		Setup: func(w *Warp) {
			w.SRegs[0] = loops
			w.SRegs[1] = uint64(1<<18 + w.ID*isa.WarpSize*4)
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// episodeRun drives an oversubscribed barrier workload through a full
// preemption episode signalled at signalCycle, recording observables at
// every phase boundary. It exercises exactly the transitions the epoch
// engine must serialize: RunToCycle crossing, preemption entry, save
// completion, resume, replay completion, and final drain.
func episodeRun(t testing.TB, shards int, signalCycle int64) ([]observables, Phases, *Device) {
	t.Helper()
	d := oversubscribedDevice(t, 40)
	d.SetShards(shards)
	var obs []observables
	fail := func(stage string, err error) {
		t.Fatalf("shards=%d %s: %v", shards, stage, err)
	}
	if err := d.RunToCycle(signalCycle, 1<<40); err != nil {
		fail("to-signal", err)
	}
	obs = append(obs, observe(d))
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		fail("preempt", err)
	}
	if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
		fail("save", err)
	}
	obs = append(obs, observe(d))
	if err := d.Resume(ep); err != nil {
		fail("resume", err)
	}
	if err := d.RunUntil(ep.Finished, 1<<40); err != nil {
		fail("replay", err)
	}
	obs = append(obs, observe(d))
	if err := d.Run(1 << 40); err != nil {
		fail("drain", err)
	}
	obs = append(obs, observe(d))
	return obs, ep.Phases(), d
}

// TestShardedEpisodePhases pins episode phase decomposition and every
// intermediate boundary observable across shard widths.
func TestShardedEpisodePhases(t *testing.T) {
	for _, signal := range []int64{100, 1337, 5000} {
		wantObs, wantPhases, wantDev := episodeRun(t, 1, signal)
		for _, shards := range []int{2, 4} {
			gotObs, gotPhases, gotDev := episodeRun(t, shards, signal)
			for i := range wantObs {
				if gotObs[i] != wantObs[i] {
					t.Errorf("signal=%d shards=%d stage %d: %+v, want %+v",
						signal, shards, i, gotObs[i], wantObs[i])
				}
			}
			if gotPhases != wantPhases {
				t.Errorf("signal=%d shards=%d phases = %+v, want %+v",
					signal, shards, gotPhases, wantPhases)
			}
			for i := range wantDev.Mem {
				if gotDev.Mem[i] != wantDev.Mem[i] {
					t.Fatalf("signal=%d shards=%d: Mem[%d] differs", signal, shards, i)
				}
			}
		}
	}
}

// TestShardedBudgetErrorPreCommit verifies the budget contract under
// sharding: the rejection fires before the offending step commits, so
// the clock, stats and queue state match the serial engine's exactly,
// and the run can continue with a larger budget to an identical end.
func TestShardedBudgetErrorPreCommit(t *testing.T) {
	run := func(shards int) (*Device, *BudgetError, observables) {
		d := oversubscribedDevice(t, 40)
		d.SetShards(shards)
		err := d.RunToCycle(1<<30, 500)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("shards=%d: got %v, want *BudgetError", shards, err)
		}
		return d, be, observe(d)
	}
	wantDev, wantBE, wantObs := run(1)
	if wantObs.Now > wantBE.Limit {
		t.Fatalf("budget overshoot committed: now %d past limit %d", wantObs.Now, wantBE.Limit)
	}
	for _, shards := range []int{2, 4} {
		gotDev, gotBE, gotObs := run(shards)
		if *gotBE != *wantBE {
			t.Errorf("shards=%d BudgetError = %+v, want %+v", shards, *gotBE, *wantBE)
		}
		if gotObs != wantObs {
			t.Errorf("shards=%d observables = %+v, want %+v", shards, gotObs, wantObs)
		}
		// The rejected step must not have perturbed any shard-local
		// state: finishing both runs must agree byte-for-byte.
		if err := gotDev.Run(1 << 40); err != nil {
			t.Fatalf("shards=%d continue: %v", shards, err)
		}
		if err := wantDev.Run(1 << 40); err != nil {
			t.Fatalf("serial continue: %v", err)
		}
		if g, w := observe(gotDev), observe(wantDev); g != w {
			t.Errorf("shards=%d after continue = %+v, want %+v", shards, g, w)
		}
		wantDev, _, _ = run(1) // fresh serial baseline for the next width
	}
}

// TestShardedAdvanceTo checks the clock fast-forward is untouched by the
// engine selection.
func TestShardedAdvanceTo(t *testing.T) {
	d := mustNewDevice(TestConfig())
	d.SetShards(2)
	d.AdvanceTo(1234)
	if d.Now() != 1234 || d.Stats.Cycles != 1234 {
		t.Fatalf("AdvanceTo: now=%d cycles=%d", d.Now(), d.Stats.Cycles)
	}
	d.AdvanceTo(10)
	if d.Now() != 1234 {
		t.Fatalf("AdvanceTo moved the clock backwards: %d", d.Now())
	}
}

// TestSetShardsClamps pins the shard-count normalization.
func TestSetShardsClamps(t *testing.T) {
	d := mustNewDevice(TestConfig()) // NumSMs = 2
	d.SetShards(64)
	if got := d.Shards(); got != 2 {
		t.Fatalf("SetShards(64) on 2 SMs = %d, want 2", got)
	}
	d.SetShards(1)
	if got := d.Shards(); got != 1 {
		t.Fatalf("SetShards(1) = %d", got)
	}
	d.SetShards(0) // auto: GOMAXPROCS capped at NumSMs — never below 1
	if got := d.Shards(); got < 1 || got > 2 {
		t.Fatalf("SetShards(0) = %d, want 1..2", got)
	}
}

// TestEpochStress hammers epoch boundaries: barrier-heavy kernels with
// undispatched blocks, preemption signalled mid-epoch at pseudo-random
// cycles, across shard counts and seeds. Run under -race (make check)
// it is the engine's data-race gate; its outputs are also pinned to the
// serial engine per seed.
func TestEpochStress(t *testing.T) {
	seeds := []int64{1, 7, 20260808}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Keep the signal well inside the workload's lifetime so SM 0
			// always has live kernel warps to preempt.
			signal := 1 + rng.Int63n(1500)
			loops := uint64(24 + rng.Intn(24))
			run := func(shards int) ([]observables, Phases) {
				d := oversubscribedDevice(t, loops)
				d.SetShards(shards)
				if err := d.RunToCycle(signal, 1<<40); err != nil {
					t.Fatalf("shards=%d to-signal: %v", shards, err)
				}
				ep, err := d.Preempt(0, naiveRuntime{})
				if err != nil {
					t.Fatalf("shards=%d preempt: %v", shards, err)
				}
				if err := d.RunUntil(ep.Saved, 1<<40); err != nil {
					t.Fatalf("shards=%d save: %v", shards, err)
				}
				mid := observe(d)
				if err := d.Resume(ep); err != nil {
					t.Fatalf("shards=%d resume: %v", shards, err)
				}
				if err := d.RunUntil(ep.Finished, 1<<40); err != nil {
					t.Fatalf("shards=%d replay: %v", shards, err)
				}
				if err := d.Run(1 << 40); err != nil {
					t.Fatalf("shards=%d drain: %v", shards, err)
				}
				return []observables{mid, observe(d)}, ep.Phases()
			}
			wantObs, wantPhases := run(1)
			for _, shards := range []int{2, 3, 4} {
				gotObs, gotPhases := run(shards)
				for i := range wantObs {
					if gotObs[i] != wantObs[i] {
						t.Errorf("shards=%d stage %d: %+v, want %+v", shards, i, gotObs[i], wantObs[i])
					}
				}
				if gotPhases != wantPhases {
					t.Errorf("shards=%d phases = %+v, want %+v", shards, gotPhases, wantPhases)
				}
			}
		})
	}
}
