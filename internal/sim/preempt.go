package sim

import (
	"errors"
	"fmt"

	"ctxback/internal/isa"
	"ctxback/internal/trace"
)

// ErrDrained marks a preemption request against an SM with no running
// kernel warps: there is nothing to save, the SM is already free. It is
// an expected outcome near the end of a kernel, not a failure — callers
// discriminate it from real errors with errors.Is.
var ErrDrained = errors.New("no running kernel warps to preempt (drained)")

// PhaseNamer is optionally implemented by a Runtime to give
// technique-flavored names to the four canonical episode phases (e.g.
// CTXBack's replay phase is a flashback). Runtimes that do not implement
// it get trace.DefaultPhaseNames.
type PhaseNamer interface {
	PhaseNames() trace.PhaseNames
}

// Episode is one preemption of an SM: every kernel-mode warp resident on
// the SM saves its context through the attached technique and releases
// its slot; Resume brings them back later.
type Episode struct {
	SM      *SM
	rt      Runtime
	pending bool // signal raised, some warps not yet in their routine
	// frozen lists launches that may not place new blocks on the vacated
	// SM while the episode is active.
	frozen map[*Launch]bool

	Victims []*Warp

	SignalCycle   int64
	AllSavedCycle int64 // last CtxExit (incl. outstanding stores)
	ResumeStart   int64
	AllResumed    int64

	// Faults counts what this episode survived under fault injection
	// (all zero when no injector is attached).
	Faults EpisodeFaults

	enteredCount int
	savedCount   int
	resumedCount int

	// Phase bookkeeping: the cycle the LAST victim entered its
	// preemption routine, and the cycle the LAST victim's CtxResume
	// retired. Maintained unconditionally (two compares per warp per
	// episode) so EpisodeStats can break latencies into phases even when
	// no recorder is attached.
	enterLast   int64
	restoreLast int64

	tech  string
	names trace.PhaseNames
}

// Phases is the decomposition of an episode's two latencies into the
// four canonical phases. By construction Drain+Save ==
// PreemptLatencyCycles and Restore+Replay == ResumeCycles, exactly.
type Phases struct {
	Drain   int64 // signal raised → last victim entered its routine
	Save    int64 // → SM fully released (all context stores landed)
	Restore int64 // resume start → last context fully restored
	Replay  int64 // → logical progress regained on every victim
}

// Phases returns the episode's phase breakdown. The boundary cycles are
// clamped into their enclosing intervals (a victim's replay instruction
// can retire before an unrelated outstanding restore load lands), which
// guarantees the sums reconcile exactly with the headline latencies.
func (ep *Episode) Phases() Phases {
	enter := min(max(ep.enterLast, ep.SignalCycle), ep.AllSavedCycle)
	restore := min(max(ep.restoreLast, ep.ResumeStart), ep.AllResumed)
	return Phases{
		Drain:   enter - ep.SignalCycle,
		Save:    ep.AllSavedCycle - enter,
		Restore: restore - ep.ResumeStart,
		Replay:  ep.AllResumed - restore,
	}
}

// Technique returns the name of the runtime driving this episode.
func (ep *Episode) Technique() string { return ep.tech }

// PhaseNames returns the technique-flavored labels for this episode's
// phases.
func (ep *Episode) PhaseNames() trace.PhaseNames { return ep.names }

// AttachRuntime installs the preemption technique runtime whose Hook
// instrumentation (checkpoints, OSRB copies) should run during normal
// execution. Required before Preempt with the same runtime.
func (d *Device) AttachRuntime(rt Runtime) {
	d.rt = rt
	d.hookPred, _ = rt.(HookPredicate)
}

// Parked reports whether the episode is swapped out: every context is
// saved but resume has not started. A parked episode's SM may host a new
// tenant — and even a new episode against that tenant — while the
// victims wait in device memory.
func (ep *Episode) Parked() bool { return ep.Saved() && ep.ResumeStart == 0 }

// Preempt raises a preemption signal on SM smID at the current cycle.
// Every resident kernel warp will enter its dedicated preemption routine
// before issuing its next instruction.
//
// An SM whose previous episode is parked (fully saved, not resumed) may
// be preempted again: the new episode's victims are the warps running
// now (a newcomer tenant), while the parked victims stay swapped out
// untouched. Preempting mid-save or mid-resume is an error — warps in
// their switch routines have no consistent cut point.
func (d *Device) Preempt(smID int, rt Runtime) (*Episode, error) {
	if smID < 0 || smID >= len(d.SMs) {
		return nil, fmt.Errorf("sim: no SM %d", smID)
	}
	sm := d.SMs[smID]
	if prev := sm.episode; prev != nil && !prev.Finished() && !prev.Parked() {
		if prev.ResumeStart != 0 {
			return nil, fmt.Errorf("sim: SM %d episode is mid-resume; preempt-while-resuming is not allowed", smID)
		}
		return nil, fmt.Errorf("sim: SM %d already has an active episode", smID)
	}
	if d.faults != nil && d.faults.DropSignal(smID) {
		// The signal was lost in delivery: no SM state changes. Callers
		// recover by re-raising (each delivery attempt draws its own
		// fault decision).
		return nil, fmt.Errorf("sim: SM %d: %w", smID, ErrSignalLost)
	}
	ep := &Episode{SM: sm, rt: rt, pending: true, SignalCycle: d.now,
		frozen: make(map[*Launch]bool)}
	// Launches already in flight may not re-dispatch blocks onto the
	// freed SM: it is being vacated for a newcomer.
	for _, l := range d.launches {
		ep.frozen[l] = true
	}
	for _, w := range sm.Warps {
		if w.State == WarpDone || w.State == WarpPreempted {
			continue
		}
		ep.Victims = append(ep.Victims, w)
	}
	if len(ep.Victims) == 0 {
		return nil, fmt.Errorf("sim: SM %d: %w", smID, ErrDrained)
	}
	// A block whose peers already ran to completion still owns its whole
	// LDS allocation — shared data staged by any warp (a matrix tile, a
	// broadcast vector) stays live for the survivors. The per-warp save
	// shares are fixed at launch, so a victim preempted next to a Done
	// peer would save only its own slice while the all-saved poison wipes
	// the full block; the orphaned slice could never be restored. Fold
	// each Done warp's share into an adjacent victim so the victims'
	// shares cover the entire block. When every warp is a victim this
	// reproduces the launch-time split exactly.
	coverOrphanLDSShares(ep.Victims)
	ep.tech = rt.Name()
	ep.names = trace.DefaultPhaseNames()
	if pn, ok := rt.(PhaseNamer); ok {
		ep.names = pn.PhaseNames()
	}
	if d.rec != nil {
		d.rec.Emit(trace.Event{Name: "preempt-signal", Cat: trace.CatEpisode, Ph: trace.PhInstant,
			Cycle: d.now, SM: smID, Warp: -1, Tech: ep.tech})
	}
	sm.episode = ep
	sm.offline = true
	// Barrier-waiting warps cannot observe the signal by issuing; preempt
	// them in place at the barrier instruction (they re-arrive on
	// resume).
	for _, w := range ep.Victims {
		if w.barrierWait {
			w.barrierWait = false
			w.State = WarpReady
			w.PC-- // back to the barrier instruction itself
			w.ReadyAt = max(w.ReadyAt, d.now)
			d.enqueueReady(w)
		}
	}
	if d.faults != nil && d.faults.DupSignal(smID) {
		// A duplicated delivery raises the signal a second time while the
		// episode is active; the active-episode guard above rejects the
		// duplicate, so it is absorbed. Surface that as a counter.
		ep.Faults.AbsorbedDupSignals++
	}
	return ep, nil
}

// beginPreempt switches a warp into its dedicated preemption routine.
func (sm *SM) beginPreempt(w *Warp, t int64) {
	ep := sm.episode
	rec := &PreemptRecord{
		SignalCycle: ep.SignalCycle,
		EnterCycle:  t,
		DynAtSignal: w.DynCount,
		PCAtSignal:  w.PC,
	}
	w.preemptRec = rec
	if t > ep.enterLast {
		ep.enterLast = t
	}
	if d := sm.Dev; d.faults != nil || d.resumeChecker != nil {
		// Capture the signal-point architectural state for the
		// resume-integrity oracle before any routine instruction runs.
		w.snapshot = w.snapshotArch()
	}
	w.episode = ep
	w.ctx = NewSavedContext()
	w.enterRoutine(ModePreemptRoutine, ep.rt.PreemptRoutine(w))
	ep.noteEntered()
}

// noteEntered counts victims that entered their preemption routine.
// The count lives on the episode, NOT derived from the warps' records: a
// warp preempted before keeps its old record until the new episode
// replaces it, so scanning records would clear the pending signal early
// and let re-preempted victims run free.
func (ep *Episode) noteEntered() {
	ep.enteredCount++
	if ep.enteredCount == len(ep.Victims) {
		ep.pending = false
	}
}

func (ep *Episode) onWarpSaved(w *Warp, cycle int64) {
	if inj := ep.SM.Dev.faults; inj != nil && inj.ChecksumEnabled() {
		// Seal the saved context: the checksum is verified before the
		// buffer is consumed at resume.
		w.preemptRec.SavedChecksum = w.ctx.Checksum()
		w.preemptRec.HasChecksum = true
	}
	ep.savedCount++
	if cycle > ep.AllSavedCycle {
		ep.AllSavedCycle = cycle
	}
	if r := ep.SM.Dev.rec; r != nil {
		rec := w.preemptRec
		r.Emit(trace.Event{Name: ep.names.Save, Cat: trace.CatWarp, Ph: trace.PhComplete,
			Cycle: rec.EnterCycle, Dur: cycle - rec.EnterCycle, SM: ep.SM.ID, Warp: w.ID,
			Tech: ep.tech, Bytes: rec.SavedBytes})
	}
	if ep.savedCount == len(ep.Victims) {
		// All context saved: resources are released; poison the LDS of
		// victim blocks so un-restored state cannot leak through resume.
		blocks := map[*LDSBlock]bool{}
		for _, v := range ep.Victims {
			blocks[v.LDS] = true
		}
		for b := range blocks {
			for i := range b.Data {
				b.Data[i] = 0xDEADBEEF
			}
		}
		if r := ep.SM.Dev.rec; r != nil {
			ph := ep.Phases()
			r.Emit(trace.Event{Name: ep.names.Drain, Cat: trace.CatEpisode, Ph: trace.PhComplete,
				Cycle: ep.SignalCycle, Dur: ph.Drain, SM: ep.SM.ID, Warp: -1, Tech: ep.tech})
			r.Emit(trace.Event{Name: ep.names.Save, Cat: trace.CatEpisode, Ph: trace.PhComplete,
				Cycle: ep.SignalCycle + ph.Drain, Dur: ph.Save, SM: ep.SM.ID, Warp: -1,
				Tech: ep.tech, Bytes: ep.SavedBytes()})
		}
		// The SM's resources are free the moment the last context is
		// saved: launches that arrived after the signal (the newcomer the
		// SM was vacated for) may place blocks now, without waiting for
		// the victims to resume. Launches frozen by the episode stay
		// barred by the dispatch gate until it fully finishes.
		ep.SM.Dev.redispatch()
	}
}

// onWarpRestored marks w's context fully re-materialized (CtxResume
// retired with every restore load landed). Replay — if the technique
// needs any — runs after this point.
func (ep *Episode) onWarpRestored(w *Warp, cycle int64) {
	if cycle > ep.restoreLast {
		ep.restoreLast = cycle
	}
	if r := ep.SM.Dev.rec; r != nil {
		rec := w.preemptRec
		r.Emit(trace.Event{Name: ep.names.Restore, Cat: trace.CatWarp, Ph: trace.PhComplete,
			Cycle: rec.ResumeStart, Dur: cycle - rec.ResumeStart, SM: ep.SM.ID, Warp: w.ID,
			Tech: ep.tech, Bytes: rec.RestoredBytes})
	}
}

func (ep *Episode) onWarpResumed(w *Warp, cycle int64) {
	ep.resumedCount++
	if cycle > ep.AllResumed {
		ep.AllResumed = cycle
	}
	if r := ep.SM.Dev.rec; r != nil {
		if rec := w.preemptRec; rec.RestoreDone > 0 && cycle > rec.RestoreDone {
			r.Emit(trace.Event{Name: ep.names.Replay, Cat: trace.CatWarp, Ph: trace.PhComplete,
				Cycle: rec.RestoreDone, Dur: cycle - rec.RestoreDone, SM: ep.SM.ID, Warp: w.ID,
				Tech: ep.tech})
		}
	}
	if ep.resumedCount == len(ep.Victims) {
		if r := ep.SM.Dev.rec; r != nil {
			ph := ep.Phases()
			r.Emit(trace.Event{Name: ep.names.Restore, Cat: trace.CatEpisode, Ph: trace.PhComplete,
				Cycle: ep.ResumeStart, Dur: ph.Restore, SM: ep.SM.ID, Warp: -1, Tech: ep.tech})
			r.Emit(trace.Event{Name: ep.names.Replay, Cat: trace.CatEpisode, Ph: trace.PhComplete,
				Cycle: ep.ResumeStart + ph.Restore, Dur: ph.Replay, SM: ep.SM.ID, Warp: -1,
				Tech: ep.tech})
		}
		// A parked episode's SM pointer may have moved on to a newer
		// episode by the time its victims finish resuming; only release
		// the SM if this episode still owns it.
		if ep.SM.episode == ep {
			ep.SM.offline = false
			ep.SM.episode = nil
		}
		ep.SM.Dev.redispatch()
	}
}

func (d *Device) redispatch() {
	for _, l := range d.launches {
		d.dispatch(l)
	}
}

// isVictim reports whether w is one of the warps the episode's signal
// was raised against. Victims is small (at most one SM's warp slots) and
// the check only runs while the signal is pending, so a linear scan is
// fine.
func (ep *Episode) isVictim(w *Warp) bool {
	for _, v := range ep.Victims {
		if v == w {
			return true
		}
	}
	return false
}

// coverOrphanLDSShares re-partitions each victim block's LDS save
// coverage so the union of the victims' shares spans the whole block
// even when some peers finished before the signal. Shares stay
// contiguous: leading Done warps fold into the first victim, later ones
// into the nearest victim before them. Blocks holding a parked
// (WarpPreempted) peer are left untouched — that peer restores its own
// share from its own episode.
func coverOrphanLDSShares(victims []*Warp) {
	victim := map[*Warp]bool{}
	blocks := map[*blockInfo]bool{}
	for _, w := range victims {
		victim[w] = true
		if w.Prog.LDSBytes > 0 {
			blocks[w.launch.blocks[w.BlockID]] = true
		}
	}
	for bi := range blocks {
		parked := false
		for _, w := range bi.warps {
			if w.State == WarpPreempted {
				parked = true
				break
			}
		}
		if parked {
			continue
		}
		n := len(bi.warps)
		share := bi.warps[0].Prog.LDSBytes / n
		// Reset every victim to its launch-time slice before extending.
		for wi, w := range bi.warps {
			if victim[w] {
				w.LDSShareLo, w.LDSShareHi = wi*share, (wi+1)*share
			}
		}
		first := -1
		for i, w := range bi.warps {
			if victim[w] {
				first = i
				break
			}
		}
		if first < 0 {
			continue
		}
		bi.warps[first].LDSShareLo = 0
		prev := first
		for i := first + 1; i < n; i++ {
			if victim[bi.warps[i]] {
				prev = i
			} else {
				bi.warps[prev].LDSShareHi = (i + 1) * share
			}
		}
	}
}

// Saved reports whether every victim has finished its preemption routine
// (the SM's resources are free).
func (ep *Episode) Saved() bool { return ep.savedCount == len(ep.Victims) }

// Finished reports whether every victim has also completed resuming.
func (ep *Episode) Finished() bool { return ep.resumedCount == len(ep.Victims) }

// PreemptLatencyCycles is the elapsed time from the signal until the SM
// was fully released (paper: "preemption latency").
func (ep *Episode) PreemptLatencyCycles() int64 { return ep.AllSavedCycle - ep.SignalCycle }

// ResumeCycles is the elapsed time from resume start until every warp
// regained its logical progress (paper: "resuming time", including
// re-execution).
func (ep *Episode) ResumeCycles() int64 { return ep.AllResumed - ep.ResumeStart }

// SavedBytes totals the context traffic written during preemption.
func (ep *Episode) SavedBytes() int64 {
	var total int64
	for _, w := range ep.Victims {
		if w.preemptRec != nil {
			total += w.preemptRec.SavedBytes
		}
	}
	return total
}

// resumeFits reports whether ep's victims physically fit back on their
// SM alongside whatever is resident now.
func resumeFits(ep *Episode) bool {
	var vr, sr, lds int
	seen := map[*blockInfo]bool{}
	for _, w := range ep.Victims {
		vr += w.Prog.AllocatedVRegs() * 4 * isa.WarpSize
		sr += w.Prog.AllocatedSRegs() * 4
		if w.Prog.LDSBytes > 0 {
			if bi := w.launch.blocks[w.BlockID]; !seen[bi] {
				seen[bi] = true
				live := false
				for _, p := range bi.warps {
					if p.State != WarpPreempted {
						live = true // block LDS already counted via a resident peer
						break
					}
				}
				if !live {
					lds += w.Prog.LDSBytes
				}
			}
		}
	}
	return ep.SM.usage().fits(&ep.SM.Dev.Cfg, len(ep.Victims), vr, sr, lds)
}

// CanResume reports whether Resume(ep) would start now: the contexts
// are saved, the SM is not mid-episode, and the victims physically fit
// alongside the SM's residents. A parked job whose SM has since filled
// with other tenants' leftovers (retired warps of partially-finished
// blocks hold their slots until the whole block completes) is not
// resumable until space frees; schedulers use this probe to pick a
// different victim instead of erroring.
func (d *Device) CanResume(ep *Episode) bool {
	if !ep.Saved() || ep.ResumeStart != 0 {
		return false
	}
	if cur := ep.SM.episode; cur != nil && cur != ep && !cur.Finished() && !cur.Parked() {
		return false
	}
	return resumeFits(ep)
}

// Resume re-materializes every preempted victim on its SM and starts the
// dedicated resume routines at the current cycle.
func (d *Device) Resume(ep *Episode) error {
	if !ep.Saved() {
		return fmt.Errorf("sim: resume before all contexts saved (%d/%d)", ep.savedCount, len(ep.Victims))
	}
	if ep.ResumeStart != 0 {
		return fmt.Errorf("sim: episode already resumed")
	}
	// A parked episode resumes onto its original SM; if a newer episode
	// took the SM over and is still draining, saving or resuming, the
	// victims cannot re-materialize yet.
	if cur := ep.SM.episode; cur != nil && cur != ep && !cur.Finished() && !cur.Parked() {
		return fmt.Errorf("sim: SM %d is busy with another episode; cannot resume", ep.SM.ID)
	}
	// The victims' slots must physically fit back alongside whatever now
	// runs on the SM — a newcomer tenant may still be resident.
	if !resumeFits(ep) {
		return fmt.Errorf("sim: SM %d lacks physical headroom to resume %d victims", ep.SM.ID, len(ep.Victims))
	}
	// Re-take ownership: while the victims resume, the SM must stay
	// barred to the launches this episode froze.
	ep.SM.episode = ep
	ep.SM.offline = true
	// Saved() reports completion when the last CtxExit issues, but the
	// context stores may still be in flight; the SM is only physically
	// free at AllSavedCycle. Resuming cannot begin earlier.
	start := max(d.now, ep.AllSavedCycle)
	ep.ResumeStart = start
	if d.rec != nil {
		d.rec.Emit(trace.Event{Name: "resume-start", Cat: trace.CatEpisode, Ph: trace.PhInstant,
			Cycle: start, SM: ep.SM.ID, Warp: -1, Tech: ep.tech})
	}
	// Fault injection on the swapped-out contexts happens at the last
	// moment before they are consumed: corruption models device-memory
	// bit flips accumulated while the warp was preempted, and the
	// save-time checksum is the detector. A mismatch aborts the resume
	// with a structured IntegrityError — the device must then be
	// discarded and the episode degraded to a safe technique; the
	// corrupted context is never silently restored.
	if d.faults != nil {
		for _, w := range ep.Victims {
			if mask, ok := d.faults.CorruptContext(w.ID); ok {
				corruptContext(w.ctx, mask)
				ep.Faults.CorruptedContexts++
			}
		}
		for _, w := range ep.Victims {
			if rec := w.preemptRec; rec.HasChecksum && w.ctx.Checksum() != rec.SavedChecksum {
				ep.Faults.ChecksumMismatches++
				return &IntegrityError{WarpID: w.ID, Stage: "checksum",
					Detail: "saved context does not match its save-time checksum"}
			}
		}
	}
	for _, w := range ep.Victims {
		w.preemptRec.ResumeStart = start
		instrs, override := ep.rt.ResumeRoutine(w)
		if override != nil {
			w.ctx = override
		}
		w.poison()
		w.State = WarpReady
		w.Mode = ModeKernel // enterRoutine overrides; kept for clarity
		w.enterRoutine(ModeResumeRoutine, instrs)
		w.ReadyAt = start
		w.regReady.reset()
		w.lastStoreDone = 0
		d.enqueueReady(w)
	}
	return nil
}
