package sim

import (
	"errors"
	"math"
	"testing"

	"ctxback/internal/isa"
)

// checkQueueInvariants walks every ready structure and asserts the
// properties Step's O(1) pop relies on:
//   - the stalled list is strictly sorted by (lastIssued, qseq) and its
//     members' candTime never exceeds issueFree (port-gated);
//   - the future heap satisfies the min-heap property under its
//     (candTime, lastIssued, qseq) key, members are hazard-gated
//     (candTime > issueFree), and intrusive indices are consistent;
//   - each SM's cached candidate key matches a fresh derivation;
//   - the device heap satisfies the min-heap property under the cached
//     keys, and its intrusive indices are consistent.
func checkQueueInvariants(t *testing.T, d *Device) {
	t.Helper()
	for _, sm := range d.SMs {
		var prev *Warp
		for w := sm.stalledHead; w != nil; w = w.qnext {
			if w.qheap != qheapStalled {
				t.Fatalf("SM %d: stalled member warp %d tagged %d", sm.ID, w.ID, w.qheap)
			}
			if w.candTime > sm.issueFree {
				t.Fatalf("SM %d: stalled warp %d has candTime %d > issueFree %d",
					sm.ID, w.ID, w.candTime, sm.issueFree)
			}
			if w.qprev != prev {
				t.Fatalf("SM %d: stalled list back-link broken at warp %d", sm.ID, w.ID)
			}
			if prev != nil && !stalledBefore(prev, w) {
				t.Fatalf("SM %d: stalled list out of order: (%d,%d) before (%d,%d)",
					sm.ID, prev.lastIssued, prev.qseq, w.lastIssued, w.qseq)
			}
			prev = w
		}
		if sm.stalledTail != prev {
			t.Fatalf("SM %d: stalled tail %v != last node %v", sm.ID, sm.stalledTail, prev)
		}
		for i, w := range sm.future.ws {
			if w.qheap != qheapFuture || w.qidx != i {
				t.Fatalf("SM %d: future heap intrusive index broken at %d (warp %d: qheap=%d qidx=%d)",
					sm.ID, i, w.ID, w.qheap, w.qidx)
			}
			if w.candTime <= sm.issueFree {
				t.Fatalf("SM %d: future warp %d has candTime %d <= issueFree %d",
					sm.ID, w.ID, w.candTime, sm.issueFree)
			}
			if p := (i - 1) / 2; i > 0 && sm.future.less(w, sm.future.ws[p]) {
				t.Fatalf("SM %d: future heap property violated at index %d", sm.ID, i)
			}
		}
		wantW, wantT, wantLast := sm.candW, sm.candT, sm.candLast
		sm.refreshCand()
		if sm.candW != wantW || sm.candT != wantT || sm.candLast != wantLast {
			t.Fatalf("SM %d: cached candidate key stale: had (%v,%d,%d), derived (%v,%d,%d)",
				sm.ID, wantW, wantT, wantLast, sm.candW, sm.candT, sm.candLast)
		}
	}
	if len(d.rq.sms) != len(d.SMs) {
		t.Fatalf("device heap holds %d SMs, want %d (fixed membership)", len(d.rq.sms), len(d.SMs))
	}
	for i, sm := range d.rq.sms {
		if sm.rqIdx != i {
			t.Fatalf("device heap intrusive index broken: SM %d at %d has rqIdx %d", sm.ID, i, sm.rqIdx)
		}
		if p := (i - 1) / 2; i > 0 && rqLess(sm, d.rq.sms[p]) {
			t.Fatalf("device heap property violated at index %d", i)
		}
	}
}

func readyqTestDevice(t *testing.T) *Device {
	t.Helper()
	prog, err := isa.Assemble(`
.kernel rqtest
.vregs 4
.sregs 8
.lds 256
  v_laneid v0
  v_shl v1, v0, 2 !noovf
loop:
  v_add v2, v2, s0
  v_mul v3, v2, 5
  v_lstore v1, v3, 0
  v_lload v3, v1, 0
  s_sub s0, s0, 1
  s_barrier
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_add v1, v1, s1
  v_gstore v1, v2, 0
  s_endpgm
`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Launch(LaunchSpec{
		Prog: prog, NumBlocks: 4, WarpsPerBlock: 2,
		Setup: func(w *Warp) {
			w.SRegs[0] = 9
			w.SRegs[1] = uint64(4096 + w.ID*isa.WarpSize*4)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestReadyQueueInvariants steps a barrier-heavy multi-block kernel to
// completion and re-checks every queue invariant after each instruction.
func TestReadyQueueInvariants(t *testing.T) {
	d := readyqTestDevice(t)
	checkQueueInvariants(t, d)
	for steps := 0; ; steps++ {
		progressed, err := d.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
		checkQueueInvariants(t, d)
		if steps > 1_000_000 {
			t.Fatal("kernel did not finish")
		}
	}
	for _, l := range d.launches {
		if !l.Done() {
			t.Fatal("device stalled before the launch finished")
		}
	}
}

// TestNextIssueTime pins the O(1) queue-head peek to what Step actually
// does next, on both schedulers.
func TestNextIssueTime(t *testing.T) {
	for _, scan := range []bool{false, true} {
		d := readyqTestDevice(t)
		if scan {
			d.UseReferenceScheduler()
		}
		for {
			next, ok := d.NextIssueTime()
			progressed, err := d.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !progressed {
				if ok {
					t.Fatalf("scan=%v: NextIssueTime reported %d ready but Step made no progress", scan, next)
				}
				break
			}
			if !ok {
				t.Fatalf("scan=%v: Step progressed but NextIssueTime reported nothing ready", scan)
			}
			if d.Now() < next {
				t.Fatalf("scan=%v: issued at cycle %d, before predicted next issue %d", scan, d.Now(), next)
			}
		}
	}
}

// TestRunUntilBudgetError pins satellite #1: the budget check fires
// BEFORE the overshooting step commits — the clock must still read the
// pre-step cycle, and the error must carry now/next/limit.
func TestRunUntilBudgetError(t *testing.T) {
	for _, scan := range []bool{false, true} {
		d := readyqTestDevice(t)
		if scan {
			d.UseReferenceScheduler()
		}
		const budget = 25
		err := d.RunUntil(nil, budget)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("scan=%v: want *BudgetError, got %v", scan, err)
		}
		if be.Limit != budget {
			t.Fatalf("scan=%v: Limit=%d want %d", scan, be.Limit, budget)
		}
		if be.Next <= be.Limit {
			t.Fatalf("scan=%v: Next=%d should lie past Limit=%d", scan, be.Next, be.Limit)
		}
		if d.Now() != be.Now {
			t.Fatalf("scan=%v: clock moved after budget rejection: now=%d, error says %d", scan, d.Now(), be.Now)
		}
		if d.Now() > budget {
			t.Fatalf("scan=%v: clock overshot the budget: now=%d limit=%d", scan, d.Now(), budget)
		}
		// The rejected step must still be issuable afterwards: the check
		// committed nothing.
		progressed, err := d.Step()
		if err != nil || !progressed {
			t.Fatalf("scan=%v: device wedged after budget rejection: progressed=%v err=%v", scan, progressed, err)
		}
		if d.Now() != be.Next {
			t.Fatalf("scan=%v: post-rejection issue at %d, error predicted %d", scan, d.Now(), be.Next)
		}
	}
}

// TestStepUnlimitedBudget guards the Step wrapper's math.MaxInt64 limit.
func TestStepUnlimitedBudget(t *testing.T) {
	d := readyqTestDevice(t)
	if err := d.RunUntil(nil, math.MaxInt64-d.Now()); err != nil {
		t.Fatal(err)
	}
	for _, l := range d.launches {
		if !l.Done() {
			t.Fatal("launch did not finish under an unlimited budget")
		}
	}
}
