package sim

import (
	"errors"
	"testing"

	"ctxback/internal/faults"
)

// episode runs one full preempt/resume round trip of the sum kernel on a
// device prepared by the caller, returning the first error surfaced.
func runEpisode(t *testing.T, d *Device, loops, warps int) (*Episode, error) {
	t.Helper()
	launchSum(t, d, loops, warps)
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		return nil, err
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		return nil, err
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		return ep, err
	}
	if err := d.Resume(ep); err != nil {
		return ep, err
	}
	if err := d.Run(50_000_000); err != nil {
		return ep, err
	}
	return ep, nil
}

func inject(t *testing.T, d *Device, cfg faults.Config) {
	t.Helper()
	if err := d.InjectFaults(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDeterministicAndSensitive(t *testing.T) {
	ctx := NewSavedContext()
	ctx.VSlots[3] = []uint32{1, 2, 3, 4}
	ctx.VSlots[0] = []uint32{9}
	ctx.SSlots[1] = 0xdead
	ctx.Specs[0] = ^uint64(0)
	ctx.LDS = []uint32{5, 6}
	ctx.PC = 17
	ctx.DynCount = 99
	ctx.Barriers = 2

	base := ctx.Checksum()
	if base != ctx.Checksum() {
		t.Fatal("checksum not deterministic")
	}
	ctx.VSlots[3][2] ^= 1
	if ctx.Checksum() == base {
		t.Error("vector-slot bit flip not reflected in checksum")
	}
	ctx.VSlots[3][2] ^= 1
	if ctx.Checksum() != base {
		t.Fatal("checksum did not revert with the flip")
	}
	ctx.PC++
	if ctx.Checksum() == base {
		t.Error("PC change not reflected in checksum")
	}
	ctx.PC--
	ctx.LDS[0] ^= 1 << 31
	if ctx.Checksum() == base {
		t.Error("LDS bit flip not reflected in checksum")
	}
}

func TestZeroRateInjectorChangesNothing(t *testing.T) {
	const loops, warps = 300, 2
	plain := mustNewDevice(TestConfig())
	if _, err := runEpisode(t, plain, loops, warps); err != nil {
		t.Fatal(err)
	}
	faulty := mustNewDevice(TestConfig())
	inject(t, faulty, faults.Config{Seed: 1}) // all rates zero, checksums on
	if _, err := runEpisode(t, faulty, loops, warps); err != nil {
		t.Fatal(err)
	}
	if plain.Now() != faulty.Now() {
		t.Errorf("zero-rate injector perturbed timing: %d vs %d cycles", plain.Now(), faulty.Now())
	}
	for i := range plain.Mem {
		if plain.Mem[i] != faulty.Mem[i] {
			t.Fatalf("zero-rate injector perturbed mem[%d]: %d vs %d", i, plain.Mem[i], faulty.Mem[i])
		}
	}
	if n := faulty.FaultStats().Total(); n != 0 {
		t.Errorf("zero-rate injector reported %d faults", n)
	}
}

func TestCorruptionDetectedByChecksum(t *testing.T) {
	d := mustNewDevice(TestConfig())
	inject(t, d, faults.Config{Seed: 7, CorruptRate: 1})
	ep, err := runEpisode(t, d, 300, 2)
	var integ *IntegrityError
	if !errors.As(err, &integ) {
		t.Fatalf("corrupted context resumed without IntegrityError (err = %v)", err)
	}
	if integ.Stage != "checksum" {
		t.Errorf("detection stage = %q, want checksum", integ.Stage)
	}
	if ep.Faults.CorruptedContexts == 0 {
		t.Error("no corruption counted on the episode")
	}
	if ep.Faults.ChecksumMismatches == 0 {
		t.Error("no checksum mismatch counted on the episode")
	}
}

func TestCorruptionCaughtByOracleWithoutChecksum(t *testing.T) {
	d := mustNewDevice(TestConfig())
	inject(t, d, faults.Config{Seed: 7, CorruptRate: 1, DisableChecksum: true})
	d.SetResumeChecker(func(w *Warp) error {
		snap := w.Snapshot()
		if snap == nil {
			return &IntegrityError{WarpID: w.ID, Stage: "oracle", Detail: "no snapshot"}
		}
		for i := 0; i < w.Prog.NumVRegs; i++ {
			for l := range w.VRegs[i] {
				if w.VRegs[i][l] != snap.VRegs[i][l] {
					return &IntegrityError{WarpID: w.ID, Stage: "oracle", Detail: "vreg diverged"}
				}
			}
		}
		return nil
	})
	_, err := runEpisode(t, d, 300, 2)
	var integ *IntegrityError
	if !errors.As(err, &integ) {
		t.Fatalf("corruption with checksums off escaped the oracle (err = %v)", err)
	}
	if integ.Stage != "oracle" {
		t.Errorf("detection stage = %q, want oracle", integ.Stage)
	}
}

func TestResumeCheckerSeesRestoredState(t *testing.T) {
	const loops, warps = 300, 2
	d := mustNewDevice(TestConfig())
	checked := 0
	d.SetResumeChecker(func(w *Warp) error {
		snap := w.Snapshot()
		if snap == nil {
			t.Fatalf("warp %d resumed without a snapshot", w.ID)
		}
		if w.PC != snap.PC || w.DynCount != snap.DynCount {
			t.Errorf("warp %d resumed at pc %d/dyn %d, snapshot %d/%d",
				w.ID, w.PC, w.DynCount, snap.PC, snap.DynCount)
		}
		// The naive technique restores every named register exactly (the
		// alignment-padding registers stay poisoned and are excluded).
		for i := 0; i < w.Prog.NumVRegs; i++ {
			for l := range w.VRegs[i] {
				if w.VRegs[i][l] != snap.VRegs[i][l] {
					t.Errorf("warp %d v%d[%d] = %#x, snapshot %#x", w.ID, i, l, w.VRegs[i][l], snap.VRegs[i][l])
				}
			}
		}
		for i := 0; i < w.Prog.NumSRegs; i++ {
			if w.SRegs[i] != snap.SRegs[i] {
				t.Errorf("warp %d s%d = %#x, snapshot %#x", w.ID, i, w.SRegs[i], snap.SRegs[i])
			}
		}
		if w.Exec != snap.Exec {
			t.Errorf("warp %d EXEC = %#x, snapshot %#x", w.ID, w.Exec, snap.Exec)
		}
		checked++
		return nil
	})
	ep, err := runEpisode(t, d, loops, warps)
	if err != nil {
		t.Fatal(err)
	}
	if checked != len(ep.Victims) {
		t.Errorf("oracle ran for %d warps, want %d", checked, len(ep.Victims))
	}
	checkSum(t, d, loops, warps)
}

func TestTransientTransferFaultsRetryAndRecover(t *testing.T) {
	const loops, warps = 300, 2
	d := mustNewDevice(TestConfig())
	inject(t, d, faults.Config{Seed: 3, CtxSaveFailRate: 0.3, CtxRestoreFailRate: 0.3,
		MaxRetries: 12, BackoffCycles: 4})
	ep, err := runEpisode(t, d, loops, warps)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Faults.TransientRetries == 0 {
		t.Error("no transient retries recorded at 30% fault rate")
	}
	st := d.FaultStats()
	if st.TransientSaveFaults == 0 && st.TransientRestoreFaults == 0 {
		t.Error("injector recorded no transfer faults")
	}
	checkSum(t, d, loops, warps)
}

func TestPermanentTransferFaultEscalates(t *testing.T) {
	d := mustNewDevice(TestConfig())
	inject(t, d, faults.Config{Seed: 5, CtxSaveFailRate: 1, PermanentFrac: 1, MaxRetries: 3})
	_, err := runEpisode(t, d, 200, 2)
	var xfer *TransferFaultError
	if !errors.As(err, &xfer) {
		t.Fatalf("permanent fault did not escalate (err = %v)", err)
	}
	if !xfer.Permanent || !xfer.Save {
		t.Errorf("escalated fault = %+v, want permanent save fault", xfer)
	}
}

func TestExhaustedRetriesEscalate(t *testing.T) {
	d := mustNewDevice(TestConfig())
	inject(t, d, faults.Config{Seed: 5, CtxSaveFailRate: 1, MaxRetries: 2, BackoffCycles: 1})
	_, err := runEpisode(t, d, 200, 2)
	var xfer *TransferFaultError
	if !errors.As(err, &xfer) {
		t.Fatalf("exhausted retries did not escalate (err = %v)", err)
	}
	if xfer.Permanent {
		t.Error("transient escalation reported as permanent")
	}
	if xfer.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (first issue + MaxRetries)", xfer.Attempts)
	}
}

func TestSignalDropAndRedelivery(t *testing.T) {
	d := mustNewDevice(TestConfig())
	inject(t, d, faults.Config{Seed: 11, SignalDropRate: 0.9})
	launchSum(t, d, 300, 2)
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	dropped, delivered := 0, false
	var ep *Episode
	for attempt := 0; attempt < 64; attempt++ {
		var err error
		ep, err = d.Preempt(0, naiveRuntime{})
		if err == nil {
			delivered = true
			break
		}
		if !errors.Is(err, ErrSignalLost) {
			t.Fatal(err)
		}
		dropped++
	}
	if !delivered {
		t.Fatal("signal never delivered in 64 attempts at 90% drop rate")
	}
	if dropped == 0 {
		t.Error("no drops observed at 90% drop rate (seed-dependent; pick another seed)")
	}
	if d.FaultStats().DroppedSignals != dropped {
		t.Errorf("stats count %d drops, observed %d", d.FaultStats().DroppedSignals, dropped)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	checkSum(t, d, 300, 2)
}

func TestDuplicateSignalAbsorbed(t *testing.T) {
	const loops, warps = 300, 2
	d := mustNewDevice(TestConfig())
	inject(t, d, faults.Config{Seed: 2, SignalDupRate: 1})
	ep, err := runEpisode(t, d, loops, warps)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Faults.AbsorbedDupSignals == 0 {
		t.Error("no duplicate signals absorbed at 100% dup rate")
	}
	checkSum(t, d, loops, warps)
}

func TestStallsSlowTheRun(t *testing.T) {
	const loops, warps = 300, 2
	plain := mustNewDevice(TestConfig())
	if _, err := runEpisode(t, plain, loops, warps); err != nil {
		t.Fatal(err)
	}
	stalled := mustNewDevice(TestConfig())
	inject(t, stalled, faults.Config{Seed: 9, StallRate: 0.5, StallCycles: 100})
	if _, err := runEpisode(t, stalled, loops, warps); err != nil {
		t.Fatal(err)
	}
	if stalled.Now() <= plain.Now() {
		t.Errorf("stall injection did not slow the run: %d vs %d cycles", stalled.Now(), plain.Now())
	}
	if stalled.FaultStats().Stalls == 0 {
		t.Error("no stalls counted")
	}
	checkSum(t, stalled, loops, warps)
}

func TestInjectFaultsRejectsBadConfig(t *testing.T) {
	d := mustNewDevice(TestConfig())
	if err := d.InjectFaults(faults.Config{Seed: 1, CorruptRate: 1.5}); err == nil {
		t.Error("rate > 1 must be rejected")
	}
	if err := d.InjectFaults(faults.Config{Seed: 1, MaxRetries: -1}); err == nil {
		t.Error("negative retries must be rejected")
	}
}
