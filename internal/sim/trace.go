package sim

import (
	"fmt"
	"strings"
)

// TraceEvent records one executed instruction (any mode).
type TraceEvent struct {
	Cycle  int64
	SM     int
	WarpID int
	Mode   ExecMode
	PC     int // kernel PC (routine events keep the underlying kernel PC)
	Text   string
}

// Tracer collects execution events into a bounded ring buffer. Attach
// with Device.EnableTrace; zero-cost when disabled.
type Tracer struct {
	events []TraceEvent
	next   int
	filled bool
	// Filter restricts recording (nil records everything).
	Filter func(*Warp) bool
}

// EnableTrace attaches a ring buffer of the given capacity and returns
// the tracer.
func (d *Device) EnableTrace(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	d.tracer = &Tracer{events: make([]TraceEvent, capacity)}
	return d.tracer
}

// DisableTrace detaches the tracer.
func (d *Device) DisableTrace() { d.tracer = nil }

func (tr *Tracer) record(ev TraceEvent) {
	tr.events[tr.next] = ev
	tr.next++
	if tr.next == len(tr.events) {
		tr.next = 0
		tr.filled = true
	}
}

// Events returns the recorded events in chronological order.
func (tr *Tracer) Events() []TraceEvent {
	if !tr.filled {
		return append([]TraceEvent(nil), tr.events[:tr.next]...)
	}
	out := make([]TraceEvent, 0, len(tr.events))
	out = append(out, tr.events[tr.next:]...)
	out = append(out, tr.events[:tr.next]...)
	return out
}

// Render formats the trace as an aligned listing.
func (tr *Tracer) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %3s %5s %6s %5s  %s\n", "cycle", "sm", "warp", "mode", "pc", "instruction")
	for _, ev := range tr.Events() {
		fmt.Fprintf(&b, "%10d %3d %5d %6s %5d  %s\n",
			ev.Cycle, ev.SM, ev.WarpID, modeName(ev.Mode), ev.PC, ev.Text)
	}
	return b.String()
}

func modeName(m ExecMode) string {
	switch m {
	case ModeKernel:
		return "kern"
	case ModePreemptRoutine:
		return "save"
	case ModeResumeRoutine:
		return "rest"
	case ModeHook:
		return "hook"
	}
	return "?"
}
