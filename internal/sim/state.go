package sim

import (
	"fmt"

	"ctxback/internal/isa"
	"ctxback/internal/trace"
)

// Whole-device state capture. ExportState deep-copies everything a
// Device owns between steps into a plain-data tree; ImportState rebuilds
// an equivalent device from it. The pair is the foundation of
// internal/snapshot's checkpoint/restore: a restored device continues
// cycle-exactly where the exported one stopped, because the ready
// queue's (candTime, lastIssued, SM id, qseq) order is a strict total
// order on serialized per-warp fields — re-enqueueing the restored
// warps in any order reproduces the exact pop sequence.
//
// Not captured (reattach after import): the fault injector, the resume
// checker, recorders/tracers, and the runtime (passed to ImportState).
// Launch Setup closures are not serializable; they already ran at
// launch time and dispatch never re-invokes them, so the field imports
// as nil.

// DeviceState is the plain-data image of a device. All slices and maps
// are deep copies: mutating the device after ExportState never changes
// the state, and vice versa.
type DeviceState struct {
	Cfg     Config
	Shards  int // epoch-engine width at export (restore target must match)
	Now     int64
	MemFree int64
	CtxFree int64
	Stats   DeviceStats
	Mem     []uint32

	// Progs holds the canonical encoding of every distinct program
	// referenced by the launches, deduplicated by identity in
	// first-launch order. ImportState resolves them positionally against
	// caller-provided live programs (two jobs may run byte-identical
	// kernels at different slabs via Setup-passed arguments, so byte
	// matching alone cannot recover launch→program identity).
	Progs [][]byte

	Launches []LaunchState
	SMs      []SMState
	Episodes []EpisodeState
}

// WarpRef names a warp as (launch index, flat warp id within launch).
type WarpRef struct {
	Launch int
	Warp   int
}

// SMState is one SM's serialized scheduler-visible state. The ready
// queue is not serialized: it is rebuilt from the warps at import.
type SMState struct {
	IssueFree int64
	LDSFree   int64
	SeqGen    int64
	Offline   bool
	Episode   int // index into DeviceState.Episodes, -1 none
	// Resident lists the warps in sm.Warps order — the order is the
	// reference scheduler's scan position and must survive the trip.
	Resident []WarpRef
}

// LaunchState is one grid's serialized state.
type LaunchState struct {
	Prog          int // index into DeviceState.Progs
	NumBlocks     int
	WarpsPerBlock int
	SMFilter      []int
	NextBlock     int
	DoneWarps     int
	Blocks        []BlockState
	// Warps is indexed by flat warp id; block/lane derive from position.
	Warps []WarpSlotState
}

// BlockState is one thread block's serialized state. A block is placed
// iff its index is below the launch's NextBlock (dispatch places
// strictly in order); SM is -1 while unplaced.
type BlockState struct {
	LDS  []uint32
	SM   int
	Done int
}

// WarpSlotState serializes every field of a Warp that execution depends
// on, including the scheduler tie-breaks (LastIssued, QSeq) that make
// restored issue order exact.
type WarpSlotState struct {
	SM         int // -1 while the block is unplaced
	LDSShareLo int
	LDSShareHi int

	PC    int
	VRegs []uint32 // [AllocatedVRegs*WarpSize] flattened
	SRegs []uint64
	Exec  uint64
	VCC   uint64
	SCC   bool

	State        WarpState
	ReadyAt      int64
	RegReadyV    []int64
	RegReadyS    []int64
	RegReadySpec [numSpecRegs]int64
	DynCount     int64
	BarrierCount int
	BarrierWait  bool

	Mode         ExecMode
	Routine      []isa.Instruction
	RoutinePC    int
	SavedMode    ExecMode
	HookDepth    int
	HookSavedCtx *SavedContext
	SkipHookOnce bool
	Ctx          *SavedContext
	Rec          *PreemptRecord
	Episode      int // index into DeviceState.Episodes, -1 none
	Snapshot     *ArchSnapshot

	CtxRetries    int
	LastStoreDone int64
	LastIssued    int64
	QSeq          int64
}

// EpisodeState serializes one preemption episode, including ones
// captured mid-flight (pending signals, parked victims, mid-resume).
type EpisodeState struct {
	SM      int
	Pending bool
	// Frozen lists frozen launch indices in ascending order (the live
	// set is a map; ExportState canonicalizes by launch order).
	Frozen  []int
	Victims []WarpRef

	SignalCycle   int64
	AllSavedCycle int64
	ResumeStart   int64
	AllResumed    int64

	Faults EpisodeFaults

	EnteredCount int
	SavedCount   int
	ResumedCount int
	EnterLast    int64
	RestoreLast  int64

	Tech  string
	Names trace.PhaseNames
}

// StateIndex maps a DeviceState's launch and episode indices to the
// live objects of the device it was exported from (ExportState) or
// imported into (ImportState). Callers use it to re-find their Launch
// and Episode handles across a checkpoint/restore trip.
type StateIndex struct {
	Launches []*Launch
	Episodes []*Episode
}

// copySavedContext deep-copies a context buffer. Map iteration order is
// irrelevant here — this is a copy, not an encoding; the snapshot codec
// serializes slots in sorted-key order.
func copySavedContext(c *SavedContext) *SavedContext {
	if c == nil {
		return nil
	}
	n := &SavedContext{
		VSlots:   make(map[int32][]uint32, len(c.VSlots)),
		SSlots:   make(map[int32]uint64, len(c.SSlots)),
		Specs:    make(map[int32]uint64, len(c.Specs)),
		LDS:      append([]uint32(nil), c.LDS...),
		PC:       c.PC,
		DynCount: c.DynCount,
		Barriers: c.Barriers,
	}
	for k, v := range c.VSlots {
		n.VSlots[k] = append([]uint32(nil), v...)
	}
	for k, v := range c.SSlots {
		n.SSlots[k] = v
	}
	for k, v := range c.Specs {
		n.Specs[k] = v
	}
	return n
}

// copyArch deep-copies a signal-time architectural snapshot.
func copyArch(s *ArchSnapshot) *ArchSnapshot {
	if s == nil {
		return nil
	}
	n := &ArchSnapshot{
		PC:       s.PC,
		DynCount: s.DynCount,
		Exec:     s.Exec,
		VCC:      s.VCC,
		SCC:      s.SCC,
		SRegs:    append([]uint64(nil), s.SRegs...),
		LDSShare: append([]uint32(nil), s.LDSShare...),
		VRegs:    make([][]uint32, len(s.VRegs)),
	}
	for i, vr := range s.VRegs {
		n.VRegs[i] = append([]uint32(nil), vr...)
	}
	return n
}

// ExportState captures the device's complete execution state between
// steps. The returned index maps the state's launch/episode indices to
// the live objects. Safe at any point outside Step — including with
// episodes pending, parked, or mid-resume, and with warps inside their
// preemption/resume routines or hooks.
func (d *Device) ExportState() (*DeviceState, *StateIndex) {
	st := &DeviceState{
		Cfg:     d.Cfg,
		Shards:  d.shards,
		Now:     d.now,
		MemFree: d.memFree,
		CtxFree: d.ctxFree,
		Stats:   d.Stats,
		Mem:     append([]uint32(nil), d.Mem...),
	}
	idx := &StateIndex{Launches: append([]*Launch(nil), d.launches...)}

	launchIdx := make(map[*Launch]int, len(d.launches))
	progIdx := make(map[*isa.Program]int)
	for li, l := range d.launches {
		launchIdx[l] = li
		if _, ok := progIdx[l.Spec.Prog]; !ok {
			progIdx[l.Spec.Prog] = len(st.Progs)
			st.Progs = append(st.Progs, isa.EncodeProgram(l.Spec.Prog))
		}
	}

	// Collect episodes in deterministic order: SM-attached first (by SM
	// id), then any parked/finished episodes still referenced by warps
	// (launch order, warp order). The map is only a dedup lookup.
	epIdx := make(map[*Episode]int)
	addEp := func(ep *Episode) {
		if ep == nil {
			return
		}
		if _, ok := epIdx[ep]; !ok {
			epIdx[ep] = len(idx.Episodes)
			idx.Episodes = append(idx.Episodes, ep)
		}
	}
	for _, sm := range d.SMs {
		addEp(sm.episode)
	}
	for _, l := range d.launches {
		for _, w := range l.Warps {
			addEp(w.episode)
		}
	}

	epOf := func(ep *Episode) int {
		if ep == nil {
			return -1
		}
		return epIdx[ep]
	}

	for _, l := range d.launches {
		ls := LaunchState{
			Prog:          progIdx[l.Spec.Prog],
			NumBlocks:     l.Spec.NumBlocks,
			WarpsPerBlock: l.Spec.WarpsPerBlock,
			SMFilter:      append([]int(nil), l.Spec.SMFilter...),
			NextBlock:     l.nextBlock,
			DoneWarps:     l.doneWarps,
		}
		for _, bi := range l.blocks {
			bs := BlockState{
				LDS:  append([]uint32(nil), bi.lds.Data...),
				SM:   -1,
				Done: bi.done,
			}
			if bi.placed {
				bs.SM = bi.sm.ID
			}
			ls.Blocks = append(ls.Blocks, bs)
		}
		for _, w := range l.Warps {
			ws := WarpSlotState{
				SM:           -1,
				LDSShareLo:   w.LDSShareLo,
				LDSShareHi:   w.LDSShareHi,
				PC:           w.PC,
				SRegs:        append([]uint64(nil), w.SRegs...),
				Exec:         w.Exec,
				VCC:          w.VCC,
				SCC:          w.SCC,
				State:        w.State,
				ReadyAt:      w.ReadyAt,
				RegReadyV:    append([]int64(nil), w.regReady.v...),
				RegReadyS:    append([]int64(nil), w.regReady.s...),
				RegReadySpec: w.regReady.spec,
				DynCount:     w.DynCount,
				BarrierCount: w.BarrierCount,
				BarrierWait:  w.barrierWait,
				Mode:         w.Mode,
				Routine:      append([]isa.Instruction(nil), w.routine...),
				RoutinePC:    w.routinePC,
				SavedMode:    w.savedMode,
				HookDepth:    w.hookDepth,
				HookSavedCtx: copySavedContext(w.hookSavedCtx),
				SkipHookOnce: w.skipHookOnce,
				Ctx:          copySavedContext(w.ctx),
				Episode:      epOf(w.episode),
				Snapshot:     copyArch(w.snapshot),

				CtxRetries:    w.ctxRetries,
				LastStoreDone: w.lastStoreDone,
				LastIssued:    w.lastIssued,
				QSeq:          w.qseq,
			}
			if w.SM != nil {
				ws.SM = w.SM.ID
			}
			ws.VRegs = make([]uint32, len(w.VRegs)*isa.WarpSize)
			for i, vr := range w.VRegs {
				copy(ws.VRegs[i*isa.WarpSize:(i+1)*isa.WarpSize], vr)
			}
			if w.preemptRec != nil {
				rec := *w.preemptRec
				ws.Rec = &rec
			}
			ls.Warps = append(ls.Warps, ws)
		}
		st.Launches = append(st.Launches, ls)
	}

	for _, sm := range d.SMs {
		ss := SMState{
			IssueFree: sm.issueFree,
			LDSFree:   sm.ldsFree,
			SeqGen:    sm.seqGen,
			Offline:   sm.offline,
			Episode:   epOf(sm.episode),
		}
		for _, w := range sm.Warps {
			ss.Resident = append(ss.Resident, WarpRef{Launch: launchIdx[w.launch], Warp: w.ID})
		}
		st.SMs = append(st.SMs, ss)
	}

	for _, ep := range idx.Episodes {
		es := EpisodeState{
			SM:            ep.SM.ID,
			Pending:       ep.pending,
			SignalCycle:   ep.SignalCycle,
			AllSavedCycle: ep.AllSavedCycle,
			ResumeStart:   ep.ResumeStart,
			AllResumed:    ep.AllResumed,
			Faults:        ep.Faults,
			EnteredCount:  ep.enteredCount,
			SavedCount:    ep.savedCount,
			ResumedCount:  ep.resumedCount,
			EnterLast:     ep.enterLast,
			RestoreLast:   ep.restoreLast,
			Tech:          ep.tech,
			Names:         ep.names,
		}
		// Canonicalize the frozen set as ascending launch indices.
		for li, l := range d.launches {
			if ep.frozen[l] {
				es.Frozen = append(es.Frozen, li)
			}
		}
		for _, v := range ep.Victims {
			es.Victims = append(es.Victims, WarpRef{Launch: launchIdx[v.launch], Warp: v.ID})
		}
		st.Episodes = append(st.Episodes, es)
	}
	return st, idx
}

// ImportState rebuilds st onto d, which must be a freshly-constructed
// device with the same Config and shard width (a warm-pool shell).
// progs resolves st.Progs positionally; each must byte-match its stored
// encoding. rt is the technique runtime reattached to the device and
// its in-flight episodes (nil only if st has no episodes).
//
// On success the device continues cycle-exactly where the exported one
// stopped. On error the device must be discarded — import may have
// partially mutated it.
func (d *Device) ImportState(st *DeviceState, rt Runtime, progs []*isa.Program) (*StateIndex, error) {
	if d.now != 0 || len(d.launches) != 0 || d.Stats != (DeviceStats{}) {
		return nil, fmt.Errorf("sim: ImportState target must be a fresh device")
	}
	if d.Cfg != st.Cfg {
		return nil, fmt.Errorf("sim: snapshot config mismatch: snapshot was taken on {SMs:%d warps/SM:%d mem:%d}, target is {SMs:%d warps/SM:%d mem:%d}",
			st.Cfg.NumSMs, st.Cfg.MaxWarpsPerSM, st.Cfg.GlobalMemBytes,
			d.Cfg.NumSMs, d.Cfg.MaxWarpsPerSM, d.Cfg.GlobalMemBytes)
	}
	if d.shards != st.Shards {
		return nil, fmt.Errorf("sim: snapshot shard width mismatch: snapshot %d, target %d (call SetShards(%d) before import)",
			st.Shards, d.shards, st.Shards)
	}
	if len(progs) != len(st.Progs) {
		return nil, fmt.Errorf("sim: ImportState needs %d programs, got %d", len(st.Progs), len(progs))
	}
	for i, p := range progs {
		if p == nil {
			return nil, fmt.Errorf("sim: ImportState program %d is nil", i)
		}
		if enc := isa.EncodeProgram(p); string(enc) != string(st.Progs[i]) {
			return nil, fmt.Errorf("sim: ImportState program %d (%q) does not match the snapshot's program fingerprint", i, p.Name)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sim: snapshot state invalid: %w", err)
	}
	if rt == nil && len(st.Episodes) > 0 {
		return nil, fmt.Errorf("sim: ImportState needs a runtime to reattach %d in-flight episodes", len(st.Episodes))
	}

	idx := &StateIndex{}
	copy(d.Mem, st.Mem)
	d.now = st.Now
	d.memFree = st.MemFree
	d.ctxFree = st.CtxFree
	d.Stats = st.Stats

	for li := range st.Launches {
		ls := &st.Launches[li]
		prog := progs[ls.Prog]
		occ, err := d.ComputeOccupancy(prog, ls.WarpsPerBlock)
		if err != nil {
			return nil, fmt.Errorf("sim: launch %d: %w", li, err)
		}
		l := &Launch{
			Spec: LaunchSpec{
				Prog:          prog,
				NumBlocks:     ls.NumBlocks,
				WarpsPerBlock: ls.WarpsPerBlock,
				SMFilter:      append([]int(nil), ls.SMFilter...),
			},
			Dev:       d,
			Occ:       occ,
			nextBlock: ls.NextBlock,
			doneWarps: ls.DoneWarps,
			Warps:     make([]*Warp, 0, len(ls.Warps)),
			blocks:    make([]*blockInfo, 0, len(ls.Blocks)),
		}
		for b := range ls.Blocks {
			bs := &ls.Blocks[b]
			bi := &blockInfo{
				id:   b,
				lds:  &LDSBlock{Data: append([]uint32(nil), bs.LDS...), BlockID: b},
				done: bs.Done,
			}
			if b < ls.NextBlock {
				bi.sm = d.SMs[bs.SM]
				bi.placed = true
			}
			l.blocks = append(l.blocks, bi)
		}
		for wi := range ls.Warps {
			ws := &ls.Warps[wi]
			b := wi / ls.WarpsPerBlock
			bi := l.blocks[b]
			w := newWarp(wi, b, wi%ls.WarpsPerBlock, prog, bi.lds)
			w.LDSShareLo = ws.LDSShareLo
			w.LDSShareHi = ws.LDSShareHi
			w.PC = ws.PC
			for i, vr := range w.VRegs {
				copy(vr, ws.VRegs[i*isa.WarpSize:(i+1)*isa.WarpSize])
			}
			copy(w.SRegs, ws.SRegs)
			w.Exec = ws.Exec
			w.VCC = ws.VCC
			w.SCC = ws.SCC
			w.State = ws.State
			w.ReadyAt = ws.ReadyAt
			w.regReady.v = append([]int64(nil), ws.RegReadyV...)
			w.regReady.s = append([]int64(nil), ws.RegReadyS...)
			w.regReady.spec = ws.RegReadySpec
			w.DynCount = ws.DynCount
			w.BarrierCount = ws.BarrierCount
			w.barrierWait = ws.BarrierWait
			w.Mode = ws.Mode
			w.routine = append([]isa.Instruction(nil), ws.Routine...)
			w.routinePC = ws.RoutinePC
			w.savedMode = ws.SavedMode
			w.hookDepth = ws.HookDepth
			w.hookSavedCtx = copySavedContext(ws.HookSavedCtx)
			w.skipHookOnce = ws.SkipHookOnce
			w.ctx = copySavedContext(ws.Ctx)
			w.snapshot = copyArch(ws.Snapshot)
			if ws.Rec != nil {
				rec := *ws.Rec
				w.preemptRec = &rec
			}
			w.ctxRetries = ws.CtxRetries
			w.lastStoreDone = ws.LastStoreDone
			w.lastIssued = ws.LastIssued
			w.qseq = ws.QSeq
			if ws.SM >= 0 {
				w.SM = d.SMs[ws.SM]
			}
			w.launch = l
			l.Warps = append(l.Warps, w)
			bi.warps = append(bi.warps, w)
		}
		d.launches = append(d.launches, l)
		d.blocksPending += len(l.blocks) - l.nextBlock
		idx.Launches = append(idx.Launches, l)
	}

	for si := range st.SMs {
		ss := &st.SMs[si]
		sm := d.SMs[si]
		sm.issueFree = ss.IssueFree
		sm.ldsFree = ss.LDSFree
		sm.seqGen = ss.SeqGen
		sm.offline = ss.Offline
		for _, ref := range ss.Resident {
			sm.Warps = append(sm.Warps, idx.Launches[ref.Launch].Warps[ref.Warp])
		}
	}

	for ei := range st.Episodes {
		es := &st.Episodes[ei]
		ep := &Episode{
			SM:            d.SMs[es.SM],
			rt:            rt,
			pending:       es.Pending,
			frozen:        make(map[*Launch]bool, len(es.Frozen)),
			SignalCycle:   es.SignalCycle,
			AllSavedCycle: es.AllSavedCycle,
			ResumeStart:   es.ResumeStart,
			AllResumed:    es.AllResumed,
			Faults:        es.Faults,
			enteredCount:  es.EnteredCount,
			savedCount:    es.SavedCount,
			resumedCount:  es.ResumedCount,
			enterLast:     es.EnterLast,
			restoreLast:   es.RestoreLast,
			tech:          es.Tech,
			names:         es.Names,
		}
		for _, fi := range es.Frozen {
			ep.frozen[idx.Launches[fi]] = true
		}
		for _, ref := range es.Victims {
			ep.Victims = append(ep.Victims, idx.Launches[ref.Launch].Warps[ref.Warp])
		}
		idx.Episodes = append(idx.Episodes, ep)
	}
	for si := range st.SMs {
		if e := st.SMs[si].Episode; e >= 0 {
			d.SMs[si].episode = idx.Episodes[e]
		}
	}
	for li := range st.Launches {
		for wi := range st.Launches[li].Warps {
			if e := st.Launches[li].Warps[wi].Episode; e >= 0 {
				idx.Launches[li].Warps[wi].episode = idx.Episodes[e]
			}
		}
	}

	if rt != nil {
		d.AttachRuntime(rt)
	}

	// Rebuild the ready queue: every ready resident warp re-enqueues.
	// Insertion order is irrelevant for the pop sequence (the queue keys
	// form a strict total order), but iterate deterministically anyway.
	for _, sm := range d.SMs {
		for _, w := range sm.Warps {
			if w.State == WarpReady {
				d.enqueueReady(w)
			}
		}
	}
	return idx, nil
}

// CheckInvariants validates the structural consistency of a state tree:
// index bounds, program-derived sizes, placement/done-count agreement,
// and episode counter sanity. ImportState refuses states that fail it;
// the snapshot fuzzer calls it on every decoded state.
func (st *DeviceState) CheckInvariants() error {
	if err := st.Cfg.Validate(); err != nil {
		return err
	}
	if st.Shards < 1 || st.Shards > st.Cfg.NumSMs {
		return fmt.Errorf("shard width %d out of range [1,%d]", st.Shards, st.Cfg.NumSMs)
	}
	if st.Now < 0 {
		return fmt.Errorf("negative clock %d", st.Now)
	}
	if len(st.Mem) != st.Cfg.GlobalMemBytes/4 {
		return fmt.Errorf("memory image has %d words, config needs %d", len(st.Mem), st.Cfg.GlobalMemBytes/4)
	}
	if len(st.SMs) != st.Cfg.NumSMs {
		return fmt.Errorf("state has %d SMs, config needs %d", len(st.SMs), st.Cfg.NumSMs)
	}
	progs := make([]*isa.Program, len(st.Progs))
	for i, enc := range st.Progs {
		p, err := isa.DecodeProgram(enc)
		if err != nil {
			return fmt.Errorf("program %d: %w", i, err)
		}
		progs[i] = p
	}
	const regClockCap = 1 << 16
	for li := range st.Launches {
		ls := &st.Launches[li]
		if ls.Prog < 0 || ls.Prog >= len(progs) {
			return fmt.Errorf("launch %d: program index %d out of range", li, ls.Prog)
		}
		prog := progs[ls.Prog]
		if ls.NumBlocks < 1 || ls.WarpsPerBlock < 1 {
			return fmt.Errorf("launch %d: non-positive grid %dx%d", li, ls.NumBlocks, ls.WarpsPerBlock)
		}
		if len(ls.Blocks) != ls.NumBlocks {
			return fmt.Errorf("launch %d: %d block states for %d blocks", li, len(ls.Blocks), ls.NumBlocks)
		}
		if len(ls.Warps) != ls.NumBlocks*ls.WarpsPerBlock {
			return fmt.Errorf("launch %d: %d warp states for %d warps", li, len(ls.Warps), ls.NumBlocks*ls.WarpsPerBlock)
		}
		if ls.NextBlock < 0 || ls.NextBlock > ls.NumBlocks {
			return fmt.Errorf("launch %d: NextBlock %d out of range", li, ls.NextBlock)
		}
		for _, f := range ls.SMFilter {
			if f < 0 || f >= st.Cfg.NumSMs {
				return fmt.Errorf("launch %d: SMFilter names SM %d", li, f)
			}
		}
		ldsWords := prog.LDSBytes / 4
		doneWarps := 0
		for b := range ls.Blocks {
			bs := &ls.Blocks[b]
			if len(bs.LDS) != ldsWords {
				return fmt.Errorf("launch %d block %d: LDS has %d words, program needs %d", li, b, len(bs.LDS), ldsWords)
			}
			placed := b < ls.NextBlock
			if placed && (bs.SM < 0 || bs.SM >= st.Cfg.NumSMs) {
				return fmt.Errorf("launch %d block %d: placed on invalid SM %d", li, b, bs.SM)
			}
			if !placed && bs.SM != -1 {
				return fmt.Errorf("launch %d block %d: unplaced but SM is %d", li, b, bs.SM)
			}
			done := 0
			for wi := b * ls.WarpsPerBlock; wi < (b+1)*ls.WarpsPerBlock; wi++ {
				if ls.Warps[wi].State == WarpDone {
					done++
				}
			}
			if bs.Done != done {
				return fmt.Errorf("launch %d block %d: Done=%d but %d warps are done", li, b, bs.Done, done)
			}
			doneWarps += done
		}
		if ls.DoneWarps != doneWarps {
			return fmt.Errorf("launch %d: DoneWarps=%d but %d warps are done", li, ls.DoneWarps, doneWarps)
		}
		nv := prog.AllocatedVRegs()
		ns := prog.AllocatedSRegs()
		for wi := range ls.Warps {
			ws := &ls.Warps[wi]
			placed := wi/ls.WarpsPerBlock < ls.NextBlock
			if placed && (ws.SM < 0 || ws.SM >= st.Cfg.NumSMs) {
				return fmt.Errorf("launch %d warp %d: placed on invalid SM %d", li, wi, ws.SM)
			}
			if !placed && ws.SM != -1 {
				return fmt.Errorf("launch %d warp %d: unplaced but SM is %d", li, wi, ws.SM)
			}
			if len(ws.VRegs) != nv*isa.WarpSize {
				return fmt.Errorf("launch %d warp %d: %d vreg words, program needs %d", li, wi, len(ws.VRegs), nv*isa.WarpSize)
			}
			if len(ws.SRegs) != ns {
				return fmt.Errorf("launch %d warp %d: %d sregs, program needs %d", li, wi, len(ws.SRegs), ns)
			}
			if len(ws.RegReadyV) < nv || len(ws.RegReadyV) > regClockCap ||
				len(ws.RegReadyS) < ns || len(ws.RegReadyS) > regClockCap {
				return fmt.Errorf("launch %d warp %d: register clock sizes %d/%d out of range", li, wi, len(ws.RegReadyV), len(ws.RegReadyS))
			}
			if ws.State > WarpPreempted {
				return fmt.Errorf("launch %d warp %d: invalid state %d", li, wi, ws.State)
			}
			if ws.Mode > ModeHook || ws.SavedMode > ModeHook {
				return fmt.Errorf("launch %d warp %d: invalid mode %d/%d", li, wi, ws.Mode, ws.SavedMode)
			}
			if ws.BarrierWait != (ws.State == WarpAtBarrier) {
				return fmt.Errorf("launch %d warp %d: barrierWait=%v inconsistent with state %v", li, wi, ws.BarrierWait, ws.State)
			}
			if ws.PC < 0 || ws.PC > prog.Len() {
				return fmt.Errorf("launch %d warp %d: PC %d out of range [0,%d]", li, wi, ws.PC, prog.Len())
			}
			if ws.RoutinePC < 0 || ws.RoutinePC > len(ws.Routine) {
				return fmt.Errorf("launch %d warp %d: routine PC %d out of range [0,%d]", li, wi, ws.RoutinePC, len(ws.Routine))
			}
			if ws.Mode != ModeKernel && len(ws.Routine) == 0 {
				return fmt.Errorf("launch %d warp %d: mode %d with empty routine", li, wi, ws.Mode)
			}
			if ws.Episode < -1 || ws.Episode >= len(st.Episodes) {
				return fmt.Errorf("launch %d warp %d: episode index %d out of range", li, wi, ws.Episode)
			}
		}
	}
	seen := make(map[WarpRef]bool)
	for si := range st.SMs {
		ss := &st.SMs[si]
		if ss.Episode < -1 || ss.Episode >= len(st.Episodes) {
			return fmt.Errorf("SM %d: episode index %d out of range", si, ss.Episode)
		}
		for _, ref := range ss.Resident {
			if ref.Launch < 0 || ref.Launch >= len(st.Launches) {
				return fmt.Errorf("SM %d: resident ref names launch %d", si, ref.Launch)
			}
			if ref.Warp < 0 || ref.Warp >= len(st.Launches[ref.Launch].Warps) {
				return fmt.Errorf("SM %d: resident ref names warp %d of launch %d", si, ref.Warp, ref.Launch)
			}
			if seen[ref] {
				return fmt.Errorf("SM %d: warp %d of launch %d resident twice", si, ref.Warp, ref.Launch)
			}
			seen[ref] = true
			if got := st.Launches[ref.Launch].Warps[ref.Warp].SM; got != si {
				return fmt.Errorf("SM %d: resident warp %d of launch %d claims SM %d", si, ref.Warp, ref.Launch, got)
			}
		}
	}
	for ei := range st.Episodes {
		es := &st.Episodes[ei]
		if es.SM < 0 || es.SM >= st.Cfg.NumSMs {
			return fmt.Errorf("episode %d: SM %d out of range", ei, es.SM)
		}
		if len(es.Victims) == 0 {
			return fmt.Errorf("episode %d: no victims", ei)
		}
		for _, ref := range es.Victims {
			if ref.Launch < 0 || ref.Launch >= len(st.Launches) ||
				ref.Warp < 0 || ref.Warp >= len(st.Launches[ref.Launch].Warps) {
				return fmt.Errorf("episode %d: victim ref (%d,%d) out of range", ei, ref.Launch, ref.Warp)
			}
		}
		prev := -1
		for _, fi := range es.Frozen {
			if fi <= prev || fi >= len(st.Launches) {
				return fmt.Errorf("episode %d: frozen launch indices not ascending in-range (%d after %d)", ei, fi, prev)
			}
			prev = fi
		}
		n := len(es.Victims)
		if es.EnteredCount < 0 || es.EnteredCount > n ||
			es.SavedCount < 0 || es.SavedCount > es.EnteredCount ||
			es.ResumedCount < 0 || es.ResumedCount > es.SavedCount {
			return fmt.Errorf("episode %d: inconsistent progress counts %d/%d/%d of %d",
				ei, es.EnteredCount, es.SavedCount, es.ResumedCount, n)
		}
	}
	return nil
}
