package sim

import (
	"fmt"

	"ctxback/internal/isa"
)

// WarpState is the lifecycle state of a warp slot.
type WarpState uint8

const (
	WarpReady WarpState = iota
	WarpAtBarrier
	WarpDone
	WarpPreempted // context saved, slot released
)

func (s WarpState) String() string {
	switch s {
	case WarpReady:
		return "ready"
	case WarpAtBarrier:
		return "barrier"
	case WarpDone:
		return "done"
	case WarpPreempted:
		return "preempted"
	}
	return fmt.Sprintf("WarpState(%d)", uint8(s))
}

// ExecMode distinguishes what stream the warp is currently fetching from.
type ExecMode uint8

const (
	ModeKernel ExecMode = iota
	ModePreemptRoutine
	ModeResumeRoutine
	ModeHook // injected instrumentation (checkpoints, OSRB copies)
)

// Warp is one wavefront's architectural and micro-architectural state.
type Warp struct {
	ID         int // flat warp id within the launch
	BlockID    int
	WarpInBlk  int
	SM         *SM
	Prog       *isa.Program
	LDS        *LDSBlock // shared with the other warps of the block
	LDSShareLo int       // byte offset of this warp's snapshot share
	LDSShareHi int

	PC    int
	VRegs [][]uint32 // [NumVRegs][WarpSize]
	SRegs []uint64
	Exec  uint64
	VCC   uint64
	SCC   bool

	State WarpState
	// ReadyAt is the earliest cycle the warp may attempt its next issue.
	ReadyAt int64
	// regReady tracks, per register, the cycle its in-flight value lands.
	regReady regClock
	// DynCount counts retired kernel-mode instructions (logical
	// progress); routine/hook instructions do not count.
	DynCount int64
	// BarrierCount counts barriers this warp has passed.
	BarrierCount int
	barrierWait  bool // arrived at a barrier, waiting for the block

	Mode ExecMode
	// routine is the instruction stream executed in routine/hook modes.
	routine      []isa.Instruction
	routinePC    int
	savedMode    ExecMode // mode to restore after a hook completes
	hookDepth    int
	hookSavedCtx *SavedContext
	skipHookOnce bool          // suppress re-hooking the instruction a hook just ran for
	ctx          *SavedContext // context buffer while preempted / resuming
	preemptRec   *PreemptRecord
	// episode is the preemption episode this warp is (or was last) a
	// victim of. Kept on the warp — not looked up through the SM —
	// because an SM may start a new episode against a different tenant
	// while this warp's episode is parked (saved, awaiting resume).
	episode *Episode
	// snapshot is the architectural state captured when the preemption
	// signal was observed (only with faults or a resume checker enabled);
	// the resume-integrity oracle diffs against it.
	snapshot *ArchSnapshot
	// ctxRetries counts issue attempts of the current context-transfer
	// instruction that hit an injected transient fault (reset when the
	// instruction finally retires).
	ctxRetries int
	// lastStoreDone is the completion cycle of the warp's latest
	// outstanding store; endpgm/barrier/ctx_exit wait for it.
	lastStoreDone int64
	// lastIssued is the cycle of this warp's most recent issue (used for
	// round-robin tie-breaking in the scheduler).
	lastIssued int64
	// candTime is the hazard-resolved earliest issue time for the warp's
	// next instruction. The ready queue derives it at enqueue (it is the
	// warp's heap key); the reference scan derives it lazily, with
	// candValid as the cache flag cleared whenever the warp's own state
	// advances.
	candTime  int64
	candValid bool
	// Ready-queue intrusive state (see readyq.go): which ready structure
	// holds the warp (qheapNone when not enqueued), its links in the
	// stalled list, its index in the future heap, and its scan-position
	// sequence number — the tie-break that reproduces the reference
	// scan's first-in-scan-order preference.
	qheap uint8
	qprev *Warp
	qnext *Warp
	qidx  int
	qseq  int64
	launch *Launch
}

// PreemptPC returns the PC at which this warp observed the preemption
// signal during the current episode (falls back to the current PC when
// the warp was never preempted).
func (w *Warp) PreemptPC() int {
	if w.preemptRec != nil {
		return w.preemptRec.PCAtSignal
	}
	return w.PC
}

// Record returns the warp's preemption measurement record (nil before
// any preemption).
func (w *Warp) Record() *PreemptRecord { return w.preemptRec }

// Ctx returns the warp's attached context buffer (the saved context
// while preempted / resuming, or a hook's target buffer). Techniques use
// it to read back what their preemption routines recorded.
func (w *Warp) Ctx() *SavedContext { return w.ctx }

// LDSBlock is the shared memory of one thread block.
type LDSBlock struct {
	Data    []uint32
	BlockID int
}

// SavedContext is the per-warp context buffer in device memory. Slots are
// keyed by the Imm0 the context instructions carry; the generating
// technique chooses the slot layout.
type SavedContext struct {
	VSlots   map[int32][]uint32
	SSlots   map[int32]uint64
	Specs    map[int32]uint64
	LDS      []uint32 // the warp's LDS share
	PC       int
	DynCount int64
	Barriers int
}

// NewSavedContext returns an empty context buffer.
func NewSavedContext() *SavedContext {
	return &SavedContext{
		VSlots: make(map[int32][]uint32),
		SSlots: make(map[int32]uint64),
		Specs:  make(map[int32]uint64),
	}
}

// PreemptRecord tracks one warp's preemption episode for measurement.
type PreemptRecord struct {
	SignalCycle    int64
	EnterCycle     int64 // warp entered its preemption routine
	RestoreDone    int64 // CtxResume retired with all restore loads landed
	SavedCycle     int64 // CtxExit retired: SM resources released
	ResumeStart    int64
	ResumeComplete int64 // logical progress back at the signal point
	DynAtSignal    int64
	PCAtSignal     int
	SavedBytes     int64 // context traffic written at preemption
	RestoredBytes  int64 // context traffic read at resume

	// SavedChecksum is the context-buffer checksum computed when the
	// preemption routine finished (only with faults enabled and
	// checksums on; HasChecksum marks validity). Verified at resume.
	SavedChecksum uint64
	HasChecksum   bool
}

func newWarp(id, blockID, warpInBlk int, prog *isa.Program, lds *LDSBlock) *Warp {
	w := &Warp{
		ID:        id,
		BlockID:   blockID,
		WarpInBlk: warpInBlk,
		Prog:      prog,
		LDS:       lds,
		Exec:      ^uint64(0),
	}
	// Register files are sized to the allocated (alignment-padded)
	// counts: the padding registers physically exist — OSRB stores
	// backups there and BASELINE swaps them. One backing array serves
	// every vector register so warp creation stays cheap per episode.
	nv := prog.AllocatedVRegs()
	backing := make([]uint32, nv*isa.WarpSize)
	w.VRegs = make([][]uint32, nv)
	for i := range w.VRegs {
		w.VRegs[i] = backing[i*isa.WarpSize : (i+1)*isa.WarpSize : (i+1)*isa.WarpSize]
	}
	w.SRegs = make([]uint64, prog.AllocatedSRegs())
	w.regReady.init(nv, prog.AllocatedSRegs())
	return w
}

// regClock records, per architectural register, the cycle its in-flight
// value becomes readable. It replaces a map: the scheduler consults it
// for every operand of every issued instruction, so lookups must be flat
// array indexing with no hashing or allocation.
type regClock struct {
	v    []int64
	s    []int64
	spec [numSpecRegs]int64
}

const numSpecRegs = 3 // EXEC, VCC, SCC

func (c *regClock) init(numVRegs, numSRegs int) {
	// One backing allocation; a growth in set() simply reallocates that
	// slice away from the shared array.
	buf := make([]int64, numVRegs+numSRegs)
	c.v = buf[:numVRegs:numVRegs]
	c.s = buf[numVRegs:]
}

// reset forgets every in-flight value (warp re-materialization).
func (c *regClock) reset() {
	clear(c.v)
	clear(c.s)
	clear(c.spec[:])
}

func (c *regClock) get(r isa.Reg) int64 {
	switch r.Class {
	case isa.RegVector:
		if int(r.Index) < len(c.v) {
			return c.v[r.Index]
		}
	case isa.RegScalar:
		if int(r.Index) < len(c.s) {
			return c.s[r.Index]
		}
	case isa.RegSpecial:
		if int(r.Index) < numSpecRegs {
			return c.spec[r.Index]
		}
	}
	return 0
}

func (c *regClock) set(r isa.Reg, cycle int64) {
	switch r.Class {
	case isa.RegVector:
		if int(r.Index) >= len(c.v) {
			c.v = append(c.v, make([]int64, int(r.Index)+1-len(c.v))...)
		}
		c.v[r.Index] = cycle
	case isa.RegScalar:
		if int(r.Index) >= len(c.s) {
			c.s = append(c.s, make([]int64, int(r.Index)+1-len(c.s))...)
		}
		c.s[r.Index] = cycle
	case isa.RegSpecial:
		if int(r.Index) < numSpecRegs {
			c.spec[r.Index] = cycle
		}
	}
}

// maxAll returns the latest in-flight completion across every register.
func (c *regClock) maxAll() int64 {
	var t int64
	for _, x := range c.v {
		if x > t {
			t = x
		}
	}
	for _, x := range c.s {
		if x > t {
			t = x
		}
	}
	for _, x := range c.spec {
		if x > t {
			t = x
		}
	}
	return t
}

// poison fills the register state with a recognizable garbage pattern.
// Used when a preempted warp's slot is re-materialized at resume: any
// register the resume routine fails to restore shows up as corruption in
// the golden-output comparison instead of silently reading stale data.
func (w *Warp) poison() {
	const pat = 0xDEADBEEF
	for _, vr := range w.VRegs {
		for l := range vr {
			vr[l] = pat
		}
	}
	for i := range w.SRegs {
		w.SRegs[i] = pat
	}
	w.Exec = 0
	w.VCC = pat
	w.SCC = true
}

// currentInstr returns the instruction the warp will issue next, given
// its mode, or nil when the stream is exhausted.
func (w *Warp) currentInstr() *isa.Instruction {
	if w.Mode == ModeKernel {
		if w.PC >= w.Prog.Len() {
			return nil
		}
		return w.Prog.At(w.PC)
	}
	if w.routinePC >= len(w.routine) {
		return nil
	}
	return &w.routine[w.routinePC]
}

// enterRoutine switches the warp into a routine stream.
func (w *Warp) enterRoutine(mode ExecMode, instrs []isa.Instruction) {
	w.Mode = mode
	w.routine = instrs
	w.routinePC = 0
}

// enterHook pushes an instrumentation stream; the previous mode resumes
// when the hook stream ends. Hooks do not nest beyond one level by
// construction (they are only injected in kernel mode).
func (w *Warp) enterHook(instrs []isa.Instruction) {
	w.savedMode = w.Mode
	w.hookDepth++
	w.enterRoutine(ModeHook, instrs)
}

// regReadyAt returns the cycle at which every register in regs is
// available.
func (w *Warp) regReadyAt(regs []isa.Reg) int64 {
	var t int64
	for _, r := range regs {
		if rt := w.regReady.get(r); rt > t {
			t = rt
		}
	}
	return t
}

func (w *Warp) setRegReady(r isa.Reg, cycle int64) {
	w.regReady.set(r, cycle)
}

// activeLanes returns the number of set bits in EXEC.
func (w *Warp) activeLanes() int {
	n := 0
	for m := w.Exec; m != 0; m &= m - 1 {
		n++
	}
	return n
}
