package sim

import (
	"fmt"
	"math"

	"ctxback/internal/faults"
	"ctxback/internal/isa"
	"ctxback/internal/trace"
)

// Runtime is the hook a preemption technique implements to drive context
// switching on the simulator. internal/preempt provides implementations.
type Runtime interface {
	Name() string
	// PreemptRoutine returns the dedicated preemption routine for w
	// (queried by w.PC, per paper §IV-B). Executed in ModePreemptRoutine
	// against a fresh context buffer; must end with CtxExit.
	PreemptRoutine(w *Warp) []isa.Instruction
	// ResumeRoutine returns the dedicated resume routine. ctxOverride,
	// when non-nil, replaces the warp's context buffer for the routine
	// (checkpoint-based techniques restore from their own snapshots).
	// Must end with CtxResume.
	ResumeRoutine(w *Warp) (instrs []isa.Instruction, ctxOverride *SavedContext)
	// Hook returns instrumentation to execute immediately before the
	// kernel instruction at pc (runtime overhead: checkpoint stores, OSRB
	// copies). buf, when non-nil, is attached as the context buffer while
	// the hook runs. Return nil for no instrumentation.
	Hook(w *Warp, pc int) (instrs []isa.Instruction, buf *SavedContext)
}

// Device is the simulated GPU.
type Device struct {
	Cfg      Config
	Mem      []uint32
	SMs      []*SM
	now      int64
	memFree  int64 // device-memory bus next-free cycle
	ctxFree  int64 // context save/restore path next-free cycle
	launches []*Launch
	rt       Runtime // attached technique (Hook instrumentation)
	tracer   *Tracer
	rec      *trace.Recorder // structured-event recorder (nil: tracing off)
	Stats    DeviceStats

	// faults is the attached fault injector (nil: every fault path is
	// skipped, so disabled runs behave and cost exactly as before).
	faults *faults.Injector
	// resumeChecker is the installed resume-integrity oracle (nil: off).
	resumeChecker func(w *Warp) error

	hazardScratch []isa.Reg
	defsScratch   []isa.Reg
}

// DeviceStats aggregates device-wide counters.
type DeviceStats struct {
	Instructions  int64 // all executed instructions (any mode)
	KernelInstrs  int64 // kernel-mode retirements
	RoutineInstrs int64
	HookInstrs    int64
	GlobalBytes   int64
	LDSBytes      int64
	Cycles        int64
}

// NewDevice builds a device from cfg.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{Cfg: cfg, Mem: make([]uint32, cfg.GlobalMemBytes/4)}
	for i := 0; i < cfg.NumSMs; i++ {
		d.SMs = append(d.SMs, &SM{ID: i, Dev: d})
	}
	return d, nil
}

// Now returns the current simulated cycle.
func (d *Device) Now() int64 { return d.now }

// AttachRecorder installs a structured-event recorder; episode, warp and
// memory-pipeline events are emitted into it with simulated-cycle
// timestamps. nil detaches. Recording is observation only — it never
// alters simulated timing, so traced and untraced runs produce identical
// results.
func (d *Device) AttachRecorder(r *trace.Recorder) { d.rec = r }

// Recorder returns the attached structured-event recorder (nil when
// tracing is off).
func (d *Device) Recorder() *trace.Recorder { return d.rec }

// Micros returns the current simulated time in microseconds.
func (d *Device) Micros() float64 { return d.Cfg.CyclesToMicros(d.now) }

// accessGlobal pushes bytes through the shared device-memory bus starting
// no earlier than start; returns the cycle the data lands. Context
// save/restore traffic (ctxPath) additionally serializes through the
// slow switch-routine path, so its completion is gated by whichever of
// the two resources frees later — switch time tracks context size but
// degrades under bus contention, as the paper observes.
func (d *Device) accessGlobal(start int64, bytes int, ctxPath, isLoad bool) int64 {
	if d.faults != nil {
		// Injected pipeline stalls delay the transaction before it
		// contends for the bus.
		start += d.faults.Stall()
	}
	busDur := int64(math.Ceil(float64(bytes) / d.Cfg.MemBytesPerCycle))
	if busDur < 1 {
		busDur = 1
	}
	d.Stats.GlobalBytes += int64(bytes)
	if !ctxPath {
		txStart := max(start, d.memFree)
		d.memFree = txStart + busDur
		return txStart + busDur + int64(d.Cfg.MemLatency)
	}
	// Context traffic serializes through BOTH resources: it must win bus
	// slots against the other SMs' kernel traffic AND squeeze through the
	// slow switch-routine path — so a busy device slows context switches,
	// exactly the contention effect §V-A reports.
	rate := d.Cfg.CtxBytesPerCycle
	if isLoad && d.Cfg.CtxRestoreFactor > 0 {
		rate *= d.Cfg.CtxRestoreFactor
	}
	ctxDur := int64(math.Ceil(float64(bytes) / rate))
	s := max(start, d.memFree, d.ctxFree)
	d.memFree = s + busDur
	d.ctxFree = s + ctxDur
	complete := s + max(busDur, ctxDur) + int64(d.Cfg.MemLatency)
	if d.rec != nil {
		name := "ctx-save"
		if isLoad {
			name = "ctx-restore"
		}
		d.rec.Emit(trace.Event{Name: name, Cat: trace.CatMem, Ph: trace.PhComplete,
			Cycle: s, Dur: complete - s, SM: -1, Warp: -1, Bytes: int64(bytes)})
	}
	return complete
}

// Occupancy describes how many blocks/warps of a kernel fit on one SM.
type Occupancy struct {
	WarpsPerSM  int
	BlocksPerSM int
	LimitedBy   string
}

// ComputeOccupancy derives the per-SM residency limits for prog with the
// given block shape.
func (d *Device) ComputeOccupancy(prog *isa.Program, warpsPerBlock int) (Occupancy, error) {
	vregBytes := prog.AllocatedVRegs() * 4 * isa.WarpSize
	sregBytes := prog.AllocatedSRegs() * 4
	if vregBytes == 0 {
		return Occupancy{}, fmt.Errorf("sim: kernel %q declares no vector registers", prog.Name)
	}
	limit := d.Cfg.MaxWarpsPerSM
	by := "warp slots"
	if v := d.Cfg.VRegFileBytes / vregBytes; v < limit {
		limit, by = v, "vector registers"
	}
	if sregBytes > 0 {
		if s := d.Cfg.SRegFileBytes / sregBytes; s < limit {
			limit, by = s, "scalar registers"
		}
	}
	blocks := limit / warpsPerBlock
	if prog.LDSBytes > 0 {
		if l := d.Cfg.LDSBytesPerSM / prog.LDSBytes; l < blocks {
			blocks, by = l, "LDS"
		}
	}
	if blocks == 0 {
		return Occupancy{}, fmt.Errorf("sim: kernel %q (block of %d warps) does not fit on an SM (limited by %s)",
			prog.Name, warpsPerBlock, by)
	}
	return Occupancy{WarpsPerSM: blocks * warpsPerBlock, BlocksPerSM: blocks, LimitedBy: by}, nil
}

// LaunchSpec configures a kernel launch.
type LaunchSpec struct {
	Prog          *isa.Program
	NumBlocks     int
	WarpsPerBlock int
	// Setup initializes each warp's registers before it starts (ABI:
	// kernels read their arguments from scalar registers).
	Setup func(w *Warp)
	// SMFilter restricts dispatch to the listed SMs (nil: all).
	SMFilter []int
}

// Launch tracks one kernel grid through execution.
type Launch struct {
	Spec      LaunchSpec
	Dev       *Device
	Occ       Occupancy
	Warps     []*Warp
	blocks    []*blockInfo
	nextBlock int
	doneWarps int
}

type blockInfo struct {
	id     int
	lds    *LDSBlock
	warps  []*Warp
	sm     *SM
	placed bool
	done   int
}

// Launch dispatches a grid. Blocks are placed greedily on allowed SMs up
// to occupancy; remaining blocks wait for finished blocks to free slots.
func (d *Device) Launch(spec LaunchSpec) (*Launch, error) {
	if spec.NumBlocks <= 0 || spec.WarpsPerBlock <= 0 {
		return nil, fmt.Errorf("sim: launch needs positive grid dimensions")
	}
	if err := spec.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	occ, err := d.ComputeOccupancy(spec.Prog, spec.WarpsPerBlock)
	if err != nil {
		return nil, err
	}
	l := &Launch{Spec: spec, Dev: d, Occ: occ}
	ldsWords := spec.Prog.LDSBytes / 4
	shareBytes := 0
	if spec.Prog.LDSBytes > 0 {
		shareBytes = spec.Prog.LDSBytes / spec.WarpsPerBlock
	}
	wid := 0
	for b := 0; b < spec.NumBlocks; b++ {
		bi := &blockInfo{id: b, lds: &LDSBlock{Data: make([]uint32, ldsWords), BlockID: b}}
		for wi := 0; wi < spec.WarpsPerBlock; wi++ {
			w := newWarp(wid, b, wi, spec.Prog, bi.lds)
			w.LDSShareLo = wi * shareBytes
			w.LDSShareHi = (wi + 1) * shareBytes
			w.launch = l
			if spec.Setup != nil {
				spec.Setup(w)
			}
			bi.warps = append(bi.warps, w)
			l.Warps = append(l.Warps, w)
			wid++
		}
		l.blocks = append(l.blocks, bi)
	}
	d.launches = append(d.launches, l)
	d.dispatch(l)
	return l, nil
}

func (l *Launch) allowedSM(sm *SM) bool {
	if l.Spec.SMFilter == nil {
		return true
	}
	for _, id := range l.Spec.SMFilter {
		if id == sm.ID {
			return true
		}
	}
	return false
}

// smUsage tallies the physical resources held by an SM's resident
// (non-swapped-out) warps — across every launch sharing the SM, which
// the per-launch occupancy limit alone cannot see.
type smUsage struct {
	warps     int
	vregBytes int
	sregBytes int
	ldsBytes  int
}

func (sm *SM) usage() smUsage {
	var u smUsage
	var seen map[*blockInfo]bool
	for _, w := range sm.Warps {
		if w.State == WarpPreempted {
			continue // context lives in device memory; slot is free
		}
		u.warps++
		u.vregBytes += w.Prog.AllocatedVRegs() * 4 * isa.WarpSize
		u.sregBytes += w.Prog.AllocatedSRegs() * 4
		if w.Prog.LDSBytes > 0 {
			if seen == nil {
				seen = make(map[*blockInfo]bool)
			}
			if bi := w.launch.blocks[w.BlockID]; !seen[bi] {
				seen[bi] = true
				u.ldsBytes += w.Prog.LDSBytes
			}
		}
	}
	return u
}

// fits reports whether the SM can additionally host addWarps warps with
// the given register/LDS footprint.
func (u smUsage) fits(cfg *Config, addWarps, addVReg, addSReg, addLDS int) bool {
	return u.warps+addWarps <= cfg.MaxWarpsPerSM &&
		u.vregBytes+addVReg <= cfg.VRegFileBytes &&
		u.sregBytes+addSReg <= cfg.SRegFileBytes &&
		u.ldsBytes+addLDS <= cfg.LDSBytesPerSM
}

// blockFootprint is the physical resource demand of one block of spec.
func blockFootprint(spec *LaunchSpec) (warps, vreg, sreg, lds int) {
	warps = spec.WarpsPerBlock
	vreg = spec.Prog.AllocatedVRegs() * 4 * isa.WarpSize * warps
	sreg = spec.Prog.AllocatedSRegs() * 4 * warps
	lds = spec.Prog.LDSBytes
	return
}

// dispatch places as many pending blocks as fit. A block needs both a
// free per-launch occupancy slot and physical headroom (warp slots,
// register files, LDS) alongside every other tenant resident on the SM:
// a newcomer cannot land on an SM whose victim warps have not yet saved
// their contexts.
func (d *Device) dispatch(l *Launch) {
	for l.nextBlock < len(l.blocks) {
		bi := l.blocks[l.nextBlock]
		bw, bv, bs, blds := blockFootprint(&l.Spec)
		var target *SM
		for _, sm := range d.SMs {
			if !l.allowedSM(sm) {
				continue
			}
			if sm.offline && sm.episode != nil && sm.episode.frozen[l] {
				continue
			}
			if sm.blocksOf(l) >= l.Occ.BlocksPerSM {
				continue
			}
			if !sm.usage().fits(&d.Cfg, bw, bv, bs, blds) {
				continue
			}
			if target == nil || sm.residentWarps() < target.residentWarps() {
				target = sm
			}
		}
		if target == nil {
			return
		}
		bi.sm = target
		bi.placed = true
		for _, w := range bi.warps {
			w.SM = target
			w.ReadyAt = d.now
			target.Warps = append(target.Warps, w)
		}
		l.nextBlock++
	}
}

// Done reports whether every warp of the launch has retired s_endpgm.
func (l *Launch) Done() bool { return l.doneWarps == len(l.Warps) }

// Step executes the single globally-earliest issuable instruction.
// Returns false when nothing can make progress (all done, or everything
// is blocked/preempted).
func (d *Device) Step() (bool, error) {
	var best *Warp
	var bestSM *SM
	bestT := int64(math.MaxInt64)
	for _, sm := range d.SMs {
		for _, w := range sm.Warps {
			if w.State != WarpReady {
				continue
			}
			// The hazard-resolved issue time only changes when the warp
			// itself advances, so it is cached between selections.
			if !w.candValid {
				in := w.currentInstr()
				if in == nil {
					return false, fmt.Errorf("sim: warp %d ran off the end of its stream (mode %d)", w.ID, w.Mode)
				}
				w.candTime = max(w.ReadyAt, w.regReadyAt(d.hazardRegs(in)))
				w.candValid = true
			}
			t := max(sm.issueFree, w.candTime)
			// Round-robin among same-cycle candidates: prefer the warp
			// that issued least recently so no warp starves.
			if t < bestT || (t == bestT && best != nil && w.lastIssued < best.lastIssued) {
				bestT, best, bestSM = t, w, sm
			}
		}
	}
	if best == nil {
		return false, nil
	}
	if err := bestSM.issue(best, bestT); err != nil {
		return false, err
	}
	if bestT > d.now {
		d.now = bestT
	}
	d.Stats.Cycles = d.now
	return true, nil
}

// hazardRegs collects the registers whose in-flight values gate issue of
// in (RAW via uses, WAW via defs). The scratch slice lives on the Device
// so independent devices never share state.
func (d *Device) hazardRegs(in *isa.Instruction) []isa.Reg {
	d.hazardScratch = d.hazardScratch[:0]
	d.hazardScratch = in.Uses(d.hazardScratch)
	d.hazardScratch = in.Defs(d.hazardScratch)
	return d.hazardScratch
}

// defRegs collects in's defined registers into a device-owned scratch
// slice — the issue path runs once per simulated instruction and must
// not allocate.
func (d *Device) defRegs(in *isa.Instruction) []isa.Reg {
	d.defsScratch = d.defsScratch[:0]
	d.defsScratch = in.Defs(d.defsScratch)
	return d.defsScratch
}

// AdvanceTo fast-forwards the clock to cycle (no-op when already past).
// Use it to wait out in-flight traffic when no warp can issue.
func (d *Device) AdvanceTo(cycle int64) {
	if cycle > d.now {
		d.now = cycle
		d.Stats.Cycles = d.now
	}
}

// RunUntil steps until cond is true, no progress is possible, or
// maxCycles elapse. It returns an error on simulation faults or on
// deadlock while work remains and expectIdle is false.
func (d *Device) RunUntil(cond func() bool, maxCycles int64) error {
	limit := d.now + maxCycles
	for {
		if cond != nil && cond() {
			return nil
		}
		progressed, err := d.Step()
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
		if d.now > limit {
			return fmt.Errorf("sim: exceeded cycle budget (%d cycles)", maxCycles)
		}
	}
}

// Run executes until all launches complete (or maxCycles).
func (d *Device) Run(maxCycles int64) error {
	err := d.RunUntil(func() bool {
		for _, l := range d.launches {
			if !l.Done() {
				return false
			}
		}
		return true
	}, maxCycles)
	if err != nil {
		return err
	}
	for _, l := range d.launches {
		if !l.Done() {
			return fmt.Errorf("sim: deadlock — launch %q stalled with %d/%d warps done",
				l.Spec.Prog.Name, l.doneWarps, len(l.Warps))
		}
	}
	return nil
}

// WriteWords copies words into device memory at byte address addr.
func (d *Device) WriteWords(addr int, words []uint32) error {
	if addr%4 != 0 || addr < 0 || addr/4+len(words) > len(d.Mem) {
		return fmt.Errorf("sim: WriteWords out of range addr=%d len=%d", addr, len(words))
	}
	copy(d.Mem[addr/4:], words)
	return nil
}

// ReadWords copies length words from byte address addr.
func (d *Device) ReadWords(addr, length int) ([]uint32, error) {
	if addr%4 != 0 || addr < 0 || addr/4+length > len(d.Mem) {
		return nil, fmt.Errorf("sim: ReadWords out of range addr=%d len=%d", addr, length)
	}
	out := make([]uint32, length)
	copy(out, d.Mem[addr/4:])
	return out, nil
}
