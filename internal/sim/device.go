package sim

import (
	"fmt"
	"math"
	"runtime"

	"ctxback/internal/faults"
	"ctxback/internal/isa"
	"ctxback/internal/trace"
)

// Runtime is the hook a preemption technique implements to drive context
// switching on the simulator. internal/preempt provides implementations.
type Runtime interface {
	Name() string
	// PreemptRoutine returns the dedicated preemption routine for w
	// (queried by w.PC, per paper §IV-B). Executed in ModePreemptRoutine
	// against a fresh context buffer; must end with CtxExit.
	PreemptRoutine(w *Warp) []isa.Instruction
	// ResumeRoutine returns the dedicated resume routine. ctxOverride,
	// when non-nil, replaces the warp's context buffer for the routine
	// (checkpoint-based techniques restore from their own snapshots).
	// Must end with CtxResume.
	ResumeRoutine(w *Warp) (instrs []isa.Instruction, ctxOverride *SavedContext)
	// Hook returns instrumentation to execute immediately before the
	// kernel instruction at pc (runtime overhead: checkpoint stores, OSRB
	// copies). buf, when non-nil, is attached as the context buffer while
	// the hook runs. Return nil for no instrumentation.
	Hook(w *Warp, pc int) (instrs []isa.Instruction, buf *SavedContext)
}

// Device is the simulated GPU.
type Device struct {
	Cfg      Config
	Mem      []uint32
	SMs      []*SM
	now      int64
	memFree  int64 // device-memory bus next-free cycle
	ctxFree  int64 // context save/restore path next-free cycle
	launches []*Launch
	rt       Runtime // attached technique (Hook instrumentation)
	tracer   *Tracer
	rec      *trace.Recorder // structured-event recorder (nil: tracing off)
	Stats    DeviceStats

	// faults is the attached fault injector (nil: every fault path is
	// skipped, so disabled runs behave and cost exactly as before).
	faults *faults.Injector
	// resumeChecker is the installed resume-integrity oracle (nil: off).
	resumeChecker func(w *Warp) error

	// rq indexes every ready warp by hazard-resolved candidate issue
	// time (see readyq.go); Step pops the global minimum instead of
	// rescanning the device.
	rq readyQueue
	// scanMode selects the retained linear-scan reference scheduler
	// (UseReferenceScheduler); the ready queue is then bypassed.
	scanMode bool
	// qerr holds a deferred scheduling error (a ready warp whose stream
	// ran dry at enqueue time); surfaced by the next Step, matching when
	// the scan would have discovered it.
	qerr error
	// migrations counts future->stalled ready-queue migrations
	// (scheduler cost accounting; see issueAdvanced).
	migrations int64

	// Epoch-parallel engine state (see epoch.go). shards is the number
	// of goroutines SMs are partitioned across (1: serial engine);
	// inPhase is true while shards drain concurrently, switching
	// enqueueReady to SM-local updates; blocksPending counts launched
	// blocks not yet placed on an SM (while non-zero, an endpgm can
	// inject fresh warps, so the epoch horizon must bound distances to
	// program end); hookPred is the runtime's optional hook-site
	// predicate; distCache memoizes per-program distance-to-endpgm
	// tables; epochShards is the reused per-shard accumulator slab.
	shards        int
	inPhase       bool
	blocksPending int
	hookPred      HookPredicate
	distCache     map[*isa.Program][]int32
	epochShards   []epochShard
}

// DeviceStats aggregates device-wide counters.
type DeviceStats struct {
	Instructions  int64 // all executed instructions (any mode)
	KernelInstrs  int64 // kernel-mode retirements
	RoutineInstrs int64
	HookInstrs    int64
	GlobalBytes   int64
	LDSBytes      int64
	Cycles        int64
}

// NewDevice builds a device from cfg.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		Cfg:    cfg,
		Mem:    make([]uint32, cfg.GlobalMemBytes/4),
		SMs:    make([]*SM, 0, cfg.NumSMs),
		shards: 1,
	}
	// One slab backs every SM's future heap at full capacity so the hot
	// path never grows a heap slice (the three-index slices keep each
	// SM's region from appending into its neighbor's).
	slab := make([]*Warp, cfg.NumSMs*cfg.MaxWarpsPerSM)
	for i := 0; i < cfg.NumSMs; i++ {
		sm := &SM{ID: i, Dev: d, candT: math.MaxInt64, candLast: math.MaxInt64,
			stats: &d.Stats,
			// The issue path must not allocate: size the operand scratch
			// buffers for the widest instructions up front.
			hazardScratch: make([]isa.Reg, 0, 8),
			defsScratch:   make([]isa.Reg, 0, 8),
		}
		lo, hi := i*cfg.MaxWarpsPerSM, (i+1)*cfg.MaxWarpsPerSM
		sm.future.ws = slab[lo:lo:hi]
		d.SMs = append(d.SMs, sm)
	}
	d.rq.init(d.SMs)
	return d, nil
}

// Now returns the current simulated cycle.
func (d *Device) Now() int64 { return d.now }

// SetShards selects how many goroutines the epoch-parallel engine
// partitions this device's SMs across (see epoch.go). n <= 0 picks an
// automatic width (GOMAXPROCS capped at NumSMs); explicit values are
// capped at NumSMs. The shard count is a pure performance knob: every
// simulation observable — clocks, stats, episode phases, memory,
// golden outputs — is byte-identical at every width, so it may be
// changed freely between runs (call it before stepping). One shard, an
// attached instruction tracer, or the reference scheduler all select
// the serial engine.
func (d *Device) SetShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(d.SMs) {
		n = len(d.SMs)
	}
	if n < 1 {
		n = 1
	}
	d.shards = n
}

// Shards returns the configured shard count.
func (d *Device) Shards() int { return d.shards }

// AttachRecorder installs a structured-event recorder; episode, warp and
// memory-pipeline events are emitted into it with simulated-cycle
// timestamps. nil detaches. Recording is observation only — it never
// alters simulated timing, so traced and untraced runs produce identical
// results.
func (d *Device) AttachRecorder(r *trace.Recorder) { d.rec = r }

// Recorder returns the attached structured-event recorder (nil when
// tracing is off).
func (d *Device) Recorder() *trace.Recorder { return d.rec }

// Micros returns the current simulated time in microseconds.
func (d *Device) Micros() float64 { return d.Cfg.CyclesToMicros(d.now) }

// accessGlobal pushes bytes through the shared device-memory bus starting
// no earlier than start; returns the cycle the data lands. Context
// save/restore traffic (ctxPath) additionally serializes through the
// slow switch-routine path, so its completion is gated by whichever of
// the two resources frees later — switch time tracks context size but
// degrades under bus contention, as the paper observes.
func (d *Device) accessGlobal(start int64, bytes int, ctxPath, isLoad bool) int64 {
	if d.faults != nil {
		// Injected pipeline stalls delay the transaction before it
		// contends for the bus.
		start += d.faults.Stall()
	}
	busDur := int64(math.Ceil(float64(bytes) / d.Cfg.MemBytesPerCycle))
	if busDur < 1 {
		busDur = 1
	}
	d.Stats.GlobalBytes += int64(bytes)
	if !ctxPath {
		txStart := max(start, d.memFree)
		d.memFree = txStart + busDur
		return txStart + busDur + int64(d.Cfg.MemLatency)
	}
	// Context traffic serializes through BOTH resources: it must win bus
	// slots against the other SMs' kernel traffic AND squeeze through the
	// slow switch-routine path — so a busy device slows context switches,
	// exactly the contention effect §V-A reports.
	rate := d.Cfg.CtxBytesPerCycle
	if isLoad && d.Cfg.CtxRestoreFactor > 0 {
		rate *= d.Cfg.CtxRestoreFactor
	}
	ctxDur := int64(math.Ceil(float64(bytes) / rate))
	s := max(start, d.memFree, d.ctxFree)
	d.memFree = s + busDur
	d.ctxFree = s + ctxDur
	complete := s + max(busDur, ctxDur) + int64(d.Cfg.MemLatency)
	if d.rec != nil {
		name := "ctx-save"
		if isLoad {
			name = "ctx-restore"
		}
		d.rec.Emit(trace.Event{Name: name, Cat: trace.CatMem, Ph: trace.PhComplete,
			Cycle: s, Dur: complete - s, SM: -1, Warp: -1, Bytes: int64(bytes)})
	}
	return complete
}

// Occupancy describes how many blocks/warps of a kernel fit on one SM.
type Occupancy struct {
	WarpsPerSM  int
	BlocksPerSM int
	LimitedBy   string
}

// ComputeOccupancy derives the per-SM residency limits for prog with the
// given block shape.
func (d *Device) ComputeOccupancy(prog *isa.Program, warpsPerBlock int) (Occupancy, error) {
	vregBytes := prog.AllocatedVRegs() * 4 * isa.WarpSize
	sregBytes := prog.AllocatedSRegs() * 4
	if vregBytes == 0 {
		return Occupancy{}, fmt.Errorf("sim: kernel %q declares no vector registers", prog.Name)
	}
	limit := d.Cfg.MaxWarpsPerSM
	by := "warp slots"
	if v := d.Cfg.VRegFileBytes / vregBytes; v < limit {
		limit, by = v, "vector registers"
	}
	if sregBytes > 0 {
		if s := d.Cfg.SRegFileBytes / sregBytes; s < limit {
			limit, by = s, "scalar registers"
		}
	}
	blocks := limit / warpsPerBlock
	if prog.LDSBytes > 0 {
		if l := d.Cfg.LDSBytesPerSM / prog.LDSBytes; l < blocks {
			blocks, by = l, "LDS"
		}
	}
	if blocks == 0 {
		return Occupancy{}, fmt.Errorf("sim: kernel %q (block of %d warps) does not fit on an SM (limited by %s)",
			prog.Name, warpsPerBlock, by)
	}
	return Occupancy{WarpsPerSM: blocks * warpsPerBlock, BlocksPerSM: blocks, LimitedBy: by}, nil
}

// LaunchSpec configures a kernel launch.
type LaunchSpec struct {
	Prog          *isa.Program
	NumBlocks     int
	WarpsPerBlock int
	// Setup initializes each warp's registers before it starts (ABI:
	// kernels read their arguments from scalar registers).
	Setup func(w *Warp)
	// SMFilter restricts dispatch to the listed SMs (nil: all).
	SMFilter []int
}

// Launch tracks one kernel grid through execution.
type Launch struct {
	Spec      LaunchSpec
	Dev       *Device
	Occ       Occupancy
	Warps     []*Warp
	blocks    []*blockInfo
	nextBlock int
	doneWarps int
}

type blockInfo struct {
	id     int
	lds    *LDSBlock
	warps  []*Warp
	sm     *SM
	placed bool
	done   int
}

// Launch dispatches a grid. Blocks are placed greedily on allowed SMs up
// to occupancy; remaining blocks wait for finished blocks to free slots.
func (d *Device) Launch(spec LaunchSpec) (*Launch, error) {
	if spec.NumBlocks <= 0 || spec.WarpsPerBlock <= 0 {
		return nil, fmt.Errorf("sim: launch needs positive grid dimensions")
	}
	if err := spec.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	occ, err := d.ComputeOccupancy(spec.Prog, spec.WarpsPerBlock)
	if err != nil {
		return nil, err
	}
	l := &Launch{Spec: spec, Dev: d, Occ: occ,
		Warps:  make([]*Warp, 0, spec.NumBlocks*spec.WarpsPerBlock),
		blocks: make([]*blockInfo, 0, spec.NumBlocks),
	}
	ldsWords := spec.Prog.LDSBytes / 4
	shareBytes := 0
	if spec.Prog.LDSBytes > 0 {
		shareBytes = spec.Prog.LDSBytes / spec.WarpsPerBlock
	}
	wid := 0
	for b := 0; b < spec.NumBlocks; b++ {
		bi := &blockInfo{id: b, lds: &LDSBlock{Data: make([]uint32, ldsWords), BlockID: b},
			warps: make([]*Warp, 0, spec.WarpsPerBlock)}
		for wi := 0; wi < spec.WarpsPerBlock; wi++ {
			w := newWarp(wid, b, wi, spec.Prog, bi.lds)
			w.LDSShareLo = wi * shareBytes
			w.LDSShareHi = (wi + 1) * shareBytes
			w.launch = l
			if spec.Setup != nil {
				spec.Setup(w)
			}
			bi.warps = append(bi.warps, w)
			l.Warps = append(l.Warps, w)
			wid++
		}
		l.blocks = append(l.blocks, bi)
	}
	d.launches = append(d.launches, l)
	d.blocksPending += len(l.blocks)
	d.dispatch(l)
	return l, nil
}

func (l *Launch) allowedSM(sm *SM) bool {
	if l.Spec.SMFilter == nil {
		return true
	}
	for _, id := range l.Spec.SMFilter {
		if id == sm.ID {
			return true
		}
	}
	return false
}

// smUsage tallies the physical resources held by an SM's resident
// (non-swapped-out) warps — across every launch sharing the SM, which
// the per-launch occupancy limit alone cannot see.
type smUsage struct {
	warps     int
	vregBytes int
	sregBytes int
	ldsBytes  int
}

func (sm *SM) usage() smUsage {
	var u smUsage
	var seen map[*blockInfo]bool
	for _, w := range sm.Warps {
		if w.State == WarpPreempted {
			continue // context lives in device memory; slot is free
		}
		u.warps++
		u.vregBytes += w.Prog.AllocatedVRegs() * 4 * isa.WarpSize
		u.sregBytes += w.Prog.AllocatedSRegs() * 4
		if w.Prog.LDSBytes > 0 {
			if seen == nil {
				seen = make(map[*blockInfo]bool)
			}
			if bi := w.launch.blocks[w.BlockID]; !seen[bi] {
				seen[bi] = true
				u.ldsBytes += w.Prog.LDSBytes
			}
		}
	}
	return u
}

// fits reports whether the SM can additionally host addWarps warps with
// the given register/LDS footprint.
func (u smUsage) fits(cfg *Config, addWarps, addVReg, addSReg, addLDS int) bool {
	return u.warps+addWarps <= cfg.MaxWarpsPerSM &&
		u.vregBytes+addVReg <= cfg.VRegFileBytes &&
		u.sregBytes+addSReg <= cfg.SRegFileBytes &&
		u.ldsBytes+addLDS <= cfg.LDSBytesPerSM
}

// CanHostBlock reports whether SM sm currently has physical headroom
// for one block of prog. The scheduler probes it before starting a job
// on an idle SM: residue from other tenants' partially-finished parked
// blocks can crowd an SM so badly that a fresh grid would place zero
// blocks, leaving a launch with nothing resident and no event to ever
// make progress.
func (d *Device) CanHostBlock(sm int, prog *isa.Program, warpsPerBlock int) bool {
	if sm < 0 || sm >= len(d.SMs) {
		return false
	}
	spec := LaunchSpec{Prog: prog, WarpsPerBlock: warpsPerBlock}
	bw, bv, bs, blds := blockFootprint(&spec)
	return d.SMs[sm].usage().fits(&d.Cfg, bw, bv, bs, blds)
}

// CanDisplace reports whether SM sm, once launch victim's live warps
// have saved their contexts, will have room for one block of prog. The
// accounting mirrors the post-save state exactly: the victim's live
// (non-done) warps vanish from the register files and warp slots, and a
// victim block's LDS frees only when no non-victim resident warp —
// typically an already-done peer — still pins it.
func (d *Device) CanDisplace(sm int, victim *Launch, prog *isa.Program, warpsPerBlock int) bool {
	if sm < 0 || sm >= len(d.SMs) {
		return false
	}
	var u smUsage
	var seen map[*blockInfo]bool
	for _, w := range d.SMs[sm].Warps {
		if w.State == WarpPreempted {
			continue
		}
		if w.launch == victim && w.State != WarpDone {
			continue // saved by the displacement
		}
		u.warps++
		u.vregBytes += w.Prog.AllocatedVRegs() * 4 * isa.WarpSize
		u.sregBytes += w.Prog.AllocatedSRegs() * 4
		if w.Prog.LDSBytes > 0 {
			if seen == nil {
				seen = make(map[*blockInfo]bool)
			}
			if bi := w.launch.blocks[w.BlockID]; !seen[bi] {
				seen[bi] = true
				u.ldsBytes += w.Prog.LDSBytes
			}
		}
	}
	spec := LaunchSpec{Prog: prog, WarpsPerBlock: warpsPerBlock}
	bw, bv, bs, blds := blockFootprint(&spec)
	return u.fits(&d.Cfg, bw, bv, bs, blds)
}

// blockFootprint is the physical resource demand of one block of spec.
func blockFootprint(spec *LaunchSpec) (warps, vreg, sreg, lds int) {
	warps = spec.WarpsPerBlock
	vreg = spec.Prog.AllocatedVRegs() * 4 * isa.WarpSize * warps
	sreg = spec.Prog.AllocatedSRegs() * 4 * warps
	lds = spec.Prog.LDSBytes
	return
}

// swappedOut reports whether any of the launch's warps currently sits
// in a saved context. A preempted kernel's block dispatcher is
// suspended with it: growing the grid while the launch is swapped out
// would put its fresh warps live on an SM another tenant now owns, and
// the next preemption sweep there would fold two launches' warps into
// one episode — an episode the per-job scheduler above can only
// attribute to one of them, wedging the other forever.
func (l *Launch) swappedOut() bool {
	for _, w := range l.Warps {
		if w.State == WarpPreempted {
			return true
		}
	}
	return false
}

// dispatch places as many pending blocks as fit. A block needs both a
// free per-launch occupancy slot and physical headroom (warp slots,
// register files, LDS) alongside every other tenant resident on the SM:
// a newcomer cannot land on an SM whose victim warps have not yet saved
// their contexts. A swapped-out launch places nothing — its pending
// blocks wait for the resume-complete redispatch.
func (d *Device) dispatch(l *Launch) {
	if l.nextBlock < len(l.blocks) && l.swappedOut() {
		return
	}
	for l.nextBlock < len(l.blocks) {
		bi := l.blocks[l.nextBlock]
		bw, bv, bs, blds := blockFootprint(&l.Spec)
		var target *SM
		for _, sm := range d.SMs {
			if !l.allowedSM(sm) {
				continue
			}
			if sm.offline && sm.episode != nil && (sm.episode.frozen[l] || !sm.episode.Saved()) {
				// Frozen launches stay barred until the episode finishes.
				// EVERY launch — including the newcomer the SM is being
				// vacated for — must wait for the last context store: a
				// block placed mid-save would issue warps while the
				// preempt signal is still pending and they would be swept
				// into a preemption episode they are no victim of, saved,
				// and never resumed.
				continue
			}
			if sm.blocksOf(l) >= l.Occ.BlocksPerSM {
				continue
			}
			if !sm.usage().fits(&d.Cfg, bw, bv, bs, blds) {
				continue
			}
			if target == nil || sm.residentWarps() < target.residentWarps() {
				target = sm
			}
		}
		if target == nil {
			return
		}
		bi.sm = target
		bi.placed = true
		for _, w := range bi.warps {
			w.SM = target
			w.ReadyAt = d.now
			// qseq freezes the warp's scan position: sm.Warps only ever
			// appends (removals keep relative order), so append order is
			// the reference scheduler's within-SM tie-break.
			w.qseq = target.seqGen
			target.seqGen++
			target.Warps = append(target.Warps, w)
			d.enqueueReady(w)
		}
		l.nextBlock++
		d.blocksPending--
	}
}

// Done reports whether every warp of the launch has retired s_endpgm.
func (l *Launch) Done() bool { return l.doneWarps == len(l.Warps) }

// Step executes the single globally-earliest issuable instruction.
// Returns false when nothing can make progress (all done, or everything
// is blocked/preempted).
func (d *Device) Step() (bool, error) { return d.step(math.MaxInt64) }

// step is Step with a budget limit: when the earliest pending issue
// lies beyond limit, it returns a *BudgetError without committing the
// step (the clock and all warp state are untouched), so RunUntil can
// reject overshoot before it happens instead of reporting it after.
func (d *Device) step(limit int64) (bool, error) {
	if d.scanMode {
		return d.stepScan(limit)
	}
	if d.qerr != nil {
		return false, d.qerr
	}
	// The queue head is the globally earliest issuable warp under the
	// reference scan's (issue time, lastIssued, scan position) order.
	sm := d.rq.sms[0]
	best, bestT := sm.candW, sm.candT
	if best == nil {
		return false, nil
	}
	if bestT > limit {
		return false, &BudgetError{Now: d.now, Next: bestT, Limit: limit}
	}
	sm.dequeue(best)
	if err := sm.issue(best, bestT); err != nil {
		return false, err
	}
	// The issue advanced sm.issueFree (and may have enqueued warps on
	// any SM through barrier releases, dispatch, or episode completion —
	// each of those fixed its own SM's heap position as it happened).
	d.issueAdvanced(sm)
	if best.State == WarpReady {
		d.enqueueReady(best)
	}
	// Stall fast-forward: issuing at the queue head's time jumps the
	// clock over any stall in this one step.
	if bestT > d.now {
		d.now = bestT
	}
	d.Stats.Cycles = d.now
	return true, nil
}

// scanBest is the linear-scan warp selection the ready queue replaced,
// kept verbatim as the reference scheduler's executable specification
// of the issue order (stepScan) and cross-checked against the queue by
// the differential tests.
func (d *Device) scanBest() (best *Warp, bestSM *SM, bestT int64, err error) {
	bestT = int64(math.MaxInt64)
	for _, sm := range d.SMs {
		for _, w := range sm.Warps {
			if w.State != WarpReady {
				continue
			}
			// The hazard-resolved issue time only changes when the warp
			// itself advances, so it is cached between selections.
			if !w.candValid {
				in := w.currentInstr()
				if in == nil {
					return nil, nil, 0, fmt.Errorf("sim: warp %d ran off the end of its stream (mode %d)", w.ID, w.Mode)
				}
				w.candTime = max(w.ReadyAt, w.regReadyAt(sm.hazardRegs(in)))
				w.candValid = true
			}
			t := max(sm.issueFree, w.candTime)
			// Round-robin among same-cycle candidates: prefer the warp
			// that issued least recently so no warp starves.
			if t < bestT || (t == bestT && best != nil && w.lastIssued < best.lastIssued) {
				bestT, best, bestSM = t, w, sm
			}
		}
	}
	return best, bestSM, bestT, nil
}

// stepScan is Step under the reference scheduler (UseReferenceScheduler).
func (d *Device) stepScan(limit int64) (bool, error) {
	best, bestSM, bestT, err := d.scanBest()
	if err != nil {
		return false, err
	}
	if best == nil {
		return false, nil
	}
	if bestT > limit {
		return false, &BudgetError{Now: d.now, Next: bestT, Limit: limit}
	}
	if err := bestSM.issue(best, bestT); err != nil {
		return false, err
	}
	if bestT > d.now {
		d.now = bestT
	}
	d.Stats.Cycles = d.now
	return true, nil
}

// AdvanceTo fast-forwards the clock to cycle (no-op when already past).
// Use it to wait out in-flight traffic when no warp can issue.
func (d *Device) AdvanceTo(cycle int64) {
	if cycle > d.now {
		d.now = cycle
		d.Stats.Cycles = d.now
	}
}

// BudgetError reports a RunUntil cycle budget exceeded: the earliest
// pending issue lies beyond the budget limit. It is raised BEFORE the
// offending step commits, so the clock still reads Now and no state
// changed — a single long stall can no longer silently overshoot the
// budget before being reported.
type BudgetError struct {
	Now   int64 // clock when the check fired (unchanged by the check)
	Next  int64 // cycle of the earliest pending issue
	Limit int64 // last cycle the budget allows (start + maxCycles)
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: cycle budget exceeded: next issue at cycle %d is past limit %d (now %d, overshoot %d cycles)",
		e.Next, e.Limit, e.Now, e.Next-e.Limit)
}

// RunUntil steps until cond is true, no progress is possible, or the
// cycle budget would be exceeded. It returns an error on simulation
// faults, or a *BudgetError — checked before each step commits — when
// the next issue would land past d.now+maxCycles at entry.
//
// Under the epoch-parallel engine (SetShards > 1), cond is only
// evaluated between epochs, so it must be a *boundary* condition: one
// that can first become true at a serially-committed boundary event
// (episode phase transitions, launch completion, deadlock). Every such
// condition is exact — the engine serializes the step that flips it.
// For conditions on the clock itself use RunToCycle / RunUntilBounded,
// which clamp epochs so the crossing step still commits serially.
func (d *Device) RunUntil(cond func() bool, maxCycles int64) error {
	return d.RunUntilBounded(cond, math.MaxInt64, maxCycles)
}

// RunToCycle runs until the clock reaches at least target (or no
// progress / budget exceeded, as RunUntil). Equivalent to
// RunUntil(func() bool { return d.Now() >= target }, maxCycles) on the
// serial engine, and exact under sharding: epochs are clamped below
// target so the step that carries the clock across commits serially.
func (d *Device) RunToCycle(target, maxCycles int64) error {
	return d.RunUntilBounded(func() bool { return d.now >= target }, target, maxCycles)
}

// RunUntilBounded is RunUntil for conditions with a time-based
// component: timeBound must be a cycle no later than the first cycle at
// which any purely time-dependent term of cond can hold (MaxInt64 when
// cond is a pure boundary condition). The epoch engine clamps parallel
// phases below timeBound, so cond is evaluated with the clock stopped
// exactly where the serial engine would have stopped it.
func (d *Device) RunUntilBounded(cond func() bool, timeBound, maxCycles int64) error {
	// Any external condition may observe a single launch completing
	// while others still run, so the epoch engine must fence endpgms
	// (condObservesCompletion); only the nil condition and Run's
	// whole-device form below are exempt.
	return d.runBounded(cond, timeBound, maxCycles, cond != nil)
}

// runBounded is the shared run-loop body. condObservesCompletion tells
// the epoch engine whether cond could first become true at an
// individual launch's final endpgm while other work keeps running — if
// so, phases must stop below every possible endpgm so the clock halts
// exactly where the serial engine's would.
func (d *Device) runBounded(cond func() bool, timeBound, maxCycles int64, condObservesCompletion bool) error {
	limit := d.now + maxCycles
	if d.shards > 1 && !d.scanMode && d.tracer == nil {
		return d.runEpochs(cond, timeBound, limit, condObservesCompletion)
	}
	for {
		if cond != nil && cond() {
			return nil
		}
		progressed, err := d.step(limit)
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
}

// RemoveLaunch drops a fully retired launch from the device's
// bookkeeping so long-running hosts can bound device state — and
// checkpoint size — over an unbounded job stream. The launch must be
// completely done: every block placed and every warp retired. The
// Launch object itself stays valid for the caller's post-mortem reads;
// the device simply stops tracking it.
func (d *Device) RemoveLaunch(l *Launch) error {
	if l.nextBlock < len(l.blocks) || !l.Done() {
		return fmt.Errorf("sim: launch %q still active (%d/%d warps done)",
			l.Spec.Prog.Name, l.doneWarps, len(l.Warps))
	}
	for i, cand := range d.launches {
		if cand == l {
			d.launches = append(d.launches[:i], d.launches[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("sim: launch %q not tracked by this device", l.Spec.Prog.Name)
}

// Run executes until all launches complete (or maxCycles).
func (d *Device) Run(maxCycles int64) error {
	// The whole-device completion condition first holds only after the
	// final pop anywhere on the device, so — unlike a per-launch Done
	// condition — no local pop can be mis-drained past its flip and the
	// epoch engine may run with unfenced endpgms.
	err := d.runBounded(func() bool {
		for _, l := range d.launches {
			if !l.Done() {
				return false
			}
		}
		return true
	}, math.MaxInt64, maxCycles, false)
	if err != nil {
		return err
	}
	for _, l := range d.launches {
		if !l.Done() {
			return fmt.Errorf("sim: deadlock — launch %q stalled with %d/%d warps done",
				l.Spec.Prog.Name, l.doneWarps, len(l.Warps))
		}
	}
	return nil
}

// WriteWords copies words into device memory at byte address addr.
func (d *Device) WriteWords(addr int, words []uint32) error {
	if addr%4 != 0 || addr < 0 || addr/4+len(words) > len(d.Mem) {
		return fmt.Errorf("sim: WriteWords out of range addr=%d len=%d", addr, len(words))
	}
	copy(d.Mem[addr/4:], words)
	return nil
}

// ReadWords copies length words from byte address addr.
func (d *Device) ReadWords(addr, length int) ([]uint32, error) {
	if addr%4 != 0 || addr < 0 || addr/4+length > len(d.Mem) {
		return nil, fmt.Errorf("sim: ReadWords out of range addr=%d len=%d", addr, length)
	}
	out := make([]uint32, length)
	copy(out, d.Mem[addr/4:])
	return out, nil
}
