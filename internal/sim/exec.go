package sim

import (
	"fmt"
	"math"

	"ctxback/internal/isa"
)

// effect reports the non-register consequences of executing one
// instruction; the SM scheduler turns these into timing and state
// transitions.
type effect struct {
	nextPC    int  // -1: fall through
	memBytes  int  // device-memory traffic
	ldsBytes  int  // LDS traffic
	barrier   bool // warp arrived at a barrier
	endpgm    bool
	ctxExit   bool
	ctxResume bool
	resumePC  int
}

// faultError is a simulation fault (bad address, misalignment, ...).
type faultError struct {
	warp *Warp
	in   *isa.Instruction
	msg  string
}

func (e *faultError) Error() string {
	return fmt.Sprintf("sim fault: warp %d pc %d (%s): %s", e.warp.ID, e.warp.PC, e.in, e.msg)
}

func (d *Device) fault(w *Warp, in *isa.Instruction, format string, args ...any) error {
	return &faultError{warp: w, in: in, msg: fmt.Sprintf(format, args...)}
}

// readScalarOperand resolves a scalar-context source (immediates are
// sign-extended from 32 bits).
func (w *Warp) readScalarOperand(o isa.Operand) uint64 {
	if o.IsImm() {
		return uint64(int64(int32(o.Imm)))
	}
	return w.readScalarReg(o.Reg)
}

func (w *Warp) readScalarReg(r isa.Reg) uint64 {
	switch r.Class {
	case isa.RegScalar:
		return w.SRegs[r.Index]
	case isa.RegSpecial:
		switch r.Index {
		case isa.SpecExec:
			return w.Exec
		case isa.SpecVCC:
			return w.VCC
		case isa.SpecSCC:
			if w.SCC {
				return 1
			}
			return 0
		}
	}
	return 0
}

func (w *Warp) writeScalarReg(r isa.Reg, v uint64) {
	switch r.Class {
	case isa.RegScalar:
		w.SRegs[r.Index] = v
	case isa.RegSpecial:
		switch r.Index {
		case isa.SpecExec:
			w.Exec = v
		case isa.SpecVCC:
			w.VCC = v
		case isa.SpecSCC:
			w.SCC = v != 0
		}
	}
}

// readLaneOperand resolves a vector-context source for one lane (scalar
// registers broadcast; immediates are raw 32-bit patterns).
func (w *Warp) readLaneOperand(o isa.Operand, lane int) uint32 {
	if o.IsImm() {
		return o.Imm
	}
	if o.Reg.Class == isa.RegVector {
		return w.VRegs[o.Reg.Index][lane]
	}
	return uint32(w.readScalarReg(o.Reg))
}

// execute runs one instruction functionally and returns its effect.
func (d *Device) execute(w *Warp, in *isa.Instruction) (effect, error) {
	eff := effect{nextPC: -1}
	info := in.Op.Info()

	switch info.Class {
	case isa.ClassScalarALU:
		d.execScalarALU(w, in)
	case isa.ClassVectorALU:
		d.execVectorALU(w, in)
	case isa.ClassBranch:
		taken := false
		switch in.Op {
		case isa.SBranch:
			taken = true
		case isa.SCBranchSCC1:
			taken = w.SCC
		case isa.SCBranchSCC0:
			taken = !w.SCC
		case isa.SCBranchExecZ:
			taken = w.Exec == 0
		case isa.SCBranchExecNZ:
			taken = w.Exec != 0
		}
		if taken {
			eff.nextPC = in.Target
		}
	case isa.ClassSync:
		switch in.Op {
		case isa.SBarrier:
			eff.barrier = true
		case isa.SEndpgm:
			eff.endpgm = true
		}
	case isa.ClassScalarMem, isa.ClassVectorMem, isa.ClassAtomic, isa.ClassLDSMem:
		return d.execMemory(w, in)
	case isa.ClassContext:
		return d.execContext(w, in)
	default:
		return eff, d.fault(w, in, "unimplemented opcode class")
	}
	return eff, nil
}

func (d *Device) execScalarALU(w *Warp, in *isa.Instruction) {
	a := uint64(0)
	b := uint64(0)
	if in.NumSrcs() >= 1 {
		a = w.readScalarOperand(in.Srcs[0])
	}
	if in.NumSrcs() >= 2 {
		b = w.readScalarOperand(in.Srcs[1])
	}
	switch in.Op {
	case isa.SMov:
		w.writeScalarReg(in.Dst, a)
	case isa.SAdd:
		w.writeScalarReg(in.Dst, a+b)
	case isa.SSub:
		w.writeScalarReg(in.Dst, a-b)
	case isa.SMul:
		w.writeScalarReg(in.Dst, a*b)
	case isa.SAnd:
		w.writeScalarReg(in.Dst, a&b)
	case isa.SOr:
		w.writeScalarReg(in.Dst, a|b)
	case isa.SXor:
		w.writeScalarReg(in.Dst, a^b)
	case isa.SNot:
		w.writeScalarReg(in.Dst, ^a)
	case isa.SShl:
		w.writeScalarReg(in.Dst, a<<(b&63))
	case isa.SShr:
		w.writeScalarReg(in.Dst, a>>(b&63))
	case isa.SMin:
		w.writeScalarReg(in.Dst, uint64(min(int64(a), int64(b))))
	case isa.SMax:
		w.writeScalarReg(in.Dst, uint64(max(int64(a), int64(b))))
	case isa.SCmpEq:
		w.SCC = a == b
	case isa.SCmpNe:
		w.SCC = a != b
	case isa.SCmpLt:
		w.SCC = int64(a) < int64(b)
	case isa.SCmpGt:
		w.SCC = int64(a) > int64(b)
	case isa.SCmpLe:
		w.SCC = int64(a) <= int64(b)
	case isa.SCmpGe:
		w.SCC = int64(a) >= int64(b)
	case isa.SSetExec:
		w.Exec = a
	case isa.SGetExec:
		w.writeScalarReg(in.Dst, w.Exec)
	case isa.SAndSaveExecVCC:
		w.writeScalarReg(in.Dst, w.Exec)
		w.Exec &= w.VCC
	case isa.SOrExec:
		w.Exec |= a
	case isa.SGetVCC:
		w.writeScalarReg(in.Dst, w.VCC)
	case isa.SSetVCC:
		w.VCC = a
	}
}

func (d *Device) execVectorALU(w *Warp, in *isa.Instruction) {
	switch in.Op {
	case isa.VReadLane:
		lane := int(in.Imm0)
		w.writeScalarReg(in.Dst, uint64(w.VRegs[in.Srcs[0].Reg.Index][lane]))
		return
	case isa.VWriteLane:
		lane := int(in.Imm0)
		w.VRegs[in.Dst.Index][lane] = uint32(w.readScalarOperand(in.Srcs[0]))
		return
	}

	// Resolve each source once: immediates and scalar registers are
	// uniform across lanes, only vector registers vary. Hoisting this out
	// of the lane loop removes two branches and a register-file decode
	// per lane on the simulator's hottest path.
	var av, bv, cv []uint32
	var au, bu, cu uint32
	n := in.NumSrcs()
	if n >= 1 {
		av, au = w.resolveVectorOperand(in.Srcs[0])
	}
	if n >= 2 {
		bv, bu = w.resolveVectorOperand(in.Srcs[1])
	}
	if n >= 3 {
		cv, cu = w.resolveVectorOperand(in.Srcs[2])
	}
	writesVCC := in.Op.Info().WritesVCC
	var dst []uint32
	if !writesVCC {
		dst = w.VRegs[in.Dst.Index]
		// Fully-active warps (the overwhelmingly common case) take
		// specialized per-op loops with no per-lane mask test, operand
		// branch, or function call.
		if w.Exec == ^uint64(0) && execVALUFast(in.Op, dst, av, bv, au, bu) {
			return
		}
	}
	var newVCC uint64
	for lane := 0; lane < isa.WarpSize; lane++ {
		if w.Exec&(1<<uint(lane)) == 0 {
			continue
		}
		a, b, c := au, bu, cu
		if av != nil {
			a = av[lane]
		}
		if bv != nil {
			b = bv[lane]
		}
		if cv != nil {
			c = cv[lane]
		}
		if writesVCC {
			if vcmpLane(in.Op, a, b) {
				newVCC |= 1 << uint(lane)
			}
			continue
		}
		dst[lane] = valuLane(w, in, lane, a, b, c)
	}
	if writesVCC {
		w.VCC = newVCC
	}
}

// execVALUFast executes the hottest integer vector ops for a fully
// active EXEC mask with tight per-op loops over all lanes — the per-lane
// dispatch (valuLane) is the single most executed call in the simulator,
// and these loops replace it with straight-line slice arithmetic. It
// covers the two dominant operand shapes (vector op vector, vector op
// broadcast); anything else reports false and falls through to the
// generic masked loop. Results are bit-identical to valuLane by
// construction: each arm repeats the same expression.
func execVALUFast(op isa.Op, dst, av, bv []uint32, au, bu uint32) bool {
	dst = dst[:isa.WarpSize:isa.WarpSize]
	switch op {
	case isa.VLaneID:
		for l := range dst {
			dst[l] = uint32(l)
		}
		return true
	case isa.VMov:
		if av != nil {
			copy(dst, av[:isa.WarpSize])
		} else {
			for l := range dst {
				dst[l] = au
			}
		}
		return true
	}
	if av == nil {
		return false
	}
	av = av[:isa.WarpSize]
	if bv != nil {
		bv = bv[:isa.WarpSize]
		switch op {
		case isa.VAdd:
			for l := range dst {
				dst[l] = av[l] + bv[l]
			}
		case isa.VSub:
			for l := range dst {
				dst[l] = av[l] - bv[l]
			}
		case isa.VMul:
			for l := range dst {
				dst[l] = av[l] * bv[l]
			}
		case isa.VAnd:
			for l := range dst {
				dst[l] = av[l] & bv[l]
			}
		case isa.VOr:
			for l := range dst {
				dst[l] = av[l] | bv[l]
			}
		case isa.VXor:
			for l := range dst {
				dst[l] = av[l] ^ bv[l]
			}
		case isa.VShl:
			for l := range dst {
				dst[l] = av[l] << (bv[l] & 31)
			}
		case isa.VShr:
			for l := range dst {
				dst[l] = av[l] >> (bv[l] & 31)
			}
		default:
			return false
		}
		return true
	}
	switch op {
	case isa.VAdd:
		for l := range dst {
			dst[l] = av[l] + bu
		}
	case isa.VSub:
		for l := range dst {
			dst[l] = av[l] - bu
		}
	case isa.VMul:
		for l := range dst {
			dst[l] = av[l] * bu
		}
	case isa.VAnd:
		for l := range dst {
			dst[l] = av[l] & bu
		}
	case isa.VOr:
		for l := range dst {
			dst[l] = av[l] | bu
		}
	case isa.VXor:
		for l := range dst {
			dst[l] = av[l] ^ bu
		}
	case isa.VShl:
		sh := bu & 31
		for l := range dst {
			dst[l] = av[l] << sh
		}
	case isa.VShr:
		sh := bu & 31
		for l := range dst {
			dst[l] = av[l] >> sh
		}
	default:
		return false
	}
	return true
}

// resolveVectorOperand splits a vector-context source into its per-lane
// slice (vector registers) or its lane-uniform value (immediates and
// broadcast scalar registers).
func (w *Warp) resolveVectorOperand(o isa.Operand) ([]uint32, uint32) {
	if o.IsImm() {
		return nil, o.Imm
	}
	if o.Reg.Class == isa.RegVector {
		return w.VRegs[o.Reg.Index], 0
	}
	return nil, uint32(w.readScalarReg(o.Reg))
}

func vcmpLane(op isa.Op, a, b uint32) bool {
	switch op {
	case isa.VCmpEqI:
		return a == b
	case isa.VCmpLtI:
		return int32(a) < int32(b)
	case isa.VCmpGtI:
		return int32(a) > int32(b)
	case isa.VCmpLtF:
		return math.Float32frombits(a) < math.Float32frombits(b)
	case isa.VCmpGtF:
		return math.Float32frombits(a) > math.Float32frombits(b)
	case isa.VCmpLeF:
		return math.Float32frombits(a) <= math.Float32frombits(b)
	}
	return false
}

func valuLane(w *Warp, in *isa.Instruction, lane int, a, b, c uint32) uint32 {
	fa := func() float32 { return math.Float32frombits(a) }
	fb := func() float32 { return math.Float32frombits(b) }
	fc := func() float32 { return math.Float32frombits(c) }
	f := math.Float32bits
	switch in.Op {
	case isa.VMov:
		return a
	case isa.VAdd:
		return a + b
	case isa.VSub:
		return a - b
	case isa.VMul:
		return a * b
	case isa.VMad:
		return a*b + c
	case isa.VAnd:
		return a & b
	case isa.VOr:
		return a | b
	case isa.VXor:
		return a ^ b
	case isa.VNot:
		return ^a
	case isa.VShl:
		return a << (b & 31)
	case isa.VShr:
		return a >> (b & 31)
	case isa.VMin:
		return uint32(min(int32(a), int32(b)))
	case isa.VMax:
		return uint32(max(int32(a), int32(b)))
	case isa.VLaneID:
		return uint32(lane)
	case isa.VAddF:
		return f(fa() + fb())
	case isa.VSubF:
		return f(fa() - fb())
	case isa.VMulF:
		return f(fa() * fb())
	case isa.VMadF:
		return f(fa()*fb() + fc())
	case isa.VMinF:
		return f(float32(math.Min(float64(fa()), float64(fb()))))
	case isa.VMaxF:
		return f(float32(math.Max(float64(fa()), float64(fb()))))
	case isa.VRcpF:
		return f(1 / fa())
	case isa.VSqrtF:
		return f(float32(math.Sqrt(float64(fa()))))
	case isa.VAbsF:
		return f(float32(math.Abs(float64(fa()))))
	case isa.VFloorF:
		return f(float32(math.Floor(float64(fa()))))
	case isa.VCvtI2F:
		return f(float32(int32(a)))
	case isa.VCvtF2I:
		return uint32(int32(fa()))
	case isa.VCndMask:
		if w.VCC&(1<<uint(lane)) != 0 {
			return b
		}
		return a
	}
	return 0
}

func (d *Device) execMemory(w *Warp, in *isa.Instruction) (effect, error) {
	eff := effect{nextPC: -1}
	switch in.Op {
	case isa.SGLoad:
		addr := uint32(w.readScalarOperand(in.Srcs[0])) + uint32(in.Imm0)
		v, err := d.loadGlobal(w, in, addr)
		if err != nil {
			return eff, err
		}
		w.writeScalarReg(in.Dst, uint64(v))
		eff.memBytes = 4
	case isa.SGStore:
		addr := uint32(w.readScalarOperand(in.Srcs[0])) + uint32(in.Imm0)
		if err := d.storeGlobal(w, in, addr, uint32(w.readScalarOperand(in.Srcs[1]))); err != nil {
			return eff, err
		}
		eff.memBytes = 4
	case isa.VGLoad, isa.VGStore, isa.VGAtomicAdd:
		addrV, addrU := w.resolveVectorOperand(in.Srcs[0])
		var valV []uint32
		var valU uint32
		if in.Op != isa.VGLoad {
			valV, valU = w.resolveVectorOperand(in.Srcs[1])
		}
		lanes := 0
		for lane := 0; lane < isa.WarpSize; lane++ {
			if w.Exec&(1<<uint(lane)) == 0 {
				continue
			}
			lanes++
			addr := addrU + uint32(in.Imm0)
			if addrV != nil {
				addr = addrV[lane] + uint32(in.Imm0)
			}
			val := valU
			if valV != nil {
				val = valV[lane]
			}
			switch in.Op {
			case isa.VGLoad:
				v, err := d.loadGlobal(w, in, addr)
				if err != nil {
					return eff, err
				}
				w.VRegs[in.Dst.Index][lane] = v
			case isa.VGStore:
				if err := d.storeGlobal(w, in, addr, val); err != nil {
					return eff, err
				}
			case isa.VGAtomicAdd:
				old, err := d.loadGlobal(w, in, addr)
				if err != nil {
					return eff, err
				}
				if err := d.storeGlobal(w, in, addr, old+val); err != nil {
					return eff, err
				}
			}
		}
		eff.memBytes = max(lanes*4, 32)
		if in.Op == isa.VGAtomicAdd {
			eff.memBytes *= 2 // read + write
		}
	case isa.VLLoad, isa.VLStore:
		addrV, addrU := w.resolveVectorOperand(in.Srcs[0])
		var valV []uint32
		var valU uint32
		if in.Op == isa.VLStore {
			valV, valU = w.resolveVectorOperand(in.Srcs[1])
		}
		lanes := 0
		for lane := 0; lane < isa.WarpSize; lane++ {
			if w.Exec&(1<<uint(lane)) == 0 {
				continue
			}
			lanes++
			addr := addrU + uint32(in.Imm0)
			if addrV != nil {
				addr = addrV[lane] + uint32(in.Imm0)
			}
			idx := int(addr) >> 2
			if addr%4 != 0 || idx < 0 || idx >= len(w.LDS.Data) {
				return eff, d.fault(w, in, "LDS address %#x out of range (lds %d bytes)", addr, len(w.LDS.Data)*4)
			}
			if in.Op == isa.VLLoad {
				w.VRegs[in.Dst.Index][lane] = w.LDS.Data[idx]
			} else {
				val := valU
				if valV != nil {
					val = valV[lane]
				}
				w.LDS.Data[idx] = val
			}
		}
		eff.ldsBytes = lanes * 4
	}
	return eff, nil
}

func (d *Device) loadGlobal(w *Warp, in *isa.Instruction, addr uint32) (uint32, error) {
	idx := int(addr) >> 2
	if addr%4 != 0 || idx < 0 || idx >= len(d.Mem) {
		return 0, d.fault(w, in, "global address %#x out of range", addr)
	}
	return d.Mem[idx], nil
}

func (d *Device) storeGlobal(w *Warp, in *isa.Instruction, addr uint32, v uint32) error {
	idx := int(addr) >> 2
	if addr%4 != 0 || idx < 0 || idx >= len(d.Mem) {
		return d.fault(w, in, "global address %#x out of range", addr)
	}
	d.Mem[idx] = v
	return nil
}

func (d *Device) execContext(w *Warp, in *isa.Instruction) (effect, error) {
	eff := effect{nextPC: -1}
	ctx := w.ctx
	if ctx == nil && in.Op != isa.CtxExit && in.Op != isa.CtxResume {
		return eff, d.fault(w, in, "context op without context buffer")
	}
	slot := in.Imm0
	switch in.Op {
	case isa.CtxSaveV:
		vals := make([]uint32, isa.WarpSize)
		copy(vals, w.VRegs[in.Srcs[0].Reg.Index])
		ctx.VSlots[slot] = vals
		eff.memBytes = 4 * isa.WarpSize
	case isa.CtxLoadV:
		vals, ok := ctx.VSlots[slot]
		if !ok {
			return eff, d.fault(w, in, "context slot v%d never saved", slot)
		}
		copy(w.VRegs[in.Dst.Index], vals)
		eff.memBytes = 4 * isa.WarpSize
	case isa.CtxSaveS:
		ctx.SSlots[slot] = w.readScalarReg(in.Srcs[0].Reg)
		eff.memBytes = 4
	case isa.CtxLoadS:
		v, ok := ctx.SSlots[slot]
		if !ok {
			return eff, d.fault(w, in, "context slot s%d never saved", slot)
		}
		w.writeScalarReg(in.Dst, v)
		eff.memBytes = 4
	case isa.CtxSaveSpec:
		ctx.Specs[slot] = w.readScalarReg(in.Srcs[0].Reg)
		eff.memBytes = in.Srcs[0].Reg.ContextBytes()
	case isa.CtxLoadSpec:
		v, ok := ctx.Specs[slot]
		if !ok {
			return eff, d.fault(w, in, "context slot spec%d never saved", slot)
		}
		w.writeScalarReg(in.Dst, v)
		eff.memBytes = in.Dst.ContextBytes()
	case isa.CtxSaveLDS:
		lo, hi := w.LDSShareLo>>2, w.LDSShareHi>>2
		share := make([]uint32, hi-lo)
		copy(share, w.LDS.Data[lo:hi])
		ctx.LDS = share
		eff.memBytes = (hi - lo) * 4
	case isa.CtxLoadLDS:
		lo, hi := w.LDSShareLo>>2, w.LDSShareHi>>2
		if len(ctx.LDS) != hi-lo {
			return eff, d.fault(w, in, "LDS share size mismatch: saved %d words, share %d", len(ctx.LDS), hi-lo)
		}
		copy(w.LDS.Data[lo:hi], ctx.LDS)
		eff.memBytes = (hi - lo) * 4
	case isa.CtxSavePC:
		ctx.PC = in.Target
		ctx.DynCount = w.DynCount
		ctx.Barriers = w.BarrierCount
		eff.memBytes = 8
	case isa.CtxExit:
		eff.ctxExit = true
	case isa.CtxResume:
		eff.ctxResume = true
		eff.resumePC = in.Target
	}
	return eff, nil
}
