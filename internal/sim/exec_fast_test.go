package sim

import (
	"math/rand"
	"testing"

	"ctxback/internal/isa"
)

// TestExecVALUFastMatchesPerLane differentially checks the fully-active
// fast path against the per-lane reference for every op and operand
// shape the fast path claims, over randomized register contents. The
// fast path promises bit-identical results to valuLane; the generated
// corpus leans on that promise because the golden interpreter models
// only the architectural semantics, not which simulator path ran.
func TestExecVALUFastMatchesPerLane(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fill := func(s []uint32) {
		for i := range s {
			s[i] = rng.Uint32()
		}
	}
	binary := []isa.Op{
		isa.VAdd, isa.VSub, isa.VMul, isa.VAnd,
		isa.VOr, isa.VXor, isa.VShl, isa.VShr,
	}
	w := &Warp{}
	av := make([]uint32, isa.WarpSize)
	bv := make([]uint32, isa.WarpSize)
	fast := make([]uint32, isa.WarpSize)
	ref := make([]uint32, isa.WarpSize)

	check := func(op isa.Op, av, bv []uint32, au, bu uint32) {
		t.Helper()
		fill(fast)
		if !execVALUFast(op, fast, av, bv, au, bu) {
			t.Fatalf("%v (av=%v bv=%v): fast path refused a claimed shape",
				op, av != nil, bv != nil)
		}
		in := &isa.Instruction{Op: op}
		for lane := 0; lane < isa.WarpSize; lane++ {
			a, b := au, bu
			if av != nil {
				a = av[lane]
			}
			if bv != nil {
				b = bv[lane]
			}
			ref[lane] = valuLane(w, in, lane, a, b, 0)
		}
		for lane := range ref {
			if fast[lane] != ref[lane] {
				t.Fatalf("%v lane %d (av=%v bv=%v): fast %#x, per-lane %#x",
					op, lane, av != nil, bv != nil, fast[lane], ref[lane])
			}
		}
	}

	for trial := 0; trial < 64; trial++ {
		fill(av)
		fill(bv)
		au, bu := rng.Uint32(), rng.Uint32()
		check(isa.VLaneID, nil, nil, 0, 0)
		check(isa.VMov, av, nil, 0, 0)
		check(isa.VMov, nil, nil, au, 0)
		for _, op := range binary {
			check(op, av, bv, 0, 0)
			check(op, av, nil, 0, bu)
		}
	}

	// Shapes outside the fast path's claim must fall through to the
	// generic masked loop, never produce a wrong answer silently.
	for _, op := range []isa.Op{isa.VMad, isa.VMin, isa.VAddF, isa.VCndMask} {
		if execVALUFast(op, fast, av, bv, 0, 0) {
			t.Fatalf("%v: fast path claimed an uncovered op", op)
		}
	}
	for _, op := range binary {
		if execVALUFast(op, fast, nil, nil, 1, 2) {
			t.Fatalf("%v: fast path claimed a broadcast-broadcast shape", op)
		}
	}
}
