package sim

import (
	"testing"

	"ctxback/internal/isa"
)

// shareBlock builds one block of n warps over a 256-byte LDS, with the
// launch wiring coverOrphanLDSShares traverses.
func shareBlock(t *testing.T, states []WarpState) []*Warp {
	t.Helper()
	prog := &isa.Program{LDSBytes: 256}
	n := len(states)
	share := prog.LDSBytes / n
	bi := &blockInfo{id: 0, lds: &LDSBlock{Data: make([]uint32, prog.LDSBytes/4)}}
	l := &Launch{blocks: []*blockInfo{bi}}
	for wi, st := range states {
		w := newWarp(wi, 0, wi, prog, bi.lds)
		w.LDSShareLo, w.LDSShareHi = wi*share, (wi+1)*share
		w.State = st
		w.launch = l
		bi.warps = append(bi.warps, w)
	}
	return bi.warps
}

func victims(warps []*Warp) []*Warp {
	var vs []*Warp
	for _, w := range warps {
		if w.State != WarpDone && w.State != WarpPreempted {
			vs = append(vs, w)
		}
	}
	return vs
}

// TestCoverOrphanLDSShares pins the save-coverage re-partition: the
// union of the victims' shares must span the whole block LDS even when
// peers retired before the signal, or the all-saved poison destroys
// shared data (a broadcast vector, a staged tile) that no context would
// ever restore. Regression for MV corruption under frequent preemption.
func TestCoverOrphanLDSShares(t *testing.T) {
	cases := []struct {
		name   string
		states []WarpState
		want   [][2]int // expected (lo, hi) per warp; Done warps keep theirs
	}{
		{"all-victims", []WarpState{WarpReady, WarpReady},
			[][2]int{{0, 128}, {128, 256}}},
		{"peer-done-high", []WarpState{WarpReady, WarpDone},
			[][2]int{{0, 256}, {128, 256}}},
		{"peer-done-low", []WarpState{WarpDone, WarpReady},
			[][2]int{{0, 128}, {0, 256}}},
		{"interleaved", []WarpState{WarpDone, WarpReady, WarpDone, WarpReady},
			[][2]int{{0, 64}, {0, 192}, {128, 192}, {192, 256}}},
		{"tail-orphans", []WarpState{WarpReady, WarpDone, WarpDone, WarpDone},
			[][2]int{{0, 256}, {64, 128}, {128, 192}, {192, 256}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warps := shareBlock(t, tc.states)
			coverOrphanLDSShares(victims(warps))
			for i, w := range warps {
				if w.LDSShareLo != tc.want[i][0] || w.LDSShareHi != tc.want[i][1] {
					t.Errorf("warp %d: share [%d,%d), want [%d,%d)",
						i, w.LDSShareLo, w.LDSShareHi, tc.want[i][0], tc.want[i][1])
				}
			}
			// The victims must jointly cover every byte exactly once.
			covered := make([]int, 256)
			for _, w := range victims(warps) {
				for b := w.LDSShareLo; b < w.LDSShareHi; b++ {
					covered[b]++
				}
			}
			for b, c := range covered {
				if c != 1 {
					t.Fatalf("byte %d covered %d times", b, c)
				}
			}
		})
	}
}

// TestCoverOrphanLDSSharesParked pins that a block holding a parked
// (WarpPreempted) peer is left untouched: that peer restores its own
// share from its own episode, and widening a victim over it would both
// double-restore the range and break the parked context's size check.
func TestCoverOrphanLDSSharesParked(t *testing.T) {
	warps := shareBlock(t, []WarpState{WarpReady, WarpPreempted})
	coverOrphanLDSShares(victims(warps))
	for i, w := range warps {
		lo, hi := i*128, (i+1)*128
		if w.LDSShareLo != lo || w.LDSShareHi != hi {
			t.Errorf("warp %d: share [%d,%d) changed, want launch split [%d,%d)",
				i, w.LDSShareLo, w.LDSShareHi, lo, hi)
		}
	}
}
