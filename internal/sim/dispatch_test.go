package sim

import (
	"testing"
)

// TestDispatchSwappedOutLaunch pins the block-dispatcher suspension of
// a preempted launch: a launch whose warps sit in saved contexts must
// not place pending blocks, no matter how much headroom the SM has.
// Growing a swapped-out grid puts fresh live warps on an SM another
// tenant owns, and the next preemption sweep there folds two launches
// into one episode — which wedges the per-job scheduler above forever.
// Regression for the serve-mode livelock found by the 100k-job churn.
func TestDispatchSwappedOutLaunch(t *testing.T) {
	prog := mustAsm(t, `
.kernel grow
.vregs 2
.sregs 4
  v_mov v0, 1
  s_endpgm
`)
	cfg := TestConfig()
	cfg.NumSMs = 1 // one 8-warp SM: A's block + one of B's two blocks fill it
	d := mustNewDevice(cfg)

	a, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 2, WarpsPerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.nextBlock != 1 {
		t.Fatalf("launch B placed %d blocks at launch, want 1 (SM full)", b.nextBlock)
	}

	// Swap out B's resident block. The freed warp slots would fit B's
	// pending block — but a swapped-out launch must not grow.
	for _, w := range b.blocks[0].warps {
		w.State = WarpPreempted
	}
	d.redispatch()
	if b.nextBlock != 1 {
		t.Fatalf("swapped-out launch grew: %d blocks placed, want 1", b.nextBlock)
	}

	// Control: bring B's warps back and retire A's block the way block
	// completion does (warps done and removed from the SM). Now the
	// same redispatch must place the pending block — proving the
	// swapped-out bar, not some other constraint, blocked it above.
	for _, w := range b.blocks[0].warps {
		w.State = WarpReady
	}
	sm := d.SMs[0]
	kept := sm.Warps[:0]
	for _, w := range sm.Warps {
		if w.launch == a {
			w.State = WarpDone
		} else {
			kept = append(kept, w)
		}
	}
	sm.Warps = kept
	d.redispatch()
	if b.nextBlock != 2 {
		t.Fatalf("resumed launch did not grow: %d blocks placed, want 2", b.nextBlock)
	}
}
