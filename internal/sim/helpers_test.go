package sim

import "ctxback/internal/isa"

// mustNewDevice builds a device from a test-verified static config;
// construction failure is a test bug, so it panics.
func mustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// mustProg finalizes a statically constructed test program.
func mustProg(b *isa.Builder) *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
