package sim

import (
	"strings"
	"testing"
)

func TestTracerRecordsChronologically(t *testing.T) {
	prog := mustAsm(t, `
.kernel tr
.vregs 4
.sregs 16
  v_mov v0, 1
  v_add v1, v0, 2
  v_gstore v2, v1, 0
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	tr := d.EnableTrace(64)
	if _, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("trace out of order at %d", i)
		}
	}
	if !strings.Contains(evs[0].Text, "v_mov") || evs[0].Mode != ModeKernel {
		t.Errorf("first event = %+v", evs[0])
	}
	out := tr.Render()
	if !strings.Contains(out, "kern") || !strings.Contains(out, "v_gstore") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTracerRingWraps(t *testing.T) {
	prog := mustAsm(t, `
.kernel wrap
.vregs 4
.sregs 16
  s_mov s0, 50
loop:
  v_add v0, v0, 1
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  s_endpgm
`)
	d := mustNewDevice(TestConfig())
	tr := d.EnableTrace(16)
	if _, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("ring should hold exactly 16 events, got %d", len(evs))
	}
	// The last event must be the endpgm (nothing newer was dropped).
	if !strings.Contains(evs[len(evs)-1].Text, "s_endpgm") {
		t.Errorf("last event = %q", evs[len(evs)-1].Text)
	}
}

func TestTracerSeesPreemptionRoutines(t *testing.T) {
	const loops, warps = 200, 2
	d := mustNewDevice(TestConfig())
	tr := d.EnableTrace(4096)
	tr.Filter = func(w *Warp) bool { return w.Mode != ModeKernel }
	launchSum(t, d, loops, warps)
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	var saves, restores int
	for _, ev := range tr.Events() {
		switch ev.Mode {
		case ModePreemptRoutine:
			saves++
		case ModeResumeRoutine:
			restores++
		case ModeKernel:
			t.Fatal("filter must exclude kernel events")
		}
	}
	if saves == 0 || restores == 0 {
		t.Errorf("saves=%d restores=%d; routine execution must be visible", saves, restores)
	}
}
