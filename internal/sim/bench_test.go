package sim

import (
	"testing"

	"ctxback/internal/isa"
)

// benchLoopProgram is a mixed-traffic kernel exercising the simulator's
// hot loop: scalar and vector ALU, a data-dependent loop, LDS traffic and
// global loads/stores — the instruction mix the Table I kernels present.
func benchLoopProgram(b *testing.B) *isa.Program {
	b.Helper()
	p, err := isa.Assemble(`
.kernel benchloop
.vregs 8
.sregs 16
.lds 512
  ; s0 = loop count, s1 = out base (bytes)
  v_laneid v0
  v_mov v1, 0
  v_shl v2, v0, 2 !noovf
loop:
  v_add v1, v1, s0
  v_mul v3, v1, 3
  v_and v3, v3, 0x7F
  v_lstore v2, v3, 0
  v_lload v4, v2, 0
  v_add v1, v1, v4
  s_add s2, s2, 7
  s_and s2, s2, 0xFF
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_add v2, v2, s1
  v_gstore v2, v1, 0
  s_endpgm
`)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkSimExecLoop measures the simulator's per-instruction cost on
// the hot execute/issue path. Run with -benchmem: allocs/op is the
// regression gate for the zero-allocation inner loop.
func BenchmarkSimExecLoop(b *testing.B) {
	prog := benchLoopProgram(b)
	var instrs int64
	for b.Loop() {
		d := mustNewDevice(TestConfig())
		_, err := d.Launch(LaunchSpec{
			Prog: prog, NumBlocks: 4, WarpsPerBlock: 2,
			Setup: func(w *Warp) {
				w.SRegs[0] = 64 // loop count
				w.SRegs[1] = uint64(4096 + w.ID*isa.WarpSize*4)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Run(1 << 40); err != nil {
			b.Fatal(err)
		}
		instrs += d.Stats.Instructions
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(instrs)/secs, "sim_instrs/s")
	}
}
