package sim

import (
	"fmt"
	"testing"

	"ctxback/internal/isa"
)

// benchLoopProgram is a mixed-traffic kernel exercising the simulator's
// hot loop: scalar and vector ALU, a data-dependent loop, LDS traffic and
// global loads/stores — the instruction mix the Table I kernels present.
func benchLoopProgram(b testing.TB) *isa.Program {
	b.Helper()
	p, err := isa.Assemble(`
.kernel benchloop
.vregs 8
.sregs 16
.lds 512
  ; s0 = loop count, s1 = out base (bytes)
  v_laneid v0
  v_mov v1, 0
  v_shl v2, v0, 2 !noovf
loop:
  v_add v1, v1, s0
  v_mul v3, v1, 3
  v_and v3, v3, 0x7F
  v_lstore v2, v3, 0
  v_lload v4, v2, 0
  v_add v1, v1, v4
  s_add s2, s2, 7
  s_and s2, s2, 0xFF
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_add v2, v2, s1
  v_gstore v2, v1, 0
  s_endpgm
`)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchOccupancyDevice builds a device with every warp slot of every SM
// filled by two tenants' compute-bound launches — the regime where the
// scheduler's per-instruction warp-selection cost dominates (selection
// work grows with occupancy, not with useful work).
func benchOccupancyDevice(b testing.TB, prog *isa.Program) *Device {
	b.Helper()
	cfg := DefaultConfig()
	cfg.GlobalMemBytes = 4 << 20 // keep per-iteration Mem allocation cheap
	d := mustNewDevice(cfg)
	// Two tenants split the device's warp slots; together they saturate
	// all NumSMs x MaxWarpsPerSM slots.
	perTenant := cfg.NumSMs * cfg.MaxWarpsPerSM / 2 / 2 // blocks of 2 warps
	for tenant := 0; tenant < 2; tenant++ {
		base := 1 << 20
		if tenant == 1 {
			base = 2 << 20
		}
		_, err := d.Launch(LaunchSpec{
			Prog: prog, NumBlocks: perTenant, WarpsPerBlock: 2,
			Setup: func(w *Warp) {
				w.SRegs[0] = 48 // loop count
				w.SRegs[1] = uint64(base + w.ID*isa.WarpSize*4)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// runOccupancyBench drives the saturated device to completion each
// iteration; scan toggles the O(W)-scan reference scheduler so the
// event-driven ready queue can be compared against it on identical work.
func runOccupancyBench(b *testing.B, scan bool) {
	prog := benchLoopProgram(b)
	var instrs int64
	for b.Loop() {
		d := benchOccupancyDevice(b, prog)
		if scan {
			d.UseReferenceScheduler()
		}
		if err := d.Run(1 << 40); err != nil {
			b.Fatal(err)
		}
		instrs += d.Stats.Instructions
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(instrs)/secs, "sim_instrs/s")
	}
}

// BenchmarkStepFullOccupancy measures per-instruction scheduling cost at
// full occupancy (multi-tenant, all SMs saturated) under the default
// event-driven ready queue.
func BenchmarkStepFullOccupancy(b *testing.B) { runOccupancyBench(b, false) }

// BenchmarkStepFullOccupancyReference is the same workload under the
// retained O(SMs x warps) linear-scan reference scheduler — the
// before/after pair BENCH_PR5.json records.
func BenchmarkStepFullOccupancyReference(b *testing.B) { runOccupancyBench(b, true) }

// BenchmarkStepSharded measures the epoch-parallel engine on the exact
// BenchmarkStepFullOccupancy workload at increasing shard counts —
// the scaling curve BENCH_PR6.json records. Shards/1 is the sharded
// engine's serial configuration (identical code path to
// BenchmarkStepFullOccupancy); the 8-shard point is clamped to the
// device's NumSMs by SetShards, so on the default 4-SM config it pins
// the plateau past the useful width.
func BenchmarkStepSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			prog := benchLoopProgram(b)
			var instrs int64
			for b.Loop() {
				d := benchOccupancyDevice(b, prog)
				d.SetShards(shards)
				if err := d.Run(1 << 40); err != nil {
					b.Fatal(err)
				}
				instrs += d.Stats.Instructions
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(instrs)/secs, "sim_instrs/s")
			}
		})
	}
}

// BenchmarkSimExecLoop measures the simulator's per-instruction cost on
// the hot execute/issue path. Run with -benchmem: allocs/op is the
// regression gate for the zero-allocation inner loop.
func BenchmarkSimExecLoop(b *testing.B) {
	prog := benchLoopProgram(b)
	var instrs int64
	for b.Loop() {
		d := mustNewDevice(TestConfig())
		_, err := d.Launch(LaunchSpec{
			Prog: prog, NumBlocks: 4, WarpsPerBlock: 2,
			Setup: func(w *Warp) {
				w.SRegs[0] = 64 // loop count
				w.SRegs[1] = uint64(4096 + w.ID*isa.WarpSize*4)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Run(1 << 40); err != nil {
			b.Fatal(err)
		}
		instrs += d.Stats.Instructions
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(instrs)/secs, "sim_instrs/s")
	}
}
