package sim

import (
	"bytes"
	"errors"
	"testing"

	"ctxback/internal/trace"
)

// TestPreemptDrainedSMReturnsErrDrained pins the drained-SM contract: a
// preemption aimed at an SM with no running kernel warps — here SM 0,
// legitimately empty because the launch is pinned to SM 1 — reports the
// typed ErrDrained sentinel, not a generic error, while work elsewhere on
// the device is still in flight.
func TestPreemptDrainedSMReturnsErrDrained(t *testing.T) {
	d := mustNewDevice(TestConfig())
	l, err := d.Launch(LaunchSpec{
		Prog: sumKernel(t), NumBlocks: 2, WarpsPerBlock: 1,
		Setup: func(w *Warp) {
			w.SRegs[0] = 400
			w.SRegs[1] = 4096
			w.SRegs[2] = uint64(w.ID)
		},
		SMFilter: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if l.Done() {
		t.Fatal("launch finished before the preemption attempt; grow the loop count")
	}
	_, err = d.Preempt(0, naiveRuntime{})
	if err == nil {
		t.Fatal("preempting an empty SM must error")
	}
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("want ErrDrained, got: %v", err)
	}
	// A drained signal must leave the device untouched: the launch still
	// completes and SM 1 is preemptable.
	if _, err := d.Preempt(1, naiveRuntime{}); err != nil {
		t.Fatalf("SM 1 has running warps, preempt failed: %v", err)
	}
}

// TestEpisodePhasesReconcile drives a full preempt/resume round trip with
// a recorder attached and asserts the tentpole invariant: the four-phase
// breakdown sums exactly to the two headline latencies, and the exported
// Chrome trace is valid and cycle-monotone.
func TestEpisodePhasesReconcile(t *testing.T) {
	const loops, warps = 400, 4
	d := mustNewDevice(TestConfig())
	rec := trace.NewRecorder()
	d.AttachRecorder(rec)
	launchSum(t, d, loops, warps)
	if err := d.RunUntil(func() bool { return d.Now() > 300 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	checkSum(t, d, loops, warps)

	ph := ep.Phases()
	for name, v := range map[string]int64{
		"drain": ph.Drain, "save": ph.Save, "restore": ph.Restore, "replay": ph.Replay,
	} {
		if v < 0 {
			t.Errorf("phase %s negative: %d", name, v)
		}
	}
	if got := ph.Drain + ph.Save; got != ep.PreemptLatencyCycles() {
		t.Errorf("drain+save = %d, want PreemptLatencyCycles = %d", got, ep.PreemptLatencyCycles())
	}
	if got := ph.Restore + ph.Replay; got != ep.ResumeCycles() {
		t.Errorf("restore+replay = %d, want ResumeCycles = %d", got, ep.ResumeCycles())
	}
	if ep.Technique() != "naive" {
		t.Errorf("episode technique = %q", ep.Technique())
	}

	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("recorder captured no events")
	}
	var sawSignal, sawResume, sawMem, sawWarpSave int
	for i, ev := range evs {
		if i > 0 && ev.Cycle < evs[i-1].Cycle {
			t.Fatalf("events not cycle-monotone at %d: %+v", i, ev)
		}
		switch {
		case ev.Name == "preempt-signal":
			sawSignal++
		case ev.Name == "resume-start":
			sawResume++
		case ev.Cat == trace.CatMem:
			sawMem++
		case ev.Cat == trace.CatWarp && ev.Name == "save":
			sawWarpSave++
		}
	}
	if sawSignal != 1 || sawResume != 1 {
		t.Errorf("signal/resume instants = %d/%d, want 1/1", sawSignal, sawResume)
	}
	if sawMem == 0 {
		t.Error("no context-path memory events recorded")
	}
	if want := len(ep.Victims); sawWarpSave != want {
		t.Errorf("warp save spans = %d, want %d (one per victim)", sawWarpSave, want)
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if n, err := trace.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	} else if n != len(evs) {
		t.Errorf("chrome trace has %d events, recorder has %d", n, len(evs))
	}
}

// TestTracingDoesNotPerturbSimulation runs the identical scenario with
// and without a recorder and requires bit-identical simulation results —
// the zero-overhead-when-disabled contract's stronger sibling: recording
// is observation only.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	const loops, warps = 300, 4
	run := func(withRec bool) (*Device, *Episode) {
		d := mustNewDevice(TestConfig())
		if withRec {
			d.AttachRecorder(trace.NewRecorder())
		}
		launchSum(t, d, loops, warps)
		if err := d.RunUntil(func() bool { return d.Now() > 300 }, 1_000_000); err != nil {
			t.Fatal(err)
		}
		ep, err := d.Preempt(0, naiveRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
			t.Fatal(err)
		}
		if err := d.Resume(ep); err != nil {
			t.Fatal(err)
		}
		if err := d.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return d, ep
	}
	dOff, epOff := run(false)
	dOn, epOn := run(true)
	if dOff.Now() != dOn.Now() {
		t.Errorf("final cycle differs: off=%d on=%d", dOff.Now(), dOn.Now())
	}
	if dOff.Stats != dOn.Stats {
		t.Errorf("device stats differ:\noff: %+v\non:  %+v", dOff.Stats, dOn.Stats)
	}
	if epOff.PreemptLatencyCycles() != epOn.PreemptLatencyCycles() ||
		epOff.ResumeCycles() != epOn.ResumeCycles() {
		t.Errorf("episode latencies differ: off=(%d,%d) on=(%d,%d)",
			epOff.PreemptLatencyCycles(), epOff.ResumeCycles(),
			epOn.PreemptLatencyCycles(), epOn.ResumeCycles())
	}
	if !bytes.Equal(memBytes(dOff), memBytes(dOn)) {
		t.Error("device memory differs between traced and untraced runs")
	}
	if epOff.Phases() != epOn.Phases() {
		t.Errorf("phase breakdowns differ: off=%+v on=%+v", epOff.Phases(), epOn.Phases())
	}
}

func memBytes(d *Device) []byte {
	out := make([]byte, 0, len(d.Mem)*4)
	for _, w := range d.Mem {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}
