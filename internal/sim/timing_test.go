package sim

import (
	"testing"

	"ctxback/internal/isa"
)

func TestAdvanceTo(t *testing.T) {
	d := mustNewDevice(TestConfig())
	d.AdvanceTo(1000)
	if d.Now() != 1000 {
		t.Errorf("Now = %d", d.Now())
	}
	d.AdvanceTo(500) // never goes backwards
	if d.Now() != 1000 {
		t.Errorf("AdvanceTo went backwards: %d", d.Now())
	}
}

// The context path must be far slower than the main bus: a context save
// of N bytes takes ~N/CtxBytesPerCycle while a kernel store of the same
// size rides the fast bus.
func TestContextPathSlowerThanBus(t *testing.T) {
	cfg := TestConfig()
	d := mustNewDevice(cfg)
	busDone := d.accessGlobal(0, 4096, false, false)
	d2 := mustNewDevice(cfg)
	ctxDone := d2.accessGlobal(0, 4096, true, false)
	if ctxDone <= busDone {
		t.Errorf("context path (%d) must be slower than the bus (%d)", ctxDone, busDone)
	}
	wantMin := int64(float64(4096)/cfg.CtxBytesPerCycle) + int64(cfg.MemLatency)
	if ctxDone < wantMin {
		t.Errorf("context save of 4 KB done at %d, want >= %d", ctxDone, wantMin)
	}
}

// Restores ride the context path faster than saves (paper: resume is
// shorter than preemption).
func TestContextRestoreFasterThanSave(t *testing.T) {
	cfg := TestConfig()
	save := mustNewDevice(cfg).accessGlobal(0, 1<<16, true, false)
	load := mustNewDevice(cfg).accessGlobal(0, 1<<16, true, true)
	if load >= save {
		t.Errorf("restore (%d) must be faster than save (%d)", load, save)
	}
}

// Context traffic also occupies the shared bus, so heavy kernel traffic
// slows a context switch (the paper's contention observation).
func TestContextPathContention(t *testing.T) {
	cfg := TestConfig()
	quiet := mustNewDevice(cfg)
	quietDone := quiet.accessGlobal(0, 1024, true, false)

	busy := mustNewDevice(cfg)
	// Saturate the bus first.
	for i := 0; i < 64; i++ {
		busy.accessGlobal(0, 1<<16, false, false)
	}
	busyDone := busy.accessGlobal(0, 1024, true, false)
	if busyDone <= quietDone {
		t.Errorf("contended switch (%d) must be slower than quiet (%d)", busyDone, quietDone)
	}
}

func TestPreemptLatencyScalesWithContext(t *testing.T) {
	// Two kernels differing only in register footprint: the bigger
	// context must take proportionally longer to save under BASELINE
	// semantics (naiveRuntime saves every register).
	mk := func(nregs int) *isa.Program {
		b := isa.NewBuilder("ctx", nregs, 16, 0)
		b.I(isa.SMov, isa.R(isa.S(0)), isa.Imm(5000))
		b.Label("loop")
		b.I(isa.VAdd, isa.R(isa.V(0)), isa.R(isa.V(0)), isa.Imm(1))
		b.I(isa.SSub, isa.R(isa.S(0)), isa.R(isa.S(0)), isa.Imm(1))
		b.I(isa.SCmpGt, isa.R(isa.S(0)), isa.Imm(0))
		b.Branch(isa.SCBranchSCC1, "loop")
		b.I(isa.SEndpgm)
		return mustProg(b)
	}
	measure := func(nregs int) int64 {
		d := mustNewDevice(TestConfig())
		if _, err := d.Launch(LaunchSpec{Prog: mk(nregs), NumBlocks: 1, WarpsPerBlock: 1}); err != nil {
			t.Fatal(err)
		}
		if err := d.RunUntil(func() bool { return d.Now() > 100 }, 1<<30); err != nil {
			t.Fatal(err)
		}
		ep, err := d.Preempt(0, naiveRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.RunUntil(ep.Saved, 1<<30); err != nil {
			t.Fatal(err)
		}
		return ep.PreemptLatencyCycles()
	}
	small, big := measure(8), measure(32)
	if big < small*2 {
		t.Errorf("32-reg context latency (%d) should be well above 8-reg (%d)", big, small)
	}
}

func TestEpisodeSavedBytesMatchContext(t *testing.T) {
	prog := sumKernelForBytes(t)
	d := mustNewDevice(TestConfig())
	if _, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1, Setup: func(w *Warp) {
		w.SRegs[0] = 500
	}}); err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(func() bool { return d.Now() > 200 }, 1<<30); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 1<<30); err != nil {
		t.Fatal(err)
	}
	// naiveRuntime saves the declared registers + exec/vcc/scc + pc.
	want := int64(prog.NumVRegs*4*isa.WarpSize + prog.NumSRegs*4 + 8 + 8 + 4 + 8)
	if got := ep.SavedBytes(); got != want {
		t.Errorf("SavedBytes = %d, want %d", got, want)
	}
}

func sumKernelForBytes(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("bytes", 6, 18, 0)
	b.Label("loop")
	b.I(isa.VAdd, isa.R(isa.V(1)), isa.R(isa.V(1)), isa.Imm(3))
	b.I(isa.SSub, isa.R(isa.S(0)), isa.R(isa.S(0)), isa.Imm(1))
	b.I(isa.SCmpGt, isa.R(isa.S(0)), isa.Imm(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	return mustProg(b)
}
