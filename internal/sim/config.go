// Package sim implements a cycle-approximate SIMT GPU simulator: SMs with
// warp slots, a scoreboarded round-robin issue model, LDS, and a shared
// device-memory pipeline with latency, bandwidth and cross-SM contention.
// It executes isa.Programs functionally (so results can be verified
// against golden outputs) while accounting simulated cycles, and hosts the
// preemption engine that the techniques in internal/preempt plug into.
package sim

import "fmt"

// Config describes the modeled GPU. DefaultConfig approximates the AMD
// Radeon VII parameters the paper reports (§II-A, §V).
type Config struct {
	NumSMs        int // streaming multiprocessors (CUs)
	MaxWarpsPerSM int // hardware warp-slot limit per SM

	VRegFileBytes int // per-SM vector register file (256 KB on Vega)
	SRegFileBytes int // per-SM scalar register file (12.5 KB)
	LDSBytesPerSM int // per-SM shared memory (64 KB)

	ClockGHz float64 // used only to convert cycles to microseconds

	// Device (global) memory timing.
	MemLatency       int     // cycles from issue to data return
	MemBytesPerCycle float64 // device-wide bandwidth shared by all SMs
	// CtxBytesPerCycle is the throughput of the context save/restore
	// path. The driver-style switch routines serialize register
	// traffic far below peak DRAM bandwidth (the paper's Table I shows
	// ~100-300 us for ~100-250 KB contexts); context traffic also crosses
	// the shared bus, so it slows further under contention.
	CtxBytesPerCycle float64
	// CtxRestoreFactor speeds up restores relative to saves (the paper
	// observes resume is shorter than preemption thanks to better memory
	// latency hiding on the load path).
	CtxRestoreFactor float64

	// LDS timing (per SM, private pipeline).
	LDSLatency       int
	LDSBytesPerCycle float64

	GlobalMemBytes int // size of simulated device memory
}

// DefaultConfig returns the Radeon-VII-like model used by the evaluation
// harness. MemBytesPerCycle is calibrated so that a liveness-blind
// full-SM context save lands in the paper's 75-330 µs band (Table I).
func DefaultConfig() Config {
	return Config{
		NumSMs:           4,
		MaxWarpsPerSM:    40,
		VRegFileBytes:    256 << 10,
		SRegFileBytes:    12800,
		LDSBytesPerSM:    64 << 10,
		ClockGHz:         1.75,
		MemLatency:       400,
		MemBytesPerCycle: 512,
		CtxBytesPerCycle: 0.8,
		CtxRestoreFactor: 1.35,
		LDSLatency:       24,
		LDSBytesPerCycle: 128,
		GlobalMemBytes:   256 << 20,
	}
}

// TestConfig returns a small, fast model for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.NumSMs = 2
	c.MaxWarpsPerSM = 8
	c.GlobalMemBytes = 1 << 20
	c.MemLatency = 40
	c.MemBytesPerCycle = 64
	c.CtxBytesPerCycle = 4
	c.CtxRestoreFactor = 1.35
	return c
}

// Validate checks the configuration for usability.
func (c *Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("sim: NumSMs must be positive")
	case c.MaxWarpsPerSM <= 0:
		return fmt.Errorf("sim: MaxWarpsPerSM must be positive")
	case c.VRegFileBytes <= 0 || c.SRegFileBytes <= 0:
		return fmt.Errorf("sim: register files must be positive")
	case c.ClockGHz <= 0:
		return fmt.Errorf("sim: ClockGHz must be positive")
	case c.MemLatency < 0 || c.MemBytesPerCycle <= 0 || c.CtxBytesPerCycle <= 0:
		return fmt.Errorf("sim: invalid memory timing")
	case c.GlobalMemBytes <= 0 || c.GlobalMemBytes%4 != 0:
		return fmt.Errorf("sim: GlobalMemBytes must be a positive multiple of 4")
	}
	return nil
}

// CyclesToMicros converts simulated cycles to microseconds.
func (c *Config) CyclesToMicros(cycles int64) float64 {
	return float64(cycles) / (c.ClockGHz * 1e3)
}
