package sim

import (
	"strings"
	"testing"

	"ctxback/internal/isa"
)

// launchSumAt places a sumKernel grid on the given SMs writing its
// output at byte address outBase — two tenants with different bases can
// share one device without clobbering each other.
func launchSumAt(t *testing.T, d *Device, loops, numWarps, outBase int, sms []int) *Launch {
	t.Helper()
	l, err := d.Launch(LaunchSpec{
		Prog: sumKernel(t), NumBlocks: numWarps, WarpsPerBlock: 1, SMFilter: sms,
		Setup: func(w *Warp) {
			w.SRegs[0] = uint64(loops)
			w.SRegs[1] = uint64(outBase)
			w.SRegs[2] = uint64(w.ID)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func checkSumAt(t *testing.T, d *Device, loops, numWarps, outBase int, tenant string) {
	t.Helper()
	want := uint32(loops * (loops + 1) / 2)
	for wid := 0; wid < numWarps; wid++ {
		for l := 0; l < isa.WarpSize; l++ {
			got := d.Mem[outBase/4+wid*isa.WarpSize+l]
			if got != want+uint32(l) {
				t.Fatalf("%s: warp %d lane %d: got %d, want %d", tenant, wid, l, got, want+uint32(l))
			}
		}
	}
}

// TestPreemptWhileResumingRejected pins the episode-lifecycle contract:
// an SM whose victims are mid-resume has no consistent cut point, so a
// new preemption signal must be rejected (the scheduler retries once the
// resume completes).
func TestPreemptWhileResumingRejected(t *testing.T) {
	d := mustNewDevice(TestConfig())
	l := launchSumAt(t, d, 400, 2, 4096, nil)
	if err := d.RunUntil(func() bool { return d.Now() > 300 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(ep.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(ep); err != nil {
		t.Fatal(err)
	}
	if ep.Finished() {
		t.Fatal("episode finished instantly; resume routines should take cycles")
	}
	if _, err := d.Preempt(0, naiveRuntime{}); err == nil {
		t.Error("preempt during resume must error")
	} else if !strings.Contains(err.Error(), "mid-resume") {
		t.Errorf("want a mid-resume rejection, got: %v", err)
	}
	if err := d.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Done() {
		t.Fatal("launch never completed")
	}
	checkSumAt(t, d, 400, 2, 4096, "tenant")
}

// TestBackToBackPreemptionsDifferentTenants drives the full multi-tenant
// episode chain on one SM: tenant A is preempted and parked, tenant B is
// launched onto the vacated SM while A's contexts are still being saved
// (exercising the save-complete redispatch), then B itself is preempted
// by a third arrival. Both parked episodes resume in turn and both
// tenants' outputs must verify.
func TestBackToBackPreemptionsDifferentTenants(t *testing.T) {
	const loops = 400
	d := mustNewDevice(TestConfig())
	// Each tenant fills every warp slot of SM 0 (MaxWarpsPerSM in
	// TestConfig): a newcomer physically cannot place until the victims'
	// contexts are saved and their slots released.
	warps := d.Cfg.MaxWarpsPerSM
	la := launchSumAt(t, d, loops, warps, 4096, []int{0})
	if err := d.RunUntil(func() bool { return d.Now() > 300 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	epA, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	// Launch tenant B onto SM 0 while A is still draining/saving: its
	// blocks must place as soon as the last context store lands.
	lb := launchSumAt(t, d, loops, warps, 8192, []int{0})
	if len(lb.Warps) == 0 {
		t.Fatal("tenant B has no warps")
	}
	if lb.Warps[0].SM != nil {
		t.Fatal("tenant B placed before the SM was vacated")
	}
	// Resuming A while B's episode-to-be owner SM is still mid-save of A
	// is the normal already-active error; nothing to check here yet.
	if err := d.RunUntil(epA.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if !epA.Parked() {
		t.Fatal("episode A should be parked after save, before resume")
	}
	if lb.Warps[0].SM == nil {
		t.Fatal("tenant B not placed after the SM was vacated (save-complete redispatch missing)")
	}
	// Let B run a little, then preempt it — a second episode on the same
	// SM while A's episode is parked.
	if err := d.RunUntil(func() bool { return lb.Warps[0].DynCount > 20 }, 10_000_000); err != nil {
		t.Fatal(err)
	}
	epB, err := d.Preempt(0, naiveRuntime{})
	if err != nil {
		t.Fatalf("second preemption of a parked SM must be allowed: %v", err)
	}
	for _, w := range epB.Victims {
		if w.launch != lb {
			t.Fatalf("episode B's victims must be tenant B's warps, got warp %d of tenant A", w.ID)
		}
	}
	// While B is being saved, A cannot resume — the SM is busy.
	if err := d.Resume(epA); err == nil {
		t.Error("resume of parked episode while another episode is saving must error")
	}
	if err := d.RunUntil(epB.Saved, 10_000_000); err != nil {
		t.Fatal(err)
	}
	// Two parked episodes now share the SM's history. Resume them in
	// arrival order: A first, then B once A's resume completes.
	if err := d.Resume(epA); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(epB); err == nil {
		t.Error("resume while another episode's resume is in flight must error")
	}
	if err := d.RunUntil(epA.Finished, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.RunUntil(la.Done, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(epB); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if !la.Done() || !lb.Done() {
		t.Fatalf("tenants incomplete: A done=%v B done=%v", la.Done(), lb.Done())
	}
	checkSumAt(t, d, loops, warps, 4096, "tenant A")
	checkSumAt(t, d, loops, warps, 8192, "tenant B")
}
