package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ctxback/internal/isa"
)

// TestRevertRoundTripQuick executes random revertible instructions on
// real register values and checks that running the generated inverse
// recovers the overwritten register exactly — the dynamic contract
// behind instruction reverting (paper §III-C).
func TestRevertRoundTripQuick(t *testing.T) {
	ops := []isa.Op{isa.VAdd, isa.VSub, isa.VXor, isa.SAdd, isa.SSub, isa.SXor}
	f := func(a, b uint32, opIdx uint8, pos bool) bool {
		op := ops[int(opIdx)%len(ops)]
		scalar := op == isa.SAdd || op == isa.SSub || op == isa.SXor
		var dst, other isa.Reg
		if scalar {
			dst, other = isa.S(0), isa.S(1)
		} else {
			dst, other = isa.V(0), isa.V(1)
		}
		// r' = op(r, x) or op(x, r).
		srcs := [isa.MaxSrcs]isa.Operand{isa.R(dst), isa.R(other)}
		if pos {
			srcs = [isa.MaxSrcs]isa.Operand{isa.R(other), isa.R(dst)}
		}
		in := isa.Instruction{Op: op, Dst: dst, Srcs: srcs}
		rev, ok := in.Revertible()
		if !ok {
			t.Fatalf("%s must be revertible", in.String())
		}

		prog := &isa.Program{Name: "rt", NumVRegs: 2, NumSRegs: 16,
			Instrs: []isa.Instruction{{Op: isa.SEndpgm}}}
		d := mustNewDevice(TestConfig())
		l, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1})
		if err != nil {
			t.Fatal(err)
		}
		w := l.Warps[0]
		if scalar {
			w.SRegs[0], w.SRegs[1] = uint64(a), uint64(b)
		} else {
			for lane := 0; lane < isa.WarpSize; lane++ {
				w.VRegs[0][lane] = a + uint32(lane)
				w.VRegs[1][lane] = b ^ uint32(lane*7)
			}
		}
		before := snapshotReg(w, dst)
		if _, err := d.execute(w, &in); err != nil {
			t.Fatal(err)
		}
		if _, err := d.execute(w, &rev); err != nil {
			t.Fatal(err)
		}
		after := snapshotReg(w, dst)
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func snapshotReg(w *Warp, r isa.Reg) []uint64 {
	if r.IsScalar() {
		return []uint64{w.SRegs[r.Index]}
	}
	out := make([]uint64, isa.WarpSize)
	for lane := range out {
		out[lane] = uint64(w.VRegs[r.Index][lane])
	}
	return out
}

// TestShiftRevertRoundTrip checks the NoOverflow-gated shift inverse on
// values that genuinely do not overflow.
func TestShiftRevertRoundTrip(t *testing.T) {
	in := isa.Instruction{Op: isa.VShl, Dst: isa.V(0),
		Srcs: [isa.MaxSrcs]isa.Operand{isa.R(isa.V(0)), isa.Imm(4)}, NoOverflow: true}
	rev, ok := in.Revertible()
	if !ok {
		t.Fatal("shl !noovf must be revertible")
	}
	prog := &isa.Program{Name: "sh", NumVRegs: 1, NumSRegs: 16,
		Instrs: []isa.Instruction{{Op: isa.SEndpgm}}}
	d := mustNewDevice(TestConfig())
	l, err := d.Launch(LaunchSpec{Prog: prog, NumBlocks: 1, WarpsPerBlock: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := l.Warps[0]
	for lane := 0; lane < isa.WarpSize; lane++ {
		w.VRegs[0][lane] = uint32(lane * 1000) // < 2^28: shift by 4 is exact
	}
	if _, err := d.execute(w, &in); err != nil {
		t.Fatal(err)
	}
	if _, err := d.execute(w, &rev); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < isa.WarpSize; lane++ {
		if w.VRegs[0][lane] != uint32(lane*1000) {
			t.Fatalf("lane %d: %d", lane, w.VRegs[0][lane])
		}
	}
}
