package sim

import (
	"fmt"
	"math"
)

// Event-driven warp scheduler.
//
// Device.Step used to rescan every warp of every SM per issued
// instruction to find the globally earliest issuable one — O(SMs x
// warps) per instruction, so simulation cost grew with *occupancy*
// rather than with work. The structures here index the same selection so
// each issue costs O(1) in the common case and O(log warps) worst case:
//
//   - Per SM, ready warps live in one of two structures keyed by their
//     hazard-resolved candidate issue time (candTime, derived exactly as
//     the scan derived it):
//       stalled — candTime <= sm.issueFree: the warp is gated by the
//                 issue port, its effective issue time IS issueFree, so
//                 only the round-robin order (lastIssued, qseq) matters.
//                 Kept as an intrusive doubly-linked list sorted by that
//                 order: the head pops in O(1), and the two hot inserts
//                 are O(1) — a just-issued warp re-enters with the
//                 largest lastIssued (tail append), and a warp migrating
//                 from future inserts within its short hazard latency of
//                 the tail.
//       future  — candTime >  sm.issueFree: the warp is gated by its
//                 own hazards, ordered by (candTime, lastIssued, qseq)
//                 in a small binary min-heap (it only holds warps inside
//                 their hazard shadow, a handful at saturation).
//     qseq is the warp's position in sm.Warps at append time, making the
//     final tie-break identical to the scan's first-in-scan-order
//     preference.
//   - Device-wide, a heap of the SMs (fixed membership — an SM with no
//     ready warp carries a +inf sentinel key) orders each SM's cached
//     candidate key by (effective issue time, lastIssued, SM id) — again
//     the scan's total order, because the scan visited SMs in id order
//     and only replaced its best on a strict improvement. The key is
//     cached as plain scalars on the SM (candT, candLast) so sifting
//     compares integers instead of re-deriving candidates.
//
// Warps enter or move in the queue only on the events that can change
// their candidate time: instruction issue, barrier release, a preempt
// signal freeing barrier-parked victims, resume re-materialization, and
// block dispatch — all funneled through Device.enqueueReady. issueFree
// contention is resolved lazily by construction: an issue advances
// issueFree (the only event that does), and Device.issueAdvanced then
// migrates the newly port-gated future warps into the stalled set, so no
// per-warp re-keying cascade ever happens.
//
// The retained linear scan (Device.stepScan) is the executable
// specification of this order; UseReferenceScheduler switches a device
// to it and the differential tests pin the two schedulers to
// instruction-identical behavior.

// Warp ready-queue membership markers.
const (
	qheapNone uint8 = iota
	qheapStalled
	qheapFuture
)

// stalledBefore is the round-robin order of the stalled list: least
// recently issued first, scan position (qseq) breaking ties.
func stalledBefore(a, b *Warp) bool {
	if a.lastIssued != b.lastIssued {
		return a.lastIssued < b.lastIssued
	}
	return a.qseq < b.qseq
}

// stalledInsert links w into the sorted stalled list. The walk starts at
// the tail because both hot producers insert at or near it: a re-enqueued
// just-issued warp has the SM's newest lastIssued (pure tail append), and
// a warp migrating out of the future heap issued only its hazard latency
// ago. Cold producers (barrier release, resume, dispatch) may walk
// further, but they are per-episode events, not per-instruction ones.
func (sm *SM) stalledInsert(w *Warp) {
	w.qheap = qheapStalled
	at := sm.stalledTail
	for at != nil && stalledBefore(w, at) {
		at = at.qprev
	}
	if at == nil { // new head
		w.qprev = nil
		w.qnext = sm.stalledHead
		if sm.stalledHead != nil {
			sm.stalledHead.qprev = w
		} else {
			sm.stalledTail = w
		}
		sm.stalledHead = w
		return
	}
	w.qprev = at
	w.qnext = at.qnext
	if at.qnext != nil {
		at.qnext.qprev = w
	} else {
		sm.stalledTail = w
	}
	at.qnext = w
}

// stalledRemove unlinks w from the stalled list in O(1).
func (sm *SM) stalledRemove(w *Warp) {
	if w.qprev != nil {
		w.qprev.qnext = w.qnext
	} else {
		sm.stalledHead = w.qnext
	}
	if w.qnext != nil {
		w.qnext.qprev = w.qprev
	} else {
		sm.stalledTail = w.qprev
	}
	w.qprev, w.qnext = nil, nil
	w.qheap = qheapNone
}

// warpHeap is a binary min-heap over (candTime, lastIssued, qseq) with
// intrusive position tracking (Warp.qidx) so arbitrary entries remove in
// O(log n). It backs the future set only; the stalled set is a list.
type warpHeap struct {
	ws []*Warp
}

func (h *warpHeap) less(a, b *Warp) bool {
	if a.candTime != b.candTime {
		return a.candTime < b.candTime
	}
	if a.lastIssued != b.lastIssued {
		return a.lastIssued < b.lastIssued
	}
	return a.qseq < b.qseq
}

func (h *warpHeap) push(w *Warp) {
	w.qheap = qheapFuture
	w.qidx = len(h.ws)
	h.ws = append(h.ws, w)
	h.up(w.qidx)
}

// popRoot removes and returns the minimum entry.
func (h *warpHeap) popRoot() *Warp { return h.removeAt(0) }

// removeAt deletes the entry at index i and returns it.
func (h *warpHeap) removeAt(i int) *Warp {
	w := h.ws[i]
	last := len(h.ws) - 1
	if i != last {
		h.swap(i, last)
	}
	h.ws[last] = nil
	h.ws = h.ws[:last]
	if i != last {
		h.down(i)
		h.up(i)
	}
	w.qheap = qheapNone
	return w
}

func (h *warpHeap) swap(i, j int) {
	h.ws[i], h.ws[j] = h.ws[j], h.ws[i]
	h.ws[i].qidx = i
	h.ws[j].qidx = j
}

func (h *warpHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.ws[i], h.ws[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *warpHeap) down(i int) {
	n := len(h.ws)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && h.less(h.ws[r], h.ws[c]) {
			c = r
		}
		if !h.less(h.ws[c], h.ws[i]) {
			return
		}
		h.swap(i, c)
		i = c
	}
}

// refreshCand recomputes the SM's cached candidate and device-heap key.
// A stalled warp issues the moment the port frees (issueFree); a future
// warp issues at its own candTime, which the stalled/future invariant
// guarantees is later than issueFree — so a non-empty stalled set always
// wins. An SM with no ready warp carries +inf so it sinks to the bottom
// of the device heap without leaving it.
func (sm *SM) refreshCand() {
	if w := sm.stalledHead; w != nil {
		sm.candW, sm.candT, sm.candLast = w, sm.issueFree, w.lastIssued
		return
	}
	if len(sm.future.ws) > 0 {
		w := sm.future.ws[0]
		sm.candW, sm.candT, sm.candLast = w, max(sm.issueFree, w.candTime), w.lastIssued
		return
	}
	sm.candW, sm.candT, sm.candLast = nil, math.MaxInt64, math.MaxInt64
}

// readyQueue is the device-level heap over all SMs, keyed by each SM's
// cached candidate under (effective issue time, lastIssued, SM id).
// Membership is fixed — candidate-less SMs sort last via the sentinel
// key — and positions are tracked intrusively (SM.rqIdx) so an SM whose
// candidate changed repositions in O(log SMs).
type readyQueue struct {
	sms []*SM
}

// init registers every SM. All keys start at the +inf sentinel, so the
// id-ordered slice is already a valid heap.
func (q *readyQueue) init(sms []*SM) {
	q.sms = make([]*SM, len(sms))
	for i, sm := range sms {
		q.sms[i] = sm
		sm.rqIdx = i
	}
}

// rqLess compares the cached candidate keys.
func rqLess(a, b *SM) bool {
	if a.candT != b.candT {
		return a.candT < b.candT
	}
	if a.candLast != b.candLast {
		return a.candLast < b.candLast
	}
	return a.ID < b.ID
}

// smChanged re-derives sm's candidate key and repositions it in the
// device heap, skipping the sift when the key is unchanged. Every
// mutation of an SM's ready sets or issueFree is followed by an
// smChanged before the next pop, which keeps the device heap's
// parent/child invariants true whenever a pop consults it.
func (d *Device) smChanged(sm *SM) {
	t, last := sm.candT, sm.candLast
	sm.refreshCand()
	if sm.candT == t && sm.candLast == last {
		return
	}
	d.rq.down(sm.rqIdx)
	d.rq.up(sm.rqIdx)
}

func (q *readyQueue) swap(i, j int) {
	q.sms[i], q.sms[j] = q.sms[j], q.sms[i]
	q.sms[i].rqIdx = i
	q.sms[j].rqIdx = j
}

func (q *readyQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !rqLess(q.sms[i], q.sms[p]) {
			return
		}
		q.swap(i, p)
		i = p
	}
}

func (q *readyQueue) down(i int) {
	n := len(q.sms)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && rqLess(q.sms[r], q.sms[c]) {
			c = r
		}
		if !rqLess(q.sms[c], q.sms[i]) {
			return
		}
		q.swap(i, c)
		i = c
	}
}

// dequeue detaches w from whichever ready structure holds it.
func (sm *SM) dequeue(w *Warp) {
	if w.qheap == qheapStalled {
		sm.stalledRemove(w)
	} else {
		sm.future.removeAt(w.qidx)
	}
}

// enqueueReady (re)indexes a ready warp with a freshly derived
// hazard-resolved candidate time. It is the single entry point for
// every event that can change when a warp may next issue: instruction
// issue, register writeback and memory-pipeline completion (both folded
// into the issuing warp's own re-enqueue, since only a warp's own
// issues touch its registers), barrier release, a preempt signal
// releasing barrier-parked victims, context save/exit and resume, and
// block dispatch. Under the reference scheduler it only invalidates the
// scan's cached candidate time.
func (d *Device) enqueueReady(w *Warp) {
	w.candValid = false
	if d.scanMode {
		return
	}
	sm := w.SM
	if w.qheap != qheapNone {
		sm.dequeue(w)
	}
	in := w.currentInstr()
	if in == nil {
		// The scan surfaced this on the next Step; record it so the
		// event-driven Step does the same. Inside an epoch phase the
		// device-wide error slot is shared, so the error parks on the SM
		// and the phase merge folds it in.
		err := fmt.Errorf("sim: warp %d ran off the end of its stream (mode %d)", w.ID, w.Mode)
		if d.inPhase {
			if sm.phaseErr == nil {
				sm.phaseErr = err
			}
			sm.refreshCand()
			return
		}
		if d.qerr == nil {
			d.qerr = err
		}
		d.smChanged(sm)
		return
	}
	w.candTime = max(w.ReadyAt, w.regReadyAt(sm.hazardRegs(in)))
	if w.candTime <= sm.issueFree {
		sm.stalledInsert(w)
	} else {
		sm.future.push(w)
	}
	// During an epoch phase only the SM-local candidate cache may move:
	// the device heap is shared across shards and is rebuilt wholesale at
	// the phase merge (readyQueue.rebuild).
	if d.inPhase {
		sm.refreshCand()
		return
	}
	d.smChanged(sm)
}

// issueAdvanced migrates warps the advancing issue port has caught up
// with (candTime <= issueFree) from the hazard-ordered future heap into
// the round-robin stalled list, then repositions the SM. Called after
// every issue — the only event that moves issueFree. Each warp migrates
// at most once per enqueue (candTime is fixed while queued), so the
// lazy port-contention resolution never cascades.
func (d *Device) issueAdvanced(sm *SM) {
	for len(sm.future.ws) > 0 && sm.future.ws[0].candTime <= sm.issueFree {
		d.migrations++
		sm.stalledInsert(sm.future.popRoot())
	}
	d.smChanged(sm)
}

// issueAdvancedLocal is issueAdvanced for epoch-phase drains: migrations
// are counted per shard and only the SM-local candidate cache is
// refreshed — the shared device heap is left untouched until the phase
// merge rebuilds it.
func (sm *SM) issueAdvancedLocal(sh *epochShard) {
	for len(sm.future.ws) > 0 && sm.future.ws[0].candTime <= sm.issueFree {
		sh.migrations++
		sm.stalledInsert(sm.future.popRoot())
	}
	sm.refreshCand()
}

// rebuild restores the heap invariant over all SMs from their cached
// candidate keys in O(SMs) (Floyd's heapify). Used at the epoch-phase
// merge, after shards have moved many SMs' candidates without sifting.
// Only the heap's *order* is observable — pops take the unique minimum
// of a strict total order (candT, candLast, SM id), so the array layout
// this produces never influences simulation output.
func (q *readyQueue) rebuild() {
	for i := len(q.sms)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// NextIssueTime returns the cycle of the globally earliest pending
// issue, peeked in O(1) from the ready-queue head (ok is false when no
// warp is ready: the device is drained, parked, or waiting on external
// events such as Resume). This is the event-driven generalization of
// AdvanceTo's caller-derived fast-forward: Step uses the same head to
// jump the clock over stalls in one step, and RunUntil uses it to
// reject budget overshoot before committing a step.
func (d *Device) NextIssueTime() (cycle int64, ok bool) {
	if d.scanMode {
		best, _, t, err := d.scanBest()
		if best == nil || err != nil {
			return 0, false
		}
		return t, true
	}
	if len(d.rq.sms) == 0 || d.rq.sms[0].candW == nil {
		return 0, false
	}
	return d.rq.sms[0].candT, true
}

// UseReferenceScheduler switches the device to the retained O(SMs x
// warps) linear-scan scheduler the ready queue replaced. Both implement
// the same total issue order and must produce byte-identical
// simulations — the differential tests and the before/after benchmarks
// in BENCH_PR5.json rely on this switch. Call it on a fresh device,
// before stepping.
func (d *Device) UseReferenceScheduler() { d.scanMode = true }
