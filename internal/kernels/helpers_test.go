package kernels

import (
	"ctxback/internal/cfg"
	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

// mustDevice builds a device from a test-verified static config;
// construction failure is a test bug, so it panics.
func mustDevice(c sim.Config) *sim.Device {
	d, err := sim.NewDevice(c)
	if err != nil {
		panic(err)
	}
	return d
}

// mustGraph builds the CFG of a registry kernel program.
func mustGraph(p *isa.Program) *cfg.Graph {
	g, err := cfg.Build(p)
	if err != nil {
		panic(err)
	}
	return g
}
