package kernels

import (
	"math/rand"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

// Shorthands for kernel construction.
var (
	vr = isa.V
	sr = isa.S
	rg = isa.R
	im = isa.Imm
	fi = isa.ImmF
)

// Memory-space tags shared by the element-wise kernels.
const (
	spaceA = 1
	spaceB = 2
	spaceC = 3
)

// NewVA builds Vector Addition (Table I: 3.0 KB vregs): c = a + b over
// integer data, persistent-thread loop with unroll 2. The integer adds
// and address arithmetic give CTXBack reverting opportunities.
func NewVA(p Params) (*Workload, error) {
	const unroll = 4
	elemsPerIter := unroll * isa.WarpSize
	perWarp := p.ItersPerWarp * elemsPerIter
	warps := p.NumBlocks * p.WarpsPerBlock
	total := warps * perWarp
	aBase := p.base()
	bBase := aBase + total*4
	cBase := bBase + total*4

	b := isa.NewBuilder("va", 12, 36, 0)
	// ABI: s4=a tile, s5=b tile, s6=c tile, s7=iterations.
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(0)), rg(vr(0)), im(2)).Comment("lane byte offset")
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(0)), rg(sr(4)))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(0)), rg(sr(5)))
	b.NoOvf(isa.VAdd, rg(vr(3)), rg(vr(0)), rg(sr(6)))
	b.Label("loop")
	for u := 0; u < unroll; u++ {
		b.I(isa.VGLoad, rg(vr(4+u)), rg(vr(1)), im(u*256)).Space(spaceA)
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VGLoad, rg(vr(8+u)), rg(vr(2)), im(u*256)).Space(spaceB)
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VAdd, rg(vr(4+u)), rg(vr(4+u)), rg(vr(8+u)))
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VGStore, rg(vr(3)), rg(vr(4+u)), im(u*256)).Space(spaceC)
	}
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(elemsPerIter*4))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(elemsPerIter*4))
	b.NoOvf(isa.VAdd, rg(vr(3)), rg(vr(3)), im(elemsPerIter*4))
	b.I(isa.SSub, rg(sr(7)), rg(sr(7)), im(1))
	b.I(isa.SCmpGt, rg(sr(7)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	a := randInts(rng, total, 1<<20)
	bb := randInts(rng, total, 1<<20)
	want := make([]uint32, total)
	for i := range want {
		want[i] = a[i] + bb[i]
	}
	return &Workload{
		Abbrev: "VA", FullName: "Vector Addition", Prog: prog,
		PaperVRegKB: 3.0, PaperSRegKB: 0.141, PaperLDSKB: 0,
		PaperPreemptUs: 102.2, PaperResumeUs: 81.1,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error {
			if err := d.WriteWords(aBase, a); err != nil {
				return err
			}
			return d.WriteWords(bBase, bb)
		},
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(aBase, w.ID, perWarp)
			w.SRegs[5] = warpTileBase(bBase, w.ID, perWarp)
			w.SRegs[6] = warpTileBase(cBase, w.ID, perWarp)
			w.SRegs[7] = uint64(p.ItersPerWarp)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, cBase, want, "VA") },
	}, nil
}

// NewRELU builds ReLU Activation (4.0 KB vregs): out = max(0, in) over
// float32, unroll 4.
func NewRELU(p Params) (*Workload, error) {
	const unroll = 8
	elemsPerIter := unroll * isa.WarpSize
	perWarp := p.ItersPerWarp * elemsPerIter
	warps := p.NumBlocks * p.WarpsPerBlock
	total := warps * perWarp
	inBase := p.base()
	outBase := inBase + total*4

	b := isa.NewBuilder("relu", 13, 36, 0)
	// ABI: s4=in tile, s5=out tile, s6=iterations.
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(0)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(0)), rg(sr(4)))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(0)), rg(sr(5)))
	b.I(isa.VMov, rg(vr(3)), fi(0))
	b.Label("loop")
	for u := 0; u < unroll; u++ {
		b.I(isa.VGLoad, rg(vr(4+u)), rg(vr(1)), im(u*256)).Space(spaceA)
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VMaxF, rg(vr(4+u)), rg(vr(4+u)), rg(vr(3)))
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VGStore, rg(vr(2)), rg(vr(4+u)), im(u*256)).Space(spaceC)
	}
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(elemsPerIter*4))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(elemsPerIter*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	in := randFloats(rng, total)
	want := make([]uint32, total)
	for i := range want {
		v := asF(in[i])
		if !(v > 0) {
			v = 0
		}
		want[i] = f32(v)
	}
	return &Workload{
		Abbrev: "RELU", FullName: "ReLU Activation", Prog: prog,
		PaperVRegKB: 4.0, PaperSRegKB: 0.141, PaperLDSKB: 0,
		PaperPreemptUs: 93.8, PaperResumeUs: 75.5,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error { return d.WriteWords(inBase, in) },
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(inBase, w.ID, perWarp)
			w.SRegs[5] = warpTileBase(outBase, w.ID, perWarp)
			w.SRegs[6] = uint64(p.ItersPerWarp)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, outBase, want, "RELU") },
	}, nil
}

// NewLRN builds Local Response Normalization (4.0 KB vregs), simplified
// to the within-channel form: out = in / (k + alpha*in^2), unroll 2.
func NewLRN(p Params) (*Workload, error) {
	const (
		unroll = 2
		kConst = float32(2.0)
		alpha  = float32(0.75)
	)
	elemsPerIter := unroll * isa.WarpSize
	perWarp := p.ItersPerWarp * elemsPerIter
	warps := p.NumBlocks * p.WarpsPerBlock
	total := warps * perWarp
	inBase := p.base()
	outBase := inBase + total*4

	b := isa.NewBuilder("lrn", 13, 36, 0)
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(0)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(0)), rg(sr(4)))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(0)), rg(sr(5)))
	b.Label("loop")
	for u := 0; u < unroll; u++ {
		b.I(isa.VGLoad, rg(vr(3+u)), rg(vr(1)), im(u*256)).Space(spaceA)
	}
	for u := 0; u < unroll; u++ {
		d, t := vr(3+u), vr(5+u)
		b.I(isa.VMulF, rg(t), rg(d), rg(d)).Comment("in^2")
		b.I(isa.VMulF, rg(t), rg(t), fi(alpha))
		b.I(isa.VAddF, rg(t), rg(t), fi(kConst))
		b.I(isa.VRcpF, rg(t), rg(t))
		b.I(isa.VMulF, rg(vr(7+u)), rg(d), rg(t))
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VGStore, rg(vr(2)), rg(vr(7+u)), im(u*256)).Space(spaceC)
	}
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(elemsPerIter*4))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(elemsPerIter*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	in := randFloats(rng, total)
	want := make([]uint32, total)
	for i := range want {
		x := asF(in[i])
		den := x*x*alpha + kConst
		want[i] = f32(x * (1 / den))
	}
	return &Workload{
		Abbrev: "LRN", FullName: "Local Response Norm", Prog: prog,
		PaperVRegKB: 4.0, PaperSRegKB: 0.141, PaperLDSKB: 0,
		PaperPreemptUs: 74.9, PaperResumeUs: 57.8,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error { return d.WriteWords(inBase, in) },
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(inBase, w.ID, perWarp)
			w.SRegs[5] = warpTileBase(outBase, w.ID, perWarp)
			w.SRegs[6] = uint64(p.ItersPerWarp)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, outBase, want, "LRN") },
	}, nil
}

// NewAP builds Average Pooling (7.0 KB vregs): 1-D pooling with window 4
// and stride 4, unroll 4 (each lane pools 4 windows per iteration).
func NewAP(p Params) (*Workload, error) {
	const (
		unroll = 4
		window = 4
	)
	outPerIter := unroll * isa.WarpSize
	outPerWarp := p.ItersPerWarp * outPerIter
	inPerWarp := outPerWarp * window
	warps := p.NumBlocks * p.WarpsPerBlock
	totalOut := warps * outPerWarp
	totalIn := warps * inPerWarp
	inBase := p.base()
	outBase := inBase + totalIn*4

	b := isa.NewBuilder("ap", 28, 48, 0)
	// ABI: s4=in tile, s5=out tile, s6=iterations.
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(1)), rg(vr(0)), im(4)).Comment("lane*16: input window stride")
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), rg(sr(4)))
	b.NoOvf(isa.VShl, rg(vr(2)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), rg(sr(5)))
	b.I(isa.VMov, rg(vr(3)), fi(0.25))
	b.Label("loop")
	// Load 4 windows x 4 elements into v4..v19.
	for u := 0; u < unroll; u++ {
		for e := 0; e < window; e++ {
			off := u*isa.WarpSize*window*4 + e*4
			b.I(isa.VGLoad, rg(vr(4+u*window+e)), rg(vr(1)), im(off)).Space(spaceA)
		}
	}
	// Sum and scale into v20..v23.
	for u := 0; u < unroll; u++ {
		base := 4 + u*window
		acc := vr(20 + u)
		b.I(isa.VAddF, rg(acc), rg(vr(base)), rg(vr(base+1)))
		b.I(isa.VAddF, rg(acc), rg(acc), rg(vr(base+2)))
		b.I(isa.VAddF, rg(acc), rg(acc), rg(vr(base+3)))
		b.I(isa.VMulF, rg(acc), rg(acc), rg(vr(3)))
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VGStore, rg(vr(2)), rg(vr(20+u)), im(u*isa.WarpSize*4)).Space(spaceC)
	}
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(outPerIter*window*4))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(outPerIter*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	in := randFloats(rng, totalIn)
	want := make([]uint32, totalOut)
	for wid := 0; wid < warps; wid++ {
		for it := 0; it < p.ItersPerWarp; it++ {
			for u := 0; u < unroll; u++ {
				for lane := 0; lane < isa.WarpSize; lane++ {
					// Input layout per iteration step: lane-major windows.
					inIdx := wid*inPerWarp + it*outPerIter*window + u*isa.WarpSize*window + lane*window
					outIdx := wid*outPerWarp + it*outPerIter + u*isa.WarpSize + lane
					s := asF(in[inIdx]) + asF(in[inIdx+1])
					s = s + asF(in[inIdx+2])
					s = s + asF(in[inIdx+3])
					want[outIdx] = f32(s * 0.25)
				}
			}
		}
	}
	return &Workload{
		Abbrev: "AP", FullName: "Average Pooling", Prog: prog,
		PaperVRegKB: 7.0, PaperSRegKB: 0.188, PaperLDSKB: 0,
		PaperPreemptUs: 103.4, PaperResumeUs: 87.1,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error { return d.WriteWords(inBase, in) },
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(inBase, w.ID, inPerWarp)
			w.SRegs[5] = warpTileBase(outBase, w.ID, outPerWarp)
			w.SRegs[6] = uint64(p.ItersPerWarp)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, outBase, want, "AP") },
	}, nil
}

// NewDC builds Direct Convolution (8.0 KB vregs): 1-D convolution with a
// 5-tap filter held in scalar registers, unroll 4.
func NewDC(p Params) (*Workload, error) {
	const (
		unroll = 4
		taps   = 5
	)
	outPerIter := unroll * isa.WarpSize
	outPerWarp := p.ItersPerWarp * outPerIter
	inPerWarp := outPerWarp + taps - 1
	warps := p.NumBlocks * p.WarpsPerBlock
	totalOut := warps * outPerWarp
	inStride := outPerWarp + 64 // generous tile stride, keeps tiles disjoint
	totalIn := warps * inStride
	inBase := p.base()
	outBase := inBase + totalIn*4

	filter := []float32{0.1, -0.25, 0.5, 0.3, -0.2}

	b := isa.NewBuilder("dc", 30, 36, 0)
	// ABI: s4=in tile, s5=out tile, s6=iterations, s8..s12=filter taps.
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(0)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(0)), rg(sr(4)))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(0)), rg(sr(5)))
	b.Label("loop")
	// Load unroll*64 + 4 halo elements: per unroll step, 5 shifted loads.
	for u := 0; u < unroll; u++ {
		acc := vr(3 + u)
		b.I(isa.VMov, rg(acc), fi(0))
		for t := 0; t < taps; t++ {
			data := vr(7 + u*taps + t)
			off := u*isa.WarpSize*4 + t*4
			b.I(isa.VGLoad, rg(data), rg(vr(1)), im(off)).Space(spaceA)
			b.I(isa.VMadF, rg(acc), rg(data), rg(sr(8+t)), rg(acc))
		}
	}
	for u := 0; u < unroll; u++ {
		b.I(isa.VGStore, rg(vr(2)), rg(vr(3+u)), im(u*isa.WarpSize*4)).Space(spaceC)
	}
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(outPerIter*4))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(outPerIter*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	in := randFloats(rng, totalIn)
	want := make([]uint32, totalOut)
	for wid := 0; wid < warps; wid++ {
		for o := 0; o < outPerWarp; o++ {
			acc := float32(0)
			for t := 0; t < taps; t++ {
				acc = asF(in[wid*inStride+o+t])*filter[t] + acc
			}
			want[wid*outPerWarp+o] = f32(acc)
		}
	}
	_ = inPerWarp
	return &Workload{
		Abbrev: "DC", FullName: "Direct Convolution", Prog: prog,
		PaperVRegKB: 8.0, PaperSRegKB: 0.141, PaperLDSKB: 0,
		PaperPreemptUs: 153.0, PaperResumeUs: 114.2,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error { return d.WriteWords(inBase, in) },
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(inBase, w.ID, inStride)
			w.SRegs[5] = warpTileBase(outBase, w.ID, outPerWarp)
			w.SRegs[6] = uint64(p.ItersPerWarp)
			for t, c := range filter {
				w.SRegs[8+t] = uint64(f32(c))
			}
		},
		Verify: func(d *sim.Device) error { return checkWords(d, outBase, want, "DC") },
	}, nil
}
