package kernels

import (
	"testing"

	"ctxback/internal/cfg"
	"ctxback/internal/core"
	"ctxback/internal/liveness"
)

// TestRegressionCorpusClean holds the regression corpus to the same bar
// as the Table I kernels: every minimized program assembles, validates,
// builds a CFG, analyzes, and compiles under the full feature set with
// intact invariants. A regression kernel that the toolchain itself
// rejects would silently stop pinning its bug.
func TestRegressionCorpusClean(t *testing.T) {
	names := RegressionNames()
	if len(names) < 6 {
		t.Fatalf("regression corpus has %d programs, expected at least 6", len(names))
	}
	for _, name := range names {
		prog, err := Regression(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		g, err := cfg.Build(prog)
		if err != nil {
			t.Errorf("%s: cfg: %v", name, err)
			continue
		}
		live := liveness.Analyze(g)
		c, err := core.Compile(prog, core.FeatAll)
		if err != nil {
			t.Errorf("%s: compile: %v", name, err)
			continue
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("%s: invariants: %v", name, err)
		}
		for pc, plan := range c.Plans {
			if plan == nil {
				continue
			}
			if err := core.ValidatePlan(prog, live, plan); err != nil {
				t.Errorf("%s pc %d: %v", name, pc, err)
			}
		}
	}
}

// TestRegressionUnknownName pins the loader's error path.
func TestRegressionUnknownName(t *testing.T) {
	if _, err := Regression("no-such-kernel"); err == nil {
		t.Fatal("Regression must report unknown names")
	}
}
