// Package kernels provides the twelve benchmark kernels of the paper's
// Table I (AP, DC, DOT, GE, HS, KM, LRN, MM, MS, MV, RELU, VA), written
// in the internal/isa SIMT assembly with loops, unrolling and register
// footprints matching the paper's reported per-warp resource usage. Each
// workload carries host-side input generation and a CPU golden reference
// so any preemption technique can be verified end-to-end on the
// simulator.
package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

// Workload bundles a kernel with its host-side driver.
type Workload struct {
	Abbrev   string
	FullName string
	Prog     *isa.Program

	// Paper Table I per-warp resource usage (KB), for reporting.
	PaperVRegKB    float64
	PaperSRegKB    float64
	PaperLDSKB     float64
	PaperPreemptUs float64
	PaperResumeUs  float64

	NumBlocks     int
	WarpsPerBlock int

	// Init writes the input buffers into device memory.
	Init func(d *sim.Device) error
	// WarpSetup loads each warp's kernel arguments into scalar registers.
	WarpSetup func(w *sim.Warp)
	// Verify checks device memory against the CPU golden reference.
	Verify func(d *sim.Device) error
}

// Params scales the workloads.
type Params struct {
	NumBlocks     int
	WarpsPerBlock int
	// ItersPerWarp controls each warp's main-loop trip count.
	ItersPerWarp int
	Seed         int64
	// MemBase is the byte address the workload's buffers start at
	// (default bufBase); lets several workloads coexist on one device.
	MemBase int
}

// base returns the workload's buffer base address.
func (p Params) base() int {
	if p.MemBase > 0 {
		return p.MemBase
	}
	return bufBase
}

// TestParams is a small configuration for unit tests.
func TestParams() Params {
	return Params{NumBlocks: 2, WarpsPerBlock: 2, ItersPerWarp: 6, Seed: 42}
}

// EvalParams sizes workloads for the evaluation harness: enough work per
// warp that preemption lands mid-loop, small enough to simulate quickly.
func EvalParams() Params {
	return Params{NumBlocks: 8, WarpsPerBlock: 2, ItersPerWarp: 24, Seed: 7}
}

// Factory builds a workload at a given scale.
type Factory func(p Params) (*Workload, error)

// Registry lists the factories in Table I order.
func Registry() []Factory {
	return []Factory{
		NewAP, NewDC, NewDOT, NewGE, NewHS, NewKM,
		NewLRN, NewMM, NewMS, NewMV, NewRELU, NewVA,
	}
}

// All instantiates every workload.
func All(p Params) ([]*Workload, error) {
	var out []*Workload
	for _, f := range Registry() {
		w, err := f(p)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// factories maps each Table I abbreviation to its factory, so ByAbbrev
// can instantiate ONE workload instead of building all twelve and
// discarding eleven (host-side input generation and golden references —
// mergesort's sorted copy in particular — dominate construction, and a
// scheduler admitting thousands of jobs calls this per job).
var factories = map[string]Factory{
	"AP": NewAP, "DC": NewDC, "DOT": NewDOT, "GE": NewGE, "HS": NewHS,
	"KM": NewKM, "LRN": NewLRN, "MM": NewMM, "MS": NewMS, "MV": NewMV,
	"RELU": NewRELU, "VA": NewVA,
}

// ByAbbrev instantiates one workload by its Table I abbreviation.
func ByAbbrev(abbrev string, p Params) (*Workload, error) {
	f, ok := factories[abbrev]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown benchmark %q", abbrev)
	}
	return f(p)
}

// Launch places the workload on the device.
func (wl *Workload) Launch(d *sim.Device) (*sim.Launch, error) {
	if wl.Init != nil {
		if err := wl.Init(d); err != nil {
			return nil, err
		}
	}
	return d.Launch(sim.LaunchSpec{
		Prog:          wl.Prog,
		NumBlocks:     wl.NumBlocks,
		WarpsPerBlock: wl.WarpsPerBlock,
		Setup:         wl.WarpSetup,
	})
}

// TotalWarps returns the grid's warp count.
func (wl *Workload) TotalWarps() int { return wl.NumBlocks * wl.WarpsPerBlock }

// ---- shared helpers ----

// memory layout: every workload places its buffers from this base up,
// leaving the low region free for scratch.
const bufBase = 4096

func f32(x float32) uint32 { return math.Float32bits(x) }
func asF(x uint32) float32 { return math.Float32frombits(x) }

// randFloats fills n float32 words in [-1, 1).
func randFloats(rng *rand.Rand, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = f32(rng.Float32()*2 - 1)
	}
	return out
}

// randInts fills n words with small non-negative integers.
func randInts(rng *rand.Rand, n, bound int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(rng.Intn(bound))
	}
	return out
}

// checkWords compares a device region against expectation, reporting the
// first few mismatches.
func checkWords(d *sim.Device, addr int, want []uint32, what string) error {
	got, err := d.ReadWords(addr, len(want))
	if err != nil {
		return err
	}
	bad := 0
	var first error
	for i := range want {
		if got[i] != want[i] {
			if first == nil {
				first = fmt.Errorf("%s: word %d = %#x, want %#x", what, i, got[i], want[i])
			}
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d/%d mismatches; first: %w", bad, len(want), first)
	}
	return nil
}

// warpTileBase returns the byte address of warp w's tile in a buffer of
// elemsPerWarp 4-byte elements starting at base.
func warpTileBase(base, warpID, elemsPerWarp int) uint64 {
	return uint64(base + warpID*elemsPerWarp*4)
}
