package kernels

import (
	"math"
	"math/rand"
	"sort"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

const (
	hsBuckets  = 16
	hsSortN    = 256 // elements bitonic-sorted per warp
	spaceHist  = 4
	spaceSortD = 5
)

// NewHS builds Hybrid Sort (7.0 KB vregs, 12 KB LDS), modeled on
// Rodinia's hybridsort: a bucket-histogram phase using global atomics
// followed by a per-warp bitonic sort of a 256-element tile staged in
// LDS. The atomics break idempotent regions and the LDS dominates the
// context, reproducing why no technique reduces HS's context much.
func NewHS(p Params) (*Workload, error) {
	histPerWarp := p.ItersPerWarp * isa.WarpSize
	warps := p.NumBlocks * p.WarpsPerBlock
	totalHist := warps * histPerWarp
	dataBase := p.base()
	sortBase := dataBase + totalHist*4
	outBase := sortBase + warps*hsSortN*4
	histBase := outBase + warps*hsSortN*4

	b := isa.NewBuilder("hs", 26, 36, 12<<10)
	// ABI: s4=hist data tile, s5=iters, s6=hist base, s7=sort tile in,
	// s8=sort tile out, s9=LDS share base.
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(1)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(1)), rg(sr(4))).Comment("hist data ptr")
	b.I(isa.VMov, rg(vr(3)), im(1)).Comment("atomic increment")
	b.Label("histloop")
	b.I(isa.VGLoad, rg(vr(4)), rg(vr(2)), im(0)).Space(spaceA)
	b.I(isa.VShr, rg(vr(5)), rg(vr(4)), im(27)).Comment("bucket of 31-bit value")
	b.NoOvf(isa.VShl, rg(vr(5)), rg(vr(5)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(5)), rg(vr(5)), rg(sr(6)))
	b.I(isa.VGAtomicAdd, rg(vr(5)), rg(vr(3)), im(0)).Space(spaceHist)
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(isa.WarpSize*4))
	b.I(isa.SSub, rg(sr(5)), rg(sr(5)), im(1))
	b.I(isa.SCmpGt, rg(sr(5)), im(0))
	b.Branch(isa.SCBranchSCC1, "histloop")
	b.I(isa.SBarrier)

	// Stage the 256-element sort tile into LDS (4 chunks of 64).
	b.NoOvf(isa.VAdd, rg(vr(6)), rg(vr(1)), rg(sr(7))).Comment("global in ptr")
	b.NoOvf(isa.VAdd, rg(vr(7)), rg(vr(1)), rg(sr(9))).Comment("LDS ptr")
	for c := 0; c < hsSortN/isa.WarpSize; c++ {
		b.I(isa.VGLoad, rg(vr(8)), rg(vr(6)), im(c*isa.WarpSize*4)).Space(spaceSortD)
		b.I(isa.VLStore, rg(vr(7)), rg(vr(8)), im(c*isa.WarpSize*4))
	}

	// Bitonic sort: uniform loops over (k, j); each lane handles indices
	// i = m*64 + lane. s10=k, s11=j, s12=m counter, s13=saved exec.
	b.I(isa.SMov, rg(sr(10)), im(2))
	b.Label("kloop")
	b.I(isa.SShr, rg(sr(11)), rg(sr(10)), im(1))
	b.Label("jloop")
	b.I(isa.SMov, rg(sr(12)), im(0))
	b.Label("mloop")
	// i = m*64 + lane  (v8); partner = i ^ j (v9).
	b.I(isa.SShl, rg(sr(14)), rg(sr(12)), im(6))
	b.NoOvf(isa.VAdd, rg(vr(8)), rg(vr(0)), rg(sr(14)))
	b.I(isa.VXor, rg(vr(9)), rg(vr(8)), rg(sr(11)))
	// Only the lower element of each pair acts: partner > i.
	b.I(isa.VCmpGtI, rg(vr(9)), rg(vr(8)))
	b.I(isa.SAndSaveExecVCC, rg(sr(13)))
	// Addresses: share + idx*4.
	b.NoOvf(isa.VShl, rg(vr(10)), rg(vr(8)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(10)), rg(vr(10)), rg(sr(9)))
	b.NoOvf(isa.VShl, rg(vr(11)), rg(vr(9)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(11)), rg(vr(11)), rg(sr(9)))
	b.I(isa.VLLoad, rg(vr(12)), rg(vr(10)), im(0)).Comment("a = lds[i]")
	b.I(isa.VLLoad, rg(vr(13)), rg(vr(11)), im(0)).Comment("b = lds[partner]")
	b.I(isa.VMin, rg(vr(14)), rg(vr(12)), rg(vr(13)))
	b.I(isa.VMax, rg(vr(15)), rg(vr(12)), rg(vr(13)))
	// Ascending iff (i & k) == 0.
	b.I(isa.VAnd, rg(vr(16)), rg(vr(8)), rg(sr(10)))
	b.I(isa.VCmpEqI, rg(vr(16)), im(0))
	b.I(isa.VCndMask, rg(vr(17)), rg(vr(15)), rg(vr(14))).Comment("lds[i]: asc?lo:hi")
	b.I(isa.VCndMask, rg(vr(18)), rg(vr(14)), rg(vr(15))).Comment("lds[p]: asc?hi:lo")
	b.I(isa.VLStore, rg(vr(10)), rg(vr(17)), im(0))
	b.I(isa.VLStore, rg(vr(11)), rg(vr(18)), im(0))
	b.I(isa.SSetExec, rg(sr(13)))
	b.I(isa.SAdd, rg(sr(12)), rg(sr(12)), im(1))
	b.I(isa.SCmpLt, rg(sr(12)), im(hsSortN/isa.WarpSize))
	b.Branch(isa.SCBranchSCC1, "mloop")
	b.I(isa.SShr, rg(sr(11)), rg(sr(11)), im(1))
	b.I(isa.SCmpGt, rg(sr(11)), im(0))
	b.Branch(isa.SCBranchSCC1, "jloop")
	b.I(isa.SShl, rg(sr(10)), rg(sr(10)), im(1))
	b.I(isa.SCmpLe, rg(sr(10)), im(hsSortN))
	b.Branch(isa.SCBranchSCC1, "kloop")

	// Write the sorted tile back.
	b.NoOvf(isa.VAdd, rg(vr(19)), rg(vr(1)), rg(sr(8)))
	for c := 0; c < hsSortN/isa.WarpSize; c++ {
		b.I(isa.VLLoad, rg(vr(20)), rg(vr(7)), im(c*isa.WarpSize*4))
		b.I(isa.VGStore, rg(vr(19)), rg(vr(20)), im(c*isa.WarpSize*4)).Space(spaceC)
	}
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	histData := make([]uint32, totalHist)
	for i := range histData {
		histData[i] = uint32(rng.Int31())
	}
	sortData := make([]uint32, warps*hsSortN)
	for i := range sortData {
		sortData[i] = uint32(rng.Int31())
	}
	wantHist := make([]uint32, hsBuckets)
	for _, v := range histData {
		wantHist[v>>27]++
	}
	wantSorted := make([]uint32, len(sortData))
	copy(wantSorted, sortData)
	for w := 0; w < warps; w++ {
		tile := wantSorted[w*hsSortN : (w+1)*hsSortN]
		sort.Slice(tile, func(i, j int) bool { return int32(tile[i]) < int32(tile[j]) })
	}
	ldsShare := (12 << 10) / p.WarpsPerBlock
	return &Workload{
		Abbrev: "HS", FullName: "Hybrid Sort", Prog: prog,
		PaperVRegKB: 7.0, PaperSRegKB: 0.141, PaperLDSKB: 12.0,
		PaperPreemptUs: 304.0, PaperResumeUs: 280.7,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error {
			if err := d.WriteWords(dataBase, histData); err != nil {
				return err
			}
			if err := d.WriteWords(sortBase, sortData); err != nil {
				return err
			}
			return d.WriteWords(histBase, make([]uint32, hsBuckets))
		},
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(dataBase, w.ID, histPerWarp)
			w.SRegs[5] = uint64(p.ItersPerWarp)
			w.SRegs[6] = uint64(histBase)
			w.SRegs[7] = warpTileBase(sortBase, w.ID, hsSortN)
			w.SRegs[8] = warpTileBase(outBase, w.ID, hsSortN)
			w.SRegs[9] = uint64(w.WarpInBlk * ldsShare)
		},
		Verify: func(d *sim.Device) error {
			if err := checkWords(d, histBase, wantHist, "HS histogram"); err != nil {
				return err
			}
			return checkWords(d, outBase, wantSorted, "HS sorted tiles")
		},
	}, nil
}

// NewMS builds one Merge Sort pass (10.5 KB vregs): each lane merges
// four independent pairs of sorted runs (with +Inf sentinels) using
// predicated head selection, the classic SIMT branch-free merge.
func NewMS(p Params) (*Workload, error) {
	const units = 4
	runLen := 8 * p.ItersPerWarp
	warps := p.NumBlocks * p.WarpsPerBlock
	pairs := warps * isa.WarpSize * units
	runStride := runLen + 1 // +1 sentinel
	aBase := p.base()
	bBase := aBase + pairs*runStride*4
	outBase := bBase + pairs*runStride*4

	b := isa.NewBuilder("ms", 42, 36, 0)
	// ABI: s4=A runs tile, s5=B runs tile, s6=out tile, s7=2*runLen.
	// Unit u's pair index = lane*units + u.
	b.I(isa.VLaneID, rg(vr(0)))
	for u := 0; u < units; u++ {
		pa, pb, po := vr(1+u*3), vr(2+u*3), vr(3+u*3)
		b.NoOvf(isa.VMul, rg(pa), rg(vr(0)), im(units*runStride*4))
		b.NoOvf(isa.VAdd, rg(pa), rg(pa), im(u*runStride*4))
		b.NoOvf(isa.VAdd, rg(pa), rg(pa), rg(sr(4)))
		b.NoOvf(isa.VAdd, rg(pb), rg(pa), rg(sr(5))).Comment("B mirrors A layout")
		b.NoOvf(isa.VMul, rg(po), rg(vr(0)), im(units*2*runLen*4))
		b.NoOvf(isa.VAdd, rg(po), rg(po), im(u*2*runLen*4))
		b.NoOvf(isa.VAdd, rg(po), rg(po), rg(sr(6)))
	}
	b.I(isa.SMov, rg(sr(8)), rg(sr(7))).Comment("steps = 2*runLen")
	b.Label("mergeloop")
	for u := 0; u < units; u++ {
		pa, pb, po := vr(1+u*3), vr(2+u*3), vr(3+u*3)
		a, bv, out, delta := vr(13+u*4), vr(14+u*4), vr(15+u*4), vr(16+u*4)
		b.I(isa.VGLoad, rg(a), rg(pa), im(0)).Space(spaceA)
		b.I(isa.VGLoad, rg(bv), rg(pb), im(0)).Space(spaceB)
		b.I(isa.VCmpLeF, rg(a), rg(bv)).Comment("take A on ties: stable")
		b.I(isa.VCndMask, rg(out), rg(bv), rg(a))
		b.I(isa.VGStore, rg(po), rg(out), im(0)).Space(spaceC)
		b.I(isa.VCndMask, rg(delta), im(0), im(4))
		b.NoOvf(isa.VAdd, rg(pa), rg(pa), rg(delta))
		b.I(isa.VCndMask, rg(delta), im(4), im(0))
		b.NoOvf(isa.VAdd, rg(pb), rg(pb), rg(delta))
		b.NoOvf(isa.VAdd, rg(po), rg(po), im(4))
	}
	b.I(isa.SSub, rg(sr(8)), rg(sr(8)), im(1))
	b.I(isa.SCmpGt, rg(sr(8)), im(0))
	b.Branch(isa.SCBranchSCC1, "mergeloop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	inf := f32(float32(math.Inf(1)))
	makeRuns := func() []uint32 {
		runs := make([]uint32, pairs*runStride)
		for pr := 0; pr < pairs; pr++ {
			vals := make([]float32, runLen)
			for i := range vals {
				vals[i] = rng.Float32()*2 - 1
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for i, v := range vals {
				runs[pr*runStride+i] = f32(v)
			}
			runs[pr*runStride+runLen] = inf
		}
		return runs
	}
	runsA := makeRuns()
	runsB := makeRuns()
	want := make([]uint32, pairs*2*runLen)
	for pr := 0; pr < pairs; pr++ {
		ai, bi := 0, 0
		for s := 0; s < 2*runLen; s++ {
			av := asF(runsA[pr*runStride+ai])
			bv := asF(runsB[pr*runStride+bi])
			if av <= bv {
				want[pr*2*runLen+s] = f32(av)
				ai++
			} else {
				want[pr*2*runLen+s] = f32(bv)
				bi++
			}
		}
	}
	return &Workload{
		Abbrev: "MS", FullName: "Merge Sort", Prog: prog,
		PaperVRegKB: 10.5, PaperSRegKB: 0.141, PaperLDSKB: 0,
		PaperPreemptUs: 119.0, PaperResumeUs: 93.8,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error {
			if err := d.WriteWords(aBase, runsA); err != nil {
				return err
			}
			return d.WriteWords(bBase, runsB)
		},
		WarpSetup: func(w *sim.Warp) {
			tile := w.ID * isa.WarpSize * units
			w.SRegs[4] = uint64(aBase + tile*runStride*4)
			w.SRegs[5] = uint64(uint32(bBase - aBase)) // B offset from A ptr
			w.SRegs[6] = uint64(outBase + tile*2*runLen*4)
			w.SRegs[7] = uint64(2 * runLen)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, outBase, want, "MS") },
	}, nil
}
