package kernels

import (
	"math/rand"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

// cpuTreeReduce mirrors the within-warp LDS tree reduction the DOT
// kernel performs (strides 32..1 folding the upper half onto the lower).
func cpuTreeReduce(partials []float32) float32 {
	vals := make([]float32, len(partials))
	copy(vals, partials)
	for stride := isa.WarpSize / 2; stride > 0; stride /= 2 {
		for l := 0; l < stride; l++ {
			vals[l] = vals[l] + vals[l+stride]
		}
	}
	return vals[0]
}

// NewDOT builds Dot Product (6.0 KB vregs, 1 KB LDS): per-warp partial
// dot products accumulated per lane, then a within-warp LDS tree
// reduction; lane 0 writes the warp's result.
func NewDOT(p Params) (*Workload, error) {
	perWarp := p.ItersPerWarp * isa.WarpSize * 2 // unroll 2
	warps := p.NumBlocks * p.WarpsPerBlock
	total := warps * perWarp
	aBase := p.base()
	bBase := aBase + total*4
	outBase := bBase + total*4

	b := isa.NewBuilder("dot", 22, 36, 1024)
	// ABI: s4=a tile, s5=b tile, s6=iters, s7=LDS share base, s8=out addr.
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(1)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(1)), rg(sr(4)))
	b.NoOvf(isa.VAdd, rg(vr(3)), rg(vr(1)), rg(sr(5)))
	b.I(isa.VMov, rg(vr(4)), fi(0)).Comment("acc0")
	b.I(isa.VMov, rg(vr(5)), fi(0)).Comment("acc1")
	b.Label("loop")
	b.I(isa.VGLoad, rg(vr(6)), rg(vr(2)), im(0)).Space(spaceA)
	b.I(isa.VGLoad, rg(vr(7)), rg(vr(3)), im(0)).Space(spaceB)
	b.I(isa.VGLoad, rg(vr(8)), rg(vr(2)), im(256)).Space(spaceA)
	b.I(isa.VGLoad, rg(vr(9)), rg(vr(3)), im(256)).Space(spaceB)
	b.I(isa.VMadF, rg(vr(4)), rg(vr(6)), rg(vr(7)), rg(vr(4)))
	b.I(isa.VMadF, rg(vr(5)), rg(vr(8)), rg(vr(9)), rg(vr(5)))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(512))
	b.NoOvf(isa.VAdd, rg(vr(3)), rg(vr(3)), im(512))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.VAddF, rg(vr(4)), rg(vr(4)), rg(vr(5)))
	// LDS tree reduce within the warp's share.
	b.NoOvf(isa.VAdd, rg(vr(10)), rg(vr(1)), rg(sr(7))).Comment("lds slot")
	b.I(isa.VLStore, rg(vr(10)), rg(vr(4)), im(0))
	b.I(isa.SMov, rg(sr(9)), im(isa.WarpSize/2))
	b.Label("reduce")
	b.I(isa.VCmpLtI, rg(vr(0)), rg(sr(9)))
	b.I(isa.SAndSaveExecVCC, rg(sr(10)))
	b.I(isa.SShl, rg(sr(11)), rg(sr(9)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(11)), rg(vr(10)), rg(sr(11)))
	b.I(isa.VLLoad, rg(vr(12)), rg(vr(11)), im(0))
	b.I(isa.VAddF, rg(vr(4)), rg(vr(4)), rg(vr(12)))
	b.I(isa.VLStore, rg(vr(10)), rg(vr(4)), im(0))
	b.I(isa.SSetExec, rg(sr(10)))
	b.I(isa.SShr, rg(sr(9)), rg(sr(9)), im(1))
	b.I(isa.SCmpGt, rg(sr(9)), im(0))
	b.Branch(isa.SCBranchSCC1, "reduce")
	// Lane 0 writes the warp sum.
	b.I(isa.VCmpEqI, rg(vr(0)), im(0))
	b.I(isa.SAndSaveExecVCC, rg(sr(10)))
	b.I(isa.VMov, rg(vr(13)), rg(sr(8)))
	b.I(isa.VGStore, rg(vr(13)), rg(vr(4)), im(0)).Space(spaceC)
	b.I(isa.SSetExec, rg(sr(10)))
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	a := randFloats(rng, total)
	bb := randFloats(rng, total)
	want := make([]uint32, warps)
	for wid := 0; wid < warps; wid++ {
		var part [isa.WarpSize]float32
		base := wid * perWarp
		for lane := 0; lane < isa.WarpSize; lane++ {
			var acc0, acc1 float32
			for it := 0; it < p.ItersPerWarp; it++ {
				i0 := base + it*2*isa.WarpSize + lane
				i1 := i0 + isa.WarpSize
				acc0 = asF(a[i0])*asF(bb[i0]) + acc0
				acc1 = asF(a[i1])*asF(bb[i1]) + acc1
			}
			part[lane] = acc0 + acc1
		}
		want[wid] = f32(cpuTreeReduce(part[:]))
	}
	ldsShare := 1024 / p.WarpsPerBlock
	return &Workload{
		Abbrev: "DOT", FullName: "Dot Product", Prog: prog,
		PaperVRegKB: 6.0, PaperSRegKB: 0.141, PaperLDSKB: 1.0,
		PaperPreemptUs: 138.6, PaperResumeUs: 101.0,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error {
			if err := d.WriteWords(aBase, a); err != nil {
				return err
			}
			return d.WriteWords(bBase, bb)
		},
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(aBase, w.ID, perWarp)
			w.SRegs[5] = warpTileBase(bBase, w.ID, perWarp)
			w.SRegs[6] = uint64(p.ItersPerWarp)
			w.SRegs[7] = uint64(w.WarpInBlk * ldsShare)
			w.SRegs[8] = uint64(outBase + w.ID*4)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, outBase, want, "DOT") },
	}, nil
}

// NewMV builds Matrix-Vector Multiply (13.0 KB vregs, 0.25 KB LDS):
// y = A·x with x (64 columns) cached in LDS by warp 0 of each block; each
// lane computes one row per tile with 16-way unrolled accumulation.
func NewMV(p Params) (*Workload, error) {
	const k = isa.WarpSize // columns
	const unroll = 16
	rowsPerWarpTile := isa.WarpSize
	rowsPerWarp := p.ItersPerWarp * rowsPerWarpTile
	warps := p.NumBlocks * p.WarpsPerBlock
	totalRows := warps * rowsPerWarp
	xBase := p.base()
	aBase := xBase + k*4
	yBase := aBase + totalRows*k*4

	b := isa.NewBuilder("mv", 52, 36, 256)
	// ABI: s4=A tile base, s5=y tile base, s6=iters, s7=x base addr,
	// s8=warpInBlk.
	// Warp 0 of the block stages x into LDS.
	b.I(isa.VLaneID, rg(vr(0)))
	b.I(isa.SCmpEq, rg(sr(8)), im(0))
	b.Branch(isa.SCBranchSCC0, "xloaded")
	b.NoOvf(isa.VShl, rg(vr(1)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(1)), rg(sr(7)))
	b.I(isa.VGLoad, rg(vr(3)), rg(vr(2)), im(0)).Space(spaceB)
	b.I(isa.VLStore, rg(vr(1)), rg(vr(3)), im(0))
	b.Label("xloaded")
	b.I(isa.SBarrier)
	// Row-tile loop: lane's row address = A + (tile*64+lane)*K*4.
	b.I(isa.VMov, rg(vr(1)), rg(sr(4)))
	b.NoOvf(isa.VShl, rg(vr(2)), rg(vr(0)), im(8)).Comment("lane*K*4, K=64")
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), rg(vr(2)))
	b.NoOvf(isa.VShl, rg(vr(3)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(3)), rg(vr(3)), rg(sr(5))).Comment("y slot")
	b.Label("rowloop")
	// Zero 16 accumulators v4..v19.
	for j := 0; j < unroll; j++ {
		b.I(isa.VMov, rg(vr(4+j)), fi(0))
	}
	// 4 chunks of 16 columns, fully unrolled: A in v20..v35, x staged
	// into 16 distinct registers v36..v51 (all three 16-register groups
	// stay live through each chunk's MAD burst, the register pressure the
	// paper's 13 KB figure implies).
	for c := 0; c < k/unroll; c++ {
		for j := 0; j < unroll; j++ {
			col := c*unroll + j
			b.I(isa.VGLoad, rg(vr(20+j)), rg(vr(1)), im(col*4)).Space(spaceA)
		}
		for j := 0; j < unroll; j++ {
			col := c*unroll + j
			b.I(isa.VMov, rg(vr(2)), im(col*4))
			b.I(isa.VLLoad, rg(vr(36+j)), rg(vr(2)), im(0))
		}
		for j := 0; j < unroll; j++ {
			b.I(isa.VMadF, rg(vr(4+j)), rg(vr(20+j)), rg(vr(36+j)), rg(vr(4+j)))
		}
	}
	// Fold 16 accumulators.
	for j := 1; j < unroll; j++ {
		b.I(isa.VAddF, rg(vr(4)), rg(vr(4)), rg(vr(4+j)))
	}
	b.I(isa.VGStore, rg(vr(3)), rg(vr(4)), im(0)).Space(spaceC)
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(isa.WarpSize*k*4))
	b.NoOvf(isa.VAdd, rg(vr(3)), rg(vr(3)), im(isa.WarpSize*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "rowloop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	x := randFloats(rng, k)
	a := randFloats(rng, totalRows*k)
	want := make([]uint32, totalRows)
	for row := 0; row < totalRows; row++ {
		var acc [unroll]float32
		for c := 0; c < k/unroll; c++ {
			for j := 0; j < unroll; j++ {
				col := c*unroll + j
				acc[j] = asF(a[row*k+col])*asF(x[col]) + acc[j]
			}
		}
		s := acc[0]
		for j := 1; j < unroll; j++ {
			s = s + acc[j]
		}
		want[row] = f32(s)
	}
	return &Workload{
		Abbrev: "MV", FullName: "Matrix-Vector Multiply", Prog: prog,
		PaperVRegKB: 13.0, PaperSRegKB: 0.141, PaperLDSKB: 0.25,
		PaperPreemptUs: 254.7, PaperResumeUs: 217.5,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error {
			if err := d.WriteWords(xBase, x); err != nil {
				return err
			}
			return d.WriteWords(aBase, a)
		},
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(aBase, w.ID, rowsPerWarp*k)
			w.SRegs[5] = warpTileBase(yBase, w.ID, rowsPerWarp)
			w.SRegs[6] = uint64(p.ItersPerWarp)
			w.SRegs[7] = uint64(xBase)
			w.SRegs[8] = uint64(w.WarpInBlk)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, yBase, want, "MV") },
	}, nil
}

// NewMM builds Matrix-Matrix Multiply (13.0 KB vregs, 0.5 KB LDS):
// each lane computes two 8-wide strips of C rows (lane and lane+64); the
// shared 8x8 B chunk is staged in the warp's LDS share every K step.
// Peak pressure: 16 accumulators + 16 A values + 8 staged B values.
func NewMM(p Params) (*Workload, error) {
	const (
		nCols  = 8 // C columns per strip
		kChunk = 8 // K rows staged per LDS refill
	)
	kDim := p.ItersPerWarp * kChunk
	rowsPerWarp := 2 * isa.WarpSize // two C rows per lane
	warps := p.NumBlocks * p.WarpsPerBlock
	totalRows := warps * rowsPerWarp
	aBase := p.base()
	bBase := aBase + totalRows*kDim*4
	cBase := bBase + kDim*nCols*4

	b := isa.NewBuilder("mm", 49, 36, 512)
	// ABI: s4=A tile, s5=C tile, s6=kIters, s7=B base, s8=LDS share base,
	// s10=kDim.
	b.I(isa.VLaneID, rg(vr(0)))
	b.I(isa.SMul, rg(sr(9)), rg(sr(10)), im(4)).Comment("row stride bytes")
	b.NoOvf(isa.VMul, rg(vr(1)), rg(vr(0)), rg(sr(9)))
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), rg(sr(4))).Comment("A row0 ptr")
	b.I(isa.SShl, rg(sr(11)), rg(sr(9)), im(6)).Comment("64 rows in bytes")
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(1)), rg(sr(11))).Comment("A row1 ptr")
	b.NoOvf(isa.VShl, rg(vr(3)), rg(vr(0)), im(2)).Comment("lane bytes")
	b.I(isa.SMov, rg(sr(12)), rg(sr(7))).Comment("B ptr")
	// Zero accumulators: v4..v11 row0, v12..v19 row1.
	for j := 0; j < 2*nCols; j++ {
		b.I(isa.VMov, rg(vr(4+j)), fi(0))
	}
	b.Label("kloop")
	// Stage the B chunk (kChunk x nCols = 64 floats) into the LDS share:
	// lane i loads element i.
	b.NoOvf(isa.VAdd, rg(vr(36)), rg(vr(3)), rg(sr(12)))
	b.I(isa.VGLoad, rg(vr(37)), rg(vr(36)), im(0)).Space(spaceB)
	b.NoOvf(isa.VAdd, rg(vr(36)), rg(vr(3)), rg(sr(8)))
	b.I(isa.VLStore, rg(vr(36)), rg(vr(37)), im(0))
	// A strips: kChunk values per row, fully unrolled.
	for kk := 0; kk < kChunk; kk++ {
		b.I(isa.VGLoad, rg(vr(20+kk)), rg(vr(1)), im(kk*4)).Space(spaceA)
		b.I(isa.VGLoad, rg(vr(28+kk)), rg(vr(2)), im(kk*4)).Space(spaceA)
	}
	for kk := 0; kk < kChunk; kk++ {
		// Load B row kk (8 cols) from LDS into v40..v47, then MAD both
		// row strips against it.
		for j := 0; j < nCols; j++ {
			b.I(isa.VMov, rg(vr(36)), rg(sr(8)))
			b.NoOvf(isa.VAdd, rg(vr(36)), rg(vr(36)), im((kk*nCols+j)*4))
			b.I(isa.VLLoad, rg(vr(40+j)), rg(vr(36)), im(0))
		}
		for j := 0; j < nCols; j++ {
			b.I(isa.VMadF, rg(vr(4+j)), rg(vr(20+kk)), rg(vr(40+j)), rg(vr(4+j)))
			b.I(isa.VMadF, rg(vr(12+j)), rg(vr(28+kk)), rg(vr(40+j)), rg(vr(12+j)))
		}
	}
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(kChunk*4))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(kChunk*4))
	b.I(isa.SAdd, rg(sr(12)), rg(sr(12)), im(kChunk*nCols*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "kloop")
	// Write both strips: C row base = s5 + row*nCols*4.
	b.NoOvf(isa.VMul, rg(vr(38)), rg(vr(0)), im(nCols*4))
	b.NoOvf(isa.VAdd, rg(vr(38)), rg(vr(38)), rg(sr(5)))
	b.NoOvf(isa.VAdd, rg(vr(39)), rg(vr(38)), im(isa.WarpSize*nCols*4))
	for j := 0; j < nCols; j++ {
		b.I(isa.VGStore, rg(vr(38)), rg(vr(4+j)), im(j*4)).Space(spaceC)
		b.I(isa.VGStore, rg(vr(39)), rg(vr(12+j)), im(j*4)).Space(spaceC)
	}
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	a := randFloats(rng, totalRows*kDim)
	bm := randFloats(rng, kDim*nCols)
	want := make([]uint32, totalRows*nCols)
	for row := 0; row < totalRows; row++ {
		var acc [nCols]float32
		for kk := 0; kk < kDim; kk++ {
			for j := 0; j < nCols; j++ {
				acc[j] = asF(a[row*kDim+kk])*asF(bm[kk*nCols+j]) + acc[j]
			}
		}
		for j := 0; j < nCols; j++ {
			want[row*nCols+j] = f32(acc[j])
		}
	}
	ldsShare := 512 / p.WarpsPerBlock
	return &Workload{
		Abbrev: "MM", FullName: "Matrix-Matrix Multiply", Prog: prog,
		PaperVRegKB: 13.0, PaperSRegKB: 0.141, PaperLDSKB: 0.5,
		PaperPreemptUs: 214.6, PaperResumeUs: 152.7,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error {
			if err := d.WriteWords(aBase, a); err != nil {
				return err
			}
			return d.WriteWords(bBase, bm)
		},
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(aBase, w.ID, rowsPerWarp*kDim)
			w.SRegs[5] = warpTileBase(cBase, w.ID, rowsPerWarp*nCols)
			w.SRegs[6] = uint64(p.ItersPerWarp)
			w.SRegs[7] = uint64(bBase)
			w.SRegs[8] = uint64(w.WarpInBlk * ldsShare)
			w.SRegs[10] = uint64(kDim)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, cBase, want, "MM") },
	}, nil
}
