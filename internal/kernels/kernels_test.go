package kernels

import (
	"testing"

	"ctxback/internal/cfg"
	"ctxback/internal/isa"
	"ctxback/internal/liveness"
	"ctxback/internal/sim"
)

func runWorkload(t *testing.T, wl *Workload) *sim.Device {
	t.Helper()
	d := mustDevice(sim.TestConfig())
	if _, err := wl.Launch(d); err != nil {
		t.Fatalf("%s: launch: %v", wl.Abbrev, err)
	}
	if err := d.Run(500_000_000); err != nil {
		t.Fatalf("%s: run: %v", wl.Abbrev, err)
	}
	return d
}

func TestAllWorkloadsProduceGoldenOutput(t *testing.T) {
	all, err := All(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("registry has %d workloads, want 12", len(all))
	}
	for _, wl := range all {
		wl := wl
		t.Run(wl.Abbrev, func(t *testing.T) {
			d := runWorkload(t, wl)
			if err := wl.Verify(d); err != nil {
				t.Fatalf("%s verification failed: %v", wl.Abbrev, err)
			}
		})
	}
}

func TestWorkloadResourceFootprints(t *testing.T) {
	all, err := All(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range all {
		gotVRegKB := float64(wl.Prog.VRegContextBytes()) / 1024
		if diff := gotVRegKB - wl.PaperVRegKB; diff < -0.75 || diff > 0.75 {
			t.Errorf("%s: allocated vreg context %.2f KB, paper reports %.2f KB",
				wl.Abbrev, gotVRegKB, wl.PaperVRegKB)
		}
		gotLDSKB := float64(wl.Prog.LDSBytes) / 1024
		if gotLDSKB != wl.PaperLDSKB {
			t.Errorf("%s: LDS %.2f KB, paper reports %.2f KB", wl.Abbrev, gotLDSKB, wl.PaperLDSKB)
		}
	}
}

func TestWorkloadsValidateAndAnalyze(t *testing.T) {
	all, err := All(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range all {
		if err := wl.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", wl.Abbrev, err)
			continue
		}
		g, err := cfg.Build(wl.Prog)
		if err != nil {
			t.Errorf("%s: cfg: %v", wl.Abbrev, err)
			continue
		}
		info := liveness.Analyze(g)
		// The kernels' live sets must show variety: the max live-in count
		// must exceed the min by a reasonable margin somewhere, otherwise
		// the whole evaluation is moot.
		minLive, maxLive := 1<<30, 0
		for pc := 0; pc < wl.Prog.Len(); pc++ {
			n := len(info.LiveIn[pc])
			if n < minLive {
				minLive = n
			}
			if n > maxLive {
				maxLive = n
			}
		}
		if maxLive-minLive < 3 {
			t.Errorf("%s: live-register variety too small (min %d, max %d)", wl.Abbrev, minLive, maxLive)
		}
	}
}

func TestWorkloadsHaveLoops(t *testing.T) {
	// The paper's batch jobs use persistent-thread loops; every kernel
	// must contain at least one loop for CKPT/preemption sampling to be
	// meaningful.
	all, err := All(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range all {
		g := mustGraph(wl.Prog)
		if len(g.LoopHeaders()) == 0 {
			t.Errorf("%s has no loops", wl.Abbrev)
		}
	}
}

func TestByAbbrev(t *testing.T) {
	wl, err := ByAbbrev("KM", TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if wl.FullName != "K-Means" {
		t.Errorf("got %q", wl.FullName)
	}
	if _, err := ByAbbrev("NOPE", TestParams()); err == nil {
		t.Error("unknown abbrev must error")
	}
}

func TestHSRegionsBrokenByAtomics(t *testing.T) {
	wl, err := NewHS(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(wl.Prog)
	// Find the atomic and confirm PCs after it in the same block cannot
	// flash back across it.
	atomicPC := -1
	for pc := 0; pc < wl.Prog.Len(); pc++ {
		if wl.Prog.At(pc).Op == isa.VGAtomicAdd {
			atomicPC = pc
			break
		}
	}
	if atomicPC < 0 {
		t.Fatal("HS has no atomic")
	}
	blk := g.BlockOf(atomicPC)
	if atomicPC+1 < blk.End {
		if h := g.FlashbackHead(atomicPC + 1); h != atomicPC+1 {
			t.Errorf("FlashbackHead after atomic = %d, want %d", h, atomicPC+1)
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	// Two devices running the same workload must produce identical memory.
	wl1, err := NewDOT(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	wl2, err := NewDOT(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	d1 := runWorkload(t, wl1)
	d2 := runWorkload(t, wl2)
	for i := range d1.Mem {
		if d1.Mem[i] != d2.Mem[i] {
			t.Fatalf("nondeterminism at word %d", i)
		}
	}
}
