package kernels

import (
	"math/rand"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

// NewGE builds one Gaussian Elimination step (8.0 KB vregs): for pivot
// row 0, every warp updates a tile of rows out-of-place:
// out[i][j] = A[i][j] - (A[i][0] / A[0][0]) * A[0][j], unroll 4 rows.
func NewGE(p Params) (*Workload, error) {
	const (
		unroll = 4
		nCols  = isa.WarpSize // one column per lane
	)
	rowsPerWarp := p.ItersPerWarp * unroll
	warps := p.NumBlocks * p.WarpsPerBlock
	totalRows := warps*rowsPerWarp + 1 // +1 pivot row
	aBase := p.base()
	outBase := aBase + totalRows*nCols*4

	b := isa.NewBuilder("ge", 30, 36, 0)
	// ABI: s4=first row addr of warp tile (in A), s5=out tile addr,
	// s6=iters, s7=pivot row addr.
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(1)), rg(vr(0)), im(2))
	// Pivot row element for this lane and the inverted pivot head.
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(1)), rg(sr(7)))
	b.I(isa.VGLoad, rg(vr(3)), rg(vr(2)), im(0)).Space(spaceA).Comment("pivot[j]")
	b.I(isa.VMov, rg(vr(4)), rg(sr(7)))
	b.I(isa.VGLoad, rg(vr(5)), rg(vr(4)), im(0)).Space(spaceA).Comment("pivot[0] broadcast")
	b.I(isa.VRcpF, rg(vr(5)), rg(vr(5)))
	b.NoOvf(isa.VAdd, rg(vr(6)), rg(vr(1)), rg(sr(4))).Comment("row ptr")
	b.NoOvf(isa.VAdd, rg(vr(7)), rg(vr(1)), rg(sr(5))).Comment("out ptr")
	b.I(isa.VMov, rg(vr(8)), rg(sr(4))).Comment("row head ptr (col 0)")
	b.Label("loop")
	for u := 0; u < unroll; u++ {
		rowOff := u * nCols * 4
		head, data, factor, res := vr(9+u), vr(13+u), vr(17+u), vr(21+u)
		b.I(isa.VGLoad, rg(head), rg(vr(8)), im(rowOff)).Space(spaceA).Comment("A[i][0]")
		b.I(isa.VGLoad, rg(data), rg(vr(6)), im(rowOff)).Space(spaceA)
		b.I(isa.VMulF, rg(factor), rg(head), rg(vr(5)))
		b.I(isa.VMulF, rg(res), rg(factor), rg(vr(3)))
		b.I(isa.VSubF, rg(res), rg(data), rg(res))
		b.I(isa.VGStore, rg(vr(7)), rg(res), im(rowOff)).Space(spaceC)
	}
	b.NoOvf(isa.VAdd, rg(vr(6)), rg(vr(6)), im(unroll*nCols*4))
	b.NoOvf(isa.VAdd, rg(vr(7)), rg(vr(7)), im(unroll*nCols*4))
	b.NoOvf(isa.VAdd, rg(vr(8)), rg(vr(8)), im(unroll*nCols*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	a := randFloats(rng, totalRows*nCols)
	a[0] = f32(1.5) // well-conditioned pivot
	want := make([]uint32, (totalRows-1)*nCols)
	rcpPivot := 1 / asF(a[0])
	for i := 1; i < totalRows; i++ {
		factor := asF(a[i*nCols]) * rcpPivot
		for j := 0; j < nCols; j++ {
			res := factor * asF(a[j])
			want[(i-1)*nCols+j] = f32(asF(a[i*nCols+j]) - res)
		}
	}
	return &Workload{
		Abbrev: "GE", FullName: "Gaussian Elimination", Prog: prog,
		PaperVRegKB: 8.0, PaperSRegKB: 0.141, PaperLDSKB: 0,
		PaperPreemptUs: 92.3, PaperResumeUs: 74.0,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error { return d.WriteWords(aBase, a) },
		WarpSetup: func(w *sim.Warp) {
			firstRow := 1 + w.ID*rowsPerWarp
			w.SRegs[4] = uint64(aBase + firstRow*nCols*4)
			w.SRegs[5] = uint64(outBase + w.ID*rowsPerWarp*nCols*4)
			w.SRegs[6] = uint64(p.ItersPerWarp)
			w.SRegs[7] = uint64(aBase)
		},
		Verify: func(d *sim.Device) error { return checkWords(d, outBase, want, "GE") },
	}, nil
}

// kmCentroids returns the K x D centroid table used by the KM workload.
func kmCentroids() [][]float32 {
	return [][]float32{
		{0.1, 0.2, -0.3, 0.4},
		{-0.5, 0.1, 0.7, -0.2},
		{0.9, -0.8, 0.2, 0.0},
		{-0.1, -0.4, -0.6, 0.5},
		{0.3, 0.6, 0.1, -0.9},
	}
}

// NewKM builds K-Means assignment (13.0 KB vregs): D=4, K=5 centroids in
// scalar registers, 7 points per lane per iteration scheduled
// load-all / compute-all / store-all (the ILP-oriented shape -O3
// produces), which keeps ~45 registers live mid-iteration.
func NewKM(p Params) (*Workload, error) {
	const (
		dims     = 4
		unrollPt = 7
	)
	cents := kmCentroids()
	k := len(cents)
	ptsPerIter := unrollPt * isa.WarpSize
	ptsPerWarp := p.ItersPerWarp * ptsPerIter
	warps := p.NumBlocks * p.WarpsPerBlock
	totalPts := warps * ptsPerWarp
	ptsBase := p.base()
	lblBase := ptsBase + totalPts*dims*4

	// Register map: v0 lane, v1 point ptr, v2 label ptr;
	// dims v3..v30 (7x4), best v31..v37, bestIdx v38..v44,
	// scratch acc v45, diff v46.
	b := isa.NewBuilder("km", 49, 36, 0)
	// ABI: s4=points tile, s5=labels tile, s6=iters,
	// s16..s16+K*D-1 = centroid coordinates (row-major).
	b.I(isa.VLaneID, rg(vr(0)))
	b.NoOvf(isa.VShl, rg(vr(1)), rg(vr(0)), im(4)).Comment("lane*D*4")
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), rg(sr(4))).Comment("point ptr")
	b.NoOvf(isa.VShl, rg(vr(2)), rg(vr(0)), im(2))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), rg(sr(5))).Comment("label ptr")
	b.Label("loop")
	// Phase 1: load every point's coordinates.
	for u := 0; u < unrollPt; u++ {
		x := 3 + u*dims
		ptOff := u * isa.WarpSize * dims * 4
		for dIdx := 0; dIdx < dims; dIdx++ {
			b.I(isa.VGLoad, rg(vr(x+dIdx)), rg(vr(1)), im(ptOff+dIdx*4)).Space(spaceA)
		}
	}
	// Phase 2: distances and argmin per point.
	const acc, diff = 45, 46
	for u := 0; u < unrollPt; u++ {
		x := 3 + u*dims
		best, bestIdx := 31+u, 38+u
		b.I(isa.VMov, rg(vr(best)), fi(1e30))
		b.I(isa.VMov, rg(vr(bestIdx)), im(0))
		for c := 0; c < k; c++ {
			b.I(isa.VSubF, rg(vr(diff)), rg(vr(x)), rg(sr(16+c*dims)))
			b.I(isa.VMulF, rg(vr(acc)), rg(vr(diff)), rg(vr(diff)))
			for dIdx := 1; dIdx < dims; dIdx++ {
				b.I(isa.VSubF, rg(vr(diff)), rg(vr(x+dIdx)), rg(sr(16+c*dims+dIdx)))
				b.I(isa.VMadF, rg(vr(acc)), rg(vr(diff)), rg(vr(diff)), rg(vr(acc)))
			}
			b.I(isa.VCmpLtF, rg(vr(acc)), rg(vr(best)))
			b.I(isa.VCndMask, rg(vr(bestIdx)), rg(vr(bestIdx)), im(c))
			b.I(isa.VMinF, rg(vr(best)), rg(vr(best)), rg(vr(acc)))
		}
	}
	// Phase 3: store all labels.
	for u := 0; u < unrollPt; u++ {
		b.I(isa.VGStore, rg(vr(2)), rg(vr(38+u)), im(u*isa.WarpSize*4)).Space(spaceC)
	}
	b.NoOvf(isa.VAdd, rg(vr(1)), rg(vr(1)), im(ptsPerIter*dims*4))
	b.NoOvf(isa.VAdd, rg(vr(2)), rg(vr(2)), im(ptsPerIter*4))
	b.I(isa.SSub, rg(sr(6)), rg(sr(6)), im(1))
	b.I(isa.SCmpGt, rg(sr(6)), im(0))
	b.Branch(isa.SCBranchSCC1, "loop")
	b.I(isa.SEndpgm)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	pts := randFloats(rng, totalPts*dims)
	want := make([]uint32, totalPts)
	for i := 0; i < totalPts; i++ {
		best := float32(1e30)
		bestIdx := uint32(0)
		for c := 0; c < k; c++ {
			d0 := asF(pts[i*dims]) - cents[c][0]
			acc := d0 * d0
			for dIdx := 1; dIdx < dims; dIdx++ {
				dd := asF(pts[i*dims+dIdx]) - cents[c][dIdx]
				acc = dd*dd + acc
			}
			if acc < best {
				bestIdx = uint32(c)
			}
			if acc < best {
				best = acc
			}
		}
		want[i] = bestIdx
	}
	return &Workload{
		Abbrev: "KM", FullName: "K-Means", Prog: prog,
		PaperVRegKB: 13.0, PaperSRegKB: 0.141, PaperLDSKB: 0,
		PaperPreemptUs: 327.4, PaperResumeUs: 283.1,
		NumBlocks: p.NumBlocks, WarpsPerBlock: p.WarpsPerBlock,
		Init: func(d *sim.Device) error { return d.WriteWords(ptsBase, pts) },
		WarpSetup: func(w *sim.Warp) {
			w.SRegs[4] = warpTileBase(ptsBase, w.ID, ptsPerWarp*dims)
			w.SRegs[5] = warpTileBase(lblBase, w.ID, ptsPerWarp)
			w.SRegs[6] = uint64(p.ItersPerWarp)
			for c := 0; c < k; c++ {
				for dIdx := 0; dIdx < dims; dIdx++ {
					w.SRegs[16+c*dims+dIdx] = uint64(f32(cents[c][dIdx]))
				}
			}
		},
		Verify: func(d *sim.Device) error { return checkWords(d, lblBase, want, "KM") },
	}, nil
}
