; Minimized from generated-corpus seed 6 (gen-smoke differential sweep).
;
; v1 is fully defined (7), then partially redefined (9) under a divergent
; EXEC mask. The masked-out lanes' value must survive any preemption
; between the two writes: liveness that treats the masked write as a full
; kill drops v1 from every live-in context above it, so LIVE / CKPT /
; CS-Defer / CTXBack all restored poison into lanes 2..63.
.kernel reg-masked-partial-def
.vregs 3
.sregs 8
  v_laneid v0
  v_mov v1, 7
  v_xor v2, v0, 42
  v_cmp_lt_i32 v0, 2          ; vcc = lanes 0,1
  s_and_saveexec_vcc s0       ; exec = {0,1}
  v_mov v1, 9                 ; partial def: must not kill v1
  v_add v2, v2, v1
  s_setexec s0                ; reconverge to the full mask
  v_shl v0, v0, 2 !noovf
  v_add v0, v0, s4 !noovf
  v_gstore v0, v1, 0
  v_gstore v0, v2, 256
  s_endpgm
