; Constructed while fixing the generator-found SM-flush restart bugs, to
; harden the one resume path the sweep cannot reach under the current
; issue/hook ordering: a warp with no entry snapshot.
;
; v1 is read before it is written, so the launch-contract zero is
; observable. A warp that is preempted before it ever issued has no entry
; snapshot; its SM-flush resume must still re-zero the vector file rather
; than leave the preemption poison for the restart to read.
.kernel reg-flush-coldwarp
.vregs 2
.sregs 8
  v_laneid v0
  v_add v1, v1, 1             ; launch v1 = 0
  v_add v1, v1, v0
  v_shl v0, v0, 2 !noovf
  v_add v0, v0, s4 !noovf
  v_gstore v0, v1, 0
  s_endpgm
