; Minimized from generated-corpus seed 745 (1000-seed differential sweep).
;
; The loop reads a tile word, folds it into an accumulator, and then
; overwrites the same word — a memory anti-dependence between the load
; and the store. CKPT resumes by replaying from the last checkpoint, and
; a replay that crosses the store re-executes the load against memory
; the dropped incarnation already mutated: the replayed load observes
; its own future store, the accumulator folds the wrong value, and the
; final result diverges from the uninterrupted run. This is the same
; hazard class SM-flushing refuses outright; CKPT cannot refuse, so it
; must pin a checkpoint right after every global store that may alias a
; global load, bounding every replay region to re-read only memory its
; own execution has not yet touched.
.kernel reg-ckpt-replay-alias
.vregs 4
.sregs 8
  v_laneid v0
  v_shl v0, v0, 2 !noovf
  v_add v0, v0, s4 !noovf     ; per-lane tile word
  v_mov v3, 0                 ; accumulator
  s_mov s5, 4
loop:
  v_gload v1, v0, 0           ; read own tile word...
  v_add v3, v3, v1            ; ...fold it into the accumulator...
  v_add v1, v1, 7
  v_gstore v0, v1, 0          ; ...then overwrite it (anti-dependence)
  s_sub s5, s5, 1
  s_cmp_gt s5, 0
  s_cbranch_scc1 loop
  v_gstore v0, v3, 256        ; result in the tile's second half
  s_endpgm
