; Minimized from generated-corpus seed 11 (gen-smoke differential sweep).
;
; The kernel stores to its tile and loads the value back. Restarting it
; from scratch (SM-flushing) re-runs the load against device memory the
; dropped incarnation already mutated — the second incarnation observes
; its predecessor's v_gstore instead of the launch image and produces a
; different final tile. SM-flushing must refuse such kernels the same way
; it refuses atomics; only streaming kernels are restartable.
.kernel reg-flush-alias
.vregs 2
.sregs 8
  v_laneid v0
  v_shl v0, v0, 2 !noovf
  v_add v0, v0, s4 !noovf
  v_gstore v0, v0, 0
  v_gload v1, v0, 0           ; may alias the store above
  v_add v1, v1, 1
  v_gstore v0, v1, 0
  s_endpgm
