; Minimized from generated-corpus seed 4 (gen-smoke differential sweep).
;
; VCC and SCC are read before the kernel ever writes them, so both launch
; zeros are architecturally observable. An SM-flush restart that reloads
; only the scalar file leaves the preemption poison (0xDEADBEEF) in the
; flags: v_cndmask flips lanes to 9 and s_cbranch_scc1 skips the xor.
.kernel reg-flush-flags
.vregs 3
.sregs 8
  v_laneid v0
  v_mov v1, 5
  v_cndmask v1, v1, 9         ; reads launch VCC (all zero): keeps 5
  s_cbranch_scc1 skip         ; reads launch SCC (0): falls through
  v_xor v1, v1, 3
skip:
  v_mov v2, 1
  v_add v2, v2, v1
  v_shl v0, v0, 2 !noovf
  v_add v0, v0, s4 !noovf
  v_gstore v0, v1, 0
  v_gstore v0, v2, 256
  s_endpgm
