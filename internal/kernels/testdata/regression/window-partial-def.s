; Minimized from generated-corpus seed 19 (gen-smoke differential sweep).
;
; A flashback window that straddles the masked v_mov re-executes it on
; resume. The write merges into its destination — inactive lanes keep the
; prior value — so the re-execution implicitly reads v1's version from
; before the window. The window analyzer has to count that hidden operand
; (and the plan validator has to check it), or CTXBack restores a context
; that re-executes the store of v1 with poison in the masked-out lanes.
.kernel reg-window-partial-def
.vregs 3
.sregs 8
  v_laneid v0
  v_mov v1, 7
  v_mov v2, 3
  v_cmp_lt_i32 v0, 2
  s_and_saveexec_vcc s0
  v_mov v1, 9                 ; partial def inside the window
  v_xor v2, v2, 5
  v_add v2, v2, v1
  v_xor v2, v2, 11
  s_setexec s0
  v_add v1, v1, v2
  v_shl v0, v0, 2 !noovf
  v_add v0, v0, s4 !noovf
  v_gstore v0, v1, 0
  s_endpgm
