; Minimized from generated-corpus seed 2 (gen-smoke differential sweep).
;
; The LDS share is read before it is written: the launch contract zeroes
; it, and releasing an SM poisons it (0xDEADBEEF). An SM-flush restart
; must re-establish the launch zeros or the first v_lload observes the
; poison.
.kernel reg-flush-lds
.vregs 3
.sregs 8
.lds 256
  v_laneid v0
  v_shl v0, v0, 2 !noovf
  v_lload v1, v0, 0           ; launch LDS is all zeros
  v_add v1, v1, 7
  v_lstore v0, v1, 0
  v_lload v2, v0, 0
  v_add v0, v0, s4 !noovf
  v_gstore v0, v2, 0
  s_endpgm
