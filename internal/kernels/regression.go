package kernels

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"ctxback/internal/isa"
	"ctxback/internal/sim"
)

// testdata/regression holds the minimized regression kernels distilled
// from the bugs the generated-corpus differential sweep (internal/gen)
// uncovered. Each file names the bug it pins; the programs stay checked
// in as assembly so the exact instruction sequence that reproduced the
// divergence is the artifact under version control, not a builder that
// might drift.
//
//go:embed testdata/regression/*.s
var regressionFS embed.FS

// RegressionNames lists the regression kernels in sorted order.
func RegressionNames() []string {
	entries, err := regressionFS.ReadDir("testdata/regression")
	if err != nil {
		panic(fmt.Sprintf("kernels: embedded regression corpus missing: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".s"))
	}
	sort.Strings(names)
	return names
}

// Regression assembles one minimized regression kernel by file name
// (without the .s suffix).
func Regression(name string) (*isa.Program, error) {
	src, err := regressionFS.ReadFile("testdata/regression/" + name + ".s")
	if err != nil {
		return nil, fmt.Errorf("kernels: unknown regression kernel %q: %w", name, err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		return nil, fmt.Errorf("kernels: regression kernel %q: %w", name, err)
	}
	return prog, nil
}

// RegressionTileBytes is the per-warp output tile each regression kernel
// addresses through s4.
const RegressionTileBytes = 512

// RegressionSetup is the common warp ABI of the regression corpus: s4 is
// the warp's private output tile base.
func RegressionSetup(base int) func(w *sim.Warp) {
	return func(w *sim.Warp) {
		w.SRegs[4] = uint64(base + w.ID*RegressionTileBytes)
	}
}
