package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer builds a canonical little-endian payload. It is the shared
// low-level encoder for every artifact payload: the owning packages
// (cfg, liveness, core, preempt, harness) serialize their own types with
// it so unexported fields never have to cross package boundaries.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty payload writer.
func NewWriter() *Writer { return &Writer{} }

// Data returns the accumulated payload bytes.
func (w *Writer) Data() []byte { return w.buf }

func (w *Writer) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 encodes a signed value as its two's-complement u64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int encodes an int as I64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool encodes false/true as exactly 0/1 (the reader rejects any other
// byte, keeping the form canonical).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 encodes the IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a u32 length prefix followed by the raw bytes.
func (w *Writer) Bytes(v []byte) {
	w.U32(uint32(len(v)))
	w.buf = append(w.buf, v...)
}

// Str writes a string as Bytes.
func (w *Writer) Str(v string) {
	w.U32(uint32(len(v)))
	w.buf = append(w.buf, v...)
}

// Reader decodes a payload produced by Writer. It is sticky-error: the
// first failure latches, later reads return zero values, and Close
// reports the latched error (or a canonical-form violation if bytes
// remain unconsumed).
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps payload bytes for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the latched decode error, if any.
func (r *Reader) Err() error { return r.err }

// Close verifies the payload was consumed exactly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		r.err = fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.data)-r.off)
	}
	return r.err
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Fail latches an external decode error (e.g. from a nested codec) so
// the caller's single Err/Close check observes it.
func (r *Reader) Fail(err error) { r.fail(err) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.data)))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int decodes an I64 and checks it fits the platform int.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.fail(fmt.Errorf("%w: integer %d overflows int", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: non-canonical bool", ErrCorrupt))
		return false
	}
}

func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes decodes a u32 length prefix and returns the raw bytes (a view
// into the underlying buffer — copy if retained).
func (r *Reader) Bytes() []byte {
	n := r.U32()
	return r.take(int(n))
}

// Str decodes Bytes as a string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// Len counts a non-negative collection length and bounds it by the
// remaining payload so corrupt lengths fail fast instead of allocating.
func (r *Reader) Len() int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail(fmt.Errorf("%w: implausible collection length %d", ErrCorrupt, n))
		return 0
	}
	return n
}

// fnv1a64 is the per-section checksum (same construction the snapshot
// CSNP format uses).
func fnv1a64(b []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
