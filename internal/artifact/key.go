package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Key identifies one artifact: a kind plus a canonical blob of labeled
// input fields. The disk address is the SHA-256 of both.
//
// Blob layout: u32 SchemaVersion, then per field
//
//	u16 len(label) | label | u8 tag | u32 len(value) | value
//
// Every component is length-prefixed, so distinct field sequences can
// never collide by re-splitting bytes across boundaries; the collision
// regression test pins this.
type Key struct {
	kind string
	blob []byte
}

// Field type tags. Tags make a key self-describing enough that e.g. the
// integer 1 and the one-byte string "\x01" under the same label still
// differ.
const (
	tagBytes = 0x01
	tagInt   = 0x02
	tagStr   = 0x03
	tagBool  = 0x04
	tagF64   = 0x05
)

// NewKey starts a key of the given kind. The store schema version is
// folded in automatically so a format bump misses every old entry.
func NewKey(kind string) *Key {
	k := &Key{kind: kind}
	k.blob = binary.LittleEndian.AppendUint32(k.blob, SchemaVersion)
	return k
}

// RawKey reconstructs a key from its kind and blob (as decoded from an
// entry's key-echo section). Used by round-trip tests and fuzzing.
func RawKey(kind string, blob []byte) Key {
	return Key{kind: kind, blob: append([]byte(nil), blob...)}
}

func (k *Key) field(label string, tag uint8, value []byte) *Key {
	k.blob = binary.LittleEndian.AppendUint16(k.blob, uint16(len(label)))
	k.blob = append(k.blob, label...)
	k.blob = append(k.blob, tag)
	k.blob = binary.LittleEndian.AppendUint32(k.blob, uint32(len(value)))
	k.blob = append(k.blob, value...)
	return k
}

// Bytes adds a labeled byte-slice field (e.g. a canonical program
// encoding).
func (k *Key) Bytes(label string, v []byte) *Key { return k.field(label, tagBytes, v) }

// Str adds a labeled string field.
func (k *Key) Str(label, v string) *Key { return k.field(label, tagStr, []byte(v)) }

// Int adds a labeled integer field.
func (k *Key) Int(label string, v int) *Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
	return k.field(label, tagInt, b[:])
}

// I64 adds a labeled 64-bit integer field.
func (k *Key) I64(label string, v int64) *Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return k.field(label, tagInt, b[:])
}

// Bool adds a labeled boolean field.
func (k *Key) Bool(label string, v bool) *Key {
	b := []byte{0}
	if v {
		b[0] = 1
	}
	return k.field(label, tagBool, b)
}

// F64 adds a labeled float field by IEEE-754 bit pattern.
func (k *Key) F64(label string, v float64) *Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return k.field(label, tagF64, b[:])
}

// Kind returns the key's kind string.
func (k *Key) Kind() string { return k.kind }

// Blob returns the canonical field blob (read-only).
func (k *Key) Blob() []byte { return k.blob }

// Hash returns the hex SHA-256 content address of the key.
func (k *Key) Hash() string {
	h := sha256.New()
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(k.kind)))
	h.Write(n[:])
	h.Write([]byte(k.kind))
	h.Write(k.blob)
	return hex.EncodeToString(h.Sum(nil))
}
