// Package artifact is a content-addressed, disk-persisted, cross-process
// store for expensive deterministic build products: compiled CTXBack
// plans, CFG/liveness analyses, checkpoint-site tables, prepared-workload
// metadata and whole evaluation matrices. A cold KM compile costs ~1.4s;
// loading the same plans from a warm store costs single-digit
// milliseconds, and the store is shared by every process pointed at the
// same -cache-dir.
//
// # Keying
//
// Every artifact is addressed by the SHA-256 of a canonical key blob
// built with NewKey: a kind string, the store schema version, and a
// sequence of (label, tag, value) fields covering every semantic input
// of the computation (canonical program bytes, feature flags, checkpoint
// interval, device config, workload params, ...). Labels and values are
// length-prefixed, so no two distinct field sequences share an encoding
// and key collisions reduce to SHA-256 collisions.
//
// # Wire format
//
// An entry on disk is a "CART" container: magic, format version, then two
// framed sections (the full key echo and the payload), each trailed by an
// FNV-1a 64 checksum. Loaders verify the magic, version, section framing,
// both checksums, the absence of trailing bytes, and — crucially — that
// the echoed key bytes equal the requesting key byte-for-byte. Any
// mismatch is a cache miss, never wrong bytes: the caller recomputes and
// atomically replaces the entry.
//
// # Invalidation
//
// There is no in-place invalidation. Artifacts are immutable once
// published; a semantic change to any producer must bump SchemaVersion,
// which changes every key and orphans the old entries (a cache dir is
// disposable — delete it to reclaim space). The `make cache-diff` gate
// byte-compares cold, warm and disabled runs to catch a producer change
// that forgot the bump.
//
// # Cross-process protocol
//
// Publication is crash-safe: write to a unique temp file in the store
// dir, then rename(2) onto the final name — readers observe either the
// old entry, no entry, or the complete new entry. Duplicate work is
// suppressed at two levels: within a process, Do single-flights per key
// (concurrent callers block on one compute and share its result);
// across processes, the computing process holds a <key>.lock file
// created with O_CREATE|O_EXCL while it computes, and losers poll for
// the artifact to appear. Locks are advisory only — a stale lock
// (holder crashed) is taken over by mtime age, and a poll timeout falls
// back to computing locally, so a wedged peer can cost duplicate work
// but never liveness or correctness.
package artifact

import "errors"

// SchemaVersion is baked into every key blob. Bump it whenever any
// serialized form or any producer's semantics change: old entries then
// simply miss instead of deserializing into wrong results.
const SchemaVersion = 1

// Sentinel errors for entry validation failures. All of them mean
// "treat as a cache miss and recompute"; they are distinguished so
// tests (and curious humans) can tell tampering modes apart.
var (
	// ErrTruncated: the container ends before its framing says it should.
	ErrTruncated = errors.New("artifact: truncated entry")
	// ErrCorrupt: framing, checksum or canonical-form violation.
	ErrCorrupt = errors.New("artifact: corrupt entry")
	// ErrStale: the container carries an unknown format version.
	ErrStale = errors.New("artifact: stale format version")
	// ErrKeyMismatch: the entry's echoed key differs from the requesting
	// key — a hash collision or a renamed/moved file.
	ErrKeyMismatch = errors.New("artifact: key echo mismatch")
)
