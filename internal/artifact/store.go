package artifact

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Container framing constants.
const (
	magic         = "CART"
	formatVersion = 1

	secKey     = 1
	secPayload = 2
)

// EncodeEntry frames a payload for disk: magic, format version, the key
// echo section and the payload section, each with an FNV-1a 64 trailer.
func EncodeEntry(key *Key, payload []byte) []byte {
	kw := NewWriter()
	kw.Str(key.kind)
	kw.Bytes(key.blob)
	echo := kw.Data()

	out := make([]byte, 0, len(magic)+2+2*(2+4+8)+len(echo)+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, formatVersion)
	out = appendSection(out, secKey, echo)
	out = appendSection(out, secPayload, payload)
	return out
}

func appendSection(out []byte, id uint16, body []byte) []byte {
	out = binary.LittleEndian.AppendUint16(out, id)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint64(out, fnv1a64(body))
}

// DecodeEntry validates a container and returns the echoed key and the
// payload. Every violation maps to one of the sentinel errors; callers
// treat any error as a miss.
func DecodeEntry(data []byte) (Key, []byte, error) {
	var key Key
	if len(data) < len(magic)+2 {
		return key, nil, fmt.Errorf("%w: %d-byte container", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return key, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):]); v != formatVersion {
		return key, nil, fmt.Errorf("%w: format version %d (want %d)", ErrStale, v, formatVersion)
	}
	off := len(magic) + 2
	echo, off, err := readSection(data, off, secKey)
	if err != nil {
		return key, nil, err
	}
	payload, off, err := readSection(data, off, secPayload)
	if err != nil {
		return key, nil, err
	}
	if off != len(data) {
		return key, nil, fmt.Errorf("%w: %d trailing container bytes", ErrCorrupt, len(data)-off)
	}
	kr := NewReader(echo)
	kind := kr.Str()
	blob := kr.Bytes()
	if err := kr.Close(); err != nil {
		return key, nil, fmt.Errorf("%w: key echo: %v", ErrCorrupt, err)
	}
	return RawKey(kind, blob), payload, nil
}

func readSection(data []byte, off int, wantID uint16) (body []byte, next int, err error) {
	if off+6 > len(data) {
		return nil, 0, fmt.Errorf("%w: section header", ErrTruncated)
	}
	id := binary.LittleEndian.Uint16(data[off:])
	n := int(binary.LittleEndian.Uint32(data[off+2:]))
	off += 6
	if id != wantID {
		return nil, 0, fmt.Errorf("%w: section id %d (want %d)", ErrCorrupt, id, wantID)
	}
	if off+n+8 > len(data) {
		return nil, 0, fmt.Errorf("%w: section %d body", ErrTruncated, id)
	}
	body = data[off : off+n]
	sum := binary.LittleEndian.Uint64(data[off+n:])
	if sum != fnv1a64(body) {
		return nil, 0, fmt.Errorf("%w: section %d checksum", ErrCorrupt, id)
	}
	return body, off + n + 8, nil
}

// Store is one cache directory. The zero value is unusable; Open it.
type Store struct {
	dir string

	// Advisory-lock tuning, overridable in tests. LockPoll is the wait
	// between checks while another process holds a key's lock; LockStale
	// is the age past which a lock is presumed abandoned and taken over;
	// LockTimeout bounds the total wait before computing locally anyway.
	LockPoll    time.Duration
	LockStale   time.Duration
	LockTimeout time.Duration

	flights sync.Map // hash -> *flight

	computes atomic.Int64
	diskHits atomic.Int64
	memHits  atomic.Int64
}

// flight is one in-process single-flight computation; it doubles as the
// in-memory content-keyed cache entry afterwards.
type flight struct {
	once sync.Once
	val  any
	err  error
}

// Open creates/opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{
		dir:         dir,
		LockPoll:    5 * time.Millisecond,
		LockStale:   10 * time.Second,
		LockTimeout: 60 * time.Second,
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats reports lifetime counters: computes actually run, disk loads,
// and in-memory single-flight hits.
func (s *Store) Stats() (computes, diskHits, memHits int64) {
	return s.computes.Load(), s.diskHits.Load(), s.memHits.Load()
}

func (s *Store) path(hash string) string { return filepath.Join(s.dir, hash+".art") }

// Get loads and validates the entry for key, returning its payload.
// Any validation failure — truncation, corruption, version skew, key
// mismatch — reports a miss.
func (s *Store) Get(key *Key) ([]byte, bool) {
	payload, err := s.load(key)
	return payload, err == nil
}

func (s *Store) load(key *Key) ([]byte, error) {
	data, err := os.ReadFile(s.path(key.Hash()))
	if err != nil {
		return nil, err
	}
	echo, payload, err := DecodeEntry(data)
	if err != nil {
		return nil, err
	}
	if echo.kind != key.kind || string(echo.blob) != string(key.blob) {
		return nil, fmt.Errorf("%w: kind %q", ErrKeyMismatch, echo.kind)
	}
	return payload, nil
}

// Put frames and atomically publishes a payload under key: temp file in
// the store dir, then rename. Concurrent publishers of the same key are
// harmless — the content is deterministic, so last-writer-wins installs
// identical bytes.
func (s *Store) Put(key *Key, payload []byte) error {
	hash := key.Hash()
	f, err := os.CreateTemp(s.dir, hash+".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(EncodeEntry(key, payload))
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, s.path(hash))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact: %w", werr)
	}
	return nil
}

// Do returns the value for key, computing it at most once per process
// and — barring crashes and lock timeouts — at most once fleet-wide.
//
// decode turns a validated disk payload into the value; a decode error
// is a miss (the entry is recomputed and replaced). compute produces
// the value plus its disk payload; a nil payload skips publication.
// The returned value is shared by every in-process caller of the same
// key, so it must be immutable (which all artifact values are).
func (s *Store) Do(key *Key,
	decode func(payload []byte) (any, error),
	compute func() (value any, payload []byte, err error),
) (any, error) {
	hash := key.Hash()
	fl, loaded := s.flights.LoadOrStore(hash, &flight{})
	f := fl.(*flight)
	if loaded {
		s.memHits.Add(1)
	}
	f.once.Do(func() { f.val, f.err = s.doCold(key, hash, decode, compute) })
	if f.err != nil {
		// Do not memoize failures: a transient error (disk full during
		// publish never reaches here, but compute errors may be
		// environmental) should not wedge the key for the process.
		s.flights.CompareAndDelete(hash, fl)
	}
	return f.val, f.err
}

func (s *Store) doCold(key *Key, hash string,
	decode func([]byte) (any, error),
	compute func() (any, []byte, error),
) (any, error) {
	if payload, err := s.load(key); err == nil {
		if v, derr := decode(payload); derr == nil {
			s.diskHits.Add(1)
			return v, nil
		}
		// Decodable container but undecodable payload: recompute and
		// overwrite below.
	}
	release, _ := s.acquire(hash)
	defer release()
	// Re-check the disk whether or not we hold the lock: a peer may have
	// published while we were waiting (or between our first load and the
	// lock acquisition).
	if payload, err := s.load(key); err == nil {
		if v, derr := decode(payload); derr == nil {
			s.diskHits.Add(1)
			return v, nil
		}
	}
	v, payload, err := compute()
	if err != nil {
		return nil, err
	}
	s.computes.Add(1)
	if payload != nil {
		// Publication failure is not a compute failure: the value is
		// good, the disk just didn't take it.
		_ = s.Put(key, payload)
	}
	return v, nil
}

// acquire takes the advisory per-key lock, or waits for the holder.
// It returns acquired=false when the artifact appeared while waiting,
// when the wait timed out, or when the dir refuses lock files — in all
// three cases the caller re-checks the disk and then computes locally.
func (s *Store) acquire(hash string) (release func(), acquired bool) {
	lock := filepath.Join(s.dir, hash+".lock")
	none := func() {}
	deadline := time.Now().Add(s.LockTimeout)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(lock) }, true
		}
		if !os.IsExist(err) {
			return none, false
		}
		if _, err := os.Stat(s.path(hash)); err == nil {
			return none, false // holder published; caller reloads
		}
		if fi, err := os.Stat(lock); err == nil && time.Since(fi.ModTime()) > s.LockStale {
			// Holder presumed dead; steal the lock. The remove may race
			// with another staleness observer — both fall through to the
			// O_EXCL create, which arbitrates.
			os.Remove(lock)
			continue
		}
		if time.Now().After(deadline) {
			return none, false
		}
		time.Sleep(s.LockPoll)
	}
}

// defaultStore is the process-wide store configured by -cache-dir.
// nil means disabled: every consumer falls back to its compute path,
// byte-identical to a build without the artifact layer.
var defaultStore atomic.Pointer[Store]

// SetDefault installs the process-wide store (nil disables caching) and
// returns the previous one so tests can restore it.
func SetDefault(s *Store) *Store { return defaultStore.Swap(s) }

// Default returns the process-wide store, or nil when caching is off.
func Default() *Store { return defaultStore.Load() }
