package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWireRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(7)
	w.U16(300)
	w.U32(1 << 20)
	w.U64(1 << 40)
	w.I64(-9)
	w.Int(-1234567)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.5)
	w.Bytes([]byte{1, 2, 3})
	w.Str("hello")
	r := NewReader(w.Data())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 300 {
		t.Errorf("U16 = %d", got)
	}
	if got := r.U32(); got != 1<<20 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -9 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -1234567 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %g", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReaderRejectsNonCanonical(t *testing.T) {
	// A 2 is not a canonical bool.
	r := NewReader([]byte{2})
	r.Bool()
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-canonical bool: %v", err)
	}
	// Trailing bytes violate exact consumption.
	r = NewReader([]byte{0, 0})
	r.Bool()
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: %v", err)
	}
	// Truncated read latches.
	r = NewReader([]byte{1, 2})
	r.U32()
	if err := r.Close(); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
}

// TestKeyFieldCoverage is the collision regression: every field kind,
// every label, and every value perturbation must move the hash.
func TestKeyFieldCoverage(t *testing.T) {
	base := func() *Key {
		return NewKey("test/kind").
			Bytes("b", []byte{1, 2}).
			Str("s", "x").
			Int("i", 5).
			I64("j", -7).
			Bool("f", false).
			F64("g", 1.25)
	}
	seen := map[string]string{base().Hash(): "base"}
	add := func(name string, k *Key) {
		t.Helper()
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}
	add("kind", NewKey("test/kind2").
		Bytes("b", []byte{1, 2}).Str("s", "x").Int("i", 5).
		I64("j", -7).Bool("f", false).F64("g", 1.25))
	add("bytes-value", NewKey("test/kind").
		Bytes("b", []byte{1, 3}).Str("s", "x").Int("i", 5).
		I64("j", -7).Bool("f", false).F64("g", 1.25))
	add("str-value", NewKey("test/kind").
		Bytes("b", []byte{1, 2}).Str("s", "y").Int("i", 5).
		I64("j", -7).Bool("f", false).F64("g", 1.25))
	add("int-value", NewKey("test/kind").
		Bytes("b", []byte{1, 2}).Str("s", "x").Int("i", 6).
		I64("j", -7).Bool("f", false).F64("g", 1.25))
	add("i64-value", NewKey("test/kind").
		Bytes("b", []byte{1, 2}).Str("s", "x").Int("i", 5).
		I64("j", 7).Bool("f", false).F64("g", 1.25))
	add("bool-value", NewKey("test/kind").
		Bytes("b", []byte{1, 2}).Str("s", "x").Int("i", 5).
		I64("j", -7).Bool("f", true).F64("g", 1.25))
	add("f64-value", NewKey("test/kind").
		Bytes("b", []byte{1, 2}).Str("s", "x").Int("i", 5).
		I64("j", -7).Bool("f", false).F64("g", 1.5))
	add("label", NewKey("test/kind").
		Bytes("c", []byte{1, 2}).Str("s", "x").Int("i", 5).
		I64("j", -7).Bool("f", false).F64("g", 1.25))
	add("dropped-field", NewKey("test/kind").
		Bytes("b", []byte{1, 2}).Str("s", "x").Int("i", 5).
		I64("j", -7).Bool("f", false))
}

// TestKeyBoundaryCollisions pins the length-prefixed layout: moving
// bytes between a label and its value, splitting one field into two, or
// moving bytes between kind and blob must all produce distinct hashes.
func TestKeyBoundaryCollisions(t *testing.T) {
	pairs := [][2]*Key{
		// "ab" + "c" vs "a" + "bc": label/value boundary shift.
		{NewKey("k").Bytes("ab", []byte("c")), NewKey("k").Bytes("a", []byte("bc"))},
		// One two-byte value vs two one-byte fields.
		{NewKey("k").Bytes("x", []byte("ab")),
			NewKey("k").Bytes("x", []byte("a")).Bytes("x", []byte("b"))},
		// Same concatenated bytes across the kind/blob boundary.
		{NewKey("ka").Str("f", "b"), NewKey("k").Str("f", "ab")},
		// Same 8 bytes under different tags.
		{NewKey("k").Int("v", 1), NewKey("k").I64("v", 1).Bool("pad", false)},
	}
	for i, p := range pairs {
		if p[0].Hash() == p[1].Hash() {
			t.Errorf("pair %d: boundary shift collides (%q/% x vs %q/% x)",
				i, p[0].Kind(), p[0].Blob(), p[1].Kind(), p[1].Blob())
		}
	}
	// The same field sequence, however, is deterministic.
	if NewKey("k").Int("v", 1).Hash() != NewKey("k").Int("v", 1).Hash() {
		t.Error("identical keys hash differently")
	}
}

func TestStorePutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test/blob").Int("n", 42)
	payload := []byte("the artifact payload")
	if _, ok := st.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// A different key misses even though the file for the first exists.
	if _, ok := st.Get(NewKey("test/blob").Int("n", 43)); ok {
		t.Fatal("hit for a different key")
	}
}

func TestEncodeDecodeEntryIdentity(t *testing.T) {
	key := NewKey("test/identity").Str("who", "me").Bytes("raw", []byte{0, 255, 7})
	payload := []byte("payload bytes")
	enc := EncodeEntry(key, payload)
	echo, got, err := DecodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	if echo.Kind() != key.Kind() || !bytes.Equal(echo.Blob(), key.Blob()) {
		t.Fatal("key echo mismatch")
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	re := EncodeEntry(&echo, got)
	if !bytes.Equal(re, enc) {
		t.Fatal("encode∘decode∘encode is not byte-identical")
	}
}

// TestDoSingleFlight races 8 workers on one cold key: exactly one
// compute, everyone sees the same value, the rest are memory hits.
func TestDoSingleFlight(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test/flight").Int("n", 1)
	var computes int
	var mu sync.Mutex
	do := func() (any, error) {
		return st.Do(key,
			func(payload []byte) (any, error) { return string(payload), nil },
			func() (any, []byte, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				time.Sleep(20 * time.Millisecond) // widen the race window
				return "value", []byte("value"), nil
			})
	}
	const workers = 8
	vals := make([]any, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = do()
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if vals[i] != "value" {
			t.Fatalf("worker %d saw %v", i, vals[i])
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	c, _, mem := st.Stats()
	if c != 1 {
		t.Fatalf("Stats computes = %d, want 1", c)
	}
	if mem != workers-1 {
		t.Fatalf("Stats memHits = %d, want %d", mem, workers-1)
	}
}

// TestDoDiskHit reopens a populated directory with a fresh Store — a
// simulated new process — and checks the value is decoded, not computed.
func TestDoDiskHit(t *testing.T) {
	dir := t.TempDir()
	key := NewKey("test/disk").Str("k", "v")
	decode := func(payload []byte) (any, error) { return string(payload), nil }

	st1, _ := Open(dir)
	v, err := st1.Do(key, decode, func() (any, []byte, error) { return "first", []byte("first"), nil })
	if err != nil || v != "first" {
		t.Fatalf("cold Do = %v, %v", v, err)
	}

	st2, _ := Open(dir)
	v, err = st2.Do(key, decode, func() (any, []byte, error) {
		return nil, nil, errors.New("must not recompute")
	})
	if err != nil || v != "first" {
		t.Fatalf("warm Do = %v, %v", v, err)
	}
	if c, disk, _ := st2.Stats(); c != 0 || disk != 1 {
		t.Fatalf("warm Stats = %d computes, %d diskHits", c, disk)
	}
}

// TestDoErrorNotMemoized: a failed compute must not wedge the key.
func TestDoErrorNotMemoized(t *testing.T) {
	st, _ := Open(t.TempDir())
	key := NewKey("test/err")
	boom := errors.New("boom")
	calls := 0
	compute := func() (any, []byte, error) {
		calls++
		if calls == 1 {
			return nil, nil, boom
		}
		return "ok", []byte("ok"), nil
	}
	decode := func(p []byte) (any, error) { return string(p), nil }
	if _, err := st.Do(key, decode, compute); !errors.Is(err, boom) {
		t.Fatalf("first Do: %v", err)
	}
	v, err := st.Do(key, decode, compute)
	if err != nil || v != "ok" {
		t.Fatalf("retry Do = %v, %v", v, err)
	}
}

// TestTamper corrupts the on-disk entry every way the loader validates
// and checks each one degrades to a clean recompute — never wrong bytes.
func TestTamper(t *testing.T) {
	key := NewKey("test/tamper").Int("n", 9)
	good := []byte("the one true payload")
	tampers := []struct {
		name   string
		mutate func(t *testing.T, path string, data []byte)
	}{
		{"flip-payload-byte", func(t *testing.T, path string, data []byte) {
			data[len(data)-9] ^= 0xff // last payload body byte (before the 8-byte trailer)
			writeFile(t, path, data)
		}},
		{"truncate", func(t *testing.T, path string, data []byte) {
			writeFile(t, path, data[:len(data)-5])
		}},
		{"empty", func(t *testing.T, path string, data []byte) {
			writeFile(t, path, nil)
		}},
		{"bad-magic", func(t *testing.T, path string, data []byte) {
			data[0] ^= 0xff
			writeFile(t, path, data)
		}},
		{"stale-version", func(t *testing.T, path string, data []byte) {
			data[4], data[5] = 0xfe, 0xff
			writeFile(t, path, data)
		}},
		{"zero-checksum", func(t *testing.T, path string, data []byte) {
			for i := len(data) - 8; i < len(data); i++ {
				data[i] = 0
			}
			writeFile(t, path, data)
		}},
		{"trailing-bytes", func(t *testing.T, path string, data []byte) {
			writeFile(t, path, append(data, 0xaa))
		}},
		{"wrong-key-echo", func(t *testing.T, path string, data []byte) {
			// A perfectly valid entry... for some other key, squatting at
			// this key's address.
			other := NewKey("test/tamper").Int("n", 10)
			writeFile(t, path, EncodeEntry(other, []byte("impostor payload")))
		}},
	}
	for _, tc := range tampers {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, _ := Open(dir)
			if err := st.Put(key, good); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, key.Hash()+".art")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, path, data)

			if _, ok := st.Get(key); ok {
				t.Fatal("tampered entry served as a hit")
			}
			// Do must fall back to compute and repair the entry.
			recomputed := false
			v, err := st.Do(key,
				func(p []byte) (any, error) { return string(p), nil },
				func() (any, []byte, error) {
					recomputed = true
					return string(good), good, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if v != string(good) {
				t.Fatalf("Do returned %q after tamper", v)
			}
			if !recomputed {
				t.Fatal("tampered entry was not recomputed")
			}
			if got, ok := st.Get(key); !ok || !bytes.Equal(got, good) {
				t.Fatalf("entry not repaired: %q, %v", got, ok)
			}
		})
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeErrorIsMiss: a valid container whose payload the consumer
// rejects is recomputed and overwritten.
func TestDecodeErrorIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := NewKey("test/decode-miss")
	st1, _ := Open(dir)
	if err := st1.Put(key, []byte("old-schema payload")); err != nil {
		t.Fatal(err)
	}
	st2, _ := Open(dir)
	v, err := st2.Do(key,
		func(p []byte) (any, error) {
			if string(p) != "new" {
				return nil, fmt.Errorf("unexpected payload %q", p)
			}
			return "decoded", nil
		},
		func() (any, []byte, error) { return "fresh", []byte("new"), nil })
	if err != nil || v != "fresh" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if got, _ := st2.Get(key); string(got) != "new" {
		t.Fatalf("entry not overwritten: %q", got)
	}
}

// TestStaleLockTakeover: an abandoned lock (crashed holder) must not
// block the key forever.
func TestStaleLockTakeover(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	st.LockPoll = time.Millisecond
	st.LockStale = 50 * time.Millisecond
	st.LockTimeout = 5 * time.Second
	key := NewKey("test/stale")
	lock := filepath.Join(dir, key.Hash()+".lock")
	writeFile(t, lock, nil)
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	v, err := st.Do(key,
		func(p []byte) (any, error) { return string(p), nil },
		func() (any, []byte, error) { return "ok", []byte("ok"), nil })
	if err != nil || v != "ok" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stale-lock takeover took %v", d)
	}
}

// TestCrossProcessSingleFlight re-execs the test binary twice against
// one cold directory: the advisory lock must collapse the two racing
// compiles into one, and both processes must return identical values.
func TestCrossProcessSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	dir := t.TempDir()
	run := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestCrossProcessHelper$", "-test.v")
		cmd.Env = append(os.Environ(), "ARTIFACT_RACE_DIR="+dir)
		return cmd
	}
	c1, c2 := run(), run()
	var out1, out2 bytes.Buffer
	c1.Stdout, c1.Stderr = &out1, &out1
	c2.Stdout, c2.Stderr = &out2, &out2
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	err1, err2 := c1.Wait(), c2.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("children failed: %v / %v\n--- child 1\n%s\n--- child 2\n%s",
			err1, err2, out1.String(), out2.String())
	}
	v1 := valueLine(t, out1.String())
	v2 := valueLine(t, out2.String())
	if v1 != v2 {
		t.Fatalf("children disagree: %q vs %q", v1, v2)
	}
	log, err := os.ReadFile(filepath.Join(dir, "computes.log"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(log), "C"); n != 1 {
		t.Fatalf("%d computes across two processes, want 1", n)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.art"))
	if len(files) != 1 {
		t.Fatalf("%d artifacts, want 1", len(files))
	}
}

func valueLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "VALUE ") {
			return line
		}
	}
	t.Fatalf("no VALUE line in child output:\n%s", out)
	return ""
}

// TestCrossProcessHelper is the child body for the re-exec test; it
// skips unless launched by TestCrossProcessSingleFlight.
func TestCrossProcessHelper(t *testing.T) {
	dir := os.Getenv("ARTIFACT_RACE_DIR")
	if dir == "" {
		t.Skip("helper for TestCrossProcessSingleFlight")
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test/cross-process").Int("n", 1)
	v, err := st.Do(key,
		func(p []byte) (any, error) { return string(p), nil },
		func() (any, []byte, error) {
			// Log the compute append-only so the parent can count them
			// fleet-wide, and linger so the sibling really races the lock.
			f, err := os.OpenFile(filepath.Join(dir, "computes.log"),
				os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, nil, err
			}
			if _, err := f.WriteString("C\n"); err != nil {
				return nil, nil, err
			}
			if err := f.Close(); err != nil {
				return nil, nil, err
			}
			time.Sleep(300 * time.Millisecond)
			return "the-value", []byte("the-value"), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("VALUE %v\n", v)
}
