package artifact_test

import (
	"bytes"
	"testing"

	"ctxback/internal/artifact"
	"ctxback/internal/gen"
	"ctxback/internal/isa"
)

// FuzzArtifactRoundTrip throws arbitrary bytes at the container loader.
// The invariants under fuzz: DecodeEntry never panics, and any container
// it accepts re-encodes to the exact input bytes (the canonical
// encode∘decode∘encode identity — if two byte strings decoded to the
// same entry, content addressing would be ambiguous). Seeds are real
// containers built from generator kernels, so the corpus starts on the
// valid-format manifold instead of pure noise.
func FuzzArtifactRoundTrip(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		p := gen.Generate(seed)
		enc := isa.EncodeProgram(p.Prog)
		key := artifact.NewKey("fuzz/prog").
			Bytes("prog", enc).
			Int("blocks", p.NumBlocks).
			Int("warps", p.WarpsPerBlock)
		f.Add(artifact.EncodeEntry(key, enc))
		// A truncated and a bit-flipped variant steer the fuzzer at the
		// validation branches.
		whole := artifact.EncodeEntry(key, enc)
		f.Add(whole[:len(whole)/2])
		flipped := append([]byte(nil), whole...)
		flipped[len(flipped)-1] ^= 0x01
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("CART"))

	f.Fuzz(func(t *testing.T, data []byte) {
		key, payload, err := artifact.DecodeEntry(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		re := artifact.EncodeEntry(&key, payload)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted container is not canonical:\n in: % x\nout: % x", data, re)
		}
	})
}
