package trace

import (
	"bufio"
	"io"
	"sync"
)

// LineSink streams formatted decision-log lines to an io.Writer as they
// are produced, so long-running serving and fleet runs do not accumulate
// their event logs in memory. Producers format each event with the same
// String() renderer the in-memory path uses, keeping the bytes identical
// to the accumulated-then-rendered output.
//
// The sink is safe for concurrent producers; lines are written whole, in
// call order. Write errors latch: producers keep running (a dying log
// consumer must not wedge the simulation) and the first error is
// reported by Flush.
type LineSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewLineSink wraps w in a buffered line sink.
func NewLineSink(w io.Writer) *LineSink {
	return &LineSink{w: bufio.NewWriter(w)}
}

// WriteLine appends one formatted line (a trailing newline is added).
func (s *LineSink) WriteLine(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.WriteString(line); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Flush drains the buffer and returns the first latched write error.
func (s *LineSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
