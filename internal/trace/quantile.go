package trace

import (
	"math"
	"math/bits"
	"strconv"
	"strings"
)

// NearestRank returns the 1-based rank of the q-quantile over n ordered
// observations under the nearest-rank definition: ceil(q*n), clamped to
// [1, n], computed in exact integer arithmetic.
//
// The float expression ceil(q*float64(n)) drifts at exactly the ranks
// people pin SLOs to. Two rounding steps conspire: the decimal the
// caller wrote (0.9, 0.05, 0.01, ...) is usually not representable, and
// the product q*n is rounded again before the ceiling. Whenever the
// decimal product is an integer k but the evaluated product lands on
// the far side of k, the reported rank is off by one — e.g. the double
// nearest 0.01 is above 1/100, so a p1 over 100 samples ceils to rank 2,
// and tail quantiles inflate toward the maximum the same way.
//
// Exactness here means exact with respect to q's shortest decimal
// representation — the literal the caller wrote — not the binary
// double's exact rational value. (Being exact about the double would
// bake its representation error into the rank: double(0.9)*10 is
// fractionally above 9, so a faithful ceiling returns rank 10, the
// maximum, where the 90th percentile of 10 samples is rank 9.) The
// shortest decimal of q is m * 10^-p with m < 10^17, so
//
//	ceil(q*n) = ceil(n*m / 10^p) = n*m/10^p + (1 if remainder else 0)
//
// computed on the 128-bit product n*m via bits.Mul64/Div64.
func NearestRank(n int64, q float64) int64 {
	if n <= 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return 1
	}
	if q >= 1 {
		return n
	}
	m, p := decimalParts(q)
	// q < 1 means m < 10^p, so the quotient below is < n < 2^63 and every
	// intermediate fits the limbs bits.Div64 requires.
	hi, lo := bits.Mul64(uint64(n), m)
	var rank, rem uint64
	switch {
	case p > 36:
		// n*m < 2^63 * 10^17 < 10^36 < 10^p: the quotient is 0 with a
		// nonzero remainder, so the ceiling is 1.
		return 1
	case p > 18:
		// Divide by 10^18 then 10^(p-18), folding both remainders into
		// the ceiling test.
		q1, r1 := bits.Div64(hi, lo, pow10(18))
		rank = q1 / pow10(p-18)
		rem = q1%pow10(p-18) | r1
	default:
		rank, rem = bits.Div64(hi, lo, pow10(p))
	}
	if rem != 0 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > uint64(n) {
		rank = uint64(n)
	}
	return int64(rank)
}

// pow10 returns 10^p for 0 <= p <= 18 (the uint64 range).
func pow10(p int) uint64 {
	v := uint64(1)
	for i := 0; i < p; i++ {
		v *= 10
	}
	return v
}

// decimalParts decomposes q in (0, 1) into its shortest decimal
// representation m * 10^-p with m an integer of at most 17 digits and
// p >= 1 (for q < 2^-120 it saturates at p = 37, which NearestRank
// treats as "smaller than any rank resolves").
func decimalParts(q float64) (uint64, int) {
	s := strconv.FormatFloat(q, 'e', -1, 64) // "d.ddddde-xx"
	mantStr, expStr, _ := strings.Cut(s, "e")
	exp, err := strconv.Atoi(expStr)
	if err != nil {
		return 1, 37
	}
	intPart, fracPart, _ := strings.Cut(mantStr, ".")
	digits := intPart + fracPart
	m, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 1, 37
	}
	// q = digits * 10^(exp - len(fracPart)); exp <= -1 for q < 1.
	p := len(fracPart) - exp
	if p > 37 {
		p = 37
	}
	return m, p
}
