package trace

import (
	"math"
	"math/big"
	"strconv"
	"testing"
)

// oracleRank is the reference nearest-rank computation: parse q's
// shortest decimal representation into an exact rational, take
// ceil(q*n) in big-integer arithmetic, clamp to [1, n]. An independent
// implementation path from NearestRank's 128-bit limb arithmetic.
func oracleRank(n int64, q float64) int64 {
	if n <= 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return 1
	}
	if q >= 1 {
		return n
	}
	r, ok := new(big.Rat).SetString(strconv.FormatFloat(q, 'g', -1, 64))
	if !ok {
		panic("oracleRank: unparseable float")
	}
	prod := r.Mul(r, new(big.Rat).SetInt64(n))
	num, den := prod.Num(), prod.Denom()
	ceil := new(big.Int).Div(num, den)
	if new(big.Int).Mul(ceil, den).Cmp(num) != 0 {
		ceil.Add(ceil, big.NewInt(1))
	}
	v := ceil.Int64()
	if v < 1 {
		v = 1
	}
	if v > n {
		v = n
	}
	return v
}

// TestNearestRankDifferential checks NearestRank against the big.Rat
// oracle across a dense (q, n) grid — every 3-digit decimal quantile
// crossed with small and SLO-typical sample counts — plus the sparse
// large-n corners.
func TestNearestRankDifferential(t *testing.T) {
	var qs []float64
	for i := 1; i < 1000; i++ {
		qs = append(qs, float64(i)/1000)
	}
	qs = append(qs, 0.0001, 0.9999, 0.99999, 1.0/3.0, 2.0/3.0)
	var ns []int64
	for n := int64(1); n <= 256; n++ {
		ns = append(ns, n)
	}
	ns = append(ns, 1000, 10000, 100000, 1_000_000,
		729402179500, // drifted under the old float path
		math.MaxInt64/3, math.MaxInt64)
	for _, q := range qs {
		for _, n := range ns {
			if got, want := NearestRank(n, q), oracleRank(n, q); got != want {
				t.Fatalf("NearestRank(%d, %v) = %d, want %d", n, q, got, want)
			}
		}
	}
}

// floatRank reproduces the buggy pre-fix computation so the regression
// test below can document exactly which pairs drifted.
func floatRank(n int64, q float64) int64 {
	rank := int64(q * float64(n))
	if float64(rank) < q*float64(n) || rank == 0 {
		rank++
	}
	if rank > n {
		rank = n
	}
	return rank
}

// TestNearestRankDriftPairs pins (q, n) pairs where the old float
// ceiling verifiably reported a rank one too high — the decimal product
// q*n is an integer k, but the rounded double product lands fractionally
// above k and the ceiling bumps to k+1, inflating the reported quantile
// toward the tail.
func TestNearestRankDriftPairs(t *testing.T) {
	cases := []struct {
		n    int64
		q    float64
		want int64
	}{
		{100, 0.07, 7},
		{200, 0.035, 7},
		{10000, 0.069, 690},
		{10000, 0.101, 1010},
		{100000, 0.017, 1700},
		{100000, 0.07, 7000},
		{729402179500, 0.548, 399712394366},
	}
	drifted := 0
	for _, c := range cases {
		if got := NearestRank(c.n, c.q); got != c.want {
			t.Errorf("NearestRank(%d, %v) = %d, want %d", c.n, c.q, got, c.want)
		}
		if floatRank(c.n, c.q) == c.want+1 {
			drifted++
		}
	}
	if drifted != len(cases) {
		t.Errorf("%d/%d cases drift under the old float ceiling; every pinned case should",
			drifted, len(cases))
	}
}

// TestNearestRankSLOPins pins the ranks behind the SLO table quantiles
// at the sample counts serve-mode reports use.
func TestNearestRankSLOPins(t *testing.T) {
	cases := []struct {
		n    int64
		q    float64
		want int64
	}{
		{100, 0.50, 50},
		{100, 0.95, 95},
		{100, 0.99, 99}, // p99 of 100 samples is rank 99, not the max
		{20, 0.95, 19},
		{1000, 0.99, 990},
		{100000, 0.999, 99900},
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.q); got != c.want {
			t.Errorf("NearestRank(%d, %v) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}

// TestNearestRankEdges covers degenerate inputs.
func TestNearestRankEdges(t *testing.T) {
	cases := []struct {
		n    int64
		q    float64
		want int64
	}{
		{0, 0.5, 0},
		{-3, 0.5, 0},
		{1, 0.0, 1},
		{1, 1.0, 1},
		{5, -0.5, 1},
		{5, 2.0, 5},
		{5, math.NaN(), 1},
		{5, 1e-300, 1}, // far below any resolvable rank: ceil of a positive sliver is 1
		{5, math.SmallestNonzeroFloat64, 1},
		{4, 0.5, 2},
		{4, 0.25, 1},
		{10, 0.9, 9},       // double(0.9) > 0.9; a double-exact ceiling would say 10
		{100, 0.01, 1},     // double(0.01) > 0.01; a double-exact ceiling would say 2
		{3, 1.0 / 3.0, 1},  // shortest decimal 0.3333333333333333 < 1/3
		{3, 2.0 / 3.0, 2},  // shortest decimal 0.6666666666666666 < 2/3
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.q); got != c.want {
			t.Errorf("NearestRank(%d, %v) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileRank checks that Histogram.Quantile picks the
// bucket of the exact nearest rank: 100 observations, one per bucket,
// p99 must resolve to the 99th observation's bucket, not the 100th's,
// and a p7 lookup must not inflate to rank 8.
func TestHistogramQuantileRank(t *testing.T) {
	bounds := make([]int64, 100)
	for i := range bounds {
		bounds[i] = int64(i + 1)
	}
	h := newHistogram(bounds)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, c := range []struct {
		q    float64
		want int64
	}{
		{0.07, 7}, {0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100},
	} {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) over 1..100 = %d, want %d", c.q, got, c.want)
		}
	}
}
