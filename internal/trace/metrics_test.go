package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSharedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("episodes").Add(2)
	r.Counter("episodes").Add(3)
	if got := r.Counter("episodes").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5122 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	want := []int64{2, 2, 0, 1} // <=10: {1,10}; <=100: {11,100}; <=1000: none; overflow: {5000}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	// Same name returns the same histogram regardless of bounds passed.
	if r.Histogram("lat", nil) != h {
		t.Error("histogram not shared by name")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefaultCycleBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestRegistryRenderDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(7)
		r.Counter("a.first").Add(1)
		h := r.Histogram("episode.preempt_cycles", DefaultCycleBuckets)
		h.Observe(50)
		h.Observe(150_000)
		h.Observe(9_999_999)
		return r
	}
	a, b := mk().Render(), mk().Render()
	if a != b {
		t.Fatal("render not deterministic")
	}
	for _, want := range []string{"a.first", "z.last", "count=3", "<= 100", "<= 200000", ">  500000"} {
		if !strings.Contains(a, want) {
			t.Errorf("render missing %q:\n%s", want, a)
		}
	}
	if strings.Index(a, "a.first") > strings.Index(a, "z.last") {
		t.Error("counters not name-sorted")
	}
}
