package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSharedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("episodes").Add(2)
	r.Counter("episodes").Add(3)
	if got := r.Counter("episodes").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5122 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	want := []int64{2, 2, 0, 1} // <=10: {1,10}; <=100: {11,100}; <=1000: none; overflow: {5000}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	// Same name returns the same histogram regardless of bounds passed.
	if r.Histogram("lat", nil) != h {
		t.Error("histogram not shared by name")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefaultCycleBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	for _, v := range []int64{1, 5, 50, 500} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10},      // rank 1 -> bucket <=10
		{0.25, 10},   // rank 1
		{0.5, 10},    // rank 2: {1,5} both in <=10
		{0.75, 100},  // rank 3: 50
		{0.95, 1000}, // rank 4: 500
		{1, 1000},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	// Overflow observations saturate at the last bound.
	h.Observe(9_999_999)
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("overflow quantile = %d, want 1000", got)
	}
}

func TestHistogramQuantileOrderInvariant(t *testing.T) {
	vals := []int64{7, 300, 42, 9000, 150, 3, 77, 600}
	mk := func(order []int64) *Histogram {
		h := newHistogram(DefaultCycleBuckets)
		for _, v := range order {
			h.Observe(v)
		}
		return h
	}
	rev := make([]int64, len(vals))
	for i, v := range vals {
		rev[len(vals)-1-i] = v
	}
	a, b := mk(vals), mk(rev)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("Quantile(%v) depends on observation order", q)
		}
	}
}

func TestRegistryRenderDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(7)
		r.Counter("a.first").Add(1)
		h := r.Histogram("episode.preempt_cycles", DefaultCycleBuckets)
		h.Observe(50)
		h.Observe(150_000)
		h.Observe(9_999_999)
		return r
	}
	a, b := mk().Render(), mk().Render()
	if a != b {
		t.Fatal("render not deterministic")
	}
	for _, want := range []string{"a.first", "z.last", "count=3", "<= 100", "<= 200000", ">  500000"} {
		if !strings.Contains(a, want) {
			t.Errorf("render missing %q:\n%s", want, a)
		}
	}
	if strings.Index(a, "a.first") > strings.Index(a, "z.last") {
		t.Error("counters not name-sorted")
	}
}
