package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically growing int64 metric. Increments are
// atomic, so deterministic simulations driven by a worker pool produce
// the same totals at every worker count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefaultCycleBuckets are the fixed latency buckets (in cycles) used for
// episode phase histograms. The spacing is roughly logarithmic and spans
// the sub-100-cycle drains up to the multi-100k-cycle full-SM BASELINE
// switches.
var DefaultCycleBuckets = []int64{
	100, 200, 500,
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
}

// Histogram is a fixed-bucket latency histogram. Bucket bounds are
// upper-inclusive; observations above the last bound land in an overflow
// bucket. Bounds are fixed at creation and never change.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
	n      atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket returns the count of observations in bucket i (the overflow
// bucket is index len(bounds)).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i].Load() }

// Quantile estimates the q-quantile (0 <= q <= 1) as the upper bound of
// the bucket containing the q-th ranked observation. The estimate is
// deterministic (pure bucket arithmetic, no interpolation): the same
// observations yield the same answer regardless of arrival order or
// worker count. Observations in the overflow bucket report the last
// bound (the histogram cannot resolve beyond it); an empty histogram
// reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based, rounded up (the "nearest
	// rank" definition): q=0.5 over 4 samples targets rank 2. NearestRank
	// computes ceil(q*n) in exact integer arithmetic; the float ceiling
	// previously used here drifted one rank high whenever q*n was an
	// integer whose float product rounds up (0.99 at n=100, 0.95 at n=20).
	rank := NearestRank(n, q)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a named collection of counters and histograms. Metrics
// are created on first use and shared by name afterwards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later callers share the
// first creation's buckets).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Render formats the registry as a deterministic text report: counters
// then histograms, both name-sorted; histogram bucket lines list only
// occupied buckets so untouched tails do not pad the report.
func (r *Registry) Render() string {
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	r.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(hnames)

	var b strings.Builder
	b.WriteString("Metrics\n")
	for _, n := range cnames {
		fmt.Fprintf(&b, "  %-36s %12d\n", n, r.Counter(n).Value())
	}
	for _, n := range hnames {
		h := r.hists[n]
		count, sum := h.Count(), h.Sum()
		mean := float64(0)
		if count > 0 {
			mean = float64(sum) / float64(count)
		}
		fmt.Fprintf(&b, "  %-36s count=%d sum=%d mean=%.1f\n", n, count, sum, mean)
		for i := range h.counts {
			c := h.Bucket(i)
			if c == 0 {
				continue
			}
			switch {
			case i < len(h.bounds):
				fmt.Fprintf(&b, "    <= %-10d %12d\n", h.bounds[i], c)
			case len(h.bounds) > 0:
				fmt.Fprintf(&b, "    >  %-10d %12d\n", h.bounds[len(h.bounds)-1], c)
			default:
				fmt.Fprintf(&b, "    all%-10s %12d\n", "", c)
			}
		}
	}
	return b.String()
}
