// Package trace is the structured observability layer of the
// reproduction: cycle-timestamped events for preemption episodes, warps
// and the memory pipeline, plus a metrics registry of counters and
// fixed-bucket latency histograms.
//
// The layer is strictly opt-in and zero-overhead when disabled: the
// simulator emits events only behind a nil check on an attached
// Recorder, nothing in this package is touched on the default path, and
// recording never alters simulated timing — an evaluation with tracing
// off is byte-identical to one that never linked this package.
package trace

import (
	"sort"
	"sync"
)

// Category classifies an event's scope.
type Category string

const (
	// CatEpisode marks device-level episode milestones and phase spans
	// (signal, drain, save, restore, replay).
	CatEpisode Category = "episode"
	// CatWarp marks per-warp phase spans within an episode.
	CatWarp Category = "warp"
	// CatMem marks context-path memory-pipeline transactions.
	CatMem Category = "mem"
	// CatSnapshot marks whole-device checkpoint/restore milestones
	// (capture, restore-warm, restore-cold, failover re-admission).
	CatSnapshot Category = "snapshot"
)

// Chrome-trace phase letters (the subset the exporter uses).
const (
	PhComplete = 'X' // a span with a start cycle and a duration
	PhInstant  = 'i' // a point event
)

// Event is one structured trace record. Cycle timestamps are simulated
// device cycles, not wall time.
type Event struct {
	Name  string   // phase or milestone name (technique-flavored)
	Cat   Category // episode | warp | mem
	Ph    byte     // PhComplete or PhInstant
	Cycle int64    // start cycle
	Dur   int64    // duration in cycles (0 for instants)
	SM    int      // owning SM, -1 when device-scoped (mem events)
	Warp  int      // warp id, -1 when not warp-scoped
	Tech  string   // preemption technique name, "" when not applicable
	Bytes int64    // payload bytes (context traffic), 0 otherwise
}

// Recorder collects events. It is safe for concurrent emitters (the
// parallel harness may drive several SMs of one device from one clock).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit appends one event.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events sorted by start cycle
// (stable, so same-cycle events keep emission order). The exporter and
// the cycle-monotonicity validator both consume this order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// PhaseNames are the technique-specific labels for the four canonical
// episode phases. Every episode decomposes into drain (signal observed →
// last victim entered its routine), save (→ SM released), restore
// (resume start → last context restored) and replay (→ logical progress
// regained); techniques rename the phases they specialize (CTXBack's
// replay is a flashback, CKPT's save is a fallback, SM-flushing's
// replay is a restart).
type PhaseNames struct {
	Drain, Save, Restore, Replay string
}

// DefaultPhaseNames are the technique-neutral labels.
func DefaultPhaseNames() PhaseNames {
	return PhaseNames{Drain: "drain", Save: "save", Restore: "restore", Replay: "replay"}
}
