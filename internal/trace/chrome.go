package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, also readable by Perfetto). Timestamps are
// nominally microseconds; we emit simulated cycles one-to-one, which
// just rescales the timeline.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// chromeMemPID is the synthetic process id grouping memory-pipeline
// events; SM-scoped events use pid = SM id.
const chromeMemPID = 9999

// WriteChromeTrace serializes events (as returned by Recorder.Events,
// i.e. cycle-sorted) into Chrome trace-event JSON. Load the file via
// chrome://tracing ("Load") or https://ui.perfetto.dev. One trace
// process per SM, one thread per warp; ts/dur are simulated cycles.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"timestampUnit": "simulated GPU cycles"},
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  string(ev.Cat),
			Ph:   string(rune(ev.Ph)),
			TS:   ev.Cycle,
			PID:  ev.SM,
			TID:  ev.Warp,
		}
		if ev.SM < 0 {
			ce.PID = chromeMemPID
		}
		if ev.Warp < 0 {
			ce.TID = 0
		}
		if ev.Ph == PhComplete {
			dur := ev.Dur
			ce.Dur = &dur
		}
		if ev.Ph == PhInstant {
			ce.S = "p" // process-scoped instant: draws across the SM's track
		}
		args := map[string]any{}
		if ev.Tech != "" {
			args["technique"] = ev.Tech
		}
		if ev.Bytes != 0 {
			args["bytes"] = ev.Bytes
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the invariants the exporter guarantees: every event has a known phase
// letter, a non-negative timestamp, complete events carry non-negative
// durations, and timestamps are cycle-monotone (non-decreasing) in file
// order. Returns the number of events on success.
func ValidateChromeTrace(data []byte) (int, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: no traceEvents")
	}
	prev := int64(-1)
	for i, ev := range f.TraceEvents {
		if ev.Ph != string(rune(PhComplete)) && ev.Ph != string(rune(PhInstant)) {
			return 0, fmt.Errorf("trace: event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			return 0, fmt.Errorf("trace: event %d (%q): negative timestamp %d", i, ev.Name, ev.TS)
		}
		if ev.Ph == string(rune(PhComplete)) {
			if ev.Dur == nil {
				return 0, fmt.Errorf("trace: event %d (%q): complete event without dur", i, ev.Name)
			}
			if *ev.Dur < 0 {
				return 0, fmt.Errorf("trace: event %d (%q): negative duration %d", i, ev.Name, *ev.Dur)
			}
		}
		if ev.TS < prev {
			return 0, fmt.Errorf("trace: event %d (%q): timestamp %d before predecessor %d — not cycle-monotone",
				i, ev.Name, ev.TS, prev)
		}
		prev = ev.TS
	}
	return len(f.TraceEvents), nil
}
