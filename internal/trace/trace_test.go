package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRecorderSortsByCycleStable(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Name: "b", Cycle: 30, Ph: PhInstant})
	r.Emit(Event{Name: "a", Cycle: 10, Ph: PhInstant})
	r.Emit(Event{Name: "c1", Cycle: 20, Ph: PhInstant})
	r.Emit(Event{Name: "c2", Cycle: 20, Ph: PhInstant})
	evs := r.Events()
	if len(evs) != 4 || r.Len() != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	var names []string
	for i, ev := range evs {
		names = append(names, ev.Name)
		if i > 0 && ev.Cycle < evs[i-1].Cycle {
			t.Fatalf("events not cycle-sorted: %+v", evs)
		}
	}
	// Same-cycle events keep emission order (stable sort).
	if got := strings.Join(names, ","); got != "a,c1,c2,b" {
		t.Errorf("order = %s", got)
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Name: "e", Cycle: int64(i), SM: g})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("lost events: %d", r.Len())
	}
}

func TestChromeRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Name: "preempt-signal", Cat: CatEpisode, Ph: PhInstant, Cycle: 5, SM: 0, Warp: -1, Tech: "BASELINE"})
	r.Emit(Event{Name: "save", Cat: CatWarp, Ph: PhComplete, Cycle: 6, Dur: 40, SM: 0, Warp: 2, Tech: "BASELINE", Bytes: 512})
	r.Emit(Event{Name: "ctx-xfer", Cat: CatMem, Ph: PhComplete, Cycle: 7, Dur: 12, SM: -1, Warp: -1, Bytes: 128})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("validated %d events, want 3", n)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"technique": "BASELINE"`, `"bytes": 512`, `"ph": "X"`, `"ph": "i"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome JSON missing %s", want)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"no events":    `{"traceEvents":[]}`,
		"bad phase":    `{"traceEvents":[{"name":"x","ph":"Q","ts":1}]}`,
		"negative ts":  `{"traceEvents":[{"name":"x","ph":"i","ts":-1}]}`,
		"missing dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":1}]}`,
		"negative dur": `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-2}]}`,
		"non-monotone": `{"traceEvents":[{"name":"x","ph":"i","ts":9},{"name":"y","ph":"i","ts":3}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}
