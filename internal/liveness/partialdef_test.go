package liveness

import (
	"testing"

	"ctxback/internal/isa"
)

// TestMaskedPartialDefLattice pins the three-state lattice on the idiom
// that testdata/regression/masked-partial-def (internal/kernels) runs
// end-to-end: a full definition, a divergent region re-defining the same
// register under a partial mask, and observers after reconvergence. The
// masked write must not kill the prior value's liveness.
func TestMaskedPartialDefLattice(t *testing.T) {
	_, info := analyze(t, `
.kernel masked-partial-def
.vregs 3
.sregs 8
  v_laneid v0
  v_mov v1, 7
  v_xor v2, v0, 42
  v_cmp_lt_i32 v0, 2
  s_and_saveexec_vcc s0
  v_mov v1, 9
  v_add v2, v2, v1
  s_setexec s0
  v_shl v0, v0, 2 !noovf
  v_add v0, v0, s4 !noovf
  v_gstore v0, v1, 0
  v_gstore v0, v2, 256
  s_endpgm
`)
	// The forward pass proves fullness up to the saveexec, loses it in
	// the divergent region, and re-proves it after s_setexec restores
	// the saved full mask.
	for pc, want := range map[int]bool{4: true, 5: false, 6: false, 8: true} {
		if info.ExecFullIn[pc] != want {
			t.Errorf("ExecFullIn[%d] = %v, want %v", pc, info.ExecFullIn[pc], want)
		}
	}
	// v1's masked-out lanes are observed by the store after
	// reconvergence: the value escapes its defining mask, so the masked
	// v_mov at pc 5 is a partial definition and the prior value (the 7
	// from pc 1) must stay live across it.
	if !info.EscIn[5].Has(isa.V(1)) {
		t.Errorf("EscIn[5] = %v, want v1 escaped", info.EscIn[5].Sorted())
	}
	for pc := 2; pc <= 5; pc++ {
		if !info.LiveIn[pc].Has(isa.V(1)) {
			t.Errorf("LiveIn[%d] = %v, want v1 live across the masked def",
				pc, info.LiveIn[pc].Sorted())
		}
	}
}

// TestFullDefStillKills is the contrast case: with no divergence the
// same redefinition is a full kill, and the precision that funds
// CTXBack's small contexts must not regress.
func TestFullDefStillKills(t *testing.T) {
	_, info := analyze(t, `
.kernel full-def
.vregs 4
.sregs 8
  v_mov v1, 7
  v_mov v1, 9
  v_gstore v3, v1, 0
  s_endpgm
`)
	if !info.ExecFullIn[1] {
		t.Error("ExecFullIn[1] must hold at launch mask")
	}
	if info.LiveIn[1].Has(isa.V(1)) {
		t.Errorf("LiveIn[1] = %v: a full redefinition must kill v1",
			info.LiveIn[1].Sorted())
	}
}

// TestReadlaneEscapes pins the other escape edge: v_readlane ignores the
// EXEC mask, so a masked definition of its source must not kill.
func TestReadlaneEscapes(t *testing.T) {
	_, info := analyze(t, `
.kernel readlane-escape
.vregs 3
.sregs 8
  v_mov v1, 7
  v_cmp_lt_i32 v0, 2
  s_and_saveexec_vcc s0
  v_mov v1, 9
  s_setexec s0
  v_readlane s1, v1, 5
  s_gstore s4, s1, 0
  s_endpgm
`)
	if !info.EscIn[3].Has(isa.V(1)) {
		t.Errorf("EscIn[3] = %v, want v1 escaped via v_readlane", info.EscIn[3].Sorted())
	}
	if !info.LiveIn[3].Has(isa.V(1)) {
		t.Errorf("LiveIn[3] = %v, want v1 live across the masked def",
			info.LiveIn[3].Sorted())
	}
}
