package liveness

import (
	"testing"

	"ctxback/internal/cfg"
	"ctxback/internal/isa"
)

func analyze(t *testing.T, src string) (*isa.Program, *Info) {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, Analyze(g)
}

func TestStraightLineLiveness(t *testing.T) {
	// v0 feeds v1 feeds store; v2 is dead after its definition is unused.
	_, info := analyze(t, `
.kernel sl
.vregs 4
.sregs 16
  v_mov v0, 1
  v_add v1, v0, 2
  v_gstore v3, v1, 0
  s_endpgm
`)
	// Before pc1 (v_add), v0 must be live; v1 not yet.
	if !info.LiveIn[1].Has(isa.V(0)) {
		t.Error("v0 must be live-in at pc1")
	}
	if info.LiveIn[1].Has(isa.V(1)) {
		t.Error("v1 must not be live-in at pc1")
	}
	// After the store nothing (except nothing) is live.
	if info.LiveOut[2].Has(isa.V(1)) || info.LiveOut[2].Has(isa.V(3)) {
		t.Errorf("live-out at store = %v", info.LiveOut[2].Sorted())
	}
	// v3 (store address) is live-in at the store.
	if !info.LiveIn[2].Has(isa.V(3)) || !info.LiveIn[2].Has(isa.V(1)) {
		t.Errorf("live-in at store = %v", info.LiveIn[2].Sorted())
	}
}

func TestDeadCodeNotLive(t *testing.T) {
	_, info := analyze(t, `
.kernel dead
.vregs 4
.sregs 16
  v_mov v2, 9
  v_mov v0, 1
  v_gstore v1, v0, 0
  s_endpgm
`)
	// v2 is never used: it must not appear in any live set.
	for pc := range info.LiveIn {
		if info.LiveIn[pc].Has(isa.V(2)) {
			t.Errorf("dead v2 live-in at pc %d", pc)
		}
	}
}

func TestLoopCarriedLiveness(t *testing.T) {
	p, info := analyze(t, `
.kernel loop
.vregs 4
.sregs 16
  s_mov s0, 8
  v_mov v0, 0
loop:
  v_add v0, v0, 1
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_gstore v1, v0, 0
  s_endpgm
`)
	body := p.Labels["loop"]
	// v0 and s0 are loop carried: live-in at loop head.
	if !info.LiveIn[body].Has(isa.V(0)) || !info.LiveIn[body].Has(isa.S(0)) {
		t.Errorf("loop head live-in = %v", info.LiveIn[body].Sorted())
	}
	// SCC is live between the compare and the branch.
	if !info.LiveIn[body+3].Has(isa.SCC) {
		t.Error("SCC must be live-in at the conditional branch")
	}
	// SCC is not live at the loop head (killed by compare before use).
	if info.LiveIn[body].Has(isa.SCC) {
		t.Error("SCC must not be live at loop head")
	}
}

func TestBranchJoinLiveness(t *testing.T) {
	p, info := analyze(t, `
.kernel join
.vregs 4
.sregs 16
  s_cmp_eq s0, 0
  s_cbranch_scc1 else
  v_mov v0, 1
  s_branch join
else:
  v_mov v0, 2
join:
  v_gstore v1, v0, 0
  s_endpgm
`)
	// v1 is used only at the join but must be live through both arms.
	if !info.LiveIn[2].Has(isa.V(1)) || !info.LiveIn[p.Labels["else"]].Has(isa.V(1)) {
		t.Error("v1 must be live through both branch arms")
	}
	// v0 is defined in both arms: not live-in at entry.
	if info.LiveIn[0].Has(isa.V(0)) {
		t.Error("v0 must not be live at entry")
	}
}

func TestExecLiveWithVectorOps(t *testing.T) {
	_, info := analyze(t, `
.kernel ex
.vregs 4
.sregs 16
  v_add v0, v0, 1
  s_endpgm
`)
	if !info.LiveIn[0].Has(isa.Exec) {
		t.Error("EXEC must be live before a vector op")
	}
}

func TestUseDefChains(t *testing.T) {
	_, info := analyze(t, `
.kernel ud
.vregs 4
.sregs 16
  v_mov v0, 1
  v_add v1, v0, 2
  v_mov v0, 3
  v_add v2, v0, v1
  s_endpgm
`)
	// At pc3, v0's reaching def is pc2 (not pc0) and v1's is pc1.
	if d, ok := info.LastDefIn(3, isa.V(0)); !ok || d != 2 {
		t.Errorf("def of v0 at pc3 = %d,%v; want 2", d, ok)
	}
	if d, ok := info.LastDefIn(3, isa.V(1)); !ok || d != 1 {
		t.Errorf("def of v1 at pc3 = %d,%v; want 1", d, ok)
	}
	// At pc0 nothing is defined yet.
	if _, ok := info.LastDefIn(0, isa.V(0)); ok {
		t.Error("no def should reach pc0")
	}
}

func TestContextBytes(t *testing.T) {
	_, info := analyze(t, `
.kernel cb
.vregs 4
.sregs 16
  v_add v1, v0, 2
  v_gstore v2, v1, 0
  s_endpgm
`)
	// Live-in at pc0: v0, v2, exec => 256 + 256 + 8.
	want := 2*4*isa.WarpSize + 8
	if got := info.ContextBytes(0); got != want {
		t.Errorf("ContextBytes(0) = %d, want %d (%v)", got, want, info.LiveIn[0].Sorted())
	}
}

func TestMinContextPC(t *testing.T) {
	_, info := analyze(t, `
.kernel mc
.vregs 8
.sregs 16
  v_add v1, v0, 1
  v_add v2, v1, 1
  v_gstore v7, v2, 0
  v_mov v3, 0
  v_add v4, v3, 1
  v_gstore v7, v4, 4
  s_endpgm
`)
	// After the first store (pc3) only v7+exec are live: the minimum.
	pc, bytes := info.MinContextPC(0, 6)
	if pc != 3 {
		t.Errorf("MinContextPC = %d, want 3", pc)
	}
	want := 4*isa.WarpSize + 8 // v7 + exec
	if bytes != want {
		t.Errorf("min bytes = %d, want %d (%v)", bytes, want, info.LiveIn[pc].Sorted())
	}
}

// Property: live-in/live-out satisfy the dataflow equations at every pc.
func TestDataflowEquationsHold(t *testing.T) {
	srcs := []string{
		`
.kernel a
.vregs 8
.sregs 16
  s_mov s0, 4
loop:
  v_gload v0, v1, 0
  v_mad v2, v0, v0, v2
  v_add v1, v1, 4 !noovf
  s_sub s0, s0, 1
  s_cmp_gt s0, 0
  s_cbranch_scc1 loop
  v_gstore v3, v2, 0
  s_endpgm
`, `
.kernel b
.vregs 4
.sregs 16
  v_cmp_lt_i32 v0, 10
  s_and_saveexec_vcc s2
  v_add v1, v1, 1
  s_setexec s2
  v_gstore v2, v1, 0
  s_endpgm
`,
	}
	for _, src := range srcs {
		p, info := analyze(t, src)
		for pc := 0; pc < p.Len(); pc++ {
			in := p.At(pc)
			want := info.LiveOut[pc].Clone()
			want.RemoveAll(in.DefSet())
			want.AddAll(in.UseSet())
			if !want.Equal(info.LiveIn[pc]) {
				t.Errorf("%s pc %d (%s): LiveIn = %v, want %v", p.Name, pc, in,
					info.LiveIn[pc].Sorted(), want.Sorted())
			}
		}
	}
}
