package liveness

import (
	"fmt"

	"ctxback/internal/artifact"
	"ctxback/internal/cfg"
	"ctxback/internal/isa"
)

// Binary codec for Info, used by the artifact store. Register sets and
// def maps are written in isa.RegSet.Sorted order, so the encoding is
// canonical and encode∘decode∘encode is byte-identical. The Graph field
// is relinked by the caller (it travels as its own artifact section).

// EncodeRegSet appends a register set in sorted order.
func EncodeRegSet(s isa.RegSet, w *artifact.Writer) {
	regs := s.Sorted()
	w.Int(len(regs))
	for _, r := range regs {
		w.U8(uint8(r.Class))
		w.U16(r.Index)
	}
}

// DecodeRegSet reads a register set written by EncodeRegSet.
func DecodeRegSet(r *artifact.Reader) isa.RegSet {
	n := r.Len()
	s := make(isa.RegSet, n)
	for i := 0; i < n; i++ {
		cls := isa.RegClass(r.U8())
		idx := r.U16()
		s.Add(isa.Reg{Class: cls, Index: idx})
	}
	return s
}

// EncodeInfo appends info's per-PC tables to w.
func EncodeInfo(info *Info, w *artifact.Writer) {
	n := len(info.LiveIn)
	w.Int(n)
	for pc := 0; pc < n; pc++ {
		EncodeRegSet(info.LiveIn[pc], w)
		EncodeRegSet(info.LiveOut[pc], w)
		w.Bool(info.ExecFullIn[pc])
		EncodeRegSet(info.EscIn[pc], w)
		defs := info.DefOf[pc]
		keys := make(isa.RegSet, len(defs))
		for reg := range defs {
			keys.Add(reg)
		}
		sorted := keys.Sorted()
		w.Int(len(sorted))
		for _, reg := range sorted {
			w.U8(uint8(reg.Class))
			w.U16(reg.Index)
			w.Int(defs[reg])
		}
	}
}

// DecodeInfo reads an Info for g written by EncodeInfo.
func DecodeInfo(g *cfg.Graph, r *artifact.Reader) (*Info, error) {
	n := r.Len()
	if n != g.Prog.Len() {
		return nil, fmt.Errorf("liveness: decode: %d PCs for a %d-instruction program", n, g.Prog.Len())
	}
	info := &Info{
		Graph:      g,
		LiveIn:     make([]isa.RegSet, n),
		LiveOut:    make([]isa.RegSet, n),
		ExecFullIn: make([]bool, n),
		EscIn:      make([]isa.RegSet, n),
		DefOf:      make([]map[isa.Reg]int, n),
	}
	for pc := 0; pc < n; pc++ {
		info.LiveIn[pc] = DecodeRegSet(r)
		info.LiveOut[pc] = DecodeRegSet(r)
		info.ExecFullIn[pc] = r.Bool()
		info.EscIn[pc] = DecodeRegSet(r)
		nd := r.Len()
		m := make(map[isa.Reg]int, nd)
		for i := 0; i < nd; i++ {
			cls := isa.RegClass(r.U8())
			idx := r.U16()
			m[isa.Reg{Class: cls, Index: idx}] = r.Int()
		}
		info.DefOf[pc] = m
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return info, nil
}
