// Package liveness implements backward dataflow liveness analysis and
// use-define chains over isa programs. CTXBack uses the per-instruction
// live-in sets as the register context of each instruction (paper §III-A:
// "an instruction's register context is just its live-in registers") and
// the use-define chains to determine which instruction overwrote a
// register.
package liveness

import (
	"ctxback/internal/cfg"
	"ctxback/internal/isa"
)

// Info holds the analysis results for one program.
type Info struct {
	Graph *cfg.Graph
	// LiveIn[pc] is the set of registers live immediately before pc
	// executes — the register context R of that instruction.
	LiveIn []isa.RegSet
	// LiveOut[pc] is the set of registers live immediately after pc.
	LiveOut []isa.RegSet
	// DefOf[pc][r] is the PC of the reaching definition of register r at
	// the entry of pc, when that definition is unique and within pc's
	// basic block; absent otherwise. This is the block-local use-define
	// chain CTXBack walks.
	DefOf []map[isa.Reg]int
}

// Analyze runs liveness and use-def analysis for g's program.
func Analyze(g *cfg.Graph) *Info {
	p := g.Prog
	n := p.Len()
	info := &Info{
		Graph:   g,
		LiveIn:  make([]isa.RegSet, n),
		LiveOut: make([]isa.RegSet, n),
		DefOf:   make([]map[isa.Reg]int, n),
	}

	// Pre-compute per-instruction use/def sets.
	uses := make([]isa.RegSet, n)
	defs := make([]isa.RegSet, n)
	for pc := 0; pc < n; pc++ {
		uses[pc] = p.At(pc).UseSet()
		defs[pc] = p.At(pc).DefSet()
	}

	// Block-level gen/kill.
	nb := len(g.Blocks)
	blockIn := make([]isa.RegSet, nb)
	blockOut := make([]isa.RegSet, nb)
	for i := range blockIn {
		blockIn[i] = make(isa.RegSet)
		blockOut[i] = make(isa.RegSet)
	}

	// Iterate to fixpoint (reverse order speeds convergence).
	changed := true
	for changed {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			b := &g.Blocks[bi]
			out := make(isa.RegSet)
			for _, s := range b.Succs {
				out.AddAll(blockIn[s])
			}
			in := out.Clone()
			for pc := b.End - 1; pc >= b.Start; pc-- {
				in.RemoveAll(defs[pc])
				in.AddAll(uses[pc])
			}
			if !out.Equal(blockOut[bi]) || !in.Equal(blockIn[bi]) {
				changed = true
				blockOut[bi] = out
				blockIn[bi] = in
			}
		}
	}

	// Per-instruction sets from the block solutions.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		live := blockOut[bi].Clone()
		for pc := b.End - 1; pc >= b.Start; pc-- {
			info.LiveOut[pc] = live.Clone()
			live.RemoveAll(defs[pc])
			live.AddAll(uses[pc])
			info.LiveIn[pc] = live.Clone()
		}
	}

	// Block-local use-define chains: forward scan recording the last
	// definition of each register.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		lastDef := make(map[isa.Reg]int)
		for pc := b.Start; pc < b.End; pc++ {
			m := make(map[isa.Reg]int, len(lastDef))
			for r, d := range lastDef {
				m[r] = d
			}
			info.DefOf[pc] = m
			for r := range defs[pc] {
				lastDef[r] = pc
			}
		}
	}
	return info
}

// Context returns the register context of the instruction at pc — its
// live-in registers (a clone safe to mutate).
func (in *Info) Context(pc int) isa.RegSet {
	return in.LiveIn[pc].Clone()
}

// ContextBytes returns the byte size of pc's register context.
func (in *Info) ContextBytes(pc int) int {
	return in.LiveIn[pc].ContextBytes()
}

// LastDefIn returns the PC of the most recent definition of r before pc
// within pc's basic block; ok=false when r has no in-block definition
// before pc (its value flows in from outside the block).
func (in *Info) LastDefIn(pc int, r isa.Reg) (def int, ok bool) {
	def, ok = in.DefOf[pc][r]
	return def, ok
}

// MinContextPC returns the PC with the smallest live-in context within
// [start, end) along with that context's byte size. It is the "minimum
// possible context size" reference the paper attributes to CKPT.
func (in *Info) MinContextPC(start, end int) (pc, bytes int) {
	pc = start
	bytes = in.ContextBytes(start)
	for i := start + 1; i < end; i++ {
		if b := in.ContextBytes(i); b < bytes {
			pc, bytes = i, b
		}
	}
	return pc, bytes
}
