// Package liveness implements backward dataflow liveness analysis and
// use-define chains over isa programs. CTXBack uses the per-instruction
// live-in sets as the register context of each instruction (paper §III-A:
// "an instruction's register context is just its live-in registers") and
// the use-define chains to determine which instruction overwrote a
// register.
//
// Vector writes are EXEC-masked: an instruction executed under a partial
// mask only overwrites the active lanes, so the destination's previous
// value flows through on the inactive lanes. Such a write is a partial
// definition — it must not kill liveness when a masked-out lane can still
// be observed. Two cooperating analyses keep this precise:
//
//   - a forward EXEC-fullness pass proves, per PC, that the mask is all
//     ones, tracking scalar registers that hold a saved full mask so the
//     s_and_saveexec_vcc / s_setexec reconvergence idiom re-proves
//     fullness after a divergent region;
//   - the backward pass runs a three-state lattice per vector register
//     (dead < live-same-mask < live-escaped): a value escapes when its
//     liveness crosses an EXEC write or a lane-indexed read (v_readlane
//     ignores the mask). A masked definition kills only when the mask is
//     provably full or the register has not escaped — every observer then
//     reads only lanes the definition wrote.
package liveness

import (
	"ctxback/internal/cfg"
	"ctxback/internal/isa"
)

// Info holds the analysis results for one program.
type Info struct {
	Graph *cfg.Graph
	// LiveIn[pc] is the set of registers live immediately before pc
	// executes — the register context R of that instruction.
	LiveIn []isa.RegSet
	// LiveOut[pc] is the set of registers live immediately after pc.
	LiveOut []isa.RegSet
	// ExecFullIn[pc] reports that EXEC is provably all ones when the
	// instruction at pc issues (vector defs there are full kills).
	ExecFullIn []bool
	// EscIn[pc] holds the vector registers whose masked-out lanes may
	// still be observed at or below pc (their liveness crosses an EXEC
	// write or a lane-indexed read). For a live register absent from
	// this set, every downstream read happens under the mask in force at
	// pc — its inactive lanes are dead.
	EscIn []isa.RegSet
	// DefOf[pc][r] is the PC of the most recent write to register r at
	// the entry of pc, when that write is unique and within pc's basic
	// block; absent otherwise. This is the block-local use-define chain
	// CTXBack walks. A masked vector write counts: it is the instruction
	// that overwrote the active lanes.
	DefOf []map[isa.Reg]int
}

// Analyze runs liveness and use-def analysis for g's program.
func Analyze(g *cfg.Graph) *Info {
	p := g.Prog
	n := p.Len()
	info := &Info{
		Graph:      g,
		LiveIn:     make([]isa.RegSet, n),
		LiveOut:    make([]isa.RegSet, n),
		ExecFullIn: execFullness(g),
		EscIn:      make([]isa.RegSet, n),
		DefOf:      make([]map[isa.Reg]int, n),
	}

	// Pre-compute per-instruction use/def sets.
	uses := make([]isa.RegSet, n)
	defs := make([]isa.RegSet, n)
	for pc := 0; pc < n; pc++ {
		uses[pc] = p.At(pc).UseSet()
		defs[pc] = p.At(pc).DefSet()
	}

	// step applies pc's backward transfer to (live, esc) in place,
	// turning the state below the instruction into the state above it.
	// esc ⊆ live holds the vector registers whose masked-out lanes may
	// still be observed below.
	step := func(pc int, live, esc isa.RegSet) {
		in := p.At(pc)
		// Crossing an EXEC write: the mask above differs from the mask
		// below, so defs above must preserve the masked-out lanes of
		// everything live here.
		if defs[pc].Has(isa.Exec) {
			for r := range live {
				if r.IsVector() {
					esc.Add(r)
				}
			}
		}
		for r := range defs[pc] {
			if killsDef(in, r, info.ExecFullIn[pc], esc) {
				live.Remove(r)
				esc.Remove(r)
			}
			// A non-killing partial def leaves r live: the inactive
			// lanes' value flows in from above.
		}
		live.AddAll(uses[pc])
		// v_readlane reads one lane regardless of EXEC; the source's
		// masked-out lanes are observable.
		if in.Op == isa.VReadLane && in.Srcs[0].IsReg() {
			esc.Add(in.Srcs[0].Reg)
		}
	}

	// Block-level gen/kill over the paired (live, escaped) state.
	nb := len(g.Blocks)
	blockIn := make([]isa.RegSet, nb)
	blockOut := make([]isa.RegSet, nb)
	escIn := make([]isa.RegSet, nb)
	escOut := make([]isa.RegSet, nb)
	for i := range blockIn {
		blockIn[i] = make(isa.RegSet)
		blockOut[i] = make(isa.RegSet)
		escIn[i] = make(isa.RegSet)
		escOut[i] = make(isa.RegSet)
	}

	// Iterate to fixpoint (reverse order speeds convergence).
	changed := true
	for changed {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			b := &g.Blocks[bi]
			out := make(isa.RegSet)
			esc := make(isa.RegSet)
			for _, s := range b.Succs {
				out.AddAll(blockIn[s])
				esc.AddAll(escIn[s])
			}
			in := out.Clone()
			escAbove := esc.Clone()
			for pc := b.End - 1; pc >= b.Start; pc-- {
				step(pc, in, escAbove)
			}
			if !out.Equal(blockOut[bi]) || !in.Equal(blockIn[bi]) ||
				!esc.Equal(escOut[bi]) || !escAbove.Equal(escIn[bi]) {
				changed = true
				blockOut[bi] = out
				blockIn[bi] = in
				escOut[bi] = esc
				escIn[bi] = escAbove
			}
		}
	}

	// Per-instruction sets from the block solutions.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		live := blockOut[bi].Clone()
		esc := escOut[bi].Clone()
		for pc := b.End - 1; pc >= b.Start; pc-- {
			info.LiveOut[pc] = live.Clone()
			step(pc, live, esc)
			info.LiveIn[pc] = live.Clone()
			info.EscIn[pc] = esc.Clone()
		}
	}

	// Block-local use-define chains: forward scan recording the last
	// write of each register.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		lastDef := make(map[isa.Reg]int)
		for pc := b.Start; pc < b.End; pc++ {
			m := make(map[isa.Reg]int, len(lastDef))
			for r, d := range lastDef {
				m[r] = d
			}
			info.DefOf[pc] = m
			for r := range defs[pc] {
				lastDef[r] = pc
			}
		}
	}
	return info
}

// killsDef reports whether in's write to r fully overwrites it, ending
// the previous value's liveness. Scalar and special registers are always
// whole-register writes. For vector destinations, EXEC-masked per-lane
// ops are full kills only when the mask is provably full or the value
// has not escaped the mask region; v_writelane (one lane, mask-ignoring)
// never kills.
func killsDef(in *isa.Instruction, r isa.Reg, execFull bool, esc isa.RegSet) bool {
	if !r.IsVector() {
		return true
	}
	oi := in.Op.Info()
	switch {
	case in.Op == isa.VWriteLane:
		return false
	case oi.DstVec && oi.ReadsExec && r == in.Dst:
		return execFull || !esc.Has(r)
	default:
		// Whole-register vector writes (ctx_load_v).
		return true
	}
}

// execFullness computes, per PC, whether EXEC is provably all ones when
// the instruction at that PC issues. Warps launch with a full mask; the
// forward pass tracks scalar registers known to hold a full-mask value
// so the save/restore reconvergence idiom (s_and_saveexec_vcc save ...
// s_setexec save) proves fullness again after a divergent region.
func execFullness(g *cfg.Graph) []bool {
	p := g.Prog
	n := p.Len()
	full := make([]bool, n)
	nb := len(g.Blocks)
	if n == 0 || nb == 0 {
		return full
	}

	type state struct {
		full     bool
		fullRegs isa.RegSet // scalar regs holding an all-ones mask
	}
	clone := func(s state) state {
		return state{full: s.full, fullRegs: s.fullRegs.Clone()}
	}
	// meet narrows dst by src; reports whether dst changed.
	meet := func(dst *state, src state) bool {
		changed := false
		if dst.full && !src.full {
			dst.full = false
			changed = true
		}
		for r := range dst.fullRegs {
			if !src.fullRegs.Has(r) {
				dst.fullRegs.Remove(r)
				changed = true
			}
		}
		return changed
	}

	// fullVal reports whether operand o is known to be an all-ones mask.
	fullVal := func(st *state, o isa.Operand) bool {
		if o.IsReg() {
			return st.fullRegs.Has(o.Reg)
		}
		// Scalar immediates sign-extend (uint64(int64(int32(imm)))).
		return uint64(int64(int32(o.Imm))) == ^uint64(0)
	}
	stepExec := func(st *state, in *isa.Instruction) {
		oi := in.Op.Info()
		switch in.Op {
		case isa.SAndSaveExecVCC:
			// dst = old exec; exec &= vcc (full only if vcc is, unknown).
			if st.full {
				st.fullRegs.Add(in.Dst)
			} else {
				st.fullRegs.Remove(in.Dst)
			}
			st.full = false
		case isa.SSetExec:
			st.full = fullVal(st, in.Srcs[0])
		case isa.SOrExec:
			st.full = st.full || fullVal(st, in.Srcs[0])
		case isa.SGetExec:
			if st.full {
				st.fullRegs.Add(in.Dst)
			} else {
				st.fullRegs.Remove(in.Dst)
			}
		case isa.SMov:
			if fullVal(st, in.Srcs[0]) {
				st.fullRegs.Add(in.Dst)
			} else {
				st.fullRegs.Remove(in.Dst)
			}
		default:
			if oi.WritesExec || (oi.HasDst && in.Dst == isa.Exec) {
				st.full = false
			}
			if oi.HasDst && in.Dst.Valid() && in.Dst != isa.Exec {
				st.fullRegs.Remove(in.Dst)
			}
		}
	}

	in := make([]state, nb)
	seen := make([]bool, nb)
	entry := 0
	for bi := range g.Blocks {
		if g.Blocks[bi].Start == 0 {
			entry = bi
			break
		}
	}
	in[entry] = state{full: true, fullRegs: make(isa.RegSet)}
	seen[entry] = true
	work := []int{entry}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := &g.Blocks[bi]
		st := clone(in[bi])
		for pc := b.Start; pc < b.End; pc++ {
			stepExec(&st, p.At(pc))
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				in[s] = clone(st)
				work = append(work, s)
			} else if meet(&in[s], st) {
				work = append(work, s)
			}
		}
	}

	// Materialize per-PC fullness. Unreached blocks stay pessimistic.
	for bi := range g.Blocks {
		if !seen[bi] {
			continue
		}
		b := &g.Blocks[bi]
		st := clone(in[bi])
		for pc := b.Start; pc < b.End; pc++ {
			full[pc] = st.full
			stepExec(&st, p.At(pc))
		}
	}
	return full
}

// Context returns the register context of the instruction at pc — its
// live-in registers (a clone safe to mutate).
func (in *Info) Context(pc int) isa.RegSet {
	return in.LiveIn[pc].Clone()
}

// ContextBytes returns the byte size of pc's register context.
func (in *Info) ContextBytes(pc int) int {
	return in.LiveIn[pc].ContextBytes()
}

// LastDefIn returns the PC of the most recent write to r before pc
// within pc's basic block; ok=false when r has no in-block write before
// pc (its value flows in from outside the block).
func (in *Info) LastDefIn(pc int, r isa.Reg) (def int, ok bool) {
	def, ok = in.DefOf[pc][r]
	return def, ok
}

// MinContextPC returns the PC with the smallest live-in context within
// [start, end) along with that context's byte size. It is the "minimum
// possible context size" reference the paper attributes to CKPT.
func (in *Info) MinContextPC(start, end int) (pc, bytes int) {
	pc = start
	bytes = in.ContextBytes(start)
	for i := start + 1; i < end; i++ {
		if b := in.ContextBytes(i); b < bytes {
			pc, bytes = i, b
		}
	}
	return pc, bytes
}
