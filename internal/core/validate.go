package core

import (
	"fmt"

	"ctxback/internal/isa"
	"ctxback/internal/liveness"
)

// symVal is an abstract value: which version of which register it is. A
// zero symVal (reg invalid) is poison.
type symVal struct {
	reg isa.Reg
	ver version
}

// symTab maps physical registers to abstract values, stored flat by
// progInfo.regID (the validator replays thousands of plans per compile;
// Reg-keyed maps dominated its cost). Registers never written read
// through base — or poison (zero symVal) when base is nil.
type symTab struct {
	info *progInfo
	vals []symVal
	set  []bool
	base func(isa.Reg) symVal
}

func newSymTab(info *progInfo, base func(isa.Reg) symVal) *symTab {
	n := info.numRegIDs()
	return &symTab{info: info, vals: make([]symVal, n), set: make([]bool, n), base: base}
}

func (t *symTab) get(r isa.Reg) symVal {
	if id := t.info.regID(r); t.set[id] {
		return t.vals[id]
	}
	if t.base != nil {
		return t.base(r)
	}
	return symVal{}
}

func (t *symTab) put(r isa.Reg, v symVal) {
	id := t.info.regID(r)
	t.vals[id] = v
	t.set[id] = true
}

// slotKey identifies a context-buffer slot in the validator.
type slotKey struct {
	reg isa.Reg
	ver version
}

// winIndex resolves register versions inside a window without
// materializing per-position states: verAt(i, r) is the version of r
// just before window instruction i executes.
type winIndex struct {
	info   *progInfo
	defsOf [][]int // by regID
	n      int
}

func newWinIndex(info *progInfo, q, n int) *winIndex {
	w := &winIndex{info: info, defsOf: make([][]int, info.numRegIDs()), n: n}
	for i := 0; i < n; i++ {
		for _, r := range info.defs[q+i] {
			id := info.regID(r)
			w.defsOf[id] = append(w.defsOf[id], i)
		}
	}
	return w
}

func (w *winIndex) verAt(i int, r isa.Reg) version {
	v := verInit
	for _, d := range w.defsOf[w.info.regID(r)] {
		if d < i {
			v = version(d)
		} else {
			break
		}
	}
	return v
}

func (w *winIndex) valAt(i int, r isa.Reg) symVal { return symVal{reg: r, ver: w.verAt(i, r)} }

// ValidatePlan symbolically replays plan's preemption and resume stages
// over abstract value versions and verifies that every live-in register
// of P holds exactly the value it held when the signal arrived. It
// returns a descriptive error for unsound plans.
//
// The check is exact for everything inside the window. Two premises are
// established elsewhere and assumed here: idempotence of re-executed
// memory loads (internal/cfg region analysis) and OSRB backup freshness
// (the selector only offers backups whose copy equals the value at Q).
func ValidatePlan(prog *isa.Program, live *liveness.Info, plan *Plan) error {
	n := plan.WindowLen()
	info := infoFor(prog)
	instr := func(i int) *isa.Instruction { return prog.At(plan.Q + i) }
	idx := newWinIndex(info, plan.Q, n)

	// --- Preemption stage ---
	// st starts as the state at P; registers never written hold their
	// at-P version implicitly.
	st := newSymTab(info, func(r isa.Reg) symVal { return idx.valAt(n, r) })
	slots := make(map[slotKey]symVal)

	// 1. Save reload slots and resume-revert source slots from the
	// physical state (before any revert mutates it).
	for i, regs := range plan.ReloadRegs {
		for r := range regs {
			want := symVal{reg: r, ver: version(i)}
			if got := st.get(r); got != want {
				return fmt.Errorf("reload slot (%s,v%d): physical holds %v at preemption", r, i, got)
			}
			slots[slotKey{r, version(i)}] = want
		}
	}
	for _, rr := range plan.ResumeReverts {
		want := symVal{reg: rr.SlotReg, ver: rr.SlotVer}
		if got := st.get(rr.SlotReg); got != want {
			return fmt.Errorf("revert slot (%s,v%d): physical holds %v at preemption", rr.SlotReg, rr.SlotVer, got)
		}
		slots[slotKey{rr.SlotReg, rr.SlotVer}] = want
	}

	// 2. Execute preemption-stage reverts in order.
	for _, pr := range plan.PreemptReverts {
		if err := applyRevert(st, idx, instr, pr.K, pr.Instr); err != nil {
			return fmt.Errorf("preempt revert of window[%d]: %w", pr.K, err)
		}
	}

	// 3. Save init-version registers.
	initSlots := make(map[isa.Reg]symVal)
	for r, src := range plan.InitRegs {
		switch src {
		case InitDirect, InitRevertPreempt:
			got := st.get(r)
			if got != (symVal{reg: r, ver: verInit}) {
				return fmt.Errorf("init save of %s (%v): holds %v after reverts", r, src, got)
			}
			initSlots[r] = got
		case InitOSRB:
			// Backup premise: the spare holds the value at Q.
			initSlots[r] = symVal{reg: r, ver: verInit}
		case InitRevertResume:
			// Recovered during resume; the source slot was saved above.
		default:
			return fmt.Errorf("init reg %s has unusable source %v", r, src)
		}
	}

	// --- Resume stage ---
	// rst is explicit: registers never restored are poison.
	rst := newSymTab(info, nil)
	for r, v := range initSlots {
		rst.put(r, v)
	}

	revertAt := make(map[int][]ResumeRevert)
	for _, rr := range plan.ResumeReverts {
		revertAt[rr.Pos] = append(revertAt[rr.Pos], rr)
	}

	for pos := 0; pos <= n; pos++ {
		for _, rr := range revertAt[pos] {
			v, ok := slots[slotKey{rr.SlotReg, rr.SlotVer}]
			if !ok {
				return fmt.Errorf("resume revert at %d: slot (%s,v%d) never saved", pos, rr.SlotReg, rr.SlotVer)
			}
			rst.put(rr.SlotReg, v)
			if err := applyRevert(rst, idx, instr, int(rr.SlotVer), rr.Instr); err != nil {
				return fmt.Errorf("resume revert at %d: %w", pos, err)
			}
		}
		if pos == n {
			break
		}
		switch plan.Status[pos] {
		case StatusReExec:
			in := instr(pos)
			for _, u := range info.uses[plan.Q+pos] {
				want := idx.valAt(pos, u)
				if got := rst.get(u); got != want {
					return fmt.Errorf("re-exec window[%d] (%s): operand %s holds %v, want %v",
						pos, in, u, got, want)
				}
			}
			// A masked partial def merges into its destination: when the
			// masked-out lanes are observable, the prior version must be
			// present for the re-execution to reproduce the value.
			if r, ok := partialDefReads(prog, live, plan.Q+pos); ok {
				want := idx.valAt(pos, r)
				if got := rst.get(r); got != want {
					return fmt.Errorf("re-exec window[%d] (%s): masked dst %s holds %v, want prior %v",
						pos, in, r, got, want)
				}
			}
			for _, d := range info.defs[plan.Q+pos] {
				rst.put(d, symVal{reg: d, ver: version(pos)})
			}
		case StatusReload:
			for r := range plan.ReloadRegs[pos] {
				v, ok := slots[slotKey{r, version(pos)}]
				if !ok {
					return fmt.Errorf("reload window[%d]: slot (%s,v%d) never saved", pos, r, pos)
				}
				rst.put(r, v)
			}
		case StatusSkip:
			// Either a durable side effect or a dead instruction.
		default:
			return fmt.Errorf("window[%d] left unclassified", pos)
		}
	}

	// Final check: R_cur restored exactly.
	for r := range live.LiveIn[plan.P] {
		want := idx.valAt(n, r)
		if got := rst.get(r); got != want {
			return fmt.Errorf("live-in %s at P: restored %v, want %v", r, got, want)
		}
	}
	return nil
}

// applyRevert checks and applies the revert of window instruction k on a
// state: the recovered register must hold k's result, every extra
// operand must hold its value as of k's execution, and the recovered
// register becomes the pre-k value.
func applyRevert(st *symTab, idx *winIndex, instr func(int) *isa.Instruction, k int, rev isa.Instruction) error {
	orig := instr(k)
	dst := orig.Dst
	if cur := st.get(dst); cur != (symVal{reg: dst, ver: version(k)}) {
		return fmt.Errorf("register %s holds %v, not the result of window[%d]", dst, cur, k)
	}
	check := func(x isa.Reg) error {
		want := idx.valAt(k, x)
		if got := st.get(x); got != want {
			return fmt.Errorf("revert operand %s holds %v, want %v", x, got, want)
		}
		return nil
	}
	for _, s := range rev.SrcOperands() {
		if s.IsReg() && s.Reg != dst {
			if err := check(s.Reg); err != nil {
				return err
			}
		}
	}
	if orig.Op.Info().ReadsExec {
		if err := check(isa.Exec); err != nil {
			return err
		}
	}
	st.put(dst, idx.valAt(k, dst))
	return nil
}
