package core

import (
	"fmt"
	"sort"
	"strings"

	"ctxback/internal/cfg"
	"ctxback/internal/isa"
	"ctxback/internal/liveness"
)

// DefaultMaxWindow bounds how far back the flashback-point search looks.
// Candidate flashback-points are pruned to the local minima of the
// live-in context size (the paper observes selected flashback-points are
// exactly such local minima, §IV-A), so a window covering whole unrolled
// loop bodies stays affordable.
const DefaultMaxWindow = 512

// Compiled is the output of the CTXBack pass for one kernel: a selected
// flashback plan and dedicated routines per instruction, plus the global
// OSRB backup assignment and its instrumentation points.
type Compiled struct {
	Prog  *isa.Program
	Graph *cfg.Graph
	Live  *liveness.Info
	Feats Feature

	// Plans[pc] is the chosen plan for a signal arriving at pc.
	Plans []*Plan
	// PreemptRoutines[pc] / ResumeRoutines[pc] are the register parts of
	// the dedicated routines (technique layer appends LDS/PC handling).
	PreemptRoutines [][]isa.Instruction
	ResumeRoutines  [][]isa.Instruction

	// OSRB is the global backup assignment (backed-up reg -> spare reg).
	OSRB map[isa.Reg]isa.Reg
	// BackupAt maps a block-entry PC to the backup copies executed there
	// during normal execution.
	BackupAt map[int][]isa.Instruction

	// UniqueRoutines counts distinct preemption routine bodies after
	// sharing (paper §IV-A).
	UniqueRoutines int
	// SharedRoutineBytes is the device-memory footprint of the shared
	// preemption routines actually transferred with the kernel;
	// UnsharedRoutineBytes is what per-instruction routines would cost
	// without sharing (paper §IV-A's transfer/storage saving).
	SharedRoutineBytes   int
	UnsharedRoutineBytes int

	MaxWindow int
}

// Compile runs the full CTXBack pass on prog.
func Compile(prog *isa.Program, feats Feature) (*Compiled, error) {
	return CompileWindow(prog, feats, DefaultMaxWindow)
}

// CompileWindow is Compile with an explicit flashback search bound.
func CompileWindow(prog *isa.Program, feats Feature, maxWindow int) (*Compiled, error) {
	graph, err := cfg.Build(prog)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	live := liveness.Analyze(graph)
	c := &Compiled{
		Prog: prog, Graph: graph, Live: live, Feats: feats,
		OSRB:      make(map[isa.Reg]isa.Reg),
		BackupAt:  make(map[int][]isa.Instruction),
		MaxWindow: maxWindow,
	}

	// Live-in context size per PC, computed once: the candidate search
	// reads it O(window) times per selectPlan call, and summing the
	// live-in RegSet on every read dominated the flashback search.
	cb := make([]int, prog.Len())
	for pc := range cb {
		cb[pc] = live.ContextBytes(pc)
	}

	if feats&FeatOSRB != 0 {
		c.OSRB = chooseOSRB(prog, graph, live, cb, feats, maxWindow)
	}

	n := prog.Len()
	c.Plans = make([]*Plan, n)
	c.PreemptRoutines = make([][]isa.Instruction, n)
	c.ResumeRoutines = make([][]isa.Instruction, n)
	shared := make(map[string]int)
	for pc := 0; pc < n; pc++ {
		plan := selectPlan(prog, graph, live, cb, pc, feats, c.OSRB, maxWindow)
		if plan == nil {
			return nil, fmt.Errorf("core: no plan for pc %d (even the empty window failed)", pc)
		}
		c.Plans[pc] = plan
		pre, res := GenRoutines(prog, plan)
		c.PreemptRoutines[pc] = pre
		c.ResumeRoutines[pc] = res
		key := routineKey(pre)
		if _, seen := shared[key]; !seen {
			shared[key] = isa.RoutineBytes(pre)
		}
		c.UnsharedRoutineBytes += isa.RoutineBytes(pre)
	}
	c.UniqueRoutines = len(shared)
	for _, bytes := range shared {
		c.SharedRoutineBytes += bytes
	}

	// OSRB instrumentation: back up at the entry of every block whose
	// selected plans rely on a backup.
	needed := make(map[int]map[isa.Reg]bool) // blockStart -> regs
	for pc, plan := range c.Plans {
		for reg, src := range plan.InitRegs {
			if src != InitOSRB {
				continue
			}
			start := graph.BlockOf(pc).Start
			if needed[start] == nil {
				needed[start] = make(map[isa.Reg]bool)
			}
			needed[start][reg] = true
		}
	}
	for start, regs := range needed {
		var list []isa.Reg
		for r := range regs {
			list = append(list, r)
		}
		sortRegsStable(list)
		for _, r := range list {
			c.BackupAt[start] = append(c.BackupAt[start], backupInstr(r, c.OSRB[r]))
		}
	}
	return c, nil
}

func routineKey(instrs []isa.Instruction) string {
	var b strings.Builder
	for i := range instrs {
		b.WriteString(instrs[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// EstPreemptCost ranks plans by estimated preemption latency: the
// context traffic dominates; revert and save instructions add issue
// cycles.
func (p *Plan) EstPreemptCost() int64 {
	return int64(p.ContextBytes)*8 + int64(len(p.PreemptReverts))*4
}

// EstResumeCost ranks plans by estimated resume time.
func (p *Plan) EstResumeCost() int64 {
	return int64(p.ContextBytes)*8 + int64(p.ReExecCount)*8
}

func betterPlan(a, b *Plan) bool {
	if b == nil {
		return true
	}
	ca, cb := a.EstPreemptCost(), b.EstPreemptCost()
	if ca != cb {
		return ca < cb
	}
	ra, rb := a.EstResumeCost(), b.EstResumeCost()
	if ra != rb {
		return ra < rb
	}
	// Prefer the nearer flashback-point.
	return a.Q > b.Q
}

// filterOSRB keeps only backups whose copy (taken at block entry) still
// equals the register's value at Q: no definitions in [blockStart, Q).
func filterOSRB(prog *isa.Program, blockStart, q int, osrb map[isa.Reg]isa.Reg) map[isa.Reg]isa.Reg {
	if len(osrb) == 0 {
		return nil
	}
	defs := infoFor(prog).defs
	out := make(map[isa.Reg]isa.Reg, len(osrb))
	for r, spare := range osrb {
		fresh := true
		for pc := blockStart; pc < q && fresh; pc++ {
			for _, d := range defs[pc] {
				if d == r {
					fresh = false
					break
				}
			}
		}
		if fresh {
			out[r] = spare
		}
	}
	return out
}

func selectPlan(prog *isa.Program, graph *cfg.Graph, live *liveness.Info, cb []int, p int, feats Feature, osrb map[isa.Reg]isa.Reg, maxWindow int) *Plan {
	head := graph.FlashbackHead(p)
	if p-head > maxWindow {
		head = p - maxWindow
	}
	blockStart := graph.BlockOf(p).Start
	var best *Plan
	for _, q := range candidateQs(cb, head, p) {
		filtered := filterOSRB(prog, blockStart, q, osrb)
		plan := AnalyzeWindow(prog, live, p, q, feats, filtered)
		if plan != nil && betterPlan(plan, best) {
			best = plan
		}
	}
	return best
}

// maxCandidates caps how many flashback-point candidates are analyzed
// per instruction (the smallest-context ones win anyway).
const maxCandidates = 8

// candidateQs returns the flashback-point candidates for a signal at p:
// p itself (the LIVE fallback), plus local minima of the live-in context
// size in [head, p). Restricting the search to local minima is both the
// paper's observation about which points win (§IV-A) and what keeps
// whole-block windows affordable. Plateaus contribute only their point
// nearest to p, and only the maxCandidates smallest minima are kept.
func candidateQs(cb []int, head, p int) []int {
	bytesAt := func(i int) int { return cb[i] }
	// Running minimum from p backwards: a further flashback-point is
	// only worth the extra re-execution when its context is strictly
	// smaller than every nearer point's.
	var mins []int
	runMin := bytesAt(p)
	for q := p - 1; q >= head; q-- {
		if b := bytesAt(q); b < runMin {
			runMin = b
			mins = append(mins, q)
		}
	}
	// Keep the smallest-context candidates (the cost model is dominated
	// by context bytes, so larger minima rarely win); ties prefer the
	// nearer point, which `mins` already orders first.
	if len(mins) > maxCandidates {
		sort.SliceStable(mins, func(i, j int) bool { return bytesAt(mins[i]) < bytesAt(mins[j]) })
		mins = mins[:maxCandidates]
	}
	return append([]int{p}, mins...)
}

// chooseOSRB runs the selection once with every scalar and special
// register hypothetically backed up, observes which backups the winning
// plans would actually use, and assigns the available spare registers
// (allocation-alignment padding, paper §III-D) to the most valuable.
func chooseOSRB(prog *isa.Program, graph *cfg.Graph, live *liveness.Info, cb []int, feats Feature, maxWindow int) map[isa.Reg]isa.Reg {
	spares := spareRegs(prog)
	if len(spares) == 0 {
		return nil
	}
	// Hypothetical: every scalar/special reg backed up (spare identity is
	// irrelevant for the trial; use a placeholder).
	trial := make(map[isa.Reg]isa.Reg)
	for i := 0; i < prog.NumSRegs; i++ {
		trial[isa.S(i)] = isa.S(0)
	}
	trial[isa.Exec] = isa.S(0)
	trial[isa.VCC] = isa.S(0)
	trial[isa.SCC] = isa.S(0)

	benefit := make(map[isa.Reg]int64)
	for pc := 0; pc < prog.Len(); pc++ {
		base := selectPlan(prog, graph, live, cb, pc, feats&^FeatOSRB, nil, maxWindow)
		with := selectPlan(prog, graph, live, cb, pc, feats, trial, maxWindow)
		if base == nil || with == nil {
			continue
		}
		gain := base.EstPreemptCost() - with.EstPreemptCost()
		if gain <= 0 {
			continue
		}
		for reg, src := range with.InitRegs {
			if src == InitOSRB {
				benefit[reg] += gain
			}
		}
	}
	if len(benefit) == 0 {
		return nil
	}
	var regs []isa.Reg
	for r := range benefit {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool {
		if benefit[regs[i]] != benefit[regs[j]] {
			return benefit[regs[i]] > benefit[regs[j]]
		}
		return regLess(regs[i], regs[j])
	})
	out := make(map[isa.Reg]isa.Reg)
	for i, r := range regs {
		if i >= len(spares) {
			break
		}
		out[r] = spares[i]
	}
	return out
}

func regLess(a, b isa.Reg) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Index < b.Index
}

// spareRegs lists the scalar registers reserved by allocation alignment
// but never used by the kernel — guaranteed-free backup storage.
func spareRegs(prog *isa.Program) []isa.Reg {
	var out []isa.Reg
	for i := prog.NumSRegs; i < prog.AllocatedSRegs(); i++ {
		out = append(out, isa.S(i))
	}
	return out
}
