package core

import (
	"math/rand"
	"testing"

	"ctxback/internal/isa"
	"ctxback/internal/liveness"
)

// genProgram builds a random straight-line integer kernel: a mix of
// revertible ops (add/sub/xor), irreversible ones (mul/shr/mov), loads,
// stores and compare/exec games, with aggressive register reuse so the
// analyzer faces plenty of overwrites.
func genProgram(rng *rand.Rand, nInstr int) *isa.Program {
	const nV, nS = 8, 20
	b := isa.NewBuilder("fuzz", nV, nS, 0)
	v := func() isa.Operand { return isa.R(isa.V(rng.Intn(nV))) }
	sR := func() isa.Operand { return isa.R(isa.S(4 + rng.Intn(4))) }
	imm := func() isa.Operand { return isa.Imm(rng.Intn(64) + 1) }
	src := func() isa.Operand {
		switch rng.Intn(3) {
		case 0:
			return imm()
		case 1:
			return sR()
		}
		return v()
	}
	for i := 0; i < nInstr; i++ {
		switch rng.Intn(12) {
		case 0, 1:
			b.I(isa.VAdd, v(), v(), src())
		case 2:
			b.I(isa.VSub, v(), v(), src())
		case 3:
			b.I(isa.VXor, v(), v(), src())
		case 4:
			b.I(isa.VMul, v(), v(), src())
		case 5:
			b.I(isa.VShr, v(), v(), imm())
		case 6:
			b.I(isa.VMov, v(), src())
		case 7:
			// Bounded address load: mask the address into the low 1 KB.
			addr := isa.V(rng.Intn(nV))
			b.I(isa.VAnd, isa.R(addr), isa.R(addr), isa.Imm(0x3FC))
			b.I(isa.VGLoad, v(), isa.R(addr), isa.Imm(0)).Space(1)
		case 8:
			addr := isa.V(rng.Intn(nV))
			b.I(isa.VAnd, isa.R(addr), isa.R(addr), isa.Imm(0x3FC))
			b.I(isa.VGStore, isa.R(addr), v(), isa.Imm(1024)).Space(2)
		case 9:
			b.I(isa.SAdd, isa.R(isa.S(4+rng.Intn(4))), sR(), imm())
		case 10:
			b.I(isa.VCmpLtI, v(), src())
			b.I(isa.SAndSaveExecVCC, isa.R(isa.S(10)))
			b.I(isa.VAdd, v(), v(), imm())
			b.I(isa.SSetExec, isa.R(isa.S(10)))
		case 11:
			b.I(isa.VMad, v(), v(), v(), v())
		}
	}
	// Keep several registers live at the end so plans have real contexts.
	b.I(isa.VGStore, isa.R(isa.V(0)), isa.R(isa.V(1)), isa.Imm(2048)).Space(3)
	b.I(isa.VGStore, isa.R(isa.V(2)), isa.R(isa.V(3)), isa.Imm(2052)).Space(3)
	b.I(isa.SEndpgm)
	return mustProg(b)
}

// TestFuzzPlannerSoundAndBounded compiles hundreds of random programs and
// checks the invariants that must hold for every selected plan: it
// passes the symbolic validator and its context never exceeds the LIVE
// context by more than one special register.
func TestFuzzPlannerSoundAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		prog := genProgram(rng, 10+rng.Intn(30))
		for _, feats := range []Feature{0, FeatRelaxed, FeatAll} {
			c, err := CompileWindow(prog, feats, 64)
			if err != nil {
				t.Fatalf("iter %d feats %v: %v\n%s", it, feats, err, prog.Disassemble())
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("iter %d feats %v: %v\n%s", it, feats, err, prog.Disassemble())
			}
			g := mustGraph(prog)
			live := liveness.Analyze(g)
			for pc, plan := range c.Plans {
				if err := ValidatePlan(prog, live, plan); err != nil {
					t.Fatalf("iter %d feats %v pc %d: %v\n%s", it, feats, pc, err, prog.Disassemble())
				}
				if plan.ContextBytes > live.ContextBytes(pc)+16 {
					t.Fatalf("iter %d feats %v pc %d: plan %dB exceeds live %dB\n%s",
						it, feats, pc, plan.ContextBytes, live.ContextBytes(pc), prog.Disassemble())
				}
			}
		}
	}
}

// TestFuzzFeatureMonotonicity: enabling more techniques must never make
// the mean selected context larger.
func TestFuzzFeatureMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for it := 0; it < iters; it++ {
		prog := genProgram(rng, 12+rng.Intn(24))
		prev := int(^uint(0) >> 1)
		for _, feats := range []Feature{0, FeatRelaxed, FeatRelaxed | FeatRevert, FeatAll} {
			c, err := CompileWindow(prog, feats, 64)
			if err != nil {
				t.Fatalf("iter %d feats %v: %v", it, feats, err)
			}
			total := 0
			for _, plan := range c.Plans {
				total += plan.ContextBytes
			}
			if total > prev {
				t.Fatalf("iter %d: enabling %v grew total context %d -> %d\n%s",
					it, feats, prev, total, prog.Disassemble())
			}
			prev = total
		}
	}
}
