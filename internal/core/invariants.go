package core

import (
	"fmt"

	"ctxback/internal/isa"
)

// CheckInvariants re-validates every chosen plan of a compiled kernel
// with the symbolic plan validator, plus the structural invariants the
// runtime layers rely on. It surfaces the compile-time contract as a
// machine-checkable predicate so harnesses (and fuzzers) can assert it
// before trusting a compilation, and fault-recovery code can rule out a
// mis-compiled plan when diagnosing a failed resume.
func (c *Compiled) CheckInvariants() error {
	n := c.Prog.Len()
	if len(c.Plans) != n || len(c.PreemptRoutines) != n || len(c.ResumeRoutines) != n {
		return fmt.Errorf("core: plan/routine tables sized %d/%d/%d for a %d-instruction program",
			len(c.Plans), len(c.PreemptRoutines), len(c.ResumeRoutines), n)
	}
	for pc, plan := range c.Plans {
		if plan == nil {
			return fmt.Errorf("core: no plan for pc %d", pc)
		}
		if plan.P != pc {
			return fmt.Errorf("core: plan at table slot %d claims signal point %d", pc, plan.P)
		}
		if plan.Q > plan.P || plan.Q < 0 {
			return fmt.Errorf("core: pc %d: flashback-point %d outside [0,%d]", pc, plan.Q, plan.P)
		}
		if w := plan.WindowLen(); w > c.MaxWindow {
			return fmt.Errorf("core: pc %d: window %d exceeds bound %d", pc, w, c.MaxWindow)
		}
		if err := ValidatePlan(c.Prog, c.Live, plan); err != nil {
			return fmt.Errorf("core: pc %d: %w", pc, err)
		}
	}
	// The global OSRB assignment must be injective: two backed-up
	// registers sharing a spare would clobber each other.
	seen := map[isa.Reg]isa.Reg{}
	for reg, spare := range c.OSRB {
		if prev, dup := seen[spare]; dup {
			return fmt.Errorf("core: OSRB spare %v assigned to both %v and %v", spare, prev, reg)
		}
		seen[spare] = reg
	}
	return nil
}

// RestoreContract returns the register set a resume at pc must
// re-establish before kernel execution continues: the live-in context
// at pc plus the EXEC mask (always restored — a wrong mask silently
// disables lanes). The resume-integrity oracle diffs exactly this set
// against the signal-time snapshot.
func (c *Compiled) RestoreContract(pc int) isa.RegSet {
	set := c.Live.Context(pc) // already a clone, safe to extend
	set.Add(isa.Exec)
	return set
}
