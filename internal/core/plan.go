// Package core implements CTXBack's compiler pass (paper §III-IV): for
// every instruction it finds flashback-points — preceding instructions
// whose (relaxed) context can still be materialized when a preemption
// signal arrives — using the three techniques of the paper:
//
//  1. relaxed flashback-point condition (Algorithm 1): combine
//     re-execution with saving/reloading of in-between results;
//  2. instruction reverting (Algorithm 2): recover overwritten registers
//     by executing inverse instructions, at preemption or at resume;
//  3. on-chip scalar register backup (OSRB): proactively copy critical
//     scalar registers into unused registers during normal execution.
//
// Every plan the analyzer produces is checked by a symbolic validator
// (validate.go) that replays the preemption and resume routines over
// abstract value versions; unsound plans are rejected, so the search
// degrades gracefully instead of miscompiling.
package core

import (
	"fmt"

	"ctxback/internal/isa"
)

// Feature selects which of the paper's techniques are enabled; used by
// the ablation experiments.
type Feature uint8

const (
	// FeatRelaxed enables Algorithm 1's relaxed flashback-point
	// condition (save/reload of unrestorable in-between results).
	FeatRelaxed Feature = 1 << iota
	// FeatRevert enables instruction reverting (Algorithm 2).
	FeatRevert
	// FeatOSRB enables on-chip scalar register backup.
	FeatOSRB

	// FeatAll is the full CTXBack configuration.
	FeatAll = FeatRelaxed | FeatRevert | FeatOSRB
)

func (f Feature) String() string {
	s := ""
	if f&FeatRelaxed != 0 {
		s += "+relaxed"
	}
	if f&FeatRevert != 0 {
		s += "+revert"
	}
	if f&FeatOSRB != 0 {
		s += "+osrb"
	}
	if s == "" {
		return "strict"
	}
	return s[1:]
}

// Status classifies how an in-window instruction's effect is restored
// during resume.
type Status uint8

const (
	// StatusUnknown: not yet classified (irrecoverable if it stays so).
	StatusUnknown Status = iota
	// StatusReExec: the instruction re-executes during resume.
	StatusReExec
	// StatusReload: its results were saved at preemption and reload at
	// its position during resume.
	StatusReload
	// StatusSkip: side-effect already durable (stores); nothing to do.
	StatusSkip
)

func (s Status) String() string {
	switch s {
	case StatusReExec:
		return "re-exec"
	case StatusReload:
		return "reload"
	case StatusSkip:
		return "skip"
	}
	return "unknown"
}

// version identifies which value of a register is meant: verInit is the
// value the register held at the flashback-point; k >= 0 is the value
// defined by window instruction k.
type version int

const verInit version = -1

// InitSource says how the flashback-point value of a register is
// obtained at preemption time.
type InitSource uint8

const (
	InitUnavailable InitSource = iota
	// InitDirect: never overwritten in the window; save the physical
	// register as-is.
	InitDirect
	// InitRevertPreempt: recovered by revert instructions executed in the
	// preemption routine, then saved.
	InitRevertPreempt
	// InitRevertResume: recovered by a revert instruction inserted into
	// the resume routine.
	InitRevertResume
	// InitOSRB: read from the on-chip scalar backup register.
	InitOSRB
)

func (s InitSource) String() string {
	switch s {
	case InitDirect:
		return "direct"
	case InitRevertPreempt:
		return "revert@preempt"
	case InitRevertResume:
		return "revert@resume"
	case InitOSRB:
		return "osrb"
	}
	return "unavailable"
}

// PreemptRevert is a revert instruction executed in the preemption
// routine (before the init-version saves).
type PreemptRevert struct {
	// K is the window index of the reverted instruction.
	K int
	// Instr is the reverting instruction.
	Instr isa.Instruction
}

// ResumeRevert is a revert instruction scheduled inside the resume
// routine.
type ResumeRevert struct {
	// Pos is the window index before which the revert executes.
	Pos int
	// Instr is the reverting instruction.
	Instr isa.Instruction
	// SlotReg / SlotVer identify the saved value the revert consumes
	// (the overwriting instruction's result, loaded before reverting).
	SlotReg isa.Reg
	SlotVer version
}

// Plan is the complete context-switching recipe for one (P, Q) pair.
type Plan struct {
	P int // instruction where the signal is processed
	Q int // flashback-point (P == Q: no flashback, plain LIVE save)

	// Status[i] classifies window instruction Q+i.
	Status []Status

	// InitRegs are the registers saved at preemption carrying their
	// flashback-point (init) values, with their sources.
	InitRegs map[isa.Reg]InitSource

	// ReloadRegs[i] lists result registers of window instruction Q+i
	// saved at preemption (current physical values) and reloaded at its
	// resume position.
	ReloadRegs map[int]isa.RegSet

	// PreemptReverts are executed in the preemption routine, in order,
	// before saving the init-version registers.
	PreemptReverts []PreemptRevert

	// ResumeReverts are inserted into the resume replay.
	ResumeReverts []ResumeRevert

	// OSRB maps a backed-up scalar/special register to its spare
	// register.
	OSRB map[isa.Reg]isa.Reg

	// ContextBytes is the register context saved at preemption:
	// init regs + reload slots + resume-revert source slots + OSRB
	// spares. LDS and the PC word are accounted by the technique layer.
	ContextBytes int

	// ReExecCount is the number of instructions replayed during resume.
	ReExecCount int
}

// WindowLen returns the number of in-between instructions.
func (p *Plan) WindowLen() int { return p.P - p.Q }

// String summarizes the plan for debugging.
func (p *Plan) String() string {
	return fmt.Sprintf("plan{P:%d Q:%d ctx:%dB reexec:%d reloads:%d revertsPre:%d revertsRes:%d}",
		p.P, p.Q, p.ContextBytes, p.ReExecCount, len(p.ReloadRegs), len(p.PreemptReverts), len(p.ResumeReverts))
}
